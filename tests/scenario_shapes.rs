//! The paper's qualitative claims, asserted end to end through the
//! facade: who wins, in which direction, and where the crossovers are.

use silicon_cost::prelude::*;
use silicon_cost::tech_trend::diesize::DieSizeTrend;

fn um(v: f64) -> Microns {
    Microns::new(v).unwrap()
}

/// Fig 6 shape: under Scenario #1 the transistor cost FALLS monotonically
/// with feature size for all printed X, and the three curves never cross
/// below the 1 µm reference (higher X is always at least as expensive).
#[test]
fn fig6_shape_monotone_fall_no_crossings() {
    let scenarios: Vec<Scenario1> = [1.1, 1.2, 1.3]
        .iter()
        .map(|&x| Scenario1::fig6(x).unwrap())
        .collect();
    let lambdas: Vec<f64> = (0..40).map(|i| 0.25 + 0.75 * f64::from(i) / 39.0).collect();
    for s in &scenarios {
        // Ascending λ ⇒ ascending cost (equivalently: cost falls as λ
        // shrinks).
        let mut last = f64::NEG_INFINITY;
        for l in &lambdas {
            let c = s.cost_per_transistor(um(*l)).value();
            assert!(c >= last, "cost must grow with λ under Scenario #1");
            last = c;
        }
    }
    for l in &lambdas {
        let c: Vec<f64> = scenarios
            .iter()
            .map(|s| s.cost_per_transistor(um(*l)).value())
            .collect();
        assert!(c[0] <= c[1] && c[1] <= c[2], "X-ordering at λ={l}");
    }
}

/// Fig 7 shape: under Scenario #2 the cost RISES as λ shrinks below
/// ~0.8 µm, with the penalty growing with X; the yield factor explains it.
#[test]
fn fig7_shape_rising_penalty_grows_with_x() {
    let mut last_penalty = 0.0;
    for x in [1.8, 2.0, 2.2, 2.4] {
        let s = Scenario2::fig7(x).unwrap();
        let penalty =
            s.cost_per_transistor(um(0.25)).value() / s.cost_per_transistor(um(0.8)).value();
        assert!(penalty > 2.0, "X={x}: penalty {penalty}");
        assert!(
            penalty > last_penalty,
            "penalty must grow with X: {penalty} after {last_penalty}"
        );
        last_penalty = penalty;
    }
}

/// The Scenario #1 → #2 flip is driven by yield and X, not by the die
/// trend alone: Scenario #2 with perfect yield behaves like Scenario #1.
#[test]
fn scenario_flip_is_yield_driven() {
    let base = Scenario1::fig6(1.2).unwrap();
    let perfect_yield_s2 = Scenario2::new(base, Probability::ONE, DieSizeTrend::paper_fit());
    let falls = perfect_yield_s2.cost_per_transistor(um(0.25)).value()
        < perfect_yield_s2.cost_per_transistor(um(1.0)).value();
    assert!(falls, "with Y=1, shrinking must stay profitable");
}

/// The crossover X: for the Fig 7 configuration there is an escalation
/// factor below which shrinking 0.8 → 0.5 µm still pays and above which
/// it loses. The paper puts realistic X at 1.8–2.4 (loses) and Scenario
/// #1 at 1.1–1.3; the crossover must sit between.
#[test]
fn shrink_crossover_x_is_between_the_scenarios() {
    let pays = |x: f64| {
        let s = Scenario2::fig7(x).unwrap();
        s.cost_per_transistor(um(0.5)).value() < s.cost_per_transistor(um(0.8)).value()
    };
    // Find the flip on a fine grid.
    let mut crossover = None;
    let mut last = pays(1.0);
    for i in 1..=140 {
        let x = 1.0 + f64::from(i) * 0.01;
        let now = pays(x);
        if last && !now {
            crossover = Some(x);
            break;
        }
        last = now;
    }
    let x_star = crossover.expect("a crossover X must exist");
    assert!(
        (1.05..1.8).contains(&x_star),
        "crossover X = {x_star} out of band"
    );
}

/// Wafer-size lever (§III.A.c): moving the 256 Mb DRAM from 6-inch to
/// 8-inch wafers at equal wafer cost cuts the per-transistor cost, as
/// rows 13 → 14 of Table 3 imply (once their different Y₀ is removed).
#[test]
fn bigger_wafers_cut_cost_at_equal_assumptions() {
    let build = |radius: f64| {
        ProductScenario::builder("DRAM 256Mb")
            .transistors(TransistorCount::new(264.0e6).unwrap())
            .feature_size(Microns::new(0.25).unwrap())
            .design_density(DesignDensity::new(29.0).unwrap())
            .wafer_radius(Centimeters::new(radius).unwrap())
            .reference_yield(Probability::new(0.9).unwrap())
            .reference_wafer_cost(Dollars::new(600.0).unwrap())
            .cost_escalation(1.8)
            .unwrap()
            .build()
            .unwrap()
    };
    let six = build(7.5).evaluate().unwrap().cost_per_transistor.value();
    let eight = build(10.0).evaluate().unwrap().cost_per_transistor.value();
    assert!(eight < six);
    // Gain is roughly the area ratio adjusted for edge effects: 1.5–2.2×.
    let gain = six / eight;
    assert!((1.3..2.4).contains(&gain), "gain {gain}");
}
