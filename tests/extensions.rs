//! Integration tests for the extension modules through the facade:
//! yield learning, calendar roadmap, MPW shuttles, capacity rental and
//! sensitivity analysis working together.

use silicon_cost::cost_model::mpw::{price_shuttle, MpwProject, MpwRun};
use silicon_cost::cost_model::roadmap::CostRoadmap;
use silicon_cost::cost_model::sensitivity::{elasticities, CostDriver};
use silicon_cost::fabline::cost::FabEconomics;
use silicon_cost::fabline::process::ProcessFlow;
use silicon_cost::fabline::rental::bargaining_range;
use silicon_cost::prelude::*;
use silicon_cost::yield_model::learning::LearningCurve;

fn row2_scenario() -> ProductScenario {
    ProductScenario::builder("row2")
        .transistors(TransistorCount::new(3.1e6).unwrap())
        .feature_size(Microns::new(0.8).unwrap())
        .design_density(DesignDensity::new(150.0).unwrap())
        .wafer_radius(Centimeters::new(7.5).unwrap())
        .reference_yield(Probability::new(0.7).unwrap())
        .reference_wafer_cost(Dollars::new(700.0).unwrap())
        .cost_escalation(1.8)
        .unwrap()
        .build()
        .unwrap()
}

/// The learning curve, the cost model and the Table 3 anchor agree: at
/// the maturity month where the learned yield matches row 2's Y-implied
/// die yield, the learned cost per good die matches row 2's.
#[test]
fn learning_curve_consistent_with_table3_row() {
    let scenario = row2_scenario();
    let breakdown = scenario.evaluate().unwrap();
    let die_area = scenario.die_area();

    let curve = LearningCurve::new(
        DefectDensity::new(4.0).unwrap(),
        DefectDensity::new(0.05).unwrap(),
        6.0,
    )
    .unwrap();
    let months = curve
        .months_to_yield(breakdown.die_yield, die_area)
        .expect("row 2's 34.6% die yield is reachable");
    let learned_yield = curve.yield_at(months, die_area);
    assert!((learned_yield.value() - breakdown.die_yield.value()).abs() < 1e-6);

    // Cost per good die computed from the learned yield matches eq. (1).
    let raw = breakdown.wafer_cost.value() / breakdown.dies_per_wafer.as_f64();
    let learned_cost = raw / learned_yield.value();
    assert!((learned_cost - breakdown.cost_per_good_die.value()).abs() < 0.01);
}

/// The calendar roadmap behaves per Fig 7's X-dependence: at the
/// realistic X ≥ 1.8 the cost rises from the very start of the window
/// (the decline is already over), while at a milder X = 1.4 the decline
/// continues for years before an *interior* turning point.
#[test]
fn roadmap_turning_year_depends_on_escalation() {
    // Paper default (X = 2.0): the minimum sits at the window start.
    let steep = CostRoadmap::paper_default().unwrap();
    let turning = steep
        .realistic_turning_year(1986, 2002)
        .unwrap()
        .expect("turning year exists");
    assert_eq!(turning, 1986, "at X = 2.0 the decline is already over");

    // Milder escalation: the decline continues, then reverses mid-90s.
    let mild = CostRoadmap::new(
        silicon_cost::tech_trend::datasets::FEATURE_SIZE_BY_YEAR,
        Scenario1::fig6(1.2).unwrap(),
        Scenario2::fig7(1.4).unwrap(),
    )
    .unwrap();
    let turning = mild
        .realistic_turning_year(1986, 2002)
        .unwrap()
        .expect("interior turning year exists");
    assert!(
        (1988..=2000).contains(&turning),
        "interior turn expected, got {turning}"
    );
    let points = mild.project(1986, 2002).unwrap();
    let at = points[(turning - 1986) as usize].realistic.value();
    assert!(points[0].realistic.value() > at, "cost falls into the turn");
    assert!(
        points.last().unwrap().realistic.value() > at,
        "cost rises after the turn"
    );
}

/// MPW and rental answer the same niche-manufacturer question at two
/// scales, and both must find the niche path cheaper than standalone.
#[test]
fn niche_survival_strategies_beat_standalone() {
    // Shuttle for prototypes.
    let run = MpwRun {
        wafer: Wafer::six_inch(),
        wafer_cost: Dollars::new(1300.0).unwrap(),
        mask_set_cost: Dollars::new(80_000.0).unwrap(),
    };
    let projects = vec![
        MpwProject::new(
            "proto-a",
            DieDimensions::square(Centimeters::new(0.7).unwrap()),
            100,
        ),
        MpwProject::new(
            "proto-b",
            DieDimensions::square(Centimeters::new(0.5).unwrap()),
            100,
        ),
    ];
    let yield_model = AreaScaledYield::per_square_centimeter(Probability::new(0.7).unwrap());
    let costs = price_shuttle(&run, &projects, &yield_model).unwrap();
    assert!(costs.iter().all(|c| c.shuttle_wins()));

    // Rental for production volume.
    let econ = FabEconomics::default();
    let owner = vec![(ProcessFlow::for_generation("commodity", 0.8), 100_000.0)];
    let tenant = vec![(ProcessFlow::for_generation("niche", 0.8), 2_000.0)];
    let range = bargaining_range(&econ, &owner, &tenant);
    assert!(range.deal_exists());
    // The midpoint price beats the tenant's standalone cost.
    assert!(range.midpoint().value() < range.ceiling.value());
}

/// The sensitivity report ranks yield above wafer-cost drivers for the
/// big-die Table 3 rows — the quantitative version of "contain the cost
/// through yield learning before haggling over C0".
#[test]
fn sensitivity_ranks_yield_for_big_dies() {
    let report = elasticities(&row2_scenario(), 0.05).unwrap();
    let rank_of = |driver: CostDriver| {
        report
            .iter()
            .position(|e| e.driver == driver)
            .expect("driver present")
    };
    assert!(rank_of(CostDriver::ReferenceYield) < rank_of(CostDriver::ReferenceCost));
    // And the report covers every driver exactly once.
    assert_eq!(report.len(), CostDriver::ALL.len());
}
