//! Cross-validation between independent implementations: analytic yield
//! models vs the wafer Monte Carlo, eq. (4) vs exact raster placement,
//! and the capacity model vs the discrete-event simulator.

use silicon_cost::fabline::cost::FabEconomics;
use silicon_cost::fabline::des::{simulate as des_simulate, DesConfig};
use silicon_cost::fabline::process::ProcessFlow;
use silicon_cost::prelude::*;
use silicon_cost::wafer_geom::{maly, raster::RasterPlacement};
use silicon_cost::yield_model::monte_carlo::{
    analytic_clustered_yield, analytic_uniform_yield, simulate, DefectArrival,
};

fn rng(seed: u64) -> silicon_cost::yield_model::prng::Xoshiro256PlusPlus {
    silicon_cost::yield_model::prng::Xoshiro256PlusPlus::seed_from_u64(seed)
}

/// The yield Monte Carlo (spatial defects on a real wafer map) must
/// reproduce the Poisson closed form it shares no code with.
#[test]
fn monte_carlo_validates_poisson_yield() {
    let map = RasterPlacement::default().place(
        &Wafer::six_inch(),
        DieDimensions::square(Centimeters::new(1.2).unwrap()),
    );
    for d0 in [0.3, 0.8, 1.5] {
        let density = DefectDensity::new(d0).unwrap();
        let result = simulate(&map, DefectArrival::Uniform { density }, 300, &mut rng(42));
        let analytic = analytic_uniform_yield(&map, density).value();
        let measured = result.yield_estimate().value();
        assert!(
            (measured - analytic).abs() < 0.02,
            "D0={d0}: MC {measured:.4} vs analytic {analytic:.4}"
        );
    }
}

/// Clustered (gamma-mixed) defects must reproduce the negative-binomial
/// closed form — and beat Poisson at equal mean density.
#[test]
fn monte_carlo_validates_negative_binomial_yield() {
    let map = RasterPlacement::default().place(
        &Wafer::six_inch(),
        DieDimensions::square(Centimeters::new(1.2).unwrap()),
    );
    let density = DefectDensity::new(1.0).unwrap();
    for alpha in [0.8, 2.0] {
        let result = simulate(
            &map,
            DefectArrival::Clustered { density, alpha },
            500,
            &mut rng(7),
        );
        let analytic = analytic_clustered_yield(&map, density, alpha)
            .unwrap()
            .value();
        let measured = result.yield_estimate().value();
        assert!(
            (measured - analytic).abs() < 0.025,
            "alpha={alpha}: MC {measured:.4} vs NB {analytic:.4}"
        );
        assert!(measured > analytic_uniform_yield(&map, density).value());
    }
}

/// Eq. (4) and the exact rigid-grid placement agree to a few percent
/// across the die sizes Table 3 uses.
#[test]
fn eq4_validates_against_exact_placement() {
    let wafer = Wafer::six_inch();
    for row in silicon_cost::paper_data::table3::rows() {
        if row.wafer_radius_cm != 7.5 {
            continue;
        }
        let scenario = row.scenario().unwrap();
        let die = scenario.die();
        let eq4 = maly::dies_per_wafer(&wafer, die).as_f64();
        let exact = RasterPlacement::default()
            .place(&wafer, die)
            .count()
            .as_f64();
        assert!(
            (eq4 - exact).abs() / exact < 0.07,
            "row {}: eq4 {eq4} vs raster {exact}",
            row.id
        );
    }
}

/// The DES and the static capacity model must agree on utilization for a
/// feasible single-product load.
#[test]
fn des_validates_capacity_model() {
    let econ = FabEconomics::default();
    let flow = ProcessFlow::for_generation("cmos-0.8", 0.8);
    let demand = [(flow, 35_000.0)];
    let fab = econ.size_fab(&demand);
    let report = des_simulate(
        &fab,
        &demand,
        DesConfig {
            horizon_days: 90.0,
            ..DesConfig::default()
        },
    );
    let static_util = econ.utilization(&demand);
    let des_util: f64 = report
        .utilization_by_family
        .iter()
        .map(|(_, u)| u)
        .sum::<f64>()
        / report.utilization_by_family.len() as f64;
    // DES measures against scheduled time; static against available
    // (85%) time.
    let aligned = des_util / silicon_cost::fabline::equipment::AVAILABILITY;
    assert!(
        (aligned - static_util).abs() < 0.25,
        "DES {aligned:.3} vs static {static_util:.3}"
    );
}

/// The yield models plug interchangeably into the cost model and
/// preserve the classical ordering end to end (Poisson dearest, Seeds
/// cheapest at equal defect density).
#[test]
fn yield_model_swap_preserves_ordering_in_cost() {
    let d0 = DefectDensity::new(0.8).unwrap();
    let die = DieDimensions::square(Centimeters::new(1.3).unwrap());
    let n = TransistorCount::from_millions(2.0).unwrap();
    let wafer_cost = Dollars::new(1000.0).unwrap();
    let cost_with = |y: Box<dyn YieldModel>| {
        TransistorCostModel::new(Wafer::six_inch(), wafer_cost, y)
            .evaluate(die, n)
            .unwrap()
            .cost_per_transistor
            .value()
    };
    let poisson = cost_with(Box::new(PoissonYield::new(d0)));
    let murphy = cost_with(Box::new(MurphyYield::new(d0)));
    let seeds = cost_with(Box::new(SeedsYield::new(d0)));
    assert!(poisson > murphy && murphy > seeds);
}
