//! End-to-end reproduction of Table 3 through the public facade.

use silicon_cost::paper_data::table3::{self, CountProvenance};
use silicon_cost::prelude::*;

/// Every row of the paper's Table 3 must reproduce through the facade
/// within print tolerance; fully printed rows within 1%.
#[test]
fn full_table3_reproduces() {
    for row in table3::rows() {
        let measured = row
            .scenario()
            .expect("row inputs valid")
            .evaluate()
            .expect("row manufacturable")
            .cost_per_transistor
            .to_micro_dollars()
            .value();
        let rel = (measured - row.paper_cost_micro_dollars).abs() / row.paper_cost_micro_dollars;
        let tolerance = match row.count_provenance {
            CountProvenance::Printed => 0.01,
            CountProvenance::Inferred => 0.05,
        };
        assert!(
            rel < tolerance,
            "row {} ({}): measured {measured:.2} vs printed {} (rel {rel:.4})",
            row.id,
            row.name,
            row.paper_cost_micro_dollars
        );
    }
}

/// The cost-diversity conclusion: memory rows are an order of magnitude
/// cheaper per transistor than every logic row.
#[test]
fn memory_logic_diversity_holds_in_model_output() {
    let mut memory_max: f64 = 0.0;
    let mut logic_min = f64::INFINITY;
    for row in table3::rows() {
        let measured = row
            .scenario()
            .unwrap()
            .evaluate()
            .unwrap()
            .cost_per_transistor
            .to_micro_dollars()
            .value();
        if row.name.contains("RAM") {
            memory_max = memory_max.max(measured);
        } else {
            logic_min = logic_min.min(measured);
        }
    }
    assert!(
        logic_min > 3.0 * memory_max,
        "logic min {logic_min} vs memory max {memory_max}"
    );
}

/// The model must be stable under the alternative dies-per-wafer methods:
/// Table 3 conclusions don't hinge on eq. (4)'s row packing.
#[test]
fn conclusions_robust_to_die_packing_model() {
    // The exact raster agrees tightly; the closed-form edge correction
    // is an asymptotic estimate and drifts more on the largest dies.
    for (method, tolerance) in [
        (DiesPerWaferMethod::Raster { offset_steps: 8 }, 0.12),
        (DiesPerWaferMethod::EdgeCorrected, 0.25),
    ] {
        for row in table3::rows() {
            let baseline = row
                .scenario()
                .unwrap()
                .evaluate()
                .unwrap()
                .cost_per_transistor
                .value();
            let scenario = ProductScenario::builder(row.name)
                .transistors(TransistorCount::new(row.transistors).unwrap())
                .feature_size(Microns::new(row.feature_size_um).unwrap())
                .design_density(DesignDensity::new(row.design_density).unwrap())
                .wafer_radius(Centimeters::new(row.wafer_radius_cm).unwrap())
                .reference_yield(Probability::new(row.reference_yield).unwrap())
                .reference_wafer_cost(Dollars::new(row.reference_cost).unwrap())
                .cost_escalation(row.escalation)
                .unwrap()
                .dies_per_wafer_method(method)
                .build()
                .unwrap();
            let alternative = scenario.evaluate().unwrap().cost_per_transistor.value();
            let rel = (alternative - baseline).abs() / baseline;
            assert!(
                rel < tolerance,
                "row {} under {method:?}: {rel:.3} deviation",
                row.id
            );
        }
    }
}

/// The as-printed eq. (3) exponent (0.5 instead of 5) demonstrably fails
/// to reproduce the table — the calibration note's negative control.
#[test]
fn as_printed_exponent_fails_to_reproduce() {
    let row1 = &table3::rows()[0];
    let scenario = ProductScenario::builder(row1.name)
        .transistors(TransistorCount::new(row1.transistors).unwrap())
        .feature_size(Microns::new(row1.feature_size_um).unwrap())
        .design_density(DesignDensity::new(row1.design_density).unwrap())
        .wafer_radius(Centimeters::new(row1.wafer_radius_cm).unwrap())
        .reference_yield(Probability::new(row1.reference_yield).unwrap())
        .reference_wafer_cost(Dollars::new(row1.reference_cost).unwrap())
        .cost_escalation(row1.escalation)
        .unwrap()
        .generation_rate(WaferCostModel::AS_PRINTED_GENERATION_RATE)
        .build()
        .unwrap();
    let measured = scenario
        .evaluate()
        .unwrap()
        .cost_per_transistor
        .to_micro_dollars()
        .value();
    let rel = (measured - row1.paper_cost_micro_dollars).abs() / row1.paper_cost_micro_dollars;
    assert!(
        rel > 0.2,
        "as-printed exponent should miss by >20%, got {rel:.3}"
    );
}
