//! Shrink study: should we retarget a shipping design to the next node?
//!
//! The answer hinges on *which yield regime your fab lives in* — the
//! deepest sensitivity in the paper:
//!
//! * **Mature defect control** (the Table 3 convention, `Y = Y₀^A`):
//!   shrinking the die always helps yield, so the density gain wins and
//!   the shrink pays even under steep wafer-cost escalation.
//! * **Defect-recruitment regime** (eq. 7, `Y = exp(−A·D/λ^p)` with the
//!   paper's measured D = 1.72, p = 4.07): smaller features recruit the
//!   defect population's steep `1/R^p` tail, and the shrink backfires.
//!
//! Run with: `cargo run --example shrink_study`

use silicon_cost::cost_model::density::die_area;
use silicon_cost::prelude::*;
use silicon_cost::viz::lineplot::LinePlot;

const N_TR: f64 = 2.8e6; // a Table 3 row-7-class CMOS µP
const D_D: f64 = 102.0;

/// Cost per transistor at one node under a chosen yield model.
fn cost_at<Y: YieldModel>(
    lambda: Microns,
    yield_model: Y,
    wafer_cost_model: &WaferCostModel,
) -> Option<f64> {
    let transistors = TransistorCount::new(N_TR).ok()?;
    let density = DesignDensity::new(D_D).ok()?;
    let die = DieDimensions::square_with_area(die_area(transistors, density, lambda));
    let model = TransistorCostModel::new(
        Wafer::six_inch(),
        wafer_cost_model.wafer_cost(lambda),
        yield_model,
    );
    model
        .evaluate(die, transistors)
        .ok()
        .map(|b| b.cost_per_transistor.to_micro_dollars().value())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let wafer_cost = WaferCostModel::new(Dollars::new(700.0)?, 1.8)?;

    let mut mature = Vec::new();
    let mut recruiting = Vec::new();
    for i in 0..80 {
        let l = 0.35 + (1.2 - 0.35) * f64::from(i) / 79.0;
        let lambda = Microns::new(l)?;
        if let Some(c) = cost_at(
            lambda,
            AreaScaledYield::per_square_centimeter(Probability::new(0.7)?),
            &wafer_cost,
        ) {
            mature.push((l, c));
        }
        if let Some(c) = cost_at(
            lambda,
            ScaledPoissonYield::fig8_calibration(lambda)?,
            &wafer_cost,
        ) {
            recruiting.push((l, c));
        }
    }

    let plot = LinePlot::new("shrink study: 2.8M-tr CMOS µP, two yield regimes (X=1.8)")
        .with_series("mature (Y0^A)", &mature)
        .with_series("recruiting (eq.7)", &recruiting)
        .with_labels("λ [µm]", "µ$/tr")
        .log_y()
        .render(76, 24);
    println!("{plot}\n");

    let argmin = |series: &[(f64, f64)]| {
        series
            .iter()
            .copied()
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .expect("series is non-empty")
    };
    let (l_mature, c_mature) = argmin(&mature);
    let (l_recruit, c_recruit) = argmin(&recruiting);
    println!("mature defect control:  optimum λ = {l_mature:.2} µm at {c_mature:.2} µ$/tr");
    println!("defect recruitment:     optimum λ = {l_recruit:.2} µm at {c_recruit:.2} µ$/tr");
    println!();
    println!(
        "With mature contamination control the shrink is free money (the\n\
         optimum sits at the finest node in the window). In the eq. (7)\n\
         regime the same shrink walks into the defect distribution's 1/R^p\n\
         tail and the optimum retreats to {l_recruit:.2} µm — \"the optimum\n\
         solution may not call for the smallest possible feature size\"."
    );
    Ok(())
}
