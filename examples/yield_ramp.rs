//! Yield ramp: when is a new process node ready for your product?
//!
//! Scenario #1 quietly assumes mature yield ("at the mature stage of
//! each technology generation the yield is 100%"); real nodes are
//! *learned* into shape. This example uses the yield-learning substrate
//! to decide when to move a product onto a new node: launching early
//! pays a scrap premium, launching late forfeits the shrink's savings.
//!
//! Run with: `cargo run --example yield_ramp`

use silicon_cost::prelude::*;
use silicon_cost::yield_model::learning::LearningCurve;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The new 0.5 µm line starts dirty and learns with τ = 6 months
    // toward a mature 0.5 /cm².
    let curve = LearningCurve::new(DefectDensity::new(4.0)?, DefectDensity::new(0.5)?, 6.0)?;

    // Our product: 2.8M transistors at d_d = 102 — 0.71 cm² at 0.5 µm.
    let product_on_new_node = ProductScenario::builder("CMOS µP @ 0.5µm")
        .transistors(TransistorCount::new(2.8e6)?)
        .feature_size(Microns::new(0.5)?)
        .design_density(DesignDensity::new(102.0)?)
        .wafer_radius(Centimeters::new(7.5)?)
        .reference_yield(Probability::new(0.7)?) // placeholder; the curve supplies yield below
        .reference_wafer_cost(Dollars::new(700.0)?)
        .cost_escalation(1.8)?
        .build()?;
    let die_area = product_on_new_node.die_area();
    let breakdown = product_on_new_node.evaluate()?;
    let raw_die_cost = breakdown.wafer_cost / breakdown.dies_per_wafer.as_f64();

    // Today's cost on the mature 0.8 µm node (Table 3 row 7 class).
    let mature_old_node = ProductScenario::builder("CMOS µP @ 0.8µm")
        .transistors(TransistorCount::new(2.8e6)?)
        .feature_size(Microns::new(0.8)?)
        .design_density(DesignDensity::new(102.0)?)
        .wafer_radius(Centimeters::new(7.5)?)
        .reference_yield(Probability::new(0.7)?)
        .reference_wafer_cost(Dollars::new(700.0)?)
        .cost_escalation(1.8)?
        .build()?;
    let old_cost = mature_old_node.evaluate()?.cost_per_good_die.value();

    println!("die:                {:.3} cm² at 0.5 µm", die_area.value());
    println!(
        "raw die cost:       {:.2} $ (wafer/site, before yield)",
        raw_die_cost.value()
    );
    println!("staying at 0.8 µm:  {old_cost:.2} $/good die\n");
    println!("month  D(t)/cm²  yield   $/good die   verdict");

    let mut launch_month = None;
    for month in [0.0, 2.0, 4.0, 6.0, 9.0, 12.0, 18.0, 24.0] {
        let d = curve.density_at(month);
        let y = curve.yield_at(month, die_area);
        let per_good = raw_die_cost.value() / y.value();
        let verdict = if per_good < old_cost {
            if launch_month.is_none() {
                launch_month = Some(month);
            }
            "cheaper than 0.8 µm ✔"
        } else {
            "still too dirty"
        };
        println!(
            "{month:>5.0}  {:>8.2}  {:>5.1}%  {per_good:>10.2}   {verdict}",
            d.value(),
            y.as_percent()
        );
    }

    println!();
    match launch_month {
        Some(m) => println!(
            "→ the shrink starts paying about {m:.0} months into the ramp; \
             launching earlier burns money on scrap."
        ),
        None => println!("→ within two years the new node never beats the old one."),
    }

    // What a 12-month early launch would have cost in scrap:
    let premium = curve.ramp_scrap_premium(
        12.0,
        die_area,
        raw_die_cost,
        ProductionVolume::new(50_000.0)?,
    );
    println!(
        "→ committing 50k dies during the first 12 months costs an extra \
         {:.0} $ versus mature-yield production.",
        premium.value()
    );
    Ok(())
}
