//! MCM design: known good die, or a smarter substrate?
//!
//! Exercises the §§V–VI test-economics substrate: Williams–Brown escapes
//! from wafer probe, then the three-way module sourcing decision of
//! ref. [31] — probe-only dies, known-good dies, or an active
//! "smart substrate" that self-tests the assembled module.
//!
//! Run with: `cargo run --example mcm_design`

use silicon_cost::prelude::*;
use silicon_cost::test_economics::escapes;
use silicon_cost::test_economics::mcm::{DieSupply, KgdStudy, ModuleParameters};
use silicon_cost::viz::table::{Alignment, TextTable};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Wafer probe at 90% fault coverage on a 60%-yield die ships dies
    // with a Williams–Brown defect level of ~5%.
    let die_yield = Probability::new(0.6)?;
    let probe_coverage = Probability::new(0.9)?;
    let dl = escapes::defect_level(die_yield, probe_coverage);
    println!(
        "wafer probe: Y = {:.0}%, T = {:.0}% → defect level {:.1}% \
         ({:.0} DPM)",
        die_yield.as_percent(),
        probe_coverage.as_percent(),
        dl.as_percent(),
        escapes::defects_per_million(die_yield, probe_coverage)
    );

    let probe_dies = DieSupply::probe_only(Dollars::new(25.0)?, dl);
    // $13 of burn-in + full test per die buys 0.1% residual defect level.
    let kgd_dies = DieSupply::known_good(probe_dies, Dollars::new(13.0)?, Probability::new(0.001)?);

    let mut table = TextTable::new(vec![
        "dies/module",
        "probe-only $",
        "KGD $",
        "smart substrate $",
        "winner",
    ]);
    for col in 1..4 {
        table.align(col, Alignment::Right);
    }
    for n in [2u32, 4, 8, 12] {
        let module = ModuleParameters {
            dies_per_module: n,
            substrate_cost: Dollars::new(120.0)?,
            rework_cost: Dollars::new(80.0)?,
            assembly_fallout: Probability::new(0.005)?,
            scrap_fraction: Probability::new(0.5)?,
        };
        // Smart substrate: +$40 of active silicon, but self-test makes
        // every failure localizable (no scrap) and rework 10× cheaper.
        let study = KgdStudy::run(probe_dies, kgd_dies, module, Dollars::new(40.0)?, 0.1)?;
        table.row(vec![
            format!("{n}"),
            format!("{:.0}", study.probe_only.cost_per_good_module.value()),
            format!("{:.0}", study.kgd.cost_per_good_module.value()),
            format!("{:.0}", study.smart_substrate.cost_per_good_module.value()),
            study.winner().to_string(),
        ]);
    }
    println!("\ncost per good module:\n{}", table.render());

    println!(
        "\nThe *most expensive substrate* wins: its self-test turns module\n\
         fallout from exponential scrap into cheap targeted rework. \"But\n\
         traditional MCM strategies focus on the cost of the substrate\n\
         itself\" — exactly the accounting trap the paper warns against."
    );
    Ok(())
}
