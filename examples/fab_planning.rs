//! Fab planning: volume, product mix, and what a wafer really costs.
//!
//! Exercises the fab-line economics substrate (§III.A): the eq. (2)
//! overhead amortization, the product-mix penalty, and a discrete-event
//! sanity check of cycle times near saturation.
//!
//! Run with: `cargo run --example fab_planning`

use silicon_cost::fabline::cost::{product_mix_study, FabEconomics};
use silicon_cost::fabline::des::{simulate, DesConfig};
use silicon_cost::fabline::process::ProcessFlow;
use silicon_cost::prelude::*;
use silicon_cost::viz::table::{Alignment, TextTable};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Volume amortization (eq. 2): a $900 wafer with $5M of fixed
    //    overhead (masks, R&D) at different lifetime volumes.
    let volume_model = VolumeCostModel::new(Dollars::new(900.0)?, Dollars::new(5.0e6)?);
    println!("eq. (2) — wafer cost vs production volume ($900 true cost, $5M overhead):");
    for wafers in [1_000u64, 10_000, 100_000, 1_000_000] {
        println!(
            "  {wafers:>9} wafers → {:>8.0} $/wafer",
            volume_model.cost_at_volume(wafers)?.value()
        );
    }
    println!(
        "  (within 5% of true cost from {} wafers)\n",
        volume_model.volume_for_overhead_fraction(0.05)
    );

    // 2. The product-mix penalty (§III.A.d).
    let mut table = TextTable::new(vec![
        "niche products",
        "wafers/yr each",
        "$/wafer",
        "vs commodity fab",
    ]);
    for col in 1..4 {
        table.align(col, Alignment::Right);
    }
    for (n, v) in [(2usize, 20_000.0), (6, 2_000.0), (10, 500.0), (10, 300.0)] {
        let study = product_mix_study(n, v, 100_000.0);
        table.row(vec![
            format!("{n}"),
            format!("{v:.0}"),
            format!("{:.0}", study.multi_cost.value()),
            format!("{:.1}×", study.cost_ratio),
        ]);
    }
    println!("product-mix penalty (commodity fab: 100k wafers/yr, one flow):");
    println!("{}\n", table.render());

    // 3. Cycle time near saturation — the dynamic cost the static model
    //    doesn't show.
    let econ = FabEconomics::default();
    let flow = ProcessFlow::for_generation("cmos-0.8", 0.8);
    let fab = econ.size_fab(&[(flow.clone(), 50_000.0)]);
    println!("cycle time vs load (fab sized for 50k wafers/yr):");
    for load in [20_000.0, 45_000.0, 65_000.0] {
        let report = simulate(
            &fab,
            &[(flow.clone(), load)],
            DesConfig {
                horizon_days: 60.0,
                ..DesConfig::default()
            },
        );
        println!(
            "  {load:>7.0} wafers/yr → {:.0} h cycle time, peak WIP {}",
            report.mean_cycle_time_hours, report.peak_wip
        );
    }
    println!(
        "\nTakeaway: the same physical wafer costs 1× in a loaded commodity\n\
         fab and up to ~7× in a fragmented niche fab — before any die is\n\
         even designed. This is the \"product mix\" lever of §III.A.d."
    );
    Ok(())
}
