//! Quickstart: price a product, inspect the breakdown, and see why the
//! same design costs 3× more under pessimistic manufacturing assumptions.
//!
//! Run with: `cargo run --example quickstart`

use silicon_cost::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 3.1 M-transistor BiCMOS microprocessor at the 0.8 µm node —
    // row 1 of the paper's Table 3.
    let optimistic = ProductScenario::builder("BiCMOS µP (optimistic fab)")
        .transistors(TransistorCount::new(3.1e6)?)
        .feature_size(Microns::new(0.8)?)
        .design_density(DesignDensity::new(150.0)?) // λ²/transistor, Table 2 territory
        .wafer_radius(Centimeters::new(7.5)?) // 6-inch wafer
        .reference_yield(Probability::new(0.9)?) // 90% yield on a 1 cm² die
        .reference_wafer_cost(Dollars::new(700.0)?) // $700 for the 1 µm reference wafer
        .cost_escalation(1.4)? // X: wafer cost growth per generation
        .build()?;

    let cost = optimistic.evaluate()?;
    println!("product:            {optimistic}");
    println!(
        "die area:           {:.3} cm²",
        optimistic.die_area().value()
    );
    println!("wafer cost C_w:     {:.0} $", cost.wafer_cost.value());
    println!("dies per wafer:     {}", cost.dies_per_wafer);
    println!("die yield Y:        {:.1}%", cost.die_yield.as_percent());
    println!("good dies/wafer:    {:.1}", cost.good_dies_per_wafer);
    println!(
        "cost per good die:  {:.2} $",
        cost.cost_per_good_die.value()
    );
    println!(
        "cost/transistor:    {:.2} µ$   (paper prints 9.40 µ$)",
        cost.cost_per_transistor.to_micro_dollars().value()
    );

    // The same silicon under realistic assumptions (Table 3 row 2):
    // yield drops to 70%/cm², escalation climbs to X = 1.8.
    let realistic = ProductScenario::builder("BiCMOS µP (realistic fab)")
        .transistors(TransistorCount::new(3.1e6)?)
        .feature_size(Microns::new(0.8)?)
        .design_density(DesignDensity::new(150.0)?)
        .wafer_radius(Centimeters::new(7.5)?)
        .reference_yield(Probability::new(0.7)?)
        .reference_wafer_cost(Dollars::new(700.0)?)
        .cost_escalation(1.8)?
        .build()?;
    let realistic_cost = realistic.evaluate()?;
    let ratio = realistic_cost.cost_per_transistor.value() / cost.cost_per_transistor.value();
    println!();
    println!(
        "realistic fab:      {:.2} µ$  ({ratio:.1}× dearer — paper prints 25.50 µ$)",
        realistic_cost
            .cost_per_transistor
            .to_micro_dollars()
            .value()
    );
    println!();
    println!(
        "Same design, same node — manufacturing assumptions alone move the\n\
         transistor cost by {ratio:.1}×. That sensitivity is the paper's point."
    );
    Ok(())
}
