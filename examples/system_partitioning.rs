//! System partitioning: split a µP across dies with per-die nodes.
//!
//! Sec. IV.B: "by including in the IC system design process such
//! variables as sizes of the system's partitions and minimum feature
//! sizes of each partition one can minimize the overall system cost."
//! This example takes the real functional blocks of the paper's Table 1
//! (a three-million-transistor microprocessor) and lets the optimizer
//! choose the die grouping and per-die feature sizes.
//!
//! Run with: `cargo run --example system_partitioning`

use silicon_cost::cost_model::system::{ManufacturingContext, Partition, SystemDesign};
use silicon_cost::optim::partition::optimize;
use silicon_cost::paper_data::table1;
use silicon_cost::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The Table 1 blocks become system partitions with their measured
    // densities — scaled 8× to model the next-but-one generation of the
    // same architecture (a ~25 M-transistor part), where die yield
    // starts to dominate the economics.
    let partitions: Vec<Partition> = table1::blocks()
        .into_iter()
        .map(|b| {
            Partition::new(
                b.name,
                TransistorCount::new(b.transistors * 8.0).expect("printed counts are positive"),
                DesignDensity::new(b.paper_density).expect("printed densities are positive"),
            )
        })
        .collect();
    let system = SystemDesign::new(partitions)?;

    let context = ManufacturingContext {
        wafer: Wafer::six_inch(),
        reference_yield: Probability::new(0.7)?,
        wafer_cost: WaferCostModel::new(Dollars::new(700.0)?, 2.4)?,
        per_die_overhead: Dollars::new(8.0)?, // package + per-die test insertion
    };
    let ladder: Vec<Microns> = [1.0, 0.8, 0.65, 0.5]
        .iter()
        .map(|&l| Microns::new(l).expect("positive"))
        .collect();

    // Baseline: the monolithic chip at 0.8 µm (how it actually shipped).
    let n = system.partitions().len();
    let monolithic = system.evaluate(&context, &vec![0; n], &[Microns::new(0.8)?])?;
    println!(
        "monolithic die at 0.8 µm: {:.2} $/system",
        monolithic.total.value()
    );

    // Optimized: free grouping, free per-die node.
    let solution = optimize(&system, &context, &ladder)?;
    println!(
        "optimized partitioning:   {:.2} $/system  ({:.0}% saved)\n",
        solution.cost.total.value(),
        (1.0 - solution.cost.total.value() / monolithic.total.value()) * 100.0
    );

    for die in &solution.cost.dies {
        println!(
            "  die at {:.2} µm  [{}]  yield {:.0}%  cost {:.2} $",
            die.lambda.value(),
            die.partition_names.join(" + "),
            die.breakdown.die_yield.as_percent(),
            die.die_cost_with_overhead.value(),
        );
    }

    println!(
        "\nThe optimizer exploits the 9× density spread between the caches\n\
         (43–51 λ²/tr) and the control blocks (up to 399 λ²/tr): dense\n\
         blocks earn their keep on expensive fine nodes, sparse ones don't."
    );
    Ok(())
}
