//! # silicon-cost
//!
//! A production-quality Rust implementation of the analytical silicon
//! cost model from **W. Maly, "Cost of Silicon Viewed from VLSI Design
//! Perspective", DAC 1994**, together with every substrate the paper's
//! analysis rests on: dies-per-wafer geometry, functional/parametric
//! yield models, technology trends, fab-line economics, and test/MCM
//! economics.
//!
//! This crate is a facade: it re-exports the workspace crates under
//! stable module names and offers a [`prelude`] for the common types.
//!
//! ## Quick start
//!
//! Reproduce row 1 of the paper's Table 3 — a 3.1 M-transistor BiCMOS
//! microprocessor at 0.8 µm costing 9.40 µ$ per transistor:
//!
//! ```
//! use silicon_cost::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let product = ProductScenario::builder("BiCMOS µP")
//!     .transistors(TransistorCount::new(3.1e6)?)
//!     .feature_size(Microns::new(0.8)?)
//!     .design_density(DesignDensity::new(150.0)?)
//!     .wafer_radius(Centimeters::new(7.5)?)
//!     .reference_yield(Probability::new(0.9)?)
//!     .reference_wafer_cost(Dollars::new(700.0)?)
//!     .cost_escalation(1.4)?
//!     .build()?;
//!
//! let cost = product.evaluate()?;
//! assert_eq!(cost.dies_per_wafer.value(), 46);
//! let micro = cost.cost_per_transistor.to_micro_dollars().value();
//! assert!((micro - 9.40).abs() < 0.05);
//! # Ok(())
//! # }
//! ```
//!
//! ## Module map
//!
//! | Module | Contents |
//! |--------|----------|
//! | [`units`] | Typed quantities (µm, cm², $, probabilities, densities) |
//! | [`wafer_geom`] | Dies-per-wafer: eq. (4), raster placement, bounds |
//! | [`yield_model`] | Poisson/Murphy/Seeds/NB yields, defect sizes, critical area, redundancy, Monte Carlo |
//! | [`tech_trend`] | Figs 1–4 datasets and trend fitting |
//! | [`fabline`] | Fab capacity/utilization economics, product mix, DES |
//! | [`test_economics`] | Test time, Williams–Brown escapes, DFT, MCM/KGD |
//! | [`cost_model`] | Eqs (1)–(9): the transistor cost model and scenarios |
//! | [`optim`] | λ optimization, Fig 8 contours, system partitioning |
//! | [`viz`] | Text plots, wafer maps, tables, CSV |
//! | [`paper_data`] | Everything the paper prints (Tables 1–3, captions) |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use maly_cost_model as cost_model;
pub use maly_cost_optim as optim;
pub use maly_fabline_sim as fabline;
pub use maly_paper_data as paper_data;
pub use maly_tech_trend as tech_trend;
pub use maly_test_economics as test_economics;
pub use maly_units as units;
pub use maly_viz as viz;
pub use maly_wafer_geom as wafer_geom;
pub use maly_yield_model as yield_model;

/// The types almost every user touches.
pub mod prelude {
    pub use maly_cost_model::product::ProductScenario;
    pub use maly_cost_model::scenario::{Scenario1, Scenario2};
    pub use maly_cost_model::{
        CostBreakdown, CostError, DiesPerWaferMethod, TransistorCostModel, VolumeCostModel,
        WaferCostModel,
    };
    pub use maly_units::{
        Centimeters, DefectDensity, DesignDensity, DieCount, Dollars, MicroDollars, Microns,
        MicronsDelta, Millimeters, Probability, ProductionVolume, ReferenceDefectDensity,
        SquareCentimeters, SquareMicrons, SquareMillimeters, TransistorCount, UnitError,
    };
    pub use maly_wafer_geom::{DieDimensions, Wafer, WaferMap};
    pub use maly_yield_model::{
        AreaScaledYield, CompositeYield, MurphyYield, NegativeBinomialYield, PerfectYield,
        PoissonYield, ScaledPoissonYield, SeedsYield, YieldModel,
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_resolve() {
        use crate::prelude::*;
        let wafer = Wafer::six_inch();
        assert!((wafer.area().value() - 176.7).abs() < 0.1);
        let y = PoissonYield::new(DefectDensity::new(0.5).unwrap());
        let p = y.die_yield(SquareCentimeters::new(1.0).unwrap());
        assert!(p.value() > 0.0);
    }
}
