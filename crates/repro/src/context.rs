//! Shared setup for the reproduction harness.
//!
//! Several experiments consume the same derived artifacts: the
//! tech-trend fits (Figs 1–4), the Table 3 row set (table3 + ablation),
//! the calendar roadmap, and the Fig 8 cost surface — by far the most
//! expensive single object the harness builds. Before this module each
//! experiment re-derived its own copy; the `all` binary paid for the
//! Fig 8 surface twice and re-fit every trend. Hoisting them into one
//! lazily-built [`SharedContext`] makes the derivation happen exactly
//! once per process, even when experiments run concurrently on the
//! [`maly_par::Executor`] (the `OnceLock` arbitrates the race).

use std::sync::OnceLock;

use maly_cost_model::roadmap::CostRoadmap;
use maly_cost_model::surface::{CostSurface, SurfaceParameters};
use maly_paper_data::table3::{self, Table3Row};
use maly_tech_trend::diesize::DieSizeTrend;
use maly_tech_trend::fit::{CostEscalationFit, ExponentialFit};
use maly_tech_trend::{datasets, fit};

/// The Fig 8 grid the reports render: `(λ min, λ max, steps)`.
pub const FIG8_LAMBDA_RANGE: (f64, f64, usize) = (0.4, 1.5, 56);
/// The Fig 8 grid the reports render: `(N_tr min, N_tr max, steps)`.
pub const FIG8_N_TR_RANGE: (f64, f64, usize) = (2.0e4, 4.0e6, 48);

/// Every artifact derived once and shared by the experiments.
#[derive(Debug)]
pub struct SharedContext {
    /// Fig 1: exponential fit of feature size vs year.
    pub feature_trend: ExponentialFit,
    /// Fig 2a: exponential fit of fab cost vs year.
    pub fab_cost_trend: ExponentialFit,
    /// Fig 2b: the wafer-cost escalation factor `X` and `C₀`.
    pub wafer_cost_escalation: CostEscalationFit,
    /// Fig 3: `A_ch(λ)` re-fit from the die-size-by-node dataset.
    pub die_size_fit: DieSizeTrend,
    /// Fig 3/4: the paper's printed `16.5·e^{−5.3λ}` coefficients.
    pub die_size_paper: DieSizeTrend,
    /// Roadmap experiment: the two-scenario calendar projection.
    pub roadmap: CostRoadmap,
    /// Table 3 + ablation: all printed rows.
    pub table3_rows: Vec<Table3Row>,
    /// Fig 8: the paper's fab calibration.
    pub fig8_params: SurfaceParameters,
    /// Fig 8: the full cost surface on the report grid.
    pub fig8_surface: CostSurface,
}

/// The process-wide context, built on first use.
///
/// # Panics
///
/// Panics if a built-in dataset fails to fit — impossible for the
/// checked-in data, and a reproduction without its calibration cannot
/// report anything anyway.
#[must_use]
pub fn shared() -> &'static SharedContext {
    static CONTEXT: OnceLock<SharedContext> = OnceLock::new();
    CONTEXT.get_or_init(|| {
        let fig8_params = SurfaceParameters::fig8();
        SharedContext {
            feature_trend: fit::fit_exponential(datasets::FEATURE_SIZE_BY_YEAR)
                .expect("dataset is positive"),
            fab_cost_trend: fit::fit_exponential(datasets::FAB_COST_BY_YEAR)
                .expect("dataset is positive"),
            wafer_cost_escalation: fit::extract_cost_escalation(datasets::WAFER_COST_BY_GENERATION)
                .expect("dataset is positive"),
            die_size_fit: DieSizeTrend::fit(datasets::DIE_SIZE_BY_GENERATION)
                .expect("dataset is positive"),
            die_size_paper: DieSizeTrend::paper_fit(),
            roadmap: CostRoadmap::paper_default().expect("built-in datasets are valid"),
            table3_rows: table3::rows(),
            fig8_surface: CostSurface::compute(&fig8_params, FIG8_LAMBDA_RANGE, FIG8_N_TR_RANGE),
            fig8_params,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_context_is_one_instance() {
        let a: *const SharedContext = shared();
        let b: *const SharedContext = shared();
        assert_eq!(a, b, "two calls must return the same allocation");
    }

    #[test]
    fn shared_artifacts_match_fresh_derivations() {
        let ctx = shared();
        assert_eq!(
            ctx.feature_trend,
            fit::fit_exponential(datasets::FEATURE_SIZE_BY_YEAR).unwrap()
        );
        assert_eq!(ctx.table3_rows, table3::rows());
        assert_eq!(ctx.table3_rows.len(), 17, "Table 3 prints 17 rows");
        assert_eq!(
            ctx.fig8_surface,
            CostSurface::compute(&ctx.fig8_params, FIG8_LAMBDA_RANGE, FIG8_N_TR_RANGE)
        );
    }
}
