//! Shared setup for the reproduction harness.
//!
//! The derived-artifact context that used to live here moved to
//! [`maly_model::context`] so the query API, the serve layer, and the
//! harness all share one process-wide derivation. This module stays as
//! a re-export shim so existing experiment code (`context::shared()`)
//! keeps compiling unchanged.

pub use maly_model::context::{shared, SharedContext, FIG8_LAMBDA_RANGE, FIG8_N_TR_RANGE};
