//! Reproduction harness: regenerates every table and figure of
//! Maly, DAC 1994.
//!
//! Each experiment lives in [`experiments`] as a function returning an
//! [`ExperimentReport`]; the `fig1`…`fig8`, `table1`…`table3`,
//! `product_mix` and `mcm_kgd` binaries print one report each, and the
//! `all` binary concatenates everything into the EXPERIMENTS.md format.
//!
//! Reports deliberately interleave *paper-reported* values with
//! *measured* values so the fidelity of the reproduction is visible line
//! by line.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod context;
pub mod experiments;

/// A rendered experiment: identifier, title, and markdown body.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentReport {
    /// Short identifier (`"fig6"`, `"table3"`, …).
    pub id: &'static str,
    /// Human title.
    pub title: &'static str,
    /// Markdown body (tables, fenced ASCII plots, commentary).
    pub body: String,
}

impl ExperimentReport {
    /// Renders the report as a standalone markdown section.
    #[must_use]
    pub fn to_markdown(&self) -> String {
        format!("## {} — {}\n\n{}\n", self.id, self.title, self.body)
    }
}

impl std::fmt::Display for ExperimentReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.to_markdown())
    }
}

/// Every experiment in paper order.
///
/// The reports are generated concurrently on the ambient
/// [`maly_par::Executor`] (`MALY_PAR_THREADS`); results come back in
/// paper order regardless of which thread finished first, and the
/// shared setup in [`context`] is derived exactly once however the
/// experiments interleave.
#[must_use]
pub fn all_experiments() -> Vec<ExperimentReport> {
    type Experiment = (&'static str, fn() -> ExperimentReport);
    const EXPERIMENTS: [Experiment; 17] = [
        ("repro.fig1", experiments::fig1::report),
        ("repro.fig2", experiments::fig2::report),
        ("repro.fig3", experiments::fig3::report),
        ("repro.fig4", experiments::fig4::report),
        ("repro.fig5", experiments::fig5::report),
        ("repro.table1", experiments::table1::report),
        ("repro.table2", experiments::table2::report),
        ("repro.fig6", experiments::fig6::report),
        ("repro.fig7", experiments::fig7::report),
        ("repro.fig8", experiments::fig8::report),
        ("repro.table3", experiments::table3::report),
        ("repro.product_mix", experiments::product_mix::report),
        ("repro.mcm_kgd", experiments::mcm_kgd::report),
        ("repro.chiplet", experiments::chiplet::report),
        ("repro.roadmap", experiments::roadmap::report),
        ("repro.system_opt", experiments::system_opt::report),
        ("repro.ablation", experiments::ablation::report),
    ];
    // One span per experiment, all under a single `repro.all` root.
    // When the map goes parallel, each worker's chunk span carries the
    // parent link, so experiment spans nest correctly across threads.
    let all_span = maly_obs::span("repro.all");
    let all_id = all_span.id();
    maly_par::Executor::from_env().map(&EXPERIMENTS, |(name, report)| {
        let _span = maly_obs::span_child(name, maly_obs::current_span().or(all_id));
        report()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_experiments_render_nonempty_reports() {
        let reports = all_experiments();
        assert_eq!(reports.len(), 17);
        for r in &reports {
            assert!(!r.body.trim().is_empty(), "{} is empty", r.id);
            assert!(r.to_markdown().starts_with("## "));
        }
    }

    #[test]
    fn experiment_ids_are_unique() {
        let reports = all_experiments();
        let mut ids: Vec<&str> = reports.iter().map(|r| r.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), reports.len());
    }
}
