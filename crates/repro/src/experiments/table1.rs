//! Table 1 — µP functional block densities.

use maly_paper_data::table1;
use maly_viz::table::{Alignment, TextTable};

use crate::experiments::rel_err_percent;
use crate::ExperimentReport;

/// Regenerates Table 1: derives each block's density from its printed
/// area and transistor count, against the printed density.
#[must_use]
pub fn report() -> ExperimentReport {
    let mut table = TextTable::new(vec![
        "block",
        "area [mm²]",
        "transistors",
        "d_d paper [λ²/tr]",
        "d_d derived",
        "error",
    ]);
    for col in 1..6 {
        table.align(col, Alignment::Right);
    }
    for block in table1::blocks() {
        table.row(vec![
            block.name.to_string(),
            format!("{:.1}", block.area_mm2),
            format!("{:.0}k", block.transistors / 1e3),
            format!("{:.1}", block.paper_density),
            format!("{:.1}", block.derived_density()),
            rel_err_percent(block.derived_density(), block.paper_density),
        ]);
    }

    let body = format!(
        "{}\n\nDeriving `d_d = A/(N·λ²)` at λ = 0.8 µm reproduces every \
         printed density to rounding. The 9× spread between the I-cache \
         (43.2) and the bus unit (399) inside *one chip* is the paper's \
         evidence that density — and therefore transistor cost — is a \
         design property.\n",
        table.render()
    );
    ExperimentReport {
        id: "table1",
        title: "Design densities of µP functional blocks",
        body,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_block_reproduces() {
        for block in table1::blocks() {
            let rel = (block.derived_density() - block.paper_density).abs() / block.paper_density;
            assert!(rel < 0.01, "{}", block.name);
        }
        assert!(report().body.contains("I-cache"));
    }
}
