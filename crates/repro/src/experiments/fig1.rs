//! Fig 1 — minimum feature size vs year.

use maly_tech_trend::datasets;
use maly_viz::lineplot::LinePlot;
use maly_viz::table::{Alignment, TextTable};

use crate::context;
use crate::ExperimentReport;

/// Regenerates Fig 1: the exponential feature-size shrink.
#[must_use]
pub fn report() -> ExperimentReport {
    let data = datasets::FEATURE_SIZE_BY_YEAR;
    let trend = context::shared().feature_trend;
    let halving_years = -(2.0f64.ln()) / trend.rate();

    let plot = LinePlot::new("Fig 1: minimum feature size vs year")
        .with_series("feature size [µm]", data)
        .log_y()
        .with_labels("year", "µm")
        .render(72, 20);

    let mut table = TextTable::new(vec!["year", "node [µm]", "trend fit [µm]"]);
    table.align(1, Alignment::Right);
    table.align(2, Alignment::Right);
    for (year, node) in data {
        table.row(vec![
            format!("{year:.0}"),
            format!("{node}"),
            format!("{:.2}", trend.predict(*year)),
        ]);
    }

    let body = format!(
        "The paper's Fig 1 shows the feature size falling exponentially \
         from 10 µm (1971) toward 0.25 µm (late 1990s).\n\n```text\n{plot}\n```\n\n\
         {}\n\nFitted exponential: rate {:.4}/year (R² = {:.4}), i.e. the \
         feature size halves every {:.1} years — the classic node cadence.\n",
        table.render(),
        trend.rate(),
        trend.r_squared(),
        halving_years,
    );
    ExperimentReport {
        id: "fig1",
        title: "Minimum feature size trend",
        body,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_contains_trend_and_halving_time() {
        let r = report();
        assert!(r.body.contains("halves every"));
        assert!(r.body.contains("Fig 1"));
        // The fitted halving time should be quoted between 4 and 8 years.
        let trend = context::shared().feature_trend;
        let halving = -(2.0f64.ln()) / trend.rate();
        assert!(halving > 4.0 && halving < 8.0);
    }
}
