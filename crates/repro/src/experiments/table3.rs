//! Table 3 — the cost diversity study (the reproduction's anchor).

use maly_paper_data::table3::CountProvenance;
use maly_viz::barchart::BarChart;
use maly_viz::table::{Alignment, TextTable};

use crate::context;
use crate::experiments::rel_err_percent;
use crate::ExperimentReport;

/// Regenerates all 17 rows of Table 3 and compares with the printed
/// costs.
#[must_use]
pub fn report() -> ExperimentReport {
    let mut table = TextTable::new(vec![
        "#",
        "IC type",
        "N_tr",
        "λ",
        "d_d",
        "R_w",
        "Y0",
        "C0",
        "X",
        "N_ch",
        "Y",
        "paper [µ$]",
        "model [µ$]",
        "error",
    ]);
    for col in 2..14 {
        table.align(col, Alignment::Right);
    }

    let mut worst_printed: f64 = 0.0;
    for row in &context::shared().table3_rows {
        let breakdown = row
            .scenario()
            .expect("printed inputs are valid")
            .evaluate()
            .expect("printed products are manufacturable");
        let measured = breakdown.cost_per_transistor.to_micro_dollars().value();
        let rel = (measured - row.paper_cost_micro_dollars).abs() / row.paper_cost_micro_dollars;
        if row.count_provenance == CountProvenance::Printed {
            worst_printed = worst_printed.max(rel);
        }
        let n_tr_label = if row.transistors >= 1.0e6 {
            format!("{:.2}M", row.transistors / 1.0e6)
        } else {
            format!("{:.0}k", row.transistors / 1.0e3)
        };
        let provenance = match row.count_provenance {
            CountProvenance::Printed => "",
            CountProvenance::Inferred => "*",
        };
        table.row(vec![
            format!("{}", row.id),
            row.name.to_string(),
            format!("{n_tr_label}{provenance}"),
            format!("{}", row.feature_size_um),
            format!("{:.0}", row.design_density),
            format!("{}", row.wafer_radius_cm),
            format!("{:.1}", row.reference_yield),
            format!("{:.0}", row.reference_cost),
            format!("{}", row.escalation),
            format!("{}", breakdown.dies_per_wafer.value()),
            format!("{:.3}", breakdown.die_yield.value()),
            format!("{:.2}", row.paper_cost_micro_dollars),
            format!("{measured:.2}"),
            rel_err_percent(measured, row.paper_cost_micro_dollars),
        ]);
    }

    let mut chart = BarChart::new("cost diversity (µ$/transistor, log scale)").log_scale();
    for row in &context::shared().table3_rows {
        let measured = row
            .scenario()
            .expect("printed inputs valid")
            .evaluate()
            .expect("printed products manufacturable")
            .cost_per_transistor
            .to_micro_dollars()
            .value();
        chart = chart.with_bar(format!("{:>2} {}", row.id, row.name), measured);
    }

    let body = format!(
        "{}\n\n```text\n{}\n```\n\n`*` — transistor count illegible in the scan, back-solved \
         from the printed cost (rows 4 and 16; see DESIGN.md).\n\n\
         Worst relative error over the fully printed rows: {:.2}%. The \
         model is eqs (1) + (3) [calibrated exponent 5(1−λ)] + (4) + the \
         `Y₀^{{A}}` yield convention — no per-row tuning.\n\n\
         Headline conclusions carried by the table:\n\
         * memory transistors (rows 11–14, 0.93–2.18 µ$) are 10–50× \
           cheaper than logic transistors — \"any discussion based on the \
           memory cost data should not be extrapolated onto other types \
           of ICs\";\n\
         * design/manufacturing choices swing cost by 258× end to end \
           (row 11 vs row 17).\n",
        table.render(),
        chart.render(76),
        worst_printed * 100.0
    );
    ExperimentReport {
        id: "table3",
        title: "Cost per transistor — 17 product scenarios",
        body,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_includes_all_rows_and_tight_errors() {
        let r = report();
        for id in 1..=17 {
            assert!(
                r.body
                    .lines()
                    .any(|l| l.trim_start().starts_with(&format!("{id} "))),
                "row {id} missing"
            );
        }
        assert!(r.body.contains("Worst relative error"));
    }
}
