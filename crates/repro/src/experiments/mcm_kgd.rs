//! §§V–VI — MCM known-good-die and smart-substrate economics.

use maly_test_economics::mcm::{DieSupply, KgdStudy, ModuleParameters};
use maly_units::{Dollars, Probability};
use maly_viz::table::{Alignment, TextTable};

use crate::ExperimentReport;

fn dollars(v: f64) -> Dollars {
    Dollars::new(v).expect("positive")
}

fn p(v: f64) -> Probability {
    Probability::new(v).expect("probability")
}

/// Regenerates the known-good-die study behind refs \[30, 31\]: probe-only
/// vs KGD vs smart substrate across module sizes.
#[must_use]
pub fn report() -> ExperimentReport {
    let probe = DieSupply::probe_only(dollars(25.0), p(0.05));
    let kgd = DieSupply::known_good(probe, dollars(13.0), p(0.001));

    let mut table = TextTable::new(vec![
        "dies/module",
        "probe-only $/good",
        "KGD $/good",
        "smart substrate $/good",
        "winner",
    ]);
    for col in 1..4 {
        table.align(col, Alignment::Right);
    }

    let mut winners = Vec::new();
    for n in [2u32, 4, 6, 8, 10, 14] {
        let module = ModuleParameters {
            dies_per_module: n,
            substrate_cost: dollars(120.0),
            rework_cost: dollars(80.0),
            assembly_fallout: p(0.005),
            scrap_fraction: p(0.5),
        };
        let study =
            KgdStudy::run(probe, kgd, module, dollars(40.0), 0.1).expect("valid study inputs");
        winners.push((n, study.winner()));
        table.row(vec![
            format!("{n}"),
            format!("{:.0}", study.probe_only.cost_per_good_module.value()),
            format!("{:.0}", study.kgd.cost_per_good_module.value()),
            format!("{:.0}", study.smart_substrate.cost_per_good_module.value()),
            study.winner().to_string(),
        ]);
    }

    let body = format!(
        "{}\n\nPaper: *\"by applying active silicon substrate (i.e. very \
         expensive substrate) one can build a smart substrate system which \
         can minimize the overall system cost ... But traditional MCM \
         strategies focus on the cost of the substrate itself.\"* The study \
         shows exactly that inversion: the +\\$40 active substrate wins \
         across module sizes because perfect fault localization removes \
         module scrap and cheapens rework, beating both cheap probe-only \
         dies (whose fallout compounds exponentially with module size) and \
         per-die KGD testing (whose cost is linear in die count).\n",
        table.render()
    );
    ExperimentReport {
        id: "mcm_kgd",
        title: "MCM known-good-die economics (§§V–VI)",
        body,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smart_substrate_wins_large_modules() {
        let r = report();
        assert!(r.body.contains("smart substrate"));
        // And the raw study confirms for the largest module size.
        let probe = DieSupply::probe_only(dollars(25.0), p(0.05));
        let kgd = DieSupply::known_good(probe, dollars(13.0), p(0.001));
        let module = ModuleParameters {
            dies_per_module: 14,
            substrate_cost: dollars(120.0),
            rework_cost: dollars(80.0),
            assembly_fallout: p(0.005),
            scrap_fraction: p(0.5),
        };
        let study = KgdStudy::run(probe, kgd, module, dollars(40.0), 0.1).unwrap();
        assert_eq!(study.winner(), "smart substrate");
    }
}
