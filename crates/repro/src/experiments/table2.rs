//! Table 2 — design density spectrum across IC types.

use maly_paper_data::table2::{self, IcCategory};
use maly_viz::table::{Alignment, TextTable};

use crate::ExperimentReport;

/// Regenerates Table 2 and its category summary.
#[must_use]
pub fn report() -> ExperimentReport {
    let mut table = TextTable::new(vec!["type of IC", "λ [µm]", "d_d [λ²/tr]"]);
    table.align(1, Alignment::Right);
    table.align(2, Alignment::Right);
    for row in table2::rows() {
        table.row(vec![
            row.name.to_string(),
            format!("{}", row.feature_size_um),
            format!("{:.2}", row.density),
        ]);
    }

    let mut summary = TextTable::new(vec!["category", "mean d_d [λ²/tr]"]);
    summary.align(1, Alignment::Right);
    for category in [
        IcCategory::Memory,
        IcCategory::Microprocessor,
        IcCategory::GateArray,
        IcCategory::Pld,
    ] {
        summary.row(vec![
            category.to_string(),
            format!("{:.1}", table2::mean_density(category)),
        ]);
    }

    let body = format!(
        "{}\n\nCategory means:\n\n{}\n\n\"The large difference occurs \
         between different designs\": two orders of magnitude separate the \
         densest memory (17.8) from the PLD (2631) — which Table 3 turns \
         into a 258× cost-per-transistor spread.\n",
        table.render(),
        summary.render()
    );
    ExperimentReport {
        id: "table2",
        title: "Design density spectrum",
        body,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_orders_categories() {
        assert!(table2::mean_density(IcCategory::Memory) < 50.0);
        assert!(table2::mean_density(IcCategory::Pld) > 2000.0);
        assert!(report().body.contains("2631"));
    }
}
