//! Fig 7 — Scenario #2: transistor cost *rises* with shrink.

use maly_cost_model::scenario::Scenario2;
use maly_paper_data::figures;
use maly_units::Microns;
use maly_viz::lineplot::LinePlot;
use maly_viz::table::{Alignment, TextTable};

use crate::ExperimentReport;

/// Regenerates Fig 7: `C_tr(λ)` for X = 1.8–2.4 under the realistic
/// custom-logic scenario (eq. 9, no redundancy, growing dies).
#[must_use]
pub fn report() -> ExperimentReport {
    let params = figures::fig7();
    let (lo, hi) = params.lambda_range;
    let lo_um = Microns::new(lo).expect("positive");
    let hi_um = Microns::new(hi).expect("positive");

    let mut plot = LinePlot::new("Fig 7: cost per transistor, Scenario #2 (eq. 9)")
        .with_labels("λ [µm]", "µ$/tr")
        .log_y();
    let mut table = TextTable::new(vec![
        "X",
        "C_tr(0.8) [µ$]",
        "C_tr(0.25) [µ$]",
        "penalty",
        "die yield @0.25",
    ]);
    for col in 1..5 {
        table.align(col, Alignment::Right);
    }

    for &x in &params.x_values {
        let s2 = Scenario2::fig7(x).expect("printed X is valid");
        let series: Vec<(f64, f64)> = s2
            .sweep(lo_um, hi_um, 40)
            .expect("printed λ range is ascending")
            .into_iter()
            .map(|(l, c)| (l, c.to_micro_dollars().value()))
            .collect();
        plot = plot.with_series(format!("X={x}"), &series);
        let at_08 = s2
            .cost_per_transistor(Microns::new(0.8).expect("positive"))
            .to_micro_dollars()
            .value();
        let at_quarter = s2
            .cost_per_transistor(Microns::new(0.25).expect("positive"))
            .to_micro_dollars()
            .value();
        let y = s2.die_yield(Microns::new(0.25).expect("positive"));
        table.row(vec![
            format!("{x}"),
            format!("{at_08:.2}"),
            format!("{at_quarter:.2}"),
            format!("{:.2}×", at_quarter / at_08),
            format!("{:.1}%", y.as_percent()),
        ]);
    }

    let body = format!(
        "```text\n{}\n```\n\n{}\n\nShape check (paper): *\"A decrease in the \
         feature size causes an increase in the transistor cost!\"* — every \
         curve rises toward small λ; the driver is the yield collapse of \
         the growing, redundancy-free die (`Y₀^{{A_ch(λ)}}`) compounded by \
         X ≥ 1.8 wafer-cost escalation.\n",
        plot.render(76, 22),
        table.render()
    );
    ExperimentReport {
        id: "fig7",
        title: "Scenario #2 cost trend (custom logic, X = 1.8–2.4)",
        body,
    }
}

/// The Fig 7 series as CSV (`lambda_um, ctr_x1.8 … ctr_x2.4` in µ$).
#[must_use]
pub fn series_csv() -> String {
    let params = figures::fig7();
    let (lo, hi) = params.lambda_range;
    let scenarios: Vec<Scenario2> = params
        .x_values
        .iter()
        .map(|&x| Scenario2::fig7(x).expect("printed X valid"))
        .collect();
    let steps = 40;
    let rows: Vec<Vec<String>> = (0..steps)
        .map(|i| {
            let l = lo + (hi - lo) * f64::from(i) / f64::from(steps - 1);
            let lambda = Microns::new(l).expect("positive");
            let mut row = vec![format!("{l}")];
            row.extend(scenarios.iter().map(|s| {
                format!(
                    "{}",
                    s.cost_per_transistor(lambda).to_micro_dollars().value()
                )
            }));
            row
        })
        .collect();
    maly_viz::csv::to_csv(
        &["lambda_um", "ctr_x1.8", "ctr_x2.0", "ctr_x2.2", "ctr_x2.4"],
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_is_well_formed_and_rising_toward_small_lambda() {
        let csv = series_csv();
        assert_eq!(csv.lines().count(), 41);
        let first_data: Vec<f64> = csv
            .lines()
            .nth(1)
            .unwrap()
            .split(',')
            .map(|c| c.parse().unwrap())
            .collect();
        let last_data: Vec<f64> = csv
            .lines()
            .last()
            .unwrap()
            .split(',')
            .map(|c| c.parse().unwrap())
            .collect();
        // First row is the smallest λ: every X column is costlier there.
        for k in 1..first_data.len() {
            assert!(first_data[k] > last_data[k]);
        }
    }

    #[test]
    fn every_curve_rises_toward_small_lambda() {
        for x in figures::fig7().x_values {
            let s2 = Scenario2::fig7(x).unwrap();
            let penalty = s2.cost_per_transistor(Microns::new(0.25).unwrap()).value()
                / s2.cost_per_transistor(Microns::new(0.8).unwrap()).value();
            assert!(penalty > 2.0, "X={x}: penalty {penalty}");
        }
        assert!(report().body.contains("increase in the transistor cost"));
    }
}
