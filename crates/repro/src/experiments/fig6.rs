//! Fig 6 — Scenario #1: transistor cost falls with shrink.

use maly_cost_model::scenario::Scenario1;
use maly_paper_data::figures;
use maly_units::Microns;
use maly_viz::lineplot::LinePlot;
use maly_viz::table::{Alignment, TextTable};

use crate::ExperimentReport;

/// Regenerates Fig 6: `C_tr(λ)` for X = 1.1/1.2/1.3 under the
/// optimistic memory scenario (eq. 8).
#[must_use]
pub fn report() -> ExperimentReport {
    let params = figures::fig6();
    let (lo, hi) = params.lambda_range;
    let lo_um = Microns::new(lo).expect("positive");
    let hi_um = Microns::new(hi).expect("positive");

    let mut plot = LinePlot::new("Fig 6: cost per transistor, Scenario #1 (eq. 8)")
        .with_labels("λ [µm]", "µ$/tr")
        .log_y();
    let mut table = TextTable::new(vec![
        "X",
        "C_tr(1.0 µm) [µ$]",
        "C_tr(0.25 µm) [µ$]",
        "ratio",
    ]);
    for col in 1..4 {
        table.align(col, Alignment::Right);
    }

    for &x in &params.x_values {
        let s1 = Scenario1::fig6(x).expect("printed X is valid");
        let series: Vec<(f64, f64)> = s1
            .sweep(lo_um, hi_um, 40)
            .expect("printed λ range is ascending")
            .into_iter()
            .map(|(l, c)| (l, c.to_micro_dollars().value()))
            .collect();
        plot = plot.with_series(format!("X={x}"), &series);
        let at_1 = s1
            .cost_per_transistor(Microns::new(1.0).expect("positive"))
            .to_micro_dollars()
            .value();
        let at_quarter = s1
            .cost_per_transistor(Microns::new(0.25).expect("positive"))
            .to_micro_dollars()
            .value();
        table.row(vec![
            format!("{x}"),
            format!("{at_1:.3}"),
            format!("{at_quarter:.3}"),
            format!("{:.2}×", at_quarter / at_1),
        ]);
    }

    let body = format!(
        "```text\n{}\n```\n\n{}\n\nShape check (paper): *\"Because the number \
         of transistors per wafer increases faster than the wafer cost, \
         C_tr goes down when feature size decreases\"* — all three curves \
         fall monotonically, and higher X flattens the gain.\n",
        plot.render(76, 22),
        table.render()
    );
    ExperimentReport {
        id: "fig6",
        title: "Scenario #1 cost trend (memories, X = 1.1–1.3)",
        body,
    }
}

/// The Fig 6 series as CSV (`lambda_um, ctr_x1.1, ctr_x1.2, ctr_x1.3`
/// in µ$) for downstream plotting.
#[must_use]
pub fn series_csv() -> String {
    let params = figures::fig6();
    let (lo, hi) = params.lambda_range;
    let scenarios: Vec<Scenario1> = params
        .x_values
        .iter()
        .map(|&x| Scenario1::fig6(x).expect("printed X valid"))
        .collect();
    let steps = 40;
    let rows: Vec<Vec<String>> = (0..steps)
        .map(|i| {
            let l = lo + (hi - lo) * f64::from(i) / f64::from(steps - 1);
            let lambda = Microns::new(l).expect("positive");
            let mut row = vec![format!("{l}")];
            row.extend(scenarios.iter().map(|s| {
                format!(
                    "{}",
                    s.cost_per_transistor(lambda).to_micro_dollars().value()
                )
            }));
            row
        })
        .collect();
    maly_viz::csv::to_csv(&["lambda_um", "ctr_x1.1", "ctr_x1.2", "ctr_x1.3"], &rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_has_header_and_rows() {
        let csv = series_csv();
        let mut lines = csv.lines();
        assert_eq!(
            lines.next().unwrap(),
            "lambda_um,ctr_x1.1,ctr_x1.2,ctr_x1.3"
        );
        assert_eq!(csv.lines().count(), 41);
        // Every data cell parses as a number.
        for line in csv.lines().skip(1) {
            for cell in line.split(',') {
                cell.parse::<f64>().unwrap();
            }
        }
    }

    #[test]
    fn all_curves_fall_and_higher_x_flattens() {
        let r = report();
        assert!(r.body.contains("X=1.1"));
        // Quantitative shape assertions live in maly-cost-model; here
        // verify the rendered ratios are below 1 (falling cost).
        for x in [1.1, 1.2, 1.3] {
            let s1 = Scenario1::fig6(x).unwrap();
            let ratio = s1.cost_per_transistor(Microns::new(0.25).unwrap()).value()
                / s1.cost_per_transistor(Microns::new(1.0).unwrap()).value();
            assert!(ratio < 1.0, "X={x}: ratio {ratio}");
        }
    }
}
