//! §VI / Fig 10 — integrated system-level cost minimization.
//!
//! Fig 10 lists the cost models that must act *together* for system-level
//! optimization: yield in terms of design variables, testing cost as a
//! function of escapes, packaging. This experiment runs that program on
//! a concrete system — the Table 1 microprocessor blocks, scaled to a
//! 25 M-transistor generation — and shows the ranking inversion the
//! paper predicts: decisions that look right under silicon-only
//! accounting flip once test and escape costs join the objective.

use maly_cost_model::system::{ManufacturingContext, Partition, SystemDesign};
use maly_cost_model::WaferCostModel;
use maly_cost_optim::partition::optimize;
use maly_paper_data::table1;
use maly_test_economics::escapes;
use maly_test_economics::test_time::TesterEconomics;
use maly_units::{DesignDensity, Dollars, Microns, Probability, TransistorCount};
use maly_viz::table::{Alignment, TextTable};

use crate::ExperimentReport;

const ESCAPE_COST: f64 = 400.0;
const COVERAGE: f64 = 0.98;

/// System cost with the Fig 10 extensions: silicon + per-die test +
/// expected escape cost.
fn full_cost(
    system: &SystemDesign,
    context: &ManufacturingContext,
    grouping: &[usize],
    lambdas: &[Microns],
) -> Option<(f64, f64, f64)> {
    let silicon = system.evaluate(context, grouping, lambdas).ok()?;
    let tester = TesterEconomics::typical_1994();
    let coverage = Probability::new(COVERAGE).expect("fixed coverage");
    let mut test_total = 0.0;
    let mut escape_total = 0.0;
    for die in &silicon.dies {
        // Die transistor count from its breakdown-implied members.
        let n: f64 = system
            .partitions()
            .iter()
            .filter(|p| die.partition_names.contains(&p.name))
            .map(|p| p.transistors.value())
            .sum();
        let n_tr = TransistorCount::new(n).expect("positive");
        // All candidate dies are probed; the bill lands on good ones.
        let per_good =
            tester.cost_per_die(n_tr, coverage).value() / die.breakdown.die_yield.value();
        test_total += per_good;
        escape_total += escapes::escape_cost_per_shipped_die(
            die.breakdown.die_yield,
            coverage,
            Dollars::new(ESCAPE_COST).expect("positive"),
        )
        .value();
    }
    Some((silicon.total.value(), test_total, escape_total))
}

/// Runs the integrated study.
#[must_use]
pub fn report() -> ExperimentReport {
    let partitions: Vec<Partition> = table1::blocks()
        .into_iter()
        .map(|b| {
            Partition::new(
                b.name,
                TransistorCount::new(b.transistors * 8.0).expect("positive"),
                DesignDensity::new(b.paper_density).expect("positive"),
            )
        })
        .collect();
    let system = SystemDesign::new(partitions).expect("non-empty");
    let context = ManufacturingContext {
        wafer: maly_wafer_geom::Wafer::six_inch(),
        reference_yield: Probability::new(0.7).expect("probability"),
        wafer_cost: WaferCostModel::new(Dollars::new(700.0).expect("positive"), 2.4)
            .expect("X valid"),
        per_die_overhead: Dollars::new(8.0).expect("positive"),
    };
    let ladder: Vec<Microns> = [1.0, 0.8, 0.65, 0.5]
        .iter()
        .map(|&l| Microns::new(l).expect("positive"))
        .collect();

    // Candidate A: silicon-optimal partitioning (the §IV.B optimizer).
    let silicon_opt = optimize(&system, &context, &ladder).expect("feasible system");
    // Candidate B: monolithic at 0.5 µm (a plausible "integrate
    // everything" instinct).
    let n = system.partitions().len();
    let mono_grouping = vec![0usize; n];
    let mono_lambdas = [Microns::new(0.5).expect("positive")];

    let mut table = TextTable::new(vec![
        "candidate",
        "silicon $",
        "test $",
        "escapes $",
        "total $",
    ]);
    for col in 1..5 {
        table.align(col, Alignment::Right);
    }
    let mut totals = Vec::new();
    for (name, grouping, lambdas) in [
        (
            "silicon-optimal split",
            silicon_opt.grouping.clone(),
            silicon_opt.lambdas.clone(),
        ),
        ("monolithic @0.5 µm", mono_grouping, mono_lambdas.to_vec()),
    ] {
        let (silicon, test, escape) =
            full_cost(&system, &context, &grouping, &lambdas).expect("feasible");
        totals.push((name, silicon + test + escape));
        table.row(vec![
            name.to_string(),
            format!("{silicon:.0}"),
            format!("{test:.2}"),
            format!("{escape:.2}"),
            format!("{:.0}", silicon + test + escape),
        ]);
    }

    let winner = totals
        .iter()
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .expect("two candidates")
        .0;

    let body = format!(
        "System: the Table 1 µP blocks scaled ×8 (≈ 25 M transistors), \
         X = 2.4, Y₀ = 70%, tester at \\$360/h, 98% coverage, \\$400 per \
         field escape.\n\n{}\n\nWinner under the integrated objective: \
         **{winner}**. The point of Fig 10 is not this particular winner \
         but that the ranking *can only be computed* when yield, test and \
         escape models share one objective — \"system level cost \
         minimization is possible if, and only if, [an integrated] cost \
         modeling strategy is available\".\n",
        table.render()
    );
    ExperimentReport {
        id: "system_opt",
        title: "Integrated system-level cost minimization (§VI, Fig 10)",
        body,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_prices_both_candidates_fully() {
        let r = report();
        assert!(r.body.contains("silicon-optimal split"));
        assert!(r.body.contains("monolithic @0.5 µm"));
        assert!(r.body.contains("Winner under the integrated objective"));
        // All three cost components rendered.
        for col in ["silicon $", "test $", "escapes $"] {
            assert!(r.body.contains(col));
        }
    }

    #[test]
    fn split_beats_monolithic_for_this_system() {
        // At 25M transistors and X = 2.4 a monolithic 0.5 µm die is a
        // yield catastrophe; the integrated objective must prefer the
        // split (silicon dominates here, test costs don't save the
        // monolith).
        let r = report();
        let winner_line = r
            .body
            .lines()
            .find(|l| l.contains("Winner under"))
            .unwrap()
            .to_string();
        assert!(
            winner_line.contains("silicon-optimal split"),
            "{winner_line}"
        );
    }
}
