//! Fig 2 — fab-line and wafer cost growth; extraction of X.

use maly_tech_trend::datasets;
use maly_viz::lineplot::LinePlot;
use maly_viz::table::{Alignment, TextTable};

use crate::context;
use crate::ExperimentReport;

/// Regenerates Fig 2: exponential fab cost growth and the wafer-cost
/// escalation factor `X` the paper extracts from it (quoted band:
/// 1.2–1.4).
#[must_use]
pub fn report() -> ExperimentReport {
    let fab = datasets::FAB_COST_BY_YEAR;
    let fab_trend = context::shared().fab_cost_trend;
    let doubling = 2.0f64.ln() / fab_trend.rate();

    let fab_plot = LinePlot::new("Fig 2a: cost of a new fab line vs year")
        .with_series("fab cost [M$]", fab)
        .log_y()
        .with_labels("year", "M$")
        .render(72, 18);

    let wafer = datasets::WAFER_COST_BY_GENERATION;
    let escalation = context::shared().wafer_cost_escalation;

    let wafer_plot = LinePlot::new("Fig 2b: wafer cost vs technology node")
        .with_series("wafer cost [$]", wafer)
        .log_y()
        .with_labels("λ [µm]", "$")
        .render(72, 18);

    let mut table = TextTable::new(vec!["quantity", "paper", "measured"]);
    table.align(1, Alignment::Right);
    table.align(2, Alignment::Right);
    table.row(vec![
        "fab cost ~1994 [M$]".into(),
        "≈1000 (\"1 billion dollars per fabline\")".into(),
        format!("{:.0}", fab_trend.predict(1995.0)),
    ]);
    table.row(vec![
        "X extracted from Fig 2".into(),
        "1.2 – 1.4".into(),
        format!("{:.3}", escalation.x_factor),
    ]);
    table.row(vec![
        "C₀ (1 µm wafer) [$]".into(),
        "500 – 800".into(),
        format!("{:.0}", escalation.c0),
    ]);

    let body = format!(
        "```text\n{fab_plot}\n```\n\n```text\n{wafer_plot}\n```\n\n{}\n\n\
         Fab cost doubles every {:.1} years (R² = {:.3}); the wafer-cost \
         series linearizes under `C_w = C₀·X^{{5(1−λ)}}` with \
         X = {:.3} (R² = {:.3}) — inside the paper's 1.2–1.4 band.\n",
        table.render(),
        doubling,
        fab_trend.r_squared(),
        escalation.x_factor,
        escalation.r_squared,
    );
    ExperimentReport {
        id: "fig2",
        title: "Fab line and wafer cost growth",
        body,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extracted_x_lands_in_paper_band() {
        let r = report();
        assert!(r.body.contains("inside the paper's 1.2–1.4 band"));
        let escalation = context::shared().wafer_cost_escalation;
        assert!(escalation.x_factor > 1.2 && escalation.x_factor < 1.4);
        assert!((500.0..=800.0).contains(&escalation.c0));
    }
}
