//! §III.A.d — the product-mix wafer-cost penalty (the "×7" claim).

use maly_fabline_sim::cost::product_mix_study;
use maly_viz::table::{Alignment, TextTable};

use crate::ExperimentReport;

/// Regenerates the product-mix study: wafer cost of low-volume
/// multi-product fabs vs a high-volume mono-product fab, sweeping
/// fragmentation until the penalty reaches the paper's reported ×7.
#[must_use]
pub fn report() -> ExperimentReport {
    let mut table = TextTable::new(vec![
        "products",
        "wafers/yr each",
        "mono $/wafer",
        "multi $/wafer",
        "ratio",
        "mono util",
        "multi util",
    ]);
    for col in 1..7 {
        table.align(col, Alignment::Right);
    }

    let sweep = [
        (2usize, 20_000.0),
        (4, 5_000.0),
        (8, 2_000.0),
        (8, 800.0),
        (10, 500.0),
        (10, 300.0),
    ];
    let mut max_ratio: f64 = 0.0;
    for (n, v) in sweep {
        let r = product_mix_study(n, v, 100_000.0);
        max_ratio = max_ratio.max(r.cost_ratio);
        table.row(vec![
            format!("{n}"),
            format!("{v:.0}"),
            format!("{:.0}", r.mono_cost.value()),
            format!("{:.0}", r.multi_cost.value()),
            format!("{:.2}×", r.cost_ratio),
            format!("{:.0}%", r.mono_utilization * 100.0),
            format!("{:.0}%", r.multi_utilization * 100.0),
        ]);
    }

    let body = format!(
        "{}\n\nPaper: *\"the ratio of the cost of the wafer fabricated with \
         low volume multi-product fabline and high volume mono-product \
         environment may reach as high value as 7\"* \\[12\\]. The sweep \
         reaches {max_ratio:.1}× at the most fragmented demand; the \
         mechanism is visible in the productive-utilization column — the \
         niche fab owns the same tool families but keeps them moving \
         wafers a fraction of the time (idle capacity + changeover \
         setups), while their ownership cost accrues regardless.\n",
        table.render()
    );
    ExperimentReport {
        id: "product_mix",
        title: "Product-mix wafer-cost penalty (§III.A.d)",
        body,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn penalty_reaches_paper_magnitude() {
        let r = product_mix_study(10, 300.0, 100_000.0);
        assert!(r.cost_ratio > 5.0 && r.cost_ratio < 12.0);
        assert!(report().body.contains("as high value as 7"));
    }
}
