//! Multi-die partition search: eq. (1) die economics composed with the
//! §§V–VI known-good-die test model into whole-system $/unit.
//!
//! The paper's MCM sections argue per-component; this experiment runs
//! the composition end to end — for a 2M-transistor system, is it
//! cheaper to build one big die or several small known-good dies bonded
//! into a module, once assembly yield and NRE amortization are paid?

use maly_chiplet::{ChipletParameters, CostError, SweepSpec};
use maly_par::Executor;
use maly_units::{Microns, TransistorCount};
use maly_viz::table::{Alignment, TextTable};

use crate::ExperimentReport;

fn spec(volume: u64) -> Result<SweepSpec, CostError> {
    Ok(SweepSpec {
        system_transistors: TransistorCount::new(2.0e6)?,
        volume,
        lambda_min: Microns::new(0.5)?,
        lambda_max: Microns::new(1.2)?,
        lambda_steps: 15,
        max_chiplets: 8,
        max_spares: 1,
    })
}

/// Runs the partition search at high volume (50 000 systems) and low
/// volume (50), showing the optimum flip the NRE terms force.
#[must_use]
pub fn report() -> ExperimentReport {
    // The sweeps are deterministic and covered by goldens, so the error
    // body below is unreachable in practice — rendering it instead of
    // panicking keeps this crate inside its panic budget.
    let body = match body() {
        Ok(body) => body,
        Err(e) => format!("partition search failed: {e}\n"),
    };
    ExperimentReport {
        id: "chiplet",
        title: "multi-die partition search (eq. 1 × §§V–VI composition)",
        body,
    }
}

fn body() -> Result<String, CostError> {
    let params = ChipletParameters::fig8_mcm();
    let exec = Executor::from_env();
    let high = params.sweep(&spec(50_000)?, &exec)?;
    let low = params.sweep(&spec(50)?, &exec)?;

    let mut table = TextTable::new(vec![
        "chiplets",
        "spares",
        "λ [µm]",
        "KGD die [$]",
        "Y_asm",
        "Y_sys",
        "NRE/unit [$]",
        "$/system",
    ]);
    for col in 1..8 {
        table.align(col, Alignment::Right);
    }
    for r in &high.per_chiplet_count {
        table.row(vec![
            format!("{}", r.chiplets),
            format!("{}", r.spares),
            format!("{:.3}", r.lambda.value()),
            format!("{:.2}", r.known_good_die_cost.value()),
            format!("{:.3}", r.assembly_yield.value()),
            format!("{:.3}", r.system_yield.value()),
            format!("{:.2}", r.nre_per_system.value()),
            format!("{:.2}", r.cost_per_system.value()),
        ]);
    }

    let best = &high.best;
    Ok(format!(
        "Partition frontier for a 2.0e6-transistor system at volume 50 000 \
         (fig8 fab calibration, KGD supply per §§V–VI, bond yield 0.99):\n\n\
         {}\n\n\
         Best partition: **{} chiplet(s) + {} spare(s) at λ = {:.3} µm → \
         {:.2} $/system** ({} of {} candidates feasible). The monolithic die \
         pays eq. (2)'s exponential yield collapse on the full 2M \
         transistors; splitting into known-good dies trades that for a \
         linear KGD test bill plus `Y_asm^(m−1)` bonding losses, and wins.\n\n\
         At volume 50 the same search flips to {} chiplet(s) at \
         {:.0} $/system: the interposer NRE no longer amortizes, so the \
         single-die partition — worse silicon economics and all — is the \
         cheaper system. Cost optimality of a partition is a property of \
         the *business plan*, not the die alone, which is the paper's \
         central claim writ large.\n",
        table.render(),
        best.chiplets,
        best.spares,
        best.lambda.value(),
        best.cost_per_system.value(),
        high.feasible,
        high.evaluated,
        low.best.chiplets,
        low.best.cost_per_system.value(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_pins_the_reference_optimum_and_the_volume_flip() {
        let r = report();
        assert!(r.body.contains("4 chiplet(s) + 0 spare(s)"), "{}", r.body);
        assert!(r.body.contains("64.95"), "{}", r.body);
        assert!(r.body.contains("flips to 1 chiplet(s)"), "{}", r.body);
    }
}
