//! Calendar projection: when does the transistor-cost decline end?
//!
//! An extension experiment (not a printed figure): composes the Fig 1
//! node cadence with Scenarios #1 and #2 to restate the paper's warning
//! on the calendar axis — "there are some indications that the cost per
//! transistor may no longer decrease."

use maly_viz::lineplot::LinePlot;
use maly_viz::table::{Alignment, TextTable};

use crate::context;
use crate::ExperimentReport;

/// Projects both scenarios over 1986–2002.
#[must_use]
pub fn report() -> ExperimentReport {
    let roadmap = &context::shared().roadmap;
    let points = roadmap
        .project(1986, 2002)
        .expect("projection window valid");

    let optimistic: Vec<(f64, f64)> = points
        .iter()
        .map(|p| (p.year, p.optimistic.to_micro_dollars().value()))
        .collect();
    let realistic: Vec<(f64, f64)> = points
        .iter()
        .map(|p| (p.year, p.realistic.to_micro_dollars().value()))
        .collect();

    let plot = LinePlot::new("cost per transistor vs calendar year")
        .with_series("Scenario #1 (X=1.2)", &optimistic)
        .with_series("Scenario #2 (X=2.0)", &realistic)
        .with_labels("year", "µ$/tr")
        .log_y()
        .render(76, 22);

    let turning = roadmap
        .realistic_turning_year(1986, 2002)
        .expect("projection window valid");

    let mut table = TextTable::new(vec![
        "year",
        "λ [µm]",
        "Scenario #1 [µ$]",
        "Scenario #2 [µ$]",
    ]);
    for col in 1..4 {
        table.align(col, Alignment::Right);
    }
    for p in points.iter().step_by(2) {
        table.row(vec![
            format!("{:.0}", p.year),
            format!("{:.2}", p.lambda.value()),
            format!("{:.3}", p.optimistic.to_micro_dollars().value()),
            format!("{:.2}", p.realistic.to_micro_dollars().value()),
        ]);
    }

    let turning_text = turning.map_or_else(
        || "no turning point inside the window".to_string(),
        |year| {
            if year == 1986 {
                "the realistic cost rises from the very first projected \
                 year: at X = 2.0 the historical decline is *already over* \
                 for Scenario #2 products — the strongest possible form of \
                 the paper's warning"
                    .to_string()
            } else {
                format!(
                    "the realistic cost bottoms out around **{year}** and \
                     rises afterwards — riding the cadence past that point \
                     destroys value for Scenario #2 products"
                )
            }
        },
    );

    let body = format!(
        "```text\n{plot}\n```\n\n{}\n\nOn the calendar axis {turning_text}. \
         Scenario #1 keeps falling throughout — the industry's memory-fed \
         intuition — which is precisely why the paper warns against \
         extrapolating it to redundancy-free products.\n",
        table.render()
    );
    ExperimentReport {
        id: "roadmap",
        title: "Cost per transistor vs calendar year (extension)",
        body,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn projection_has_a_turning_year() {
        let roadmap = &context::shared().roadmap;
        let turning = roadmap.realistic_turning_year(1986, 2002).unwrap();
        // At X = 2.0 the decline is over before the window even starts.
        assert_eq!(turning, Some(1986));
        assert!(report().body.contains("already over"));
    }
}
