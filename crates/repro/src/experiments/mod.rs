//! One module per paper experiment.

pub mod ablation;
pub mod chiplet;
pub mod fig1;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod mcm_kgd;
pub mod product_mix;
pub mod roadmap;
pub mod system_opt;
pub mod table1;
pub mod table2;
pub mod table3;

/// Shared helper: formats a relative error as a percentage string.
#[must_use]
pub(crate) fn rel_err_percent(measured: f64, reference: f64) -> String {
    // audit:allow(float-cmp): exact zero sentinel guards the division below.
    if reference == 0.0 {
        return "n/a".to_string();
    }
    format!("{:+.1}%", (measured - reference) / reference * 100.0)
}

#[cfg(test)]
mod tests {
    use super::rel_err_percent;

    #[test]
    fn rel_err_formats_signed_percent() {
        assert_eq!(rel_err_percent(110.0, 100.0), "+10.0%");
        assert_eq!(rel_err_percent(95.0, 100.0), "-5.0%");
        assert_eq!(rel_err_percent(1.0, 0.0), "n/a");
    }
}
