//! Fig 8 — constant-cost contours over `(λ × N_tr)`.

use maly_cost_model::adaptive::{AdaptiveConfig, AdaptiveSurface, DEFAULT_TOL};
use maly_cost_model::surface::{CostSurface, SurfaceParameters};
use maly_cost_optim::contour::extract_contours;
use maly_units::Microns;
use maly_viz::contourplot::{render_contours, ContourSet};
use maly_viz::scale::Scale;
use maly_viz::table::{Alignment, TextTable};

use crate::context;
use crate::ExperimentReport;

/// Regenerates Fig 8: the cost surface with the paper's fab calibration
/// (X = 1.4, C₀ = \$500, d_d = 152, D = 1.72, p = 4.07), its
/// constant-cost contours, and the `λ^opt(N_tr)` locus.
#[must_use]
pub fn report() -> ExperimentReport {
    // The surface window focuses on the economically sane region
    // (yields above ~1e-4); the paper's axes likewise span where
    // products are viable. It is the harness's most expensive artifact,
    // so it lives in the shared context and is computed once.
    let params = context::shared().fig8_params;
    let surface = &context::shared().fig8_surface;

    // Contour levels in µ$ per transistor.
    let levels_micro = [3.0, 10.0, 30.0, 100.0, 300.0];
    let levels: Vec<f64> = levels_micro.iter().map(|m| m * 1.0e-6).collect();
    let contours = extract_contours(surface, &levels);
    let sets: Vec<ContourSet> = contours
        .iter()
        .zip(&levels_micro)
        .map(|(c, m)| ContourSet {
            label: format!("{m} µ$"),
            segments: c.segments.clone(),
        })
        .collect();

    let plot = render_contours(
        "Fig 8: constant C_tr contours over (λ × N_tr)",
        &sets,
        Scale::Linear { min: 0.4, max: 1.5 },
        Scale::Log {
            min: 2.0e4,
            max: 4.0e6,
        },
        78,
        26,
    );

    // λ^opt per design size.
    let mut table = TextTable::new(vec!["N_tr", "λ^opt [µm]", "C_tr at λ^opt [µ$]"]);
    table.align(1, Alignment::Right);
    table.align(2, Alignment::Right);
    let optima = surface.optimal_lambda_per_n_tr();
    for (j, n) in surface.n_tr_axis().iter().enumerate().step_by(8) {
        if let Some((lambda, cost)) = optima[j] {
            table.row(vec![
                format!("{:.0}k", n / 1e3),
                format!("{lambda:.2}"),
                format!("{:.2}", cost * 1e6),
            ]);
        }
    }

    // Demonstrate local optima along one slice.
    let n_probe = maly_units::TransistorCount::new(1.0e6).expect("positive");
    let slice: Vec<(f64, f64)> = (0..80)
        .filter_map(|i| {
            let l = 0.5 + i as f64 / 79.0;
            params
                .cost_at(Microns::new(l).expect("positive"), n_probe)
                .ok()
                .map(|c| (l, c.to_micro_dollars().value()))
        })
        .collect();
    let minima = count_local_minima(&slice);

    // How much of the surface the adaptive engine skips at the default
    // tolerance (same window as the dense surface above).
    let adaptive = AdaptiveSurface::compute(
        &params,
        context::FIG8_LAMBDA_RANGE,
        context::FIG8_N_TR_RANGE,
        &AdaptiveConfig::new(DEFAULT_TOL),
    );
    let stats = adaptive.stats();

    // The serve-path analogue: a client sweeping this surface tile by
    // tile sends overlapping windows in one batch, and the evaluation
    // planner fuses their shared grid nodes into a single kernel
    // dispatch. Run the 4-tile acceptance batch on a fresh context and
    // report the plan counters — the same numbers the fusion goldens
    // gate on.
    let plan_note = fused_batch_demo();

    let body = format!(
        "```text\n{plot}\n```\n\nOptimal feature size per design size \
         (the \"different λ^opt for each die size\" observation):\n\n{}\n\n\
         Along the N_tr = 1 M slice the cost curve has {minima} local \
         minima (the dies-per-wafer floor() injects ripples — the paper's \
         \"number of local optima\"). The optimum never sits at the \
         smallest λ: the `D/λ^p` defect acceleration forbids deep shrinks \
         at this calibration.\n\n\
         Adaptive evaluation at tol = {DEFAULT_TOL}: {} of {} grid points \
         hold exact eq. (1) values ({} quadtree mesh + {} exact-zone \
         batch), {} interpolated, {} deduced infeasible — a {:.1}× \
         full-kernel saving over the dense scan.\n\n{plan_note}\n",
        table.render(),
        stats.exact_points(),
        stats.grid_points,
        stats.evaluated,
        stats.analytic_exact,
        stats.interpolated,
        stats.infeasible_deduced,
        stats.savings(),
    );
    ExperimentReport {
        id: "fig8",
        title: "Cost contours and feature-size optima",
        body,
    }
}

/// Routes a 4-tile overlapping surface batch through the planned
/// [`maly_model::Query::evaluate_batch`] path and summarizes the
/// `plan.*` counter deltas.
fn fused_batch_demo() -> String {
    use maly_model::{plan, EvalContext, Query};
    if !plan::enabled() {
        return format!(
            "Batched tile queries: planner disabled ({}=0), \
             batch evaluated per-query.",
            plan::PLAN_ENV_VAR
        );
    }
    let batch: Vec<Query> = [0.5, 0.625, 0.75, 0.875]
        .iter()
        .map(|&lo| Query::SurfaceTile {
            lambda_min: lo,
            lambda_max: lo + 0.5,
            lambda_steps: 9,
            n_tr_min: 2.0e4,
            n_tr_max: 4.0e6,
            n_tr_steps: 24,
        })
        .collect();
    let requested0 = plan::NODES_REQUESTED.value();
    let evaluated0 = plan::NODES_EVALUATED.value();
    let answered =
        Query::evaluate_batch(&maly_par::Executor::serial(), &EvalContext::new(), &batch)
            .iter()
            .filter(|r| r.is_ok())
            .count();
    let requested = plan::NODES_REQUESTED.value() - requested0;
    let evaluated = plan::NODES_EVALUATED.value() - evaluated0;
    format!(
        "Batched tile queries: a 4-window overlapping sweep ({answered} \
         tiles answered) compiled to an evaluation plan — {requested} \
         grid nodes requested, {evaluated} evaluated after \
         cross-request fusion ({:.0}% of the per-query work; the rest \
         answered from shared nodes).",
        100.0 * evaluated as f64 / requested.max(1) as f64,
    )
}

/// The Fig 8 surface as long-form CSV (`lambda_um, n_tr, ctr_usd`),
/// skipping infeasible cells.
#[must_use]
pub fn surface_csv() -> String {
    let surface = CostSurface::compute(
        &SurfaceParameters::fig8(),
        (0.4, 1.5, 45),
        (2.0e4, 4.0e6, 40),
    );
    let mut rows = Vec::new();
    for (i, &l) in surface.lambda_axis().iter().enumerate() {
        for (j, &n) in surface.n_tr_axis().iter().enumerate() {
            if let Some(c) = surface.values()[i][j] {
                rows.push(vec![format!("{l}"), format!("{n}"), format!("{c}")]);
            }
        }
    }
    maly_viz::csv::to_csv(&["lambda_um", "n_tr", "ctr_usd"], &rows)
}

/// Counts strict local minima of a sampled curve.
fn count_local_minima(series: &[(f64, f64)]) -> usize {
    series
        .windows(3)
        .filter(|w| w[1].1 < w[0].1 && w[1].1 < w[2].1)
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn surface_csv_covers_most_of_the_grid() {
        let csv = surface_csv();
        let data_rows = csv.lines().count() - 1;
        assert!(data_rows > 45 * 40 / 2, "only {data_rows} feasible cells");
        let first = csv.lines().nth(1).unwrap();
        assert_eq!(first.split(',').count(), 3);
    }

    #[test]
    fn contours_and_optima_are_reported() {
        let r = report();
        assert!(r.body.contains("λ^opt"));
        assert!(r.body.contains("local"));
        assert!(r.body.contains("Adaptive evaluation"));
        assert!(r.body.contains("Batched tile queries"));
    }

    #[test]
    fn slice_has_multiple_local_minima() {
        let params = SurfaceParameters::fig8();
        let n = maly_units::TransistorCount::new(1.0e6).unwrap();
        let slice: Vec<(f64, f64)> = (0..200)
            .filter_map(|i| {
                let l = 0.5 + i as f64 / 199.0;
                params
                    .cost_at(Microns::new(l).unwrap(), n)
                    .ok()
                    .map(|c| (l, c.value()))
            })
            .collect();
        assert!(count_local_minima(&slice) >= 2);
    }
}
