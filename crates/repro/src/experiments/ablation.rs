//! Ablation study: which modeling choices carry the Table 3 results?
//!
//! DESIGN.md calls out three choices worth stress-testing:
//!
//! 1. the **eq. (3) exponent calibration** (`k = 5 /µm` vs the printed
//!    `0.5`),
//! 2. the **dies-per-wafer model** (eq. 4 vs exact raster vs closed
//!    forms),
//! 3. the **yield statistics** (the `Y₀^A` convention vs a clustered
//!    negative-binomial model of equal 1 cm² yield).
//!
//! The ablation recomputes Table 3's mean |error| against the printed
//! costs under each variant. The calibration is the only choice that
//! matters at the order-of-magnitude level — exactly what a model whose
//! parameters were *measured* (not fitted row by row) should look like.

use maly_cost_model::product::ProductScenario;
use maly_cost_model::{DiesPerWaferMethod, TransistorCostModel, WaferCostModel};
use maly_paper_data::table3;
use maly_units::{Centimeters, DesignDensity, Dollars, Microns, Probability, TransistorCount};
use maly_viz::table::{Alignment, TextTable};
use maly_yield_model::NegativeBinomialYield;

use crate::ExperimentReport;

/// Mean relative error of Table 3 under a scenario transformation.
fn mean_error(build: impl Fn(&table3::Table3Row) -> Option<f64>) -> f64 {
    let rows = &crate::context::shared().table3_rows;
    let mut total = 0.0;
    let mut count = 0usize;
    for row in rows {
        if let Some(measured) = build(row) {
            total += (measured - row.paper_cost_micro_dollars).abs() / row.paper_cost_micro_dollars;
            count += 1;
        }
    }
    total / count.max(1) as f64
}

fn baseline_scenario(row: &table3::Table3Row) -> ProductScenario {
    row.scenario().expect("printed inputs valid")
}

fn with_method(row: &table3::Table3Row, method: DiesPerWaferMethod) -> Option<f64> {
    let scenario = ProductScenario::builder(row.name)
        .transistors(TransistorCount::new(row.transistors).ok()?)
        .feature_size(Microns::new(row.feature_size_um).ok()?)
        .design_density(DesignDensity::new(row.design_density).ok()?)
        .wafer_radius(Centimeters::new(row.wafer_radius_cm).ok()?)
        .reference_yield(Probability::new(row.reference_yield).ok()?)
        .reference_wafer_cost(Dollars::new(row.reference_cost).ok()?)
        .cost_escalation(row.escalation)
        .ok()?
        .dies_per_wafer_method(method)
        .build()
        .ok()?;
    Some(
        scenario
            .evaluate()
            .ok()?
            .cost_per_transistor
            .to_micro_dollars()
            .value(),
    )
}

fn with_generation_rate(row: &table3::Table3Row, k: f64) -> Option<f64> {
    let scenario = ProductScenario::builder(row.name)
        .transistors(TransistorCount::new(row.transistors).ok()?)
        .feature_size(Microns::new(row.feature_size_um).ok()?)
        .design_density(DesignDensity::new(row.design_density).ok()?)
        .wafer_radius(Centimeters::new(row.wafer_radius_cm).ok()?)
        .reference_yield(Probability::new(row.reference_yield).ok()?)
        .reference_wafer_cost(Dollars::new(row.reference_cost).ok()?)
        .cost_escalation(row.escalation)
        .ok()?
        .generation_rate(k)
        .build()
        .ok()?;
    Some(
        scenario
            .evaluate()
            .ok()?
            .cost_per_transistor
            .to_micro_dollars()
            .value(),
    )
}

/// Swaps the yield statistics: a negative-binomial model with clustering
/// `α`, calibrated to the same 1 cm² yield as the row's `Y₀`.
fn with_clustered_yield(row: &table3::Table3Row, alpha: f64) -> Option<f64> {
    let scenario = baseline_scenario(row);
    // Calibrate D so that (1 + D/α)^(−α) = Y₀ at 1 cm².
    let y0 = row.reference_yield;
    let d = alpha * (y0.powf(-1.0 / alpha) - 1.0);
    let nb = NegativeBinomialYield::new(maly_units::DefectDensity::new(d).ok()?, alpha).ok()?;
    let model = TransistorCostModel::new(
        *scenario.wafer(),
        scenario
            .wafer_cost_model()
            .wafer_cost(Microns::new(row.feature_size_um).ok()?),
        nb,
    );
    Some(
        model
            .evaluate(scenario.die(), scenario.transistors())
            .ok()?
            .cost_per_transistor
            .to_micro_dollars()
            .value(),
    )
}

/// Runs the ablation.
#[must_use]
pub fn report() -> ExperimentReport {
    let baseline = mean_error(|row| {
        Some(
            baseline_scenario(row)
                .evaluate()
                .ok()?
                .cost_per_transistor
                .to_micro_dollars()
                .value(),
        )
    });

    let mut table = TextTable::new(vec!["variant", "mean |error| vs printed Table 3"]);
    table.align(1, Alignment::Right);
    table.row(vec![
        "baseline (calibrated model)".into(),
        format!("{:.2}%", baseline * 100.0),
    ]);
    table.row(vec![
        "eq. (3) exponent as printed (k = 0.5)".into(),
        format!(
            "{:.0}%",
            mean_error(|r| with_generation_rate(r, WaferCostModel::AS_PRINTED_GENERATION_RATE))
                * 100.0
        ),
    ]);
    table.row(vec![
        "dies/wafer: exact raster grid".into(),
        format!(
            "{:.1}%",
            mean_error(|r| with_method(r, DiesPerWaferMethod::Raster { offset_steps: 8 })) * 100.0
        ),
    ]);
    table.row(vec![
        "dies/wafer: edge-corrected closed form".into(),
        format!(
            "{:.1}%",
            mean_error(|r| with_method(r, DiesPerWaferMethod::EdgeCorrected)) * 100.0
        ),
    ]);
    table.row(vec![
        "yield: negative binomial, α = 2".into(),
        format!(
            "{:.1}%",
            mean_error(|r| with_clustered_yield(r, 2.0)) * 100.0
        ),
    ]);
    table.row(vec![
        "yield: negative binomial, α = 0.5".into(),
        format!(
            "{:.1}%",
            mean_error(|r| with_clustered_yield(r, 0.5)) * 100.0
        ),
    ]);

    let body = format!(
        "{}\n\nReading: the exponent calibration is load-bearing (the \
         as-printed 0.5 is off by an order of magnitude on sub-micron \
         rows); the dies-per-wafer model moves results by a few percent; \
         clustered yield statistics help big dies moderately (clustering \
         wastes fewer dies) but do not disturb the paper's conclusions. \
         The cost-diversity and Scenario-#2 claims are robust to every \
         choice except the calibration itself.\n",
        table.render()
    );
    ExperimentReport {
        id: "ablation",
        title: "Sensitivity of Table 3 to modeling choices",
        body,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_beats_every_ablation() {
        let baseline = mean_error(|row| {
            Some(
                baseline_scenario(row)
                    .evaluate()
                    .ok()?
                    .cost_per_transistor
                    .to_micro_dollars()
                    .value(),
            )
        });
        assert!(baseline < 0.01, "baseline {baseline}");
        let printed_exponent =
            mean_error(|r| with_generation_rate(r, WaferCostModel::AS_PRINTED_GENERATION_RATE));
        assert!(
            printed_exponent > 0.3,
            "printed exponent {printed_exponent}"
        );
        let raster = mean_error(|r| with_method(r, DiesPerWaferMethod::Raster { offset_steps: 8 }));
        assert!(raster < 0.06, "raster {raster}");
        let clustered = mean_error(|r| with_clustered_yield(r, 2.0));
        assert!(clustered < 0.35, "clustered {clustered}");
        assert!(baseline < raster && baseline < clustered);
    }

    #[test]
    fn clustered_yield_calibration_matches_y0_at_reference() {
        // The NB calibration must reproduce Y₀ exactly at 1 cm².
        use maly_yield_model::YieldModel;
        let alpha = 2.0;
        let y0: f64 = 0.7;
        let d = alpha * (y0.powf(-1.0 / alpha) - 1.0);
        let nb =
            NegativeBinomialYield::new(maly_units::DefectDensity::new(d).unwrap(), alpha).unwrap();
        let y = nb
            .die_yield(maly_units::SquareCentimeters::new(1.0).unwrap())
            .value();
        assert!((y - y0).abs() < 1e-12);
    }
}
