//! Fig 3 — die size growth and the `A_ch(λ)` fit.

use maly_tech_trend::datasets;
use maly_units::Microns;
use maly_viz::lineplot::LinePlot;
use maly_viz::table::{Alignment, TextTable};

use crate::context;
use crate::experiments::rel_err_percent;
use crate::ExperimentReport;

/// Regenerates Fig 3 and re-extracts the `A_ch(λ) = 16.5·e^{−5.3λ}` fit
/// that eq. (9) consumes.
#[must_use]
pub fn report() -> ExperimentReport {
    let by_year = datasets::DIE_SIZE_BY_YEAR;
    let fitted = context::shared().die_size_fit;
    let paper = context::shared().die_size_paper;

    let plot = LinePlot::new("Fig 3: die size vs year")
        .with_series("die area [cm²]", by_year)
        .log_y()
        .with_labels("year", "cm²")
        .render(72, 18);

    let mut table = TextTable::new(vec!["coefficient", "paper", "refit", "error"]);
    for col in 1..4 {
        table.align(col, Alignment::Right);
    }
    table.row(vec![
        "amplitude a [cm²]".into(),
        "16.5".into(),
        format!("{:.2}", fitted.amplitude_cm2()),
        rel_err_percent(fitted.amplitude_cm2(), 16.5),
    ]);
    table.row(vec![
        "rate b [1/µm]".into(),
        "−5.3".into(),
        format!("{:.2}", fitted.rate_per_um()),
        rel_err_percent(fitted.rate_per_um(), -5.3),
    ]);
    for node in [0.8, 0.5, 0.25] {
        let lam = Microns::new(node).expect("positive");
        table.row(vec![
            format!("A_ch({node}) [cm²]"),
            format!("{:.3}", paper.area_at(lam).value()),
            format!("{:.3}", fitted.area_at(lam).value()),
            rel_err_percent(fitted.area_at(lam).value(), paper.area_at(lam).value()),
        ]);
    }

    let body = format!(
        "```text\n{plot}\n```\n\nRe-extracting the exponential from the \
         die-size-vs-node data recovers the paper's eq. (9) coefficients:\n\n{}\n",
        table.render()
    );
    ExperimentReport {
        id: "fig3",
        title: "Die size trend and the A_ch(λ) fit",
        body,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn refit_recovers_paper_coefficients() {
        let fitted = context::shared().die_size_fit;
        assert!((fitted.amplitude_cm2() - 16.5).abs() < 1.0);
        assert!((fitted.rate_per_um() + 5.3).abs() < 0.15);
        assert!(report().body.contains("16.5"));
    }
}
