//! Fig 5 — the defect size distribution.

use maly_units::Microns;
use maly_viz::lineplot::LinePlot;
use maly_viz::table::{Alignment, TextTable};
use maly_yield_model::defects::DefectSizeDistribution;

use crate::ExperimentReport;

/// Regenerates Fig 5: the peaked defect size distribution with `1/R^p`
/// tail, and quantifies the consequence the paper highlights — shrinking
/// features recruit small defects as killers.
#[must_use]
pub fn report() -> ExperimentReport {
    let r0 = Microns::new(0.1).expect("positive");
    let dist = DefectSizeDistribution::classic(r0, 4.07).expect("valid exponents");

    let series: Vec<(f64, f64)> = (1..=200)
        .map(|i| {
            let r = i as f64 * 0.005;
            (r, dist.pdf(Microns::new(r).expect("positive")))
        })
        .collect();
    let plot = LinePlot::new("Fig 5: defect size distribution (R0 = 0.1 µm, p = 4.07)")
        .with_series("f(R)", &series)
        .with_labels("defect radius R [µm]", "density")
        .render(72, 18);

    let mut table = TextTable::new(vec![
        "fatal threshold (λ/2) [µm]",
        "fraction of defects fatal",
        "vs 1.0 µm node",
    ]);
    table.align(1, Alignment::Right);
    table.align(2, Alignment::Right);
    let base = Microns::new(1.0).expect("positive");
    for node in [1.0, 0.8, 0.65, 0.5, 0.35, 0.25] {
        let lam = Microns::new(node).expect("positive");
        let threshold = Microns::new(node / 2.0).expect("positive");
        let fatal = dist.fraction_larger_than(threshold);
        let recruitment = dist.shrink_recruitment(base, lam, 0.5);
        table.row(vec![
            format!("{:.3}", node / 2.0),
            format!("{fatal:.3}"),
            format!("{recruitment:.2}×"),
        ]);
    }

    let body = format!(
        "```text\n{plot}\n```\n\n\"Observe that the decrease in the minimum \
         feature size rapidly increases the number of defects which may \
         cause faults\":\n\n{}\n\nThis recruitment is what eq. (7) folds \
         into the `D/λ^p` acceleration.\n",
        table.render()
    );
    ExperimentReport {
        id: "fig5",
        title: "Defect size distribution",
        body,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shrink_recruitment_is_dramatic() {
        let dist = DefectSizeDistribution::classic(Microns::new(0.1).unwrap(), 4.07).unwrap();
        let r =
            dist.shrink_recruitment(Microns::new(1.0).unwrap(), Microns::new(0.25).unwrap(), 0.5);
        // Quartering the feature size recruits well over 5× the defects.
        assert!(r > 5.0, "recruitment {r}");
        assert!(report().body.contains("Fig 5"));
    }
}
