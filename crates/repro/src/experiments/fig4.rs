//! Fig 4 — process step counts and required defect densities.

use maly_fabline_sim::process::ProcessFlow;
use maly_tech_trend::datasets;
use maly_units::Microns;
use maly_viz::lineplot::LinePlot;
use maly_viz::table::{Alignment, TextTable};

use crate::context;
use crate::ExperimentReport;

/// First-principles required defect density: the `D₀` that keeps a
/// Fig-3-trend die at 70% yield under Poisson statistics,
/// `D_req(λ) = −ln(0.7) / A_ch(λ)`.
fn derived_required_density(lambda: f64) -> f64 {
    let area = context::shared()
        .die_size_paper
        .area_at(Microns::new(lambda).expect("positive node"))
        .value();
    -(0.7f64.ln()) / area
}

/// Regenerates Fig 4: manufacturing steps rising and required defect
/// density collapsing across generations — and checks the fab simulator's
/// synthetic flows against the dataset.
#[must_use]
pub fn report() -> ExperimentReport {
    let steps = datasets::PROCESS_STEPS_BY_GENERATION;
    let density = datasets::REQUIRED_DEFECT_DENSITY_BY_GENERATION;

    let steps_plot = LinePlot::new("Fig 4a: manufacturing steps per generation")
        .with_series("steps", steps)
        .with_labels("λ [µm]", "steps")
        .render(72, 16);
    let density_plot = LinePlot::new("Fig 4b: required defect density per generation")
        .with_series("D0 [/cm²]", density)
        .log_y()
        .with_labels("λ [µm]", "/cm²")
        .render(72, 16);

    let mut table = TextTable::new(vec![
        "node [µm]",
        "dataset steps",
        "simulator flow steps",
        "required D0 [/cm²]",
        "derived D0 (70% on trend die)",
    ]);
    for col in 1..5 {
        table.align(col, Alignment::Right);
    }
    for ((node, step_count), (_, d0)) in steps.iter().zip(density) {
        let flow = ProcessFlow::for_generation(format!("cmos-{node}"), *node);
        table.row(vec![
            format!("{node}"),
            format!("{step_count:.0}"),
            format!("{}", flow.step_count()),
            format!("{d0}"),
            format!("{:.2}", derived_required_density(*node)),
        ]);
    }

    let body = format!(
        "```text\n{steps_plot}\n```\n\n```text\n{density_plot}\n```\n\n{}\n\n\
         The fab simulator's synthetic flows track the dataset's step \
         counts, so fab-economics results inherit the Fig 4 trend. The \
         last column *derives* the falling requirement from first \
         principles — `−ln(0.7)/A_ch(λ)` on the Fig 3 die trend — and \
         converges with the dataset through the sub-micron nodes: the \
         required cleanliness is not an arbitrary roadmap number but a \
         direct consequence of growing dies.\n",
        table.render()
    );
    ExperimentReport {
        id: "fig4",
        title: "Process complexity and contamination requirements",
        body,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_requirement_tracks_dataset_below_a_micron() {
        for (node, d0) in datasets::REQUIRED_DEFECT_DENSITY_BY_GENERATION {
            if *node > 0.85 {
                continue; // pre-trend-era dies were smaller than the fit
            }
            let derived = derived_required_density(*node);
            let ratio = derived / d0;
            assert!(
                (0.4..3.0).contains(&ratio),
                "node {node}: derived {derived:.2} vs dataset {d0} (ratio {ratio:.2})"
            );
        }
    }

    #[test]
    fn simulator_flows_track_dataset_step_counts() {
        for (node, steps) in datasets::PROCESS_STEPS_BY_GENERATION {
            let flow = ProcessFlow::for_generation("x", *node);
            let rel = (flow.step_count() as f64 - steps).abs() / steps;
            assert!(rel < 0.15, "node {node}: {} vs {steps}", flow.step_count());
        }
        assert!(report().body.contains("Fig 4a"));
    }
}
