//! Prints the table1 reproduction report.

fn main() {
    print!("{}", maly_repro::experiments::table1::report());
}
