//! Prints the fig6 reproduction report.

fn main() {
    print!("{}", maly_repro::experiments::fig6::report());
}
