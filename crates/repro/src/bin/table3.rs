//! Prints the table3 reproduction report.

fn main() {
    print!("{}", maly_repro::experiments::table3::report());
}
