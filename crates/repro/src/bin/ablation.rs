//! Prints the ablation reproduction report.

fn main() {
    print!("{}", maly_repro::experiments::ablation::report());
}
