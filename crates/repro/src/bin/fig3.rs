//! Prints the fig3 reproduction report.

fn main() {
    print!("{}", maly_repro::experiments::fig3::report());
}
