//! Prints the fig8 reproduction report.

fn main() {
    print!("{}", maly_repro::experiments::fig8::report());
}
