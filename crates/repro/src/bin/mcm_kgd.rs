//! Prints the mcm_kgd reproduction report.

fn main() {
    print!("{}", maly_repro::experiments::mcm_kgd::report());
}
