//! Prints the fig4 reproduction report.

fn main() {
    print!("{}", maly_repro::experiments::fig4::report());
}
