//! Prints the fig7 reproduction report.

fn main() {
    print!("{}", maly_repro::experiments::fig7::report());
}
