//! Prints the chiplet partition-search report.

fn main() {
    print!("{}", maly_repro::experiments::chiplet::report());
}
