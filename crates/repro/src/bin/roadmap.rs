//! Prints the roadmap reproduction report.

fn main() {
    print!("{}", maly_repro::experiments::roadmap::report());
}
