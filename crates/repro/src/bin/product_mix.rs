//! Prints the product_mix reproduction report.

fn main() {
    print!("{}", maly_repro::experiments::product_mix::report());
}
