//! Prints the fig1 reproduction report.

fn main() {
    print!("{}", maly_repro::experiments::fig1::report());
}
