//! Prints the table2 reproduction report.

fn main() {
    print!("{}", maly_repro::experiments::table2::report());
}
