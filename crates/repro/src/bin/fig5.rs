//! Prints the fig5 reproduction report.

fn main() {
    print!("{}", maly_repro::experiments::fig5::report());
}
