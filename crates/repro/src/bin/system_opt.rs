//! Prints the system_opt reproduction report.

fn main() {
    print!("{}", maly_repro::experiments::system_opt::report());
}
