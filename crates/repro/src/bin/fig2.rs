//! Prints the fig2 reproduction report.

fn main() {
    print!("{}", maly_repro::experiments::fig2::report());
}
