//! Snapshot-style assertions on the rendered reports: the load-bearing
//! numbers and phrases that EXPERIMENTS.md promises must actually appear.

use maly_repro::{all_experiments, experiments};

#[test]
fn table3_report_carries_the_anchor_numbers() {
    let body = experiments::table3::report().body;
    // Paper-printed costs, verbatim.
    for printed in ["9.40", "25.50", "49.30", "0.93", "1.31", "2.18", "240.00"] {
        assert!(body.contains(printed), "missing printed cost {printed}");
    }
    // Die counts the calibration was hand-verified against.
    for count in [" 46 ", " 52 ", " 26 "] {
        assert!(body.contains(count), "missing die count{count}");
    }
    // The provenance asterisk footnote.
    assert!(body.contains("back-solved"));
    // The diversity chart.
    assert!(body.contains('█'));
}

#[test]
fn fig2_report_quotes_the_x_band() {
    let body = experiments::fig2::report().body;
    assert!(body.contains("1.2 – 1.4") || body.contains("1.2–1.4"));
    assert!(body.contains("billion"));
}

#[test]
fn fig6_and_fig7_reports_state_opposite_trends() {
    let fig6 = experiments::fig6::report().body;
    let fig7 = experiments::fig7::report().body;
    assert!(fig6.contains("goes down") || fig6.contains("fall"));
    assert!(fig7.contains("increase in the transistor cost"));
    // Fig 7 includes the yield column that explains the reversal.
    assert!(fig7.contains("die yield"));
}

#[test]
fn fig8_report_lists_optima() {
    let body = experiments::fig8::report().body;
    assert!(body.contains("λ^opt"));
    assert!(body.contains("local"));
    // The contour legend labels.
    assert!(body.contains("µ$"));
}

#[test]
fn ablation_report_ranks_the_calibration_first() {
    let body = experiments::ablation::report().body;
    assert!(body.contains("as printed"));
    assert!(body.contains("baseline"));
    // The baseline error is sub-percent and printed as such.
    assert!(body.contains("0.1") || body.contains("0.2"));
}

#[test]
fn product_mix_report_reaches_the_seven_x() {
    let body = experiments::product_mix::report().body;
    assert!(body.contains("as high value as 7"));
    // At least one row at or above 5×.
    let has_big_ratio = body
        .lines()
        .any(|l| ["5.", "6.", "7.", "8."].iter().any(|p| l.contains(p)) && l.contains('×'));
    assert!(has_big_ratio, "no ≥5× row rendered");
}

#[test]
fn every_report_renders_under_a_megabyte_and_has_ascii_art_or_tables() {
    for report in all_experiments() {
        let md = report.to_markdown();
        assert!(md.len() < 1_000_000, "{} too large", report.id);
        assert!(
            md.contains("```text") || md.contains("--"),
            "{} has neither plot nor table",
            report.id
        );
    }
}

#[test]
fn reports_are_deterministic() {
    // Rendering twice gives byte-identical output (no RNG, no clocks).
    let a = experiments::table3::report().body;
    let b = experiments::table3::report().body;
    assert_eq!(a, b);
    let a = experiments::fig8::report().body;
    let b = experiments::fig8::report().body;
    assert_eq!(a, b);
}
