//! Wafer maps: the concrete positions of placed dies.

use maly_units::{DieCount, SquareCentimeters};

use crate::{DieDimensions, Wafer};

/// One placed die on a wafer, in wafer-centered coordinates (cm).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DieSite {
    /// Grid column index (0-based, leftmost column that holds any die).
    pub column: u32,
    /// Grid row index (0-based, bottom row that holds any die).
    pub row: u32,
    /// X coordinate of the die center, cm from the wafer center.
    pub center_x: f64,
    /// Y coordinate of the die center, cm from the wafer center.
    pub center_y: f64,
}

impl DieSite {
    /// Distance from the wafer center to this die's center, in cm.
    #[must_use]
    pub fn radial_distance(&self) -> f64 {
        self.center_x.hypot(self.center_y)
    }
}

/// The result of placing a die grid on a wafer: every complete die site.
///
/// Produced by [`crate::raster::RasterPlacement::place`]. Consumed by the
/// yield Monte Carlo (to decide which die a sampled defect lands on) and
/// by the wafer-map renderer.
///
/// # Examples
///
/// ```
/// use maly_units::Centimeters;
/// use maly_wafer_geom::{raster::RasterPlacement, DieDimensions, Wafer};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let map = RasterPlacement::default().place(
///     &Wafer::six_inch(),
///     DieDimensions::square(Centimeters::new(2.0)?),
/// );
/// assert!(map.count().value() > 20);
/// // Every die fits entirely on the wafer: its farthest corner is inside.
/// for site in map.sites() {
///     let far_x = site.center_x.abs() + map.die().width().value() / 2.0;
///     let far_y = site.center_y.abs() + map.die().height().value() / 2.0;
///     assert!(far_x.hypot(far_y) <= 7.5 + 1e-9);
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct WaferMap {
    wafer: Wafer,
    die: DieDimensions,
    sites: Vec<DieSite>,
}

impl WaferMap {
    pub(crate) fn new(wafer: Wafer, die: DieDimensions, sites: Vec<DieSite>) -> Self {
        Self { wafer, die, sites }
    }

    /// The wafer this map was placed on.
    #[must_use]
    pub fn wafer(&self) -> &Wafer {
        &self.wafer
    }

    /// The die outline used for placement.
    #[must_use]
    pub fn die(&self) -> DieDimensions {
        self.die
    }

    /// All complete die sites.
    #[must_use]
    pub fn sites(&self) -> &[DieSite] {
        &self.sites
    }

    /// Number of complete dies (`N_ch`).
    #[must_use]
    pub fn count(&self) -> DieCount {
        DieCount::new(u32::try_from(self.sites.len()).unwrap_or(u32::MAX))
    }

    /// Total silicon area covered by complete dies.
    ///
    /// Returns `None` when the map is empty (area would be zero, which the
    /// unit type rejects).
    #[must_use]
    pub fn covered_area(&self) -> Option<SquareCentimeters> {
        if self.sites.is_empty() {
            None
        } else {
            SquareCentimeters::new(self.count().as_f64() * self.die.area().value()).ok()
        }
    }

    /// Fraction of the wafer covered by complete dies.
    #[must_use]
    pub fn utilization(&self) -> f64 {
        self.count().as_f64() * self.die.area().value() / self.wafer.area().value()
    }

    /// Index of the die (into [`Self::sites`]) containing the point
    /// `(x, y)` (wafer-centered cm), if any. Points on the saw street
    /// between dies belong to no die.
    #[must_use]
    pub fn die_at(&self, x: f64, y: f64) -> Option<usize> {
        let hw = self.die.width().value() / 2.0;
        let hh = self.die.height().value() / 2.0;
        self.sites
            .iter()
            .position(|s| (x - s.center_x).abs() <= hw && (y - s.center_y).abs() <= hh)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::raster::RasterPlacement;
    use maly_units::Centimeters;

    fn sample_map() -> WaferMap {
        RasterPlacement::default().place(
            &Wafer::six_inch(),
            DieDimensions::square(Centimeters::new(2.0).unwrap()),
        )
    }

    #[test]
    fn die_at_center_of_each_site_resolves() {
        let map = sample_map();
        for (i, s) in map.sites().iter().enumerate() {
            assert_eq!(map.die_at(s.center_x, s.center_y), Some(i));
        }
    }

    #[test]
    fn die_at_far_corner_is_none() {
        let map = sample_map();
        assert_eq!(map.die_at(7.4, 7.4), None);
    }

    #[test]
    fn utilization_consistent_with_covered_area() {
        let map = sample_map();
        let covered = map.covered_area().unwrap().value();
        assert!((map.utilization() - covered / map.wafer().area().value()).abs() < 1e-12);
    }

    #[test]
    fn counts_match_sites_len() {
        let map = sample_map();
        assert_eq!(map.count().value() as usize, map.sites().len());
    }
}
