//! Closed-form dies-per-wafer estimates.
//!
//! Quick analytical approximations used throughout the industry for die
//! productivity studies (Ferris-Prabhu \[20\] surveys them). They return
//! fractional counts: callers decide whether to floor.

use crate::{DieDimensions, Wafer};

/// Gross estimate: wafer area divided by die area, `π R_w² / A_ch`.
///
/// Ignores all edge losses, so it strictly upper-bounds any realizable
/// placement. Figs 6–7 of the paper implicitly use this bound (their
/// per-wafer transistor capacity is `A_w / (d_d λ²)`).
///
/// # Examples
///
/// ```
/// use maly_units::SquareCentimeters;
/// use maly_wafer_geom::{approx, DieDimensions, Wafer};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let n = approx::gross_estimate(
///     &Wafer::six_inch(),
///     DieDimensions::square_with_area(SquareCentimeters::new(1.0)?),
/// );
/// assert!((n - 176.7).abs() < 0.1);
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn gross_estimate(wafer: &Wafer, die: DieDimensions) -> f64 {
    let r = wafer.usable_radius().value();
    std::f64::consts::PI * r * r / die.area().value()
}

/// Edge-corrected estimate:
/// `π R_w² / A_ch − π · 2 R_w / sqrt(2 A_ch)`.
///
/// The second term approximates the dies lost along the circumference
/// (a strip of width `≈ sqrt(A_ch / 2)` around the perimeter `2 π R_w`).
/// This is the widely used "SEMI" dies-per-wafer rule of thumb.
///
/// Returns 0 when the correction exceeds the gross count (very large dies,
/// where the formula loses validity).
#[must_use]
pub fn edge_corrected_estimate(wafer: &Wafer, die: DieDimensions) -> f64 {
    let r = wafer.usable_radius().value();
    let area = die.area().value();
    let gross = std::f64::consts::PI * r * r / area;
    let edge_loss = std::f64::consts::PI * 2.0 * r / (2.0 * area).sqrt();
    (gross - edge_loss).max(0.0)
}

/// Fraction of the wafer surface covered by complete dies for a given
/// exact count — a productivity metric for wafer-size studies
/// (Sec. III.A.c of the paper).
#[must_use]
pub fn utilization(wafer: &Wafer, die: DieDimensions, count: maly_units::DieCount) -> f64 {
    count.as_f64() * die.area().value() / wafer.area().value()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::maly;
    use maly_units::SquareCentimeters;

    fn square_die(area_cm2: f64) -> DieDimensions {
        DieDimensions::square_with_area(SquareCentimeters::new(area_cm2).unwrap())
    }

    #[test]
    fn gross_upper_bounds_exact_count() {
        let wafer = Wafer::six_inch();
        for area in [0.1, 0.5, 1.0, 2.976, 4.785] {
            let die = square_die(area);
            let exact = maly::dies_per_wafer(&wafer, die).as_f64();
            assert!(gross_estimate(&wafer, die) >= exact);
        }
    }

    #[test]
    fn edge_corrected_is_below_gross() {
        let wafer = Wafer::six_inch();
        let die = square_die(1.0);
        assert!(edge_corrected_estimate(&wafer, die) < gross_estimate(&wafer, die));
    }

    #[test]
    fn edge_corrected_tracks_exact_for_small_dies() {
        let wafer = Wafer::six_inch();
        for area in [0.1, 0.25, 0.5, 1.0] {
            let die = square_die(area);
            let exact = maly::dies_per_wafer(&wafer, die).as_f64();
            let est = edge_corrected_estimate(&wafer, die);
            let rel = (est - exact).abs() / exact;
            assert!(rel < 0.1, "area {area}: est {est} vs exact {exact}");
        }
    }

    #[test]
    fn edge_corrected_saturates_at_zero() {
        let wafer = Wafer::six_inch();
        let die = square_die(150.0);
        assert_eq!(edge_corrected_estimate(&wafer, die), 0.0);
    }

    #[test]
    fn utilization_in_unit_interval() {
        let wafer = Wafer::six_inch();
        let die = square_die(1.0);
        let count = maly::dies_per_wafer(&wafer, die);
        let u = utilization(&wafer, die, count);
        assert!(u > 0.5 && u < 1.0, "utilization {u} out of expected band");
    }

    #[test]
    fn estimates_respect_edge_exclusion() {
        let die = square_die(1.0);
        let full = gross_estimate(&Wafer::six_inch(), die);
        let excl = gross_estimate(
            &Wafer::six_inch().edge_exclusion(maly_units::Centimeters::new(0.5).unwrap()),
            die,
        );
        assert!(excl < full);
    }
}
