//! Rectangular die dimensions.

use maly_units::{Centimeters, SquareCentimeters};

/// Dimensions `a × b` of a rectangular die, in centimeters.
///
/// Eq. (4) takes the die as two edge lengths; the rest of the cost model
/// mostly works with the die *area* `A_ch = a·b` and assumes a square
/// aspect ratio when only the area is known (the paper does the same when
/// converting `N_tr · d_d · λ²` into a die outline).
///
/// # Examples
///
/// ```
/// use maly_units::{Centimeters, SquareCentimeters};
/// use maly_wafer_geom::DieDimensions;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let die = DieDimensions::new(Centimeters::new(1.2)?, Centimeters::new(0.8)?);
/// assert!((die.area().value() - 0.96).abs() < 1e-12);
/// assert!((die.aspect_ratio() - 1.5).abs() < 1e-12);
///
/// let square = DieDimensions::square_with_area(SquareCentimeters::new(1.0)?);
/// assert!((square.width().value() - 1.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DieDimensions {
    width: Centimeters,
    height: Centimeters,
}

impl DieDimensions {
    /// Creates a die with edges `width` (the paper's `a`) and `height` (`b`).
    #[must_use]
    pub fn new(width: Centimeters, height: Centimeters) -> Self {
        Self { width, height }
    }

    /// Creates a square die with the given edge length.
    #[must_use]
    pub fn square(edge: Centimeters) -> Self {
        Self::new(edge, edge)
    }

    /// Creates a square die with the given area.
    #[must_use]
    pub fn square_with_area(area: SquareCentimeters) -> Self {
        Self::square(area.square_side())
    }

    /// Creates a rectangular die of the given area and aspect ratio
    /// `width / height`.
    ///
    /// # Panics
    ///
    /// Panics if `aspect_ratio` is not finite and positive.
    #[must_use]
    pub fn with_area_and_aspect(area: SquareCentimeters, aspect_ratio: f64) -> Self {
        assert!(
            aspect_ratio.is_finite() && aspect_ratio > 0.0,
            "aspect ratio must be positive and finite, got {aspect_ratio}"
        );
        let height = (area.value() / aspect_ratio).sqrt();
        let width = height * aspect_ratio;
        Self::new(
            Centimeters::new(width).expect("positive area and ratio"),
            Centimeters::new(height).expect("positive area and ratio"),
        )
    }

    /// Die width `a`.
    #[must_use]
    pub fn width(&self) -> Centimeters {
        self.width
    }

    /// Die height `b`.
    #[must_use]
    pub fn height(&self) -> Centimeters {
        self.height
    }

    /// Die area `A_ch = a · b`.
    #[must_use]
    pub fn area(&self) -> SquareCentimeters {
        self.width * self.height
    }

    /// Aspect ratio `a / b`.
    #[must_use]
    pub fn aspect_ratio(&self) -> f64 {
        self.width / self.height
    }

    /// Returns the same die rotated by 90° (edges swapped).
    #[must_use]
    pub fn rotated(&self) -> Self {
        Self::new(self.height, self.width)
    }

    /// Half-diagonal: the distance from the die center to a corner. A die
    /// centered at distance `d` from the wafer center fits entirely on the
    /// wafer iff every corner does; the half-diagonal is the worst case.
    #[must_use]
    pub fn half_diagonal(&self) -> Centimeters {
        Centimeters::new((self.width.value().hypot(self.height.value())) / 2.0)
            .expect("positive edges")
    }
}

impl std::fmt::Display for DieDimensions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:.3} × {:.3} cm die",
            self.width.value(),
            self.height.value()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn area_and_aspect_invert() {
        let die = DieDimensions::with_area_and_aspect(SquareCentimeters::new(2.0).unwrap(), 2.0);
        assert!((die.area().value() - 2.0).abs() < 1e-12);
        assert!((die.aspect_ratio() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn square_with_area_has_unit_aspect() {
        let die = DieDimensions::square_with_area(SquareCentimeters::new(2.976).unwrap());
        assert!((die.aspect_ratio() - 1.0).abs() < 1e-12);
        assert!((die.width().value() - 2.976_f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn rotation_swaps_edges_and_preserves_area() {
        let die = DieDimensions::new(
            Centimeters::new(1.5).unwrap(),
            Centimeters::new(0.5).unwrap(),
        );
        let rot = die.rotated();
        assert_eq!(rot.width().value(), 0.5);
        assert_eq!(rot.height().value(), 1.5);
        assert!((rot.area().value() - die.area().value()).abs() < 1e-12);
    }

    #[test]
    fn half_diagonal_of_3_4_5_triangle() {
        let die = DieDimensions::new(
            Centimeters::new(3.0).unwrap(),
            Centimeters::new(4.0).unwrap(),
        );
        assert!((die.half_diagonal().value() - 2.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "aspect ratio")]
    fn rejects_bad_aspect() {
        let _ = DieDimensions::with_area_and_aspect(SquareCentimeters::new(1.0).unwrap(), f64::NAN);
    }

    #[test]
    fn display_is_informative() {
        let die = DieDimensions::square(Centimeters::new(1.0).unwrap());
        assert_eq!(die.to_string(), "1.000 × 1.000 cm die");
    }
}
