//! Exact grid-placement simulation of dies on a wafer.
//!
//! Eq. (4) fixes the placement grid to start at the bottom of the wafer
//! and centers every row. Real steppers expose the grid *offset* as a free
//! parameter and pick the one that maximizes good sites. This module
//! simulates the placement exactly: dies live on a regular grid with pitch
//! `die + saw street`, and a die counts iff its entire rectangle lies
//! inside the usable radius. An offset sweep finds the best alignment.
//!
//! Note a deliberate difference from eq. (4): the formula lets every *row*
//! center itself on the wafer independently, which no rigid stepper grid
//! can do. Eq. (4) is therefore typically 1–3% *optimistic* relative to
//! the best rigid-grid placement computed here (e.g. 321 vs 316 dies for
//! a 0.5 cm² die on a 6-inch wafer).

use crate::{DieDimensions, DieSite, Wafer, WaferMap};

/// Exact raster die placement with grid-offset optimization.
///
/// # Examples
///
/// ```
/// use maly_units::Centimeters;
/// use maly_wafer_geom::{raster::RasterPlacement, DieDimensions, Wafer};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let placement = RasterPlacement::new(8); // sweep an 8×8 offset grid
/// let map = placement.place(
///     &Wafer::six_inch(),
///     DieDimensions::square(Centimeters::new(1.0)?),
/// );
/// // Close to (slightly below) the 154 dies of the row-centering eq. (4).
/// assert!(map.count().value() >= 150);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RasterPlacement {
    offset_steps: u32,
}

impl RasterPlacement {
    /// Creates a placement engine sweeping `offset_steps × offset_steps`
    /// grid offsets in `[0, pitch)²`.
    ///
    /// `offset_steps = 1` pins the grid so a die corner sits at the wafer
    /// center (no optimization). Larger values approach the true optimum;
    /// 8–16 is plenty in practice.
    ///
    /// # Panics
    ///
    /// Panics if `offset_steps` is zero.
    #[must_use]
    pub fn new(offset_steps: u32) -> Self {
        assert!(offset_steps > 0, "offset_steps must be at least 1");
        Self { offset_steps }
    }

    /// Number of offsets swept per axis.
    #[must_use]
    pub fn offset_steps(&self) -> u32 {
        self.offset_steps
    }

    /// Places `die` on `wafer`, returning the best wafer map over the
    /// offset sweep (ties broken toward the earlier offset).
    #[must_use]
    pub fn place(&self, wafer: &Wafer, die: DieDimensions) -> WaferMap {
        let pitch_x = die.width().value() + wafer.saw_street_width_cm();
        let pitch_y = die.height().value() + wafer.saw_street_width_cm();

        let mut best: Option<Vec<DieSite>> = None;
        for ix in 0..self.offset_steps {
            for iy in 0..self.offset_steps {
                let dx = pitch_x * f64::from(ix) / f64::from(self.offset_steps);
                let dy = pitch_y * f64::from(iy) / f64::from(self.offset_steps);
                let sites = place_with_offset(wafer, die, pitch_x, pitch_y, dx, dy);
                if best.as_ref().is_none_or(|b| sites.len() > b.len()) {
                    best = Some(sites);
                }
            }
        }

        WaferMap::new(*wafer, die, best.unwrap_or_default())
    }
}

impl Default for RasterPlacement {
    /// An 8×8 offset sweep — accurate to a die or two of the true optimum.
    fn default() -> Self {
        Self::new(8)
    }
}

/// Enumerates complete die sites for one fixed grid offset.
fn place_with_offset(
    wafer: &Wafer,
    die: DieDimensions,
    pitch_x: f64,
    pitch_y: f64,
    dx: f64,
    dy: f64,
) -> Vec<DieSite> {
    let r = wafer.usable_radius().value();
    let w = die.width().value();
    let h = die.height().value();

    // Grid cell (i, j) holds a die whose lower-left corner is at
    // (dx + i·pitch_x, dy + j·pitch_y) relative to the wafer center.
    // Enumerate all cells that could possibly intersect the wafer.
    let i_min = ((-r - dx) / pitch_x).floor() as i64 - 1;
    let i_max = ((r - dx) / pitch_x).ceil() as i64 + 1;
    let j_min = ((-r - dy) / pitch_y).floor() as i64 - 1;
    let j_max = ((r - dy) / pitch_y).ceil() as i64 + 1;

    let mut sites = Vec::new();
    for j in j_min..=j_max {
        for i in i_min..=i_max {
            let x0 = dx + i as f64 * pitch_x;
            let y0 = dy + j as f64 * pitch_y;
            // Inside the circle, and above the flat chord if one exists
            // (the die's bottom edge is its lowest point).
            let above_flat = wafer.flat_distance().is_none_or(|d| y0 >= -d.value());
            if above_flat && rectangle_inside_circle(x0, y0, w, h, r) {
                sites.push((i, j, x0 + w / 2.0, y0 + h / 2.0));
            }
        }
    }

    // Normalize grid indices so the smallest occupied row/column is zero.
    let min_i = sites.iter().map(|s| s.0).min().unwrap_or(0);
    let min_j = sites.iter().map(|s| s.1).min().unwrap_or(0);
    sites
        .into_iter()
        .map(|(i, j, cx, cy)| DieSite {
            column: u32::try_from(i - min_i).expect("normalized index is non-negative"),
            row: u32::try_from(j - min_j).expect("normalized index is non-negative"),
            center_x: cx,
            center_y: cy,
        })
        .collect()
}

/// True when the axis-aligned rectangle with lower-left corner `(x0, y0)`
/// and size `w × h` lies entirely inside the circle of radius `r` centered
/// at the origin. For a convex region it suffices to test the corners; the
/// farthest corner dominates.
fn rectangle_inside_circle(x0: f64, y0: f64, w: f64, h: f64, r: f64) -> bool {
    let far_x = x0.abs().max((x0 + w).abs());
    let far_y = y0.abs().max((y0 + h).abs());
    far_x * far_x + far_y * far_y <= r * r
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::maly;
    use maly_units::{Centimeters, SquareCentimeters};

    fn square_die(area_cm2: f64) -> DieDimensions {
        DieDimensions::square_with_area(SquareCentimeters::new(area_cm2).unwrap())
    }

    /// Eq. (4) centers each row independently, so it may exceed the rigid
    /// grid slightly — but never by more than a few percent.
    #[test]
    fn raster_tracks_eq4_within_a_few_percent() {
        let wafer = Wafer::six_inch();
        for area in [0.25, 0.5, 1.0, 2.0, 2.976, 4.785] {
            let die = square_die(area);
            let eq4 = maly::dies_per_wafer(&wafer, die).as_f64();
            let raster = RasterPlacement::default()
                .place(&wafer, die)
                .count()
                .as_f64();
            assert!(
                raster >= eq4 * 0.95,
                "area {area}: raster {raster} far below eq4 {eq4}"
            );
        }
    }

    #[test]
    fn all_sites_fit_on_wafer() {
        let wafer = Wafer::six_inch();
        let die = square_die(1.0);
        let map = RasterPlacement::default().place(&wafer, die);
        let (hw, hh) = (die.width().value() / 2.0, die.height().value() / 2.0);
        for s in map.sites() {
            // Exact criterion: the farthest corner lies inside the circle.
            let far_x = s.center_x.abs() + hw;
            let far_y = s.center_y.abs() + hh;
            assert!(far_x.hypot(far_y) <= 7.5 + 1e-9);
        }
    }

    #[test]
    fn sites_do_not_overlap() {
        let wafer = Wafer::six_inch();
        let die = square_die(1.0);
        let map = RasterPlacement::default().place(&wafer, die);
        let w = die.width().value();
        let h = die.height().value();
        for (i, a) in map.sites().iter().enumerate() {
            for b in &map.sites()[i + 1..] {
                let overlap_x = (a.center_x - b.center_x).abs() < w - 1e-9;
                let overlap_y = (a.center_y - b.center_y).abs() < h - 1e-9;
                assert!(!(overlap_x && overlap_y), "sites {a:?} and {b:?} overlap");
            }
        }
    }

    #[test]
    fn more_offsets_never_hurt() {
        let wafer = Wafer::six_inch();
        let die = square_die(2.0);
        let coarse = RasterPlacement::new(1).place(&wafer, die).count().value();
        let fine = RasterPlacement::new(8).place(&wafer, die).count().value();
        assert!(fine >= coarse);
    }

    #[test]
    fn primary_flat_costs_dies() {
        // Fixed grid (no offset re-optimization): removing the bottom
        // chord must strictly cost sites.
        let die = square_die(1.0);
        let fixed = RasterPlacement::new(1);
        let round = fixed.place(&Wafer::six_inch(), die).count().value();
        let flatted = fixed
            .place(
                &Wafer::six_inch().primary_flat(Centimeters::new(6.0).unwrap()),
                die,
            )
            .count()
            .value();
        assert!(flatted < round, "flat {flatted} vs round {round}");
        // But only by the bottom-chord sites — well under 10%.
        assert!(f64::from(flatted) > 0.9 * f64::from(round));
        // With offset optimization, part (but not all) of the loss can
        // be recovered.
        let optimized = RasterPlacement::default()
            .place(
                &Wafer::six_inch().primary_flat(Centimeters::new(6.0).unwrap()),
                die,
            )
            .count()
            .value();
        assert!(optimized >= flatted);
    }

    #[test]
    fn flat_sites_respect_the_chord() {
        let die = square_die(1.0);
        let wafer = Wafer::six_inch().primary_flat(Centimeters::new(6.5).unwrap());
        let map = RasterPlacement::default().place(&wafer, die);
        for s in map.sites() {
            let bottom = s.center_y - die.height().value() / 2.0;
            assert!(bottom >= -6.5 - 1e-9);
        }
    }

    #[test]
    fn saw_street_reduces_count() {
        let die = square_die(1.0);
        let without = RasterPlacement::default()
            .place(&Wafer::six_inch(), die)
            .count()
            .value();
        let with = RasterPlacement::default()
            .place(
                &Wafer::six_inch().saw_street(Centimeters::new(0.1).unwrap()),
                die,
            )
            .count()
            .value();
        assert!(with < without);
    }

    #[test]
    fn huge_die_yields_empty_map() {
        let map = RasterPlacement::default().place(&Wafer::six_inch(), square_die(300.0));
        assert!(map.count().is_zero());
        assert!(map.covered_area().is_none());
    }

    #[test]
    fn grid_indices_are_normalized() {
        let map = RasterPlacement::default().place(&Wafer::six_inch(), square_die(1.0));
        assert!(map.sites().iter().any(|s| s.row == 0));
        assert!(map.sites().iter().any(|s| s.column == 0));
    }

    #[test]
    #[should_panic(expected = "offset_steps")]
    fn zero_offset_steps_rejected() {
        let _ = RasterPlacement::new(0);
    }
}
