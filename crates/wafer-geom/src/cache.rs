//! Memoized eq. (4) dies-per-wafer evaluation.
//!
//! The row-packing sum dominates the per-cell cost of every sweep: a
//! Fig 8 surface, a partition search, or a Table 3 regeneration asks
//! for `N_ch` thousands of times, and many of those calls repeat the
//! same `(usable radius, die width, die height)` triple — most visibly
//! in the partition search, where the same die subsets recur across
//! hundreds of groupings, and across repeated surface/report passes.
//!
//! [`dies_per_wafer`] is a drop-in memoized front for
//! [`crate::maly::dies_per_wafer`]. The cache key is the *only* input
//! the formula reads — the usable radius and the two die edges — each
//! quantized to an integer number of **nanocentimeters** (1e-9 cm,
//! i.e. 10 femtometers). The quantum sits ten orders of magnitude below
//! any physical die dimension in the model, so distinct designs never
//! collide, while dimensionally identical requests reuse the stored
//! count. Because every caller routes through the same cache, parallel
//! and serial sweeps observe identical values (see DESIGN.md,
//! "Parallel execution & determinism").
//!
//! The cache is process-global (`OnceLock`), sharded to keep lock
//! contention negligible under the parallel executor, and safe across
//! panics: a poisoned shard is recovered, not unwrapped.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::{OnceLock, RwLock, RwLockReadGuard};

use maly_units::DieCount;

use crate::{maly, DieDimensions, Wafer};

/// Quantization step of the cache key, in centimeters.
pub const KEY_QUANTUM_CM: f64 = 1.0e-9;

/// Calls answered from the memo. Diagnostic kind: concurrent sweeps can
/// race two misses on the same key that a serial run would split
/// hit/miss, so the totals are not thread-count-invariant.
static CACHE_HITS: maly_obs::Counter = maly_obs::Counter::diag("wafer_geom.cache.hits");
/// Calls that computed eq. (4) and stored the result.
static CACHE_MISSES: maly_obs::Counter = maly_obs::Counter::diag("wafer_geom.cache.misses");

/// Number of shards; a power of two so the selector is a mask.
const SHARDS: usize = 16;

/// One memo key: `(usable radius, die width, die height)` in integer
/// multiples of [`KEY_QUANTUM_CM`].
type Key = (u64, u64, u64);

/// Multiply-rotate hasher for the fixed-shape integer key. The default
/// `HashMap` hasher (SipHash) is DoS-resistant but costs more than the
/// whole warm-hit budget of this memo; the key here is three trusted
/// in-process integers, so a two-instruction mix per word is enough.
/// Each `u64` word folds in as `state = (rotl(state, 5) ^ word) × φ64`
/// (the 64-bit golden-ratio constant), whose high and low halves are
/// both well distributed for hashbrown's control-byte scheme.
#[derive(Default)]
struct KeyHasher(u64);

impl Hasher for KeyHasher {
    fn write(&mut self, bytes: &[u8]) {
        // Fallback for non-u64 fields; the memo key never takes it.
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            self.write_u64(u64::from_le_bytes(word));
        }
    }

    fn write_u64(&mut self, word: u64) {
        self.0 = (self.0.rotate_left(5) ^ word).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    }

    fn finish(&self) -> u64 {
        self.0 ^ (self.0 >> 32)
    }
}

type KeyMap = HashMap<Key, u32, BuildHasherDefault<KeyHasher>>;

struct Shard {
    map: RwLock<KeyMap>,
}

struct Cache {
    shards: Vec<Shard>,
}

static CACHE: OnceLock<Cache> = OnceLock::new();

fn cache() -> &'static Cache {
    CACHE.get_or_init(|| Cache {
        shards: (0..SHARDS)
            .map(|_| Shard {
                map: RwLock::new(KeyMap::default()),
            })
            .collect(),
    })
}

/// Reciprocal of [`KEY_QUANTUM_CM`]: quantization multiplies by this
/// instead of dividing by the quantum — the division was a measurable
/// slice of the warm-hit budget, and key identity only needs the same
/// mapping on every call, not any particular rounding of it.
const KEY_QUANTUM_INV: f64 = 1.0e9;

/// Quantizes a positive dimension to integer nanocentimeters.
/// Float-to-int casts saturate, so pathological inputs stay safe.
fn quantize(value_cm: f64) -> u64 {
    (value_cm * KEY_QUANTUM_INV).round() as u64
}

fn shard_of(key: &Key) -> usize {
    // Cheap mix of the three coordinates; only distribution matters.
    let h = key
        .0
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(key.1.rotate_left(21))
        .wrapping_add(key.2.rotate_left(42));
    (h >> 58) as usize & (SHARDS - 1)
}

/// Reads a shard, recovering from poison (a panicked writer cannot have
/// left a torn entry: `HashMap::insert` of a `u32` is not observable
/// mid-write through the lock).
fn lookup(key: &Key) -> Option<u32> {
    let shard = &cache().shards[shard_of(key)];
    let guard = match shard.map.read() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    guard.get(key).copied()
}

fn store(key: Key, value: u32) {
    let shard = &cache().shards[shard_of(&key)];
    let mut guard = match shard.map.write() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    guard.insert(key, value);
}

/// Memoized [`crate::maly::dies_per_wafer`]; bit-identical to the
/// direct call.
#[must_use]
pub fn dies_per_wafer(wafer: &Wafer, die: DieDimensions) -> DieCount {
    let key = (
        quantize(wafer.usable_radius().value()),
        quantize(die.width().value()),
        quantize(die.height().value()),
    );
    if let Some(count) = lookup(&key) {
        CACHE_HITS.incr();
        return DieCount::new(count);
    }
    let count = maly::dies_per_wafer(wafer, die);
    CACHE_MISSES.incr();
    store(key, count.value());
    count
}

/// Batched memoized eq. (4): one pass of cache lookups over a λ-batch
/// of dies, with the misses computed through the batched row-sum kernel
/// ([`crate::maly::dies_per_wafer_batch`]) and stored back.
///
/// Composes the two layers: a warm sweep is pure lookups; a cold sweep
/// pays one batched kernel run instead of `n` scalar entries. Results
/// are bit-identical to calling [`dies_per_wafer`] per element.
#[must_use]
pub fn dies_per_wafer_batch(wafer: &Wafer, dies: &[DieDimensions]) -> Vec<DieCount> {
    let r_key = quantize(wafer.usable_radius().value());
    // Miss slots hold a zero placeholder until the miss pass patches
    // them; a flat Vec<DieCount> keeps the warm path free of Option
    // repacking.
    let mut out: Vec<DieCount> = Vec::with_capacity(dies.len());
    let mut miss_idx: Vec<usize> = Vec::new();
    let mut miss_dies: Vec<DieDimensions> = Vec::new();
    let mut hits = 0u64;
    {
        // One read acquisition per shard for the whole batch, instead of
        // one per element: the lock round-trip otherwise costs as much
        // as the warm lookup it guards. Read guards never block each
        // other; writers wait only for this short hit pass.
        let guards: Vec<RwLockReadGuard<'_, KeyMap>> = cache()
            .shards
            .iter()
            .map(|shard| match shard.map.read() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            })
            .collect();
        for (i, die) in dies.iter().enumerate() {
            let key = (
                r_key,
                quantize(die.width().value()),
                quantize(die.height().value()),
            );
            match guards[shard_of(&key)].get(&key) {
                Some(&count) => {
                    hits += 1;
                    out.push(DieCount::new(count));
                }
                None => {
                    miss_idx.push(i);
                    miss_dies.push(*die);
                    out.push(DieCount::new(0));
                }
            }
        }
    }
    CACHE_HITS.add(hits);
    if !miss_dies.is_empty() {
        let computed = maly::dies_per_wafer_batch(wafer, &miss_dies);
        CACHE_MISSES.add(miss_dies.len() as u64);
        for ((&i, die), count) in miss_idx.iter().zip(&miss_dies).zip(&computed) {
            let key = (
                r_key,
                quantize(die.width().value()),
                quantize(die.height().value()),
            );
            store(key, count.value());
            out[i] = *count;
        }
    }
    out
}

/// Memoized [`crate::maly::dies_per_wafer_best_orientation`]: both
/// orientations go through the shared cache, so a rotated request of
/// the same rectangle is already warm.
#[must_use]
pub fn dies_per_wafer_best_orientation(wafer: &Wafer, die: DieDimensions) -> DieCount {
    let as_drawn = dies_per_wafer(wafer, die);
    let rotated = dies_per_wafer(wafer, die.rotated());
    as_drawn.max(rotated)
}

/// Cache effectiveness counters (process lifetime totals), read from
/// the `maly-obs` registry — the cache keeps no bookkeeping of its own.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Calls answered from the cache.
    pub hits: u64,
    /// Calls that computed eq. (4) and stored the result.
    pub misses: u64,
}

impl CacheStats {
    /// Hit fraction in `[0, 1]` (zero before any call).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Current hit/miss counters: a thin shim over the
/// `wafer_geom.cache.hits` / `wafer_geom.cache.misses` obs counters, so
/// the same totals appear here and in an exported trace.
#[must_use]
pub fn stats() -> CacheStats {
    CacheStats {
        hits: CACHE_HITS.value(),
        misses: CACHE_MISSES.value(),
    }
}

/// Empties every shard and resets the counters (for cold-start
/// benchmarks; correctness never requires clearing).
pub fn clear() {
    for shard in &cache().shards {
        let mut guard = match shard.map.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        guard.clear();
    }
    CACHE_HITS.reset();
    CACHE_MISSES.reset();
}

#[cfg(test)]
mod tests {
    use super::*;
    use maly_units::{Centimeters, SquareCentimeters};

    #[test]
    fn cached_count_matches_direct_eq4() {
        let wafer = Wafer::six_inch();
        for area in [0.25, 1.0, 2.976, 4.785216] {
            let die = DieDimensions::square_with_area(SquareCentimeters::new(area).unwrap());
            assert_eq!(
                dies_per_wafer(&wafer, die),
                maly::dies_per_wafer(&wafer, die),
                "area {area}"
            );
            // Second call exercises the hit path; value must not change.
            assert_eq!(
                dies_per_wafer(&wafer, die),
                maly::dies_per_wafer(&wafer, die)
            );
        }
    }

    #[test]
    fn best_orientation_matches_direct() {
        let wafer = Wafer::six_inch();
        let die = DieDimensions::new(
            Centimeters::new(2.9).unwrap(),
            Centimeters::new(0.9).unwrap(),
        );
        assert_eq!(
            dies_per_wafer_best_orientation(&wafer, die),
            maly::dies_per_wafer_best_orientation(&wafer, die)
        );
    }

    #[test]
    fn edge_exclusion_changes_the_key() {
        // Same die, different usable radius: must not alias.
        let die = DieDimensions::square(Centimeters::new(1.0).unwrap());
        let full = dies_per_wafer(&Wafer::six_inch(), die);
        let excluded = dies_per_wafer(
            &Wafer::six_inch().edge_exclusion(Centimeters::new(0.5).unwrap()),
            die,
        );
        assert!(excluded < full);
    }

    #[test]
    fn nearby_but_distinct_dimensions_do_not_alias() {
        // 1 µm apart (1e-4 cm) is 100 000 quanta apart: distinct keys.
        let wafer = Wafer::six_inch();
        let a = DieDimensions::square(Centimeters::new(1.0).unwrap());
        let b = DieDimensions::square(Centimeters::new(1.0001).unwrap());
        assert_eq!(dies_per_wafer(&wafer, a), maly::dies_per_wafer(&wafer, a));
        assert_eq!(dies_per_wafer(&wafer, b), maly::dies_per_wafer(&wafer, b));
    }

    #[test]
    fn stats_and_clear_work() {
        clear();
        let wafer = Wafer::six_inch();
        let die = DieDimensions::square(Centimeters::new(1.25).unwrap());
        let _ = dies_per_wafer(&wafer, die);
        let _ = dies_per_wafer(&wafer, die);
        let s = stats();
        // Other tests run concurrently in this process, so only lower
        // bounds are stable.
        assert!(s.misses >= 1);
        assert!(s.hits >= 1);
        assert!(s.hit_rate() > 0.0 && s.hit_rate() < 1.0);
        clear();
        let s = stats();
        assert_eq!(s.hits + s.misses, 0);
        assert_eq!(s.hit_rate(), 0.0);
    }

    #[test]
    fn batch_matches_scalar_and_warms_the_cache() {
        let wafer = Wafer::six_inch();
        let dies: Vec<DieDimensions> = (1..30)
            .map(|i| DieDimensions::square(Centimeters::new(0.17 * f64::from(i)).unwrap()))
            .collect();
        let cold = dies_per_wafer_batch(&wafer, &dies);
        for (die, got) in dies.iter().zip(&cold) {
            assert_eq!(*got, maly::dies_per_wafer(&wafer, *die), "die {die:?}");
        }
        // Second pass must be pure hits and identical.
        let before = stats();
        let warm = dies_per_wafer_batch(&wafer, &dies);
        let after = stats();
        assert_eq!(cold, warm);
        assert!(after.hits >= before.hits + dies.len() as u64);
    }

    #[test]
    fn batch_and_scalar_share_the_memo() {
        let wafer = Wafer::six_inch();
        let die = DieDimensions::square(Centimeters::new(0.77).unwrap());
        let scalar = dies_per_wafer(&wafer, die);
        let batch = dies_per_wafer_batch(&wafer, &[die, die]);
        assert_eq!(batch, vec![scalar, scalar]);
    }

    #[test]
    fn concurrent_lookups_agree() {
        let wafer = Wafer::six_inch();
        let reference: Vec<u32> = (1..40)
            .map(|i| {
                let die = DieDimensions::square(Centimeters::new(i as f64 * 0.1).unwrap());
                maly::dies_per_wafer(&wafer, die).value()
            })
            .collect();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for (i, want) in (1..40).zip(&reference) {
                        let die = DieDimensions::square(Centimeters::new(i as f64 * 0.1).unwrap());
                        assert_eq!(dies_per_wafer(&wafer, die).value(), *want);
                    }
                });
            }
        });
    }
}
