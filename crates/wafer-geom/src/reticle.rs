//! Stepper reticles: multi-die exposure fields and quantization loss.
//!
//! A stepper does not print dies one at a time — it prints *fields* of
//! `cols × rows` dies per exposure. When a fab only accepts complete
//! fields (common where partial-field processing is unreliable), every
//! field that hangs off the wafer edge forfeits all its dies, not just
//! the ones outside. The *field quantization loss* is the die-count gap
//! between per-die placement and complete-field placement; it grows with
//! field size and shrinks with wafer size — one more term in the
//! productivity ledger of Sec. III.A.c.

use maly_units::DieCount;

use crate::raster::RasterPlacement;
use crate::{DieDimensions, Wafer};

/// A reticle: `cols × rows` copies of one die per exposure field.
///
/// # Examples
///
/// ```
/// use maly_units::Centimeters;
/// use maly_wafer_geom::{reticle::Reticle, DieDimensions, Wafer};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let die = DieDimensions::square(Centimeters::new(1.0)?);
/// let reticle = Reticle::new(die, 2, 2);
/// let wafer = Wafer::six_inch();
/// // Complete-field stepping loses dies relative to per-die placement.
/// let per_die = reticle.dies_per_wafer_partial_fields(&wafer);
/// let whole_fields = reticle.dies_per_wafer_complete_fields(&wafer);
/// assert!(whole_fields < per_die);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Reticle {
    die: DieDimensions,
    cols: u32,
    rows: u32,
}

impl Reticle {
    /// Creates a reticle of `cols × rows` die images.
    ///
    /// # Panics
    ///
    /// Panics when either dimension is zero.
    #[must_use]
    pub fn new(die: DieDimensions, cols: u32, rows: u32) -> Self {
        assert!(cols > 0 && rows > 0, "reticle must hold at least one die");
        Self { die, cols, rows }
    }

    /// The printed die.
    #[must_use]
    pub fn die(&self) -> DieDimensions {
        self.die
    }

    /// Dies per exposure.
    #[must_use]
    pub fn dies_per_field(&self) -> u32 {
        self.cols * self.rows
    }

    /// The field outline.
    #[must_use]
    pub fn field(&self) -> DieDimensions {
        DieDimensions::new(
            self.die.width() * f64::from(self.cols),
            self.die.height() * f64::from(self.rows),
        )
    }

    /// Dies per wafer when partial fields are printed and their on-wafer
    /// dies kept — identical to per-die raster placement, because the die
    /// grid is contiguous across field boundaries.
    #[must_use]
    pub fn dies_per_wafer_partial_fields(&self, wafer: &Wafer) -> DieCount {
        RasterPlacement::default().place(wafer, self.die).count()
    }

    /// Dies per wafer when only *complete* fields count: complete-field
    /// placements × dies per field.
    #[must_use]
    pub fn dies_per_wafer_complete_fields(&self, wafer: &Wafer) -> DieCount {
        let fields = RasterPlacement::default()
            .place(wafer, self.field())
            .count();
        DieCount::new(fields.value().saturating_mul(self.dies_per_field()))
    }

    /// Fractional die loss of complete-field stepping relative to
    /// per-die placement, in `[0, 1]`.
    #[must_use]
    pub fn field_quantization_loss(&self, wafer: &Wafer) -> f64 {
        let per_die = self.dies_per_wafer_partial_fields(wafer).as_f64();
        // audit:allow(float-cmp): exact zero sentinel for "no dies fit".
        if per_die == 0.0 {
            return 0.0;
        }
        let whole = self.dies_per_wafer_complete_fields(wafer).as_f64();
        ((per_die - whole) / per_die).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maly_units::Centimeters;

    fn die(edge: f64) -> DieDimensions {
        DieDimensions::square(Centimeters::new(edge).unwrap())
    }

    #[test]
    fn single_die_reticle_loses_nothing() {
        let r = Reticle::new(die(1.0), 1, 1);
        let wafer = Wafer::six_inch();
        assert_eq!(
            r.dies_per_wafer_partial_fields(&wafer),
            r.dies_per_wafer_complete_fields(&wafer)
        );
        assert_eq!(r.field_quantization_loss(&wafer), 0.0);
    }

    #[test]
    fn loss_grows_with_field_size() {
        // Not strictly monotone (grid alignment luck varies with the
        // exact field/wafer ratio), but the broad trend must hold.
        let wafer = Wafer::six_inch();
        let loss_at = |size| Reticle::new(die(0.8), size, size).field_quantization_loss(&wafer);
        assert_eq!(loss_at(1), 0.0);
        let small = loss_at(2);
        let large = loss_at(4).max(loss_at(3));
        assert!(small > 0.0, "2×2 fields must lose something: {small}");
        assert!(large > small, "large fields {large} vs small {small}");
        assert!(large > 0.05, "4×4-class fields should lose >5%: {large}");
    }

    #[test]
    fn loss_shrinks_on_bigger_wafers() {
        let r = Reticle::new(die(0.8), 3, 3);
        let six = r.field_quantization_loss(&Wafer::six_inch());
        let eight = r.field_quantization_loss(&Wafer::eight_inch());
        assert!(eight < six, "8-inch {eight} vs 6-inch {six}");
    }

    #[test]
    fn field_outline_is_cols_by_rows() {
        let r = Reticle::new(die(0.5), 4, 2);
        let f = r.field();
        assert!((f.width().value() - 2.0).abs() < 1e-12);
        assert!((f.height().value() - 1.0).abs() < 1e-12);
        assert_eq!(r.dies_per_field(), 8);
    }

    #[test]
    fn oversized_field_yields_zero_complete_fields() {
        let r = Reticle::new(die(4.0), 4, 4); // 16×16 cm field
        let wafer = Wafer::six_inch();
        assert!(r.dies_per_wafer_complete_fields(&wafer).is_zero());
        // Per-die placement still works, so the loss saturates at 1.
        assert!((r.field_quantization_loss(&wafer) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one die")]
    fn zero_dimension_rejected() {
        let _ = Reticle::new(die(1.0), 0, 3);
    }
}
