//! Eq. (4): the row-packing dies-per-wafer formula.
//!
//! The paper computes `N_ch` by slicing the wafer into horizontal rows of
//! height `b` (the die height) starting at the bottom edge, and packing
//! each row with as many dies of width `a` as fit inside the circle:
//!
//! ```text
//!           Floor[2·R_w/b] − 1
//!   N_ch  =       Σ            Floor[ (2/a) · min(R_j, R_{j+1}) ]
//!                j=0
//!
//!   R_j = sqrt( R_w² − (j·b − R_w)² )
//! ```
//!
//! `R_j` is the half-width of the wafer at height `j·b` above the bottom;
//! a row confined between heights `j·b` and `(j+1)·b` is limited by the
//! *narrower* of its two boundary chords, hence the `min`. Dies in a row
//! are centered on the vertical diameter.
//!
//! The printed formula's `(2/(a/b))·Min(R_i, R_{i+1})` is a typesetting
//! corruption of `(2/a)·min(...)` — only the latter is dimensionally a
//! count, and only the latter reproduces Table 3 (see DESIGN.md §1).

use crate::{DieDimensions, Wafer};
use maly_units::DieCount;

/// Number of complete dies per wafer according to eq. (4).
///
/// Uses the wafer's *usable* radius, so an edge exclusion (if configured)
/// is honored; the saw street is ignored, matching the paper's idealized
/// geometry. Returns zero when the die does not fit at all.
///
/// # Examples
///
/// ```
/// use maly_units::{Centimeters, SquareCentimeters};
/// use maly_wafer_geom::{maly, DieDimensions, Wafer};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // 1 cm² die on a 6-inch wafer.
/// let n = maly::dies_per_wafer(
///     &Wafer::six_inch(),
///     DieDimensions::square(Centimeters::new(1.0)?),
/// );
/// assert_eq!(n.value(), 154);
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn dies_per_wafer(wafer: &Wafer, die: DieDimensions) -> DieCount {
    row_sum_kernel(
        wafer.usable_radius().value(),
        die.width().value(),
        die.height().value(),
    )
}

/// The eq. (4) row sum with the chord recurrence hoisted: row `j`'s
/// upper chord `R_{j+1}` is row `j+1`'s lower chord, so one square root
/// per row suffices instead of two. The carried value is the *same*
/// `sqrt` of the *same* argument the two-per-row loop would compute, so
/// the result is bit-identical to the textbook form.
fn row_sum_kernel(r_w: f64, a: f64, b: f64) -> DieCount {
    let rows = (2.0 * r_w / b).floor() as i64;
    if rows <= 0 {
        return DieCount::new(0);
    }

    let half_width_at = |height: f64| -> f64 {
        let d = height - r_w;
        let sq = r_w * r_w - d * d;
        if sq <= 0.0 {
            0.0
        } else {
            sq.sqrt()
        }
    };

    let mut total: u64 = 0;
    let mut r_lo = half_width_at(0.0);
    for j in 0..rows {
        let r_hi = half_width_at((j + 1) as f64 * b);
        let chord = r_lo.min(r_hi);
        let per_row = (2.0 * chord / a).floor();
        if per_row > 0.0 {
            total += per_row as u64;
        }
        r_lo = r_hi;
    }

    DieCount::new(u32::try_from(total).unwrap_or(u32::MAX))
}

/// Batched eq. (4): die counts for a slice of dies on one wafer, as a
/// λ-sweep produces (one die geometry per feature-size sample).
///
/// The wafer's usable radius (and its square) is hoisted once, and one
/// scratch `R_j` chord table is shared across the whole batch: for each
/// die the table of boundary half-widths `R_j = sqrt(R_w² − (j·b −
/// R_w)²)` is filled in branchless four-wide lane blocks
/// ([`maly_lanes`]), then the row sum reads neighbouring chords from
/// the table. Every lane element performs the *same* correctly rounded
/// IEEE operations as the scalar loop (`sqrt(max(sq, 0))` replaces the
/// `sq <= 0` branch with identical bits), so each count stays
/// bit-identical — integer-exact — to the scalar [`dies_per_wafer`],
/// which remains the reference path.
#[must_use]
pub fn dies_per_wafer_batch(wafer: &Wafer, dies: &[DieDimensions]) -> Vec<DieCount> {
    let r_w = wafer.usable_radius().value();
    let mut chords: Vec<f64> = Vec::new();
    dies.iter()
        .map(|die| row_sum_from_table(r_w, die.width().value(), die.height().value(), &mut chords))
        .collect()
}

/// The eq. (4) row sum over a precomputed chord table: row `j` is
/// bounded by chords `R_j` and `R_{j+1}`, so the sum is a single pass
/// of `floor(2·min(R_j, R_{j+1})/a)` over adjacent table entries. The
/// `max(0.0)` keeps the accumulation branchless; a row's count is
/// never negative, so it only absorbs the zero case the scalar loop
/// skips with a branch.
fn row_sum_from_table(r_w: f64, a: f64, b: f64, chords: &mut Vec<f64>) -> DieCount {
    let rows = (2.0 * r_w / b).floor() as i64;
    if rows <= 0 {
        return DieCount::new(0);
    }
    let rows = rows as usize;
    fill_chord_table(r_w, b, rows, chords);
    let mut total: u64 = 0;
    for j in 0..rows {
        let per_row = (2.0 * chords[j].min(chords[j + 1]) / a).floor();
        total += per_row.max(0.0) as u64;
    }
    DieCount::new(u32::try_from(total).unwrap_or(u32::MAX))
}

/// Fills `chords` with the wafer half-width at heights `k·b` for
/// `k = 0..=rows`, in four-wide lane blocks with the odd tail computed
/// by the same elementwise formula. `d·(−d) + R_w²` is bit-identical
/// to the scalar kernel's `R_w² − d²` (negation and subtraction are
/// exact sign manipulations), and lane `sqrt` is the correctly rounded
/// IEEE primitive, so the table matches the scalar recurrence bit for
/// bit.
fn fill_chord_table(r_w: f64, b: f64, rows: usize, chords: &mut Vec<f64>) {
    use maly_lanes as lanes;
    let n = rows + 1;
    chords.clear();
    chords.resize(n, 0.0);
    let r_sq = r_w * r_w;
    let neg_r = lanes::splat(-r_w);
    let mut k = 0usize;
    while k + lanes::WIDTH <= n {
        let h: lanes::Lane = [
            k as f64 * b,
            (k + 1) as f64 * b,
            (k + 2) as f64 * b,
            (k + 3) as f64 * b,
        ];
        let d = lanes::add(h, neg_r);
        let neg_d = lanes::mul(d, lanes::splat(-1.0));
        let sq = lanes::mul_add(d, neg_d, lanes::splat(r_sq));
        let chord = lanes::sqrt(lanes::max(sq, lanes::splat(0.0)));
        chords[k..k + lanes::WIDTH].copy_from_slice(&chord);
        k += lanes::WIDTH;
    }
    while k < n {
        let d = k as f64 * b - r_w;
        let sq = d * -d + r_sq;
        chords[k] = sq.max(0.0).sqrt();
        k += 1;
    }
}

/// Dies per wafer for the better of the two die orientations
/// (as drawn, or rotated by 90°).
///
/// Eq. (4) is not symmetric in `a` and `b` for non-square dies; real
/// steppers choose the better orientation, so optimization studies should
/// prefer this entry point.
#[must_use]
pub fn dies_per_wafer_best_orientation(wafer: &Wafer, die: DieDimensions) -> DieCount {
    let as_drawn = dies_per_wafer(wafer, die);
    let rotated = dies_per_wafer(wafer, die.rotated());
    as_drawn.max(rotated)
}

#[cfg(test)]
mod tests {
    use super::*;
    use maly_units::{Centimeters, SquareCentimeters};

    fn square_die(area_cm2: f64) -> DieDimensions {
        DieDimensions::square_with_area(SquareCentimeters::new(area_cm2).unwrap())
    }

    /// Hand-computed reference for Table 3 row 1 (2.976 cm² die,
    /// R_w = 7.5 cm): rows contribute 5+7+8+8+8+6+4 = 46.
    #[test]
    fn table3_row1_die_count() {
        let n = dies_per_wafer(&Wafer::six_inch(), square_die(2.976));
        assert_eq!(n.value(), 46);
    }

    /// Table 3 row 14: 4.785 cm² die on an 8-inch wafer. The paper's
    /// printed cost of 2.18 µ$ back-solves to N_ch = 52.
    #[test]
    fn table3_row14_die_count() {
        let n = dies_per_wafer(&Wafer::eight_inch(), square_die(4.785216));
        assert_eq!(n.value(), 52);
    }

    #[test]
    fn die_larger_than_wafer_gives_zero() {
        let n = dies_per_wafer(
            &Wafer::six_inch(),
            DieDimensions::square(Centimeters::new(16.0).unwrap()),
        );
        assert!(n.is_zero());
    }

    #[test]
    fn die_exactly_wafer_diameter_gives_zero() {
        // A 15 cm square die on a 7.5 cm-radius wafer: one row, but the
        // chord at its boundary is zero, so nothing fits.
        let n = dies_per_wafer(
            &Wafer::six_inch(),
            DieDimensions::square(Centimeters::new(15.0).unwrap()),
        );
        assert!(n.is_zero());
    }

    #[test]
    fn count_is_monotone_in_die_area() {
        let wafer = Wafer::six_inch();
        let mut last = u32::MAX;
        for area in [0.25, 0.5, 1.0, 2.0, 4.0, 8.0] {
            let n = dies_per_wafer(&wafer, square_die(area)).value();
            assert!(
                n <= last,
                "count must not increase with area: {n} after {last}"
            );
            last = n;
        }
    }

    #[test]
    fn total_die_area_never_exceeds_wafer_area() {
        let wafer = Wafer::six_inch();
        for area in [0.1, 0.33, 1.0, 2.976, 4.785] {
            let n = dies_per_wafer(&wafer, square_die(area)).as_f64();
            assert!(n * area <= wafer.area().value() + 1e-9);
        }
    }

    #[test]
    fn edge_exclusion_reduces_count() {
        let die = square_die(1.0);
        let full = dies_per_wafer(&Wafer::six_inch(), die).value();
        let excluded = dies_per_wafer(
            &Wafer::six_inch().edge_exclusion(Centimeters::new(0.5).unwrap()),
            die,
        )
        .value();
        assert!(excluded < full);
    }

    #[test]
    fn rotation_can_matter_for_rectangles() {
        let wafer = Wafer::six_inch();
        let die = DieDimensions::new(
            Centimeters::new(2.9).unwrap(),
            Centimeters::new(0.9).unwrap(),
        );
        let best = dies_per_wafer_best_orientation(&wafer, die).value();
        let a = dies_per_wafer(&wafer, die).value();
        let b = dies_per_wafer(&wafer, die.rotated()).value();
        assert_eq!(best, a.max(b));
    }

    #[test]
    fn batch_matches_scalar_calls() {
        let wafer = Wafer::six_inch();
        // A λ-sweep-shaped batch: square dies whose side scales like λ.
        let dies: Vec<DieDimensions> = (1..60)
            .map(|i| DieDimensions::square(Centimeters::new(0.05 * f64::from(i)).unwrap()))
            .collect();
        let batch = dies_per_wafer_batch(&wafer, &dies);
        assert_eq!(batch.len(), dies.len());
        for (die, got) in dies.iter().zip(&batch) {
            assert_eq!(*got, dies_per_wafer(&wafer, *die));
        }
    }

    /// Batch vs scalar over randomized rectangular dies on several
    /// wafers: the lane chord-table path must stay integer-exact,
    /// including odd row counts that exercise the non-multiple-of-four
    /// table tail.
    #[test]
    fn batch_is_integer_exact_vs_scalar_randomized() {
        let mut state: u64 = 0x853c_49e6_748f_ea9b;
        let mut uniform = |lo: f64, hi: f64| {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            let u = (state.wrapping_mul(0x2545_f491_4f6c_dd1d) >> 11) as f64 / (1u64 << 53) as f64;
            lo + u * (hi - lo)
        };
        let wafers = [
            Wafer::six_inch(),
            Wafer::eight_inch(),
            Wafer::six_inch().edge_exclusion(Centimeters::new(0.3).unwrap()),
        ];
        for wafer in &wafers {
            let dies: Vec<DieDimensions> = (0..500)
                .map(|_| {
                    DieDimensions::new(
                        Centimeters::new(uniform(0.05, 6.0)).unwrap(),
                        Centimeters::new(uniform(0.05, 6.0)).unwrap(),
                    )
                })
                .collect();
            let batch = dies_per_wafer_batch(wafer, &dies);
            for (die, got) in dies.iter().zip(&batch) {
                assert_eq!(*got, dies_per_wafer(wafer, *die), "die {die:?}");
            }
        }
    }

    #[test]
    fn batch_of_nothing_is_empty() {
        assert!(dies_per_wafer_batch(&Wafer::six_inch(), &[]).is_empty());
    }

    #[test]
    fn bigger_wafer_holds_more_dies() {
        let die = square_die(1.0);
        let six = dies_per_wafer(&Wafer::six_inch(), die).value();
        let eight = dies_per_wafer(&Wafer::eight_inch(), die).value();
        assert!(eight > six);
    }
}
