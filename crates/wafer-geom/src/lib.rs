//! Dies-per-wafer geometry models.
//!
//! `N_ch` — the number of complete die sites on a wafer — is one of the four
//! factors of the paper's transistor cost model (eq. 1). This crate provides
//! three independent ways to obtain it:
//!
//! * [`maly::dies_per_wafer`] — the row-packing formula the paper cites
//!   (eq. 4, after Ferris-Prabhu \[20\]),
//! * [`raster::RasterPlacement`] — an exact grid-placement simulator with
//!   edge exclusion, saw-street (kerf) width and placement-offset
//!   optimization, which also produces [`WaferMap`]s consumed by the yield
//!   Monte Carlo and the wafer-map renderer,
//! * [`approx`] — classical closed-form estimates (gross area ratio and the
//!   edge-corrected variant) useful for sanity bounds and quick sizing,
//! * [`cache`] — a process-global memo in front of eq. (4), keyed on
//!   quantized wafer/die dimensions; the sweep engines route through it.
//!
//! # Examples
//!
//! ```
//! use maly_units::Centimeters;
//! use maly_wafer_geom::{maly, DieDimensions, Wafer};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Table 3 row 1: 2.976 cm² square die on a 6-inch (R = 7.5 cm) wafer.
//! let wafer = Wafer::with_radius(Centimeters::new(7.5)?);
//! let die = DieDimensions::square_with_area(maly_units::SquareCentimeters::new(2.976)?);
//! let n_ch = maly::dies_per_wafer(&wafer, die);
//! assert_eq!(n_ch.value(), 46);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod approx;
pub mod cache;
mod die;
pub mod maly;
pub mod raster;
pub mod reticle;
mod wafer;
mod wafer_map;

pub use die::DieDimensions;
pub use wafer::Wafer;
pub use wafer_map::{DieSite, WaferMap};

#[cfg(test)]
mod tests {
    use super::*;
    use maly_units::{Centimeters, SquareCentimeters};

    /// The three methods must roughly agree for a moderate die.
    #[test]
    fn methods_agree_within_tolerance() {
        let wafer = Wafer::with_radius(Centimeters::new(7.5).unwrap());
        let die = DieDimensions::square_with_area(SquareCentimeters::new(1.0).unwrap());
        let maly = maly::dies_per_wafer(&wafer, die).as_f64();
        let raster = raster::RasterPlacement::default()
            .place(&wafer, die)
            .count()
            .as_f64();
        let simple = approx::gross_estimate(&wafer, die);
        let corrected = approx::edge_corrected_estimate(&wafer, die);
        // Eq. (4) and the edge-corrected estimate should sit close to the
        // exact raster placement; the gross area ratio is a known
        // overestimate (it ignores edge losses entirely).
        for v in [maly, corrected] {
            assert!(
                (v - raster).abs() / raster < 0.12,
                "estimate {v} too far from raster {raster}"
            );
        }
        assert!(simple >= raster, "gross estimate must be an upper bound");
        assert!((simple - raster) / raster < 0.3);
    }
}
