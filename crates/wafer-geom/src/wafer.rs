//! Wafer description.

use maly_units::{Centimeters, SquareCentimeters};

/// A circular silicon wafer.
///
/// The paper's scenarios use 6-inch (`R_w = 7.5 cm`) and 8-inch
/// (`R_w = 10 cm`) wafers. An optional *edge exclusion* ring (unusable
/// outer margin) and *saw street* (kerf between adjacent dies) refine the
/// exact raster placement; both default to zero, which is the convention
/// eq. (4) assumes.
///
/// # Examples
///
/// ```
/// use maly_units::Centimeters;
/// use maly_wafer_geom::Wafer;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let wafer = Wafer::with_radius(Centimeters::new(7.5)?)
///     .edge_exclusion(Centimeters::new(0.3)?)
///     .saw_street(Centimeters::new(0.01)?);
/// assert!((wafer.usable_radius().value() - 7.2).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Wafer {
    radius: Centimeters,
    edge_exclusion_cm: f64,
    saw_street_cm: f64,
    /// Distance from the wafer center to the primary flat's chord (cm);
    /// `>= radius` means no flat.
    flat_distance_cm: f64,
}

impl Wafer {
    /// Creates a wafer of the given radius with no edge exclusion and no
    /// saw street — the idealization used by eq. (4) and all paper tables.
    #[must_use]
    pub fn with_radius(radius: Centimeters) -> Self {
        Self {
            radius,
            edge_exclusion_cm: 0.0,
            saw_street_cm: 0.0,
            flat_distance_cm: f64::INFINITY,
        }
    }

    /// A 6-inch wafer (`R_w = 7.5 cm`), the paper's default.
    #[must_use]
    pub fn six_inch() -> Self {
        Self::with_radius(Centimeters::new(7.5).expect("7.5 is positive"))
    }

    /// An 8-inch wafer (`R_w = 10 cm`), used by Table 3 row 14.
    #[must_use]
    pub fn eight_inch() -> Self {
        Self::with_radius(Centimeters::new(10.0).expect("10 is positive"))
    }

    /// Sets the edge-exclusion ring width (returns the modified wafer).
    ///
    /// # Panics
    ///
    /// Panics if the exclusion is at least the wafer radius (no usable
    /// area would remain).
    #[must_use]
    pub fn edge_exclusion(mut self, width: Centimeters) -> Self {
        assert!(
            width.value() < self.radius.value(),
            "edge exclusion {width} must be smaller than the wafer radius {}",
            self.radius
        );
        self.edge_exclusion_cm = width.value();
        self
    }

    /// Sets the saw-street (kerf) width between adjacent dies.
    #[must_use]
    pub fn saw_street(mut self, width: Centimeters) -> Self {
        self.saw_street_cm = width.value();
        self
    }

    /// Physical wafer radius `R_w`.
    #[must_use]
    pub fn radius(&self) -> Centimeters {
        self.radius
    }

    /// Radius of the region usable for complete dies
    /// (`R_w` minus the edge exclusion).
    #[must_use]
    pub fn usable_radius(&self) -> Centimeters {
        Centimeters::new(self.radius.value() - self.edge_exclusion_cm)
            .expect("edge exclusion validated smaller than radius")
    }

    /// Saw-street width in centimeters (zero if unset).
    #[must_use]
    // audit:allow(bare-f64): zero means "no saw street", which the
    // positive-only Centimeters newtype cannot represent.
    pub fn saw_street_width_cm(&self) -> f64 {
        self.saw_street_cm
    }

    /// Adds a primary orientation flat: the chord at `distance` from the
    /// wafer center (on the −Y side) is ground away. Pre-200 mm wafers
    /// carried such flats; they cost die sites the idealized circle
    /// keeps. Only the exact raster placement honors the flat.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < distance < radius`.
    #[must_use]
    pub fn primary_flat(mut self, distance: Centimeters) -> Self {
        assert!(
            distance.value() < self.radius.value(),
            "flat distance {distance} must be inside the wafer radius {}",
            self.radius
        );
        self.flat_distance_cm = distance.value();
        self
    }

    /// Distance from the center to the flat chord, if a flat is set.
    #[must_use]
    pub fn flat_distance(&self) -> Option<Centimeters> {
        (self.flat_distance_cm < self.radius.value())
            .then(|| Centimeters::new(self.flat_distance_cm).expect("validated positive"))
    }

    /// True when the point `(x, y)` (wafer-centered cm) lies on usable
    /// silicon: inside the usable radius and above the flat chord.
    #[must_use]
    pub fn contains(&self, x: f64, y: f64) -> bool {
        let r = self.usable_radius().value();
        x * x + y * y <= r * r && y >= -self.flat_distance_cm
    }

    /// Total wafer area `A_w = π R_w²` (eq. 8 denominator).
    #[must_use]
    pub fn area(&self) -> SquareCentimeters {
        SquareCentimeters::new(std::f64::consts::PI * self.radius.value().powi(2))
            .expect("positive radius gives positive area")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_inch_area_matches_paper() {
        // A_w = π·7.5² ≈ 176.7 cm², the denominator used by Figs 6–7.
        let w = Wafer::six_inch();
        assert!((w.area().value() - 176.714).abs() < 1e-2);
    }

    #[test]
    fn usable_radius_subtracts_exclusion() {
        let w = Wafer::six_inch().edge_exclusion(Centimeters::new(0.5).unwrap());
        assert!((w.usable_radius().value() - 7.0).abs() < 1e-12);
        assert_eq!(w.radius().value(), 7.5);
    }

    #[test]
    #[should_panic(expected = "edge exclusion")]
    fn exclusion_must_leave_usable_area() {
        let _ = Wafer::six_inch().edge_exclusion(Centimeters::new(7.5).unwrap());
    }

    #[test]
    fn eight_inch_radius() {
        assert_eq!(Wafer::eight_inch().radius().value(), 10.0);
    }

    #[test]
    fn saw_street_recorded() {
        let w = Wafer::six_inch().saw_street(Centimeters::new(0.02).unwrap());
        assert_eq!(w.saw_street_width_cm(), 0.02);
    }

    #[test]
    fn flat_removes_the_bottom_chord() {
        let w = Wafer::six_inch().primary_flat(Centimeters::new(7.0).unwrap());
        assert_eq!(w.flat_distance().unwrap().value(), 7.0);
        assert!(w.contains(0.0, 0.0));
        assert!(w.contains(0.0, -6.9));
        assert!(!w.contains(0.0, -7.1)); // below the flat
        assert!(!w.contains(7.6, 0.0)); // outside the circle
    }

    #[test]
    fn no_flat_means_full_circle() {
        let w = Wafer::six_inch();
        assert!(w.flat_distance().is_none());
        assert!(w.contains(0.0, -7.4));
    }

    #[test]
    #[should_panic(expected = "flat distance")]
    fn flat_outside_radius_rejected() {
        let _ = Wafer::six_inch().primary_flat(Centimeters::new(8.0).unwrap());
    }
}
