//! Property-based tests for dies-per-wafer models.

use maly_units::{Centimeters, SquareCentimeters};
use maly_wafer_geom::{approx, maly, raster::RasterPlacement, DieDimensions, Wafer};
use proptest::prelude::*;

fn wafer_radius() -> impl Strategy<Value = f64> {
    5.0f64..15.0
}

fn die_edge() -> impl Strategy<Value = f64> {
    0.3f64..3.0
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Eq. (4) never packs more silicon than the wafer holds.
    #[test]
    fn eq4_respects_area_bound(r in wafer_radius(), a in die_edge(), b in die_edge()) {
        let wafer = Wafer::with_radius(Centimeters::new(r).unwrap());
        let die = DieDimensions::new(Centimeters::new(a).unwrap(), Centimeters::new(b).unwrap());
        let n = maly::dies_per_wafer(&wafer, die).as_f64();
        prop_assert!(n * die.area().value() <= wafer.area().value() + 1e-9);
    }

    /// Raster placement never packs more silicon than the wafer holds and
    /// all dies fit within the usable radius.
    #[test]
    fn raster_respects_geometry(r in wafer_radius(), a in die_edge(), b in die_edge()) {
        let wafer = Wafer::with_radius(Centimeters::new(r).unwrap());
        let die = DieDimensions::new(Centimeters::new(a).unwrap(), Centimeters::new(b).unwrap());
        let map = RasterPlacement::new(4).place(&wafer, die);
        prop_assert!(map.count().as_f64() * die.area().value() <= wafer.area().value() + 1e-9);
        let (hw, hh) = (die.width().value() / 2.0, die.height().value() / 2.0);
        for s in map.sites() {
            // Exact criterion: the farthest corner lies inside the circle.
            let far = (s.center_x.abs() + hw).hypot(s.center_y.abs() + hh);
            prop_assert!(far <= r + 1e-9);
        }
    }

    /// Growing the wafer never loses dies (eq. 4).
    #[test]
    fn eq4_monotone_in_wafer_radius(r in wafer_radius(), extra in 0.1f64..5.0, e in die_edge()) {
        let die = DieDimensions::square(Centimeters::new(e).unwrap());
        let small = maly::dies_per_wafer(&Wafer::with_radius(Centimeters::new(r).unwrap()), die);
        let large =
            maly::dies_per_wafer(&Wafer::with_radius(Centimeters::new(r + extra).unwrap()), die);
        prop_assert!(large >= small);
    }

    /// Shrinking a square die never loses dies (eq. 4 on squares).
    #[test]
    fn eq4_monotone_in_square_die(e in 0.4f64..3.0, shrink in 0.5f64..0.99) {
        let wafer = Wafer::six_inch();
        let big = DieDimensions::square(Centimeters::new(e).unwrap());
        let small = DieDimensions::square(Centimeters::new(e * shrink).unwrap());
        prop_assert!(
            maly::dies_per_wafer(&wafer, small) >= maly::dies_per_wafer(&wafer, big)
        );
    }

    /// The gross area estimate upper-bounds both exact methods.
    #[test]
    fn gross_estimate_is_upper_bound(r in wafer_radius(), e in die_edge()) {
        let wafer = Wafer::with_radius(Centimeters::new(r).unwrap());
        let die = DieDimensions::square(Centimeters::new(e).unwrap());
        let gross = approx::gross_estimate(&wafer, die);
        prop_assert!(maly::dies_per_wafer(&wafer, die).as_f64() <= gross + 1e-9);
        let raster = RasterPlacement::new(4).place(&wafer, die).count().as_f64();
        prop_assert!(raster <= gross + 1e-9);
    }

    /// For dies small relative to the wafer, eq. (4), the raster optimum and
    /// the edge-corrected estimate agree within 12%.
    #[test]
    fn methods_converge_for_small_dies(area in 0.05f64..0.6) {
        let wafer = Wafer::six_inch();
        let die = DieDimensions::square_with_area(SquareCentimeters::new(area).unwrap());
        let eq4 = maly::dies_per_wafer(&wafer, die).as_f64();
        let raster = RasterPlacement::new(4).place(&wafer, die).count().as_f64();
        let est = approx::edge_corrected_estimate(&wafer, die);
        prop_assert!((eq4 - raster).abs() / raster < 0.12, "eq4 {} vs raster {}", eq4, raster);
        prop_assert!((est - raster).abs() / raster < 0.12, "est {} vs raster {}", est, raster);
    }

    /// Best-orientation packing is at least as good as either orientation.
    #[test]
    fn best_orientation_dominates(a in die_edge(), b in die_edge()) {
        let wafer = Wafer::six_inch();
        let die = DieDimensions::new(Centimeters::new(a).unwrap(), Centimeters::new(b).unwrap());
        let best = maly::dies_per_wafer_best_orientation(&wafer, die);
        prop_assert!(best >= maly::dies_per_wafer(&wafer, die));
        prop_assert!(best >= maly::dies_per_wafer(&wafer, die.rotated()));
    }
}
