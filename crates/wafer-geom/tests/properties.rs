//! Property-style tests for dies-per-wafer models.
//!
//! The workspace builds offline with no external crates, so instead of
//! proptest strategies these properties are checked over deterministic
//! pseudo-random samples drawn from a tiny SplitMix64 generator.

use maly_units::{Centimeters, SquareCentimeters};
use maly_wafer_geom::{approx, maly, raster::RasterPlacement, DieDimensions, Wafer};

/// Deterministic uniform sampler (SplitMix64).
struct Sampler(u64);

impl Sampler {
    fn new(seed: u64) -> Self {
        Self(seed)
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + (hi - lo) * u
    }
}

const CASES: usize = 64;

fn cm(v: f64) -> Centimeters {
    Centimeters::new(v).unwrap()
}

/// Eq. (4) never packs more silicon than the wafer holds.
#[test]
fn eq4_respects_area_bound() {
    let mut s = Sampler::new(1);
    for _ in 0..CASES {
        let r = s.uniform(5.0, 15.0);
        let (a, b) = (s.uniform(0.3, 3.0), s.uniform(0.3, 3.0));
        let wafer = Wafer::with_radius(cm(r));
        let die = DieDimensions::new(cm(a), cm(b));
        let n = maly::dies_per_wafer(&wafer, die).as_f64();
        assert!(n * die.area().value() <= wafer.area().value() + 1e-9);
    }
}

/// Raster placement never packs more silicon than the wafer holds and
/// all dies fit within the usable radius.
#[test]
fn raster_respects_geometry() {
    let mut s = Sampler::new(2);
    for _ in 0..CASES / 4 {
        let r = s.uniform(5.0, 15.0);
        let (a, b) = (s.uniform(0.3, 3.0), s.uniform(0.3, 3.0));
        let wafer = Wafer::with_radius(cm(r));
        let die = DieDimensions::new(cm(a), cm(b));
        let map = RasterPlacement::new(4).place(&wafer, die);
        assert!(map.count().as_f64() * die.area().value() <= wafer.area().value() + 1e-9);
        let (hw, hh) = (die.width().value() / 2.0, die.height().value() / 2.0);
        for site in map.sites() {
            // Exact criterion: the farthest corner lies inside the circle.
            let far = (site.center_x.abs() + hw).hypot(site.center_y.abs() + hh);
            assert!(far <= r + 1e-9);
        }
    }
}

/// Growing the wafer never loses dies (eq. 4).
#[test]
fn eq4_monotone_in_wafer_radius() {
    let mut s = Sampler::new(3);
    for _ in 0..CASES {
        let r = s.uniform(5.0, 15.0);
        let extra = s.uniform(0.1, 5.0);
        let die = DieDimensions::square(cm(s.uniform(0.3, 3.0)));
        let small = maly::dies_per_wafer(&Wafer::with_radius(cm(r)), die);
        let large = maly::dies_per_wafer(&Wafer::with_radius(cm(r + extra)), die);
        assert!(large >= small);
    }
}

/// Shrinking a square die never loses dies (eq. 4 on squares).
#[test]
fn eq4_monotone_in_square_die() {
    let mut s = Sampler::new(4);
    for _ in 0..CASES {
        let e = s.uniform(0.4, 3.0);
        let shrink = s.uniform(0.5, 0.99);
        let wafer = Wafer::six_inch();
        let big = DieDimensions::square(cm(e));
        let small = DieDimensions::square(cm(e * shrink));
        assert!(maly::dies_per_wafer(&wafer, small) >= maly::dies_per_wafer(&wafer, big));
    }
}

/// The gross area estimate upper-bounds both exact methods.
#[test]
fn gross_estimate_is_upper_bound() {
    let mut s = Sampler::new(5);
    for _ in 0..CASES / 2 {
        let wafer = Wafer::with_radius(cm(s.uniform(5.0, 15.0)));
        let die = DieDimensions::square(cm(s.uniform(0.3, 3.0)));
        let gross = approx::gross_estimate(&wafer, die);
        assert!(maly::dies_per_wafer(&wafer, die).as_f64() <= gross + 1e-9);
        let raster = RasterPlacement::new(4).place(&wafer, die).count().as_f64();
        assert!(raster <= gross + 1e-9);
    }
}

/// For dies small relative to the wafer, eq. (4), the raster optimum and
/// the edge-corrected estimate agree within 12%.
#[test]
fn methods_converge_for_small_dies() {
    let mut s = Sampler::new(6);
    for _ in 0..CASES / 2 {
        let area = s.uniform(0.05, 0.6);
        let wafer = Wafer::six_inch();
        let die = DieDimensions::square_with_area(SquareCentimeters::new(area).unwrap());
        let eq4 = maly::dies_per_wafer(&wafer, die).as_f64();
        let raster = RasterPlacement::new(4).place(&wafer, die).count().as_f64();
        let est = approx::edge_corrected_estimate(&wafer, die);
        assert!(
            (eq4 - raster).abs() / raster < 0.12,
            "eq4 {eq4} vs raster {raster}"
        );
        assert!(
            (est - raster).abs() / raster < 0.12,
            "est {est} vs raster {raster}"
        );
    }
}

/// Best-orientation packing is at least as good as either orientation.
#[test]
fn best_orientation_dominates() {
    let mut s = Sampler::new(7);
    for _ in 0..CASES {
        let (a, b) = (s.uniform(0.3, 3.0), s.uniform(0.3, 3.0));
        let wafer = Wafer::six_inch();
        let die = DieDimensions::new(cm(a), cm(b));
        let best = maly::dies_per_wafer_best_orientation(&wafer, die);
        assert!(best >= maly::dies_per_wafer(&wafer, die));
        assert!(best >= maly::dies_per_wafer(&wafer, die.rotated()));
    }
}
