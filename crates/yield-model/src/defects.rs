//! Defect size distributions (Fig. 5).
//!
//! A spot defect — "a contamination-generated spot (disk) of extra
//! conducting, semiconducting or insulating material" — has a random
//! radius `R`. The widely accepted distribution (Fig. 5) rises for small
//! radii, peaks at some `R₀`, and falls off as `1/R^p` above it:
//!
//! ```text
//!            ⎧ c · (R/R₀)^q          0 < R ≤ R₀   (q = 1 in the classic form)
//!   f(R)  =  ⎨
//!            ⎩ c · (R₀/R)^p          R > R₀
//! ```
//!
//! `p` was "found experimentally to be in the range 4–5". The key
//! consequence for the paper: *a decrease in the minimum feature size
//! rapidly increases the number of defects which may cause faults*,
//! because the fatal-size threshold slides down the steep `1/R^p` tail —
//! this is what eq. (7) encodes as `D/λ^p`.

use maly_units::{Microns, UnitError};

/// The piecewise power-law defect size probability density of Fig. 5.
///
/// # Examples
///
/// ```
/// use maly_units::Microns;
/// use maly_yield_model::defects::DefectSizeDistribution;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let dist = DefectSizeDistribution::new(Microns::new(0.5)?, 1.0, 4.07)?;
/// // The density peaks at R0.
/// assert!(dist.pdf(Microns::new(0.5)?) > dist.pdf(Microns::new(0.25)?));
/// assert!(dist.pdf(Microns::new(0.5)?) > dist.pdf(Microns::new(1.0)?));
/// // Halving the fatal threshold recruits many more defects.
/// let f1 = dist.fraction_larger_than(Microns::new(1.0)?);
/// let f2 = dist.fraction_larger_than(Microns::new(0.5)?);
/// assert!(f2 > 5.0 * f1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DefectSizeDistribution {
    /// Peak radius `R₀` (µm).
    r0: f64,
    /// Rising exponent `q` (`f ∝ R^q` below `R₀`).
    q: f64,
    /// Falling exponent `p` (`f ∝ 1/R^p` above `R₀`).
    p: f64,
    /// Normalization constant: the peak density `f(R₀)`.
    peak: f64,
}

impl DefectSizeDistribution {
    /// Creates a distribution peaking at `r0` with rising exponent `q`
    /// and falling exponent `p`.
    ///
    /// # Errors
    ///
    /// Returns an error unless `q > 0` and `p > 1` (the tail must be
    /// integrable) and both are finite.
    pub fn new(r0: Microns, q: f64, p: f64) -> Result<Self, UnitError> {
        if !q.is_finite() || q <= 0.0 {
            return Err(UnitError::NotPositive {
                quantity: "rising exponent q",
                value: q,
            });
        }
        if !p.is_finite() || p <= 1.0 {
            return Err(UnitError::OutOfRange {
                quantity: "falling exponent p",
                value: p,
                min: 1.0,
                max: f64::INFINITY,
            });
        }
        let r0 = r0.value();
        // ∫0^R0 (R/R0)^q dR = R0/(q+1);  ∫R0^∞ (R0/R)^p dR = R0/(p−1).
        // peak · (R0/(q+1) + R0/(p−1)) = 1.
        let peak = 1.0 / (r0 / (q + 1.0) + r0 / (p - 1.0));
        Ok(Self { r0, q, p, peak })
    }

    /// The classic form used in yield literature: `q = 1` and the
    /// experimentally observed `p` (4–5 per the paper; Fig. 8 uses 4.07).
    ///
    /// # Errors
    ///
    /// Propagates the validation of [`Self::new`].
    pub fn classic(r0: Microns, p: f64) -> Result<Self, UnitError> {
        Self::new(r0, 1.0, p)
    }

    /// Peak radius `R₀`.
    #[must_use]
    pub fn peak_radius(&self) -> Microns {
        Microns::clamped(self.r0)
    }

    /// Falling exponent `p`.
    #[must_use]
    pub fn falling_exponent(&self) -> f64 {
        self.p
    }

    /// Rising exponent `q`.
    #[must_use]
    pub fn rising_exponent(&self) -> f64 {
        self.q
    }

    /// Probability density at radius `r`.
    #[must_use]
    pub fn pdf(&self, r: Microns) -> f64 {
        let r = r.value();
        if r <= self.r0 {
            self.peak * (r / self.r0).powf(self.q)
        } else {
            self.peak * (self.r0 / r).powf(self.p)
        }
    }

    /// Cumulative distribution `P(R ≤ r)`.
    #[must_use]
    pub fn cdf(&self, r: Microns) -> f64 {
        let r = r.value();
        if r <= self.r0 {
            // ∫0^r peak·(x/R0)^q dx = peak·r^{q+1}/((q+1)·R0^q)
            self.peak * r.powf(self.q + 1.0) / ((self.q + 1.0) * self.r0.powf(self.q))
        } else {
            1.0 - self.fraction_larger(r)
        }
    }

    /// Fraction of defects with radius strictly larger than `r`
    /// (the survival function).
    ///
    /// For `r ≥ R₀` this is `peak · R₀^p · r^{1−p} / (p−1)` — the steep
    /// tail that makes feature-size shrinks so dangerous.
    #[must_use]
    pub fn fraction_larger_than(&self, r: Microns) -> f64 {
        self.fraction_larger(r.value())
    }

    fn fraction_larger(&self, r: f64) -> f64 {
        if r <= self.r0 {
            let below = self.peak * r.powf(self.q + 1.0) / ((self.q + 1.0) * self.r0.powf(self.q));
            1.0 - below
        } else {
            self.peak * self.r0.powf(self.p) * r.powf(1.0 - self.p) / (self.p - 1.0)
        }
    }

    /// Mean defect radius, when it exists (`p > 2`).
    #[must_use]
    pub fn mean_radius(&self) -> Option<Microns> {
        if self.p <= 2.0 {
            return None;
        }
        // ∫0^R0 R·peak·(R/R0)^q dR = peak·R0²/(q+2)
        // ∫R0^∞ R·peak·(R0/R)^p dR = peak·R0²/(p−2)
        let mean = self.peak * self.r0 * self.r0 * (1.0 / (self.q + 2.0) + 1.0 / (self.p - 2.0));
        Microns::new(mean).ok()
    }

    /// Draws a random radius by inverse-transform sampling.
    #[must_use]
    pub fn sample<R: crate::prng::UniformSource + ?Sized>(&self, rng: &mut R) -> Microns {
        let u: f64 = rng.next_f64();
        let p_below = self.peak * self.r0 / (self.q + 1.0);
        let r = if u < p_below {
            // Invert the body: u = peak·r^{q+1}/((q+1)·R0^q)
            (u * (self.q + 1.0) * self.r0.powf(self.q) / self.peak).powf(1.0 / (self.q + 1.0))
        } else {
            // Invert the tail survival: 1−u = peak·R0^p·r^{1−p}/(p−1)
            let surv = 1.0 - u;
            (surv * (self.p - 1.0) / (self.peak * self.r0.powf(self.p))).powf(1.0 / (1.0 - self.p))
        };
        // Guard the r = 0 corner (u = 0) — the unit type requires positive.
        Microns::clamped(r.max(1e-12))
    }

    /// Ratio of fatal-defect populations when the fatal threshold scales
    /// with feature size: `fraction(>c·λ₂) / fraction(>c·λ₁)`.
    ///
    /// For thresholds in the tail this approaches `(λ₁/λ₂)^{p−1}`, the
    /// defect-recruitment factor behind eq. (7).
    #[must_use]
    pub fn shrink_recruitment(&self, lambda_from: Microns, lambda_to: Microns, c: f64) -> f64 {
        let f_from = self.fraction_larger(c * lambda_from.value());
        let f_to = self.fraction_larger(c * lambda_to.value());
        f_to / f_from
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prng::Xoshiro256PlusPlus;

    fn um(v: f64) -> Microns {
        Microns::new(v).unwrap()
    }

    fn classic() -> DefectSizeDistribution {
        DefectSizeDistribution::classic(um(0.5), 4.07).unwrap()
    }

    #[test]
    fn pdf_integrates_to_one() {
        let d = classic();
        // Trapezoidal integration over a generous range.
        let mut sum = 0.0;
        let n = 200_000;
        let hi = 100.0;
        let dx = hi / n as f64;
        for i in 0..n {
            let x = (i as f64 + 0.5) * dx;
            sum += d.pdf(um(x)) * dx;
        }
        assert!((sum - 1.0).abs() < 1e-3, "integral {sum}");
    }

    #[test]
    fn cdf_is_monotone_and_matches_survival() {
        let d = classic();
        let mut last = 0.0;
        for r in [0.1, 0.3, 0.5, 0.8, 1.5, 3.0, 10.0] {
            let c = d.cdf(um(r));
            assert!(c >= last, "cdf must be monotone");
            assert!((c + d.fraction_larger_than(um(r)) - 1.0).abs() < 1e-12);
            last = c;
        }
    }

    #[test]
    fn peak_is_at_r0() {
        let d = classic();
        let peak = d.pdf(um(0.5));
        for r in [0.1, 0.25, 0.45, 0.55, 1.0, 2.0] {
            assert!(d.pdf(um(r)) <= peak + 1e-12);
        }
    }

    #[test]
    fn tail_follows_power_law() {
        let d = classic();
        // f(2R)/f(R) = 2^{−p} in the tail.
        let ratio = d.pdf(um(4.0)) / d.pdf(um(2.0));
        assert!((ratio - 2.0f64.powf(-4.07)).abs() < 1e-9);
    }

    #[test]
    fn shrink_recruitment_matches_tail_exponent() {
        let d = classic();
        // Thresholds deep in the tail: ratio ≈ (λ1/λ2)^{p−1} = 2^{3.07}.
        let ratio = d.shrink_recruitment(um(10.0), um(5.0), 1.0);
        assert!((ratio - 2.0f64.powf(3.07)).abs() / ratio < 1e-6);
    }

    #[test]
    fn mean_radius_exists_for_p_above_2() {
        let d = classic();
        let mean = d.mean_radius().unwrap();
        assert!(mean.value() > 0.2 && mean.value() < 1.0);
        let heavy = DefectSizeDistribution::classic(um(0.5), 1.9).unwrap();
        assert!(heavy.mean_radius().is_none());
    }

    #[test]
    fn sampling_matches_cdf() {
        let d = classic();
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(42);
        let n = 50_000;
        let mut below_r0 = 0usize;
        let mut below_1um = 0usize;
        let mut sum = 0.0;
        for _ in 0..n {
            let r = d.sample(&mut rng);
            if r.value() <= 0.5 {
                below_r0 += 1;
            }
            if r.value() <= 1.0 {
                below_1um += 1;
            }
            sum += r.value();
        }
        let frac_r0 = below_r0 as f64 / n as f64;
        let frac_1 = below_1um as f64 / n as f64;
        assert!((frac_r0 - d.cdf(um(0.5))).abs() < 0.01);
        assert!((frac_1 - d.cdf(um(1.0))).abs() < 0.01);
        let mean = sum / n as f64;
        assert!((mean - d.mean_radius().unwrap().value()).abs() < 0.02);
    }

    #[test]
    fn constructor_validates_exponents() {
        assert!(DefectSizeDistribution::new(um(0.5), 0.0, 4.0).is_err());
        assert!(DefectSizeDistribution::new(um(0.5), 1.0, 1.0).is_err());
        assert!(DefectSizeDistribution::new(um(0.5), 1.0, f64::NAN).is_err());
    }

    #[test]
    fn accessors_expose_parameters() {
        let d = classic();
        assert_eq!(d.peak_radius().value(), 0.5);
        assert_eq!(d.falling_exponent(), 4.07);
        assert_eq!(d.rising_exponent(), 1.0);
    }
}
