//! Critical-area estimation for a parallel-line layout abstraction.
//!
//! "Whether a defect causes a fault or not depends on its size and
//! location" (Sec. III.C). The *critical area* `A_c(R)` of a layout for
//! defects of radius `R` is the area of the locus of defect centers that
//! produce a fault; the average over the defect size distribution gives
//! the effective kill probability that connects physical defect densities
//! to the `D₀` of eq. (6).
//!
//! Full extraction needs real mask data; the classical teaching model —
//! an array of parallel wires of width `w` and spacing `s` — admits exact
//! closed forms and captures the feature-size scaling that the paper's
//! eq. (7) relies on. Both the closed forms and a Monte Carlo estimator
//! over the same geometry are provided; they agree, which is the point of
//! having both.

use maly_units::{Microns, SquareMicrons};

use crate::defects::DefectSizeDistribution;

/// An array of parallel wires: width `w`, edge-to-edge spacing `s`,
/// over a rectangular region `length × height` (µm).
///
/// Wires run along the region length; the pitch `w + s` repeats across
/// the height. Shorts bridge adjacent wires (extra material); opens sever
/// one wire (missing material).
///
/// # Examples
///
/// ```
/// use maly_units::Microns;
/// use maly_yield_model::critical_area::ParallelLines;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let layout = ParallelLines::new(
///     Microns::new(0.8)?,  // wire width
///     Microns::new(0.8)?,  // spacing
///     Microns::new(1000.0)?, // region length
///     Microns::new(1000.0)?, // region height
/// );
/// // A defect smaller than the spacing cannot short anything.
/// assert_eq!(layout.short_critical_area(Microns::new(0.3)?).map(|a| a.value()), None);
/// // A large defect has positive short critical area.
/// assert!(layout.short_critical_area(Microns::new(1.2)?).is_some());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParallelLines {
    width: Microns,
    spacing: Microns,
    length: Microns,
    height: Microns,
}

impl ParallelLines {
    /// Creates the layout description.
    #[must_use]
    pub fn new(width: Microns, spacing: Microns, length: Microns, height: Microns) -> Self {
        Self {
            width,
            spacing,
            length,
            height,
        }
    }

    /// A layout drawn at minimum rules for feature size λ: wires of width
    /// λ at spacing λ, filling a square region of edge `region`.
    #[must_use]
    pub fn at_minimum_rules(lambda: Microns, region: Microns) -> Self {
        Self::new(lambda, lambda, region, region)
    }

    /// Wire width.
    #[must_use]
    pub fn width(&self) -> Microns {
        self.width
    }

    /// Wire spacing.
    #[must_use]
    pub fn spacing(&self) -> Microns {
        self.spacing
    }

    /// Number of complete wires in the region.
    #[must_use]
    pub fn wire_count(&self) -> u32 {
        let pitch = self.width.value() + self.spacing.value();
        (self.height.value() / pitch).floor() as u32
    }

    /// Region area.
    #[must_use]
    pub fn region_area(&self) -> SquareMicrons {
        self.length * self.height
    }

    /// Critical area for *shorts* caused by an extra-material disk of
    /// radius `r` (diameter `2r`).
    ///
    /// A disk shorts two adjacent wires when its diameter spans the
    /// spacing `s`; the band of fatal center positions per gap has width
    /// `2r − s`, times the wire length, times the number of gaps.
    /// Returns `None` when `2r ≤ s` (no short possible).
    #[must_use]
    pub fn short_critical_area(&self, r: Microns) -> Option<SquareMicrons> {
        let diameter = 2.0 * r.value();
        let s = self.spacing.value();
        if diameter <= s {
            return None;
        }
        let gaps = self.wire_count().saturating_sub(1);
        if gaps == 0 {
            return None;
        }
        // Cap the band at the pitch: very large defects are limited by the
        // region itself, not treated here (band ≤ w + s keeps the count of
        // *distinct* shorted pairs equal to `gaps`).
        let band = (diameter - s).min(self.width.value() + s);
        SquareMicrons::new(band * self.length.value() * f64::from(gaps)).ok()
    }

    /// Critical area for *opens* caused by a missing-material disk of
    /// radius `r`.
    ///
    /// A disk severs a wire when its diameter spans the wire width `w`;
    /// the band per wire is `2r − w`. Returns `None` when `2r ≤ w`.
    #[must_use]
    pub fn open_critical_area(&self, r: Microns) -> Option<SquareMicrons> {
        let diameter = 2.0 * r.value();
        let w = self.width.value();
        if diameter <= w {
            return None;
        }
        let wires = self.wire_count();
        if wires == 0 {
            return None;
        }
        let band = (diameter - w).min(w + self.spacing.value());
        SquareMicrons::new(band * self.length.value() * f64::from(wires)).ok()
    }

    /// Average short critical area over a defect size distribution
    /// (numerical integration of `A_c(R)·f(R)`).
    #[must_use]
    pub fn average_short_critical_area(&self, dist: &DefectSizeDistribution) -> f64 {
        self.average_critical_area(dist, |r| {
            self.short_critical_area(r)
                .map_or(0.0, SquareMicrons::value)
        })
    }

    /// Average open critical area over a defect size distribution.
    #[must_use]
    pub fn average_open_critical_area(&self, dist: &DefectSizeDistribution) -> f64 {
        self.average_critical_area(dist, |r| {
            self.open_critical_area(r).map_or(0.0, SquareMicrons::value)
        })
    }

    fn average_critical_area(
        &self,
        dist: &DefectSizeDistribution,
        area_of: impl Fn(Microns) -> f64,
    ) -> f64 {
        // Integrate over radii up to where the band saturates plus tail.
        let r_max =
            20.0 * (self.width.value() + self.spacing.value()).max(dist.peak_radius().value());
        let n = 4000;
        let dr = r_max / n as f64;
        let mut acc = 0.0;
        for i in 0..n {
            let r = (i as f64 + 0.5) * dr;
            let radius = Microns::clamped(r);
            acc += area_of(radius) * dist.pdf(radius) * dr;
        }
        acc
    }

    /// Probability that a defect of radius `r` dropped uniformly on the
    /// region causes a fault (short or open, by defect polarity).
    #[must_use]
    pub fn fault_probability(&self, r: Microns, polarity: DefectPolarity) -> f64 {
        let crit = match polarity {
            DefectPolarity::ExtraMaterial => self.short_critical_area(r),
            DefectPolarity::MissingMaterial => self.open_critical_area(r),
        };
        crit.map_or(0.0, |a| (a.value() / self.region_area().value()).min(1.0))
    }
}

/// Effective *killing* defect density of a layout: the physical defect
/// density thinned by the average critical-area fraction,
/// `D_kill = D_phys · Ā_crit / A_region` (shorts and opens summed, each
/// polarity carrying half the physical population).
///
/// This is the bridge from the Fig 5 defect physics to the `D₀` that
/// eq. (6) consumes — and, evaluated across minimum-rules layouts at
/// successive nodes, it *derives* the `D/λ^p`-style acceleration that
/// eq. (7) postulates.
///
/// # Examples
///
/// ```
/// use maly_units::{DefectDensity, Microns};
/// use maly_yield_model::critical_area::{effective_kill_density, ParallelLines};
/// use maly_yield_model::defects::DefectSizeDistribution;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let dist = DefectSizeDistribution::classic(Microns::new(0.1)?, 4.07)?;
/// let physical = DefectDensity::new(100.0)?; // all sizes, per cm²
/// let coarse = ParallelLines::at_minimum_rules(Microns::new(1.0)?, Microns::new(500.0)?);
/// let fine = ParallelLines::at_minimum_rules(Microns::new(0.5)?, Microns::new(500.0)?);
/// // Shrinking the rules recruits more of the population as killers.
/// let d_coarse = effective_kill_density(&coarse, &dist, physical);
/// let d_fine = effective_kill_density(&fine, &dist, physical);
/// assert!(d_fine.value() > d_coarse.value());
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn effective_kill_density(
    layout: &ParallelLines,
    dist: &DefectSizeDistribution,
    physical: maly_units::DefectDensity,
) -> maly_units::DefectDensity {
    let region = layout.region_area().value();
    let short_fraction = layout.average_short_critical_area(dist) / region;
    let open_fraction = layout.average_open_critical_area(dist) / region;
    // Half the population is extra material (shorts), half missing
    // (opens) — the conventional even split.
    let kill_fraction = 0.5 * short_fraction + 0.5 * open_fraction;
    maly_units::DefectDensity::clamped((physical.value() * kill_fraction).max(1e-300))
}

/// Empirical acceleration exponent: fits `D_kill(λ) ∝ λ^{−q}` over
/// minimum-rules layouts at the given nodes. The paper's eq. (7) uses
/// `q = p − 2` on top of the area factor; this measures the analogous
/// slope from first principles.
///
/// # Panics
///
/// Panics if fewer than two nodes are given.
#[must_use]
pub fn kill_density_acceleration(
    dist: &DefectSizeDistribution,
    physical: maly_units::DefectDensity,
    nodes_um: &[f64],
    region: Microns,
) -> f64 {
    assert!(
        nodes_um.len() >= 2,
        "need at least two nodes to fit a slope"
    );
    // Least squares of ln D_kill against ln λ.
    let points: Vec<(f64, f64)> = nodes_um
        .iter()
        .map(|&l| {
            let layout = ParallelLines::at_minimum_rules(Microns::clamped(l), region);
            let d = effective_kill_density(&layout, dist, physical);
            (l.ln(), d.value().ln())
        })
        .collect();
    let n = points.len() as f64;
    let mx = points.iter().map(|p| p.0).sum::<f64>() / n;
    let my = points.iter().map(|p| p.1).sum::<f64>() / n;
    let sxy: f64 = points.iter().map(|p| (p.0 - mx) * (p.1 - my)).sum();
    let sxx: f64 = points.iter().map(|p| (p.0 - mx).powi(2)).sum();
    -(sxy / sxx)
}

/// Electrical polarity of a spot defect.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DefectPolarity {
    /// Extra conducting material: causes shorts between wires.
    ExtraMaterial,
    /// Missing material: causes opens along a wire.
    MissingMaterial,
}

/// Monte Carlo estimate of the fault probability for a given radius:
/// drop `samples` defect centers uniformly on the region and test the
/// geometric fault criterion directly.
///
/// Serves as an independent check of the closed forms (the geometry test
/// knows nothing about "bands").
#[must_use]
pub fn monte_carlo_fault_probability<R: crate::prng::UniformSource + ?Sized>(
    layout: &ParallelLines,
    r: Microns,
    polarity: DefectPolarity,
    samples: u32,
    rng: &mut R,
) -> f64 {
    let pitch = layout.width().value() + layout.spacing().value();
    let w = layout.width().value();
    let wires = i64::from(layout.wire_count());
    let height = wires as f64 * pitch;
    let radius = r.value();

    // Wire k occupies y ∈ [k·pitch, k·pitch + w). A disk centered at y:
    //   * shorts the pair (k, k+1) when it touches both: y − r < k·pitch + w
    //     and y + r > (k+1)·pitch;
    //   * opens wire k when it spans it entirely: y − r < k·pitch and
    //     y + r > k·pitch + w.
    // Only wires within ±⌈r/pitch⌉ cells of the center can be involved.
    let reach = (radius / pitch).ceil() as i64 + 1;
    let mut faults = 0u32;
    for _ in 0..samples {
        let y: f64 = rng.next_f64() * height;
        let idx = (y / pitch).floor() as i64;
        let mut is_fault = false;
        for k in (idx - reach)..=(idx + reach) {
            let bottom = k as f64 * pitch;
            let top = bottom + w;
            match polarity {
                DefectPolarity::ExtraMaterial => {
                    if k >= 0 && k + 1 < wires && y - radius < top && y + radius > bottom + pitch {
                        is_fault = true;
                    }
                }
                DefectPolarity::MissingMaterial => {
                    if k >= 0 && k < wires && y - radius < bottom && y + radius > top {
                        is_fault = true;
                    }
                }
            }
            if is_fault {
                break;
            }
        }
        if is_fault {
            faults += 1;
        }
    }
    // Scale from the wired strip back to the full region.
    let wired_area = height * layout.length().value();
    let strip_fraction = wired_area / layout.region_area().value();
    f64::from(faults) / f64::from(samples) * strip_fraction
}

impl ParallelLines {
    /// Region length accessor (used by the Monte Carlo helper).
    #[must_use]
    pub fn length(&self) -> Microns {
        self.length
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prng::Xoshiro256PlusPlus;

    fn um(v: f64) -> Microns {
        Microns::new(v).unwrap()
    }

    fn layout(lambda: f64) -> ParallelLines {
        ParallelLines::at_minimum_rules(um(lambda), um(1000.0))
    }

    #[test]
    fn wire_count_fills_region() {
        let l = layout(0.8);
        // pitch 1.6 µm over 1000 µm → 625 wires.
        assert_eq!(l.wire_count(), 625);
    }

    #[test]
    fn small_defects_are_harmless() {
        let l = layout(0.8);
        assert!(l.short_critical_area(um(0.4)).is_none());
        assert!(l.open_critical_area(um(0.4)).is_none());
    }

    #[test]
    fn critical_area_grows_with_radius_until_saturation() {
        let l = layout(0.8);
        let a1 = l.short_critical_area(um(0.5)).unwrap().value();
        let a2 = l.short_critical_area(um(0.7)).unwrap().value();
        let a3 = l.short_critical_area(um(1.2)).unwrap().value();
        let a4 = l.short_critical_area(um(5.0)).unwrap().value();
        assert!(a1 < a2 && a2 < a3);
        // Saturated at band = w + s.
        assert!((a4 - a3).abs() / a3 < 0.01 || a4 >= a3);
    }

    #[test]
    fn open_mirror_of_short_for_equal_width_and_spacing() {
        // With w = s, the short band (2r − s) and open band (2r − w) are
        // equal; opens act on `wires`, shorts on `wires − 1` gaps.
        let l = layout(0.8);
        let r = um(0.9);
        let short = l.short_critical_area(r).unwrap().value();
        let open = l.open_critical_area(r).unwrap().value();
        let gaps = f64::from(l.wire_count() - 1);
        let wires = f64::from(l.wire_count());
        assert!((short / gaps - open / wires).abs() < 1e-9);
    }

    #[test]
    fn shrinking_rules_raises_average_critical_area_fraction() {
        // The fraction of the region that is critical grows as rules
        // shrink while the defect population stays fixed — the physical
        // mechanism behind eq. (7).
        let dist = DefectSizeDistribution::classic(um(0.5), 4.07).unwrap();
        let coarse = layout(1.0);
        let fine = layout(0.5);
        let frac_coarse = coarse.average_short_critical_area(&dist) / coarse.region_area().value();
        let frac_fine = fine.average_short_critical_area(&dist) / fine.region_area().value();
        assert!(
            frac_fine > frac_coarse,
            "fine {frac_fine} should exceed coarse {frac_coarse}"
        );
    }

    #[test]
    fn fault_probability_bounded_by_one() {
        let l = layout(0.8);
        for r in [0.5, 1.0, 10.0, 100.0] {
            let p = l.fault_probability(um(r), DefectPolarity::ExtraMaterial);
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn monte_carlo_agrees_with_closed_form_shorts() {
        let l = layout(0.8);
        let r = um(1.0);
        let analytic = l.fault_probability(r, DefectPolarity::ExtraMaterial);
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(7);
        let mc =
            monte_carlo_fault_probability(&l, r, DefectPolarity::ExtraMaterial, 200_000, &mut rng);
        assert!(
            (mc - analytic).abs() < 0.15 * analytic + 1e-4,
            "mc {mc} vs analytic {analytic}"
        );
    }

    #[test]
    fn kill_density_grows_monotonically_with_shrink() {
        let dist = DefectSizeDistribution::classic(um(0.1), 4.07).unwrap();
        let physical = maly_units::DefectDensity::new(50.0).unwrap();
        let mut last = 0.0;
        for node in [1.5, 1.0, 0.8, 0.5, 0.35] {
            let layout = ParallelLines::at_minimum_rules(um(node), um(500.0));
            let d = effective_kill_density(&layout, &dist, physical).value();
            assert!(d > last, "node {node}: {d} not above {last}");
            last = d;
        }
    }

    #[test]
    fn acceleration_exponent_is_positive_and_superlinear() {
        // The first-principles slope: killing density accelerates faster
        // than 1/λ (wire count × band growth), bounded by the tail
        // physics. This is the mechanism eq. (7) parameterizes.
        let dist = DefectSizeDistribution::classic(um(0.1), 4.07).unwrap();
        let physical = maly_units::DefectDensity::new(50.0).unwrap();
        let q = kill_density_acceleration(&dist, physical, &[1.5, 1.0, 0.8, 0.5, 0.35], um(500.0));
        assert!(q > 1.0, "acceleration {q} should be superlinear");
        assert!(q < 4.07, "acceleration {q} bounded by the tail exponent");
    }

    #[test]
    fn monte_carlo_agrees_with_closed_form_opens() {
        let l = layout(0.8);
        let r = um(0.9);
        let analytic = l.fault_probability(r, DefectPolarity::MissingMaterial);
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(11);
        let mc = monte_carlo_fault_probability(
            &l,
            r,
            DefectPolarity::MissingMaterial,
            200_000,
            &mut rng,
        );
        assert!(
            (mc - analytic).abs() < 0.15 * analytic + 1e-4,
            "mc {mc} vs analytic {analytic}"
        );
    }
}
