//! Redundancy-aware yield for repairable memories.
//!
//! "Only memories enjoy the benefits of redundancy" (critique S.1.2): a
//! DRAM ships spare rows/columns, so a die with a few defective subarrays
//! is *repaired*, not scrapped. That is why Scenario #1's "100% mature
//! yield" is plausible for memories and hopeless for logic — and thus why
//! memory cost trends must not be extrapolated to other ICs (the paper's
//! central cost-diversity message).
//!
//! The model: a memory consists of `required` identical blocks plus
//! `spares` interchangeable spare blocks, all of equal area, together with
//! non-repairable support logic (decoders, sense amps, I/O) of some area.
//! The die works iff at least `required` of the `required + spares` blocks
//! are good *and* the support logic is good.

use maly_units::{Probability, SquareCentimeters, UnitError};

use crate::YieldModel;

/// Yield model for a block-redundant memory die.
///
/// # Examples
///
/// ```
/// use maly_units::{DefectDensity, Probability, SquareCentimeters};
/// use maly_yield_model::{redundancy::RedundantArrayYield, PoissonYield, YieldModel};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let base = PoissonYield::new(DefectDensity::new(1.0)?);
/// let no_spares = RedundantArrayYield::new(base, 64, 0, 0.1)?;
/// let with_spares = RedundantArrayYield::new(base, 64, 4, 0.1)?;
/// let die = SquareCentimeters::new(1.0)?;
/// assert!(with_spares.die_yield(die) > no_spares.die_yield(die));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RedundantArrayYield<M> {
    base: M,
    required: u32,
    spares: u32,
    /// Fraction of the die area that is non-repairable support logic.
    support_fraction: f64,
}

impl<M: YieldModel> RedundantArrayYield<M> {
    /// Creates the model.
    ///
    /// `base` supplies the per-area defect yield; `required` is the number
    /// of array blocks a shipping die needs; `spares` the number of spare
    /// blocks; `support_fraction` the fraction of die area occupied by
    /// non-repairable logic (the remaining area is split evenly across
    /// `required + spares` blocks).
    ///
    /// # Errors
    ///
    /// Returns an error if `required` is zero or `support_fraction`
    /// is outside `[0, 1)`.
    pub fn new(
        base: M,
        required: u32,
        spares: u32,
        support_fraction: f64,
    ) -> Result<Self, UnitError> {
        if required == 0 {
            return Err(UnitError::NotPositive {
                quantity: "required block count",
                value: 0.0,
            });
        }
        if !support_fraction.is_finite() || !(0.0..1.0).contains(&support_fraction) {
            return Err(UnitError::OutOfRange {
                quantity: "support area fraction",
                value: support_fraction,
                min: 0.0,
                max: 1.0,
            });
        }
        Ok(Self {
            base,
            required,
            spares,
            support_fraction,
        })
    }

    /// Number of required blocks.
    #[must_use]
    pub fn required(&self) -> u32 {
        self.required
    }

    /// Number of spare blocks.
    #[must_use]
    pub fn spares(&self) -> u32 {
        self.spares
    }

    /// Expected number of spare blocks *consumed* per shipped die, a proxy
    /// for repair effort (laser-fuse time on the test floor).
    #[must_use]
    pub fn expected_repairs(&self, die_area: SquareCentimeters) -> f64 {
        let (block_yield, _) = self.component_yields(die_area);
        let total = self.required + self.spares;
        let y = block_yield.value();
        // E[bad blocks | die ships] ≈ Σ_k k·P(k bad)·[k ≤ spares] / Y_array.
        let mut num = 0.0;
        let mut den = 0.0;
        for k in 0..=self.spares {
            let p = binomial_pmf(total, k, 1.0 - y);
            num += f64::from(k) * p;
            den += p;
        }
        if den > 0.0 {
            num / den
        } else {
            0.0
        }
    }

    /// Per-block yield and support-logic yield for a given die area.
    fn component_yields(&self, die_area: SquareCentimeters) -> (Probability, Probability) {
        let array_area = die_area.value() * (1.0 - self.support_fraction);
        let total_blocks = f64::from(self.required + self.spares);
        let block_area = array_area / total_blocks;
        let block_yield = if block_area > 0.0 {
            self.base.die_yield(SquareCentimeters::clamped(block_area))
        } else {
            Probability::ONE
        };
        let support_yield = if self.support_fraction > 0.0 {
            self.base.die_yield(SquareCentimeters::clamped(
                die_area.value() * self.support_fraction,
            ))
        } else {
            Probability::ONE
        };
        (block_yield, support_yield)
    }
}

impl<M: YieldModel> YieldModel for RedundantArrayYield<M> {
    fn die_yield(&self, area: SquareCentimeters) -> Probability {
        let (block_yield, support_yield) = self.component_yields(area);
        let total = self.required + self.spares;
        let p_bad = 1.0 - block_yield.value();
        // P(at most `spares` bad blocks among `total`).
        let mut p_repairable = 0.0;
        for k in 0..=self.spares {
            p_repairable += binomial_pmf(total, k, p_bad);
        }
        Probability::clamped(p_repairable) * support_yield
    }
}

/// Binomial probability mass `P(X = k)` for `X ~ B(n, p)`, computed with
/// a multiplicative recurrence that stays in range for the block counts
/// used here (n up to a few thousand).
fn binomial_pmf(n: u32, k: u32, p: f64) -> f64 {
    if p <= 0.0 {
        return if k == 0 { 1.0 } else { 0.0 };
    }
    if p >= 1.0 {
        return if k == n { 1.0 } else { 0.0 };
    }
    // Work in log space for robustness.
    let ln_pmf = ln_choose(n, k) + f64::from(k) * p.ln() + f64::from(n - k) * (1.0 - p).ln();
    ln_pmf.exp()
}

/// `ln C(n, k)` via the log-gamma sum `Σ ln` (exact enough for n ≤ ~10⁶).
fn ln_choose(n: u32, k: u32) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    let k = k.min(n - k);
    let mut acc = 0.0;
    for i in 0..k {
        acc += ((n - i) as f64).ln() - ((i + 1) as f64).ln();
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PoissonYield;
    use maly_units::DefectDensity;

    fn base(d0: f64) -> PoissonYield {
        PoissonYield::new(DefectDensity::new(d0).unwrap())
    }

    fn die(v: f64) -> SquareCentimeters {
        SquareCentimeters::new(v).unwrap()
    }

    #[test]
    fn zero_spares_zero_support_equals_base() {
        // With no spares and no support area, the array is just the die
        // split into independent blocks: Y = y_block^required = Y_base.
        let model = RedundantArrayYield::new(base(1.0), 16, 0, 0.0).unwrap();
        let y = model.die_yield(die(1.0));
        let y_base = base(1.0).die_yield(die(1.0));
        assert!((y.value() - y_base.value()).abs() < 1e-9);
    }

    #[test]
    fn spares_strictly_improve_yield() {
        let mut last = 0.0;
        for spares in [0u32, 1, 2, 4, 8] {
            let model = RedundantArrayYield::new(base(2.0), 64, spares, 0.1).unwrap();
            let y = model.die_yield(die(1.5)).value();
            assert!(y > last, "spares {spares}: {y} not above {last}");
            last = y;
        }
    }

    #[test]
    fn redundancy_explains_memory_vs_logic_gap() {
        // A 1.5 cm² die at D0 = 2/cm² yields ~5% as logic but >60% as a
        // memory with 8 spares on 256 blocks — the S.1.2 observation.
        let logic = base(2.0).die_yield(die(1.5)).value();
        let memory = RedundantArrayYield::new(base(2.0), 256, 8, 0.05)
            .unwrap()
            .die_yield(die(1.5))
            .value();
        assert!(logic < 0.06);
        assert!(memory > 0.6, "memory yield {memory}");
        assert!(memory / logic > 10.0);
    }

    #[test]
    fn support_logic_caps_yield() {
        // Even unlimited spares cannot beat the support-logic yield.
        let model = RedundantArrayYield::new(base(2.0), 16, 16, 0.2).unwrap();
        let y = model.die_yield(die(1.0)).value();
        let support_only = base(2.0).die_yield(die(0.2)).value();
        assert!(y <= support_only + 1e-12);
    }

    #[test]
    fn expected_repairs_grow_with_defect_density() {
        let low = RedundantArrayYield::new(base(0.5), 64, 8, 0.1)
            .unwrap()
            .expected_repairs(die(1.0));
        let high = RedundantArrayYield::new(base(3.0), 64, 8, 0.1)
            .unwrap()
            .expected_repairs(die(1.0));
        assert!(high > low);
        assert!(low >= 0.0);
        assert!(high <= 8.0);
    }

    #[test]
    fn constructor_validation() {
        assert!(RedundantArrayYield::new(base(1.0), 0, 4, 0.1).is_err());
        assert!(RedundantArrayYield::new(base(1.0), 16, 4, 1.0).is_err());
        assert!(RedundantArrayYield::new(base(1.0), 16, 4, -0.1).is_err());
    }

    #[test]
    fn binomial_pmf_sums_to_one() {
        let n = 40;
        let p = 0.3;
        let total: f64 = (0..=n).map(|k| binomial_pmf(n, k, p)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn binomial_pmf_degenerate_cases() {
        assert_eq!(binomial_pmf(10, 0, 0.0), 1.0);
        assert_eq!(binomial_pmf(10, 3, 0.0), 0.0);
        assert_eq!(binomial_pmf(10, 10, 1.0), 1.0);
        assert_eq!(binomial_pmf(10, 9, 1.0), 0.0);
    }

    #[test]
    fn ln_choose_matches_small_cases() {
        assert!((ln_choose(5, 2).exp() - 10.0).abs() < 1e-9);
        assert!((ln_choose(10, 5).exp() - 252.0).abs() < 1e-6);
        assert_eq!(ln_choose(3, 5), f64::NEG_INFINITY);
    }
}
