//! Yield learning: defect density as a function of process maturity.
//!
//! Scenario #1's critical assumption S1.3 — "at the mature stage of each
//! technology generation the yield is 100%" — presumes that defect
//! density is *learned down* over time. Sec. V lists "computer aids in
//! rapid yield learning" among the survival strategies for niche
//! manufacturers. The standard industrial model is exponential learning:
//!
//! ```text
//!   D(t) = D_mature + (D_start − D_mature) · e^{−t/τ}
//! ```
//!
//! with `τ` the learning time constant (months). This module models the
//! curve, answers "when do we reach an economic yield?", and prices the
//! ramp (wafers started before yield matures are mostly scrap — a real
//! cost of entering a new node that eq. (1) alone does not show).

use maly_units::{
    DefectDensity, Dollars, Probability, ProductionVolume, SquareCentimeters, UnitError,
};

use crate::{PoissonYield, YieldModel};

/// An exponential defect-density learning curve.
///
/// # Examples
///
/// ```
/// use maly_units::{DefectDensity, SquareCentimeters};
/// use maly_yield_model::learning::LearningCurve;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let curve = LearningCurve::new(
///     DefectDensity::new(5.0)?,  // at process bring-up
///     DefectDensity::new(0.5)?,  // mature floor
///     6.0,                       // τ = 6 months
/// )?;
/// let die = SquareCentimeters::new(1.0)?;
/// // Yield improves monotonically with maturity.
/// assert!(curve.yield_at(12.0, die) > curve.yield_at(3.0, die));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LearningCurve {
    start: DefectDensity,
    mature: DefectDensity,
    tau_months: f64,
}

impl LearningCurve {
    /// Creates a curve from the bring-up density, the mature floor and
    /// the time constant `τ` in months.
    ///
    /// # Errors
    ///
    /// Returns an error unless `start > mature` and `τ > 0` (a curve
    /// that doesn't learn isn't a learning curve).
    pub fn new(
        start: DefectDensity,
        mature: DefectDensity,
        tau_months: f64,
    ) -> Result<Self, UnitError> {
        if start.value() <= mature.value() {
            return Err(UnitError::OutOfRange {
                quantity: "starting defect density",
                value: start.value(),
                min: mature.value(),
                max: f64::INFINITY,
            });
        }
        if !tau_months.is_finite() || tau_months <= 0.0 {
            return Err(UnitError::NotPositive {
                quantity: "learning time constant",
                value: tau_months,
            });
        }
        Ok(Self {
            start,
            mature,
            tau_months,
        })
    }

    /// Defect density after `months` of production learning.
    ///
    /// # Panics
    ///
    /// Panics if `months` is negative or not finite.
    #[must_use]
    pub fn density_at(&self, months: f64) -> DefectDensity {
        assert!(
            months.is_finite() && months >= 0.0,
            "maturity must be non-negative, got {months}"
        );
        let excess = self.start.value() - self.mature.value();
        DefectDensity::clamped(self.mature.value() + excess * (-months / self.tau_months).exp())
    }

    /// Die yield after `months` of learning (Poisson on the learned
    /// density).
    #[must_use]
    pub fn yield_at(&self, months: f64, die_area: SquareCentimeters) -> Probability {
        PoissonYield::new(self.density_at(months)).die_yield(die_area)
    }

    /// Months of learning needed to reach `target` density; `None` if the
    /// target is below the mature floor (never reached).
    #[must_use]
    pub fn months_to_density(&self, target: DefectDensity) -> Option<f64> {
        if target.value() <= self.mature.value() {
            return None;
        }
        if target.value() >= self.start.value() {
            return Some(0.0);
        }
        let excess = self.start.value() - self.mature.value();
        let fraction = (target.value() - self.mature.value()) / excess;
        Some(-self.tau_months * fraction.ln())
    }

    /// Months of learning needed for a die of `die_area` to reach
    /// `target_yield`; `None` if unreachable even at maturity.
    #[must_use]
    pub fn months_to_yield(
        &self,
        target_yield: Probability,
        die_area: SquareCentimeters,
    ) -> Option<f64> {
        let y = target_yield.value();
        if y <= 0.0 {
            return Some(0.0);
        }
        if y >= 1.0 {
            return None;
        }
        // Required density: D = −ln(Y)/A.
        let required = -y.ln() / die_area.value();
        DefectDensity::new(required)
            .ok()
            .and_then(|d| self.months_to_density(d))
    }

    /// Average yield over a ramp of `months` (time-weighted, monthly
    /// sampling) — what the ramp's wafers actually deliver.
    #[must_use]
    pub fn average_ramp_yield(&self, months: f64, die_area: SquareCentimeters) -> Probability {
        assert!(months > 0.0, "ramp must have positive length");
        let samples = (months.ceil() as usize).max(1);
        let total: f64 = (0..samples)
            .map(|i| {
                let t = months * (i as f64 + 0.5) / samples as f64;
                self.yield_at(t, die_area).value()
            })
            .sum();
        Probability::clamped(total / samples as f64)
    }

    /// Extra silicon cost of the ramp, relative to producing the same
    /// good dies at mature yield: `(1/Y_ramp − 1/Y_mature) · C_die_raw`
    /// summed over the ramp volume.
    ///
    /// `wafer_cost / dies_per_wafer` is the raw (pre-yield) die cost.
    #[must_use]
    pub fn ramp_scrap_premium(
        &self,
        months: f64,
        die_area: SquareCentimeters,
        raw_die_cost: Dollars,
        dies_ramped: ProductionVolume,
    ) -> Dollars {
        let ramp_yield = self.average_ramp_yield(months, die_area).value();
        let mature_yield = PoissonYield::new(self.mature).die_yield(die_area).value();
        let per_good_ramp = raw_die_cost.value() / ramp_yield;
        let per_good_mature = raw_die_cost.value() / mature_yield;
        Dollars::clamped((per_good_ramp - per_good_mature) * dies_ramped.value())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn curve() -> LearningCurve {
        LearningCurve::new(
            DefectDensity::new(5.0).unwrap(),
            DefectDensity::new(0.5).unwrap(),
            6.0,
        )
        .unwrap()
    }

    fn die() -> SquareCentimeters {
        SquareCentimeters::new(1.0).unwrap()
    }

    #[test]
    fn density_decays_from_start_to_floor() {
        let c = curve();
        assert!((c.density_at(0.0).value() - 5.0).abs() < 1e-12);
        // One time constant: floor + excess/e.
        let expected = 0.5 + 4.5 / std::f64::consts::E;
        assert!((c.density_at(6.0).value() - expected).abs() < 1e-12);
        // Far future: the floor.
        assert!((c.density_at(120.0).value() - 0.5).abs() < 1e-6);
    }

    #[test]
    fn yield_improves_monotonically() {
        let c = curve();
        let mut last = 0.0;
        for months in [0.0, 2.0, 6.0, 12.0, 24.0] {
            let y = c.yield_at(months, die()).value();
            assert!(y > last);
            last = y;
        }
    }

    #[test]
    fn months_to_density_inverts_density_at() {
        let c = curve();
        let target = c.density_at(9.3);
        let t = c.months_to_density(target).unwrap();
        assert!((t - 9.3).abs() < 1e-9);
    }

    #[test]
    fn unreachable_targets_are_none() {
        let c = curve();
        assert!(c
            .months_to_density(DefectDensity::new(0.4).unwrap())
            .is_none());
        assert!(c.months_to_yield(Probability::ONE, die()).is_none());
        // Yield above the mature capability of a big die: unreachable.
        let big = SquareCentimeters::new(10.0).unwrap();
        assert!(c
            .months_to_yield(Probability::new(0.9).unwrap(), big)
            .is_none());
    }

    #[test]
    fn months_to_yield_is_achieved_at_that_time() {
        let c = curve();
        let target = Probability::new(0.5).unwrap();
        let t = c.months_to_yield(target, die()).unwrap();
        let achieved = c.yield_at(t, die()).value();
        assert!((achieved - 0.5).abs() < 1e-9, "achieved {achieved}");
    }

    #[test]
    fn average_ramp_yield_is_between_start_and_end() {
        let c = curve();
        let avg = c.average_ramp_yield(12.0, die()).value();
        let start = c.yield_at(0.0, die()).value();
        let end = c.yield_at(12.0, die()).value();
        assert!(avg > start && avg < end);
    }

    #[test]
    fn scrap_premium_positive_and_decreasing_with_faster_learning() {
        let slow = LearningCurve::new(
            DefectDensity::new(5.0).unwrap(),
            DefectDensity::new(0.5).unwrap(),
            12.0,
        )
        .unwrap();
        let fast = LearningCurve::new(
            DefectDensity::new(5.0).unwrap(),
            DefectDensity::new(0.5).unwrap(),
            3.0,
        )
        .unwrap();
        let raw = Dollars::new(20.0).unwrap();
        let volume = ProductionVolume::new(10_000.0).unwrap();
        let premium_slow = slow.ramp_scrap_premium(12.0, die(), raw, volume);
        let premium_fast = fast.ramp_scrap_premium(12.0, die(), raw, volume);
        assert!(premium_slow.value() > premium_fast.value());
        assert!(premium_fast.value() > 0.0);
    }

    #[test]
    fn constructor_validation() {
        let d5 = DefectDensity::new(5.0).unwrap();
        let d05 = DefectDensity::new(0.5).unwrap();
        assert!(LearningCurve::new(d05, d5, 6.0).is_err()); // inverted
        assert!(LearningCurve::new(d5, d05, 0.0).is_err());
        assert!(LearningCurve::new(d5, d05, f64::NAN).is_err());
    }

    #[test]
    #[should_panic(expected = "maturity")]
    fn negative_maturity_panics() {
        let _ = curve().density_at(-1.0);
    }
}
