//! Parametric yield: "global process disturbances" against spec windows.
//!
//! Sec. III.C splits yield loss into spot defects (functional) and global
//! disturbances that shift electrical parameters — threshold voltage,
//! oxide thickness, sheet resistance — across the whole die. A die whose
//! parameters land outside its specification window fails parametrically
//! even with zero defects. The standard first-order model treats each
//! monitored parameter as Gaussian and multiplies the in-spec
//! probabilities of independent parameters.

use maly_units::{Probability, UnitError};

/// A monitored process parameter: Gaussian spread against a spec window.
///
/// # Examples
///
/// ```
/// use maly_yield_model::parametric::ProcessParameter;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // Threshold voltage: target 0.7 V, σ = 30 mV, spec 0.6–0.8 V.
/// let vth = ProcessParameter::new("Vth", 0.7, 0.03, 0.6, 0.8)?;
/// // ±3.33σ window → ~99.9% parametric yield for this parameter.
/// assert!(vth.in_spec_probability().value() > 0.999);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ProcessParameter {
    name: String,
    mean: f64,
    sigma: f64,
    spec_low: f64,
    spec_high: f64,
}

impl ProcessParameter {
    /// Creates a parameter.
    ///
    /// # Errors
    ///
    /// Returns an error if `sigma` is not positive/finite or the spec
    /// window is empty (`spec_low >= spec_high`).
    pub fn new(
        name: impl Into<String>,
        mean: f64,
        sigma: f64,
        spec_low: f64,
        spec_high: f64,
    ) -> Result<Self, UnitError> {
        if !sigma.is_finite() || sigma <= 0.0 {
            return Err(UnitError::NotPositive {
                quantity: "parameter sigma",
                value: sigma,
            });
        }
        if !(mean.is_finite() && spec_low.is_finite() && spec_high.is_finite()) {
            return Err(UnitError::NotFinite {
                quantity: "parameter specification",
            });
        }
        if spec_low >= spec_high {
            return Err(UnitError::OutOfRange {
                quantity: "specification window",
                value: spec_low,
                min: f64::NEG_INFINITY,
                max: spec_high,
            });
        }
        Ok(Self {
            name: name.into(),
            mean,
            sigma,
            spec_low,
            spec_high,
        })
    }

    /// Parameter name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Probability that this parameter lands inside its spec window:
    /// `Φ((hi−μ)/σ) − Φ((lo−μ)/σ)`.
    #[must_use]
    pub fn in_spec_probability(&self) -> Probability {
        let hi = normal_cdf((self.spec_high - self.mean) / self.sigma);
        let lo = normal_cdf((self.spec_low - self.mean) / self.sigma);
        Probability::clamped(hi - lo)
    }

    /// Process capability index `C_pk = min(hi−μ, μ−lo) / (3σ)` — the
    /// fab-floor metric for how comfortably the process sits in spec.
    #[must_use]
    pub fn cpk(&self) -> f64 {
        let upper = self.spec_high - self.mean;
        let lower = self.mean - self.spec_low;
        upper.min(lower) / (3.0 * self.sigma)
    }
}

/// Parametric yield of a die: product of independent parameter windows.
///
/// # Examples
///
/// ```
/// use maly_yield_model::parametric::{ParametricYield, ProcessParameter};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let y = ParametricYield::new(vec![
///     ProcessParameter::new("Vth", 0.7, 0.03, 0.6, 0.8)?,
///     ProcessParameter::new("Tox", 10.0, 0.4, 9.0, 11.0)?,
/// ]);
/// let p = y.parametric_yield();
/// assert!(p.value() > 0.98 && p.value() < 1.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ParametricYield {
    parameters: Vec<ProcessParameter>,
}

impl ParametricYield {
    /// Creates the model from a set of independent parameters.
    #[must_use]
    pub fn new(parameters: Vec<ProcessParameter>) -> Self {
        Self { parameters }
    }

    /// The monitored parameters.
    #[must_use]
    pub fn parameters(&self) -> &[ProcessParameter] {
        &self.parameters
    }

    /// Adds a parameter (builder style).
    #[must_use]
    pub fn with_parameter(mut self, parameter: ProcessParameter) -> Self {
        self.parameters.push(parameter);
        self
    }

    /// Overall parametric yield `Y_par = Π P(in spec)`.
    #[must_use]
    pub fn parametric_yield(&self) -> Probability {
        self.parameters
            .iter()
            .map(ProcessParameter::in_spec_probability)
            .fold(Probability::ONE, |acc, p| acc * p)
    }

    /// The parameter with the lowest in-spec probability (the yield
    /// limiter a process engineer would attack first), if any.
    #[must_use]
    pub fn limiting_parameter(&self) -> Option<&ProcessParameter> {
        self.parameters.iter().min_by(|a, b| {
            a.in_spec_probability()
                .value()
                .total_cmp(&b.in_spec_probability().value())
        })
    }
}

/// Standard normal CDF via the Abramowitz–Stegun 7.1.26 erf
/// approximation (|error| < 1.5e-7, ample for yield work).
#[must_use]
pub fn normal_cdf(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
}

/// Error function approximation (Abramowitz–Stegun 7.1.26).
#[must_use]
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736
                + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    sign * (1.0 - poly * (-x * x).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erf_reference_values() {
        // Abramowitz–Stegun table values.
        for (x, expected) in [
            (0.0, 0.0),
            (0.5, 0.520_499_878),
            (1.0, 0.842_700_793),
            (2.0, 0.995_322_265),
        ] {
            assert!((erf(x) - expected).abs() < 2e-7, "erf({x})");
            assert!((erf(-x) + expected).abs() < 2e-7, "erf(−{x})");
        }
    }

    #[test]
    fn normal_cdf_reference_values() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-9);
        assert!((normal_cdf(1.0) - 0.841_344_746).abs() < 1e-6);
        assert!((normal_cdf(-1.959_964) - 0.025).abs() < 1e-5);
        assert!((normal_cdf(3.0) - 0.998_650_102).abs() < 1e-6);
    }

    #[test]
    fn centered_three_sigma_window() {
        let p = ProcessParameter::new("x", 0.0, 1.0, -3.0, 3.0).unwrap();
        assert!((p.in_spec_probability().value() - 0.9973).abs() < 1e-4);
        assert!((p.cpk() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn offset_mean_hurts_yield() {
        let centered = ProcessParameter::new("x", 0.0, 1.0, -3.0, 3.0).unwrap();
        let shifted = ProcessParameter::new("x", 1.0, 1.0, -3.0, 3.0).unwrap();
        assert!(shifted.in_spec_probability() < centered.in_spec_probability());
        assert!(shifted.cpk() < centered.cpk());
    }

    #[test]
    fn composite_parametric_yield_multiplies() {
        let a = ProcessParameter::new("a", 0.0, 1.0, -2.0, 2.0).unwrap();
        let b = ProcessParameter::new("b", 0.0, 1.0, -1.0, 1.0).unwrap();
        let y = ParametricYield::new(vec![a.clone(), b.clone()]);
        let expected = a.in_spec_probability().value() * b.in_spec_probability().value();
        assert!((y.parametric_yield().value() - expected).abs() < 1e-12);
        assert_eq!(y.limiting_parameter().unwrap().name(), "b");
    }

    #[test]
    fn empty_parameter_set_is_perfect() {
        assert_eq!(
            ParametricYield::default().parametric_yield(),
            Probability::ONE
        );
        assert!(ParametricYield::default().limiting_parameter().is_none());
    }

    #[test]
    fn builder_accumulates() {
        let y = ParametricYield::default()
            .with_parameter(ProcessParameter::new("a", 0.0, 1.0, -2.0, 2.0).unwrap())
            .with_parameter(ProcessParameter::new("b", 0.0, 1.0, -2.0, 2.0).unwrap());
        assert_eq!(y.parameters().len(), 2);
    }

    #[test]
    fn constructor_validation() {
        assert!(ProcessParameter::new("x", 0.0, 0.0, -1.0, 1.0).is_err());
        assert!(ProcessParameter::new("x", 0.0, 1.0, 1.0, 1.0).is_err());
        assert!(ProcessParameter::new("x", f64::NAN, 1.0, -1.0, 1.0).is_err());
    }
}
