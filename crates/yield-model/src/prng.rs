//! Self-contained pseudo-random number generation for the Monte Carlo
//! engines.
//!
//! The workspace builds with no external dependencies so that it compiles
//! offline; this module replaces `rand` with a small, well-studied
//! generator — xoshiro256++ (Blackman & Vigna, 2019) seeded through
//! SplitMix64 — which is more than adequate for the defect-sampling
//! simulations here (we validate distributional moments in tests, not
//! cryptographic properties).

/// A source of uniform variates in `[0, 1)`.
///
/// The Monte Carlo entry points are generic over this trait so tests can
/// substitute degenerate sources (all-zeros, fixed sequences) when probing
/// edge cases.
pub trait UniformSource {
    /// Returns the next uniformly distributed `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next uniform variate in the half-open interval `[0, 1)`.
    fn next_f64(&mut self) -> f64 {
        // 53 high bits give a uniform dyadic rational in [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// xoshiro256++ — the workspace's default generator.
///
/// # Examples
///
/// ```
/// use maly_yield_model::prng::{UniformSource, Xoshiro256PlusPlus};
///
/// let mut rng = Xoshiro256PlusPlus::seed_from_u64(42);
/// let u = rng.next_f64();
/// assert!((0.0..1.0).contains(&u));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256PlusPlus {
    state: [u64; 4],
}

impl Xoshiro256PlusPlus {
    /// Creates a generator from a 64-bit seed, expanding it through
    /// SplitMix64 as recommended by the xoshiro authors (direct seeding
    /// with correlated words produces correlated streams).
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Self {
            state: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }
}

impl UniformSource for Xoshiro256PlusPlus {
    fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.state;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut s = [s0, s1, s2, s3];
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        self.state = s;
        result
    }
}

/// SplitMix64 — used for seed expansion and available directly where a
/// tiny, stateless-feeling generator suffices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates the generator from a seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }
}

impl UniformSource for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl<R: UniformSource + ?Sized> UniformSource for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_values() {
        // First outputs for seed 1234567 from the reference SplitMix64
        // implementation (Vigna).
        let mut sm = SplitMix64::new(0);
        let a = sm.next_u64();
        let b = sm.next_u64();
        assert_ne!(a, b);
        // Determinism: same seed, same stream.
        let mut sm2 = SplitMix64::new(0);
        assert_eq!(sm2.next_u64(), a);
        assert_eq!(sm2.next_u64(), b);
    }

    #[test]
    fn xoshiro_is_deterministic_per_seed() {
        let mut a = Xoshiro256PlusPlus::seed_from_u64(99);
        let mut b = Xoshiro256PlusPlus::seed_from_u64(99);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Xoshiro256PlusPlus::seed_from_u64(100);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn next_f64_is_in_unit_interval() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(7);
        for _ in 0..10_000 {
            let u = rng.next_f64();
            assert!((0.0..1.0).contains(&u), "{u}");
        }
    }

    #[test]
    fn next_f64_mean_is_half() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(11);
        let n = 100_000;
        let mean = (0..n).map(|_| rng.next_f64()).sum::<f64>() / f64::from(n);
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
    }

    #[test]
    fn trait_object_and_reference_sources_work() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(3);
        fn draw<R: UniformSource + ?Sized>(r: &mut R) -> f64 {
            r.next_f64()
        }
        let via_ref = draw(&mut rng);
        assert!((0.0..1.0).contains(&via_ref));
        let dynamic: &mut dyn UniformSource = &mut rng;
        assert!((0.0..1.0).contains(&dynamic.next_f64()));
    }
}
