//! Random samplers used by the yield Monte Carlo.
//!
//! `rand` (without `rand_distr`) provides only uniform sampling; the
//! Poisson, normal and gamma variates needed here are implemented from
//! first principles and validated against their analytic moments in tests.

use crate::prng::UniformSource;

/// Draws a Poisson-distributed count with the given mean.
///
/// Uses Knuth's product-of-uniforms method for small means and a normal
/// approximation (with continuity correction, clamped at zero) for large
/// means, where Knuth's method would need thousands of uniforms per draw.
///
/// # Panics
///
/// Panics if `mean` is negative or not finite.
#[must_use]
pub fn poisson<R: UniformSource + ?Sized>(mean: f64, rng: &mut R) -> u64 {
    assert!(
        mean.is_finite() && mean >= 0.0,
        "poisson mean must be non-negative and finite, got {mean}"
    );
    // audit:allow(float-cmp): exact zero mean short-circuits the sampler.
    if mean == 0.0 {
        return 0;
    }
    if mean < 64.0 {
        // Knuth: count uniforms until their product drops below e^{−mean}.
        let limit = (-mean).exp();
        let mut product: f64 = 1.0;
        let mut count: u64 = 0;
        loop {
            product *= rng.next_f64();
            if product <= limit {
                return count;
            }
            count += 1;
        }
    } else {
        // Normal approximation: Poisson(λ) ≈ N(λ, λ) for large λ.
        let draw = mean + mean.sqrt() * standard_normal(rng);
        draw.round().max(0.0) as u64
    }
}

/// Draws a standard normal variate via the Box–Muller transform.
#[must_use]
pub fn standard_normal<R: UniformSource + ?Sized>(rng: &mut R) -> f64 {
    // Avoid ln(0) by nudging the first uniform away from zero.
    let u1: f64 = rng.next_f64().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.next_f64();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Draws a gamma variate with the given `shape` and `scale`
/// (mean = `shape · scale`).
///
/// Marsaglia–Tsang squeeze method; the `shape < 1` case is boosted via
/// the standard `U^{1/shape}` augmentation.
///
/// # Panics
///
/// Panics if `shape` or `scale` is not positive and finite.
#[must_use]
pub fn gamma<R: UniformSource + ?Sized>(shape: f64, scale: f64, rng: &mut R) -> f64 {
    assert!(
        shape.is_finite() && shape > 0.0,
        "gamma shape must be positive, got {shape}"
    );
    assert!(
        scale.is_finite() && scale > 0.0,
        "gamma scale must be positive, got {scale}"
    );
    if shape < 1.0 {
        // Gamma(a) = Gamma(a+1) · U^{1/a}
        let boost = rng.next_f64().max(f64::MIN_POSITIVE).powf(1.0 / shape);
        return gamma(shape + 1.0, scale, rng) * boost;
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = standard_normal(rng);
        let v = (1.0 + c * x).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u: f64 = rng.next_f64().max(f64::MIN_POSITIVE);
        if u.ln() < 0.5 * x * x + d - d * v + d * v.ln() {
            return d * v * scale;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prng::Xoshiro256PlusPlus;

    fn rng() -> Xoshiro256PlusPlus {
        Xoshiro256PlusPlus::seed_from_u64(12345)
    }

    fn sample_stats(mut f: impl FnMut() -> f64, n: usize) -> (f64, f64) {
        let xs: Vec<f64> = (0..n).map(|_| f()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64;
        (mean, var)
    }

    #[test]
    fn poisson_small_mean_moments() {
        let mut r = rng();
        let (mean, var) = sample_stats(|| poisson(3.5, &mut r) as f64, 40_000);
        assert!((mean - 3.5).abs() < 0.05, "mean {mean}");
        assert!((var - 3.5).abs() < 0.15, "var {var}");
    }

    #[test]
    fn poisson_large_mean_moments() {
        let mut r = rng();
        let (mean, var) = sample_stats(|| poisson(400.0, &mut r) as f64, 20_000);
        assert!((mean - 400.0).abs() < 1.0, "mean {mean}");
        assert!((var - 400.0).abs() < 20.0, "var {var}");
    }

    #[test]
    fn poisson_zero_mean_is_zero() {
        let mut r = rng();
        assert_eq!(poisson(0.0, &mut r), 0);
    }

    #[test]
    #[should_panic(expected = "poisson mean")]
    fn poisson_rejects_negative_mean() {
        let mut r = rng();
        let _ = poisson(-1.0, &mut r);
    }

    #[test]
    fn standard_normal_moments() {
        let mut r = rng();
        let (mean, var) = sample_stats(|| standard_normal(&mut r), 60_000);
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn gamma_moments_shape_above_one() {
        let mut r = rng();
        let (mean, var) = sample_stats(|| gamma(4.0, 2.0, &mut r), 40_000);
        assert!((mean - 8.0).abs() < 0.1, "mean {mean}");
        assert!((var - 16.0).abs() < 0.7, "var {var}");
    }

    #[test]
    fn gamma_moments_shape_below_one() {
        let mut r = rng();
        let (mean, var) = sample_stats(|| gamma(0.5, 3.0, &mut r), 60_000);
        assert!((mean - 1.5).abs() < 0.05, "mean {mean}");
        assert!((var - 4.5).abs() < 0.35, "var {var}");
    }

    #[test]
    fn gamma_is_positive() {
        let mut r = rng();
        for _ in 0..1000 {
            assert!(gamma(0.3, 1.0, &mut r) > 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "gamma shape")]
    fn gamma_rejects_bad_shape() {
        let mut r = rng();
        let _ = gamma(0.0, 1.0, &mut r);
    }
}
