//! Wafer-level yield Monte Carlo.
//!
//! Drops killing defects onto a real [`WaferMap`] and counts surviving
//! dies. Two defect arrival models are supported:
//!
//! * **Uniform** — a spatial Poisson process with constant density, whose
//!   die yield converges to the eq. (6) closed form;
//! * **Clustered** — the per-wafer density is itself gamma-distributed
//!   (a compound/mixed Poisson process), whose *mean* die yield converges
//!   to the negative-binomial closed form with the same `α`.
//!
//! Running both against their closed forms is the crate's strongest
//! validation: the analytic models and the simulator share no code.

use crate::prng::UniformSource;
use maly_units::{DefectDensity, Probability, SquareCentimeters};
use maly_wafer_geom::WaferMap;

use crate::{sampling, YieldModel as _};

/// Spatial arrival model for killing defects.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DefectArrival {
    /// Homogeneous Poisson field with the given mean density.
    Uniform {
        /// Mean killing-defect density.
        density: DefectDensity,
    },
    /// Gamma-mixed Poisson: each wafer draws its density from a gamma
    /// distribution with mean `density` and shape `alpha` (the clustering
    /// parameter of the negative-binomial yield model).
    Clustered {
        /// Mean killing-defect density across wafers.
        density: DefectDensity,
        /// Gamma shape (smaller = more clustered).
        alpha: f64,
    },
    /// Radial ("bull's-eye") gradient: the local intensity grows
    /// quadratically toward the wafer edge,
    /// `i(r) ∝ 1 + (edge_multiplier − 1)·(r/R)²`, normalized so the
    /// wafer-average density equals `density`. Models the classic
    /// edge-degraded uniformity of real processes (Sec. III.A.c:
    /// "larger wafers are more difficult to process").
    RadialGradient {
        /// Wafer-average killing-defect density.
        density: DefectDensity,
        /// Ratio of edge to center intensity (≥ 1).
        edge_multiplier: f64,
    },
}

impl DefectArrival {
    /// Mean defect density of the arrival model.
    #[must_use]
    pub fn mean_density(&self) -> DefectDensity {
        match self {
            DefectArrival::Uniform { density }
            | DefectArrival::Clustered { density, .. }
            | DefectArrival::RadialGradient { density, .. } => *density,
        }
    }
}

/// Result of a wafer-yield simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct SimulationResult {
    /// Number of simulated wafers.
    pub wafers: u32,
    /// Complete die sites per wafer.
    pub sites_per_wafer: u32,
    /// Total good dies across all wafers.
    pub good_dies: u64,
    /// Total defects dropped across all wafers.
    pub defects: u64,
    /// Per-wafer good-die counts (for variance studies).
    pub per_wafer_good: Vec<u32>,
    /// Per-site good-die counts across all wafers, indexed like
    /// [`WaferMap::sites`] — exposes spatial yield patterns
    /// (bull's-eye gradients show up as center–edge contrast).
    pub per_site_good: Vec<u32>,
}

impl SimulationResult {
    /// Empirical die yield across all wafers.
    #[must_use]
    pub fn yield_estimate(&self) -> Probability {
        let total = u64::from(self.wafers) * u64::from(self.sites_per_wafer);
        if total == 0 {
            return Probability::ONE;
        }
        Probability::clamped(self.good_dies as f64 / total as f64)
    }

    /// Mean yield of the sites whose center lies within `fraction` of
    /// the wafer radius (pass e.g. 0.5 for the inner half), given the
    /// map the simulation ran on. Returns `None` when no site qualifies.
    #[must_use]
    pub fn zone_yield(&self, map: &WaferMap, fraction: f64, inner: bool) -> Option<f64> {
        let r = map.wafer().radius().value() * fraction;
        let mut good = 0u64;
        let mut count = 0u64;
        for (site, &g) in map.sites().iter().zip(&self.per_site_good) {
            let inside = site.radial_distance() <= r;
            if inside == inner {
                good += u64::from(g);
                count += 1;
            }
        }
        (count > 0 && self.wafers > 0)
            .then(|| good as f64 / (count * u64::from(self.wafers)) as f64)
    }

    /// Variance of the per-wafer good-die count — clustered defects
    /// produce visibly higher wafer-to-wafer variance than uniform ones,
    /// even at equal mean yield.
    #[must_use]
    pub fn per_wafer_variance(&self) -> f64 {
        let n = self.per_wafer_good.len();
        if n < 2 {
            return 0.0;
        }
        let mean = self
            .per_wafer_good
            .iter()
            .map(|&g| f64::from(g))
            .sum::<f64>()
            / n as f64;
        self.per_wafer_good
            .iter()
            .map(|&g| (f64::from(g) - mean).powi(2))
            .sum::<f64>()
            / (n - 1) as f64
    }
}

/// Simulates `wafers` wafers of the given map under an arrival model.
///
/// A die is good iff no killing defect lands inside its rectangle. Only
/// defects within the wafer circle are generated (density × wafer area).
///
/// # Examples
///
/// ```
/// use maly_units::{Centimeters, DefectDensity};
/// use maly_wafer_geom::{raster::RasterPlacement, DieDimensions, Wafer};
/// use maly_yield_model::monte_carlo::{simulate, DefectArrival};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let map = RasterPlacement::default().place(
///     &Wafer::six_inch(),
///     DieDimensions::square(Centimeters::new(1.0)?),
/// );
/// let mut rng = maly_yield_model::prng::Xoshiro256PlusPlus::seed_from_u64(42);
/// let result = simulate(
///     &map,
///     DefectArrival::Uniform { density: DefectDensity::new(0.5)? },
///     20,
///     &mut rng,
/// );
/// let y = result.yield_estimate().value();
/// assert!(y > 0.4 && y < 0.8); // exp(−0.5) ≈ 0.61
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn simulate<R: UniformSource + ?Sized>(
    map: &WaferMap,
    arrival: DefectArrival,
    wafers: u32,
    rng: &mut R,
) -> SimulationResult {
    let r_w = map.wafer().radius().value();
    let wafer_area = map.wafer().area().value();
    let sites = map.sites();
    let mut per_wafer_good = Vec::with_capacity(wafers as usize);
    let mut good_total: u64 = 0;
    let mut defects_total: u64 = 0;

    let mut per_site_good = vec![0u32; sites.len()];

    for _ in 0..wafers {
        let density = match arrival {
            DefectArrival::Uniform { density } | DefectArrival::RadialGradient { density, .. } => {
                density.value()
            }
            DefectArrival::Clustered { density, alpha } => {
                sampling::gamma(alpha, density.value() / alpha, rng)
            }
        };
        let n_defects = sampling::poisson(density * wafer_area, rng);
        defects_total += n_defects;

        let mut dead = vec![false; sites.len()];
        for _ in 0..n_defects {
            // Rejection-sample a point in the wafer disk, biased by the
            // arrival model's radial intensity profile where applicable.
            let (x, y) = loop {
                let x = (rng.next_f64() * 2.0 - 1.0) * r_w;
                let y = (rng.next_f64() * 2.0 - 1.0) * r_w;
                let rr = x * x + y * y;
                if rr > r_w * r_w {
                    continue;
                }
                if let DefectArrival::RadialGradient {
                    edge_multiplier, ..
                } = arrival
                {
                    // Accept with probability i(r)/i(R):
                    // (1 + (m−1)(r/R)²)/m — the average over the disk is
                    // (1 + (m−1)/2)/m, which the Poisson count above
                    // already carries via the mean density.
                    let m = edge_multiplier.max(1.0);
                    let accept = (1.0 + (m - 1.0) * rr / (r_w * r_w)) / m;
                    if rng.next_f64() > accept {
                        continue;
                    }
                }
                break (x, y);
            };
            if let Some(idx) = map.die_at(x, y) {
                dead[idx] = true;
            }
        }
        let mut good = 0u32;
        for (idx, &is_dead) in dead.iter().enumerate() {
            if !is_dead {
                good += 1;
                per_site_good[idx] += 1;
            }
        }
        per_wafer_good.push(good);
        good_total += u64::from(good);
    }

    SimulationResult {
        wafers,
        sites_per_wafer: map.count().value(),
        good_dies: good_total,
        defects: defects_total,
        per_wafer_good,
        per_site_good,
    }
}

/// Convenience: the analytic yield the uniform simulation should converge
/// to — eq. (6) with the die area of the map.
#[must_use]
pub fn analytic_uniform_yield(map: &WaferMap, density: DefectDensity) -> Probability {
    let area = map.die().area();
    crate::PoissonYield::new(density).die_yield(area)
}

/// Convenience: the analytic mean yield of the clustered model — negative
/// binomial with the same `α`.
///
/// # Errors
///
/// Returns an error if `alpha` is invalid (propagated from
/// [`crate::NegativeBinomialYield::new`]).
pub fn analytic_clustered_yield(
    map: &WaferMap,
    density: DefectDensity,
    alpha: f64,
) -> Result<Probability, maly_units::UnitError> {
    let area: SquareCentimeters = map.die().area();
    Ok(crate::NegativeBinomialYield::new(density, alpha)?.die_yield(area))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prng::Xoshiro256PlusPlus;
    use crate::YieldModel;
    use maly_units::Centimeters;
    use maly_wafer_geom::{raster::RasterPlacement, DieDimensions, Wafer};

    fn map_with_die(edge_cm: f64) -> WaferMap {
        RasterPlacement::default().place(
            &Wafer::six_inch(),
            DieDimensions::square(Centimeters::new(edge_cm).unwrap()),
        )
    }

    fn rng(seed: u64) -> Xoshiro256PlusPlus {
        Xoshiro256PlusPlus::seed_from_u64(seed)
    }

    #[test]
    fn uniform_simulation_converges_to_poisson() {
        let map = map_with_die(1.0);
        let density = DefectDensity::new(0.8).unwrap();
        let mut r = rng(3);
        let result = simulate(&map, DefectArrival::Uniform { density }, 400, &mut r);
        let analytic = analytic_uniform_yield(&map, density).value();
        let measured = result.yield_estimate().value();
        assert!(
            (measured - analytic).abs() < 0.015,
            "measured {measured} vs analytic {analytic}"
        );
    }

    #[test]
    fn clustered_simulation_converges_to_negative_binomial() {
        let map = map_with_die(1.0);
        let density = DefectDensity::new(0.8).unwrap();
        let alpha = 1.5;
        let mut r = rng(5);
        let result = simulate(
            &map,
            DefectArrival::Clustered { density, alpha },
            600,
            &mut r,
        );
        let analytic = analytic_clustered_yield(&map, density, alpha)
            .unwrap()
            .value();
        let poisson = analytic_uniform_yield(&map, density).value();
        let measured = result.yield_estimate().value();
        assert!(
            (measured - analytic).abs() < 0.02,
            "measured {measured} vs NB analytic {analytic}"
        );
        // And clustering must beat Poisson at equal mean density.
        assert!(measured > poisson);
    }

    #[test]
    fn clustering_raises_wafer_to_wafer_variance() {
        let map = map_with_die(1.0);
        let density = DefectDensity::new(0.8).unwrap();
        let mut r = rng(7);
        let uniform = simulate(&map, DefectArrival::Uniform { density }, 200, &mut r);
        let clustered = simulate(
            &map,
            DefectArrival::Clustered {
                density,
                alpha: 0.8,
            },
            200,
            &mut r,
        );
        assert!(clustered.per_wafer_variance() > 2.0 * uniform.per_wafer_variance());
    }

    #[test]
    fn zero_wafers_gives_trivial_result() {
        let map = map_with_die(1.0);
        let mut r = rng(1);
        let result = simulate(
            &map,
            DefectArrival::Uniform {
                density: DefectDensity::new(1.0).unwrap(),
            },
            0,
            &mut r,
        );
        assert_eq!(result.good_dies, 0);
        assert_eq!(result.yield_estimate(), maly_units::Probability::ONE);
    }

    #[test]
    fn defect_count_scales_with_density() {
        let map = map_with_die(1.0);
        let mut r = rng(9);
        let low = simulate(
            &map,
            DefectArrival::Uniform {
                density: DefectDensity::new(0.2).unwrap(),
            },
            50,
            &mut r,
        );
        let high = simulate(
            &map,
            DefectArrival::Uniform {
                density: DefectDensity::new(2.0).unwrap(),
            },
            50,
            &mut r,
        );
        assert!(high.defects > 5 * low.defects);
    }

    #[test]
    fn bigger_dies_yield_worse_in_simulation() {
        let density = DefectDensity::new(0.8).unwrap();
        let mut r = rng(11);
        let small = simulate(
            &map_with_die(0.7),
            DefectArrival::Uniform { density },
            150,
            &mut r,
        );
        let large = simulate(
            &map_with_die(1.8),
            DefectArrival::Uniform { density },
            150,
            &mut r,
        );
        assert!(small.yield_estimate() > large.yield_estimate());
    }

    #[test]
    fn radial_gradient_degrades_edge_dies() {
        let map = map_with_die(1.0);
        let density = DefectDensity::new(1.0).unwrap();
        let mut r = rng(13);
        let result = simulate(
            &map,
            DefectArrival::RadialGradient {
                density,
                edge_multiplier: 6.0,
            },
            400,
            &mut r,
        );
        let inner = result.zone_yield(&map, 0.55, true).unwrap();
        let outer = result.zone_yield(&map, 0.55, false).unwrap();
        assert!(
            inner > outer + 0.05,
            "bull's-eye expected: inner {inner:.3} vs outer {outer:.3}"
        );
        // Like clustering, a gradient concentrates defects and therefore
        // *raises* the wafer-average yield relative to uniform at equal
        // mean density (Jensen on the convex exp(−λ)).
        let uniform = analytic_uniform_yield(&map, density).value();
        let measured = result.yield_estimate().value();
        assert!(
            measured >= uniform - 0.02,
            "{measured} vs uniform {uniform}"
        );
        assert!(measured < uniform + 0.2);
    }

    #[test]
    fn uniform_arrival_shows_no_radial_trend() {
        let map = map_with_die(1.0);
        let density = DefectDensity::new(1.0).unwrap();
        let mut r = rng(17);
        let result = simulate(&map, DefectArrival::Uniform { density }, 400, &mut r);
        let inner = result.zone_yield(&map, 0.55, true).unwrap();
        let outer = result.zone_yield(&map, 0.55, false).unwrap();
        assert!(
            (inner - outer).abs() < 0.03,
            "inner {inner} vs outer {outer}"
        );
    }

    #[test]
    fn per_site_counts_sum_to_total_good() {
        let map = map_with_die(1.2);
        let mut r = rng(19);
        let result = simulate(
            &map,
            DefectArrival::Uniform {
                density: DefectDensity::new(0.5).unwrap(),
            },
            50,
            &mut r,
        );
        let site_sum: u64 = result.per_site_good.iter().map(|&g| u64::from(g)).sum();
        assert_eq!(site_sum, result.good_dies);
        assert_eq!(result.per_site_good.len(), map.sites().len());
    }

    #[test]
    fn analytic_helpers_match_models() {
        let map = map_with_die(1.0);
        let density = DefectDensity::new(0.5).unwrap();
        let direct = crate::PoissonYield::new(density).die_yield(map.die().area());
        assert_eq!(analytic_uniform_yield(&map, density), direct);
        assert!(analytic_clustered_yield(&map, density, -1.0).is_err());
    }
}
