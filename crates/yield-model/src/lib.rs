//! IC manufacturing yield models.
//!
//! Yield `Y` — "the probability that a fabricated and tested die functions
//! according to its desired specifications" — is the most sensitive factor
//! of the paper's transistor cost model (eq. 1). This crate implements the
//! paper's models and the classical alternatives needed to judge them:
//!
//! * **Functional yield** (spot defects): [`PoissonYield`] (eq. 6),
//!   [`ScaledPoissonYield`] (eq. 7, with the `D/λ^p` defect acceleration),
//!   [`AreaScaledYield`] (the `Y₀^{A/A₀}` convention of eq. 9 and Table 3),
//!   plus [`MurphyYield`], [`SeedsYield`] and [`NegativeBinomialYield`]
//!   (Stapper clustering) for comparison.
//! * **Defect statistics**: the Fig. 5 defect size distribution
//!   ([`defects::DefectSizeDistribution`]) and critical-area estimation
//!   ([`critical_area`]) connecting physical defect sizes to electrical
//!   faults.
//! * **Redundancy**: [`redundancy::RedundantArrayYield`] models the spare
//!   row/column repair that lets DRAMs live with imperfect silicon
//!   (Assumption S1.2 of Scenario #1).
//! * **Parametric yield**: [`parametric`] models "global process
//!   disturbances" as Gaussian parameter spread against spec windows, and
//!   [`CompositeYield`] forms `Y = Y_fnc · Y_par`.
//! * **Monte Carlo**: [`monte_carlo`] drops defects on a real
//!   [`maly_wafer_geom::WaferMap`] and measures yield empirically,
//!   validating the closed forms (and exhibiting clustering effects).
//!
//! # Examples
//!
//! ```
//! use maly_units::{Probability, SquareCentimeters};
//! use maly_yield_model::{AreaScaledYield, YieldModel};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Table 3 row 2: Y0 = 70% per cm², 2.976 cm² die.
//! let model = AreaScaledYield::per_square_centimeter(Probability::new(0.7)?);
//! let y = model.die_yield(SquareCentimeters::new(2.976)?);
//! assert!((y.value() - 0.346).abs() < 1e-3);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod critical_area;
pub mod defects;
mod functional;
pub mod learning;
pub mod monte_carlo;
pub mod parametric;
pub mod prng;
pub mod redundancy;
pub mod sampling;

pub use functional::{
    AreaScaledYield, CompositeYield, MurphyYield, NegativeBinomialYield, PerfectYield,
    PoissonYield, ScaledPoissonYield, SeedsYield,
};

use maly_units::{Probability, SquareCentimeters};

/// A die-level manufacturing yield model.
///
/// Implementors map a die area to the probability that a die of that area
/// is functional. All of the paper's cost expressions consume yield
/// through this interface, so models are interchangeable (e.g. swapping
/// eq. (7) for a negative-binomial model in an ablation study).
pub trait YieldModel {
    /// Probability that a die of the given area is functional.
    fn die_yield(&self, area: SquareCentimeters) -> Probability;

    /// Expected number of *good* dies among `gross` candidate dies.
    fn expected_good_dies(&self, area: SquareCentimeters, gross: maly_units::DieCount) -> f64 {
        gross.as_f64() * self.die_yield(area).value()
    }
}

impl<T: YieldModel + ?Sized> YieldModel for &T {
    fn die_yield(&self, area: SquareCentimeters) -> Probability {
        (**self).die_yield(area)
    }
}

impl<T: YieldModel + ?Sized> YieldModel for Box<T> {
    fn die_yield(&self, area: SquareCentimeters) -> Probability {
        (**self).die_yield(area)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maly_units::DefectDensity;

    #[test]
    fn trait_is_object_safe_and_blanket_impls_work() {
        let poisson = PoissonYield::new(DefectDensity::new(0.5).unwrap());
        let boxed: Box<dyn YieldModel> = Box::new(poisson);
        let area = SquareCentimeters::new(1.0).unwrap();
        assert_eq!(boxed.die_yield(area), poisson.die_yield(area));
        let by_ref: &dyn YieldModel = &poisson;
        assert_eq!(by_ref.die_yield(area), poisson.die_yield(area));
    }

    #[test]
    fn expected_good_dies_scales_with_gross() {
        let model = PoissonYield::new(DefectDensity::new(1.0).unwrap());
        let area = SquareCentimeters::new(1.0).unwrap();
        let expected = model.expected_good_dies(area, maly_units::DieCount::new(100));
        assert!((expected - 100.0 * (-1.0f64).exp()).abs() < 1e-9);
    }
}
