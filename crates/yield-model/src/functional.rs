//! Closed-form functional (spot-defect) yield models.

use maly_units::{DefectDensity, Microns, Probability, ReferenceDefectDensity, SquareCentimeters};

use crate::YieldModel;

/// Converts an "expected faults per die" exponent into a probability,
/// guarding against rounding excursions outside `[0, 1]`.
fn prob(value: f64) -> Probability {
    Probability::clamped(value)
}

/// The standard Poisson yield model, eq. (6): `Y = exp(−A_ch · D₀)`.
///
/// Assumes killing defects arrive independently and uniformly — the
/// simplest and most pessimistic of the classical models for a given
/// defect density.
///
/// # Examples
///
/// ```
/// use maly_units::{DefectDensity, SquareCentimeters};
/// use maly_yield_model::{PoissonYield, YieldModel};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let model = PoissonYield::new(DefectDensity::new(0.5)?);
/// let y = model.die_yield(SquareCentimeters::new(2.0)?);
/// assert!((y.value() - (-1.0f64).exp()).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PoissonYield {
    d0: DefectDensity,
}

impl PoissonYield {
    /// Creates a Poisson model with killing-defect density `d0`.
    #[must_use]
    pub fn new(d0: DefectDensity) -> Self {
        Self { d0 }
    }

    /// The defect density `D₀`.
    #[must_use]
    pub fn defect_density(&self) -> DefectDensity {
        self.d0
    }

    /// The defect density that explains an observed `(area, yield)` pair
    /// under Poisson statistics: `D₀ = −ln(Y)/A`.
    ///
    /// Returns `None` for `Y = 0` (infinite density) or `Y = 1`
    /// (zero density, which [`DefectDensity`] rejects — use
    /// [`PerfectYield`] instead).
    #[must_use]
    pub fn from_observation(area: SquareCentimeters, observed: Probability) -> Option<Self> {
        let y = observed.value();
        if y <= 0.0 || y >= 1.0 {
            return None;
        }
        DefectDensity::new(-y.ln() / area.value())
            .ok()
            .map(Self::new)
    }
}

impl YieldModel for PoissonYield {
    fn die_yield(&self, area: SquareCentimeters) -> Probability {
        prob((-self.d0.expected_defects(area)).exp())
    }
}

/// Murphy's yield model: `Y = ((1 − e^{−A·D}) / (A·D))²`.
///
/// Derived by averaging the Poisson model over a triangular distribution
/// of defect densities; less pessimistic than Poisson for large dies.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MurphyYield {
    d0: DefectDensity,
}

impl MurphyYield {
    /// Creates a Murphy model with killing-defect density `d0`.
    #[must_use]
    pub fn new(d0: DefectDensity) -> Self {
        Self { d0 }
    }

    /// The defect density `D₀`.
    #[must_use]
    pub fn defect_density(&self) -> DefectDensity {
        self.d0
    }
}

impl YieldModel for MurphyYield {
    fn die_yield(&self, area: SquareCentimeters) -> Probability {
        let ad = self.d0.expected_defects(area);
        if ad < 1e-12 {
            return Probability::ONE;
        }
        let base = (1.0 - (-ad).exp()) / ad;
        prob(base * base)
    }
}

/// Seeds' yield model: `Y = 1 / (1 + A·D)`.
///
/// The exponential-density-mixture limit; the most optimistic classical
/// model (equivalent to negative binomial with `α = 1`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeedsYield {
    d0: DefectDensity,
}

impl SeedsYield {
    /// Creates a Seeds model with killing-defect density `d0`.
    #[must_use]
    pub fn new(d0: DefectDensity) -> Self {
        Self { d0 }
    }

    /// The defect density `D₀`.
    #[must_use]
    pub fn defect_density(&self) -> DefectDensity {
        self.d0
    }
}

impl YieldModel for SeedsYield {
    fn die_yield(&self, area: SquareCentimeters) -> Probability {
        prob(1.0 / (1.0 + self.d0.expected_defects(area)))
    }
}

/// Stapper's negative-binomial yield model:
/// `Y = (1 + A·D/α)^{−α}`.
///
/// `α` is the clustering parameter: defects on real wafers cluster, which
/// *helps* yield (clustered defects waste fewer dies). `α → ∞` recovers
/// Poisson; `α = 1` recovers Seeds. Industrial values are typically 0.3–5.
///
/// # Examples
///
/// ```
/// use maly_units::{DefectDensity, SquareCentimeters};
/// use maly_yield_model::{NegativeBinomialYield, PoissonYield, YieldModel};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let d0 = DefectDensity::new(1.0)?;
/// let area = SquareCentimeters::new(2.0)?;
/// let clustered = NegativeBinomialYield::new(d0, 2.0)?;
/// let poisson = PoissonYield::new(d0);
/// assert!(clustered.die_yield(area) > poisson.die_yield(area));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NegativeBinomialYield {
    d0: DefectDensity,
    alpha: f64,
}

impl NegativeBinomialYield {
    /// Creates a negative-binomial model.
    ///
    /// # Errors
    ///
    /// Returns an error if `alpha` is not finite and positive.
    pub fn new(d0: DefectDensity, alpha: f64) -> Result<Self, maly_units::UnitError> {
        if !alpha.is_finite() || alpha <= 0.0 {
            return Err(maly_units::UnitError::NotPositive {
                quantity: "clustering parameter alpha",
                value: alpha,
            });
        }
        Ok(Self { d0, alpha })
    }

    /// The defect density `D₀`.
    #[must_use]
    pub fn defect_density(&self) -> DefectDensity {
        self.d0
    }

    /// The clustering parameter `α`.
    #[must_use]
    pub fn alpha(&self) -> f64 {
        self.alpha
    }
}

impl YieldModel for NegativeBinomialYield {
    fn die_yield(&self, area: SquareCentimeters) -> Probability {
        let ad = self.d0.expected_defects(area);
        prob((1.0 + ad / self.alpha).powf(-self.alpha))
    }
}

/// Eq. (7): the Poisson model with feature-size defect acceleration,
/// `Y = exp(−A_ch · D/λ^p)`.
///
/// The `1/R^p` tail of the defect size distribution (Fig. 5) means that
/// shrinking λ recruits previously harmless small defects as killers; the
/// effective density grows as `D/λ^p` (λ in µm, `D` in defects/cm² at
/// λ = 1 µm). Fig. 8 uses `D = 1.72`, `p = 4.07`, "extracted from a real
/// manufacturing operation".
///
/// With `A_ch = N_tr·d_d·λ²` this is exactly the printed
/// `Y = exp(−N_tr·d_d·D/λ^{p−2})` (the µm²→cm² conversion is absorbed
/// into `D`, as the paper's calibrated constants do).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScaledPoissonYield {
    d_ref: ReferenceDefectDensity,
    p: f64,
    lambda: Microns,
}

impl ScaledPoissonYield {
    /// Creates the eq. (7) model.
    ///
    /// `d_ref` is the defect density at λ = 1 µm; `p` the
    /// size-distribution exponent; `lambda` the minimum feature size.
    ///
    /// # Errors
    ///
    /// Returns an error unless `p > 2` is finite (`p ≤ 2` would make
    /// shrinking *reduce* the fault count, which contradicts the defect
    /// physics of Fig. 5).
    pub fn new(
        d_ref: ReferenceDefectDensity,
        p: f64,
        lambda: Microns,
    ) -> Result<Self, maly_units::UnitError> {
        if !p.is_finite() || p <= 2.0 {
            return Err(maly_units::UnitError::OutOfRange {
                quantity: "defect size exponent p",
                value: p,
                min: 2.0,
                max: f64::INFINITY,
            });
        }
        Ok(Self { d_ref, p, lambda })
    }

    /// The Fig. 8 `D = 1.72` reference defect density.
    pub const FIG8_D: ReferenceDefectDensity = ReferenceDefectDensity::const_new(1.72);
    /// The Fig. 8 `p = 4.07` defect size exponent.
    pub const FIG8_P: f64 = 4.07;

    /// The Fig. 8 calibration: `D = 1.72`, `p = 4.07`.
    ///
    /// # Errors
    ///
    /// Propagates constructor validation (never fails for the built-in
    /// constants; fallible because `lambda` combines with them).
    pub fn fig8_calibration(lambda: Microns) -> Result<Self, maly_units::UnitError> {
        Self::new(Self::FIG8_D, Self::FIG8_P, lambda)
    }

    /// Effective defect density `D/λ^p` at this model's feature size.
    #[must_use]
    pub fn effective_density(&self) -> DefectDensity {
        DefectDensity::clamped(self.d_ref.value() / self.lambda.value().powf(self.p))
    }

    /// The feature size λ.
    #[must_use]
    pub fn lambda(&self) -> Microns {
        self.lambda
    }

    /// The size-distribution exponent `p`.
    #[must_use]
    pub fn exponent(&self) -> f64 {
        self.p
    }

    /// Batched eq. (7): yields for a λ-slice of `(λ, die area)` points
    /// sharing one `(D, p)` calibration, evaluated in a single pass.
    ///
    /// A surface sweep constructs one [`ScaledPoissonYield`] *per grid
    /// cell* just to ask it a single yield; this entry point validates
    /// the calibration once and then runs the whole slice through the
    /// [`maly_lanes`] kernels: `λ^p` is reformulated in ln-space
    /// (`D/λ^p = exp(ln D − p·ln λ)`) so the per-point `powf` the
    /// scalar path pays disappears, and both `exp` steps run four
    /// points per lane block.
    ///
    /// **Accuracy contract** (the ln-space reassociation changes bits
    /// vs the scalar path, deliberately): each yield `Y` matches the
    /// scalar `Self::new(d_ref, p, λ)?.die_yield(area)` within a
    /// relative error of about `(1 + |ln Y|)·1e-14` — a handful of ulp
    /// for healthy yields, growing with the exponent magnitude as yield
    /// collapses, because `exp` amplifies its argument's rounding by
    /// `|ln Y|`. The bound is pinned by
    /// `batched_slice_matches_scalar_within_documented_ulps`. Callers
    /// needing bit-exactness use the scalar path.
    ///
    /// # Errors
    ///
    /// Same calibration validation as [`ScaledPoissonYield::new`].
    pub fn yields_for_slice(
        d_ref: ReferenceDefectDensity,
        p: f64,
        points: &[(Microns, SquareCentimeters)],
    ) -> Result<Vec<Probability>, maly_units::UnitError> {
        let mut ex = Self::ln_yields_for_slice(d_ref, p, points)?;
        maly_lanes::exp_slice(&mut ex);
        Ok(ex.into_iter().map(Probability::clamped).collect())
    }

    /// ln-space batched eq. (7): `ln Y = −A·D/λ^p` for each point, the
    /// accumulation form the eq. (8)/(9) composite yields want — a
    /// multi-partition product `Π Yᵢ` is `exp(Σ ln Yᵢ)`, one lane `exp`
    /// at the end instead of a rounding-accumulating chain of
    /// multiplies (and it cannot underflow partway through the
    /// product). [`Self::yields_for_slice`] is this followed by one
    /// lane `exp` pass.
    ///
    /// # Errors
    ///
    /// Same calibration validation as [`ScaledPoissonYield::new`].
    pub fn ln_yields_for_slice(
        d_ref: ReferenceDefectDensity,
        p: f64,
        points: &[(Microns, SquareCentimeters)],
    ) -> Result<Vec<f64>, maly_units::UnitError> {
        // Validate once through the scalar constructor (any λ works —
        // the checks only look at d_ref and p); points.is_empty() still
        // validates so a bad calibration never silently passes.
        const PROBE_LAMBDA: Microns = Microns::const_new(1.0);
        let _ = Self::new(d_ref, p, PROBE_LAMBDA)?;
        let ln_d = maly_lanes::ln_s(d_ref.value());
        let mut ex: Vec<f64> = points.iter().map(|&(lambda, _)| lambda.value()).collect();
        maly_lanes::ln_slice(&mut ex); // ln λ
        maly_lanes::scale_add_slice(&mut ex, -p, ln_d); // ln D − p·ln λ
        maly_lanes::exp_slice(&mut ex); // D/λ^p
        let areas: Vec<f64> = points.iter().map(|&(_, area)| area.value()).collect();
        maly_lanes::neg_mul_slice(&mut ex, &areas); // −A·D/λ^p = ln Y
        Ok(ex)
    }
}

impl YieldModel for ScaledPoissonYield {
    fn die_yield(&self, area: SquareCentimeters) -> Probability {
        PoissonYield::new(self.effective_density()).die_yield(area)
    }
}

/// The `Y = Y₀^{A_ch/A₀}` convention of eq. (9) and Table 3.
///
/// `Y₀` is the yield of a reference die of area `A₀` (1 cm² in the
/// paper). Algebraically identical to Poisson with
/// `D₀ = −ln(Y₀)/A₀`, but stated the way fab engineers quote yields.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AreaScaledYield {
    y0: Probability,
    a0: SquareCentimeters,
}

impl AreaScaledYield {
    /// Creates the model from a reference yield and reference area.
    #[must_use]
    pub fn new(y0: Probability, a0: SquareCentimeters) -> Self {
        Self { y0, a0 }
    }

    /// Reference area of 1 cm², the paper's `A₀`.
    #[must_use]
    pub fn per_square_centimeter(y0: Probability) -> Self {
        const A0: SquareCentimeters = SquareCentimeters::const_new(1.0);
        Self::new(y0, A0)
    }

    /// The reference yield `Y₀`.
    #[must_use]
    pub fn reference_yield(&self) -> Probability {
        self.y0
    }

    /// The reference area `A₀`.
    #[must_use]
    pub fn reference_area(&self) -> SquareCentimeters {
        self.a0
    }

    /// The equivalent Poisson defect density `−ln(Y₀)/A₀`, when defined
    /// (`0 < Y₀ < 1`).
    #[must_use]
    pub fn equivalent_poisson(&self) -> Option<PoissonYield> {
        PoissonYield::from_observation(self.a0, self.y0)
    }
}

impl YieldModel for AreaScaledYield {
    fn die_yield(&self, area: SquareCentimeters) -> Probability {
        self.y0.powf(area.value() / self.a0.value())
    }
}

/// The 100%-yield idealization of Scenario #1 (Assumption S1.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PerfectYield;

impl PerfectYield {
    /// Creates the perfect-yield model.
    #[must_use]
    pub fn new() -> Self {
        Self
    }
}

impl YieldModel for PerfectYield {
    fn die_yield(&self, _area: SquareCentimeters) -> Probability {
        Probability::ONE
    }
}

/// Product of a functional and a parametric yield model:
/// `Y = Y_fnc · Y_par` (Sec. III.C).
///
/// The parametric factor is area-independent here (global disturbances
/// affect the whole die equally), supplied as a fixed probability.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompositeYield<F> {
    functional: F,
    parametric: Probability,
}

impl<F: YieldModel> CompositeYield<F> {
    /// Combines a functional model with a parametric yield factor.
    #[must_use]
    pub fn new(functional: F, parametric: Probability) -> Self {
        Self {
            functional,
            parametric,
        }
    }

    /// The parametric factor `Y_par`.
    #[must_use]
    pub fn parametric_yield(&self) -> Probability {
        self.parametric
    }

    /// The functional component.
    #[must_use]
    pub fn functional(&self) -> &F {
        &self.functional
    }
}

impl<F: YieldModel> YieldModel for CompositeYield<F> {
    fn die_yield(&self, area: SquareCentimeters) -> Probability {
        self.functional.die_yield(area) * self.parametric
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn area(v: f64) -> SquareCentimeters {
        SquareCentimeters::new(v).unwrap()
    }

    fn density(v: f64) -> DefectDensity {
        DefectDensity::new(v).unwrap()
    }

    #[test]
    fn poisson_matches_eq6() {
        let y = PoissonYield::new(density(1.72)).die_yield(area(1.0));
        assert!((y.value() - (-1.72f64).exp()).abs() < 1e-12);
    }

    #[test]
    fn poisson_from_observation_roundtrips() {
        let model = PoissonYield::new(density(0.8));
        let observed = model.die_yield(area(2.5));
        let recovered = PoissonYield::from_observation(area(2.5), observed).unwrap();
        assert!((recovered.defect_density().value() - 0.8).abs() < 1e-9);
    }

    #[test]
    fn poisson_from_observation_rejects_degenerate() {
        assert!(PoissonYield::from_observation(area(1.0), Probability::ONE).is_none());
        assert!(PoissonYield::from_observation(area(1.0), Probability::ZERO).is_none());
    }

    #[test]
    fn classical_models_order_poisson_murphy_seeds() {
        // For any positive A·D: Poisson < Murphy < Seeds.
        let d0 = density(1.0);
        for a in [0.2, 1.0, 3.0] {
            let ar = area(a);
            let p = PoissonYield::new(d0).die_yield(ar).value();
            let m = MurphyYield::new(d0).die_yield(ar).value();
            let s = SeedsYield::new(d0).die_yield(ar).value();
            assert!(p < m && m < s, "ordering violated at A={a}: {p} {m} {s}");
        }
    }

    #[test]
    fn negative_binomial_limits() {
        let d0 = density(1.0);
        let ar = area(2.0);
        // α = 1 is exactly Seeds.
        let nb1 = NegativeBinomialYield::new(d0, 1.0).unwrap().die_yield(ar);
        let seeds = SeedsYield::new(d0).die_yield(ar);
        assert!((nb1.value() - seeds.value()).abs() < 1e-12);
        // α → ∞ approaches Poisson.
        let nb_inf = NegativeBinomialYield::new(d0, 1e6).unwrap().die_yield(ar);
        let poisson = PoissonYield::new(d0).die_yield(ar);
        assert!((nb_inf.value() - poisson.value()).abs() < 1e-5);
    }

    #[test]
    fn negative_binomial_rejects_bad_alpha() {
        let d0 = density(1.0);
        assert!(NegativeBinomialYield::new(d0, 0.0).is_err());
        assert!(NegativeBinomialYield::new(d0, -1.0).is_err());
        assert!(NegativeBinomialYield::new(d0, f64::NAN).is_err());
    }

    #[test]
    fn murphy_handles_tiny_ad_without_blowup() {
        let y = MurphyYield::new(density(1e-15)).die_yield(area(1e-3));
        assert_eq!(y, Probability::ONE);
    }

    #[test]
    fn scaled_poisson_matches_eq7_alias() {
        // Y = exp(−A_cm²·D/λ^p); with A = N_tr·d_d·λ²(µm²→cm² in D) this is
        // the printed exp(−N_tr·d_d·D/λ^{p−2}). Spot-check λ = 0.8 µm.
        let lam = Microns::new(0.8).unwrap();
        let model = ScaledPoissonYield::fig8_calibration(lam).unwrap();
        let d_eff = model.effective_density().value();
        assert!((d_eff - 1.72 / 0.8f64.powf(4.07)).abs() < 1e-9);
        let y = model.die_yield(area(1.0));
        assert!((y.value() - (-d_eff).exp()).abs() < 1e-12);
    }

    #[test]
    fn scaled_poisson_shrink_hurts_yield() {
        let a = area(1.0);
        let y_08 = ScaledPoissonYield::fig8_calibration(Microns::new(0.8).unwrap())
            .unwrap()
            .die_yield(a);
        let y_05 = ScaledPoissonYield::fig8_calibration(Microns::new(0.5).unwrap())
            .unwrap()
            .die_yield(a);
        assert!(y_05 < y_08);
    }

    #[test]
    fn scaled_poisson_validates_parameters() {
        let lam = Microns::new(0.8).unwrap();
        // A non-positive D never reaches the model: the newtype rejects it.
        assert!(ReferenceDefectDensity::new(0.0).is_err());
        let d = ReferenceDefectDensity::new(1.0).unwrap();
        assert!(ScaledPoissonYield::new(d, 2.0, lam).is_err());
        assert!(ScaledPoissonYield::new(d, 1.5, lam).is_err());
    }

    /// Re-pinned golden for the lane kernel (was bit-identity when the
    /// batch path shared the scalar operation order): the ln-space
    /// reformulation `exp(ln D − p·ln λ)` changes bits, so the contract
    /// is the documented relative bound `(1 + |ln Y|)·1e-14` instead —
    /// a few ulp at healthy yields, scaling with the exponent as yield
    /// collapses. Odd slice length exercises the lane tail.
    #[test]
    fn batched_slice_matches_scalar_within_documented_ulps() {
        let d = ScaledPoissonYield::FIG8_D;
        let points: Vec<(Microns, SquareCentimeters)> = (1..40)
            .map(|i| {
                let l = 0.3 + 0.03 * f64::from(i);
                (Microns::new(l).unwrap(), area(0.1 * f64::from(i)))
            })
            .collect();
        assert_eq!(points.len() % maly_lanes::WIDTH, 3, "want an odd tail");
        let batch = ScaledPoissonYield::yields_for_slice(d, 4.07, &points).unwrap();
        for (&(lam, a), got) in points.iter().zip(&batch) {
            let scalar = ScaledPoissonYield::new(d, 4.07, lam).unwrap().die_yield(a);
            let ln_y = -(d.value() / lam.value().powf(4.07)) * a.value();
            let tol = (1.0 + ln_y.abs()) * 1e-14 * scalar.value().max(f64::MIN_POSITIVE);
            assert!(
                (got.value() - scalar.value()).abs() <= tol,
                "λ = {lam:?}: lane {} vs scalar {} exceeds tol {tol:e}",
                got.value(),
                scalar.value()
            );
        }
    }

    /// Randomized property: the batch kernel tracks the scalar
    /// reference across the whole calibration space and at every slice
    /// length modulo the lane width.
    #[test]
    fn batched_slice_property_randomized_inputs_and_lengths() {
        use crate::prng::UniformSource as _;
        let mut rng = crate::prng::Xoshiro256PlusPlus::seed_from_u64(0xfeed);
        for len in [1usize, 2, 3, 4, 5, 6, 7, 8, 9, 31] {
            let d = ReferenceDefectDensity::new(0.2 + 3.0 * rng.next_f64()).unwrap();
            let p = 2.5 + 2.5 * rng.next_f64();
            let points: Vec<(Microns, SquareCentimeters)> = (0..len)
                .map(|_| {
                    (
                        Microns::new(0.3 + 2.7 * rng.next_f64()).unwrap(),
                        area(0.05 + 5.0 * rng.next_f64()),
                    )
                })
                .collect();
            let batch = ScaledPoissonYield::yields_for_slice(d, p, &points).unwrap();
            assert_eq!(batch.len(), len);
            for (&(lam, a), got) in points.iter().zip(&batch) {
                let scalar = ScaledPoissonYield::new(d, p, lam).unwrap().die_yield(a);
                let ln_y = -(d.value() / lam.value().powf(p)) * a.value();
                let tol = (1.0 + ln_y.abs()) * 1e-14 * scalar.value().max(f64::MIN_POSITIVE);
                assert!(
                    (got.value() - scalar.value()).abs() <= tol,
                    "len {len}, λ = {lam:?}"
                );
            }
        }
    }

    /// The eq. (8)/(9) accumulation form: a composite product `Π Yᵢ`
    /// computed as `exp(Σ ln Yᵢ)` matches the multiply chain.
    #[test]
    fn ln_space_product_matches_multiplied_yields() {
        let d = ScaledPoissonYield::FIG8_D;
        let points: Vec<(Microns, SquareCentimeters)> = (1..12)
            .map(|i| (Microns::new(0.8).unwrap(), area(0.3 * f64::from(i))))
            .collect();
        let ln_ys = ScaledPoissonYield::ln_yields_for_slice(d, 4.07, &points).unwrap();
        let product_ln_space = maly_lanes::exp_s(ln_ys.iter().sum());
        let product_direct: f64 = ScaledPoissonYield::yields_for_slice(d, 4.07, &points)
            .unwrap()
            .iter()
            .map(|y| y.value())
            .product();
        assert!(
            (product_ln_space - product_direct).abs()
                <= 1e-12 * product_direct.max(f64::MIN_POSITIVE),
            "{product_ln_space} vs {product_direct}"
        );
    }

    #[test]
    fn batched_slice_validates_calibration_even_when_empty() {
        let d = ReferenceDefectDensity::new(1.0).unwrap();
        assert!(ScaledPoissonYield::yields_for_slice(d, 1.5, &[]).is_err());
        assert!(
            ScaledPoissonYield::yields_for_slice(ScaledPoissonYield::FIG8_D, 4.07, &[])
                .unwrap()
                .is_empty()
        );
    }

    #[test]
    fn area_scaled_matches_table3_row2() {
        let model = AreaScaledYield::per_square_centimeter(Probability::new(0.7).unwrap());
        let y = model.die_yield(area(2.976));
        assert!((y.value() - 0.7f64.powf(2.976)).abs() < 1e-12);
    }

    #[test]
    fn area_scaled_reference_area_yields_y0() {
        let y0 = Probability::new(0.9).unwrap();
        let model = AreaScaledYield::per_square_centimeter(y0);
        assert_eq!(model.die_yield(area(1.0)), y0);
    }

    #[test]
    fn area_scaled_equivalent_poisson_agrees() {
        let model = AreaScaledYield::per_square_centimeter(Probability::new(0.7).unwrap());
        let poisson = model.equivalent_poisson().unwrap();
        for a in [0.3, 1.0, 2.976, 4.785] {
            let ya = model.die_yield(area(a)).value();
            let yp = poisson.die_yield(area(a)).value();
            assert!((ya - yp).abs() < 1e-12, "mismatch at {a}");
        }
    }

    #[test]
    fn perfect_yield_is_one_everywhere() {
        assert_eq!(PerfectYield::new().die_yield(area(100.0)), Probability::ONE);
    }

    #[test]
    fn composite_multiplies_factors() {
        let fnc = PoissonYield::new(density(0.5));
        let combo = CompositeYield::new(fnc, Probability::new(0.9).unwrap());
        let a = area(1.0);
        let expected = fnc.die_yield(a).value() * 0.9;
        assert!((combo.die_yield(a).value() - expected).abs() < 1e-12);
        assert_eq!(combo.parametric_yield().value(), 0.9);
    }
}
