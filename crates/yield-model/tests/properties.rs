//! Property-style tests for the yield models.
//!
//! The workspace builds offline with no external crates, so instead of
//! proptest strategies these properties are checked over deterministic
//! pseudo-random samples drawn from the crate's own [`prng`] module.

use maly_units::{DefectDensity, Microns, Probability, SquareCentimeters};
use maly_yield_model::prng::{UniformSource, Xoshiro256PlusPlus};
use maly_yield_model::{
    defects::DefectSizeDistribution, redundancy::RedundantArrayYield, AreaScaledYield, MurphyYield,
    NegativeBinomialYield, PoissonYield, ScaledPoissonYield, SeedsYield, YieldModel,
};

const CASES: usize = 128;

fn uniform<R: UniformSource>(rng: &mut R, lo: f64, hi: f64) -> f64 {
    lo + (hi - lo) * rng.next_f64()
}

fn density<R: UniformSource>(rng: &mut R) -> DefectDensity {
    DefectDensity::new(uniform(rng, 0.01, 5.0)).unwrap()
}

fn area<R: UniformSource>(rng: &mut R) -> SquareCentimeters {
    SquareCentimeters::new(uniform(rng, 0.05, 10.0)).unwrap()
}

/// Every closed-form model maps any area to a valid probability and is
/// monotonically non-increasing in area.
#[test]
fn models_are_valid_and_monotone() {
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(701);
    for _ in 0..CASES {
        let d0 = density(&mut rng);
        let a = area(&mut rng);
        let extra = uniform(&mut rng, 0.01, 5.0);
        let larger = SquareCentimeters::new(a.value() + extra).unwrap();
        let models: Vec<Box<dyn YieldModel>> = vec![
            Box::new(PoissonYield::new(d0)),
            Box::new(MurphyYield::new(d0)),
            Box::new(SeedsYield::new(d0)),
            Box::new(NegativeBinomialYield::new(d0, 2.0).unwrap()),
        ];
        for m in &models {
            let y_small = m.die_yield(a);
            let y_large = m.die_yield(larger);
            assert!((0.0..=1.0).contains(&y_small.value()));
            assert!(y_large <= y_small);
        }
    }
}

/// Classical ordering: Poisson ≤ Murphy ≤ Seeds for any (D, A).
#[test]
fn classical_ordering_holds() {
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(702);
    for _ in 0..CASES {
        let d0 = density(&mut rng);
        let a = area(&mut rng);
        let p = PoissonYield::new(d0).die_yield(a).value();
        let m = MurphyYield::new(d0).die_yield(a).value();
        let s = SeedsYield::new(d0).die_yield(a).value();
        assert!(p <= m + 1e-12);
        assert!(m <= s + 1e-12);
    }
}

/// Negative binomial interpolates between Seeds (α=1) and Poisson (α→∞),
/// monotonically in α.
#[test]
fn negative_binomial_monotone_in_alpha() {
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(703);
    for _ in 0..CASES {
        let d0 = density(&mut rng);
        let a = area(&mut rng);
        let alpha = uniform(&mut rng, 1.0, 50.0);
        let step = uniform(&mut rng, 0.1, 10.0);
        let y_lo = NegativeBinomialYield::new(d0, alpha)
            .unwrap()
            .die_yield(a)
            .value();
        let y_hi = NegativeBinomialYield::new(d0, alpha + step)
            .unwrap()
            .die_yield(a)
            .value();
        assert!(y_hi <= y_lo + 1e-12, "yield must decrease toward Poisson");
        let seeds = SeedsYield::new(d0).die_yield(a).value();
        let poisson = PoissonYield::new(d0).die_yield(a).value();
        assert!(y_lo <= seeds + 1e-12);
        assert!(y_lo >= poisson - 1e-12);
    }
}

/// Area-scaled (eq. 9) and its equivalent Poisson agree everywhere.
#[test]
fn area_scaled_equals_equivalent_poisson() {
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(704);
    for _ in 0..CASES {
        let y0 = uniform(&mut rng, 0.05, 0.99);
        let a = area(&mut rng);
        let model = AreaScaledYield::per_square_centimeter(Probability::new(y0).unwrap());
        let poisson = model.equivalent_poisson().unwrap();
        let diff = (model.die_yield(a).value() - poisson.die_yield(a).value()).abs();
        assert!(diff < 1e-10);
    }
}

/// Eq. (7): yield strictly degrades as λ shrinks, all else equal.
#[test]
fn scaled_poisson_monotone_in_lambda() {
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(705);
    for _ in 0..CASES {
        let a = area(&mut rng);
        let lam = uniform(&mut rng, 0.2, 1.5);
        let shrink = uniform(&mut rng, 0.5, 0.95);
        let big = ScaledPoissonYield::fig8_calibration(Microns::new(lam).unwrap()).unwrap();
        let small =
            ScaledPoissonYield::fig8_calibration(Microns::new(lam * shrink).unwrap()).unwrap();
        assert!(small.die_yield(a) <= big.die_yield(a));
    }
}

/// Redundancy never hurts, and more spares never hurt.
#[test]
fn spares_are_monotone() {
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(706);
    for _ in 0..CASES {
        let d0 = density(&mut rng);
        let a = area(&mut rng);
        let spares = (rng.next_u64() % 8) as u32;
        let base = PoissonYield::new(d0);
        let fewer = RedundantArrayYield::new(base, 32, spares, 0.1).unwrap();
        let more = RedundantArrayYield::new(base, 32, spares + 1, 0.1).unwrap();
        assert!(more.die_yield(a) >= fewer.die_yield(a));
    }
}

/// Defect size distribution: CDF is a valid, monotone CDF and the
/// survival function complements it.
#[test]
fn defect_cdf_properties() {
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(707);
    for _ in 0..CASES {
        let r0 = uniform(&mut rng, 0.1, 2.0);
        let p = uniform(&mut rng, 2.5, 6.0);
        let r = uniform(&mut rng, 0.01, 20.0);
        let dist = DefectSizeDistribution::classic(Microns::new(r0).unwrap(), p).unwrap();
        let radius = Microns::new(r).unwrap();
        let c = dist.cdf(radius);
        assert!((0.0..=1.0 + 1e-9).contains(&c));
        assert!((c + dist.fraction_larger_than(radius) - 1.0).abs() < 1e-9);
        // CDF monotone.
        let c2 = dist.cdf(Microns::new(r * 1.5).unwrap());
        assert!(c2 >= c - 1e-12);
    }
}

/// Shrinking the fatal threshold always recruits more defects.
#[test]
fn shrink_recruitment_at_least_one() {
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(708);
    for _ in 0..CASES {
        let r0 = uniform(&mut rng, 0.1, 1.0);
        let p = uniform(&mut rng, 2.5, 6.0);
        let lam = uniform(&mut rng, 0.3, 1.5);
        let shrink = uniform(&mut rng, 0.3, 0.99);
        let dist = DefectSizeDistribution::classic(Microns::new(r0).unwrap(), p).unwrap();
        let from = Microns::new(lam).unwrap();
        let to = Microns::new(lam * shrink).unwrap();
        assert!(dist.shrink_recruitment(from, to, 0.5) >= 1.0 - 1e-12);
    }
}
