//! Property-based tests for the yield models.

use maly_units::{DefectDensity, Microns, Probability, SquareCentimeters};
use maly_yield_model::{
    defects::DefectSizeDistribution, redundancy::RedundantArrayYield, AreaScaledYield, MurphyYield,
    NegativeBinomialYield, PoissonYield, ScaledPoissonYield, SeedsYield, YieldModel,
};
use proptest::prelude::*;

fn density() -> impl Strategy<Value = DefectDensity> {
    (0.01f64..5.0).prop_map(|v| DefectDensity::new(v).unwrap())
}

fn area() -> impl Strategy<Value = SquareCentimeters> {
    (0.05f64..10.0).prop_map(|v| SquareCentimeters::new(v).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every closed-form model maps any area to a valid probability and is
    /// monotonically non-increasing in area.
    #[test]
    fn models_are_valid_and_monotone(d0 in density(), a in area(), extra in 0.01f64..5.0) {
        let larger = SquareCentimeters::new(a.value() + extra).unwrap();
        let models: Vec<Box<dyn YieldModel>> = vec![
            Box::new(PoissonYield::new(d0)),
            Box::new(MurphyYield::new(d0)),
            Box::new(SeedsYield::new(d0)),
            Box::new(NegativeBinomialYield::new(d0, 2.0).unwrap()),
        ];
        for m in &models {
            let y_small = m.die_yield(a);
            let y_large = m.die_yield(larger);
            prop_assert!((0.0..=1.0).contains(&y_small.value()));
            prop_assert!(y_large <= y_small);
        }
    }

    /// Classical ordering: Poisson ≤ Murphy ≤ Seeds for any (D, A).
    #[test]
    fn classical_ordering_holds(d0 in density(), a in area()) {
        let p = PoissonYield::new(d0).die_yield(a).value();
        let m = MurphyYield::new(d0).die_yield(a).value();
        let s = SeedsYield::new(d0).die_yield(a).value();
        prop_assert!(p <= m + 1e-12);
        prop_assert!(m <= s + 1e-12);
    }

    /// Negative binomial interpolates between Seeds (α=1) and Poisson (α→∞),
    /// monotonically in α.
    #[test]
    fn negative_binomial_monotone_in_alpha(d0 in density(), a in area(),
                                           alpha in 1.0f64..50.0, step in 0.1f64..10.0) {
        let y_lo = NegativeBinomialYield::new(d0, alpha).unwrap().die_yield(a).value();
        let y_hi = NegativeBinomialYield::new(d0, alpha + step).unwrap().die_yield(a).value();
        prop_assert!(y_hi <= y_lo + 1e-12, "yield must decrease toward Poisson");
        let seeds = SeedsYield::new(d0).die_yield(a).value();
        let poisson = PoissonYield::new(d0).die_yield(a).value();
        prop_assert!(y_lo <= seeds + 1e-12);
        prop_assert!(y_lo >= poisson - 1e-12);
    }

    /// Area-scaled (eq. 9) and its equivalent Poisson agree everywhere.
    #[test]
    fn area_scaled_equals_equivalent_poisson(y0 in 0.05f64..0.99, a in area()) {
        let model = AreaScaledYield::per_square_centimeter(Probability::new(y0).unwrap());
        let poisson = model.equivalent_poisson().unwrap();
        let diff = (model.die_yield(a).value() - poisson.die_yield(a).value()).abs();
        prop_assert!(diff < 1e-10);
    }

    /// Eq. (7): yield strictly degrades as λ shrinks, all else equal.
    #[test]
    fn scaled_poisson_monotone_in_lambda(a in area(), lam in 0.2f64..1.5, shrink in 0.5f64..0.95) {
        let big = ScaledPoissonYield::fig8_calibration(Microns::new(lam).unwrap()).unwrap();
        let small =
            ScaledPoissonYield::fig8_calibration(Microns::new(lam * shrink).unwrap()).unwrap();
        prop_assert!(small.die_yield(a) <= big.die_yield(a));
    }

    /// Redundancy never hurts, and more spares never hurt.
    #[test]
    fn spares_are_monotone(d0 in density(), a in area(), spares in 0u32..8) {
        let base = PoissonYield::new(d0);
        let fewer = RedundantArrayYield::new(base, 32, spares, 0.1).unwrap();
        let more = RedundantArrayYield::new(base, 32, spares + 1, 0.1).unwrap();
        prop_assert!(more.die_yield(a) >= fewer.die_yield(a));
    }

    /// Defect size distribution: CDF is a valid, monotone CDF and the
    /// survival function complements it.
    #[test]
    fn defect_cdf_properties(r0 in 0.1f64..2.0, p in 2.5f64..6.0, r in 0.01f64..20.0) {
        let dist = DefectSizeDistribution::classic(Microns::new(r0).unwrap(), p).unwrap();
        let radius = Microns::new(r).unwrap();
        let c = dist.cdf(radius);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&c));
        prop_assert!((c + dist.fraction_larger_than(radius) - 1.0).abs() < 1e-9);
        // CDF monotone.
        let c2 = dist.cdf(Microns::new(r * 1.5).unwrap());
        prop_assert!(c2 >= c - 1e-12);
    }

    /// Shrinking the fatal threshold always recruits more defects.
    #[test]
    fn shrink_recruitment_at_least_one(r0 in 0.1f64..1.0, p in 2.5f64..6.0,
                                       lam in 0.3f64..1.5, shrink in 0.3f64..0.99) {
        let dist = DefectSizeDistribution::classic(Microns::new(r0).unwrap(), p).unwrap();
        let from = Microns::new(lam).unwrap();
        let to = Microns::new(lam * shrink).unwrap();
        prop_assert!(dist.shrink_recruitment(from, to, 0.5) >= 1.0 - 1e-12);
    }
}
