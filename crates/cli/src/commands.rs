//! Subcommand implementations (pure: return strings, no printing).
//!
//! Every model evaluation goes through [`maly_model::Query`] — the
//! workspace's one sanctioned entry point — rather than wiring the CLI
//! to individual model crates. The `wafer` command is the exception:
//! it is pure geometry (die placement), not a cost-model evaluation,
//! and stays on `maly-wafer-geom` directly.

use maly_model::json::Json;
use maly_model::query::{ProductSpec, Query, QueryResponse};
use maly_model::EvalContext;
use maly_par::Executor;
use maly_serve::{client, protocol, ServeConfig, Server};
use maly_units::{Centimeters, SquareCentimeters};
use maly_viz::lineplot::LinePlot;
use maly_viz::table::{Alignment, TextTable};
use maly_viz::wafermap::{render_wafer, DieRect};
use maly_wafer_geom::{approx, maly, raster::RasterPlacement, DieDimensions, Wafer};

use crate::args::Flags;

/// Usage text.
#[must_use]
pub fn usage() -> String {
    "\
silicon-cost — transistor cost modeling after Maly, DAC 1994

USAGE:
  silicon-cost cost     --transistors N --lambda UM --density DD \\
                        --yield Y0 --c0 DOLLARS --x X [--radius CM]
  silicon-cost sweep    <cost flags> [--from UM] [--to UM] [--steps N]
  silicon-cost optimize <cost flags> [--from UM] [--to UM]
  silicon-cost wafer    --die-area CM2 [--radius CM] [--map]
  silicon-cost mix      [--products N] [--volume WAFERS] [--mono-volume WAFERS]
  silicon-cost chiplet  --transistors N [--volume SYSTEMS] [--from UM] [--to UM] \\
                        [--steps N] [--max-chiplets N] [--max-spares N]
  silicon-cost roadmap  [--from YEAR] [--to YEAR]
  silicon-cost table3
  silicon-cost serve    [--addr HOST:PORT] [--threads N]
  silicon-cost query    --file REQ.JSONL [--addr HOST:PORT]
  silicon-cost stats    --addr HOST:PORT
  silicon-cost help

serve answers line-delimited JSON queries over TCP (see DESIGN.md §10);
query sends the request lines in a file to a server — or, without
--addr, evaluates them in-process — and prints one response line each.
stats asks a live server for its metrics snapshot (work/diag counters,
gauges, latency percentiles) and prints it as one stats ndjson record,
appendable to a trace file for `xtask trace-check`.
chiplet searches multi-die partitions of an N-transistor system (die
size × chiplet count × spares over a λ window) for the cheapest
$/system on the fig8 MCM calibration (see DESIGN.md §15).
Every command also accepts --trace-out FILE: enable maly-obs and write
an ndjson trace (spans, counters, histograms) of the run to FILE.
Batched queries (JSON-array lines, sweep, query --file) compile to an
evaluation plan that dedups and fuses shared grid work across requests;
set MALY_PLAN=0 to evaluate each query independently (bit-identical
output either way).
All dollars are 1994 dollars; λ is the minimum feature size in µm."
        .to_string()
}

/// Dispatches a full argv (without the program name).
pub fn run(argv: &[String]) -> Result<String, String> {
    let Some((command, rest)) = argv.split_first() else {
        return Err("no command given".to_string());
    };
    let flags = Flags::parse(rest)?;
    let trace_out = flags.str_opt("trace-out").map(std::path::PathBuf::from);
    if trace_out.is_some() {
        maly_obs::set_enabled(true);
    }
    let output = {
        let _span = maly_obs::span(command_span_name(command));
        match command.as_str() {
            "cost" => cost(&flags),
            "sweep" => sweep(&flags),
            "optimize" => optimize(&flags),
            "wafer" => wafer(&flags),
            "mix" => mix(&flags),
            "chiplet" => chiplet(&flags),
            "roadmap" => roadmap(&flags),
            "table3" => table3(),
            "serve" => serve(&flags),
            "query" => query(&flags),
            "stats" => stats(&flags),
            "help" | "--help" | "-h" => Ok(usage()),
            other => Err(format!("unknown command `{other}`")),
        }
    };
    match trace_out {
        Some(path) => maly_obs::write_trace(&path)
            .map_err(|e| format!("writing trace {}: {e}", path.display()))?,
        None => {
            // No flag: still honor MALY_OBS_OUT for env-driven tracing.
            maly_obs::write_trace_if_requested().map_err(|e| format!("writing trace: {e}"))?;
        }
    }
    output
}

/// Static span name for the top-level command (span names are
/// `&'static str` by design — no per-run allocation).
fn command_span_name(command: &str) -> &'static str {
    match command {
        "cost" => "cli.cost",
        "sweep" => "cli.sweep",
        "optimize" => "cli.optimize",
        "wafer" => "cli.wafer",
        "mix" => "cli.mix",
        "chiplet" => "cli.chiplet",
        "roadmap" => "cli.roadmap",
        "table3" => "cli.table3",
        "serve" => "cli.serve",
        "query" => "cli.query",
        "stats" => "cli.stats",
        _ => "cli.run",
    }
}

fn spec_from(flags: &Flags) -> Result<ProductSpec, String> {
    Ok(ProductSpec {
        name: "cli".to_string(),
        transistors: flags.require_f64("transistors")?,
        lambda_um: flags.require_f64("lambda")?,
        density: flags.require_f64("density")?,
        radius_cm: flags.f64_or("radius", 7.5)?,
        yield0: flags.require_f64("yield")?,
        c0: flags.require_f64("c0")?,
        x: flags.require_f64("x")?,
    })
}

fn evaluate(query: &Query) -> Result<QueryResponse, String> {
    query.evaluate().map_err(|e| e.to_string())
}

fn cost(flags: &Flags) -> Result<String, String> {
    let QueryResponse::Product(r) = evaluate(&Query::Product(spec_from(flags)?))? else {
        return Err("unexpected response kind".to_string());
    };
    let mut t = TextTable::new(vec!["quantity", "value"]);
    t.align(1, Alignment::Right);
    t.row(vec![
        "die area".into(),
        format!("{:.3} cm²", r.die_area_cm2),
    ]);
    t.row(vec![
        "wafer cost C_w".into(),
        format!("{:.0} $", r.wafer_cost),
    ]);
    t.row(vec![
        "dies per wafer N_ch".into(),
        format!("{}", r.dies_per_wafer),
    ]);
    t.row(vec![
        "die yield Y".into(),
        format!("{:.1}%", r.die_yield * 100.0),
    ]);
    t.row(vec![
        "good dies per wafer".into(),
        format!("{:.1}", r.good_dies_per_wafer),
    ]);
    t.row(vec![
        "cost per good die".into(),
        format!("{:.2} $", r.cost_per_good_die),
    ]);
    t.row(vec![
        "cost per transistor".into(),
        format!("{:.2} µ$", r.cost_per_transistor_micro),
    ]);
    Ok(t.render())
}

fn sweep(flags: &Flags) -> Result<String, String> {
    let spec = spec_from(flags)?;
    let from = flags.f64_or("from", 0.3)?;
    let to = flags.f64_or("to", 1.2)?;
    let steps = flags.usize_or("steps", 40)?;
    if !(from > 0.0 && from < to) || steps < 2 {
        return Err(format!("bad sweep window {from}..{to} ({steps} steps)"));
    }
    // One Product query per node, batched across the executor exactly
    // like a wire-protocol batch line. Infeasible nodes (die too large,
    // yield collapsed) drop out of the plot rather than failing it.
    let queries: Vec<Query> = (0..steps)
        .map(|i| {
            let l = from + (to - from) * i as f64 / (steps - 1) as f64;
            Query::Product(ProductSpec {
                lambda_um: l,
                ..spec.clone()
            })
        })
        .collect();
    let results = Query::evaluate_batch(&Executor::from_env(), EvalContext::process(), &queries);
    let series: Vec<(f64, f64)> = queries
        .iter()
        .zip(results)
        .filter_map(|(q, r)| match (q, r) {
            (Query::Product(spec), Ok(QueryResponse::Product(p))) => {
                Some((spec.lambda_um, p.cost_per_transistor_micro))
            }
            _ => None,
        })
        .collect();
    if series.is_empty() {
        return Err("no feasible point in the sweep window".to_string());
    }
    Ok(LinePlot::new("cost per transistor vs feature size")
        .with_series("C_tr [µ$]", &series)
        .with_labels("λ [µm]", "µ$")
        .log_y()
        .render(76, 22))
}

fn optimize(flags: &Flags) -> Result<String, String> {
    let spec = spec_from(flags)?;
    let from = flags.f64_or("from", 0.3)?;
    let to = flags.f64_or("to", 1.2)?;
    let QueryResponse::OptimalLambda(best) = evaluate(&Query::OptimalLambda {
        spec,
        lambda_min: from,
        lambda_max: to,
        steps: 481,
    })?
    else {
        return Err("unexpected response kind".to_string());
    };
    let best = best.ok_or("no feasible feature size in the window")?;
    Ok(format!(
        "optimal feature size: {:.3} µm  (C_tr = {:.2} µ$)",
        best.lambda_um,
        best.cost_per_transistor * 1.0e6
    ))
}

fn wafer(flags: &Flags) -> Result<String, String> {
    let area = SquareCentimeters::new(flags.require_f64("die-area")?).map_err(|e| e.to_string())?;
    let radius = Centimeters::new(flags.f64_or("radius", 7.5)?).map_err(|e| e.to_string())?;
    let wafer = Wafer::with_radius(radius);
    let die = DieDimensions::square_with_area(area);
    let eq4 = maly::dies_per_wafer(&wafer, die);
    let map = RasterPlacement::default().place(&wafer, die);
    let mut t = TextTable::new(vec!["method", "dies per wafer"]);
    t.align(1, Alignment::Right);
    t.row(vec![
        "eq. (4) row packing".into(),
        format!("{}", eq4.value()),
    ]);
    t.row(vec![
        "rigid raster (optimized)".into(),
        format!("{}", map.count().value()),
    ]);
    t.row(vec![
        "gross bound πR²/A".into(),
        format!("{:.1}", approx::gross_estimate(&wafer, die)),
    ]);
    t.row(vec![
        "edge-corrected estimate".into(),
        format!("{:.1}", approx::edge_corrected_estimate(&wafer, die)),
    ]);
    t.row(vec![
        "silicon utilization".into(),
        format!("{:.1}%", map.utilization() * 100.0),
    ]);
    let mut out = t.render();
    if flags.has_switch("map") {
        let dies: Vec<DieRect> = map
            .sites()
            .iter()
            .map(|s| DieRect {
                center_x: s.center_x,
                center_y: s.center_y,
                width: die.width().value(),
                height: die.height().value(),
            })
            .collect();
        out.push_str("\n\n");
        out.push_str(&render_wafer(radius.value(), &dies, 60));
    }
    Ok(out)
}

fn mix(flags: &Flags) -> Result<String, String> {
    let QueryResponse::ProductMix(study) = evaluate(&Query::ProductMix {
        products: flags.usize_or("products", 8)?,
        volume_each: flags.f64_or("volume", 1_000.0)?,
        mono_volume: flags.f64_or("mono-volume", 100_000.0)?,
    })?
    else {
        return Err("unexpected response kind".to_string());
    };
    let mut t = TextTable::new(vec!["quantity", "value"]);
    t.align(1, Alignment::Right);
    t.row(vec![
        "mono-product wafer cost".into(),
        format!("{:.0} $", study.mono_cost),
    ]);
    t.row(vec![
        "multi-product wafer cost".into(),
        format!("{:.0} $", study.multi_cost),
    ]);
    t.row(vec![
        "penalty ratio".into(),
        format!("{:.2}×", study.cost_ratio),
    ]);
    t.row(vec![
        "mono productive utilization".into(),
        format!("{:.0}%", study.mono_utilization * 100.0),
    ]);
    t.row(vec![
        "multi productive utilization".into(),
        format!("{:.0}%", study.multi_utilization * 100.0),
    ]);
    Ok(t.render())
}

fn chiplet(flags: &Flags) -> Result<String, String> {
    let QueryResponse::ChipletSweep(sweep) = evaluate(&Query::ChipletPartitionSweep {
        transistors: flags.require_f64("transistors")?,
        volume: flags.usize_or("volume", 100_000)? as u64,
        lambda_min: flags.f64_or("from", 0.5)?,
        lambda_max: flags.f64_or("to", 1.2)?,
        lambda_steps: flags.usize_or("steps", 15)?,
        max_chiplets: flags.usize_or("max-chiplets", 8)?,
        max_spares: flags.usize_or("max-spares", 1)?,
    })?
    else {
        return Err("unexpected response kind".to_string());
    };
    let mut t = TextTable::new(vec![
        "chiplets",
        "spares",
        "λ [µm]",
        "N_tr/die",
        "KGD die [$]",
        "Y_sys",
        "$/system",
    ]);
    for col in 1..7 {
        t.align(col, Alignment::Right);
    }
    for r in &sweep.per_chiplet_count {
        t.row(vec![
            format!("{}", r.chiplets),
            format!("{}", r.spares),
            format!("{:.3}", r.lambda_um),
            format!("{:.2e}", r.transistors_per_chiplet),
            format!("{:.2}", r.known_good_die_cost),
            format!("{:.3}", r.system_yield),
            format!("{:.2}", r.cost_per_system),
        ]);
    }
    let best = &sweep.best;
    let mut out = t.render();
    out.push_str(&format!(
        "\n\nbest partition: {} chiplet(s) + {} spare(s) at λ = {:.3} µm \
         → {:.2} $/system  ({} of {} candidates feasible)",
        best.chiplets,
        best.spares,
        best.lambda_um,
        best.cost_per_system,
        sweep.feasible,
        sweep.evaluated,
    ));
    Ok(out)
}

fn roadmap(flags: &Flags) -> Result<String, String> {
    let from = flags.usize_or("from", 1986)? as u32;
    let to = flags.usize_or("to", 2002)? as u32;
    let QueryResponse::Roadmap(rows) = evaluate(&Query::Roadmap { from, to })? else {
        return Err("unexpected response kind".to_string());
    };
    let mut t = TextTable::new(vec![
        "year",
        "λ [µm]",
        "Scenario #1 [µ$/tr]",
        "Scenario #2 [µ$/tr]",
    ]);
    for col in 1..4 {
        t.align(col, Alignment::Right);
    }
    for r in &rows {
        t.row(vec![
            format!("{:.0}", r.year),
            format!("{:.2}", r.lambda_um),
            format!("{:.3}", r.optimistic_micro),
            format!("{:.2}", r.realistic_micro),
        ]);
    }
    let mut out = t.render();
    if let Some(year) = maly_model::shared()
        .roadmap
        .realistic_turning_year(from, to)
        .map_err(|e| e.to_string())?
    {
        out.push_str(&format!(
            "\n\nScenario #2 cost bottoms out around {year} and rises afterwards."
        ));
    }
    Ok(out)
}

fn table3() -> Result<String, String> {
    let QueryResponse::Table3(rows) = evaluate(&Query::Table3)? else {
        return Err("unexpected response kind".to_string());
    };
    let mut t = TextTable::new(vec!["#", "IC type", "paper [µ$]", "model [µ$]"]);
    t.align(2, Alignment::Right);
    t.align(3, Alignment::Right);
    for r in &rows {
        t.row(vec![
            format!("{}", r.id),
            r.name.clone(),
            format!("{:.2}", r.paper_micro_dollars),
            format!("{:.2}", r.model_micro_dollars),
        ]);
    }
    Ok(t.render())
}

fn serve(flags: &Flags) -> Result<String, String> {
    let addr = flags.str_opt("addr").unwrap_or("127.0.0.1:7878");
    let threads = flags.usize_or("threads", 2)?;
    let server =
        Server::bind(ServeConfig::bind(addr).workers(threads)).map_err(|e| e.to_string())?;
    let bound = server.local_addr().map_err(|e| e.to_string())?;
    // Announce the bound address before blocking — with `:0` the picked
    // port is unknowable otherwise.
    println!("serving on {bound} with {threads} worker threads (ctrl-c to stop)");
    server.serve(&Executor::from_env());
    Ok(format!("server on {bound} stopped"))
}

fn query(flags: &Flags) -> Result<String, String> {
    let path = flags
        .str_opt("file")
        .ok_or("missing required flag --file")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let lines: Vec<String> = text
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty())
        .map(str::to_string)
        .collect();
    if lines.is_empty() {
        return Err(format!("no request lines in {path}"));
    }
    let responses = match flags.str_opt("addr") {
        Some(addr) => client::query_lines(addr, &lines).map_err(|e| e.to_string())?,
        None => {
            // No server: evaluate in-process through the same protocol
            // path, so offline output is byte-identical to served output.
            let exec = Executor::from_env();
            let ctx = EvalContext::process();
            lines
                .iter()
                .map(|l| protocol::handle_line(&exec, ctx, l))
                .collect()
        }
    };
    Ok(responses.join("\n"))
}

fn stats(flags: &Flags) -> Result<String, String> {
    let addr = flags
        .str_opt("addr")
        .ok_or("missing required flag --addr")?;
    let response = client::query_one(addr, &Query::ServerStats).map_err(|e| e.to_string())?;
    let Json::Obj(pairs) = response else {
        return Err("malformed server_stats payload".to_string());
    };
    // Retag the payload as a `stats` trace record: the same
    // sorted-key sections, printable on its own or appendable to an
    // ndjson trace file for `xtask trace-check`.
    let mut record = vec![("type".to_string(), Json::Str("stats".to_string()))];
    record.extend(pairs.into_iter().filter(|(k, _)| k != "kind"));
    Ok(Json::Obj(record).write())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn cost_command_reproduces_table3_row1() {
        let out = run(&argv(
            "cost --transistors 3.1e6 --lambda 0.8 --density 150 --yield 0.9 --c0 700 --x 1.4",
        ))
        .unwrap();
        assert!(out.contains("9.40 µ$"), "{out}");
        assert!(out.contains("46"));
    }

    #[test]
    fn sweep_renders_a_plot() {
        let out = run(&argv(
            "sweep --transistors 1e6 --lambda 0.8 --density 150 --yield 0.7 --c0 700 --x 1.8 \
             --from 0.4 --to 1.0 --steps 12",
        ))
        .unwrap();
        assert!(out.contains("C_tr [µ$]"));
    }

    #[test]
    fn optimize_reports_a_node() {
        let out = run(&argv(
            "optimize --transistors 1e6 --lambda 0.8 --density 150 --yield 0.7 --c0 700 --x 1.8",
        ))
        .unwrap();
        assert!(out.contains("optimal feature size"));
    }

    #[test]
    fn wafer_command_counts_dies() {
        let out = run(&argv("wafer --die-area 2.976")).unwrap();
        assert!(out.contains("46"));
        assert!(out.contains("utilization"));
    }

    #[test]
    fn wafer_map_switch_draws() {
        let out = run(&argv("wafer --die-area 2.976 --map")).unwrap();
        assert!(out.contains('#'));
    }

    #[test]
    fn table3_command_lists_all_rows() {
        let out = run(&argv("table3")).unwrap();
        assert!(out.contains("PLD"));
        assert!(out.contains("240.00"));
    }

    #[test]
    fn mix_command_reports_penalty() {
        let out = run(&argv("mix --products 10 --volume 500")).unwrap();
        assert!(out.contains("penalty ratio"));
        assert!(out.contains('×'));
    }

    #[test]
    fn chiplet_command_reports_the_reference_optimum() {
        let out = run(&argv("chiplet --transistors 2e6 --volume 50000")).unwrap();
        assert!(
            out.contains("best partition: 4 chiplet(s) + 0 spare(s)"),
            "{out}"
        );
        assert!(out.contains("64.95"), "{out}");
        assert!(out.contains("240 of 240 candidates feasible"), "{out}");
    }

    #[test]
    fn chiplet_command_requires_transistors_and_validates() {
        assert!(run(&argv("chiplet")).unwrap_err().contains("--transistors"));
        let err = run(&argv("chiplet --transistors 2e6 --max-chiplets 0")).unwrap_err();
        assert!(err.contains("chiplets"), "{err}");
    }

    #[test]
    fn roadmap_command_projects_years() {
        let out = run(&argv("roadmap --from 1990 --to 1998")).unwrap();
        assert!(out.contains("1990"));
        assert!(out.contains("1998"));
        assert!(out.contains("Scenario #2"));
        assert!(run(&argv("roadmap --from 2000 --to 1990")).is_err());
    }

    #[test]
    fn query_command_evaluates_a_request_file_offline() {
        let path = std::env::temp_dir().join("maly_cli_query_test.jsonl");
        std::fs::write(
            &path,
            concat!(
                "{\"id\": 1, \"query\": {\"type\": \"table3_row\", \"id\": 1}}\n",
                "\n",
                "[{\"id\": 2, \"query\": {\"type\": \"table3_row\", \"id\": 2}},",
                " {\"id\": 3, \"query\": {\"type\": \"nonsense\"}}]\n",
            ),
        )
        .unwrap();
        let arg = format!("query --file {}", path.display());
        let out = run(&argv(&arg)).unwrap();
        let _ = std::fs::remove_file(&path);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2, "{out}");
        assert!(lines[0].contains("\"ok\""));
        assert!(lines[1].contains("\"ok\"") && lines[1].contains("unsupported-query"));
    }

    #[test]
    fn query_command_requires_a_readable_file() {
        assert!(run(&argv("query")).unwrap_err().contains("--file"));
        assert!(run(&argv("query --file /nonexistent/req.jsonl")).is_err());
    }

    #[test]
    fn serve_command_rejects_unbindable_addresses() {
        let err = run(&argv("serve --addr 256.256.256.256:1")).unwrap_err();
        assert!(!err.is_empty());
    }

    #[test]
    fn query_command_talks_to_a_live_server() {
        // A real loopback round trip through the CLI's own serve path:
        // bind on a private port, detach the blocking serve call, then
        // drive it with `query --addr`.
        let config = ServeConfig::bind("127.0.0.1:0").workers(2);
        let server = Server::bind(config).unwrap();
        let handle = server.handle().unwrap();
        let addr = handle.addr().to_string();
        let join = std::thread::spawn(move || server.serve(&Executor::with_threads(2)));
        let path = std::env::temp_dir().join("maly_cli_live_query_test.jsonl");
        std::fs::write(
            &path,
            "{\"id\": 1, \"query\": {\"type\": \"table3_row\", \"id\": 1}}\n",
        )
        .unwrap();
        let arg = format!("query --file {} --addr {addr}", path.display());
        let out = run(&argv(&arg)).unwrap();
        let _ = std::fs::remove_file(&path);
        assert!(out.contains("\"ok\""), "{out}");
        handle.shutdown();
        join.join().unwrap();
    }

    #[test]
    fn stats_command_reports_a_live_servers_metrics() {
        let config = ServeConfig::bind("127.0.0.1:0").workers(1);
        let server = Server::bind(config).unwrap();
        let handle = server.handle().unwrap();
        let addr = handle.addr().to_string();
        let join = std::thread::spawn(move || server.serve(&Executor::with_threads(2)));
        // Put some traffic on the ledger before asking for the snapshot.
        let warm = client::query_lines(
            &addr,
            &["{\"id\": 1, \"query\": {\"type\": \"table3_row\", \"id\": 1}}".to_string()],
        )
        .unwrap();
        assert!(warm[0].contains("\"ok\""), "{warm:?}");
        let out = run(&argv(&format!("stats --addr {addr}"))).unwrap();
        assert!(out.starts_with("{\"type\":\"stats\",\"work\":{"), "{out}");
        assert!(out.contains("\"serve.request_lines\""), "{out}");
        assert!(out.contains("\"gauges\":{"), "{out}");
        assert!(out.contains("\"latency\":{"), "{out}");
        assert!(!out.contains("\"kind\""), "{out}");
        handle.shutdown();
        join.join().unwrap();
    }

    #[test]
    fn stats_command_requires_an_addr() {
        assert!(run(&argv("stats")).unwrap_err().contains("--addr"));
    }

    #[test]
    fn trace_out_flag_writes_an_ndjson_trace() {
        let path = std::env::temp_dir().join("maly_cli_trace_test.ndjson");
        let arg = format!("wafer --die-area 2.976 --trace-out {}", path.display());
        run(&argv(&arg)).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        assert!(text.contains("\"name\":\"cli.wafer\""), "{text}");
        assert!(text.lines().all(|l| l.starts_with('{') && l.ends_with('}')));
    }

    #[test]
    fn help_and_errors() {
        assert!(run(&argv("help")).unwrap().contains("USAGE"));
        assert!(run(&argv("bogus")).is_err());
        assert!(run(&[]).is_err());
        let err = run(&argv("cost --lambda 0.8")).unwrap_err();
        assert!(err.contains("--transistors"));
    }
}
