//! Subcommand implementations (pure: return strings, no printing).

use maly_cost_model::product::ProductScenario;
use maly_cost_optim::search::optimal_feature_size;
use maly_units::{Centimeters, Microns, SquareCentimeters};
use maly_viz::lineplot::LinePlot;
use maly_viz::table::{Alignment, TextTable};
use maly_viz::wafermap::{render_wafer, DieRect};
use maly_wafer_geom::{approx, maly, raster::RasterPlacement, DieDimensions, Wafer};

use crate::args::Flags;

/// Usage text.
#[must_use]
pub fn usage() -> String {
    "\
silicon-cost — transistor cost modeling after Maly, DAC 1994

USAGE:
  silicon-cost cost     --transistors N --lambda UM --density DD \\
                        --yield Y0 --c0 DOLLARS --x X [--radius CM]
  silicon-cost sweep    <cost flags> [--from UM] [--to UM] [--steps N]
  silicon-cost optimize <cost flags> [--from UM] [--to UM]
  silicon-cost wafer    --die-area CM2 [--radius CM] [--map]
  silicon-cost mix      [--products N] [--volume WAFERS] [--mono-volume WAFERS]
  silicon-cost roadmap  [--from YEAR] [--to YEAR]
  silicon-cost table3
  silicon-cost help

Every command also accepts --trace-out FILE: enable maly-obs and write
an ndjson trace (spans, counters, histograms) of the run to FILE.
All dollars are 1994 dollars; λ is the minimum feature size in µm."
        .to_string()
}

/// Dispatches a full argv (without the program name).
pub fn run(argv: &[String]) -> Result<String, String> {
    let Some((command, rest)) = argv.split_first() else {
        return Err("no command given".to_string());
    };
    let flags = Flags::parse(rest)?;
    let trace_out = flags.str_opt("trace-out").map(std::path::PathBuf::from);
    if trace_out.is_some() {
        maly_obs::set_enabled(true);
    }
    let output = {
        let _span = maly_obs::span(command_span_name(command));
        match command.as_str() {
            "cost" => cost(&flags),
            "sweep" => sweep(&flags),
            "optimize" => optimize(&flags),
            "wafer" => wafer(&flags),
            "mix" => mix(&flags),
            "roadmap" => roadmap(&flags),
            "table3" => Ok(table3()),
            "help" | "--help" | "-h" => Ok(usage()),
            other => Err(format!("unknown command `{other}`")),
        }
    };
    match trace_out {
        Some(path) => maly_obs::write_trace(&path)
            .map_err(|e| format!("writing trace {}: {e}", path.display()))?,
        None => {
            // No flag: still honor MALY_OBS_OUT for env-driven tracing.
            maly_obs::write_trace_if_requested().map_err(|e| format!("writing trace: {e}"))?;
        }
    }
    output
}

/// Static span name for the top-level command (span names are
/// `&'static str` by design — no per-run allocation).
fn command_span_name(command: &str) -> &'static str {
    match command {
        "cost" => "cli.cost",
        "sweep" => "cli.sweep",
        "optimize" => "cli.optimize",
        "wafer" => "cli.wafer",
        "mix" => "cli.mix",
        "roadmap" => "cli.roadmap",
        "table3" => "cli.table3",
        _ => "cli.run",
    }
}

fn scenario_from(flags: &Flags) -> Result<ProductScenario, String> {
    ProductScenario::builder("cli")
        .transistors(flags.require_f64("transistors")?)
        .map_err(|e| e.to_string())?
        .feature_size_um(flags.require_f64("lambda")?)
        .map_err(|e| e.to_string())?
        .design_density(flags.require_f64("density")?)
        .map_err(|e| e.to_string())?
        .wafer_radius_cm(flags.f64_or("radius", 7.5)?)
        .map_err(|e| e.to_string())?
        .reference_yield(flags.require_f64("yield")?)
        .map_err(|e| e.to_string())?
        .reference_wafer_cost(flags.require_f64("c0")?)
        .map_err(|e| e.to_string())?
        .cost_escalation(flags.require_f64("x")?)
        .map_err(|e| e.to_string())?
        .build()
        .map_err(|e| e.to_string())
}

fn cost(flags: &Flags) -> Result<String, String> {
    let scenario = scenario_from(flags)?;
    let breakdown = scenario.evaluate().map_err(|e| e.to_string())?;
    let mut t = TextTable::new(vec!["quantity", "value"]);
    t.align(1, Alignment::Right);
    t.row(vec![
        "die area".into(),
        format!("{:.3} cm²", scenario.die_area().value()),
    ]);
    t.row(vec![
        "wafer cost C_w".into(),
        format!("{:.0} $", breakdown.wafer_cost.value()),
    ]);
    t.row(vec![
        "dies per wafer N_ch".into(),
        format!("{}", breakdown.dies_per_wafer.value()),
    ]);
    t.row(vec![
        "die yield Y".into(),
        format!("{:.1}%", breakdown.die_yield.as_percent()),
    ]);
    t.row(vec![
        "good dies per wafer".into(),
        format!("{:.1}", breakdown.good_dies_per_wafer),
    ]);
    t.row(vec![
        "cost per good die".into(),
        format!("{:.2} $", breakdown.cost_per_good_die.value()),
    ]);
    t.row(vec![
        "cost per transistor".into(),
        format!(
            "{:.2} µ$",
            breakdown.cost_per_transistor.to_micro_dollars().value()
        ),
    ]);
    Ok(t.render())
}

fn sweep(flags: &Flags) -> Result<String, String> {
    let scenario = scenario_from(flags)?;
    let from = flags.f64_or("from", 0.3)?;
    let to = flags.f64_or("to", 1.2)?;
    let steps = flags.usize_or("steps", 40)?;
    if !(from > 0.0 && from < to) || steps < 2 {
        return Err(format!("bad sweep window {from}..{to} ({steps} steps)"));
    }
    let mut series = Vec::new();
    for i in 0..steps {
        let l = from + (to - from) * i as f64 / (steps - 1) as f64;
        let lambda = Microns::new(l).map_err(|e| e.to_string())?;
        if let Ok(b) = scenario.evaluate_at(lambda) {
            series.push((l, b.cost_per_transistor.to_micro_dollars().value()));
        }
    }
    if series.is_empty() {
        return Err("no feasible point in the sweep window".to_string());
    }
    Ok(LinePlot::new("cost per transistor vs feature size")
        .with_series("C_tr [µ$]", &series)
        .with_labels("λ [µm]", "µ$")
        .log_y()
        .render(76, 22))
}

fn optimize(flags: &Flags) -> Result<String, String> {
    let scenario = scenario_from(flags)?;
    let from = flags.f64_or("from", 0.3)?;
    let to = flags.f64_or("to", 1.2)?;
    let best = optimal_feature_size(&scenario, from, to, 481)
        .map_err(|e| e.to_string())?
        .ok_or("no feasible feature size in the window")?;
    Ok(format!(
        "optimal feature size: {:.3} µm  (C_tr = {:.2} µ$)",
        best.0.value(),
        best.1 * 1.0e6
    ))
}

fn wafer(flags: &Flags) -> Result<String, String> {
    let area = SquareCentimeters::new(flags.require_f64("die-area")?).map_err(|e| e.to_string())?;
    let radius = Centimeters::new(flags.f64_or("radius", 7.5)?).map_err(|e| e.to_string())?;
    let wafer = Wafer::with_radius(radius);
    let die = DieDimensions::square_with_area(area);
    let eq4 = maly::dies_per_wafer(&wafer, die);
    let map = RasterPlacement::default().place(&wafer, die);
    let mut t = TextTable::new(vec!["method", "dies per wafer"]);
    t.align(1, Alignment::Right);
    t.row(vec![
        "eq. (4) row packing".into(),
        format!("{}", eq4.value()),
    ]);
    t.row(vec![
        "rigid raster (optimized)".into(),
        format!("{}", map.count().value()),
    ]);
    t.row(vec![
        "gross bound πR²/A".into(),
        format!("{:.1}", approx::gross_estimate(&wafer, die)),
    ]);
    t.row(vec![
        "edge-corrected estimate".into(),
        format!("{:.1}", approx::edge_corrected_estimate(&wafer, die)),
    ]);
    t.row(vec![
        "silicon utilization".into(),
        format!("{:.1}%", map.utilization() * 100.0),
    ]);
    let mut out = t.render();
    if flags.has_switch("map") {
        let dies: Vec<DieRect> = map
            .sites()
            .iter()
            .map(|s| DieRect {
                center_x: s.center_x,
                center_y: s.center_y,
                width: die.width().value(),
                height: die.height().value(),
            })
            .collect();
        out.push_str("\n\n");
        out.push_str(&render_wafer(radius.value(), &dies, 60));
    }
    Ok(out)
}

fn mix(flags: &Flags) -> Result<String, String> {
    let products = flags.usize_or("products", 8)?;
    let volume = flags.f64_or("volume", 1_000.0)?;
    let mono_volume = flags.f64_or("mono-volume", 100_000.0)?;
    if products == 0 || volume <= 0.0 || mono_volume <= 0.0 {
        return Err("mix needs positive --products, --volume and --mono-volume".to_string());
    }
    let study = maly_fabline_sim::cost::product_mix_study(products, volume, mono_volume);
    let mut t = TextTable::new(vec!["quantity", "value"]);
    t.align(1, Alignment::Right);
    t.row(vec![
        "mono-product wafer cost".into(),
        format!("{:.0} $", study.mono_cost.value()),
    ]);
    t.row(vec![
        "multi-product wafer cost".into(),
        format!("{:.0} $", study.multi_cost.value()),
    ]);
    t.row(vec![
        "penalty ratio".into(),
        format!("{:.2}×", study.cost_ratio),
    ]);
    t.row(vec![
        "mono productive utilization".into(),
        format!("{:.0}%", study.mono_utilization * 100.0),
    ]);
    t.row(vec![
        "multi productive utilization".into(),
        format!("{:.0}%", study.multi_utilization * 100.0),
    ]);
    Ok(t.render())
}

fn roadmap(flags: &Flags) -> Result<String, String> {
    let from = flags.usize_or("from", 1986)? as u32;
    let to = flags.usize_or("to", 2002)? as u32;
    if from >= to {
        return Err(format!("bad year range {from}..{to}"));
    }
    let roadmap =
        maly_cost_model::roadmap::CostRoadmap::paper_default().map_err(|e| e.to_string())?;
    let points = roadmap.project(from, to).map_err(|e| e.to_string())?;
    let mut t = TextTable::new(vec![
        "year",
        "λ [µm]",
        "Scenario #1 [µ$/tr]",
        "Scenario #2 [µ$/tr]",
    ]);
    for col in 1..4 {
        t.align(col, Alignment::Right);
    }
    for p in &points {
        t.row(vec![
            format!("{:.0}", p.year),
            format!("{:.2}", p.lambda.value()),
            format!("{:.3}", p.optimistic.to_micro_dollars().value()),
            format!("{:.2}", p.realistic.to_micro_dollars().value()),
        ]);
    }
    let mut out = t.render();
    if let Some(year) = roadmap
        .realistic_turning_year(from, to)
        .map_err(|e| e.to_string())?
    {
        out.push_str(&format!(
            "\n\nScenario #2 cost bottoms out around {year} and rises afterwards."
        ));
    }
    Ok(out)
}

fn table3() -> String {
    maly_repro_table3()
}

/// Renders the Table 3 comparison without depending on the repro crate
/// (the CLI stays lean): inputs and model outputs only.
fn maly_repro_table3() -> String {
    let mut t = TextTable::new(vec!["#", "IC type", "paper [µ$]", "model [µ$]"]);
    t.align(2, Alignment::Right);
    t.align(3, Alignment::Right);
    for row in maly_paper_data::table3::rows() {
        let measured = row
            .scenario()
            .expect("printed inputs are valid")
            .evaluate()
            .expect("printed products are manufacturable")
            .cost_per_transistor
            .to_micro_dollars()
            .value();
        t.row(vec![
            format!("{}", row.id),
            row.name.to_string(),
            format!("{:.2}", row.paper_cost_micro_dollars),
            format!("{measured:.2}"),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn cost_command_reproduces_table3_row1() {
        let out = run(&argv(
            "cost --transistors 3.1e6 --lambda 0.8 --density 150 --yield 0.9 --c0 700 --x 1.4",
        ))
        .unwrap();
        assert!(out.contains("9.40 µ$"), "{out}");
        assert!(out.contains("46"));
    }

    #[test]
    fn sweep_renders_a_plot() {
        let out = run(&argv(
            "sweep --transistors 1e6 --lambda 0.8 --density 150 --yield 0.7 --c0 700 --x 1.8 \
             --from 0.4 --to 1.0 --steps 12",
        ))
        .unwrap();
        assert!(out.contains("C_tr [µ$]"));
    }

    #[test]
    fn optimize_reports_a_node() {
        let out = run(&argv(
            "optimize --transistors 1e6 --lambda 0.8 --density 150 --yield 0.7 --c0 700 --x 1.8",
        ))
        .unwrap();
        assert!(out.contains("optimal feature size"));
    }

    #[test]
    fn wafer_command_counts_dies() {
        let out = run(&argv("wafer --die-area 2.976")).unwrap();
        assert!(out.contains("46"));
        assert!(out.contains("utilization"));
    }

    #[test]
    fn wafer_map_switch_draws() {
        let out = run(&argv("wafer --die-area 2.976 --map")).unwrap();
        assert!(out.contains('#'));
    }

    #[test]
    fn table3_command_lists_all_rows() {
        let out = run(&argv("table3")).unwrap();
        assert!(out.contains("PLD"));
        assert!(out.contains("240.00"));
    }

    #[test]
    fn mix_command_reports_penalty() {
        let out = run(&argv("mix --products 10 --volume 500")).unwrap();
        assert!(out.contains("penalty ratio"));
        assert!(out.contains('×'));
    }

    #[test]
    fn roadmap_command_projects_years() {
        let out = run(&argv("roadmap --from 1990 --to 1998")).unwrap();
        assert!(out.contains("1990"));
        assert!(out.contains("1998"));
        assert!(out.contains("Scenario #2"));
        assert!(run(&argv("roadmap --from 2000 --to 1990")).is_err());
    }

    #[test]
    fn trace_out_flag_writes_an_ndjson_trace() {
        let path = std::env::temp_dir().join("maly_cli_trace_test.ndjson");
        let arg = format!("wafer --die-area 2.976 --trace-out {}", path.display());
        run(&argv(&arg)).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        assert!(text.contains("\"name\":\"cli.wafer\""), "{text}");
        assert!(text.lines().all(|l| l.starts_with('{') && l.ends_with('}')));
    }

    #[test]
    fn help_and_errors() {
        assert!(run(&argv("help")).unwrap().contains("USAGE"));
        assert!(run(&argv("bogus")).is_err());
        assert!(run(&[]).is_err());
        let err = run(&argv("cost --lambda 0.8")).unwrap_err();
        assert!(err.contains("--transistors"));
    }
}
