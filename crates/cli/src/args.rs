//! Tiny flag parser: `--name value` pairs plus boolean switches.

use std::collections::HashMap;

/// Parsed flags for one subcommand.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Flags {
    values: HashMap<String, String>,
    switches: Vec<String>,
}

impl Flags {
    /// Parses `--name value` pairs; a `--name` followed by another flag
    /// (or nothing) is a boolean switch.
    pub fn parse(argv: &[String]) -> Result<Self, String> {
        let mut flags = Flags::default();
        let mut i = 0;
        while i < argv.len() {
            let arg = &argv[i];
            let Some(name) = arg.strip_prefix("--") else {
                return Err(format!("unexpected positional argument `{arg}`"));
            };
            if name.is_empty() {
                return Err("empty flag `--`".to_string());
            }
            let next_is_value = argv.get(i + 1).is_some_and(|next| !next.starts_with("--"));
            if next_is_value {
                flags.values.insert(name.to_string(), argv[i + 1].clone());
                i += 2;
            } else {
                flags.switches.push(name.to_string());
                i += 1;
            }
        }
        Ok(flags)
    }

    /// Required float flag.
    pub fn require_f64(&self, name: &str) -> Result<f64, String> {
        let raw = self
            .values
            .get(name)
            .ok_or_else(|| format!("missing required flag --{name}"))?;
        raw.parse::<f64>()
            .map_err(|_| format!("flag --{name}: `{raw}` is not a number"))
    }

    /// Optional float flag with a default.
    pub fn f64_or(&self, name: &str, default: f64) -> Result<f64, String> {
        match self.values.get(name) {
            None => Ok(default),
            Some(raw) => raw
                .parse::<f64>()
                .map_err(|_| format!("flag --{name}: `{raw}` is not a number")),
        }
    }

    /// Optional integer flag with a default.
    pub fn usize_or(&self, name: &str, default: usize) -> Result<usize, String> {
        match self.values.get(name) {
            None => Ok(default),
            Some(raw) => raw
                .parse::<usize>()
                .map_err(|_| format!("flag --{name}: `{raw}` is not an integer")),
        }
    }

    /// Optional string flag.
    pub fn str_opt(&self, name: &str) -> Option<&str> {
        self.values.get(name).map(String::as_str)
    }

    /// True when a boolean switch was given.
    pub fn has_switch(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn parses_pairs_and_switches() {
        let f = Flags::parse(&argv("--lambda 0.8 --map --c0 700")).unwrap();
        assert_eq!(f.require_f64("lambda").unwrap(), 0.8);
        assert_eq!(f.require_f64("c0").unwrap(), 700.0);
        assert!(f.has_switch("map"));
        assert!(!f.has_switch("absent"));
    }

    #[test]
    fn string_flags_are_readable() {
        let f = Flags::parse(&argv("--trace-out /tmp/t.ndjson")).unwrap();
        assert_eq!(f.str_opt("trace-out"), Some("/tmp/t.ndjson"));
        assert_eq!(f.str_opt("absent"), None);
    }

    #[test]
    fn scientific_notation_accepted() {
        let f = Flags::parse(&argv("--transistors 3.1e6")).unwrap();
        assert_eq!(f.require_f64("transistors").unwrap(), 3.1e6);
    }

    #[test]
    fn missing_required_flag_is_an_error() {
        let f = Flags::parse(&argv("--lambda 0.8")).unwrap();
        let err = f.require_f64("c0").unwrap_err();
        assert!(err.contains("--c0"));
    }

    #[test]
    fn bad_number_is_an_error() {
        let f = Flags::parse(&argv("--lambda zero")).unwrap();
        assert!(f
            .require_f64("lambda")
            .unwrap_err()
            .contains("not a number"));
    }

    #[test]
    fn defaults_apply() {
        let f = Flags::parse(&argv("")).unwrap();
        assert_eq!(f.f64_or("radius", 7.5).unwrap(), 7.5);
        assert_eq!(f.usize_or("steps", 40).unwrap(), 40);
    }

    #[test]
    fn positional_arguments_rejected() {
        assert!(Flags::parse(&argv("oops --x 1")).is_err());
    }

    #[test]
    fn negative_numbers_are_treated_as_flags() {
        // A limitation worth pinning: `--x -1` parses `-1`... as a value
        // only if it doesn't start with `--`. Single-dash passes through.
        let f = Flags::parse(&argv("--x -1")).unwrap();
        assert_eq!(f.require_f64("x").unwrap(), -1.0);
    }
}
