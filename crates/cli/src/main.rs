//! `silicon-cost` — the command-line face of the Maly DAC-94 cost model.
//!
//! ```text
//! silicon-cost cost     --transistors 3.1e6 --lambda 0.8 --density 150 \
//!                       --yield 0.9 --c0 700 --x 1.4 [--radius 7.5]
//! silicon-cost sweep    <same flags> --from 0.3 --to 1.2 [--steps 40]
//! silicon-cost optimize <same flags> --from 0.3 --to 1.2
//! silicon-cost wafer    --die-area 2.976 [--radius 7.5] [--map]
//! silicon-cost serve    [--addr 127.0.0.1:7878] [--threads 2]
//! silicon-cost query    --file requests.jsonl [--addr HOST:PORT]
//! silicon-cost stats    --addr HOST:PORT
//! silicon-cost help
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::process::ExitCode;

mod args;
mod commands;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match commands::run(&argv) {
        Ok(output) => {
            println!("{output}");
            ExitCode::SUCCESS
        }
        Err(message) => {
            // audit:allow(raw-timing): user-facing error reporting on
            // stderr, not ad-hoc timing output.
            eprintln!("error: {message}\n\n{}", commands::usage());
            ExitCode::FAILURE
        }
    }
}
