//! Golden determinism tests: the parallel executor must reproduce the
//! serial path **bit for bit** on every sweep entry point, at every
//! thread count. `MALY_PAR_THREADS` is deliberately not touched here —
//! env vars are process-global and tests run concurrently — so each
//! case pins its executor with `Executor::with_threads`, which is the
//! same code path `from_env` configures.

use maly_cost_model::adaptive::{AdaptiveConfig, AdaptiveSurface};
use maly_cost_model::surface::{CostSurface, SurfaceParameters};
use maly_cost_model::system::{ManufacturingContext, Partition, SystemDesign};
use maly_cost_model::WaferCostModel;
use maly_cost_optim::contour::{extract_contours_adaptive_with, extract_contours_with};
use maly_cost_optim::partition::optimize_with;
use maly_cost_optim::search::{grid_min_with, optimal_feature_size_with};
use maly_par::Executor;
use maly_units::{Centimeters, DesignDensity, Dollars, Microns, Probability, TransistorCount};
use maly_wafer_geom::Wafer;

/// The thread counts the issue pins: serial fallback, a small pool, and
/// a pool larger than any grid chunk boundary (also larger than this
/// machine's core count — oversubscription must not change results).
const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

fn fig8_surface(exec: &Executor) -> CostSurface {
    CostSurface::compute_with(
        exec,
        &SurfaceParameters::fig8(),
        (0.4, 1.5, 40),
        (2.0e4, 4.0e6, 32),
    )
}

#[test]
fn fig8_surface_is_bit_identical_across_thread_counts() {
    let serial = fig8_surface(&Executor::with_threads(1));
    for threads in THREAD_COUNTS {
        let parallel = fig8_surface(&Executor::with_threads(threads));
        // PartialEq on CostSurface compares every f64 cell exactly.
        assert_eq!(serial, parallel, "threads = {threads}");
    }
}

#[test]
fn optimal_lambda_locus_is_bit_identical() {
    let surface = fig8_surface(&Executor::with_threads(2));
    let serial = surface.optimal_lambda_per_n_tr_with(&Executor::with_threads(1));
    for threads in THREAD_COUNTS {
        let parallel = surface.optimal_lambda_per_n_tr_with(&Executor::with_threads(threads));
        assert_eq!(serial, parallel, "threads = {threads}");
    }
}

#[test]
fn contour_segments_are_bit_identical() {
    let surface = fig8_surface(&Executor::with_threads(1));
    let levels = [3.0e-6, 10.0e-6, 30.0e-6, 100.0e-6];
    let serial = extract_contours_with(&Executor::with_threads(1), &surface, &levels);
    assert!(
        serial.iter().any(|c| !c.is_empty()),
        "test levels must actually cross the surface"
    );
    for threads in THREAD_COUNTS {
        let parallel = extract_contours_with(&Executor::with_threads(threads), &surface, &levels);
        // Segment ORDER matters: the parallel pass must concatenate
        // row strips exactly as the serial double loop visits them.
        assert_eq!(serial, parallel, "threads = {threads}");
    }
}

#[test]
fn adaptive_tol_zero_golden_matches_dense_at_every_thread_count() {
    // The tol = 0 degenerate path must be bit-identical to the dense
    // scan whether the engine runs serial or tiled across threads.
    let dense = fig8_surface(&Executor::with_threads(1));
    for threads in THREAD_COUNTS {
        let adaptive = AdaptiveSurface::compute_with(
            &Executor::with_threads(threads),
            &SurfaceParameters::fig8(),
            (0.4, 1.5, 40),
            (2.0e4, 4.0e6, 32),
            &AdaptiveConfig::exact(),
        );
        assert_eq!(adaptive.surface(), &dense, "threads = {threads}");
    }
}

#[test]
fn adaptive_contours_at_tol_zero_match_dense_contours() {
    // At tol = 0 every cell is in the march mask and every value is the
    // dense value, so masked marching must reproduce the dense contour
    // segments bit for bit — at every thread count.
    let levels = [3.0e-6, 10.0e-6, 30.0e-6, 100.0e-6];
    let dense = fig8_surface(&Executor::with_threads(1));
    let reference = extract_contours_with(&Executor::with_threads(1), &dense, &levels);
    for threads in THREAD_COUNTS {
        let adaptive = AdaptiveSurface::compute_with(
            &Executor::with_threads(threads),
            &SurfaceParameters::fig8(),
            (0.4, 1.5, 40),
            (2.0e4, 4.0e6, 32),
            &AdaptiveConfig::exact().with_levels(&levels),
        );
        let contours =
            extract_contours_adaptive_with(&Executor::with_threads(threads), &adaptive, &levels);
        assert_eq!(reference, contours, "threads = {threads}");
    }
}

#[test]
fn partition_search_is_bit_identical() {
    let system = SystemDesign::new(vec![
        Partition::new(
            "dram",
            TransistorCount::new(4.0e6).unwrap(),
            DesignDensity::new(35.0).unwrap(),
        ),
        Partition::new(
            "logic",
            TransistorCount::new(0.8e6).unwrap(),
            DesignDensity::new(300.0).unwrap(),
        ),
        Partition::new(
            "io",
            TransistorCount::new(0.1e6).unwrap(),
            DesignDensity::new(600.0).unwrap(),
        ),
        Partition::new(
            "analog",
            TransistorCount::new(0.2e6).unwrap(),
            DesignDensity::new(450.0).unwrap(),
        ),
    ])
    .unwrap();
    let context = ManufacturingContext {
        wafer: Wafer::six_inch(),
        reference_yield: Probability::new(0.7).unwrap(),
        wafer_cost: WaferCostModel::new(Dollars::new(700.0).unwrap(), 1.8).unwrap(),
        per_die_overhead: Dollars::new(5.0).unwrap(),
    };
    let ladder: Vec<Microns> = [1.0, 0.8, 0.65, 0.5]
        .iter()
        .map(|&l| Microns::new(l).unwrap())
        .collect();

    let serial = optimize_with(&Executor::with_threads(1), &system, &context, &ladder).unwrap();
    for threads in THREAD_COUNTS {
        let parallel =
            optimize_with(&Executor::with_threads(threads), &system, &context, &ladder).unwrap();
        assert_eq!(serial, parallel, "threads = {threads}");
    }
}

#[test]
fn grid_min_keeps_the_serial_tie_break() {
    // A floor-riddled function with many exactly-equal minima: the
    // earliest grid point must win at every thread count.
    let f = |x: f64| (x * 3.0).floor();
    let serial = grid_min_with(&Executor::with_threads(1), f, 0.0, 4.0, 601);
    for threads in THREAD_COUNTS {
        let parallel = grid_min_with(&Executor::with_threads(threads), f, 0.0, 4.0, 601);
        assert_eq!(
            serial.0.to_bits(),
            parallel.0.to_bits(),
            "threads = {threads}"
        );
        assert_eq!(
            serial.1.to_bits(),
            parallel.1.to_bits(),
            "threads = {threads}"
        );
    }
}

#[test]
fn optimal_feature_size_is_bit_identical() {
    let scenario = maly_cost_model::product::ProductScenario::builder("determinism")
        .transistors(TransistorCount::new(3.1e6).unwrap())
        .feature_size(Microns::new(0.8).unwrap())
        .design_density(DesignDensity::new(150.0).unwrap())
        .wafer_radius(Centimeters::new(7.5).unwrap())
        .reference_yield(Probability::new(0.7).unwrap())
        .reference_wafer_cost(Dollars::new(700.0).unwrap())
        .cost_escalation(1.8)
        .unwrap()
        .build()
        .unwrap();
    let serial = optimal_feature_size_with(&Executor::with_threads(1), &scenario, 0.3, 1.5, 241)
        .unwrap()
        .unwrap();
    for threads in THREAD_COUNTS {
        let parallel =
            optimal_feature_size_with(&Executor::with_threads(threads), &scenario, 0.3, 1.5, 241)
                .unwrap()
                .unwrap();
        assert_eq!(serial.0, parallel.0, "threads = {threads}");
        assert_eq!(
            serial.1.to_bits(),
            parallel.1.to_bits(),
            "threads = {threads}"
        );
    }
}
