//! Property-based tests for the optimizers.

use maly_cost_model::system::{ManufacturingContext, Partition, SystemDesign};
use maly_cost_model::WaferCostModel;
use maly_cost_optim::pareto::{pareto_front, DesignPoint};
use maly_cost_optim::partition::{optimize, set_partitions};
use maly_cost_optim::search::{golden_section, grid_min};
use maly_units::{DesignDensity, Dollars, Microns, Probability, TransistorCount};
use maly_wafer_geom::Wafer;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Golden section finds the vertex of any parabola.
    #[test]
    fn golden_section_solves_quadratics(center in -50.0f64..50.0, scale in 0.1f64..10.0,
                                        offset in -10.0f64..10.0) {
        let f = |x: f64| scale * (x - center).powi(2) + offset;
        let (x, fx) = golden_section(f, center - 60.0, center + 60.0, 1e-9);
        prop_assert!((x - center).abs() < 1e-6);
        prop_assert!((fx - offset).abs() < 1e-9);
    }

    /// Grid minimization never returns a value above any sampled point.
    #[test]
    fn grid_min_is_a_lower_envelope(seed in 0u64..1000) {
        // A deterministic "random-looking" bumpy function.
        let f = move |x: f64| ((x * 7.3 + seed as f64).sin() + (x * 1.9).cos()) * x.abs();
        let (_, fmin) = grid_min(f, -5.0, 5.0, 501);
        for i in 0..501 {
            let x = -5.0 + 10.0 * i as f64 / 500.0;
            prop_assert!(fmin <= f(x) + 1e-12);
        }
    }

    /// Pareto front: nothing on the front is dominated by anything in
    /// the input, and everything off the front is dominated by someone.
    #[test]
    fn pareto_front_is_exact(points in prop::collection::vec((0.0f64..10.0, 0.0f64..10.0), 1..25)) {
        let designs: Vec<DesignPoint<usize>> = points
            .iter()
            .enumerate()
            .map(|(i, &(c, b))| DesignPoint::new(i, c, b))
            .collect();
        let front = pareto_front(&designs);
        prop_assert!(!front.is_empty());
        for f in &front {
            prop_assert!(!designs.iter().any(|q| f.dominated_by(q)));
        }
        for d in &designs {
            let on_front = front.iter().any(|f| f.design == d.design);
            if !on_front {
                prop_assert!(designs.iter().any(|q| d.dominated_by(q)));
            }
        }
    }

    /// The partition optimizer's answer is no worse than any candidate
    /// assignment drawn from its own search space.
    #[test]
    fn optimizer_dominates_arbitrary_assignments(
        n_a in 2.0e5f64..3.0e6, n_b in 2.0e5f64..3.0e6,
        d_a in 40.0f64..400.0, d_b in 40.0f64..400.0,
        grouping_pick in 0usize..2, lambda_pick in 0usize..4,
    ) {
        let system = SystemDesign::new(vec![
            Partition::new("a", TransistorCount::new(n_a).unwrap(),
                           DesignDensity::new(d_a).unwrap()),
            Partition::new("b", TransistorCount::new(n_b).unwrap(),
                           DesignDensity::new(d_b).unwrap()),
        ]).unwrap();
        let ctx = ManufacturingContext {
            wafer: Wafer::six_inch(),
            reference_yield: Probability::new(0.7).unwrap(),
            wafer_cost: WaferCostModel::new(Dollars::new(700.0).unwrap(), 1.8).unwrap(),
            per_die_overhead: Dollars::new(5.0).unwrap(),
        };
        let nodes = [1.0, 0.8, 0.65, 0.5];
        let ladder: Vec<Microns> = nodes.iter().map(|&l| Microns::new(l).unwrap()).collect();
        let best = optimize(&system, &ctx, &ladder).unwrap();

        // An arbitrary candidate from the same space.
        let grouping = set_partitions(2)[grouping_pick].clone();
        let n_dies = grouping.iter().max().unwrap() + 1;
        let lambdas = vec![Microns::new(nodes[lambda_pick]).unwrap(); n_dies];
        if let Ok(candidate) = system.evaluate(&ctx, &grouping, &lambdas) {
            prop_assert!(
                best.cost.total.value() <= candidate.total.value() + 1e-9,
                "optimizer {} beaten by candidate {}",
                best.cost.total.value(),
                candidate.total.value()
            );
        }
    }
}
