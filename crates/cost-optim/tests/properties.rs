//! Property-style tests for the optimizers.
//!
//! The workspace builds offline with no external crates, so instead of
//! proptest strategies these properties are checked over deterministic
//! pseudo-random samples drawn from a tiny SplitMix64 generator.

use maly_cost_model::system::{ManufacturingContext, Partition, SystemDesign};
use maly_cost_model::WaferCostModel;
use maly_cost_optim::pareto::{pareto_front, DesignPoint};
use maly_cost_optim::partition::{optimize, set_partitions};
use maly_cost_optim::search::{golden_section, grid_min};
use maly_units::{DesignDensity, Dollars, Microns, Probability, TransistorCount};
use maly_wafer_geom::Wafer;

/// Deterministic uniform sampler (SplitMix64).
struct Sampler(u64);

impl Sampler {
    fn new(seed: u64) -> Self {
        Self(seed)
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + (hi - lo) * u
    }

    fn index(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

const CASES: usize = 24;

/// Golden section finds the vertex of any parabola.
#[test]
fn golden_section_solves_quadratics() {
    let mut s = Sampler::new(201);
    for _ in 0..CASES {
        let center = s.uniform(-50.0, 50.0);
        let scale = s.uniform(0.1, 10.0);
        let offset = s.uniform(-10.0, 10.0);
        let f = |x: f64| scale * (x - center).powi(2) + offset;
        let (x, fx) = golden_section(f, center - 60.0, center + 60.0, 1e-9);
        assert!((x - center).abs() < 1e-6);
        assert!((fx - offset).abs() < 1e-9);
    }
}

/// Grid minimization never returns a value above any sampled point.
#[test]
fn grid_min_is_a_lower_envelope() {
    let mut s = Sampler::new(202);
    for _ in 0..CASES {
        let seed = s.index(1000) as f64;
        // A deterministic "random-looking" bumpy function.
        let f = move |x: f64| ((x * 7.3 + seed).sin() + (x * 1.9).cos()) * x.abs();
        let (_, fmin) = grid_min(f, -5.0, 5.0, 501);
        for i in 0..501 {
            let x = -5.0 + 10.0 * f64::from(i) / 500.0;
            assert!(fmin <= f(x) + 1e-12);
        }
    }
}

/// Pareto front: nothing on the front is dominated by anything in
/// the input, and everything off the front is dominated by someone.
#[test]
fn pareto_front_is_exact() {
    let mut s = Sampler::new(203);
    for _ in 0..CASES {
        let count = 1 + s.index(24);
        let designs: Vec<DesignPoint<usize>> = (0..count)
            .map(|i| DesignPoint::new(i, s.uniform(0.0, 10.0), s.uniform(0.0, 10.0)))
            .collect();
        let front = pareto_front(&designs);
        assert!(!front.is_empty());
        for f in &front {
            assert!(!designs.iter().any(|q| f.dominated_by(q)));
        }
        for d in &designs {
            let on_front = front.iter().any(|f| f.design == d.design);
            if !on_front {
                assert!(designs.iter().any(|q| d.dominated_by(q)));
            }
        }
    }
}

/// The partition optimizer's answer is no worse than any candidate
/// assignment drawn from its own search space.
#[test]
fn optimizer_dominates_arbitrary_assignments() {
    let mut s = Sampler::new(204);
    for _ in 0..CASES {
        let n_a = s.uniform(2.0e5, 3.0e6);
        let n_b = s.uniform(2.0e5, 3.0e6);
        let d_a = s.uniform(40.0, 400.0);
        let d_b = s.uniform(40.0, 400.0);
        let grouping_pick = s.index(2);
        let lambda_pick = s.index(4);
        let system = SystemDesign::new(vec![
            Partition::new(
                "a",
                TransistorCount::new(n_a).unwrap(),
                DesignDensity::new(d_a).unwrap(),
            ),
            Partition::new(
                "b",
                TransistorCount::new(n_b).unwrap(),
                DesignDensity::new(d_b).unwrap(),
            ),
        ])
        .unwrap();
        let ctx = ManufacturingContext {
            wafer: Wafer::six_inch(),
            reference_yield: Probability::new(0.7).unwrap(),
            wafer_cost: WaferCostModel::new(Dollars::new(700.0).unwrap(), 1.8).unwrap(),
            per_die_overhead: Dollars::new(5.0).unwrap(),
        };
        let nodes = [1.0, 0.8, 0.65, 0.5];
        let ladder: Vec<Microns> = nodes.iter().map(|&l| Microns::new(l).unwrap()).collect();
        let best = optimize(&system, &ctx, &ladder).unwrap();

        // An arbitrary candidate from the same space.
        let grouping = set_partitions(2)[grouping_pick].clone();
        let n_dies = grouping.iter().max().unwrap() + 1;
        let lambdas = vec![Microns::new(nodes[lambda_pick]).unwrap(); n_dies];
        if let Ok(candidate) = system.evaluate(&ctx, &grouping, &lambdas) {
            assert!(
                best.cost.total.value() <= candidate.total.value() + 1e-9,
                "optimizer {} beaten by candidate {}",
                best.cost.total.value(),
                candidate.total.value()
            );
        }
    }
}
