//! Exhaustive system-partitioning optimization (Sec. IV.B).
//!
//! Searches every way to group a system's partitions onto dies (set
//! partitions of the partition list) and, for each die, every candidate
//! feature size — pricing each candidate with
//! [`maly_cost_model::system::SystemDesign::evaluate`] and keeping the
//! cheapest. Exhaustive enumeration is exact and affordable for the
//! system sizes the paper contemplates (Bell(7) = 877 groupings).

use maly_cost_model::system::{ManufacturingContext, SystemCost, SystemDesign};
use maly_cost_model::CostError;
use maly_par::Executor;
use maly_units::Microns;

/// Estimated serial cost of pricing one grouping (per-die λ scan plus a
/// full system evaluation), used to tune the executor: small systems
/// (Bell(3) = 5 groupings) must not pay thread spawns.
const GROUPING_HINT_NS: f64 = 5_000.0;

/// The optimizer's result: the winning assignment and its cost.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionSolution {
    /// `grouping[i]` = die index of partition `i`.
    pub grouping: Vec<usize>,
    /// Feature size chosen for each die.
    pub lambdas: Vec<Microns>,
    /// Full cost report.
    pub cost: SystemCost,
}

/// Upper limit on partitions for exhaustive search (Bell(10) = 115 975
/// candidate groupings — still fine; beyond that, refuse).
pub const MAX_PARTITIONS: usize = 10;

/// Finds the cheapest grouping × per-die-λ assignment.
///
/// `candidate_lambdas` are the nodes available to manufacture on (e.g.
/// the `maly_tech_trend::generations::NODE_LADDER_UM` rungs a company
/// has access to). Each die independently picks its best candidate.
///
/// # Errors
///
/// * [`CostError::MissingField`] when inputs are empty or the system has
///   more than [`MAX_PARTITIONS`] partitions;
/// * evaluation errors only if *no* candidate assignment is feasible.
pub fn optimize(
    system: &SystemDesign,
    context: &ManufacturingContext,
    candidate_lambdas: &[Microns],
) -> Result<PartitionSolution, CostError> {
    optimize_with(&Executor::from_env(), system, context, candidate_lambdas)
}

/// [`optimize`] on an explicit executor: groupings are priced in
/// parallel (each one's per-die λ choice is self-contained), then the
/// winner is picked by an ordered strict-`<` fold over the canonical
/// grouping order — the same tie-break as the serial loop, so the
/// solution is bit-identical at every thread count.
///
/// # Errors
///
/// As for [`optimize`].
pub fn optimize_with(
    exec: &Executor,
    system: &SystemDesign,
    context: &ManufacturingContext,
    candidate_lambdas: &[Microns],
) -> Result<PartitionSolution, CostError> {
    let n = system.partitions().len();
    if n == 0 || candidate_lambdas.is_empty() || n > MAX_PARTITIONS {
        return Err(CostError::MissingField {
            field: "partitions/candidate lambdas",
        });
    }

    let groupings = set_partitions(n);
    let exec = exec.tuned_for(groupings.len(), GROUPING_HINT_NS);
    let candidates = exec.map(&groupings, |grouping| {
        price_grouping(system, context, candidate_lambdas, grouping)
    });

    let mut best: Option<PartitionSolution> = None;
    for candidate in candidates {
        match candidate {
            Err(e) => return Err(e),
            Ok(Some(solution)) => {
                if best
                    .as_ref()
                    .is_none_or(|b| solution.cost.total.value() < b.cost.total.value())
                {
                    best = Some(solution);
                }
            }
            Ok(None) => {}
        }
    }

    best.ok_or(CostError::MissingField {
        field: "feasible assignment",
    })
}

/// Prices one grouping: chooses each die's λ independently and
/// evaluates the full assignment. `Ok(None)` means infeasible.
fn price_grouping(
    system: &SystemDesign,
    context: &ManufacturingContext,
    candidate_lambdas: &[Microns],
    grouping: &[usize],
) -> Result<Option<PartitionSolution>, CostError> {
    let n_dies = grouping.iter().max().map_or(0, |&m| m + 1);
    // Choose each die's λ independently: evaluate die-by-die.
    let mut lambdas: Vec<Microns> = Vec::with_capacity(n_dies);
    for die_idx in 0..n_dies {
        // Per-die costs are separable, so price this die alone as a
        // one-die system and keep its best candidate node.
        let members: Vec<_> = grouping
            .iter()
            .zip(system.partitions())
            .filter(|(&g, _)| g == die_idx)
            .map(|(_, p)| p.clone())
            .collect();
        let sub = SystemDesign::new(members)?;
        let sub_grouping = vec![0; sub.partitions().len()];
        let mut best_lambda: Option<(Microns, f64)> = None;
        for &lambda in candidate_lambdas {
            if let Ok(cost) = sub.evaluate(context, &sub_grouping, &[lambda]) {
                let total = cost.total.value();
                if best_lambda.is_none_or(|(_, c)| total < c) {
                    best_lambda = Some((lambda, total));
                }
            }
        }
        match best_lambda {
            Some((lambda, _)) => lambdas.push(lambda),
            None => return Ok(None),
        }
    }
    match system.evaluate(context, grouping, &lambdas) {
        Ok(cost) => Ok(Some(PartitionSolution {
            grouping: grouping.to_vec(),
            lambdas,
            cost,
        })),
        Err(_) => Ok(None),
    }
}

/// Enumerates all set partitions of `n` items as canonical grouping
/// vectors (restricted growth strings): `g[0] = 0`,
/// `g[i] ≤ max(g[0..i]) + 1`.
#[must_use]
pub fn set_partitions(n: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut current = vec![0usize; n];
    fn recurse(current: &mut Vec<usize>, i: usize, max_used: usize, out: &mut Vec<Vec<usize>>) {
        if i == current.len() {
            out.push(current.clone());
            return;
        }
        for g in 0..=max_used + 1 {
            current[i] = g;
            recurse(current, i + 1, max_used.max(g), out);
        }
    }
    if n == 0 {
        return vec![vec![]];
    }
    recurse(&mut current, 1, 0, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use maly_cost_model::system::Partition;
    use maly_cost_model::WaferCostModel;
    use maly_units::{DesignDensity, Dollars, Probability, TransistorCount};
    use maly_wafer_geom::Wafer;

    fn partition(name: &str, n_tr: f64, d_d: f64) -> Partition {
        Partition::new(
            name,
            TransistorCount::new(n_tr).unwrap(),
            DesignDensity::new(d_d).unwrap(),
        )
    }

    fn context(per_die_overhead: f64) -> ManufacturingContext {
        ManufacturingContext {
            wafer: Wafer::six_inch(),
            reference_yield: Probability::new(0.7).unwrap(),
            wafer_cost: WaferCostModel::new(Dollars::new(700.0).unwrap(), 1.8).unwrap(),
            per_die_overhead: Dollars::new(per_die_overhead).unwrap(),
        }
    }

    fn ladder() -> Vec<Microns> {
        [1.0, 0.8, 0.65, 0.5]
            .iter()
            .map(|&l| Microns::new(l).unwrap())
            .collect()
    }

    #[test]
    fn bell_numbers() {
        assert_eq!(set_partitions(1).len(), 1);
        assert_eq!(set_partitions(2).len(), 2);
        assert_eq!(set_partitions(3).len(), 5);
        assert_eq!(set_partitions(4).len(), 15);
        assert_eq!(set_partitions(5).len(), 52);
    }

    #[test]
    fn partitions_are_canonical() {
        for p in set_partitions(4) {
            assert_eq!(p[0], 0);
            let mut max_seen = 0;
            for &g in &p {
                assert!(g <= max_seen + 1);
                max_seen = max_seen.max(g);
            }
        }
    }

    #[test]
    fn optimizer_beats_naive_single_die_single_lambda() {
        let system = SystemDesign::new(vec![
            partition("dram", 4.0e6, 35.0),
            partition("logic", 0.8e6, 300.0),
            partition("io", 0.1e6, 600.0),
        ])
        .unwrap();
        let ctx = context(5.0);
        let solution = optimize(&system, &ctx, &ladder()).unwrap();
        // The naive candidate: everything on one 0.8 µm die.
        let naive = system
            .evaluate(&ctx, &[0, 0, 0], &[Microns::new(0.8).unwrap()])
            .unwrap();
        assert!(
            solution.cost.total.value() <= naive.total.value() + 1e-9,
            "optimizer {} vs naive {}",
            solution.cost.total.value(),
            naive.total.value()
        );
    }

    #[test]
    fn huge_overhead_forces_merging() {
        let system = SystemDesign::new(vec![
            partition("a", 0.5e6, 150.0),
            partition("b", 0.5e6, 150.0),
        ])
        .unwrap();
        let ctx = context(2000.0);
        let solution = optimize(&system, &ctx, &ladder()).unwrap();
        assert_eq!(solution.grouping, vec![0, 0], "should merge to one die");
        assert_eq!(solution.lambdas.len(), 1);
    }

    #[test]
    fn dense_memory_splits_from_sparse_logic_when_splitting_is_cheap() {
        // A big dense memory block and a sparse logic block under steep
        // escalation (X = 2.4): the memory's huge die needs the shrink
        // for yield, while the small logic die is cheapest on the mature
        // node. With tiny per-die overhead the optimizer splits them.
        let system = SystemDesign::new(vec![
            partition("memory", 3.0e7, 30.0),
            partition("logic", 0.3e6, 500.0),
        ])
        .unwrap();
        let ctx = ManufacturingContext {
            wafer_cost: WaferCostModel::new(Dollars::new(700.0).unwrap(), 2.4).unwrap(),
            ..context(0.5)
        };
        let solution = optimize(&system, &ctx, &ladder()).unwrap();
        assert_eq!(solution.grouping, vec![0, 1], "should split dies");
        // Memory die runs at a finer node than the logic die.
        assert!(
            solution.lambdas[0] < solution.lambdas[1],
            "memory at {}, logic at {}",
            solution.lambdas[0],
            solution.lambdas[1]
        );
    }

    #[test]
    fn too_many_partitions_rejected() {
        let parts: Vec<Partition> = (0..11)
            .map(|i| partition(&format!("p{i}"), 1.0e5, 200.0))
            .collect();
        let system = SystemDesign::new(parts).unwrap();
        assert!(optimize(&system, &context(5.0), &ladder()).is_err());
    }

    #[test]
    fn empty_candidates_rejected() {
        let system = SystemDesign::new(vec![partition("a", 1.0e6, 150.0)]).unwrap();
        assert!(optimize(&system, &context(5.0), &[]).is_err());
    }

    #[test]
    fn solution_is_internally_consistent() {
        let system = SystemDesign::new(vec![
            partition("a", 1.0e6, 100.0),
            partition("b", 2.0e6, 200.0),
        ])
        .unwrap();
        let ctx = context(5.0);
        let solution = optimize(&system, &ctx, &ladder()).unwrap();
        // Re-evaluating the winning assignment reproduces the cost.
        let recheck = system
            .evaluate(&ctx, &solution.grouping, &solution.lambdas)
            .unwrap();
        assert!((recheck.total.value() - solution.cost.total.value()).abs() < 1e-9);
    }
}
