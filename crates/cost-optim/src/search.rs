//! 1-D minimization: golden section and dense grids.

use maly_cost_model::product::ProductScenario;
use maly_cost_model::CostError;
use maly_par::Executor;
use maly_units::Microns;

/// Estimated serial cost of one grid-minimization sample (a memoized
/// eq. (1) stack), used to tune the executor so small scans run serial.
const GRID_SAMPLE_HINT_NS: f64 = 200.0;

/// Estimated serial cost of evaluating one candidate node in the shrink
/// study (a full [`ProductScenario::evaluate_at`]).
const NODE_EVAL_HINT_NS: f64 = 300.0;

/// Golden-section minimization of a unimodal function on `[a, b]`.
///
/// Returns `(x_min, f(x_min))` after converging to `tolerance` in `x`.
/// For non-unimodal functions it still converges, but only to a local
/// minimum — use [`grid_min`] for the floor-riddled cost model.
///
/// # Panics
///
/// Panics if the interval is invalid or the tolerance is not positive.
///
/// # Examples
///
/// ```
/// use maly_cost_optim::search::golden_section;
///
/// let (x, fx) = golden_section(|x| (x - 2.0).powi(2) + 1.0, 0.0, 5.0, 1e-9);
/// assert!((x - 2.0).abs() < 1e-7);
/// assert!((fx - 1.0).abs() < 1e-12);
/// ```
pub fn golden_section(
    f: impl Fn(f64) -> f64,
    mut a: f64,
    mut b: f64,
    tolerance: f64,
) -> (f64, f64) {
    assert!(a < b, "invalid interval [{a}, {b}]");
    assert!(
        tolerance > 0.0 && tolerance.is_finite(),
        "tolerance must be positive"
    );
    let inv_phi = (5.0_f64.sqrt() - 1.0) / 2.0;
    let mut c = b - inv_phi * (b - a);
    let mut d = a + inv_phi * (b - a);
    let mut fc = f(c);
    let mut fd = f(d);
    while (b - a) > tolerance {
        if fc < fd {
            b = d;
            d = c;
            fd = fc;
            c = b - inv_phi * (b - a);
            fc = f(c);
        } else {
            a = c;
            c = d;
            fc = fd;
            d = a + inv_phi * (b - a);
            fd = f(d);
        }
    }
    let x = (a + b) / 2.0;
    (x, f(x))
}

/// Dense-grid minimization on `[a, b]` with `steps` samples.
///
/// Robust against the floor() discontinuities of dies-per-wafer counts;
/// the resolution is `(b − a) / (steps − 1)`.
///
/// # Panics
///
/// Panics if the interval is invalid or `steps < 2`.
pub fn grid_min(f: impl Fn(f64) -> f64 + Sync, a: f64, b: f64, steps: usize) -> (f64, f64) {
    grid_min_with(&Executor::from_env(), f, a, b, steps)
}

/// [`grid_min`] on an explicit executor: samples evaluate in parallel;
/// the minimum is an ordered strict-`<` fold, so the earliest grid
/// point wins ties exactly as in the serial scan.
///
/// # Panics
///
/// Panics if the interval is invalid or `steps < 2`.
pub fn grid_min_with(
    exec: &Executor,
    f: impl Fn(f64) -> f64 + Sync,
    a: f64,
    b: f64,
    steps: usize,
) -> (f64, f64) {
    assert!(a < b, "invalid interval [{a}, {b}]");
    assert!(steps >= 2, "need at least 2 samples");
    let exec = exec.tuned_for(steps, GRID_SAMPLE_HINT_NS);
    let samples = exec.map_indexed(steps, |i| {
        let x = a + (b - a) * i as f64 / (steps - 1) as f64;
        (x, f(x))
    });
    let mut it = samples.into_iter();
    // steps >= 2 was asserted, so the first sample exists.
    let Some(mut best) = it.next() else {
        return (a, f(a));
    };
    for (x, fx) in it {
        if fx < best.1 {
            best = (x, fx);
        }
    }
    best
}

/// The feature size minimizing a product scenario's transistor cost when
/// the *same design* (fixed `N_tr`, fixed `d_d`) is retargeted across
/// nodes — the shrink-planning question of Sec. IV.B.
///
/// Infeasible nodes (die too large for the wafer) are skipped; returns
/// `None` when no node in the window can build the product.
///
/// # Errors
///
/// Propagates input validation from the λ sweep.
pub fn optimal_feature_size(
    scenario: &ProductScenario,
    lambda_min: f64,
    lambda_max: f64,
    steps: usize,
) -> Result<Option<(Microns, f64)>, CostError> {
    optimal_feature_size_with(
        &Executor::from_env(),
        scenario,
        lambda_min,
        lambda_max,
        steps,
    )
}

/// [`optimal_feature_size`] on an explicit executor: node candidates
/// evaluate in parallel; the cheapest is an ordered strict-`<` fold
/// matching the serial scan's tie-break bit for bit.
///
/// # Errors
///
/// As for [`optimal_feature_size`].
pub fn optimal_feature_size_with(
    exec: &Executor,
    scenario: &ProductScenario,
    lambda_min: f64,
    lambda_max: f64,
    steps: usize,
) -> Result<Option<(Microns, f64)>, CostError> {
    if !(lambda_min > 0.0 && lambda_min < lambda_max) || steps < 2 {
        return Err(CostError::InvalidInput(maly_units::UnitError::OutOfRange {
            quantity: "lambda window",
            value: lambda_min,
            min: 0.0,
            max: lambda_max,
        }));
    }
    let exec = exec.tuned_for(steps, NODE_EVAL_HINT_NS);
    let evaluated = exec.map_indexed(steps, |i| -> Result<Option<(Microns, f64)>, CostError> {
        let l = lambda_min + (lambda_max - lambda_min) * i as f64 / (steps - 1) as f64;
        let lambda = Microns::new(l)?;
        Ok(scenario
            .evaluate_at(lambda)
            .ok()
            .map(|breakdown| (lambda, breakdown.cost_per_transistor.value())))
    });
    let mut best: Option<(Microns, f64)> = None;
    for point in evaluated {
        let point = match point {
            Ok(p) => p,
            Err(e) => return Err(e),
        };
        if let Some((lambda, cost)) = point {
            if best.is_none_or(|(_, c)| cost < c) {
                best = Some((lambda, cost));
            }
        }
    }
    Ok(best)
}

#[cfg(test)]
mod tests {
    use maly_units::{Centimeters, DesignDensity, Dollars, Probability, TransistorCount};

    use super::*;

    fn fig8_like_scenario(n_tr: f64) -> ProductScenario {
        ProductScenario::builder("fig8-point")
            .transistors(TransistorCount::new(n_tr).unwrap())
            .feature_size(Microns::new(0.8).unwrap())
            .design_density(DesignDensity::new(152.0).unwrap())
            .wafer_radius(Centimeters::new(7.5).unwrap())
            .reference_yield(Probability::new(0.7).unwrap())
            .reference_wafer_cost(Dollars::new(500.0).unwrap())
            .cost_escalation(1.4)
            .unwrap()
            .build()
            .unwrap()
    }

    #[test]
    fn golden_section_finds_parabola_minimum() {
        let (x, fx) = golden_section(|x| (x - 3.3).powi(2), 0.0, 10.0, 1e-10);
        assert!((x - 3.3).abs() < 1e-7);
        assert!(fx < 1e-12);
    }

    #[test]
    fn golden_section_handles_boundary_minimum() {
        let (x, _) = golden_section(|x| x, 1.0, 2.0, 1e-9);
        assert!((x - 1.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "invalid interval")]
    fn golden_section_rejects_bad_interval() {
        let _ = golden_section(|x| x, 2.0, 1.0, 1e-9);
    }

    #[test]
    fn grid_min_finds_global_among_local_minima() {
        // w-shaped: local min at x≈1 (f=1), global at x≈4 (f=0).
        let f = |x: f64| ((x - 1.0) * (x - 4.0)).powi(2) + (x - 4.0).abs();
        let (x, _) = grid_min(f, 0.0, 5.0, 2001);
        assert!((x - 4.0).abs() < 0.01);
    }

    /// Under the Y₀ (area-scaled) yield convention and moderate X, the
    /// shrink study is monotone: finer nodes always win, so λ^opt sits
    /// at the window's lower edge. (The interior optima of Fig 8 need
    /// the eq. (7) λ^p defect acceleration — tested below.)
    #[test]
    fn y0_convention_shrink_study_is_monotone() {
        let scenario = fig8_like_scenario(1.0e6);
        let (lambda, _) = optimal_feature_size(&scenario, 0.3, 1.5, 241)
            .unwrap()
            .expect("feasible somewhere");
        assert!((lambda.value() - 0.3).abs() < 1e-9, "λ^opt {lambda}");
    }

    /// Fig 8 proper (eq. 7 yield): the cheapest feature size for a fixed
    /// design is *not* the smallest one in the window — the defect
    /// acceleration `D/λ^p` punishes deep shrinks.
    #[test]
    fn fig8_optimum_is_not_the_smallest_lambda() {
        use maly_cost_model::surface::SurfaceParameters;
        use maly_units::TransistorCount;
        let params = SurfaceParameters::fig8();
        let n = TransistorCount::new(1.0e6).unwrap();
        let (lambda, _) = grid_min(
            |l| {
                params
                    .cost_at(Microns::new(l).unwrap(), n)
                    .map_or(f64::INFINITY, |d| d.value())
            },
            0.3,
            1.5,
            481,
        );
        assert!(lambda > 0.6, "λ^opt {lambda} should be well above 0.3");
    }

    /// Fig 8's "number of local optima": the cost-vs-λ curve at fixed
    /// N_tr is non-monotonic because the dies-per-wafer floor() injects
    /// downward jumps into an otherwise smooth tradeoff.
    #[test]
    fn fig8_cost_curve_has_local_optima() {
        use maly_cost_model::surface::SurfaceParameters;
        use maly_units::TransistorCount;
        let params = SurfaceParameters::fig8();
        let n = TransistorCount::new(1.0e6).unwrap();
        let costs: Vec<f64> = (0..600)
            .map(|i| {
                let l = 0.5 + (1.5 - 0.5) * i as f64 / 599.0;
                params
                    .cost_at(Microns::new(l).unwrap(), n)
                    .map_or(f64::INFINITY, |d| d.value())
            })
            .collect();
        let mut sign_changes = 0;
        let mut last_rising: Option<bool> = None;
        for w in costs.windows(2) {
            if !w[0].is_finite() || !w[1].is_finite() || w[0] == w[1] {
                continue;
            }
            let rising = w[1] > w[0];
            if let Some(prev) = last_rising {
                if prev != rising {
                    sign_changes += 1;
                }
            }
            last_rising = Some(rising);
        }
        assert!(
            sign_changes >= 2,
            "expected multiple local optima, saw {sign_changes} slope changes"
        );
    }

    #[test]
    fn infeasible_window_returns_none() {
        // A 100M-transistor design cannot be built at any λ ≥ 1.2 µm on a
        // 6-inch wafer.
        let scenario = fig8_like_scenario(1.0e8);
        let result = optimal_feature_size(&scenario, 1.2, 1.5, 16).unwrap();
        assert!(result.is_none());
    }

    #[test]
    fn window_validation() {
        let scenario = fig8_like_scenario(1.0e6);
        assert!(optimal_feature_size(&scenario, 1.0, 0.5, 10).is_err());
        assert!(optimal_feature_size(&scenario, 0.5, 1.0, 1).is_err());
    }
}
