//! Optimization over the silicon cost model (Sec. IV.B).
//!
//! "By including in the IC system design process such variables as sizes
//! of the system's partitions and minimum feature sizes of each partition
//! one can minimize the overall system cost. It is important to note that
//! the optimum solution may not call for the smallest possible (and
//! expensive) feature size."
//!
//! * [`search`] — 1-D minimization (golden section on smooth functions,
//!   dense grids on the floor-discontinuous cost model) and the
//!   `λ^opt` finder for product scenarios;
//! * [`contour`] — marching-squares contour extraction over
//!   [`maly_cost_model::surface::CostSurface`] grids (Fig 8's
//!   constant-cost curves);
//! * [`partition`] — exhaustive system-partitioning: group partitions
//!   onto dies and pick each die's feature size;
//! * [`pareto`] — Pareto-front extraction for cost/performance studies.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod contour;
pub mod pareto;
pub mod partition;
pub mod search;
