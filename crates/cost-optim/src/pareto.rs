//! Pareto-front extraction for cost/benefit studies.
//!
//! Many of the paper's decisions trade cost against a benefit that is
//! not priced (performance, time to market, coverage). For those, the
//! honest output is the Pareto front, not a single winner.

/// A labeled design point: cost to minimize, benefit to maximize.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignPoint<T> {
    /// Caller's payload (the design this point represents).
    pub design: T,
    /// Cost (lower is better).
    pub cost: f64,
    /// Benefit (higher is better).
    pub benefit: f64,
}

impl<T> DesignPoint<T> {
    /// Creates a point.
    pub fn new(design: T, cost: f64, benefit: f64) -> Self {
        Self {
            design,
            cost,
            benefit,
        }
    }

    /// True when `other` is at least as good on both axes and strictly
    /// better on one.
    #[must_use]
    pub fn dominated_by(&self, other: &DesignPoint<T>) -> bool {
        let as_good = other.cost <= self.cost && other.benefit >= self.benefit;
        let strictly = other.cost < self.cost || other.benefit > self.benefit;
        as_good && strictly
    }
}

/// Extracts the Pareto front (non-dominated points), sorted by ascending
/// cost. Duplicate-coordinate points all survive.
#[must_use]
pub fn pareto_front<T: Clone>(points: &[DesignPoint<T>]) -> Vec<DesignPoint<T>> {
    let mut front: Vec<DesignPoint<T>> = points
        .iter()
        .filter(|p| !points.iter().any(|q| p.dominated_by(q)))
        .cloned()
        .collect();
    front.sort_by(|a, b| a.cost.total_cmp(&b.cost));
    front
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(name: &str, cost: f64, benefit: f64) -> DesignPoint<String> {
        DesignPoint::new(name.to_string(), cost, benefit)
    }

    #[test]
    fn dominated_points_are_dropped() {
        let points = vec![
            pt("cheap-slow", 1.0, 1.0),
            pt("dear-fast", 3.0, 3.0),
            pt("dominated", 2.0, 0.5), // worse than cheap-slow on both
        ];
        let front = pareto_front(&points);
        let names: Vec<&str> = front.iter().map(|p| p.design.as_str()).collect();
        assert_eq!(names, vec!["cheap-slow", "dear-fast"]);
    }

    #[test]
    fn front_is_sorted_by_cost() {
        let points = vec![pt("b", 2.0, 5.0), pt("a", 1.0, 2.0), pt("c", 3.0, 9.0)];
        let front = pareto_front(&points);
        let costs: Vec<f64> = front.iter().map(|p| p.cost).collect();
        assert_eq!(costs, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn identical_points_all_survive() {
        let points = vec![pt("a", 1.0, 1.0), pt("b", 1.0, 1.0)];
        assert_eq!(pareto_front(&points).len(), 2);
    }

    #[test]
    fn single_point_is_its_own_front() {
        let points = vec![pt("only", 5.0, 5.0)];
        assert_eq!(pareto_front(&points).len(), 1);
    }

    #[test]
    fn empty_input_gives_empty_front() {
        let points: Vec<DesignPoint<String>> = vec![];
        assert!(pareto_front(&points).is_empty());
    }

    #[test]
    fn domination_is_strict() {
        let a = pt("a", 1.0, 1.0);
        let b = pt("b", 1.0, 1.0);
        assert!(!a.dominated_by(&b));
        let better = pt("c", 1.0, 2.0);
        assert!(a.dominated_by(&better));
        assert!(!better.dominated_by(&a));
    }
}
