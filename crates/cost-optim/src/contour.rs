//! Marching-squares contour extraction (Fig 8's constant-cost curves).

use maly_cost_model::adaptive::AdaptiveSurface;
use maly_cost_model::surface::CostSurface;
use maly_par::Executor;

/// Estimated serial cost of marching one grid cell (classify + at most
/// two edge interpolations), used to tune the executor: the PR-2
/// baseline showed parallel contour extraction *losing* to serial on
/// small surfaces because thread spawn overhead exceeded the whole
/// march.
const MARCH_CELL_HINT_NS: f64 = 40.0;

/// A contour line: the level and the polyline points `(λ, N_tr)` tracing
/// it (segments concatenated; may contain several disconnected runs).
#[derive(Debug, Clone, PartialEq)]
pub struct ContourLine {
    /// The cost level this contour traces (same unit as the surface —
    /// dollars per transistor).
    pub level: f64,
    /// Line segments, each `((x0, y0), (x1, y1))` in axis coordinates.
    pub segments: Vec<((f64, f64), (f64, f64))>,
}

impl ContourLine {
    /// Number of segments traced.
    #[must_use]
    pub fn len(&self) -> usize {
        self.segments.len()
    }

    /// True when the level crossed no cell.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }
}

/// Extracts constant-cost contours from a cost surface at the given
/// levels, via marching squares with linear interpolation. Cells with
/// missing (infeasible) corners are skipped.
///
/// # Examples
///
/// ```
/// use maly_cost_model::surface::{CostSurface, SurfaceParameters};
/// use maly_cost_optim::contour::extract_contours;
///
/// let surface = CostSurface::compute(
///     &SurfaceParameters::fig8(),
///     (0.4, 1.2, 24),
///     (2.0e5, 5.0e6, 20),
/// );
/// let contours = extract_contours(&surface, &[10.0e-6, 30.0e-6]);
/// assert_eq!(contours.len(), 2);
/// // The 10 µ$ contour exists inside this window.
/// assert!(!contours[0].is_empty());
/// ```
#[must_use]
pub fn extract_contours(surface: &CostSurface, levels: &[f64]) -> Vec<ContourLine> {
    extract_contours_with(&Executor::from_env(), surface, levels)
}

/// [`extract_contours`] on an explicit executor. Cell marching is
/// independent per `(level, row)` strip; strips come back in `(level,
/// row, column)` order, so the segment lists are bit-identical to the
/// serial pass at every thread count.
#[must_use]
pub fn extract_contours_with(
    exec: &Executor,
    surface: &CostSurface,
    levels: &[f64],
) -> Vec<ContourLine> {
    let xs = surface.lambda_axis();
    let ys = surface.n_tr_axis();
    let values = surface.values();
    let rows = xs.len().saturating_sub(1);
    let cell_cols = ys.len().saturating_sub(1);

    // One work item per (level, row-of-cells) strip; tuned so small
    // surfaces march serially instead of paying thread spawns.
    let exec = exec.tuned_for(levels.len() * rows, cell_cols as f64 * MARCH_CELL_HINT_NS);
    let strips = exec.grid(levels.len(), rows.max(1), |li, i| {
        let level = levels[li];
        let mut segments = Vec::new();
        if i >= rows {
            return segments;
        }
        for j in 0..ys.len().saturating_sub(1) {
            // Cell corners: (i,j), (i+1,j), (i+1,j+1), (i,j+1).
            let corners = [
                (xs[i], ys[j], values[i][j]),
                (xs[i + 1], ys[j], values[i + 1][j]),
                (xs[i + 1], ys[j + 1], values[i + 1][j + 1]),
                (xs[i], ys[j + 1], values[i][j + 1]),
            ];
            let Some(vals) = corners
                .iter()
                .map(|(_, _, v)| *v)
                .collect::<Option<Vec<f64>>>()
            else {
                continue;
            };
            segments.extend(march_cell(&corners, &vals, level));
        }
        segments
    });

    levels
        .iter()
        .zip(strips)
        .map(|(&level, rows)| ContourLine {
            level,
            segments: rows.into_iter().flatten().collect(),
        })
        .collect()
}

/// Contour extraction over an adaptively computed surface: only cells in
/// the surface's march mask ([`AdaptiveSurface::cell_is_exact`]) are
/// visited. The mask covers every cell that can carry a segment of a
/// protected level — cells with exact corners plus accepted cells whose
/// values straddle a level — so for levels the surface was refined
/// against, the result equals marching every cell of the same surface,
/// at a fraction of the visits (see `exact_cell_count`).
///
/// # Panics
///
/// Panics if any requested level is not among the surface's
/// [`AdaptiveSurface::protected_levels`] — marching an unprotected level
/// against the mask could silently drop segments.
#[must_use]
pub fn extract_contours_adaptive(surface: &AdaptiveSurface, levels: &[f64]) -> Vec<ContourLine> {
    extract_contours_adaptive_with(&Executor::from_env(), surface, levels)
}

/// [`extract_contours_adaptive`] on an explicit executor. Strips come
/// back in `(level, row, column)` order — the same order as
/// [`extract_contours_with`] — so segment lists are bit-identical to the
/// serial pass at every thread count.
///
/// # Panics
///
/// As for [`extract_contours_adaptive`].
#[must_use]
pub fn extract_contours_adaptive_with(
    exec: &Executor,
    surface: &AdaptiveSurface,
    levels: &[f64],
) -> Vec<ContourLine> {
    for level in levels {
        assert!(
            surface
                .protected_levels()
                .iter()
                .any(|protected| protected == level),
            "level {level} was not protected when the surface was computed"
        );
    }
    let grid = surface.surface();
    let xs = grid.lambda_axis();
    let ys = grid.n_tr_axis();
    let values = grid.values();
    let rows = xs.len().saturating_sub(1);
    let cell_cols = ys.len().saturating_sub(1);

    let exec = exec.tuned_for(levels.len() * rows, cell_cols as f64 * MARCH_CELL_HINT_NS);
    let strips = exec.grid(levels.len(), rows.max(1), |li, i| {
        let level = levels[li];
        let mut segments = Vec::new();
        if i >= rows {
            return segments;
        }
        for j in 0..cell_cols {
            if !surface.cell_is_exact(i, j) {
                continue;
            }
            let corners = [
                (xs[i], ys[j], values[i][j]),
                (xs[i + 1], ys[j], values[i + 1][j]),
                (xs[i + 1], ys[j + 1], values[i + 1][j + 1]),
                (xs[i], ys[j + 1], values[i][j + 1]),
            ];
            let Some(vals) = corners
                .iter()
                .map(|(_, _, v)| *v)
                .collect::<Option<Vec<f64>>>()
            else {
                continue;
            };
            segments.extend(march_cell(&corners, &vals, level));
        }
        segments
    });

    levels
        .iter()
        .zip(strips)
        .map(|(&level, rows)| ContourLine {
            level,
            segments: rows.into_iter().flatten().collect(),
        })
        .collect()
}

/// Marches one cell: finds level crossings on its four edges and pairs
/// them into segments (standard 16-case table, ambiguous saddles split
/// by the cell-average rule).
fn march_cell(
    corners: &[(f64, f64, Option<f64>); 4],
    vals: &[f64],
    level: f64,
) -> Vec<((f64, f64), (f64, f64))> {
    let mut case = 0usize;
    for (bit, v) in vals.iter().enumerate() {
        if *v >= level {
            case |= 1 << bit;
        }
    }
    if case == 0 || case == 0b1111 {
        return Vec::new();
    }

    // Edge k joins corner k and corner (k+1)%4.
    let crossing = |k: usize| -> (f64, f64) {
        let (x0, y0, _) = corners[k];
        let (x1, y1, _) = corners[(k + 1) % 4];
        let v0 = vals[k];
        let v1 = vals[(k + 1) % 4];
        let t = if (v1 - v0).abs() < f64::EPSILON {
            0.5
        } else {
            ((level - v0) / (v1 - v0)).clamp(0.0, 1.0)
        };
        (x0 + t * (x1 - x0), y0 + t * (y1 - y0))
    };

    // For each case, which edges are crossed (pairs in drawing order).
    let edge_pairs: &[(usize, usize)] = match case {
        0b0001 | 0b1110 => &[(0, 3)],
        0b0010 | 0b1101 => &[(0, 1)],
        0b0100 | 0b1011 => &[(1, 2)],
        0b1000 | 0b0111 => &[(2, 3)],
        0b0011 | 0b1100 => &[(1, 3)],
        0b0110 | 0b1001 => &[(0, 2)],
        0b0101 => {
            // Saddle: resolve by center average.
            let center = vals.iter().sum::<f64>() / 4.0;
            if center >= level {
                &[(0, 1), (2, 3)]
            } else {
                &[(0, 3), (1, 2)]
            }
        }
        0b1010 => {
            let center = vals.iter().sum::<f64>() / 4.0;
            if center >= level {
                &[(0, 3), (1, 2)]
            } else {
                &[(0, 1), (2, 3)]
            }
        }
        // audit:allow(panic): the 4-bit marching-squares index is
        // exhaustive — cases 0 and 15 returned early above.
        _ => unreachable!("cases 0 and 15 early-returned"),
    };

    edge_pairs
        .iter()
        .map(|&(a, b)| (crossing(a), crossing(b)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use maly_cost_model::surface::SurfaceParameters;

    fn fig8_surface() -> CostSurface {
        CostSurface::compute(
            &SurfaceParameters::fig8(),
            (0.4, 1.2, 30),
            (2.0e5, 5.0e6, 24),
        )
    }

    #[test]
    fn contours_exist_at_interior_levels() {
        let s = fig8_surface();
        // Find the value range to pick levels that must cross.
        let mut lo = f64::INFINITY;
        let mut hi = 0.0f64;
        for row in s.values() {
            for v in row.iter().flatten() {
                lo = lo.min(*v);
                hi = hi.max(*v);
            }
        }
        let mid = (lo * hi).sqrt(); // geometric mean: interior level
        let contours = extract_contours(&s, &[mid]);
        assert!(!contours[0].is_empty(), "midlevel contour must exist");
    }

    #[test]
    fn out_of_range_levels_give_empty_contours() {
        let s = fig8_surface();
        // Below every cell (the yield-collapse corner reaches absurd
        // costs, so the upper sentinel must be truly enormous).
        let contours = extract_contours(&s, &[1.0e-12, 1.0e80]);
        assert!(contours[0].is_empty());
        assert!(contours[1].is_empty());
    }

    #[test]
    fn segment_endpoints_lie_inside_the_grid() {
        let s = fig8_surface();
        let contours = extract_contours(&s, &[20.0e-6]);
        let (x0, x1) = (s.lambda_axis()[0], *s.lambda_axis().last().unwrap());
        let (y0, y1) = (s.n_tr_axis()[0], *s.n_tr_axis().last().unwrap());
        for seg in &contours[0].segments {
            for p in [seg.0, seg.1] {
                assert!(p.0 >= x0 - 1e-9 && p.0 <= x1 + 1e-9);
                assert!(p.1 >= y0 - 1e-9 && p.1 <= y1 + 1e-9);
            }
        }
    }

    #[test]
    fn crossing_points_interpolate_the_level() {
        // Synthetic planar surface via a tiny grid check: contour of
        // f(x,y) = x at level 0.5 must be the vertical line x = 0.5.
        // (Exercised through the public API on a cost surface is
        // impractical; the planar check uses march_cell directly.)
        let corners = [
            (0.0, 0.0, Some(0.0)),
            (1.0, 0.0, Some(1.0)),
            (1.0, 1.0, Some(1.0)),
            (0.0, 1.0, Some(0.0)),
        ];
        let vals = [0.0, 1.0, 1.0, 0.0];
        let segs = march_cell(&corners, &vals, 0.5);
        assert_eq!(segs.len(), 1);
        let ((ax, _), (bx, _)) = segs[0];
        assert!((ax - 0.5).abs() < 1e-12);
        assert!((bx - 0.5).abs() < 1e-12);
    }

    #[test]
    fn nested_levels_do_not_cross() {
        // Higher-cost contours enclose lower ones around the optimum; a
        // cheap necessary condition: more segments at levels nearer the
        // surface median, zero at the extremes — already covered — plus
        // both requested levels return in order.
        let s = fig8_surface();
        let contours = extract_contours(&s, &[10.0e-6, 40.0e-6]);
        assert_eq!(contours[0].level, 10.0e-6);
        assert_eq!(contours[1].level, 40.0e-6);
    }
}
