//! Smoke test for the parallel-slower-than-serial regression: every
//! sweep entry point must run at least ~as fast on the parallel
//! executor as on the serial one (speedup ≥ 0.95), at any core count.
//!
//! On small machines the overhead-aware `Executor::tuned_for` wiring
//! collapses the parallel path to the serial loop, so the two sides
//! execute identical code and only measurement noise separates them.
//! To keep CPU-throttle drift from failing the test spuriously, the
//! serial and parallel sides are sampled **interleaved** (throttle
//! phases then hit both sides alike) and the comparison retries a few
//! times, asserting only on repeated failure.

use std::hint::black_box;
use std::time::Instant;

use maly_cost_model::surface::{CostSurface, SurfaceParameters};
use maly_cost_optim::contour::extract_contours_with;
use maly_cost_optim::search::grid_min_with;
use maly_par::Executor;

const MIN_SPEEDUP: f64 = 0.95;
const ATTEMPTS: usize = 4;
const REPS: usize = 8;

/// Interleaved serial-vs-parallel timing: alternates the two sides
/// rep by rep and returns `serial_total / parallel_total`.
fn interleaved_speedup(mut serial: impl FnMut(), mut parallel: impl FnMut()) -> f64 {
    // One warmup per side so lazy init (thread pools, memo caches)
    // lands outside the measurement.
    serial();
    parallel();
    let mut serial_total = 0.0f64;
    let mut parallel_total = 0.0f64;
    for _ in 0..REPS {
        let t = Instant::now();
        serial();
        serial_total += t.elapsed().as_secs_f64();
        let t = Instant::now();
        parallel();
        parallel_total += t.elapsed().as_secs_f64();
    }
    serial_total / parallel_total.max(f64::MIN_POSITIVE)
}

/// Retries the interleaved comparison, passing as soon as one attempt
/// clears [`MIN_SPEEDUP`]; panics with the last ratio otherwise.
fn assert_not_slower(label: &str, mut serial: impl FnMut(), mut parallel: impl FnMut()) {
    let mut last = 0.0;
    for _ in 0..ATTEMPTS {
        last = interleaved_speedup(&mut serial, &mut parallel);
        if last >= MIN_SPEEDUP {
            return;
        }
    }
    panic!(
        "{label}: parallel executor is slower than serial \
         (speedup {last:.3} < {MIN_SPEEDUP}) in every attempt"
    );
}

/// The parallel side mirrors the bench baseline: at least 4 threads so
/// the tuned-executor wiring — not a lucky 1-thread ambient default —
/// is what keeps small sweeps off the thread pool.
fn parallel_executor() -> Executor {
    Executor::with_threads(maly_par::default_parallelism().max(4))
}

#[test]
fn fig8_surface_parallel_not_slower() {
    let serial = Executor::serial();
    let parallel = parallel_executor();
    let window = ((0.4, 1.5, 40), (2.0e4, 4.0e6, 32));
    let compute = |exec: &Executor| {
        black_box(CostSurface::compute_with(
            exec,
            &SurfaceParameters::fig8(),
            window.0,
            window.1,
        ));
    };
    assert_not_slower("fig8_surface", || compute(&serial), || compute(&parallel));
}

#[test]
fn contours_parallel_not_slower() {
    let surface = CostSurface::compute_with(
        &Executor::serial(),
        &SurfaceParameters::fig8(),
        (0.4, 1.5, 40),
        (2.0e4, 4.0e6, 32),
    );
    let levels = [3.0e-6, 1.0e-5, 3.0e-5, 1.0e-4];
    let serial = Executor::serial();
    let parallel = parallel_executor();
    assert_not_slower(
        "contours",
        || {
            black_box(extract_contours_with(&serial, &surface, &levels));
        },
        || {
            black_box(extract_contours_with(&parallel, &surface, &levels));
        },
    );
}

#[test]
fn grid_min_parallel_not_slower() {
    let scenario = maly_bench::standard_product();
    let f = |l: f64| {
        maly_units::Microns::new(l)
            .ok()
            .and_then(|lambda| scenario.evaluate_at(lambda).ok())
            .map_or(f64::INFINITY, |b| b.cost_per_transistor.value())
    };
    let serial = Executor::serial();
    let parallel = parallel_executor();
    assert_not_slower(
        "grid_min",
        || {
            black_box(grid_min_with(&serial, f, 0.4, 1.5, 481));
        },
        || {
            black_box(grid_min_with(&parallel, f, 0.4, 1.5, 481));
        },
    );
}

#[test]
fn partition_search_parallel_not_slower() {
    use maly_cost_model::system::{ManufacturingContext, Partition, SystemDesign};
    use maly_cost_model::WaferCostModel;
    use maly_cost_optim::partition::optimize_with;
    use maly_units::{DesignDensity, Dollars, Microns, Probability, TransistorCount};
    use maly_wafer_geom::Wafer;

    let system = SystemDesign::new(vec![
        Partition::new(
            "dram",
            TransistorCount::new(4.0e6).unwrap(),
            DesignDensity::new(35.0).unwrap(),
        ),
        Partition::new(
            "logic",
            TransistorCount::new(0.8e6).unwrap(),
            DesignDensity::new(300.0).unwrap(),
        ),
        Partition::new(
            "io",
            TransistorCount::new(0.1e6).unwrap(),
            DesignDensity::new(600.0).unwrap(),
        ),
        Partition::new(
            "cache",
            TransistorCount::new(1.5e6).unwrap(),
            DesignDensity::new(60.0).unwrap(),
        ),
    ])
    .unwrap();
    let context = ManufacturingContext {
        wafer: Wafer::six_inch(),
        reference_yield: Probability::new(0.7).unwrap(),
        wafer_cost: WaferCostModel::new(Dollars::new(700.0).unwrap(), 1.8).unwrap(),
        per_die_overhead: Dollars::new(5.0).unwrap(),
    };
    let ladder: Vec<Microns> = [1.0, 0.8, 0.65, 0.5]
        .iter()
        .map(|&l| Microns::new(l).unwrap())
        .collect();
    let serial = Executor::serial();
    let parallel = parallel_executor();
    assert_not_slower(
        "partition_search",
        || {
            black_box(optimize_with(&serial, &system, &context, &ladder).unwrap());
        },
        || {
            black_box(optimize_with(&parallel, &system, &context, &ladder).unwrap());
        },
    );
}
