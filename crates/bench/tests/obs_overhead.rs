//! Enforces the maly-obs disabled-cost contract: with observability
//! off, a probe is one relaxed atomic load (span) or one relaxed
//! shard add (counter) — instrumented code must run within ~1% of the
//! same computation with no probes at all.
//!
//! The two sides run through the **same** serial-executor path so the
//! only delta between them is the per-item probe pair; comparing an
//! executor map against a bare iterator would charge the executor's
//! own (constant) overhead to the probes. The per-item workload is
//! sized so that even the unoptimized test-profile probe cost (a
//! non-inlined call plus a TLS shard lookup, tens of nanoseconds)
//! stays below the 1% budget — in release builds the probes compile
//! down to the advertised single relaxed load.
//!
//! The measurement mirrors `speedup_smoke`: the instrumented and raw
//! sides are sampled **interleaved** so CPU-throttle drift hits both
//! alike, and the comparison retries, asserting only on repeated
//! failure.

use std::hint::black_box;
use std::time::Instant;

use maly_par::Executor;

const MIN_RATIO: f64 = 0.99;
const ATTEMPTS: usize = 6;
const REPS: usize = 8;
const ITEMS: usize = 1024;
const WORK_ITERS: u32 = 512;

/// Per-item diag counter exercised by the instrumented side.
static OVERHEAD_ITEMS: maly_obs::Counter = maly_obs::Counter::diag("test.obs_overhead.items");

/// Several microseconds of real float work per item.
fn work(i: usize) -> f64 {
    let x = (i % 97) as f64 * 0.013 + 0.4;
    let mut acc = 0.0f64;
    for k in 1..=WORK_ITERS {
        acc += (x * f64::from(k)).sqrt().ln_1p();
    }
    acc
}

/// The instrumented side: the serial-executor path with a disabled
/// span and a counter probe per item.
fn instrumented(exec: &Executor) -> Vec<f64> {
    exec.map_indexed(ITEMS, |i| {
        let _span = maly_obs::span("test.obs_overhead.item");
        OVERHEAD_ITEMS.incr();
        work(i)
    })
}

/// The raw side: the identical executor path with no probes.
fn raw(exec: &Executor) -> Vec<f64> {
    exec.map_indexed(ITEMS, work)
}

/// Interleaved timing; returns `raw_total / instrumented_total`
/// (1.0 = probes perfectly free, smaller = probes cost time).
fn interleaved_ratio(exec: &Executor) -> f64 {
    black_box(instrumented(exec));
    black_box(raw(exec));
    let mut instr_total = 0.0f64;
    let mut raw_total = 0.0f64;
    for _ in 0..REPS {
        let t = Instant::now();
        black_box(instrumented(exec));
        instr_total += t.elapsed().as_secs_f64();
        let t = Instant::now();
        black_box(raw(exec));
        raw_total += t.elapsed().as_secs_f64();
    }
    raw_total / instr_total.max(f64::MIN_POSITIVE)
}

#[test]
fn disabled_probes_cost_at_most_one_percent() {
    // CI runs the suite with MALY_OBS=1; this test is specifically
    // about the *disabled* contract, so force probes off.
    maly_obs::set_enabled(false);
    let exec = Executor::serial();
    assert_eq!(
        instrumented(&exec),
        raw(&exec),
        "probes must not change values"
    );
    let mut last = 0.0;
    for _ in 0..ATTEMPTS {
        last = interleaved_ratio(&exec);
        if last >= MIN_RATIO {
            return;
        }
    }
    panic!(
        "disabled obs probes slow the workload beyond 1% \
         (ratio {last:.4} < {MIN_RATIO}) in every attempt"
    );
}
