//! Enforces the maly-obs determinism contract with observability ON:
//!
//! * golden outputs (adaptive surface, Monte Carlo report) stay
//!   bit-identical at 1 / 2 / 8 threads while spans and counters are
//!   being collected;
//! * Work-kind counter totals are thread-count-invariant — they count
//!   model evaluations fixed by the configuration, not scheduling;
//! * the recorded span tree is well-formed: every parent id was
//!   actually recorded.
//!
//! A single `#[test]` owns the whole sequence because the obs enabled
//! flag, counter registry, and span list are process-global.

use maly_cost_model::adaptive::{AdaptiveConfig, AdaptiveSurface, DEFAULT_TOL};
use maly_cost_model::surface::SurfaceParameters;
use maly_fabline_sim::cost::FabEconomics;
use maly_fabline_sim::mc::{run_with, McConfig, McReport};
use maly_fabline_sim::process::ProcessFlow;
use maly_obs::CounterKind;
use maly_par::Executor;

const WINDOW: ((f64, f64, usize), (f64, f64, usize)) = ((0.4, 1.5, 32), (2.0e4, 4.0e6, 24));

/// One traced run at a given thread count: adaptive surface + MC study.
fn traced_run(threads: usize) -> (AdaptiveSurface, McReport, Vec<(&'static str, u64)>) {
    maly_obs::reset_metrics();
    let exec = Executor::with_threads(threads);
    let surface = AdaptiveSurface::compute_with(
        &exec,
        &SurfaceParameters::fig8(),
        WINDOW.0,
        WINDOW.1,
        &AdaptiveConfig::new(DEFAULT_TOL),
    );
    let economics = FabEconomics::default();
    let demand = vec![
        (ProcessFlow::for_generation("cmos-0.8", 0.8), 20_000.0),
        (ProcessFlow::for_generation("cmos-1.2", 1.2), 5_000.0),
    ];
    let config = McConfig {
        replications: 64,
        ..McConfig::default()
    };
    let report = run_with(&exec, &economics, &demand, &config).expect("valid MC config");
    // counters_snapshot() is name-sorted, so the Work subset compares
    // positionally across runs.
    let work: Vec<(&'static str, u64)> = maly_obs::counters_snapshot()
        .into_iter()
        .filter(|c| c.kind == CounterKind::Work)
        .map(|c| (c.name, c.value))
        .collect();
    (surface, report, work)
}

#[test]
fn traced_runs_are_bit_identical_across_thread_counts() {
    maly_obs::set_enabled(true);
    let (surface_1, report_1, work_1) = traced_run(1);
    assert!(
        work_1
            .iter()
            .any(|(name, v)| *name == "mc.replications" && *v == 64),
        "expected mc.replications = 64 in {work_1:?}"
    );
    assert!(
        work_1
            .iter()
            .any(|(name, v)| name.starts_with("adaptive.") && *v > 0),
        "expected adaptive work counters in {work_1:?}"
    );
    for threads in [2usize, 8] {
        let (surface_t, report_t, work_t) = traced_run(threads);
        assert_eq!(
            surface_1.surface(),
            surface_t.surface(),
            "surface differs at {threads} threads"
        );
        assert_eq!(
            surface_1.stats(),
            surface_t.stats(),
            "adaptive stats differ at {threads} threads"
        );
        assert_eq!(report_1, report_t, "MC report differs at {threads} threads");
        assert_eq!(
            work_1, work_t,
            "Work counter totals differ at {threads} threads"
        );
    }

    // The span tree recorded along the way must reference only spans
    // that were themselves recorded (completion order writes children
    // before parents, so collect ids first).
    let spans = maly_obs::finished_spans();
    assert!(!spans.is_empty(), "traced runs must record spans");
    let ids: std::collections::HashSet<u64> = spans.iter().map(|s| s.id).collect();
    for span in &spans {
        if let Some(parent) = span.parent {
            assert!(
                ids.contains(&parent),
                "span {} has unrecorded parent",
                span.id
            );
        }
        assert!(span.start_ns <= span.end_ns);
    }

    // And the export of all this is line-parseable ndjson.
    let export = maly_obs::export_ndjson();
    for line in export.lines() {
        assert!(
            line.starts_with('{') && line.ends_with('}') && line.contains("\"type\":"),
            "bad export line: {line}"
        );
    }
    maly_obs::set_enabled(false);
}
