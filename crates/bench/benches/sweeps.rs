//! Serial vs parallel timing for every sweep hot path, plus the
//! eq. (4) memo cache — the `BENCH_sweeps.json` baseline.
//!
//! Before timing anything, each comparison asserts the parallel result
//! is **bit-identical** to the serial one: a fast wrong sweep would be
//! worthless. The JSON records `available_parallelism` so a baseline
//! from a single-core container (speedup ≈ 1) is not mistaken for a
//! regression; the memo-cache cold/warm comparison is core-count
//! independent.

use std::hint::black_box;

use maly_bench::harness::{
    bench_pair, group, record_counter, record_per_eval, record_speedup, write_json_if_requested,
};
use maly_cost_model::adaptive::{AdaptiveConfig, AdaptiveSurface, DEFAULT_TOL};
use maly_cost_model::surface::{CostSurface, SurfaceParameters};
use maly_cost_optim::contour::{extract_contours_adaptive_with, extract_contours_with};
use maly_cost_optim::partition::optimize_with;
use maly_cost_optim::search::grid_min_with;
use maly_par::Executor;
use maly_units::{Centimeters, DesignDensity, Dollars, Microns, Probability, TransistorCount};
use maly_wafer_geom::{cache, DieDimensions, Wafer};

/// Threads for the "parallel" side: at least 4 so the baseline captures
/// the issue's 4-thread target even when the ambient default is 1.
fn parallel_executor() -> Executor {
    Executor::with_threads(maly_par::default_parallelism().max(4))
}

fn fig8_surface(exec: &Executor) -> CostSurface {
    CostSurface::compute_with(
        exec,
        &SurfaceParameters::fig8(),
        FIG8_WINDOW.0,
        FIG8_WINDOW.1,
    )
}

const FIG8_WINDOW: ((f64, f64, usize), (f64, f64, usize)) = ((0.4, 1.5, 56), (2.0e4, 4.0e6, 48));

/// Same window at 4× the node count. The lane kernels pushed the 56×48
/// scan under the executor's serial cutoff, so this denser grid is the
/// surface record that still demonstrates multi-core scaling (the
/// speedup gate in `xtask bench-check` keys on the best per-group
/// ratio).
const FIG8_WINDOW_DENSE: ((f64, f64, usize), (f64, f64, usize)) =
    ((0.4, 1.5, 112), (2.0e4, 4.0e6, 96));

const CONTOUR_LEVELS: [f64; 5] = [3.0e-6, 1.0e-5, 3.0e-5, 1.0e-4, 3.0e-4];

fn adaptive_surface(exec: &Executor, config: &AdaptiveConfig) -> AdaptiveSurface {
    AdaptiveSurface::compute_with(
        exec,
        &SurfaceParameters::fig8(),
        FIG8_WINDOW.0,
        FIG8_WINDOW.1,
        config,
    )
}

fn bench_fig8_surface() {
    group("sweeps/fig8_surface");
    let serial_exec = Executor::serial();
    let par_exec = parallel_executor();
    assert_eq!(
        fig8_surface(&serial_exec),
        fig8_surface(&par_exec),
        "parallel surface must be bit-identical to serial"
    );
    // Correctness before timing: tol = 0 must be bit-identical to the
    // dense scan; the default tolerance must stay within tol of it with
    // the same feasibility mask.
    let dense = fig8_surface(&serial_exec);
    let config = AdaptiveConfig::new(DEFAULT_TOL);
    assert_eq!(
        adaptive_surface(&serial_exec, &AdaptiveConfig::exact()).surface(),
        &dense,
        "tol = 0 adaptive surface must be bit-identical to dense"
    );
    let approx = adaptive_surface(&serial_exec, &config);
    for (dr, ar) in dense.values().iter().zip(approx.surface().values()) {
        for (dv, av) in dr.iter().zip(ar) {
            match (dv, av) {
                (Some(d), Some(a)) => assert!(
                    (d - a).abs() / d.abs().max(f64::MIN_POSITIVE) <= DEFAULT_TOL,
                    "adaptive surface strayed beyond tol"
                ),
                (None, None) => {}
                _ => panic!("adaptive feasibility mask must match dense"),
            }
        }
    }
    let (serial, parallel) = bench_pair(
        "surface_56x48/serial",
        || {
            black_box(fig8_surface(&serial_exec));
        },
        "surface_56x48/parallel",
        || {
            black_box(fig8_surface(&par_exec));
        },
    );
    record_speedup("surface_56x48", serial, parallel);
    let (dense, adaptive) = bench_pair(
        "surface_56x48/dense",
        || {
            black_box(fig8_surface(&serial_exec));
        },
        "surface_56x48/adaptive",
        || {
            black_box(adaptive_surface(&serial_exec, &config));
        },
    );
    record_speedup("surface_56x48_dense_vs_adaptive", dense, adaptive);
    let stats = approx.stats();
    record_counter("surface_56x48/eq1_dense_evals", stats.grid_points as u64);
    record_counter("surface_56x48/eq1_mesh_evals", stats.evaluated as u64);
    record_counter(
        "surface_56x48/eq1_exact_zone_evals",
        stats.analytic_exact as u64,
    );
    record_counter("surface_56x48/interpolated", stats.interpolated as u64);
    record_per_eval("surface_56x48_dense", dense, stats.grid_points as u64);
    record_per_eval(
        "surface_56x48_adaptive_mesh",
        adaptive,
        stats.exact_points() as u64,
    );

    // The 4×-denser window: big enough that the tuned executor leaves
    // the serial path even after the lane-kernel speedup, so this is
    // the record the multi-core speedup gate watches.
    let large = |exec: &Executor| {
        CostSurface::compute_with(
            exec,
            &SurfaceParameters::fig8(),
            FIG8_WINDOW_DENSE.0,
            FIG8_WINDOW_DENSE.1,
        )
    };
    assert_eq!(
        large(&serial_exec),
        large(&par_exec),
        "parallel 112x96 surface must be bit-identical to serial"
    );
    let (serial, parallel) = bench_pair(
        "surface_112x96/serial",
        || {
            black_box(large(&serial_exec));
        },
        "surface_112x96/parallel",
        || {
            black_box(large(&par_exec));
        },
    );
    record_speedup("surface_112x96", serial, parallel);
    let points = (FIG8_WINDOW_DENSE.0 .2 * FIG8_WINDOW_DENSE.1 .2) as u64;
    record_per_eval("surface_112x96_dense", serial, points);
}

fn bench_contours() {
    group("sweeps/contours");
    let surface = fig8_surface(&Executor::serial());
    let levels = CONTOUR_LEVELS;
    let serial_exec = Executor::serial();
    let par_exec = parallel_executor();
    assert_eq!(
        extract_contours_with(&serial_exec, &surface, &levels),
        extract_contours_with(&par_exec, &surface, &levels),
        "parallel contours must be bit-identical to serial"
    );
    // Correctness before timing: masked marching at tol = 0 reproduces
    // the dense contour segments exactly.
    let exact = adaptive_surface(&serial_exec, &AdaptiveConfig::exact().with_levels(&levels));
    assert_eq!(
        extract_contours_adaptive_with(&serial_exec, &exact, &levels),
        extract_contours_with(&serial_exec, &surface, &levels),
        "adaptive contours at tol = 0 must match dense contours"
    );
    let adaptive = adaptive_surface(
        &serial_exec,
        &AdaptiveConfig::new(DEFAULT_TOL).with_levels(&levels),
    );
    let (serial, parallel) = bench_pair(
        "contours_5_levels/serial",
        || {
            black_box(extract_contours_with(&serial_exec, &surface, &levels));
        },
        "contours_5_levels/parallel",
        || {
            black_box(extract_contours_with(&par_exec, &surface, &levels));
        },
    );
    record_speedup("contours_5_levels", serial, parallel);
    // Masked marching over the precomputed adaptive surface: same
    // measurement shape as the dense rows above (surface excluded).
    let (dense, masked) = bench_pair(
        "contours_5_levels/dense",
        || {
            black_box(extract_contours_with(&serial_exec, &surface, &levels));
        },
        "contours_5_levels/adaptive",
        || {
            black_box(extract_contours_adaptive_with(
                &serial_exec,
                &adaptive,
                &levels,
            ));
        },
    );
    record_speedup("contours_5_levels_dense_vs_adaptive", dense, masked);
    record_counter(
        "contours_5_levels/marchable_cells",
        adaptive.exact_cell_count() as u64,
    );
    record_counter(
        "contours_5_levels/total_cells",
        ((FIG8_WINDOW.0 .2 - 1) * (FIG8_WINDOW.1 .2 - 1)) as u64,
    );
}

fn bench_partition_search() {
    use maly_cost_model::system::{ManufacturingContext, Partition, SystemDesign};
    use maly_cost_model::WaferCostModel;

    group("sweeps/partition");
    let part = |name: &str, n_tr: f64, d_d: f64| {
        Partition::new(
            name,
            TransistorCount::new(n_tr).expect("positive"),
            DesignDensity::new(d_d).expect("positive"),
        )
    };
    let system = SystemDesign::new(vec![
        part("dram", 4.0e6, 35.0),
        part("logic", 0.8e6, 300.0),
        part("io", 0.1e6, 600.0),
        part("analog", 0.2e6, 450.0),
        part("cache", 1.5e6, 60.0),
    ])
    .expect("non-empty");
    let context = ManufacturingContext {
        wafer: Wafer::six_inch(),
        reference_yield: Probability::new(0.7).expect("valid"),
        wafer_cost: WaferCostModel::new(Dollars::new(700.0).expect("valid"), 1.8).expect("valid"),
        per_die_overhead: Dollars::new(5.0).expect("valid"),
    };
    let ladder: Vec<Microns> = [1.0, 0.8, 0.65, 0.5]
        .iter()
        .map(|&l| Microns::new(l).expect("positive"))
        .collect();

    let serial_exec = Executor::serial();
    let par_exec = parallel_executor();
    assert_eq!(
        optimize_with(&serial_exec, &system, &context, &ladder).expect("feasible"),
        optimize_with(&par_exec, &system, &context, &ladder).expect("feasible"),
        "parallel partition search must be bit-identical to serial"
    );
    let (serial, parallel) = bench_pair(
        "partition_bell5_x4/serial",
        || {
            black_box(optimize_with(&serial_exec, &system, &context, &ladder).expect("feasible"));
        },
        "partition_bell5_x4/parallel",
        || {
            black_box(optimize_with(&par_exec, &system, &context, &ladder).expect("feasible"));
        },
    );
    record_speedup("partition_bell5_x4", serial, parallel);
}

fn bench_grid_min() {
    group("sweeps/grid_min");
    let scenario = maly_bench::standard_product();
    let f = |l: f64| {
        Microns::new(l)
            .ok()
            .and_then(|lambda| scenario.evaluate_at(lambda).ok())
            .map_or(f64::INFINITY, |b| b.cost_per_transistor.value())
    };
    let serial_exec = Executor::serial();
    let par_exec = parallel_executor();
    let s = grid_min_with(&serial_exec, f, 0.4, 1.5, 481);
    let p = grid_min_with(&par_exec, f, 0.4, 1.5, 481);
    assert_eq!(s.0.to_bits(), p.0.to_bits(), "tie-break must match serial");
    assert_eq!(s.1.to_bits(), p.1.to_bits(), "tie-break must match serial");
    let (serial, parallel) = bench_pair(
        "lambda_grid_481/serial",
        || {
            black_box(grid_min_with(&serial_exec, f, 0.4, 1.5, 481));
        },
        "lambda_grid_481/parallel",
        || {
            black_box(grid_min_with(&par_exec, f, 0.4, 1.5, 481));
        },
    );
    record_speedup("lambda_grid_481", serial, parallel);
}

fn bench_mc() {
    use maly_fabline_sim::cost::FabEconomics;
    use maly_fabline_sim::mc::{run_with, McConfig};
    use maly_fabline_sim::process::ProcessFlow;

    group("sweeps/mc");
    let economics = FabEconomics::default();
    let demand = vec![
        (ProcessFlow::for_generation("cmos-0.8", 0.8), 20_000.0),
        (ProcessFlow::for_generation("cmos-1.2", 1.2), 5_000.0),
    ];
    let config = McConfig {
        replications: 64,
        ..McConfig::default()
    };
    let serial_exec = Executor::serial();
    let par_exec = parallel_executor();
    assert_eq!(
        run_with(&serial_exec, &economics, &demand, &config).expect("valid MC config"),
        run_with(&par_exec, &economics, &demand, &config).expect("valid MC config"),
        "parallel MC study must be bit-identical to serial"
    );
    let (serial, parallel) = bench_pair(
        "mc_yield_64/serial",
        || {
            black_box(run_with(&serial_exec, &economics, &demand, &config).expect("valid config"));
        },
        "mc_yield_64/parallel",
        || {
            black_box(run_with(&par_exec, &economics, &demand, &config).expect("valid config"));
        },
    );
    record_speedup("mc_yield_64", serial, parallel);
    record_per_eval(
        "mc_yield_64_replication",
        serial,
        config.replications as u64,
    );
}

fn bench_fused_batch() {
    use maly_model::{plan, EvalContext, Query};

    group("sweeps/fused_batch");
    // The ISSUE 8 acceptance batch: four λ windows sliding by half a
    // window over a shared N_tr range. Dyadic endpoints land the 9-step
    // axes on bit-identical λ = k/16 rows, so of the 864 requested
    // cells only 360 are unique — the fused path evaluates exactly
    // those.
    let batch: Vec<Query> = [0.5, 0.625, 0.75, 0.875]
        .iter()
        .map(|&lo| Query::SurfaceTile {
            lambda_min: lo,
            lambda_max: lo + 0.5,
            lambda_steps: 9,
            n_tr_min: 2.0e4,
            n_tr_max: 4.0e6,
            n_tr_steps: 24,
        })
        .collect();
    let exec = Executor::serial();
    // Correctness before timing: the fused batch must be byte-identical
    // to the unfused one.
    let fused_out = Query::evaluate_batch(&exec, &EvalContext::new(), &batch);
    let unfused_out = Query::evaluate_batch_unplanned(&exec, &EvalContext::new(), &batch);
    assert_eq!(fused_out.len(), unfused_out.len());
    for (f, u) in fused_out.iter().zip(&unfused_out) {
        let bytes = |r: &Result<maly_model::QueryResponse, maly_model::Error>| match r {
            Ok(resp) => resp.to_json().write(),
            Err(e) => format!("err:{e:?}"),
        };
        assert_eq!(bytes(f), bytes(u), "fusion must not change bytes");
    }
    // Plan counters from one controlled run (fresh context, so every
    // tile is cold): deterministic, diffed exactly by bench-check.
    if plan::enabled() {
        let requested0 = plan::NODES_REQUESTED.value();
        let evaluated0 = plan::NODES_EVALUATED.value();
        let dispatches0 = plan::FUSED_DISPATCHES.value();
        black_box(Query::evaluate_batch(&exec, &EvalContext::new(), &batch));
        record_counter(
            "batch_4tiles/plan_nodes_requested",
            plan::NODES_REQUESTED.value() - requested0,
        );
        record_counter(
            "batch_4tiles/plan_nodes_evaluated",
            plan::NODES_EVALUATED.value() - evaluated0,
        );
        record_counter(
            "batch_4tiles/plan_fused_dispatches",
            plan::FUSED_DISPATCHES.value() - dispatches0,
        );
    }
    // Fresh context per iteration: this measures the cold-batch cost
    // the plan exists to cut, at one thread, so the ratio is pure work
    // elimination rather than scheduling.
    let (unfused, fused) = bench_pair(
        "batch_4tiles/unfused",
        || {
            black_box(Query::evaluate_batch_unplanned(
                &exec,
                &EvalContext::new(),
                &batch,
            ));
        },
        "batch_4tiles/fused",
        || {
            black_box(Query::evaluate_batch(&exec, &EvalContext::new(), &batch));
        },
    );
    record_speedup("batch_4tiles_unfused_vs_fused", unfused, fused);
}

fn bench_chiplet() {
    use maly_chiplet::{ChipletParameters, SweepSpec, DIE_POINTS, PARTITIONS};

    group("sweeps/chiplet");
    let params = ChipletParameters::fig8_mcm();
    // A denser grid than the ISSUE 10 reference (31 λ × 16 n × 4 s)
    // so the candidate loop is worth scheduling across cores.
    let spec = SweepSpec {
        system_transistors: TransistorCount::new(2.0e6).expect("positive"),
        volume: 50_000,
        lambda_min: Microns::new(0.5).expect("positive"),
        lambda_max: Microns::new(1.2).expect("positive"),
        lambda_steps: 31,
        max_chiplets: 16,
        max_spares: 3,
    };
    let serial_exec = Executor::serial();
    let par_exec = parallel_executor();
    // Correctness before timing: the parallel partition search must be
    // bit-identical to the serial one.
    assert_eq!(
        params.sweep(&spec, &serial_exec).expect("feasible sweep"),
        params.sweep(&spec, &par_exec).expect("feasible sweep"),
        "parallel partition sweep must be bit-identical to serial"
    );
    // Work-counter deltas from one controlled run: deterministic grid
    // size, diffed exactly by bench-check.
    let partitions0 = PARTITIONS.value();
    let die_points0 = DIE_POINTS.value();
    black_box(params.sweep(&spec, &serial_exec).expect("feasible sweep"));
    record_counter(
        "partition_sweep_31x16x4/chiplet_partitions",
        PARTITIONS.value() - partitions0,
    );
    record_counter(
        "partition_sweep_31x16x4/chiplet_die_points",
        DIE_POINTS.value() - die_points0,
    );
    let (serial, parallel) = bench_pair(
        "partition_sweep_31x16x4/serial",
        || {
            black_box(params.sweep(&spec, &serial_exec).expect("feasible sweep"));
        },
        "partition_sweep_31x16x4/parallel",
        || {
            black_box(params.sweep(&spec, &par_exec).expect("feasible sweep"));
        },
    );
    record_speedup("partition_sweep_31x16x4", serial, parallel);
}

fn bench_eq4_cache() {
    group("eq4_cache");
    let wafer = Wafer::six_inch();
    let dies: Vec<DieDimensions> = (0..64)
        .map(|i| {
            let side = Centimeters::new(0.3 + 0.02 * f64::from(i)).expect("positive side");
            DieDimensions::square(side)
        })
        .collect();
    // Cold recomputes the eq. (4) sum on every lookup; warm serves the
    // same sweep from the memo. Each cold sample leaves the cache
    // filled, so the interleaved warm samples always hit.
    let (cold, warm) = bench_pair(
        "dies_per_wafer_64_dies/cold",
        || {
            cache::clear();
            for die in &dies {
                black_box(cache::dies_per_wafer(&wafer, *die));
            }
        },
        "dies_per_wafer_64_dies/warm",
        || {
            for die in &dies {
                black_box(cache::dies_per_wafer(&wafer, *die));
            }
        },
    );
    record_speedup("dies_per_wafer_64_dies_cold_vs_warm", cold, warm);
    let stats = cache::stats();
    println!(
        "cache stats: {} hits / {} misses ({:.1}% hit rate)",
        stats.hits,
        stats.misses,
        stats.hit_rate() * 100.0
    );
}

fn bench_obs_work() {
    use maly_fabline_sim::cost::FabEconomics;
    use maly_fabline_sim::mc::{run_with, McConfig};
    use maly_fabline_sim::process::ProcessFlow;

    group("obs/work");
    // Controlled serial workload on a clean slate: the snapshot must
    // reflect exactly one adaptive surface and one MC study, not
    // whatever iteration counts the timed benches above calibrated to.
    // Only Work-kind counters land in the baseline — they are
    // thread-count-invariant and deterministic; Diag counters (par
    // scheduling, cache hit/miss) legitimately vary by machine.
    maly_obs::reset_metrics();
    let serial_exec = Executor::serial();
    black_box(adaptive_surface(
        &serial_exec,
        &AdaptiveConfig::new(DEFAULT_TOL),
    ));
    let economics = FabEconomics::default();
    let demand = vec![
        (ProcessFlow::for_generation("cmos-0.8", 0.8), 20_000.0),
        (ProcessFlow::for_generation("cmos-1.2", 1.2), 5_000.0),
    ];
    let config = McConfig {
        replications: 64,
        ..McConfig::default()
    };
    black_box(run_with(&serial_exec, &economics, &demand, &config).expect("valid MC config"));
    for c in maly_obs::counters_snapshot() {
        if c.kind == maly_obs::CounterKind::Work {
            record_counter(&format!("obs/{}", c.name), c.value);
        }
    }
}

fn main() {
    bench_fig8_surface();
    bench_contours();
    bench_partition_search();
    bench_grid_min();
    bench_mc();
    bench_fused_batch();
    bench_chiplet();
    bench_eq4_cache();
    bench_obs_work();
    write_json_if_requested();
}
