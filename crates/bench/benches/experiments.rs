//! One group per paper table/figure: how fast each experiment
//! regenerates. These are the "can a designer sweep this interactively?"
//! numbers — everything should sit comfortably under a millisecond
//! except the Fig 8 surface.

use std::hint::black_box;

use maly_bench::harness::{bench, group};
use maly_cost_model::scenario::{Scenario1, Scenario2};
use maly_cost_model::surface::{CostSurface, SurfaceParameters};
use maly_cost_optim::contour::extract_contours;
use maly_paper_data::table3;
use maly_tech_trend::{datasets, diesize::DieSizeTrend, fit};
use maly_units::Microns;
use maly_yield_model::defects::DefectSizeDistribution;

fn bench_fig1_to_fig4_trend_fits() {
    group("fig1-4_trends");
    bench("fig1_feature_size_fit", || {
        black_box(fit::fit_exponential(black_box(datasets::FEATURE_SIZE_BY_YEAR)).unwrap());
    });
    bench("fig2_extract_x", || {
        black_box(
            fit::extract_cost_escalation(black_box(datasets::WAFER_COST_BY_GENERATION)).unwrap(),
        );
    });
    bench("fig3_die_size_fit", || {
        black_box(DieSizeTrend::fit(black_box(datasets::DIE_SIZE_BY_GENERATION)).unwrap());
    });
}

fn bench_fig5_defect_distribution() {
    group("fig5");
    let dist = DefectSizeDistribution::classic(Microns::new(0.1).unwrap(), 4.07).unwrap();
    bench("fig5_survival_sweep", || {
        let mut acc = 0.0;
        for i in 1..200 {
            acc += dist.fraction_larger_than(Microns::new(f64::from(i) * 0.01).unwrap());
        }
        black_box(acc);
    });
}

fn bench_fig6_scenario1() {
    group("fig6");
    let s1 = Scenario1::fig6(1.2).unwrap();
    let lo = Microns::new(0.25).unwrap();
    let hi = Microns::new(1.0).unwrap();
    bench("fig6_sweep_40pts", || {
        black_box(s1.sweep(lo, hi, 40));
    });
}

fn bench_fig7_scenario2() {
    group("fig7");
    let s2 = Scenario2::fig7(2.4).unwrap();
    let lo = Microns::new(0.25).unwrap();
    let hi = Microns::new(1.0).unwrap();
    bench("fig7_sweep_40pts", || {
        black_box(s2.sweep(lo, hi, 40));
    });
}

fn bench_fig8_surface_and_contours() {
    group("fig8");
    let params = SurfaceParameters::fig8();
    bench("surface_30x24", || {
        black_box(CostSurface::compute(
            &params,
            (0.4, 1.2, 30),
            (2.0e5, 5.0e6, 24),
        ));
    });
    let surface = CostSurface::compute(&params, (0.4, 1.2, 30), (2.0e5, 5.0e6, 24));
    bench("contours_5_levels", || {
        black_box(extract_contours(
            &surface,
            &[3.0e-6, 1.0e-5, 3.0e-5, 1.0e-4, 3.0e-4],
        ));
    });
}

fn bench_table3() {
    group("table3");
    let rows = table3::rows();
    bench("table3_all_17_rows", || {
        for row in rows.clone() {
            let cost = row.scenario().unwrap().evaluate().unwrap();
            black_box(cost);
        }
    });
}

fn main() {
    bench_fig1_to_fig4_trend_fits();
    bench_fig5_defect_distribution();
    bench_fig6_scenario1();
    bench_fig7_scenario2();
    bench_fig8_surface_and_contours();
    bench_table3();
    maly_bench::harness::write_json_if_requested();
}
