//! One Criterion group per paper table/figure: how fast each experiment
//! regenerates. These are the "can a designer sweep this interactively?"
//! numbers — everything should sit comfortably under a millisecond
//! except the Fig 8 surface.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use maly_cost_model::scenario::{Scenario1, Scenario2};
use maly_cost_model::surface::{CostSurface, SurfaceParameters};
use maly_cost_optim::contour::extract_contours;
use maly_paper_data::table3;
use maly_tech_trend::{datasets, diesize::DieSizeTrend, fit};
use maly_units::Microns;
use maly_yield_model::defects::DefectSizeDistribution;

fn bench_fig1_to_fig4_trend_fits(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig1-4_trends");
    group.bench_function("fig1_feature_size_fit", |b| {
        b.iter(|| fit::fit_exponential(black_box(datasets::FEATURE_SIZE_BY_YEAR)).unwrap());
    });
    group.bench_function("fig2_extract_x", |b| {
        b.iter(|| {
            fit::extract_cost_escalation(black_box(datasets::WAFER_COST_BY_GENERATION)).unwrap()
        });
    });
    group.bench_function("fig3_die_size_fit", |b| {
        b.iter(|| DieSizeTrend::fit(black_box(datasets::DIE_SIZE_BY_GENERATION)).unwrap());
    });
    group.finish();
}

fn bench_fig5_defect_distribution(c: &mut Criterion) {
    let dist = DefectSizeDistribution::classic(Microns::new(0.1).unwrap(), 4.07).unwrap();
    c.bench_function("fig5_survival_sweep", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for i in 1..200 {
                acc += dist.fraction_larger_than(Microns::new(i as f64 * 0.01).unwrap());
            }
            black_box(acc)
        });
    });
}

fn bench_fig6_scenario1(c: &mut Criterion) {
    let s1 = Scenario1::fig6(1.2).unwrap();
    let lo = Microns::new(0.25).unwrap();
    let hi = Microns::new(1.0).unwrap();
    c.bench_function("fig6_sweep_40pts", |b| {
        b.iter(|| black_box(s1.sweep(lo, hi, 40)));
    });
}

fn bench_fig7_scenario2(c: &mut Criterion) {
    let s2 = Scenario2::fig7(2.4).unwrap();
    let lo = Microns::new(0.25).unwrap();
    let hi = Microns::new(1.0).unwrap();
    c.bench_function("fig7_sweep_40pts", |b| {
        b.iter(|| black_box(s2.sweep(lo, hi, 40)));
    });
}

fn bench_fig8_surface_and_contours(c: &mut Criterion) {
    let params = SurfaceParameters::fig8();
    let mut group = c.benchmark_group("fig8");
    group.sample_size(20);
    group.bench_function("surface_30x24", |b| {
        b.iter(|| {
            black_box(CostSurface::compute(
                &params,
                (0.4, 1.2, 30),
                (2.0e5, 5.0e6, 24),
            ))
        });
    });
    let surface = CostSurface::compute(&params, (0.4, 1.2, 30), (2.0e5, 5.0e6, 24));
    group.bench_function("contours_5_levels", |b| {
        b.iter(|| {
            black_box(extract_contours(
                &surface,
                &[3.0e-6, 1.0e-5, 3.0e-5, 1.0e-4, 3.0e-4],
            ))
        });
    });
    group.finish();
}

fn bench_table3(c: &mut Criterion) {
    let rows = table3::rows();
    c.bench_function("table3_all_17_rows", |b| {
        b.iter_batched(
            || rows.clone(),
            |rows| {
                for row in rows {
                    let cost = row.scenario().unwrap().evaluate().unwrap();
                    black_box(cost);
                }
            },
            BatchSize::SmallInput,
        );
    });
}

criterion_group!(
    experiments,
    bench_fig1_to_fig4_trend_fits,
    bench_fig5_defect_distribution,
    bench_fig6_scenario1,
    bench_fig7_scenario2,
    bench_fig8_surface_and_contours,
    bench_table3,
);
criterion_main!(experiments);
