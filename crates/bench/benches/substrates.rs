//! Benches for the substrate engines: dies-per-wafer methods, yield
//! models, the wafer Monte Carlo, fab economics and the partition
//! optimizer.

use std::hint::black_box;

use maly_bench::harness::{bench, group};
use maly_cost_model::system::{ManufacturingContext, Partition, SystemDesign};
use maly_cost_model::WaferCostModel;
use maly_cost_optim::partition::optimize;
use maly_fabline_sim::cost::{product_mix_study, FabEconomics};
use maly_fabline_sim::des::{simulate as des_simulate, DesConfig};
use maly_fabline_sim::process::ProcessFlow;
use maly_units::{
    Centimeters, DefectDensity, DesignDensity, Dollars, Microns, Probability, SquareCentimeters,
    TransistorCount,
};
use maly_wafer_geom::{approx, maly, raster::RasterPlacement, DieDimensions, Wafer};
use maly_yield_model::monte_carlo::{simulate, DefectArrival};
use maly_yield_model::prng::Xoshiro256PlusPlus;
use maly_yield_model::{NegativeBinomialYield, PoissonYield, YieldModel};

fn bench_dies_per_wafer() {
    group("dies_per_wafer");
    let wafer = Wafer::six_inch();
    let die = DieDimensions::square_with_area(SquareCentimeters::new(1.0).unwrap());
    bench("eq4_row_packing", || {
        black_box(maly::dies_per_wafer(&wafer, die));
    });
    bench("raster_8x8_offsets", || {
        black_box(RasterPlacement::new(8).place(&wafer, die).count());
    });
    bench("edge_corrected_closed_form", || {
        black_box(approx::edge_corrected_estimate(&wafer, die));
    });
}

fn bench_yield_models() {
    group("yield_models");
    let d0 = DefectDensity::new(1.0).unwrap();
    let area = SquareCentimeters::new(2.0).unwrap();
    let poisson = PoissonYield::new(d0);
    let nb = NegativeBinomialYield::new(d0, 2.0).unwrap();
    bench("poisson", || {
        black_box(poisson.die_yield(area));
    });
    bench("negative_binomial", || {
        black_box(nb.die_yield(area));
    });
}

fn bench_monte_carlo() {
    group("wafer_monte_carlo");
    let map = RasterPlacement::default().place(
        &Wafer::six_inch(),
        DieDimensions::square(Centimeters::new(1.2).unwrap()),
    );
    let density = DefectDensity::new(0.8).unwrap();
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(1);
    bench("uniform_20_wafers", || {
        black_box(simulate(
            &map,
            DefectArrival::Uniform { density },
            20,
            &mut rng,
        ));
    });
}

fn bench_fab_economics() {
    group("fab_economics");
    bench("product_mix_study_10x500", || {
        black_box(product_mix_study(10, 500.0, 100_000.0));
    });
    let econ = FabEconomics::default();
    let flow = ProcessFlow::for_generation("cmos-0.8", 0.8);
    let fab = econ.size_fab(&[(flow.clone(), 40_000.0)]);
    bench("des_30_days", || {
        black_box(des_simulate(
            &fab,
            &[(flow.clone(), 30_000.0)],
            DesConfig {
                horizon_days: 30.0,
                ..DesConfig::default()
            },
        ));
    });
}

fn bench_partition_optimizer() {
    group("optimizer");
    let system = SystemDesign::new(vec![
        Partition::new(
            "cache",
            TransistorCount::new(2.0e6).unwrap(),
            DesignDensity::new(45.0).unwrap(),
        ),
        Partition::new(
            "fpu",
            TransistorCount::new(0.3e6).unwrap(),
            DesignDensity::new(222.0).unwrap(),
        ),
        Partition::new(
            "iu",
            TransistorCount::new(0.23e6).unwrap(),
            DesignDensity::new(258.0).unwrap(),
        ),
        Partition::new(
            "bus",
            TransistorCount::new(0.05e6).unwrap(),
            DesignDensity::new(399.0).unwrap(),
        ),
    ])
    .unwrap();
    let context = ManufacturingContext {
        wafer: Wafer::six_inch(),
        reference_yield: Probability::new(0.7).unwrap(),
        wafer_cost: WaferCostModel::new(Dollars::new(700.0).unwrap(), 1.8).unwrap(),
        per_die_overhead: Dollars::new(8.0).unwrap(),
    };
    let ladder: Vec<Microns> = [1.0, 0.8, 0.65, 0.5]
        .iter()
        .map(|&l| Microns::new(l).unwrap())
        .collect();
    bench("partition_4_blocks_4_nodes", || {
        black_box(optimize(&system, &context, &ladder).unwrap());
    });
}

fn bench_extensions() {
    group("extensions");
    let scenario = maly_bench::standard_product();
    bench("sensitivity_6_drivers", || {
        black_box(maly_cost_model::sensitivity::elasticities(&scenario, 0.05).unwrap());
    });
    let roadmap = maly_cost_model::roadmap::CostRoadmap::paper_default().unwrap();
    bench("roadmap_project_17_years", || {
        black_box(roadmap.project(1986, 2002).unwrap());
    });
    {
        use maly_cost_model::mpw::{price_shuttle, MpwProject, MpwRun};
        let run = MpwRun {
            wafer: Wafer::six_inch(),
            wafer_cost: Dollars::new(1300.0).unwrap(),
            mask_set_cost: Dollars::new(80_000.0).unwrap(),
        };
        let projects = vec![
            MpwProject::new(
                "a",
                DieDimensions::square(Centimeters::new(0.7).unwrap()),
                100,
            ),
            MpwProject::new(
                "b",
                DieDimensions::square(Centimeters::new(0.5).unwrap()),
                100,
            ),
            MpwProject::new(
                "c",
                DieDimensions::square(Centimeters::new(0.9).unwrap()),
                100,
            ),
        ];
        let yield_model = maly_yield_model::AreaScaledYield::per_square_centimeter(
            Probability::new(0.7).unwrap(),
        );
        bench("mpw_price_3_projects", || {
            black_box(price_shuttle(&run, &projects, &yield_model).unwrap());
        });
    }
    let econ = FabEconomics::default();
    let owner = vec![(ProcessFlow::for_generation("commodity", 0.8), 100_000.0)];
    let tenant = vec![(ProcessFlow::for_generation("niche", 0.8), 2_000.0)];
    bench("rental_bargaining_range", || {
        black_box(maly_fabline_sim::rental::bargaining_range(
            &econ, &owner, &tenant,
        ));
    });
}

fn main() {
    bench_dies_per_wafer();
    bench_yield_models();
    bench_monte_carlo();
    bench_fab_economics();
    bench_partition_optimizer();
    bench_extensions();
    maly_bench::harness::write_json_if_requested();
}
