//! Benchmark crate: shared fixtures and a std-only timing harness.
//!
//! The benches live in `benches/experiments.rs` (one group per paper
//! table/figure) and `benches/substrates.rs` (the underlying engines).
//! Run with `cargo bench -p maly-bench`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use maly_cost_model::product::ProductScenario;

pub mod harness {
    //! Minimal timing harness (the workspace builds offline with no
    //! external crates, so Criterion is not available).
    //!
    //! Auto-calibrates an iteration count per benchmark, takes several
    //! samples, and reports the median per-iteration latency.

    use std::time::{Duration, Instant};

    const MIN_SAMPLE_TIME: Duration = Duration::from_millis(10);
    const SAMPLES: usize = 7;

    /// Prints a group header, mirroring Criterion's benchmark groups.
    pub fn group(name: &str) {
        println!("\n== {name} ==");
    }

    /// Times `f`, printing the median per-iteration latency.
    pub fn bench(name: &str, mut f: impl FnMut()) {
        // Calibrate: double the iteration count until one sample takes
        // at least MIN_SAMPLE_TIME.
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                f();
            }
            if start.elapsed() >= MIN_SAMPLE_TIME || iters >= 1 << 24 {
                break;
            }
            iters = iters.saturating_mul(2);
        }
        let mut per_iter: Vec<f64> = (0..SAMPLES)
            .map(|_| {
                let start = Instant::now();
                for _ in 0..iters {
                    f();
                }
                start.elapsed().as_secs_f64() / iters as f64
            })
            .collect();
        per_iter.sort_by(f64::total_cmp);
        let median = format_seconds(per_iter[SAMPLES / 2]);
        println!("{name:<36} {median:>12}/iter   ({iters} iters/sample)");
    }

    fn format_seconds(seconds: f64) -> String {
        if seconds < 1e-6 {
            format!("{:.1} ns", seconds * 1e9)
        } else if seconds < 1e-3 {
            format!("{:.2} µs", seconds * 1e6)
        } else if seconds < 1.0 {
            format!("{:.2} ms", seconds * 1e3)
        } else {
            format!("{seconds:.3} s")
        }
    }
}

/// Builds the Table 3 row-2 scenario, the benches' standard workload
/// (3.1 M transistors at 0.8 µm, Y₀ = 70%, X = 1.8).
///
/// # Panics
///
/// Never — inputs are the printed constants.
#[must_use]
pub fn standard_product() -> ProductScenario {
    ProductScenario::builder("bench µP")
        .transistors(3.1e6)
        .expect("valid")
        .feature_size_um(0.8)
        .expect("valid")
        .design_density(150.0)
        .expect("valid")
        .wafer_radius_cm(7.5)
        .expect("valid")
        .reference_yield(0.7)
        .expect("valid")
        .reference_wafer_cost(700.0)
        .expect("valid")
        .cost_escalation(1.8)
        .expect("valid")
        .build()
        .expect("valid")
}

#[cfg(test)]
mod tests {
    #[test]
    fn standard_product_evaluates() {
        let cost = super::standard_product().evaluate().unwrap();
        assert!(cost.cost_per_transistor.value() > 0.0);
    }
}
