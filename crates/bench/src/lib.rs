//! Benchmark crate: shared fixtures for the Criterion benches.
//!
//! The benches live in `benches/experiments.rs` (one group per paper
//! table/figure) and `benches/substrates.rs` (the underlying engines).
//! Run with `cargo bench -p maly-bench`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use maly_cost_model::product::ProductScenario;

/// Builds the Table 3 row-2 scenario, the benches' standard workload
/// (3.1 M transistors at 0.8 µm, Y₀ = 70%, X = 1.8).
///
/// # Panics
///
/// Never — inputs are the printed constants.
#[must_use]
pub fn standard_product() -> ProductScenario {
    ProductScenario::builder("bench µP")
        .transistors(3.1e6)
        .expect("valid")
        .feature_size_um(0.8)
        .expect("valid")
        .design_density(150.0)
        .expect("valid")
        .wafer_radius_cm(7.5)
        .expect("valid")
        .reference_yield(0.7)
        .expect("valid")
        .reference_wafer_cost(700.0)
        .expect("valid")
        .cost_escalation(1.8)
        .expect("valid")
        .build()
        .expect("valid")
}

#[cfg(test)]
mod tests {
    #[test]
    fn standard_product_evaluates() {
        let cost = super::standard_product().evaluate().unwrap();
        assert!(cost.cost_per_transistor.value() > 0.0);
    }
}
