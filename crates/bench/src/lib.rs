//! Benchmark crate: shared fixtures and a std-only timing harness.
//!
//! The benches live in `benches/experiments.rs` (one group per paper
//! table/figure), `benches/substrates.rs` (the underlying engines) and
//! `benches/sweeps.rs` (serial vs parallel sweep hot paths and the
//! eq. (4) memo cache). Run with `cargo bench -p maly-bench`; add
//! `-- --json <path>` to write a machine-readable baseline like
//! `BENCH_sweeps.json`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use maly_cost_model::product::ProductScenario;
use maly_units::{Centimeters, DesignDensity, Dollars, Microns, Probability, TransistorCount};

pub mod harness {
    //! Minimal timing harness (the workspace builds offline with no
    //! external crates, so Criterion is not available).
    //!
    //! Auto-calibrates an iteration count per benchmark, takes several
    //! samples, and reports the median per-iteration latency. Paired
    //! comparisons (serial vs parallel, dense vs adaptive) should use
    //! [`bench_pair`], which interleaves the two sides' samples so CPU
    //! throttle drift cannot fabricate a speedup or regression. Every
    //! result is also recorded in memory; when a bench binary is run
    //! with `--json <path>` (after the `--` separator under `cargo
    //! bench`), [`write_json_if_requested`] dumps the records as a
    //! machine-readable baseline.

    use std::sync::{Mutex, PoisonError};
    use std::time::{Duration, Instant};

    const MIN_SAMPLE_TIME: Duration = Duration::from_millis(10);
    const SAMPLES: usize = 7;

    /// One recorded measurement.
    #[derive(Debug, Clone)]
    struct Record {
        group: String,
        name: String,
        median_ns: f64,
        iters: u64,
    }

    /// One recorded serial-vs-parallel comparison.
    #[derive(Debug, Clone)]
    struct Speedup {
        group: String,
        name: String,
        serial_ns: f64,
        parallel_ns: f64,
    }

    /// One recorded work counter (e.g. eq. (1) evaluation counts).
    #[derive(Debug, Clone)]
    struct Counter {
        group: String,
        name: String,
        value: u64,
    }

    #[derive(Default)]
    struct Recorder {
        current_group: String,
        records: Vec<Record>,
        speedups: Vec<Speedup>,
        counters: Vec<Counter>,
    }

    static RECORDER: Mutex<Option<Recorder>> = Mutex::new(None);

    fn with_recorder<R>(f: impl FnOnce(&mut Recorder) -> R) -> R {
        let mut guard = RECORDER.lock().unwrap_or_else(PoisonError::into_inner);
        f(guard.get_or_insert_with(Recorder::default))
    }

    /// Prints a group header, mirroring Criterion's benchmark groups.
    pub fn group(name: &str) {
        with_recorder(|r| r.current_group = name.to_string());
        println!("\n== {name} ==");
    }

    /// Doubles the iteration count until one sample of `f` takes at
    /// least [`MIN_SAMPLE_TIME`].
    fn calibrate(f: &mut impl FnMut()) -> u64 {
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                f();
            }
            if start.elapsed() >= MIN_SAMPLE_TIME || iters >= 1 << 24 {
                return iters;
            }
            iters = iters.saturating_mul(2);
        }
    }

    /// One timed sample: seconds per iteration over `iters` runs.
    fn sample(f: &mut impl FnMut(), iters: u64) -> f64 {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        start.elapsed().as_secs_f64() / iters as f64
    }

    /// Reduces per-iteration samples to their median, prints the
    /// result line and records it for [`write_json_if_requested`].
    fn report(name: &str, mut per_iter: Vec<f64>, iters: u64) -> f64 {
        per_iter.sort_by(f64::total_cmp);
        let median_seconds = per_iter[per_iter.len() / 2];
        let median = format_seconds(median_seconds);
        println!("{name:<36} {median:>12}/iter   ({iters} iters/sample)");
        let median_ns = median_seconds * 1e9;
        with_recorder(|r| {
            let group = r.current_group.clone();
            r.records.push(Record {
                group,
                name: name.to_string(),
                median_ns,
                iters,
            });
        });
        median_ns
    }

    /// Times `f`, printing the median per-iteration latency and
    /// recording it for [`write_json_if_requested`]. Returns the
    /// median in nanoseconds so callers can derive speedups.
    pub fn bench(name: &str, mut f: impl FnMut()) -> f64 {
        let iters = calibrate(&mut f);
        let per_iter: Vec<f64> = (0..SAMPLES).map(|_| sample(&mut f, iters)).collect();
        report(name, per_iter, iters)
    }

    /// Sub-blocks per side per sample in [`bench_pair`]. Finer
    /// interleaving couples the two sides to the same machine-speed
    /// phases; 8 keeps each block long enough (milliseconds) that the
    /// two `Instant` reads around it are free.
    const INTERLEAVE_BLOCKS: u64 = 8;

    /// Runs `n` iterations of `f`, returning the elapsed seconds.
    fn timed_block(f: &mut impl FnMut(), n: u64) -> f64 {
        let start = Instant::now();
        for _ in 0..n {
            f();
        }
        start.elapsed().as_secs_f64()
    }

    /// Times two related workloads with their iterations **interleaved**
    /// in sub-sample blocks: every sample alternates a block of `a` with
    /// a block of `b`, so machine-speed swings (thermal throttling,
    /// noisy neighbours) hit both sides alike and the ratio of the
    /// returned medians stays honest. Timing the sides in separate
    /// [`bench`] calls instead leaves them seconds apart, where a
    /// throttle step lands entirely on one side and fabricates a
    /// spurious speedup or regression.
    ///
    /// Prints and records each side exactly like [`bench`]; returns
    /// `(median_a_ns, median_b_ns)`.
    pub fn bench_pair(
        name_a: &str,
        mut a: impl FnMut(),
        name_b: &str,
        mut b: impl FnMut(),
    ) -> (f64, f64) {
        let iters_a = calibrate(&mut a);
        let iters_b = calibrate(&mut b);
        let block_a = iters_a.div_ceil(INTERLEAVE_BLOCKS);
        let block_b = iters_b.div_ceil(INTERLEAVE_BLOCKS);
        let mut per_a = Vec::with_capacity(SAMPLES);
        let mut per_b = Vec::with_capacity(SAMPLES);
        for _ in 0..SAMPLES {
            let (mut left_a, mut left_b) = (iters_a, iters_b);
            let (mut secs_a, mut secs_b) = (0.0f64, 0.0f64);
            while left_a > 0 || left_b > 0 {
                let run_a = block_a.min(left_a);
                if run_a > 0 {
                    secs_a += timed_block(&mut a, run_a);
                    left_a -= run_a;
                }
                let run_b = block_b.min(left_b);
                if run_b > 0 {
                    secs_b += timed_block(&mut b, run_b);
                    left_b -= run_b;
                }
            }
            per_a.push(secs_a / iters_a as f64);
            per_b.push(secs_b / iters_b as f64);
        }
        (
            report(name_a, per_a, iters_a),
            report(name_b, per_b, iters_b),
        )
    }

    /// Records a serial-vs-parallel comparison (both in ns/iter) and
    /// prints the ratio.
    pub fn record_speedup(name: &str, serial_ns: f64, parallel_ns: f64) {
        let ratio = if parallel_ns > 0.0 {
            serial_ns / parallel_ns
        } else {
            f64::INFINITY
        };
        println!("{name:<36} {ratio:>11.2}x  (serial / parallel)");
        with_recorder(|r| {
            let group = r.current_group.clone();
            r.speedups.push(Speedup {
                group,
                name: name.to_string(),
                serial_ns,
                parallel_ns,
            });
        });
    }

    /// Name of the derived per-evaluation group written by
    /// [`record_per_eval`]; `xtask bench-check` asserts the group is
    /// present and gates its values like any other timing record.
    pub const PER_EVAL_GROUP: &str = "per_eval";

    /// Records a derived per-evaluation latency — a group's median
    /// divided by its matching work counter — as a regular timing
    /// record in the dedicated [`PER_EVAL_GROUP`] group (regardless of
    /// the current group). Gating these alongside the raw medians keeps
    /// per-eval cost honest even when a sweep's evaluation *count* also
    /// changes: a "faster" sweep that merely evaluates fewer points
    /// cannot hide a per-point regression.
    pub fn record_per_eval(name: &str, total_ns: f64, evals: u64) {
        let per_eval_ns = if evals == 0 {
            0.0
        } else {
            total_ns / evals as f64
        };
        println!("{name:<36} {per_eval_ns:>11.1} ns/eval ({evals} evals)");
        with_recorder(|r| {
            r.records.push(Record {
                group: PER_EVAL_GROUP.to_string(),
                name: name.to_string(),
                median_ns: per_eval_ns,
                iters: evals,
            });
        });
    }

    /// Records a named work counter (e.g. "eq1_evaluations") under the
    /// current group and prints it; counters land in the JSON baseline
    /// alongside the timings so work reductions are auditable, not just
    /// wall-clock ones.
    pub fn record_counter(name: &str, value: u64) {
        println!("{name:<36} {value:>12}  (count)");
        with_recorder(|r| {
            let group = r.current_group.clone();
            r.counters.push(Counter {
                group,
                name: name.to_string(),
                value,
            });
        });
    }

    /// Writes the recorded results as JSON when the process arguments
    /// contain `--json <path>`; call it at the end of every bench
    /// `main`. Other arguments (Cargo's bench filters) are ignored.
    ///
    /// # Panics
    ///
    /// Panics when `--json` has no following path or the file cannot
    /// be written — a baseline silently not written is worse than a
    /// failed run.
    pub fn write_json_if_requested() {
        let mut args = std::env::args().skip(1);
        let mut path = None;
        while let Some(arg) = args.next() {
            if arg == "--json" {
                // Cargo appends its own `--bench` flag after user args,
                // so a flag-shaped operand means the path was omitted.
                let operand = args.next().filter(|a| !a.starts_with("--"));
                // audit:allow(panic): CLI contract — a missing operand
                // must abort the run, not skip the baseline.
                path = Some(operand.expect("--json needs a file path"));
            }
        }
        let Some(path) = path else {
            return;
        };
        // Cargo runs bench binaries with CWD = the package root, but
        // callers (ci.sh, the README) write paths relative to the
        // workspace root — resolve against it so both agree.
        let path = {
            let p = std::path::PathBuf::from(&path);
            if p.is_absolute() {
                p
            } else {
                std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
                    .ancestors()
                    .nth(2)
                    .unwrap_or(std::path::Path::new("."))
                    .join(p)
            }
        };
        let json = render_json();
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)
                // audit:allow(panic): a baseline silently not written
                // is worse than a failed bench run.
                .unwrap_or_else(|e| panic!("creating {}: {e}", parent.display()));
        }
        // audit:allow(panic): a baseline silently not written is worse
        // than a failed bench run.
        std::fs::write(&path, json).unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
        eprintln!("wrote {}", path.display());
    }

    fn render_json() -> String {
        let threads_env = std::env::var(maly_par::THREADS_ENV_VAR).ok();
        let mut out = String::from("{\n");
        out.push_str(&format!(
            "  \"available_parallelism\": {},\n",
            maly_par::default_parallelism()
        ));
        out.push_str(&format!(
            "  \"maly_par_threads\": {},\n",
            threads_env.map_or_else(|| "null".to_string(), |t| format!("\"{}\"", escape(&t)))
        ));
        with_recorder(|r| {
            out.push_str("  \"benches\": [\n");
            for (i, rec) in r.records.iter().enumerate() {
                let comma = if i + 1 < r.records.len() { "," } else { "" };
                out.push_str(&format!(
                    "    {{\"group\": \"{}\", \"name\": \"{}\", \"median_ns\": {:.1}, \
                     \"iters\": {}}}{comma}\n",
                    escape(&rec.group),
                    escape(&rec.name),
                    rec.median_ns,
                    rec.iters,
                ));
            }
            out.push_str("  ],\n  \"speedups\": [\n");
            for (i, s) in r.speedups.iter().enumerate() {
                let comma = if i + 1 < r.speedups.len() { "," } else { "" };
                let ratio = if s.parallel_ns > 0.0 {
                    s.serial_ns / s.parallel_ns
                } else {
                    0.0
                };
                out.push_str(&format!(
                    "    {{\"group\": \"{}\", \"name\": \"{}\", \"serial_ns\": {:.1}, \
                     \"parallel_ns\": {:.1}, \"speedup\": {ratio:.3}}}{comma}\n",
                    escape(&s.group),
                    escape(&s.name),
                    s.serial_ns,
                    s.parallel_ns,
                ));
            }
            out.push_str("  ],\n  \"counters\": [\n");
            for (i, c) in r.counters.iter().enumerate() {
                let comma = if i + 1 < r.counters.len() { "," } else { "" };
                out.push_str(&format!(
                    "    {{\"group\": \"{}\", \"name\": \"{}\", \"value\": {}}}{comma}\n",
                    escape(&c.group),
                    escape(&c.name),
                    c.value,
                ));
            }
            out.push_str("  ]\n}\n");
        });
        out
    }

    fn escape(s: &str) -> String {
        let mut out = String::with_capacity(s.len());
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                c if c.is_control() => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out
    }

    fn format_seconds(seconds: f64) -> String {
        if seconds < 1e-6 {
            format!("{:.1} ns", seconds * 1e9)
        } else if seconds < 1e-3 {
            format!("{:.2} µs", seconds * 1e6)
        } else if seconds < 1.0 {
            format!("{:.2} ms", seconds * 1e3)
        } else {
            format!("{seconds:.3} s")
        }
    }
}

/// Builds the Table 3 row-2 scenario, the benches' standard workload
/// (3.1 M transistors at 0.8 µm, Y₀ = 70%, X = 1.8).
///
/// # Panics
///
/// Never — inputs are the printed constants.
#[must_use]
pub fn standard_product() -> ProductScenario {
    ProductScenario::builder("bench µP")
        .transistors(TransistorCount::new(3.1e6).expect("valid"))
        .feature_size(Microns::new(0.8).expect("valid"))
        .design_density(DesignDensity::new(150.0).expect("valid"))
        .wafer_radius(Centimeters::new(7.5).expect("valid"))
        .reference_yield(Probability::new(0.7).expect("valid"))
        .reference_wafer_cost(Dollars::new(700.0).expect("valid"))
        .cost_escalation(1.8)
        .expect("valid")
        .build()
        .expect("valid")
}

#[cfg(test)]
mod tests {
    #[test]
    fn standard_product_evaluates() {
        let cost = super::standard_product().evaluate().unwrap();
        assert!(cost.cost_per_transistor.value() > 0.0);
    }
}
