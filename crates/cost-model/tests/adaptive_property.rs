//! Property test: the adaptive engine agrees with the dense scan on
//! randomized windows — every value within the configured tolerance,
//! the feasibility mask exact, and the work accounting consistent.
//!
//! Windows are drawn from a seeded xorshift generator (no external
//! crates), spanning skinny grids, deep-infeasible corners, and windows
//! entirely inside the smooth zone.

use maly_cost_model::adaptive::{AdaptiveConfig, AdaptiveSurface, DEFAULT_TOL};
use maly_cost_model::surface::{CostSurface, SurfaceParameters};
use maly_par::Executor;

/// Deterministic xorshift64* generator; statistical perfection is
/// irrelevant, reproducibility is the point.
struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform in `[lo, hi)`.
    fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        lo + (hi - lo) * unit
    }

    /// Uniform integer in `[lo, hi]`.
    fn int(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next_u64() as usize) % (hi - lo + 1)
    }
}

#[test]
fn adaptive_matches_dense_within_tol_on_random_windows() {
    let params = SurfaceParameters::fig8();
    let exec = Executor::with_threads(2);
    let mut rng = Rng(0x9e37_79b9_7f4a_7c15);
    let mut worst_overall = 0.0f64;
    for case in 0..24 {
        // λ windows inside the physically sensible band; N_tr windows
        // spanning up to three decades, reaching into both the huge-die
        // infeasible corner and the deep smooth zone.
        let l0 = rng.uniform(0.3, 1.2);
        let l1 = l0 + rng.uniform(0.2, 1.5);
        let n0 = 10f64.powf(rng.uniform(4.0, 6.0));
        let n1 = n0 * 10f64.powf(rng.uniform(0.5, 3.0));
        let steps_l = rng.int(3, 72);
        let steps_n = rng.int(3, 64);
        let window = ((l0, l1, steps_l), (n0, n1, steps_n));

        let dense = CostSurface::compute_with(&exec, &params, window.0, window.1);
        let adaptive = AdaptiveSurface::compute_with(
            &exec,
            &params,
            window.0,
            window.1,
            &AdaptiveConfig::default(),
        );

        let stats = adaptive.stats();
        assert_eq!(
            stats.evaluated + stats.analytic_exact + stats.interpolated + stats.infeasible_deduced,
            stats.grid_points,
            "case {case}: accounting must cover the grid exactly once ({window:?})"
        );

        let mut worst = 0.0f64;
        for (i, (da, aa)) in dense
            .values()
            .iter()
            .zip(adaptive.surface().values())
            .enumerate()
        {
            for (j, (dv, av)) in da.iter().zip(aa).enumerate() {
                match (dv, av) {
                    (Some(d), Some(a)) => {
                        worst = worst.max((d - a).abs() / d.abs().max(f64::MIN_POSITIVE));
                    }
                    (None, None) => {}
                    (d, a) => panic!(
                        "case {case}: feasibility mismatch at ({i},{j}): \
                         dense {d:?} vs adaptive {a:?} ({window:?})"
                    ),
                }
            }
        }
        assert!(
            worst <= DEFAULT_TOL,
            "case {case}: worst relative error {worst:.4} exceeds tol {DEFAULT_TOL} ({window:?})"
        );
        worst_overall = worst_overall.max(worst);
    }
    // The engine should genuinely interpolate somewhere in the sample,
    // not coincidentally evaluate everything exactly.
    assert!(worst_overall > 0.0, "no window exercised interpolation");
}
