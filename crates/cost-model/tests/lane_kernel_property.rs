//! Property tests for the lane-batched eq. (1) kernel path: the batch
//! results must track the scalar reference (`cost_at`) within the
//! documented accuracy contract, agree exactly on feasibility (die
//! counts are integer-exact), and stay bit-identical across thread
//! counts.
//!
//! The workspace builds offline with no external crates, so the
//! properties are checked over deterministic pseudo-random samples from
//! a tiny SplitMix64 generator instead of proptest strategies.

use maly_cost_model::surface::{CostSurface, SurfaceParameters};
use maly_par::Executor;
use maly_units::{Microns, TransistorCount};

/// Deterministic uniform sampler (SplitMix64).
struct Sampler(u64);

impl Sampler {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + (hi - lo) * u
    }

    /// Log-uniform in [lo, hi].
    fn log_uniform(&mut self, lo: f64, hi: f64) -> f64 {
        (self.uniform(lo.ln(), hi.ln())).exp()
    }
}

/// The documented lane-kernel accuracy contract vs the scalar path:
/// relative error ≈ (1 + |ln Y|) · 1e-14. `Y` is not observable from
/// the public API, but `cost ≈ base / Y` with `|ln base| ≲ 50` over
/// the sampled windows, so `|ln Y| ≤ |ln cost| + 50` gives a sound
/// per-point bound. A die-count or exp-argument mismatch overshoots it
/// by orders of magnitude.
fn rel_tol(scalar_cost: f64) -> f64 {
    (51.0 + scalar_cost.abs().max(f64::MIN_POSITIVE).ln().abs()) * 1e-14
}

fn assert_matches_scalar(params: &SurfaceParameters, points: &[(Microns, TransistorCount)]) {
    let batched = params.costs_for_points(points);
    assert_eq!(batched.len(), points.len());
    for (k, &(lambda, n_tr)) in points.iter().enumerate() {
        let scalar = params.cost_at(lambda, n_tr).ok().map(|d| d.value());
        match (batched[k], scalar) {
            (None, None) => {}
            (Some(b), Some(s)) => {
                let rel = (b - s).abs() / s.abs().max(f64::MIN_POSITIVE);
                assert!(
                    rel <= rel_tol(s),
                    "point {k} (λ={}, N={}): batched {b:e} vs scalar {s:e}, rel {rel:e}",
                    lambda.value(),
                    n_tr.value()
                );
            }
            (b, s) => panic!(
                "feasibility mismatch at point {k} (λ={}, N={}): batched {b:?}, scalar {s:?}",
                lambda.value(),
                n_tr.value()
            ),
        }
    }
}

/// Randomized points over (and beyond) the Fig 8 window — including
/// dies too large to pack, so both sides of the feasibility mask are
/// exercised — at deliberately odd slice lengths (lane width is 4, so
/// remainders of 1–3 hit the scalar tail loop).
#[test]
fn batched_costs_match_scalar_across_randomized_points() {
    let params = SurfaceParameters::fig8();
    let mut s = Sampler(0xC0FFEE);
    for len in [1usize, 2, 3, 5, 7, 33, 101] {
        let points: Vec<(Microns, TransistorCount)> = (0..len)
            .map(|_| {
                (
                    Microns::clamped(s.uniform(0.3, 2.0)),
                    TransistorCount::clamped(s.log_uniform(1.0e4, 5.0e8)),
                )
            })
            .collect();
        assert_matches_scalar(&params, &points);
    }
}

/// A fine λ scan at a fixed large design walks the eq. (4) die-count
/// staircase: each integer step (and the final fall to infeasible) must
/// land on exactly the same λ in the batched and scalar paths. A
/// one-off die count shows up here as a feasibility or tolerance
/// mismatch at the boundary sample.
#[test]
fn exact_zone_staircase_boundaries_agree_with_scalar() {
    let params = SurfaceParameters::fig8();
    // 2e7 transistors: feasible at small λ, the die outgrows the wafer
    // as λ rises, so the scan crosses many staircase steps and the
    // feasibility edge itself.
    let n_tr = TransistorCount::clamped(2.0e7);
    let points: Vec<(Microns, TransistorCount)> = (0..801)
        .map(|i| (Microns::clamped(0.3 + 1.2 * i as f64 / 800.0), n_tr))
        .collect();
    assert_matches_scalar(&params, &points);
    // The scan must actually cross the edge, or the test is vacuous.
    let mask: Vec<bool> = points
        .iter()
        .map(|&(l, n)| params.cost_at(l, n).is_ok())
        .collect();
    assert!(mask[0], "smallest λ should be feasible");
    assert!(!mask[800], "largest λ should be infeasible");
}

/// Dense surfaces with odd step counts (lane remainders on every row)
/// agree with the scalar reference cell by cell. The surface kernel
/// (`Eq1Kernel`) and `costs_for_points` are distinct batch
/// implementations, so each is held to the scalar contract rather than
/// to the other's bit pattern.
#[test]
fn odd_sized_surfaces_match_scalar_reference() {
    let params = SurfaceParameters::fig8();
    for (li, ni) in [(7usize, 13usize), (5, 9), (3, 2)] {
        let surface = CostSurface::compute(&params, (0.4, 1.5, li), (2.0e4, 4.0e6, ni));
        for (i, row) in surface.values().iter().enumerate() {
            for (j, &cell) in row.iter().enumerate() {
                let lambda = Microns::clamped(surface.lambda_axis()[i]);
                let n_tr = TransistorCount::clamped(surface.n_tr_axis()[j]);
                let scalar = params.cost_at(lambda, n_tr).ok().map(|d| d.value());
                match (cell, scalar) {
                    (None, None) => {}
                    (Some(b), Some(s)) => {
                        let rel = (b - s).abs() / s.abs().max(f64::MIN_POSITIVE);
                        assert!(
                            rel <= rel_tol(s),
                            "{li}x{ni} cell ({i},{j}): surface {b:e} vs scalar {s:e}, rel {rel:e}"
                        );
                    }
                    (b, s) => panic!(
                        "{li}x{ni} feasibility mismatch at ({i},{j}): surface {b:?}, scalar {s:?}"
                    ),
                }
            }
        }
        let points: Vec<(Microns, TransistorCount)> = surface
            .lambda_axis()
            .iter()
            .flat_map(|&l| {
                surface
                    .n_tr_axis()
                    .iter()
                    .map(move |&n| (Microns::clamped(l), TransistorCount::clamped(n)))
            })
            .collect();
        assert_matches_scalar(&params, &points);
    }
}

/// Determinism golden: the same surface at 1, 2, and 8 threads is
/// bit-identical (not merely close) — the kernel chunks work but never
/// reassociates math across chunk boundaries.
#[test]
fn surface_is_bit_identical_at_1_2_and_8_threads() {
    let params = SurfaceParameters::fig8();
    let window = ((0.4, 1.5, 56), (2.0e4, 4.0e6, 48));
    let bits = |threads: usize| -> Vec<Option<u64>> {
        CostSurface::compute_with(
            &Executor::with_threads(threads),
            &params,
            window.0,
            window.1,
        )
        .values()
        .iter()
        .flatten()
        .map(|c| c.map(f64::to_bits))
        .collect()
    };
    let serial = bits(1);
    assert_eq!(serial, bits(2), "2-thread surface diverged");
    assert_eq!(serial, bits(8), "8-thread surface diverged");
}
