//! Property-style tests for the cost model.
//!
//! The workspace builds offline with no external crates, so instead of
//! proptest strategies these properties are checked over deterministic
//! pseudo-random samples drawn from a tiny SplitMix64 generator.

use maly_cost_model::product::ProductScenario;
use maly_cost_model::scenario::{Scenario1, Scenario2};
use maly_units::{Centimeters, DesignDensity, Dollars, Microns, Probability, TransistorCount};

/// Deterministic uniform sampler (SplitMix64).
struct Sampler(u64);

impl Sampler {
    fn new(seed: u64) -> Self {
        Self(seed)
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + (hi - lo) * u
    }
}

const CASES: usize = 48;

fn scenario(
    n_tr: f64,
    lambda: f64,
    d_d: f64,
    r_w: f64,
    y0: f64,
    c0: f64,
    x: f64,
) -> ProductScenario {
    ProductScenario::builder("prop")
        .transistors(TransistorCount::new(n_tr).unwrap())
        .feature_size(Microns::new(lambda).unwrap())
        .design_density(DesignDensity::new(d_d).unwrap())
        .wafer_radius(Centimeters::new(r_w).unwrap())
        .reference_yield(Probability::new(y0).unwrap())
        .reference_wafer_cost(Dollars::new(c0).unwrap())
        .cost_escalation(x)
        .unwrap()
        .build()
        .unwrap()
}

/// Input ranges chosen so the die always fits a 6–8-inch wafer and the
/// yield stays representable.
fn plausible_inputs(s: &mut Sampler) -> (f64, f64, f64, f64, f64, f64, f64) {
    (
        s.uniform(1.0e5, 5.0e6),  // n_tr
        s.uniform(0.3, 1.0),      // lambda
        s.uniform(30.0, 400.0),   // d_d
        s.uniform(6.0, 10.0),     // r_w
        s.uniform(0.5, 0.95),     // y0
        s.uniform(300.0, 1500.0), // c0
        s.uniform(1.0, 2.4),      // x
    )
}

/// Eq. (1) always yields a strictly positive, finite cost for
/// physically plausible inputs.
#[test]
fn cost_is_positive_and_finite() {
    let mut s = Sampler::new(101);
    for _ in 0..CASES {
        let (n, l, d, r, y0, c0, x) = plausible_inputs(&mut s);
        let cost = scenario(n, l, d, r, y0, c0, x)
            .evaluate()
            .unwrap()
            .cost_per_transistor
            .value();
        assert!(cost.is_finite() && cost > 0.0);
    }
}

/// Better reference yield can never raise the transistor cost.
#[test]
fn cost_monotone_in_yield() {
    let mut s = Sampler::new(102);
    for _ in 0..CASES {
        let (n, l, d, r, y0, c0, x) = plausible_inputs(&mut s);
        let bump = s.uniform(0.01, 0.04);
        let worse = scenario(n, l, d, r, y0, c0, x).evaluate().unwrap();
        let better = scenario(n, l, d, r, y0 + bump, c0, x).evaluate().unwrap();
        assert!(better.cost_per_transistor <= worse.cost_per_transistor);
        assert!(better.die_yield >= worse.die_yield);
    }
}

/// A higher escalation factor X can never make sub-micron wafers
/// cheaper (λ < 1 µm ⇒ positive exponent).
#[test]
fn cost_monotone_in_x() {
    let mut s = Sampler::new(103);
    for _ in 0..CASES {
        let (n, l, d, r, y0, c0, x) = plausible_inputs(&mut s);
        let bump = s.uniform(0.05, 0.5);
        let cheap = scenario(n, l, d, r, y0, c0, x).evaluate().unwrap();
        let dear = scenario(n, l, d, r, y0, c0, x + bump).evaluate().unwrap();
        assert!(dear.wafer_cost >= cheap.wafer_cost);
        assert!(dear.cost_per_transistor >= cheap.cost_per_transistor);
    }
}

/// A bigger wafer at the same wafer cost can never cost more per
/// transistor (more dies for the same money).
#[test]
fn cost_monotone_in_wafer_radius() {
    let mut s = Sampler::new(104);
    for _ in 0..CASES {
        let (n, l, d, _r, y0, c0, x) = plausible_inputs(&mut s);
        let six = scenario(n, l, d, 7.5, y0, c0, x).evaluate().unwrap();
        let eight = scenario(n, l, d, 10.0, y0, c0, x).evaluate().unwrap();
        assert!(eight.dies_per_wafer >= six.dies_per_wafer);
        assert!(eight.cost_per_transistor <= six.cost_per_transistor);
    }
}

/// Denser layout (smaller d_d) can never cost more per transistor.
#[test]
fn cost_monotone_in_density() {
    let mut s = Sampler::new(105);
    for _ in 0..CASES {
        let (n, l, d, r, y0, c0, x) = plausible_inputs(&mut s);
        let shrink = s.uniform(0.5, 0.95);
        let sparse = scenario(n, l, d, r, y0, c0, x).evaluate().unwrap();
        let dense = scenario(n, l, d * shrink, r, y0, c0, x).evaluate().unwrap();
        assert!(dense.cost_per_transistor <= sparse.cost_per_transistor * 1.000001);
    }
}

/// The breakdown is internally consistent: good dies = N_ch·Y and
/// C_tr = C_w/(N_ch·N_tr·Y).
#[test]
fn breakdown_is_consistent() {
    let mut s = Sampler::new(106);
    for _ in 0..CASES {
        let (n, l, d, r, y0, c0, x) = plausible_inputs(&mut s);
        let b = scenario(n, l, d, r, y0, c0, x).evaluate().unwrap();
        let good = b.dies_per_wafer.as_f64() * b.die_yield.value();
        assert!((b.good_dies_per_wafer - good).abs() < 1e-9);
        let expected = b.wafer_cost.value() / (good * n);
        assert!((b.cost_per_transistor.value() - expected).abs() <= expected * 1e-9);
        let per_die = b.wafer_cost.value() / good;
        assert!((b.cost_per_good_die.value() - per_die).abs() <= per_die * 1e-9);
    }
}

/// Scenario #1 is always monotonically decreasing in λ for any X in
/// the Fig 6 band.
#[test]
fn scenario1_decreasing() {
    let mut s = Sampler::new(107);
    for _ in 0..CASES {
        let x = s.uniform(1.05, 1.35);
        let s1 = Scenario1::fig6(x).unwrap();
        let series = s1
            .sweep(Microns::new(0.25).unwrap(), Microns::new(1.0).unwrap(), 12)
            .unwrap();
        for w in series.windows(2) {
            assert!(w[0].1.value() < w[1].1.value());
        }
    }
}

/// Scenario #2 always punishes shrinking below 0.8 µm for X in the
/// Fig 7 band.
#[test]
fn scenario2_increasing() {
    let mut s = Sampler::new(108);
    for _ in 0..CASES {
        let x = s.uniform(1.8, 2.4);
        let s2 = Scenario2::fig7(x).unwrap();
        let c_08 = s2.cost_per_transistor(Microns::new(0.8).unwrap());
        let c_04 = s2.cost_per_transistor(Microns::new(0.4).unwrap());
        let c_025 = s2.cost_per_transistor(Microns::new(0.25).unwrap());
        assert!(c_04 > c_08);
        assert!(c_025 > c_04);
    }
}
