//! Property-based tests for the cost model.

use maly_cost_model::product::ProductScenario;
use maly_cost_model::scenario::{Scenario1, Scenario2};
use maly_units::Microns;
use proptest::prelude::*;

fn scenario(
    n_tr: f64,
    lambda: f64,
    d_d: f64,
    r_w: f64,
    y0: f64,
    c0: f64,
    x: f64,
) -> ProductScenario {
    ProductScenario::builder("prop")
        .transistors(n_tr)
        .unwrap()
        .feature_size_um(lambda)
        .unwrap()
        .design_density(d_d)
        .unwrap()
        .wafer_radius_cm(r_w)
        .unwrap()
        .reference_yield(y0)
        .unwrap()
        .reference_wafer_cost(c0)
        .unwrap()
        .cost_escalation(x)
        .unwrap()
        .build()
        .unwrap()
}

/// Input ranges chosen so the die always fits a 6–8-inch wafer and the
/// yield stays representable.
fn plausible_inputs() -> impl Strategy<
    Value = (
        f64, // n_tr
        f64, // lambda
        f64, // d_d
        f64, // r_w
        f64, // y0
        f64, // c0
        f64, // x
    ),
> {
    (
        1.0e5..5.0e6_f64,
        0.3..1.0_f64,
        30.0..400.0_f64,
        6.0..10.0_f64,
        0.5..0.95_f64,
        300.0..1500.0_f64,
        1.0..2.4_f64,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Eq. (1) always yields a strictly positive, finite cost for
    /// physically plausible inputs.
    #[test]
    fn cost_is_positive_and_finite((n, l, d, r, y0, c0, x) in plausible_inputs()) {
        let cost = scenario(n, l, d, r, y0, c0, x)
            .evaluate()
            .unwrap()
            .cost_per_transistor
            .value();
        prop_assert!(cost.is_finite() && cost > 0.0);
    }

    /// Better reference yield can never raise the transistor cost.
    #[test]
    fn cost_monotone_in_yield((n, l, d, r, y0, c0, x) in plausible_inputs(),
                              bump in 0.01f64..0.04) {
        let worse = scenario(n, l, d, r, y0, c0, x).evaluate().unwrap();
        let better = scenario(n, l, d, r, y0 + bump, c0, x).evaluate().unwrap();
        prop_assert!(better.cost_per_transistor <= worse.cost_per_transistor);
        prop_assert!(better.die_yield >= worse.die_yield);
    }

    /// A higher escalation factor X can never make sub-micron wafers
    /// cheaper (λ < 1 µm ⇒ positive exponent).
    #[test]
    fn cost_monotone_in_x((n, l, d, r, y0, c0, x) in plausible_inputs(), bump in 0.05f64..0.5) {
        let cheap = scenario(n, l, d, r, y0, c0, x).evaluate().unwrap();
        let dear = scenario(n, l, d, r, y0, c0, x + bump).evaluate().unwrap();
        prop_assert!(dear.wafer_cost >= cheap.wafer_cost);
        prop_assert!(dear.cost_per_transistor >= cheap.cost_per_transistor);
    }

    /// A bigger wafer at the same wafer cost can never cost more per
    /// transistor (more dies for the same money).
    #[test]
    fn cost_monotone_in_wafer_radius((n, l, d, _r, y0, c0, x) in plausible_inputs()) {
        let six = scenario(n, l, d, 7.5, y0, c0, x).evaluate().unwrap();
        let eight = scenario(n, l, d, 10.0, y0, c0, x).evaluate().unwrap();
        prop_assert!(eight.dies_per_wafer >= six.dies_per_wafer);
        prop_assert!(eight.cost_per_transistor <= six.cost_per_transistor);
    }

    /// Denser layout (smaller d_d) can never cost more per transistor.
    #[test]
    fn cost_monotone_in_density((n, l, d, r, y0, c0, x) in plausible_inputs(),
                                shrink in 0.5f64..0.95) {
        let sparse = scenario(n, l, d, r, y0, c0, x).evaluate().unwrap();
        let dense = scenario(n, l, d * shrink, r, y0, c0, x).evaluate().unwrap();
        prop_assert!(dense.cost_per_transistor <= sparse.cost_per_transistor * 1.000001);
    }

    /// The breakdown is internally consistent: good dies = N_ch·Y and
    /// C_tr = C_w/(N_ch·N_tr·Y).
    #[test]
    fn breakdown_is_consistent((n, l, d, r, y0, c0, x) in plausible_inputs()) {
        let s = scenario(n, l, d, r, y0, c0, x);
        let b = s.evaluate().unwrap();
        let good = b.dies_per_wafer.as_f64() * b.die_yield.value();
        prop_assert!((b.good_dies_per_wafer - good).abs() < 1e-9);
        let expected = b.wafer_cost.value() / (good * n);
        prop_assert!((b.cost_per_transistor.value() - expected).abs() <= expected * 1e-9);
        let per_die = b.wafer_cost.value() / good;
        prop_assert!((b.cost_per_good_die.value() - per_die).abs() <= per_die * 1e-9);
    }

    /// Scenario #1 is always monotonically decreasing in λ for any X in
    /// the Fig 6 band.
    #[test]
    fn scenario1_decreasing(x in 1.05f64..1.35) {
        let s1 = Scenario1::fig6(x).unwrap();
        let series = s1.sweep(
            Microns::new(0.25).unwrap(),
            Microns::new(1.0).unwrap(),
            12,
        );
        for w in series.windows(2) {
            prop_assert!(w[0].1.value() < w[1].1.value());
        }
    }

    /// Scenario #2 always punishes shrinking below 0.8 µm for X in the
    /// Fig 7 band.
    #[test]
    fn scenario2_increasing(x in 1.8f64..2.4) {
        let s2 = Scenario2::fig7(x).unwrap();
        let c_08 = s2.cost_per_transistor(Microns::new(0.8).unwrap());
        let c_04 = s2.cost_per_transistor(Microns::new(0.4).unwrap());
        let c_025 = s2.cost_per_transistor(Microns::new(0.25).unwrap());
        prop_assert!(c_04 > c_08);
        prop_assert!(c_025 > c_04);
    }
}
