//! Multi-partition system cost (Sec. IV.B).
//!
//! "By including in the IC system design process such variables as sizes
//! of the system's partitions and minimum feature sizes of each partition
//! one can minimize the overall system cost." A [`SystemDesign`] is a set
//! of partitions — each a block of transistors at its own density — that
//! can be assigned to dies with *individually chosen* feature sizes. The
//! optimizer crate searches this space; this module prices one candidate.

use maly_units::{DesignDensity, Dollars, Microns, Probability, TransistorCount};
use maly_wafer_geom::Wafer;

use crate::product::ProductScenario;
use crate::{CostBreakdown, CostError, WaferCostModel};

/// One partition of a system: a block of functionality with its own
/// transistor count and layout density (e.g. "the cache" vs "the FPU" —
/// Table 1 shows their densities differ by 6×).
#[derive(Debug, Clone, PartialEq)]
pub struct Partition {
    /// Partition label.
    pub name: String,
    /// Transistors in this partition.
    pub transistors: TransistorCount,
    /// Layout density of this partition.
    pub density: DesignDensity,
}

impl Partition {
    /// Creates a partition.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        transistors: TransistorCount,
        density: DesignDensity,
    ) -> Self {
        Self {
            name: name.into(),
            transistors,
            density,
        }
    }
}

/// Manufacturing context shared by all partitions of a system study:
/// wafer, reference yield, and the wafer-cost economics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ManufacturingContext {
    /// The wafer every die is manufactured on.
    pub wafer: Wafer,
    /// Reference 1 cm² yield (the Table 3 convention).
    pub reference_yield: Probability,
    /// Wafer cost model (`C₀`, `X`).
    pub wafer_cost: WaferCostModel,
    /// Fixed per-die overhead added for each *separate* die (packaging,
    /// handling, per-die test insertion). This is what makes merging
    /// partitions attractive and creates a real partitioning tradeoff.
    pub per_die_overhead: Dollars,
}

/// A system design: partitions, each assigned a feature size; partitions
/// sharing an assignment index are merged onto one die.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemDesign {
    partitions: Vec<Partition>,
}

/// Cost report for one evaluated die of a system.
#[derive(Debug, Clone, PartialEq)]
pub struct DieCost {
    /// Partitions merged onto this die.
    pub partition_names: Vec<String>,
    /// Feature size chosen for this die.
    pub lambda: Microns,
    /// The eq. (1) breakdown for the die.
    pub breakdown: CostBreakdown,
    /// Cost of this die including the per-die overhead.
    pub die_cost_with_overhead: Dollars,
}

/// Total cost report for a system candidate.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemCost {
    /// Per-die reports.
    pub dies: Vec<DieCost>,
    /// Total system cost (sum of good-die costs plus overheads).
    pub total: Dollars,
}

impl SystemDesign {
    /// Creates a design from its partitions.
    ///
    /// # Errors
    ///
    /// Returns an error when `partitions` is empty.
    pub fn new(partitions: Vec<Partition>) -> Result<Self, CostError> {
        if partitions.is_empty() {
            return Err(CostError::MissingField {
                field: "partitions",
            });
        }
        Ok(Self { partitions })
    }

    /// The partitions.
    #[must_use]
    pub fn partitions(&self) -> &[Partition] {
        &self.partitions
    }

    /// Total transistor count across partitions.
    #[must_use]
    pub fn total_transistors(&self) -> f64 {
        self.partitions.iter().map(|p| p.transistors.value()).sum()
    }

    /// Prices a candidate: `grouping[i]` is the die index of partition
    /// `i`, and `lambdas[die]` the feature size chosen for each die.
    /// Merged partitions share a die; the die's density is the
    /// area-preserving blend of its partitions' densities.
    ///
    /// # Errors
    ///
    /// Returns an error if the shapes are inconsistent, a die index is
    /// out of range, a die receives no partition, or any die fails to
    /// evaluate (too large, zero yield).
    pub fn evaluate(
        &self,
        context: &ManufacturingContext,
        grouping: &[usize],
        lambdas: &[Microns],
    ) -> Result<SystemCost, CostError> {
        if grouping.len() != self.partitions.len() {
            return Err(CostError::MissingField { field: "grouping" });
        }
        let n_dies = lambdas.len();
        if n_dies == 0 || grouping.iter().any(|&g| g >= n_dies) {
            return Err(CostError::MissingField { field: "lambdas" });
        }

        let mut dies = Vec::with_capacity(n_dies);
        let mut total = Dollars::zero();
        for (die_idx, &lambda) in lambdas.iter().enumerate() {
            let members: Vec<&Partition> = grouping
                .iter()
                .zip(&self.partitions)
                .filter_map(|(&g, p)| (g == die_idx).then_some(p))
                .collect();
            if members.is_empty() {
                return Err(CostError::MissingField {
                    field: "die members",
                });
            }
            // Blend densities so the merged die area is the sum of the
            // partitions' areas: d_blend = Σ(n_i·d_i) / Σ(n_i).
            let n_total: f64 = members.iter().map(|p| p.transistors.value()).sum();
            let weighted: f64 = members
                .iter()
                .map(|p| p.transistors.value() * p.density.value())
                .sum();
            let blend = DesignDensity::new(weighted / n_total)?;

            let scenario = ProductScenario::builder(
                members
                    .iter()
                    .map(|p| p.name.as_str())
                    .collect::<Vec<_>>()
                    .join("+"),
            )
            .transistors(TransistorCount::new(n_total)?)
            .feature_size(lambda)
            .design_density(blend)
            .wafer(context.wafer)
            .reference_yield(context.reference_yield)
            .reference_wafer_cost(context.wafer_cost.reference_cost())
            .cost_escalation(context.wafer_cost.escalation_factor())?
            .generation_rate(context.wafer_cost.generation_rate())
            .build()?;

            let breakdown = scenario.evaluate()?;
            let die_cost = breakdown.cost_per_good_die + context.per_die_overhead;
            total = total + die_cost;
            dies.push(DieCost {
                partition_names: members.iter().map(|p| p.name.clone()).collect(),
                lambda,
                breakdown,
                die_cost_with_overhead: die_cost,
            });
        }
        Ok(SystemCost { dies, total })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn partition(name: &str, n_tr: f64, d_d: f64) -> Partition {
        Partition::new(
            name,
            TransistorCount::new(n_tr).unwrap(),
            DesignDensity::new(d_d).unwrap(),
        )
    }

    fn context() -> ManufacturingContext {
        ManufacturingContext {
            wafer: Wafer::six_inch(),
            reference_yield: Probability::new(0.7).unwrap(),
            wafer_cost: WaferCostModel::new(Dollars::new(700.0).unwrap(), 1.8).unwrap(),
            per_die_overhead: Dollars::new(5.0).unwrap(),
        }
    }

    fn um(v: f64) -> Microns {
        Microns::new(v).unwrap()
    }

    fn two_block_system() -> SystemDesign {
        SystemDesign::new(vec![
            partition("cache", 2.0e6, 45.0),
            partition("logic", 1.0e6, 250.0),
        ])
        .unwrap()
    }

    #[test]
    fn merged_and_split_candidates_both_price() {
        let sys = two_block_system();
        let ctx = context();
        let merged = sys.evaluate(&ctx, &[0, 0], &[um(0.8)]).unwrap();
        assert_eq!(merged.dies.len(), 1);
        assert_eq!(merged.dies[0].partition_names, vec!["cache", "logic"]);
        let split = sys.evaluate(&ctx, &[0, 1], &[um(0.8), um(0.8)]).unwrap();
        assert_eq!(split.dies.len(), 2);
        assert!(merged.total.value() > 0.0 && split.total.value() > 0.0);
    }

    #[test]
    fn blended_density_preserves_total_area() {
        let sys = two_block_system();
        let ctx = context();
        let merged = sys.evaluate(&ctx, &[0, 0], &[um(0.8)]).unwrap();
        // Expected blend: (2e6·45 + 1e6·250)/3e6 = 113.33; area =
        // 3e6·113.33·0.64 µm² = 2.176 cm².
        let die_area = merged.dies[0].breakdown.die_yield; // yield encodes area via Y0^A
        let expected_area = 3.0e6 * (340.0 / 3.0) * 0.64 * 1e-8;
        let expected_yield = 0.7f64.powf(expected_area);
        assert!((die_area.value() - expected_yield).abs() < 1e-9);
    }

    #[test]
    fn per_die_overhead_penalizes_splitting() {
        // With a huge per-die overhead, merging must win.
        let sys = two_block_system();
        let mut ctx = context();
        ctx.per_die_overhead = Dollars::new(500.0).unwrap();
        let merged = sys.evaluate(&ctx, &[0, 0], &[um(0.8)]).unwrap();
        let split = sys.evaluate(&ctx, &[0, 1], &[um(0.8), um(0.8)]).unwrap();
        assert!(merged.total < split.total);
    }

    #[test]
    fn per_partition_lambda_choice_matters() {
        // Splitting lets the dense cache shrink while the sparse logic
        // stays at a cheap node; verify the knob actually moves cost.
        let sys = two_block_system();
        let ctx = context();
        let uniform = sys.evaluate(&ctx, &[0, 1], &[um(0.8), um(0.8)]).unwrap();
        let tuned = sys.evaluate(&ctx, &[0, 1], &[um(0.5), um(1.0)]).unwrap();
        assert!((uniform.total.value() - tuned.total.value()).abs() > 1e-6);
    }

    #[test]
    fn shape_validation() {
        let sys = two_block_system();
        let ctx = context();
        assert!(sys.evaluate(&ctx, &[0], &[um(0.8)]).is_err());
        assert!(sys.evaluate(&ctx, &[0, 5], &[um(0.8)]).is_err());
        assert!(sys.evaluate(&ctx, &[0, 0], &[]).is_err());
        // A die with no members is rejected.
        assert!(sys.evaluate(&ctx, &[0, 0], &[um(0.8), um(0.8)]).is_err());
    }

    #[test]
    fn empty_system_rejected() {
        assert!(SystemDesign::new(vec![]).is_err());
    }

    #[test]
    fn total_is_sum_of_dies() {
        let sys = two_block_system();
        let ctx = context();
        let split = sys.evaluate(&ctx, &[0, 1], &[um(0.8), um(0.65)]).unwrap();
        let sum: f64 = split
            .dies
            .iter()
            .map(|d| d.die_cost_with_overhead.value())
            .sum();
        assert!((split.total.value() - sum).abs() < 1e-9);
    }
}
