//! Product scenarios — the rows of Table 3.
//!
//! A [`ProductScenario`] bundles the seven inputs of the paper's cost
//! diversity study (`N_tr`, λ, `d_d`, `R_w`, `Y₀`, `C₀`, `X`) plus a
//! product label, and evaluates the cost model built from eqs (1), (3),
//! (4) and the area-scaled yield convention. This is the quantitative
//! anchor of the reproduction: all fully specified printed rows come out
//! within half a percent.

use maly_units::{
    Centimeters, DesignDensity, Dollars, Microns, Probability, SquareCentimeters, TransistorCount,
};
use maly_wafer_geom::{DieDimensions, Wafer};
use maly_yield_model::AreaScaledYield;

use crate::{
    density, CostBreakdown, CostError, DiesPerWaferMethod, TransistorCostModel, WaferCostModel,
};

/// One product/manufacturing scenario (a Table 3 row).
///
/// Construct with [`ProductScenario::builder`].
///
/// # Examples
///
/// ```
/// use maly_cost_model::product::ProductScenario;
/// use maly_units::{
///     Centimeters, DesignDensity, Dollars, Microns, Probability, TransistorCount,
/// };
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // Table 3 row 13: 256 Mb DRAM.
/// let dram = ProductScenario::builder("DRAM, 256Mb")
///     .transistors(TransistorCount::new(264.0e6)?)
///     .feature_size(Microns::new(0.25)?)
///     .design_density(DesignDensity::new(29.0)?)
///     .wafer_radius(Centimeters::new(7.5)?)
///     .reference_yield(Probability::new(0.9)?)
///     .reference_wafer_cost(Dollars::new(600.0)?)
///     .cost_escalation(1.8)?
///     .build()?;
/// let micro = dram.evaluate()?.cost_per_transistor.to_micro_dollars().value();
/// assert!((micro - 1.31).abs() < 0.01); // paper prints 1.31 µ$
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ProductScenario {
    name: String,
    transistors: TransistorCount,
    lambda: Microns,
    density: DesignDensity,
    wafer: Wafer,
    reference_yield: Probability,
    wafer_cost_model: WaferCostModel,
    dies_method: DiesPerWaferMethod,
}

impl ProductScenario {
    /// Starts building a scenario with the given product label.
    #[must_use]
    pub fn builder(name: impl Into<String>) -> ProductScenarioBuilder {
        ProductScenarioBuilder::new(name)
    }

    /// Product label.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Transistor count `N_tr`.
    #[must_use]
    pub fn transistors(&self) -> TransistorCount {
        self.transistors
    }

    /// Feature size λ.
    #[must_use]
    pub fn feature_size(&self) -> Microns {
        self.lambda
    }

    /// Design density `d_d`.
    #[must_use]
    pub fn design_density(&self) -> DesignDensity {
        self.density
    }

    /// The wafer manufactured on.
    #[must_use]
    pub fn wafer(&self) -> &Wafer {
        &self.wafer
    }

    /// Reference (1 cm²) yield `Y₀`.
    #[must_use]
    pub fn reference_yield(&self) -> Probability {
        self.reference_yield
    }

    /// The wafer cost model (`C₀`, `X`).
    #[must_use]
    pub fn wafer_cost_model(&self) -> &WaferCostModel {
        &self.wafer_cost_model
    }

    /// Die area implied by eq. (5).
    #[must_use]
    pub fn die_area(&self) -> SquareCentimeters {
        density::die_area(self.transistors, self.density, self.lambda)
    }

    /// The (square) die outline.
    #[must_use]
    pub fn die(&self) -> DieDimensions {
        DieDimensions::square_with_area(self.die_area())
    }

    /// Evaluates the full cost model for this scenario.
    ///
    /// # Errors
    ///
    /// Propagates [`CostError::NoDiesFit`] / [`CostError::ZeroYield`] from
    /// the underlying model — both indicate a physically impossible
    /// scenario (die larger than the wafer, or a yield that collapsed).
    pub fn evaluate(&self) -> Result<CostBreakdown, CostError> {
        let wafer_cost = self.wafer_cost_model.wafer_cost(self.lambda);
        let model = TransistorCostModel::new(
            self.wafer,
            wafer_cost,
            AreaScaledYield::per_square_centimeter(self.reference_yield),
        )
        .dies_per_wafer_method(self.dies_method);
        model.evaluate(self.die(), self.transistors)
    }

    /// Re-evaluates the scenario at a different feature size, keeping the
    /// transistor count and density fixed (a *shrink study*: same design,
    /// next node).
    ///
    /// # Errors
    ///
    /// Same contract as [`Self::evaluate`].
    pub fn evaluate_at(&self, lambda: Microns) -> Result<CostBreakdown, CostError> {
        let mut shrunk = self.clone();
        shrunk.lambda = lambda;
        shrunk.evaluate()
    }
}

impl std::fmt::Display for ProductScenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} ({} at {}, d_d = {})",
            self.name,
            self.transistors,
            self.lambda,
            self.density.value()
        )
    }
}

/// Builder for [`ProductScenario`] (C-BUILDER).
#[derive(Debug, Clone)]
pub struct ProductScenarioBuilder {
    name: String,
    transistors: Option<TransistorCount>,
    lambda: Option<Microns>,
    density: Option<DesignDensity>,
    wafer: Option<Wafer>,
    reference_yield: Option<Probability>,
    reference_cost: Option<Dollars>,
    escalation: Option<f64>,
    generation_rate: f64,
    dies_method: DiesPerWaferMethod,
}

impl ProductScenarioBuilder {
    fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            transistors: None,
            lambda: None,
            density: None,
            wafer: None,
            reference_yield: None,
            reference_cost: None,
            escalation: None,
            generation_rate: WaferCostModel::CALIBRATED_GENERATION_RATE,
            dies_method: DiesPerWaferMethod::default(),
        }
    }

    /// Sets `N_tr`.
    #[must_use]
    pub fn transistors(mut self, count: TransistorCount) -> Self {
        self.transistors = Some(count);
        self
    }

    /// Sets λ.
    #[must_use]
    pub fn feature_size(mut self, lambda: Microns) -> Self {
        self.lambda = Some(lambda);
        self
    }

    /// Sets `d_d`.
    #[must_use]
    pub fn design_density(mut self, d_d: DesignDensity) -> Self {
        self.density = Some(d_d);
        self
    }

    /// Sets the wafer radius (Table 3 prints `R_w` in centimeters).
    #[must_use]
    pub fn wafer_radius(mut self, r_w: Centimeters) -> Self {
        self.wafer = Some(Wafer::with_radius(r_w));
        self
    }

    /// Sets the full wafer description (edge exclusion, saw street).
    #[must_use]
    pub fn wafer(mut self, wafer: Wafer) -> Self {
        self.wafer = Some(wafer);
        self
    }

    /// Sets the 1 cm² reference yield `Y₀`.
    #[must_use]
    pub fn reference_yield(mut self, y0: Probability) -> Self {
        self.reference_yield = Some(y0);
        self
    }

    /// Sets the reference wafer cost `C₀`.
    #[must_use]
    pub fn reference_wafer_cost(mut self, c0: Dollars) -> Self {
        self.reference_cost = Some(c0);
        self
    }

    /// Sets the cost escalation factor `X`.
    ///
    /// # Errors
    ///
    /// Returns an error for `X < 1`.
    pub fn cost_escalation(mut self, x: f64) -> Result<Self, CostError> {
        if !x.is_finite() || x < 1.0 {
            return Err(CostError::InvalidInput(maly_units::UnitError::OutOfRange {
                quantity: "cost escalation factor X",
                value: x,
                min: 1.0,
                max: f64::INFINITY,
            }));
        }
        self.escalation = Some(x);
        Ok(self)
    }

    /// Overrides the generation rate `k` in the eq. (3) exponent
    /// (defaults to the calibrated 5 /µm).
    #[must_use]
    pub fn generation_rate(mut self, k: f64) -> Self {
        self.generation_rate = k;
        self
    }

    /// Overrides the dies-per-wafer method (defaults to eq. 4).
    #[must_use]
    pub fn dies_per_wafer_method(mut self, method: DiesPerWaferMethod) -> Self {
        self.dies_method = method;
        self
    }

    /// Finalizes the scenario.
    ///
    /// # Errors
    ///
    /// Returns [`CostError::MissingField`] naming the first field that was
    /// never set, or an invalid-input error from the wafer cost model.
    pub fn build(self) -> Result<ProductScenario, CostError> {
        let missing = |field| CostError::MissingField { field };
        let transistors = self.transistors.ok_or(missing("transistors"))?;
        let lambda = self.lambda.ok_or(missing("feature_size"))?;
        let density = self.density.ok_or(missing("design_density"))?;
        let wafer = self.wafer.ok_or(missing("wafer_radius"))?;
        let reference_yield = self.reference_yield.ok_or(missing("reference_yield"))?;
        let reference_cost = self.reference_cost.ok_or(missing("reference_wafer_cost"))?;
        let escalation = self.escalation.ok_or(missing("cost_escalation"))?;
        let wafer_cost_model =
            WaferCostModel::with_generation_rate(reference_cost, escalation, self.generation_rate)?;
        Ok(ProductScenario {
            name: self.name,
            transistors,
            lambda,
            density,
            wafer,
            reference_yield,
            wafer_cost_model,
            dies_method: self.dies_method,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[allow(clippy::too_many_arguments)]
    fn row(
        name: &str,
        n_tr: f64,
        lambda: f64,
        d_d: f64,
        r_w: f64,
        y0: f64,
        c0: f64,
        x: f64,
    ) -> ProductScenario {
        ProductScenario::builder(name)
            .transistors(TransistorCount::new(n_tr).unwrap())
            .feature_size(Microns::new(lambda).unwrap())
            .design_density(DesignDensity::new(d_d).unwrap())
            .wafer_radius(Centimeters::new(r_w).unwrap())
            .reference_yield(Probability::new(y0).unwrap())
            .reference_wafer_cost(Dollars::new(c0).unwrap())
            .cost_escalation(x)
            .unwrap()
            .build()
            .unwrap()
    }

    fn micro_cost(s: &ProductScenario) -> f64 {
        s.evaluate()
            .unwrap()
            .cost_per_transistor
            .to_micro_dollars()
            .value()
    }

    #[test]
    fn table3_rows_1_to_3_reproduce() {
        // Same µP at three (Y0, X) pessimism levels.
        let r1 = row("row1", 3.1e6, 0.8, 150.0, 7.5, 0.9, 700.0, 1.4);
        let r2 = row("row2", 3.1e6, 0.8, 150.0, 7.5, 0.7, 700.0, 1.8);
        let r3 = row("row3", 3.1e6, 0.8, 150.0, 7.5, 0.6, 700.0, 2.2);
        assert!((micro_cost(&r1) - 9.40).abs() < 0.05, "{}", micro_cost(&r1));
        assert!((micro_cost(&r2) - 25.5).abs() < 0.1, "{}", micro_cost(&r2));
        assert!((micro_cost(&r3) - 49.3).abs() < 0.2, "{}", micro_cost(&r3));
    }

    #[test]
    fn table3_memory_rows_reproduce() {
        let sram = row("SRAM 1Mb", 6.2e6, 0.35, 36.0, 7.5, 0.9, 500.0, 1.8);
        let dram256 = row("DRAM 256Mb", 264.0e6, 0.25, 29.0, 7.5, 0.9, 600.0, 1.8);
        let dram256_8in = row("DRAM 256Mb", 264.0e6, 0.25, 29.0, 10.0, 0.7, 600.0, 1.8);
        assert!(
            (micro_cost(&sram) - 0.93).abs() < 0.01,
            "{}",
            micro_cost(&sram)
        );
        assert!(
            (micro_cost(&dram256) - 1.31).abs() < 0.01,
            "{}",
            micro_cost(&dram256)
        );
        assert!(
            (micro_cost(&dram256_8in) - 2.18).abs() < 0.02,
            "{}",
            micro_cost(&dram256_8in)
        );
    }

    #[test]
    fn table3_pld_row_reproduces() {
        // Row 17: 7.2k transistors at d_d = 2600 — the most expensive
        // transistors in the table, 240 µ$.
        let pld = row("PLD", 7.2e3, 0.8, 2600.0, 7.5, 0.7, 1300.0, 1.8);
        assert!(
            (micro_cost(&pld) - 240.0).abs() < 12.0,
            "{}",
            micro_cost(&pld)
        );
    }

    #[test]
    fn memory_vs_logic_cost_gap() {
        // The paper's headline diversity: DRAM transistors are ~20× cheaper
        // than µP transistors under comparable assumptions.
        let dram = row("DRAM", 264.0e6, 0.25, 29.0, 7.5, 0.9, 600.0, 1.8);
        let up = row("µP", 3.1e6, 0.8, 150.0, 7.5, 0.7, 700.0, 1.8);
        assert!(micro_cost(&up) / micro_cost(&dram) > 15.0);
    }

    #[test]
    fn missing_field_is_reported_by_name() {
        let err = ProductScenario::builder("incomplete")
            .transistors(TransistorCount::new(1.0e6).unwrap())
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            CostError::MissingField {
                field: "feature_size"
            }
        );
    }

    #[test]
    fn shrink_study_via_evaluate_at() {
        // Row 2 shrunk to 0.65 µm: smaller die, better yield, pricier
        // wafer. For X = 1.8 the shrink wins.
        let r2 = row("row2", 3.1e6, 0.8, 150.0, 7.5, 0.7, 700.0, 1.8);
        let at_065 = r2
            .evaluate_at(Microns::new(0.65).unwrap())
            .unwrap()
            .cost_per_transistor
            .to_micro_dollars()
            .value();
        assert!(at_065 < micro_cost(&r2));
    }

    #[test]
    fn accessors_expose_inputs() {
        let r = row("x", 3.1e6, 0.8, 150.0, 7.5, 0.9, 700.0, 1.4);
        assert_eq!(r.name(), "x");
        assert_eq!(r.feature_size().value(), 0.8);
        assert_eq!(r.design_density().value(), 150.0);
        assert_eq!(r.reference_yield().value(), 0.9);
        assert!((r.die_area().value() - 2.976).abs() < 1e-9);
        assert!(r.to_string().contains("3.10M tr"));
    }

    #[test]
    fn builder_validates_inputs() {
        // Bad magnitudes never reach the builder: the newtypes reject
        // them at construction. The builder's own check is X ≥ 1.
        assert!(TransistorCount::new(-1.0).is_err());
        assert!(Microns::new(0.0).is_err());
        assert!(Probability::new(1.5).is_err());
        assert!(ProductScenario::builder("bad")
            .cost_escalation(0.5)
            .is_err());
    }
}
