//! Sensitivity analysis: which knob moves the transistor cost most?
//!
//! "Now, as the situation may change and cost could become one of the
//! designer's main concerns it is necessary to ... analyze the
//! design-cost dependency" (Sec. IV). This module computes the
//! *elasticity* of `C_tr` with respect to each model input — the
//! percentage cost change per percent input change — by central finite
//! differences on the full (discrete, floor-riddled) model.

use maly_units::{DesignDensity, Dollars, Microns, MicronsDelta, Probability, TransistorCount};

use crate::product::ProductScenario;
use crate::CostError;

/// The inputs a designer or fab can move.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CostDriver {
    /// Transistor count `N_tr`.
    Transistors,
    /// Feature size λ.
    FeatureSize,
    /// Design density `d_d`.
    DesignDensity,
    /// Reference yield `Y₀`.
    ReferenceYield,
    /// Reference wafer cost `C₀`.
    ReferenceCost,
    /// Escalation factor `X`.
    Escalation,
}

impl CostDriver {
    /// All drivers, in report order.
    pub const ALL: [CostDriver; 6] = [
        CostDriver::Transistors,
        CostDriver::FeatureSize,
        CostDriver::DesignDensity,
        CostDriver::ReferenceYield,
        CostDriver::ReferenceCost,
        CostDriver::Escalation,
    ];
}

impl std::fmt::Display for CostDriver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            CostDriver::Transistors => "N_tr",
            CostDriver::FeatureSize => "λ",
            CostDriver::DesignDensity => "d_d",
            CostDriver::ReferenceYield => "Y0",
            CostDriver::ReferenceCost => "C0",
            CostDriver::Escalation => "X",
        };
        f.write_str(s)
    }
}

/// One elasticity result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Elasticity {
    /// The perturbed driver.
    pub driver: CostDriver,
    /// `d ln C_tr / d ln input` — +1 means "1% more input, 1% more cost".
    pub elasticity: f64,
}

/// Rebuilds a scenario with one input scaled by `factor`.
fn perturbed(
    base: &ProductScenario,
    driver: CostDriver,
    factor: f64,
) -> Result<ProductScenario, CostError> {
    let mut transistors = base.transistors().value();
    let mut lambda = base.feature_size().value();
    let mut density = base.design_density().value();
    let mut y0 = base.reference_yield().value();
    let mut c0 = base.wafer_cost_model().reference_cost().value();
    let mut x = base.wafer_cost_model().escalation_factor();
    match driver {
        CostDriver::Transistors => transistors *= factor,
        CostDriver::FeatureSize => lambda *= factor,
        CostDriver::DesignDensity => density *= factor,
        CostDriver::ReferenceYield => y0 = (y0 * factor).min(1.0),
        CostDriver::ReferenceCost => c0 *= factor,
        CostDriver::Escalation => x = (x * factor).max(1.0),
    }
    ProductScenario::builder(base.name())
        .transistors(TransistorCount::new(transistors)?)
        .feature_size(Microns::new(lambda)?)
        .design_density(DesignDensity::new(density)?)
        .wafer(*base.wafer())
        .reference_yield(Probability::new(y0)?)
        .reference_wafer_cost(Dollars::new(c0)?)
        .cost_escalation(x)?
        .generation_rate(base.wafer_cost_model().generation_rate())
        .build()
}

/// Elasticity of the transistor cost with respect to one driver, by a
/// central difference of relative size `step` (default callers use a few
/// percent — wide enough to average over dies-per-wafer floor() jumps).
///
/// # Errors
///
/// Propagates evaluation failures at the perturbed points.
pub fn elasticity(
    scenario: &ProductScenario,
    driver: CostDriver,
    step: f64,
) -> Result<Elasticity, CostError> {
    let up = perturbed(scenario, driver, 1.0 + step)?
        .evaluate()?
        .cost_per_transistor
        .value();
    let down = perturbed(scenario, driver, 1.0 - step)?
        .evaluate()?
        .cost_per_transistor
        .value();
    let d_ln_cost = (up / down).ln();
    let d_ln_input = ((1.0 + step) / (1.0 - step)).ln();
    Ok(Elasticity {
        driver,
        elasticity: d_ln_cost / d_ln_input,
    })
}

/// Full elasticity report, sorted by descending |elasticity| (the
/// biggest lever first).
///
/// # Errors
///
/// Propagates evaluation failures.
pub fn elasticities(scenario: &ProductScenario, step: f64) -> Result<Vec<Elasticity>, CostError> {
    let mut out: Vec<Elasticity> = CostDriver::ALL
        .iter()
        .map(|&driver| elasticity(scenario, driver, step))
        .collect::<Result<_, _>>()?;
    out.sort_by(|a, b| b.elasticity.abs().total_cmp(&a.elasticity.abs()));
    Ok(out)
}

/// Per-micron marginal cost of λ around the scenario's node — the number
/// a shrink negotiation runs on.
///
/// # Errors
///
/// Propagates evaluation failures.
pub fn marginal_cost_of_lambda(
    scenario: &ProductScenario,
    delta: MicronsDelta,
) -> Result<f64, CostError> {
    let base = scenario.evaluate()?.cost_per_transistor.value();
    let shifted = scenario
        .evaluate_at(delta.applied_to(scenario.feature_size())?)?
        .cost_per_transistor
        .value();
    Ok((shifted - base) / delta.value())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row2() -> ProductScenario {
        ProductScenario::builder("row2")
            .transistors(TransistorCount::new(3.1e6).unwrap())
            .feature_size(Microns::new(0.8).unwrap())
            .design_density(DesignDensity::new(150.0).unwrap())
            .wafer_radius(maly_units::Centimeters::new(7.5).unwrap())
            .reference_yield(Probability::new(0.7).unwrap())
            .reference_wafer_cost(Dollars::new(700.0).unwrap())
            .cost_escalation(1.8)
            .unwrap()
            .build()
            .unwrap()
    }

    fn elasticity_of(driver: CostDriver) -> f64 {
        elasticity(&row2(), driver, 0.05).unwrap().elasticity
    }

    #[test]
    fn reference_cost_elasticity_is_exactly_one() {
        // C_tr is linear in C0: the elasticity is +1 by construction.
        assert!((elasticity_of(CostDriver::ReferenceCost) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn signs_match_economics() {
        assert!(
            elasticity_of(CostDriver::ReferenceYield) < 0.0,
            "better Y0 is cheaper"
        );
        assert!(
            elasticity_of(CostDriver::Escalation) > 0.0,
            "higher X is dearer"
        );
        assert!(
            elasticity_of(CostDriver::DesignDensity) > 0.0,
            "sparser is dearer"
        );
    }

    #[test]
    fn yield_is_a_major_lever_for_big_dies() {
        // Row 2's 2.976 cm² die: the Y0 elasticity magnitude exceeds the
        // C0 elasticity — yield is the bigger lever, the paper's point.
        let y = elasticity_of(CostDriver::ReferenceYield).abs();
        assert!(y > 1.5, "Y0 elasticity {y}");
    }

    #[test]
    fn report_is_sorted_by_magnitude() {
        let report = elasticities(&row2(), 0.05).unwrap();
        assert_eq!(report.len(), 6);
        for w in report.windows(2) {
            assert!(w[0].elasticity.abs() >= w[1].elasticity.abs());
        }
    }

    #[test]
    fn marginal_cost_of_lambda_is_negative_at_row2() {
        // Around 0.8 µm under row-2 assumptions, growing λ (backing off
        // the shrink) raises cost — i.e. the shrink direction is cheaper.
        let m = marginal_cost_of_lambda(&row2(), MicronsDelta::new(0.05).unwrap()).unwrap();
        assert!(m > 0.0, "d(cost)/dλ = {m}");
    }

    #[test]
    fn drivers_display_paper_symbols() {
        assert_eq!(CostDriver::FeatureSize.to_string(), "λ");
        assert_eq!(CostDriver::ReferenceYield.to_string(), "Y0");
    }
}
