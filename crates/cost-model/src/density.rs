//! Eq. (5): design density and the transistor-count ↔ die-area mapping.
//!
//! `N_tr = A_ch / (d_d · λ²)`: a design needs `d_d` squares of side λ per
//! average transistor. Tables 1–2 of the paper show `d_d` spanning two
//! orders of magnitude, from 17.8 λ²/tr (16 Mb SRAM) to 2631 λ²/tr (PLD)
//! — the quantitative root of the paper's cost-diversity message.

use maly_units::{DesignDensity, Microns, SquareCentimeters, TransistorCount, UnitError};

/// Die area implied by a transistor count at a given density and feature
/// size: `A_ch = N_tr · d_d · λ²` (eq. 5 inverted).
///
/// # Examples
///
/// ```
/// use maly_units::{DesignDensity, Microns, TransistorCount};
/// use maly_cost_model::density::die_area;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // Table 3 row 1: 3.1M transistors at d_d = 150, λ = 0.8 µm → 2.976 cm².
/// let a = die_area(
///     TransistorCount::from_millions(3.1)?,
///     DesignDensity::new(150.0)?,
///     Microns::new(0.8)?,
/// );
/// assert!((a.value() - 2.976).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn die_area(
    transistors: TransistorCount,
    density: DesignDensity,
    lambda: Microns,
) -> SquareCentimeters {
    (density.transistor_footprint(lambda) * transistors.value()).to_square_centimeters()
}

/// Transistors that fit in a die of the given area (eq. 5 as printed).
///
/// # Errors
///
/// Never fails for valid unit inputs; fallible only because the result
/// must itself be a valid positive count.
pub fn transistors_per_die(
    area: SquareCentimeters,
    density: DesignDensity,
    lambda: Microns,
) -> Result<TransistorCount, UnitError> {
    let per_tr = density.transistor_footprint(lambda).to_square_centimeters();
    TransistorCount::new(area.value() / per_tr.value())
}

/// Transistors that fit on a whole wafer of area `wafer_area`, ignoring
/// die boundaries — the `A_w / (d_d·λ²)` capacity used by eqs (8)–(9).
///
/// # Errors
///
/// Same contract as [`transistors_per_die`].
pub fn transistors_per_wafer(
    wafer_area: SquareCentimeters,
    density: DesignDensity,
    lambda: Microns,
) -> Result<TransistorCount, UnitError> {
    transistors_per_die(wafer_area, density, lambda)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn um(v: f64) -> Microns {
        Microns::new(v).unwrap()
    }

    fn dd(v: f64) -> DesignDensity {
        DesignDensity::new(v).unwrap()
    }

    #[test]
    fn area_and_count_are_inverse() {
        let n = TransistorCount::from_millions(2.8).unwrap();
        let a = die_area(n, dd(102.0), um(0.65));
        let back = transistors_per_die(a, dd(102.0), um(0.65)).unwrap();
        assert!((back.value() - n.value()).abs() < 1.0);
    }

    #[test]
    fn table3_row13_die_area() {
        // 264M transistors, d_d = 29, λ = 0.25 → 4.785 cm².
        let a = die_area(
            TransistorCount::from_millions(264.0).unwrap(),
            dd(29.0),
            um(0.25),
        );
        assert!((a.value() - 4.785).abs() < 1e-9);
    }

    #[test]
    fn density_dominates_area() {
        let n = TransistorCount::from_millions(1.0).unwrap();
        let dense = die_area(n, dd(30.0), um(0.8));
        let sparse = die_area(n, dd(300.0), um(0.8));
        assert!((sparse.value() / dense.value() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn shrink_quadratically_reduces_area() {
        let n = TransistorCount::from_millions(1.0).unwrap();
        let big = die_area(n, dd(150.0), um(0.8));
        let small = die_area(n, dd(150.0), um(0.4));
        assert!((big.value() / small.value() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn wafer_capacity_matches_fig6_example() {
        // Fig 6 at λ = 1 µm, d_d = 30 on a 6-inch wafer:
        // A_w/(d_d·λ²) = 176.71 cm² / 30 µm² ≈ 589 M transistors.
        let wafer_area = SquareCentimeters::new(std::f64::consts::PI * 7.5 * 7.5).unwrap();
        let n = transistors_per_wafer(wafer_area, dd(30.0), um(1.0)).unwrap();
        assert!((n.millions() - 589.0).abs() < 1.0);
    }
}
