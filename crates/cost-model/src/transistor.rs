//! Eq. (1): the transistor cost model proper.

use maly_units::{DieCount, Dollars, Probability, TransistorCount};
use maly_wafer_geom::{approx, cache, raster::RasterPlacement, DieDimensions, Wafer};
use maly_yield_model::YieldModel;

use crate::CostError;

/// How `N_ch` (dies per wafer) is computed.
///
/// The paper uses eq. (4); the alternatives allow sensitivity studies
/// (how much of the cost conclusion depends on the die-packing model —
/// answer: little, the methods agree within a few percent).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DiesPerWaferMethod {
    /// Eq. (4): per-row centered packing (the paper's choice).
    #[default]
    MalyEq4,
    /// Exact rigid-grid placement with an offset sweep of the given size.
    Raster {
        /// Offsets swept per axis (see `RasterPlacement::new`).
        offset_steps: u32,
    },
    /// Floor of the gross area ratio `π R²/A` (upper bound).
    GrossEstimate,
    /// Floor of the edge-corrected closed form.
    EdgeCorrected,
}

impl DiesPerWaferMethod {
    /// Computes the die count for a wafer/die pair.
    #[must_use]
    pub fn dies_per_wafer(&self, wafer: &Wafer, die: DieDimensions) -> DieCount {
        match self {
            // Routed through the process-global memo: every sweep that
            // revisits a (wafer, die) pair reuses the eq. (4) sum.
            DiesPerWaferMethod::MalyEq4 => cache::dies_per_wafer(wafer, die),
            DiesPerWaferMethod::Raster { offset_steps } => RasterPlacement::new(*offset_steps)
                .place(wafer, die)
                .count(),
            DiesPerWaferMethod::GrossEstimate => {
                DieCount::new(approx::gross_estimate(wafer, die).floor().max(0.0) as u32)
            }
            DiesPerWaferMethod::EdgeCorrected => {
                DieCount::new(approx::edge_corrected_estimate(wafer, die).floor().max(0.0) as u32)
            }
        }
    }
}

/// Full decomposition of one eq. (1) evaluation — every intermediate the
/// paper's tables report (C-INTERMEDIATE: expose what was computed anyway).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostBreakdown {
    /// Wafer cost `C_w` used.
    pub wafer_cost: Dollars,
    /// Dies per wafer `N_ch`.
    pub dies_per_wafer: DieCount,
    /// Die yield `Y`.
    pub die_yield: Probability,
    /// Expected good dies per wafer, `N_ch · Y`.
    pub good_dies_per_wafer: f64,
    /// Cost of one *good* die, `C_w / (N_ch · Y)`.
    pub cost_per_good_die: Dollars,
    /// Cost of one transistor in a good die, eq. (1).
    pub cost_per_transistor: Dollars,
}

/// Eq. (1) with pluggable dies-per-wafer method and yield model:
/// `C_tr = C_w / (N_ch · N_tr · Y)`.
///
/// # Examples
///
/// ```
/// use maly_units::{Dollars, Probability, SquareCentimeters, TransistorCount};
/// use maly_wafer_geom::{DieDimensions, Wafer};
/// use maly_yield_model::AreaScaledYield;
/// use maly_cost_model::TransistorCostModel;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // Table 3 row 2: $1260 wafer, 2.976 cm² die, Y0 = 0.7, 3.1M transistors.
/// let model = TransistorCostModel::new(
///     Wafer::six_inch(),
///     Dollars::new(1260.0)?,
///     AreaScaledYield::per_square_centimeter(Probability::new(0.7)?),
/// );
/// let die = DieDimensions::square_with_area(SquareCentimeters::new(2.976)?);
/// let result = model.evaluate(die, TransistorCount::from_millions(3.1)?)?;
/// let micro = result.cost_per_transistor.to_micro_dollars().value();
/// assert!((micro - 25.5).abs() < 0.1); // paper prints 25.50 µ$
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransistorCostModel<Y> {
    wafer: Wafer,
    wafer_cost: Dollars,
    yield_model: Y,
    dies_method: DiesPerWaferMethod,
}

impl<Y: YieldModel> TransistorCostModel<Y> {
    /// Creates the model with the default eq. (4) dies-per-wafer method.
    #[must_use]
    pub fn new(wafer: Wafer, wafer_cost: Dollars, yield_model: Y) -> Self {
        Self {
            wafer,
            wafer_cost,
            yield_model,
            dies_method: DiesPerWaferMethod::default(),
        }
    }

    /// Selects a different dies-per-wafer method (builder style).
    #[must_use]
    pub fn dies_per_wafer_method(mut self, method: DiesPerWaferMethod) -> Self {
        self.dies_method = method;
        self
    }

    /// The wafer this model manufactures on.
    #[must_use]
    pub fn wafer(&self) -> &Wafer {
        &self.wafer
    }

    /// The wafer cost `C_w`.
    #[must_use]
    pub fn wafer_cost(&self) -> Dollars {
        self.wafer_cost
    }

    /// The yield model in use.
    #[must_use]
    pub fn yield_model(&self) -> &Y {
        &self.yield_model
    }

    /// Evaluates eq. (1) for a die holding `transistors` transistors.
    ///
    /// # Errors
    ///
    /// * [`CostError::NoDiesFit`] when the die is too large for the wafer;
    /// * [`CostError::ZeroYield`] when the yield model returns zero.
    pub fn evaluate(
        &self,
        die: DieDimensions,
        transistors: TransistorCount,
    ) -> Result<CostBreakdown, CostError> {
        let n_ch = self.dies_method.dies_per_wafer(&self.wafer, die);
        if n_ch.is_zero() {
            return Err(CostError::NoDiesFit {
                die_area_cm2: die.area().value(),
                wafer_radius_cm: self.wafer.radius().value(),
            });
        }
        let y = self.yield_model.die_yield(die.area());
        if y.value() <= 0.0 {
            return Err(CostError::ZeroYield {
                die_area_cm2: die.area().value(),
            });
        }
        let good_dies = n_ch.as_f64() * y.value();
        let cost_per_good_die = self.wafer_cost / good_dies;
        let cost_per_transistor = cost_per_good_die / transistors.value();
        Ok(CostBreakdown {
            wafer_cost: self.wafer_cost,
            dies_per_wafer: n_ch,
            die_yield: y,
            good_dies_per_wafer: good_dies,
            cost_per_good_die,
            cost_per_transistor,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maly_units::SquareCentimeters;
    use maly_yield_model::{AreaScaledYield, PerfectYield};

    fn dollars(v: f64) -> Dollars {
        Dollars::new(v).unwrap()
    }

    fn square_die(area: f64) -> DieDimensions {
        DieDimensions::square_with_area(SquareCentimeters::new(area).unwrap())
    }

    fn y0(v: f64) -> AreaScaledYield {
        AreaScaledYield::per_square_centimeter(Probability::new(v).unwrap())
    }

    #[test]
    fn table3_row1_full_breakdown() {
        let model = TransistorCostModel::new(Wafer::six_inch(), dollars(980.0), y0(0.9));
        let result = model
            .evaluate(
                square_die(2.976),
                TransistorCount::from_millions(3.1).unwrap(),
            )
            .unwrap();
        assert_eq!(result.dies_per_wafer.value(), 46);
        assert!((result.die_yield.value() - 0.9f64.powf(2.976)).abs() < 1e-12);
        let micro = result.cost_per_transistor.to_micro_dollars().value();
        assert!((micro - 9.40).abs() < 0.05, "got {micro}");
    }

    #[test]
    fn perfect_yield_reduces_to_pure_geometry() {
        let model = TransistorCostModel::new(Wafer::six_inch(), dollars(1000.0), PerfectYield);
        let result = model
            .evaluate(
                square_die(1.0),
                TransistorCount::from_millions(1.0).unwrap(),
            )
            .unwrap();
        assert_eq!(result.die_yield, Probability::ONE);
        assert!((result.good_dies_per_wafer - result.dies_per_wafer.as_f64()).abs() < 1e-12);
        let per_die = 1000.0 / result.dies_per_wafer.as_f64();
        assert!((result.cost_per_good_die.value() - per_die).abs() < 1e-12);
    }

    #[test]
    fn oversized_die_errors() {
        let model = TransistorCostModel::new(Wafer::six_inch(), dollars(1000.0), PerfectYield);
        let err = model
            .evaluate(
                square_die(400.0),
                TransistorCount::from_millions(1.0).unwrap(),
            )
            .unwrap_err();
        assert!(matches!(err, CostError::NoDiesFit { .. }));
    }

    #[test]
    fn zero_yield_errors() {
        let model = TransistorCostModel::new(
            Wafer::six_inch(),
            dollars(1000.0),
            y0(1e-300), // astronomically bad reference yield
        );
        // Large die drives Y to exactly 0 in f64.
        let err = model
            .evaluate(
                square_die(4.0),
                TransistorCount::from_millions(1.0).unwrap(),
            )
            .unwrap_err();
        assert!(matches!(err, CostError::ZeroYield { .. }));
    }

    #[test]
    fn methods_give_similar_costs() {
        let die = square_die(1.0);
        let n = TransistorCount::from_millions(1.0).unwrap();
        let reference = TransistorCostModel::new(Wafer::six_inch(), dollars(1000.0), y0(0.8))
            .evaluate(die, n)
            .unwrap()
            .cost_per_transistor
            .value();
        for method in [
            DiesPerWaferMethod::Raster { offset_steps: 8 },
            DiesPerWaferMethod::GrossEstimate,
            DiesPerWaferMethod::EdgeCorrected,
        ] {
            let cost = TransistorCostModel::new(Wafer::six_inch(), dollars(1000.0), y0(0.8))
                .dies_per_wafer_method(method)
                .evaluate(die, n)
                .unwrap()
                .cost_per_transistor
                .value();
            assert!(
                (cost - reference).abs() / reference < 0.15,
                "{method:?}: {cost} vs {reference}"
            );
        }
    }

    #[test]
    fn cost_scales_inversely_with_transistor_count() {
        let model = TransistorCostModel::new(Wafer::six_inch(), dollars(1000.0), y0(0.8));
        let die = square_die(1.0);
        let c1 = model
            .evaluate(die, TransistorCount::from_millions(1.0).unwrap())
            .unwrap()
            .cost_per_transistor
            .value();
        let c2 = model
            .evaluate(die, TransistorCount::from_millions(2.0).unwrap())
            .unwrap()
            .cost_per_transistor
            .value();
        assert!((c1 / c2 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn better_yield_is_cheaper() {
        let die = square_die(2.0);
        let n = TransistorCount::from_millions(1.0).unwrap();
        let good = TransistorCostModel::new(Wafer::six_inch(), dollars(1000.0), y0(0.9))
            .evaluate(die, n)
            .unwrap();
        let bad = TransistorCostModel::new(Wafer::six_inch(), dollars(1000.0), y0(0.6))
            .evaluate(die, n)
            .unwrap();
        assert!(good.cost_per_transistor < bad.cost_per_transistor);
    }
}
