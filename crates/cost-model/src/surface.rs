//! Fig 8 — the transistor cost surface over `(λ × N_tr)`.
//!
//! Sec. IV.B evaluates eqs (1), (3), (4) and (7) on a grid of feature
//! sizes and transistor counts, with the calibration "extracted from a
//! real manufacturing operation": `X = 1.4`, `C₀ = \$500`,
//! `R_w = 7.5 cm`, `d_d = 152`, `D = 1.72`, `p = 4.07`. The constant-cost
//! contours show local optima: "for each die size there is a different
//! λ^opt which minimizes the cost per transistor" — and it is often *not*
//! the smallest available feature size.

use maly_par::Executor;
use maly_units::{
    DefectDensity, DesignDensity, Dollars, Microns, Probability, ReferenceDefectDensity,
    SquareCentimeters, TransistorCount,
};
use maly_wafer_geom::{DieDimensions, Wafer};
use maly_yield_model::ScaledPoissonYield;

use crate::{CostError, DiesPerWaferMethod, TransistorCostModel, WaferCostModel};

/// Estimated serial cost of one eq. (1) grid-cell evaluation through
/// the lane kernel with a warm eq. (4) memo — the executor cost hint
/// for surface sweeps (measured on the committed BENCH_sweeps.json
/// baseline: dense `surface_56x48` median ÷ 2688 grid points).
pub(crate) const CELL_EVAL_HINT_NS: f64 = 80.0;

/// Estimated per-cell cost of a pure in-memory column scan (no eq. (1)
/// evaluation, just comparisons over already-computed values).
const SCAN_HINT_NS: f64 = 3.0;

/// Eq. (1) grid cells dispatched through the lane-batched kernel. A
/// thread-count-invariant Work counter: every consumer (dense scans,
/// the adaptive engine, planned batch fusion) routes whole index sets
/// through [`Eq1Kernel::eq1_for_slice`], so this is the ground truth
/// for "how many eq. (1) evaluations actually ran" — the fusion
/// goldens diff it directly instead of trusting wall clock.
pub static EQ1_CELLS: maly_obs::Counter = maly_obs::Counter::work("eq1.cells");

/// Parameters of a cost-surface study.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SurfaceParameters {
    /// Wafer cost model (`C₀`, `X`).
    pub wafer_cost: WaferCostModel,
    /// The wafer.
    pub wafer: Wafer,
    /// Design density `d_d`.
    pub density: DesignDensity,
    /// Eq. (7) reference defect density `D`.
    pub defect_d: ReferenceDefectDensity,
    /// Eq. (7) defect size exponent `p`.
    pub defect_p: f64,
    /// Dies-per-wafer method.
    pub dies_method: DiesPerWaferMethod,
}

impl SurfaceParameters {
    /// The Fig 8 calibration.
    #[must_use]
    pub fn fig8() -> Self {
        // Compile-time validated constants: this constructor cannot panic.
        const FIG8_WAFER_COST: WaferCostModel =
            WaferCostModel::const_new(Dollars::const_new(500.0), 1.4);
        const FIG8_DENSITY: DesignDensity = DesignDensity::const_new(152.0);
        Self {
            wafer_cost: FIG8_WAFER_COST,
            wafer: Wafer::six_inch(),
            density: FIG8_DENSITY,
            defect_d: ScaledPoissonYield::FIG8_D,
            defect_p: ScaledPoissonYield::FIG8_P,
            dies_method: DiesPerWaferMethod::MalyEq4,
        }
    }

    /// Cost per transistor at one `(λ, N_tr)` point.
    ///
    /// # Errors
    ///
    /// Propagates evaluation failures (die too large, yield collapsed).
    pub fn cost_at(
        &self,
        lambda: Microns,
        transistors: TransistorCount,
    ) -> Result<Dollars, CostError> {
        let yield_model = ScaledPoissonYield::new(self.defect_d, self.defect_p, lambda)?;
        let model =
            TransistorCostModel::new(self.wafer, self.wafer_cost.wafer_cost(lambda), yield_model)
                .dies_per_wafer_method(self.dies_method);
        let area = crate::density::die_area(transistors, self.density, lambda);
        let die = maly_wafer_geom::DieDimensions::square_with_area(area);
        Ok(model.evaluate(die, transistors)?.cost_per_transistor)
    }

    /// Batched eq. (1) over a slice of `(λ, N_tr)` points: the cost per
    /// transistor, or `None` where the point is infeasible (die too
    /// large, yield collapsed) — exactly [`SurfaceParameters::cost_at`]
    /// per element, `Err → None`.
    ///
    /// For the default eq. (4) dies-per-wafer method this runs the
    /// batched kernels underneath — one memo-cache pass for the die
    /// counts ([`maly_wafer_geom::cache::dies_per_wafer_batch`]) and one
    /// eq. (7) yield pass
    /// ([`ScaledPoissonYield::yields_for_slice`]) — instead of
    /// re-deriving the full model object per point. Die counts and the
    /// feasibility mask are exact; cost values carry the lane `exp`/`ln`
    /// accuracy contract of `yields_for_slice` (relative error vs the
    /// scalar `cost_at` ≈ `(1 + |ln Y|) · 1e-14`, a few ulps over the
    /// whole Fig 8 window).
    #[must_use]
    pub fn costs_for_points(&self, points: &[(Microns, TransistorCount)]) -> Vec<Option<f64>> {
        if !matches!(self.dies_method, DiesPerWaferMethod::MalyEq4) {
            // Non-default packing methods have no batched kernel; fall
            // back to the scalar path per point.
            return points
                .iter()
                .map(|&(lambda, n)| self.cost_at(lambda, n).ok().map(|d| d.value()))
                .collect();
        }
        let dies: Vec<DieDimensions> = points
            .iter()
            .map(|&(lambda, n)| {
                DieDimensions::square_with_area(crate::density::die_area(n, self.density, lambda))
            })
            .collect();
        let counts = maly_wafer_geom::cache::dies_per_wafer_batch(&self.wafer, &dies);
        // Yields use the *realized* die area (side², after the √ of
        // square_with_area), exactly as `evaluate` does.
        let slice: Vec<(Microns, SquareCentimeters)> = points
            .iter()
            .zip(&dies)
            .map(|(&(lambda, _), die)| (lambda, die.area()))
            .collect();
        let Ok(yields) = ScaledPoissonYield::yields_for_slice(self.defect_d, self.defect_p, &slice)
        else {
            // Invalid (D, p) calibration: the scalar path errors on
            // every point, so every point is infeasible here too.
            return vec![None; points.len()];
        };
        points
            .iter()
            .enumerate()
            .map(|(k, &(lambda, n))| {
                let n_ch = counts[k];
                if n_ch.is_zero() {
                    return None;
                }
                let y = yields[k];
                if y.value() <= 0.0 {
                    return None;
                }
                // Same operation order as TransistorCostModel::evaluate.
                let good_dies = n_ch.as_f64() * y.value();
                let cost_per_good_die = self.wafer_cost.wafer_cost(lambda) / good_dies;
                Some((cost_per_good_die / n.value()).value())
            })
            .collect()
    }
}

/// One evaluated grid point of the batched eq. (1) kernel: the cost per
/// transistor (`None` when infeasible) and the eq. (4) die count the
/// adaptive zone classifier keys on (`u32::MAX` when the dies-per-wafer
/// method has no batched kernel).
pub(crate) type PointEval = (Option<f64>, u32);

/// Per-λ-row hoisted state of [`Eq1Kernel`]: the wafer cost `C_w(λ)`
/// and the eq. (7) exponent scale `−D/λ^p` — both depend only on λ, so
/// computing them once per row removes two `powf` calls from every
/// point evaluation.
#[derive(Clone, Copy)]
struct Eq1Row {
    lambda: Microns,
    wafer_cost: Dollars,
    /// `−D/λ^p`: the eq. (7) yield is `exp(neg_d_eff · A)` at this row.
    neg_d_eff: f64,
}

/// The shared lane-batched eq. (1) kernel over a fixed `(λ × N_tr)`
/// grid: the dense scan and the adaptive engine's mesh and exact-zone
/// paths all dispatch whole node sets through
/// [`Eq1Kernel::eq1_for_slice`], so every consumer computes
/// bit-identical values by construction.
///
/// Construction hoists everything that depends on one axis alone: the
/// wafer cost `C_w(λ)` and the effective defect density `D/λ^p` per
/// λ-row (two `powf` calls each, paid once per row instead of once per
/// point), and the clamped [`TransistorCount`] per column. The
/// per-point work is then one eq. (4) memo lookup and one lane-`exp`
/// element — no scalar transcendentals on the hot path.
pub(crate) struct Eq1Kernel {
    wafer: Wafer,
    density: DesignDensity,
    rows: Vec<Eq1Row>,
    cols: Vec<TransistorCount>,
}

impl Eq1Kernel {
    /// Builds the kernel for a parameter set over the given axes.
    /// Returns `None` when the dies-per-wafer method has no batched
    /// eq. (4) kernel or the eq. (7) calibration is invalid (where the
    /// scalar path errors on every point); callers then fall back to
    /// the scalar path.
    pub(crate) fn new(
        params: &SurfaceParameters,
        lambda_axis: &[f64],
        n_tr_axis: &[f64],
    ) -> Option<Self> {
        // Same calibration validation as yields_for_slice: a bad (D, p)
        // makes every point infeasible, exactly like the scalar path.
        const PROBE_LAMBDA: Microns = Microns::const_new(1.0);
        let calibrated = matches!(params.dies_method, DiesPerWaferMethod::MalyEq4)
            && ScaledPoissonYield::new(params.defect_d, params.defect_p, PROBE_LAMBDA).is_ok();
        if !calibrated {
            return None;
        }
        let rows = lambda_axis
            .iter()
            .map(|&l| {
                let lambda = Microns::clamped(l);
                Eq1Row {
                    lambda,
                    wafer_cost: params.wafer_cost.wafer_cost(lambda),
                    // The eq. (7) effective density D/λ^p, negated so
                    // the per-point exponent is a single multiply.
                    neg_d_eff: -DefectDensity::clamped(
                        params.defect_d.value() / lambda.value().powf(params.defect_p),
                    )
                    .value(),
                }
            })
            .collect();
        let cols = n_tr_axis
            .iter()
            .map(|&n| TransistorCount::clamped(n))
            .collect();
        Some(Self {
            wafer: params.wafer,
            density: params.density,
            rows,
            cols,
        })
    }

    /// Batched eq. (1) over grid indices `(i, j)` into the row/column
    /// axes: die counts go through the shared eq. (4) memo in one
    /// batch, eq. (7) yields through one lane-`exp` pass over the
    /// hoisted `−D/λ^p · A` exponents, and the final combine runs in
    /// the same operation order as [`TransistorCostModel::evaluate`].
    ///
    /// Accuracy: die counts and the feasibility mask are integer-exact;
    /// yields carry the lane `exp`/`ln` contract of
    /// [`ScaledPoissonYield::yields_for_slice`] (relative error vs the
    /// scalar path ≈ `(1 + |ln Y|) · 1e-14`). Every element is computed
    /// independently, so any chunking of `indices` produces
    /// bit-identical values — thread counts and mesh orders cannot
    /// change results.
    pub(crate) fn eq1_for_slice(&self, indices: &[(usize, usize)]) -> Vec<PointEval> {
        EQ1_CELLS.add(indices.len() as u64);
        let dies: Vec<DieDimensions> = indices
            .iter()
            .map(|&(i, j)| {
                DieDimensions::square_with_area(crate::density::die_area(
                    self.cols[j],
                    self.density,
                    self.rows[i].lambda,
                ))
            })
            .collect();
        let counts = maly_wafer_geom::cache::dies_per_wafer_batch(&self.wafer, &dies);
        // Eq. (7) exponents ln Y = −D/λ^p · A over the *realized* die
        // areas (side², after the √ of square_with_area, exactly as
        // `evaluate` does), then one lane exp pass for the whole set.
        let mut yields: Vec<f64> = indices
            .iter()
            .zip(&dies)
            .map(|(&(i, _), die)| self.rows[i].neg_d_eff * die.area().value())
            .collect();
        maly_lanes::exp_slice(&mut yields);
        let mut out = Vec::with_capacity(indices.len());
        for (k, &(i, j)) in indices.iter().enumerate() {
            let n_ch = counts[k];
            if n_ch.is_zero() {
                out.push((None, 0));
                continue;
            }
            let y = Probability::clamped(yields[k]).value();
            if y <= 0.0 {
                out.push((None, n_ch.value()));
                continue;
            }
            // Same operation order as TransistorCostModel::evaluate.
            let good_dies = n_ch.as_f64() * y;
            let cost_per_good_die = self.rows[i].wafer_cost / good_dies;
            out.push((
                Some((cost_per_good_die / self.cols[j].value()).value()),
                n_ch.value(),
            ));
        }
        out
    }

    /// [`Eq1Kernel::eq1_for_slice`] tiled across a tuned executor.
    /// Chunks map back in index order and elements are independent, so
    /// the output is bit-identical at every thread count.
    pub(crate) fn eval_indices_with(
        &self,
        exec: &Executor,
        indices: &[(usize, usize)],
    ) -> Vec<PointEval> {
        let exec = exec.tuned_for(indices.len(), CELL_EVAL_HINT_NS);
        if exec.threads() <= 1 {
            return self.eq1_for_slice(indices);
        }
        let chunk = indices.len().div_ceil(exec.threads());
        let chunks: Vec<&[(usize, usize)]> = indices.chunks(chunk).collect();
        exec.map(&chunks, |c| self.eq1_for_slice(c))
            .into_iter()
            .flatten()
            .collect()
    }
}

/// The lane-batched eq. (1) kernel over caller-supplied axis value
/// sets — the entry point for *externally planned* node sets.
/// `maly-model`'s batch planner unions the λ and `N_tr` axis values of
/// every cold tile in a query batch, evaluates each unique
/// `(λ, N_tr)` cell exactly once through this kernel, and scatters the
/// results back per tile.
///
/// Per-cell values depend only on the cell's own `(λ, N_tr)` pair —
/// never on which axes, tiles, or chunks surround it — so any tile
/// whose axis values appear bit-equal in these sets receives values
/// bit-identical to a direct [`CostSurface::compute_with`] over that
/// tile alone. That independence is what makes cross-request fusion
/// safe under the workspace's bit-identical-output contract.
pub struct PlannedEq1 {
    kernel: Eq1Kernel,
}

impl PlannedEq1 {
    /// Builds the kernel over explicit axis values (λ in µm, both axes
    /// positive). Returns `None` when the dies-per-wafer method has no
    /// batched eq. (4) kernel or the eq. (7) calibration is invalid;
    /// callers then fall back to [`CostSurface::compute_with`] per
    /// tile, exactly like the dense scan's scalar fallback.
    #[must_use]
    pub fn new(
        params: &SurfaceParameters,
        lambda_values: &[f64],
        n_tr_values: &[f64],
    ) -> Option<Self> {
        Eq1Kernel::new(params, lambda_values, n_tr_values).map(|kernel| Self { kernel })
    }

    /// Evaluates the given `(λ index, N_tr index)` cells across the
    /// executor; `None` marks infeasible cells (die too large, yield
    /// collapsed). Elements are independent, so the output is
    /// bit-identical at every thread count and under any chunking or
    /// ordering of `cells`.
    #[must_use]
    pub fn eval_cells_with(&self, exec: &Executor, cells: &[(usize, usize)]) -> Vec<Option<f64>> {
        self.kernel
            .eval_indices_with(exec, cells)
            .into_iter()
            .map(|(cost, _)| cost)
            .collect()
    }
}

/// The exact grid axes [`CostSurface::compute`] derives for these
/// ranges — λ linear, `N_tr` logarithmic — or `None` when a range is
/// degenerate (not ascending-positive, or fewer than 2 steps). The
/// planner keys its cell-level fusion on bit-equality of these values,
/// so they must come from the same arithmetic as the compute path; the
/// panicking contract stays with `compute`.
#[must_use]
pub fn grid_axes(
    lambda_range: (f64, f64, usize),
    n_tr_range: (f64, f64, usize),
) -> Option<(Vec<f64>, Vec<f64>)> {
    Some((
        lambda_axis_values(lambda_range)?,
        n_tr_axis_values(n_tr_range)?,
    ))
}

fn ascending_positive(lo: f64, hi: f64) -> bool {
    lo.is_finite() && hi.is_finite() && 0.0 < lo && lo < hi
}

/// The λ half of [`grid_axes`] alone — linear spacing, same validation.
/// Split out so a batch planner whose tiles repeat one axis range (the
/// usual sliding-window shape) can compute each distinct axis once; the
/// `N_tr` half's log spacing is the expensive one (one `exp` per
/// point).
#[must_use]
pub fn lambda_axis_values((min, max, steps): (f64, f64, usize)) -> Option<Vec<f64>> {
    if steps < 2 || !ascending_positive(min, max) {
        return None;
    }
    Some(linear_axis(min, max, steps))
}

/// The `N_tr` half of [`grid_axes`] alone — logarithmic spacing, same
/// validation.
#[must_use]
pub fn n_tr_axis_values((min, max, steps): (f64, f64, usize)) -> Option<Vec<f64>> {
    if steps < 2 || !ascending_positive(min, max) {
        return None;
    }
    Some(log_axis(min, max, steps))
}

/// Assembles a [`CostSurface`] from externally computed parts (the
/// planner's scatter path), or `None` when the value grid's shape does
/// not match the axes or an axis is shorter than 2 entries.
#[must_use]
pub fn surface_from_grid(
    lambda_axis: Vec<f64>,
    n_tr_axis: Vec<f64>,
    values: Vec<Vec<Option<f64>>>,
) -> Option<CostSurface> {
    if lambda_axis.len() < 2
        || n_tr_axis.len() < 2
        || values.len() != lambda_axis.len()
        || values.iter().any(|row| row.len() != n_tr_axis.len())
    {
        return None;
    }
    Some(CostSurface::from_parts(lambda_axis, n_tr_axis, values))
}

/// A computed cost surface: `values[i][j]` is `C_tr` at
/// `lambda_axis[i]`, `n_tr_axis[j]`, or `None` where evaluation failed
/// (die larger than the wafer, yield underflow).
#[derive(Debug, Clone, PartialEq)]
pub struct CostSurface {
    lambda_axis: Vec<f64>,
    n_tr_axis: Vec<f64>,
    values: Vec<Vec<Option<f64>>>,
}

impl CostSurface {
    /// Computes the surface on a `lambda_steps × n_tr_steps` grid.
    ///
    /// λ is swept linearly over `[lambda_min, lambda_max]`; `N_tr` is
    /// swept *logarithmically* over `[n_tr_min, n_tr_max]` (the paper's
    /// axis spans orders of magnitude).
    ///
    /// # Panics
    ///
    /// Panics if either range is not ascending-positive or a step count
    /// is below 2.
    #[must_use]
    pub fn compute(
        params: &SurfaceParameters,
        lambda_range: (f64, f64, usize),
        n_tr_range: (f64, f64, usize),
    ) -> Self {
        Self::compute_with(&Executor::from_env(), params, lambda_range, n_tr_range)
    }

    /// [`CostSurface::compute`] on an explicit executor. Grid cells are
    /// independent, so they are tiled across the executor's threads;
    /// the result is bit-identical at every thread count.
    ///
    /// # Panics
    ///
    /// Panics if either range is not ascending-positive or a step count
    /// is below 2.
    #[must_use]
    pub fn compute_with(
        exec: &Executor,
        params: &SurfaceParameters,
        (lambda_min, lambda_max, lambda_steps): (f64, f64, usize),
        (n_tr_min, n_tr_max, n_tr_steps): (f64, f64, usize),
    ) -> Self {
        assert!(lambda_steps >= 2 && n_tr_steps >= 2, "grids need ≥ 2 steps");
        assert!(
            0.0 < lambda_min && lambda_min < lambda_max,
            "bad λ range {lambda_min}..{lambda_max}"
        );
        assert!(
            0.0 < n_tr_min && n_tr_min < n_tr_max,
            "bad N_tr range {n_tr_min}..{n_tr_max}"
        );
        let lambda_axis = linear_axis(lambda_min, lambda_max, lambda_steps);
        let n_tr_axis = log_axis(n_tr_min, n_tr_max, n_tr_steps);

        let values = if let Some(kernel) = Eq1Kernel::new(params, &lambda_axis, &n_tr_axis) {
            // The lane-batched path: every grid node through one kernel
            // dispatch, shared with the adaptive engine so dense and
            // adaptive values agree bit-for-bit.
            let indices: Vec<(usize, usize)> = (0..lambda_steps)
                .flat_map(|i| (0..n_tr_steps).map(move |j| (i, j)))
                .collect();
            let flat = kernel.eval_indices_with(exec, &indices);
            flat.chunks(n_tr_steps)
                .map(|row| row.iter().map(|&(c, _)| c).collect())
                .collect()
        } else {
            // Overhead-aware scheduling: small grids run serial, large
            // ones use at most as many threads as the workload
            // justifies.
            let exec = exec.tuned_for(lambda_steps * n_tr_steps, CELL_EVAL_HINT_NS);
            exec.grid(lambda_steps, n_tr_steps, |i, j| {
                // Grid points interpolate validated positive bounds.
                let lambda = Microns::clamped(lambda_axis[i]);
                let n_tr = TransistorCount::clamped(n_tr_axis[j]);
                params.cost_at(lambda, n_tr).ok().map(|d| d.value())
            })
        };

        Self {
            lambda_axis,
            n_tr_axis,
            values,
        }
    }

    /// Assembles a surface from already-computed parts (the adaptive
    /// engine's exit path). The axes and the value grid must agree in
    /// shape.
    pub(crate) fn from_parts(
        lambda_axis: Vec<f64>,
        n_tr_axis: Vec<f64>,
        values: Vec<Vec<Option<f64>>>,
    ) -> Self {
        debug_assert_eq!(values.len(), lambda_axis.len());
        debug_assert!(values.iter().all(|row| row.len() == n_tr_axis.len()));
        Self {
            lambda_axis,
            n_tr_axis,
            values,
        }
    }

    /// The λ grid (µm).
    #[must_use]
    pub fn lambda_axis(&self) -> &[f64] {
        &self.lambda_axis
    }

    /// The N_tr grid.
    #[must_use]
    pub fn n_tr_axis(&self) -> &[f64] {
        &self.n_tr_axis
    }

    /// The cost values (dollars per transistor), `values[lambda][n_tr]`.
    #[must_use]
    pub fn values(&self) -> &[Vec<Option<f64>>] {
        &self.values
    }

    /// The cost-minimizing λ for each `N_tr` column: the paper's
    /// `λ^opt(N_tr)` locus. Entries are `None` when no λ in the grid
    /// could build the product at all.
    #[must_use]
    pub fn optimal_lambda_per_n_tr(&self) -> Vec<Option<(f64, f64)>> {
        self.optimal_lambda_per_n_tr_with(&Executor::from_env())
    }

    /// [`CostSurface::optimal_lambda_per_n_tr`] on an explicit executor:
    /// columns scan independently, each with the serial strict-`<`
    /// tie-break, so the locus is bit-identical at every thread count.
    #[must_use]
    pub fn optimal_lambda_per_n_tr_with(&self, exec: &Executor) -> Vec<Option<(f64, f64)>> {
        // A column scan is pure comparisons over computed values; the
        // hint keeps typical surfaces on the serial path (threads never
        // pay off below hundreds of thousands of cells).
        let exec = exec.tuned_for(
            self.n_tr_axis.len(),
            self.lambda_axis.len() as f64 * SCAN_HINT_NS,
        );
        exec.map_indexed(self.n_tr_axis.len(), |j| {
            let mut best: Option<(f64, f64)> = None;
            for (i, &l) in self.lambda_axis.iter().enumerate() {
                if let Some(c) = self.values[i][j] {
                    if best.is_none_or(|(_, bc)| c < bc) {
                        best = Some((l, c));
                    }
                }
            }
            best
        })
    }

    /// Global minimum `(λ, N_tr, cost)` over the grid, if any cell
    /// evaluated.
    #[must_use]
    pub fn global_minimum(&self) -> Option<(f64, f64, f64)> {
        let mut best: Option<(f64, f64, f64)> = None;
        for (i, row) in self.values.iter().enumerate() {
            for (j, cell) in row.iter().enumerate() {
                if let Some(c) = *cell {
                    if best.is_none_or(|(_, _, bc)| c < bc) {
                        best = Some((self.lambda_axis[i], self.n_tr_axis[j], c));
                    }
                }
            }
        }
        best
    }
}

/// The linearly spaced λ axis shared by the dense and adaptive engines.
pub(crate) fn linear_axis(min: f64, max: f64, steps: usize) -> Vec<f64> {
    (0..steps)
        .map(|i| min + (max - min) * i as f64 / (steps - 1) as f64)
        .collect()
}

/// The log-spaced `N_tr` axis shared by the dense and adaptive engines.
pub(crate) fn log_axis(min: f64, max: f64, steps: usize) -> Vec<f64> {
    let log_lo = min.ln();
    let log_hi = max.ln();
    (0..steps)
        .map(|j| (log_lo + (log_hi - log_lo) * j as f64 / (steps - 1) as f64).exp())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig8_surface() -> CostSurface {
        CostSurface::compute(
            &SurfaceParameters::fig8(),
            (0.3, 1.5, 25),
            (1.0e5, 2.0e7, 20),
        )
    }

    #[test]
    fn surface_axes_match_request() {
        let s = fig8_surface();
        assert_eq!(s.lambda_axis().len(), 25);
        assert_eq!(s.n_tr_axis().len(), 20);
        assert!((s.lambda_axis()[0] - 0.3).abs() < 1e-12);
        assert!((s.lambda_axis()[24] - 1.5).abs() < 1e-12);
        // Log-spaced N_tr: constant ratio between neighbors.
        let r1 = s.n_tr_axis()[1] / s.n_tr_axis()[0];
        let r2 = s.n_tr_axis()[11] / s.n_tr_axis()[10];
        assert!((r1 - r2).abs() < 1e-9);
    }

    #[test]
    fn interior_optimum_exists_for_large_designs() {
        // Fig 8's message: for a multi-million-transistor die, neither the
        // largest nor the smallest λ in the window is optimal.
        let s = fig8_surface();
        let optima = s.optimal_lambda_per_n_tr();
        let j_large = s.n_tr_axis().len() - 1; // 2e7 transistors
        let (l_opt, _) = optima[j_large].expect("large design should be buildable somewhere");
        assert!(
            l_opt > s.lambda_axis()[0] && l_opt < s.lambda_axis()[24],
            "λ^opt {l_opt} should be interior"
        );
    }

    #[test]
    fn optimal_lambda_shrinks_with_design_size() {
        // Larger designs push λ^opt downward (they need the density), but
        // never to the window edge. Compare a small and a large design.
        let s = fig8_surface();
        let optima = s.optimal_lambda_per_n_tr();
        let small = optima[2].unwrap().0;
        let large = optima[s.n_tr_axis().len() - 1].unwrap().0;
        assert!(
            large <= small,
            "λ^opt should not grow with N_tr: {small} → {large}"
        );
    }

    #[test]
    fn costs_are_positive_where_defined() {
        let s = fig8_surface();
        let mut defined = 0;
        for row in s.values() {
            for cell in row.iter().flatten() {
                assert!(*cell > 0.0);
                defined += 1;
            }
        }
        assert!(defined > 100, "most of the grid should evaluate");
    }

    #[test]
    fn global_minimum_is_consistent_with_columns() {
        let s = fig8_surface();
        let (_, _, c_min) = s.global_minimum().unwrap();
        for col in s.optimal_lambda_per_n_tr().into_iter().flatten() {
            assert!(col.1 >= c_min - 1e-15);
        }
    }

    #[test]
    fn cost_at_fails_gracefully_for_monster_dies() {
        let p = SurfaceParameters::fig8();
        let err = p.cost_at(
            Microns::new(1.5).unwrap(),
            TransistorCount::new(5.0e9).unwrap(),
        );
        assert!(err.is_err());
    }

    #[test]
    #[should_panic(expected = "grids need")]
    fn compute_rejects_degenerate_grid() {
        let _ = CostSurface::compute(&SurfaceParameters::fig8(), (0.3, 1.5, 1), (1e5, 1e6, 5));
    }
}
