//! Multi-project wafer (MPW/shuttle) economics.
//!
//! Phase 2 of the paper's §V outlook: high-volume winners "eventually
//! renting superfluous fabline capacity", while fabless niche designers
//! need silicon in prototype quantities. The shuttle run is the
//! institution that grew out of exactly this pressure: several projects
//! share one mask set and a few wafers, splitting the dominant NRE.
//!
//! The model here prices a shuttle against a dedicated run and finds the
//! volume crossover — the quantitative form of "what is cost effective
//! for memories is not necessarily beneficial for niche ICs".

use maly_units::{Dollars, TransistorCount};
use maly_wafer_geom::{maly, DieDimensions, Wafer};
use maly_yield_model::YieldModel;

use crate::CostError;

/// One project on the shuttle.
#[derive(Debug, Clone, PartialEq)]
pub struct MpwProject {
    /// Project label.
    pub name: String,
    /// The project's die.
    pub die: DieDimensions,
    /// Good dies the project needs from the run.
    pub quantity: u32,
    /// Design size (unused by pricing, carried for reports).
    pub transistors: Option<TransistorCount>,
}

impl MpwProject {
    /// Creates a project.
    #[must_use]
    pub fn new(name: impl Into<String>, die: DieDimensions, quantity: u32) -> Self {
        Self {
            name: name.into(),
            die,
            quantity,
            transistors: None,
        }
    }
}

/// Shuttle-run parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MpwRun {
    /// The wafer manufactured on.
    pub wafer: Wafer,
    /// Cost per processed wafer.
    pub wafer_cost: Dollars,
    /// Cost of one full mask set (the NRE being shared).
    pub mask_set_cost: Dollars,
}

/// Pricing result for one project.
#[derive(Debug, Clone, PartialEq)]
pub struct MpwProjectCost {
    /// Project label.
    pub name: String,
    /// Good dies per wafer for this project (one die per reticle field).
    pub good_dies_per_wafer: f64,
    /// This project's share of the shuttle bill.
    pub shuttle_cost: Dollars,
    /// What a dedicated run (own mask set, own wafers) would have cost.
    pub dedicated_cost: Dollars,
}

impl MpwProjectCost {
    /// True when the shuttle beats the dedicated run for this project.
    #[must_use]
    pub fn shuttle_wins(&self) -> bool {
        self.shuttle_cost < self.dedicated_cost
    }
}

/// Prices a shuttle run.
///
/// Model: the reticle field tiles all project dies side by side, so each
/// exposure yields one candidate die per project; fields per wafer follow
/// eq. (4) on the combined field outline. Each project's good dies per
/// wafer are fields × its own die yield. The run buys enough wafers for
/// the *worst-off* project; mask and wafer bills split in proportion to
/// field area consumed.
///
/// The dedicated comparison gives each project its own mask set and its
/// own wafers (fields of just its die).
///
/// # Errors
///
/// * [`CostError::MissingField`] when `projects` is empty;
/// * [`CostError::NoDiesFit`] when the combined field does not fit the
///   wafer;
/// * [`CostError::ZeroYield`] when a project's die yield vanishes.
pub fn price_shuttle<Y: YieldModel>(
    run: &MpwRun,
    projects: &[MpwProject],
    yield_model: &Y,
) -> Result<Vec<MpwProjectCost>, CostError> {
    if projects.is_empty() {
        return Err(CostError::MissingField { field: "projects" });
    }

    // Combined reticle field: dies side by side (width summed, height of
    // the tallest).
    let field_width: f64 = projects.iter().map(|p| p.die.width().value()).sum();
    let field_height = projects
        .iter()
        .map(|p| p.die.height().value())
        .fold(0.0f64, f64::max);
    let field = DieDimensions::new(
        maly_units::Centimeters::new(field_width)?,
        maly_units::Centimeters::new(field_height)?,
    );
    let fields_per_wafer = maly::dies_per_wafer_best_orientation(&run.wafer, field);
    if fields_per_wafer.is_zero() {
        return Err(CostError::NoDiesFit {
            die_area_cm2: field.area().value(),
            wafer_radius_cm: run.wafer.radius().value(),
        });
    }

    // Wafers the shuttle needs: every project must reach its quantity.
    let mut wafers_needed = 0u32;
    let mut good_per_wafer = Vec::with_capacity(projects.len());
    for p in projects {
        let y = yield_model.die_yield(p.die.area());
        if y.value() <= 0.0 {
            return Err(CostError::ZeroYield {
                die_area_cm2: p.die.area().value(),
            });
        }
        let good = fields_per_wafer.as_f64() * y.value();
        good_per_wafer.push(good);
        let needed = (f64::from(p.quantity) / good).ceil() as u32;
        wafers_needed = wafers_needed.max(needed.max(1));
    }
    let shuttle_bill = run.mask_set_cost + run.wafer_cost * f64::from(wafers_needed);
    let field_area: f64 = projects.iter().map(|p| p.die.area().value()).sum();

    projects
        .iter()
        .zip(&good_per_wafer)
        .map(|(p, &good)| {
            let share = p.die.area().value() / field_area;
            // Dedicated run: own mask set; fields of this die alone.
            let own_fields = maly::dies_per_wafer_best_orientation(&run.wafer, p.die);
            let own_good = own_fields.as_f64() * yield_model.die_yield(p.die.area()).value();
            let own_wafers = (f64::from(p.quantity) / own_good).ceil().max(1.0);
            let dedicated = run.mask_set_cost + run.wafer_cost * own_wafers;
            Ok(MpwProjectCost {
                name: p.name.clone(),
                good_dies_per_wafer: good,
                shuttle_cost: shuttle_bill * share,
                dedicated_cost: dedicated,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use maly_units::{Centimeters, DefectDensity, Probability};
    use maly_yield_model::{AreaScaledYield, PoissonYield};

    fn run() -> MpwRun {
        MpwRun {
            wafer: Wafer::six_inch(),
            wafer_cost: Dollars::new(1300.0).unwrap(),
            mask_set_cost: Dollars::new(80_000.0).unwrap(),
        }
    }

    fn die(edge_cm: f64) -> DieDimensions {
        DieDimensions::square(Centimeters::new(edge_cm).unwrap())
    }

    fn yield_model() -> AreaScaledYield {
        AreaScaledYield::per_square_centimeter(Probability::new(0.7).unwrap())
    }

    fn prototypes(quantity: u32) -> Vec<MpwProject> {
        vec![
            MpwProject::new("asic-a", die(0.7), quantity),
            MpwProject::new("asic-b", die(0.5), quantity),
            MpwProject::new("asic-c", die(0.9), quantity),
        ]
    }

    #[test]
    fn shuttle_wins_for_prototype_quantities() {
        let costs = price_shuttle(&run(), &prototypes(50), &yield_model()).unwrap();
        for c in &costs {
            assert!(
                c.shuttle_wins(),
                "{}: shuttle {} vs dedicated {}",
                c.name,
                c.shuttle_cost.value(),
                c.dedicated_cost.value()
            );
            // The win is dominated by the shared mask set: at least 1.5×
            // even for the largest (biggest-share) project.
            assert!(c.dedicated_cost.value() > 1.5 * c.shuttle_cost.value());
        }
    }

    #[test]
    fn dedicated_wins_at_volume() {
        // At 200k dies the shuttle's area inefficiency (every wafer
        // carries all three projects) outweighs the shared mask.
        let costs = price_shuttle(&run(), &prototypes(200_000), &yield_model()).unwrap();
        assert!(costs.iter().any(|c| !c.shuttle_wins()));
    }

    #[test]
    fn crossover_quantity_exists() {
        let mut last_all_shuttle = true;
        let mut crossed = false;
        for q in [50u32, 500, 5_000, 50_000, 500_000] {
            let costs = price_shuttle(&run(), &prototypes(q), &yield_model()).unwrap();
            let all_shuttle = costs.iter().all(MpwProjectCost::shuttle_wins);
            if last_all_shuttle && !all_shuttle {
                crossed = true;
            }
            last_all_shuttle = all_shuttle;
        }
        assert!(crossed, "expected a shuttle → dedicated crossover");
    }

    #[test]
    fn bill_split_is_area_proportional() {
        let costs = price_shuttle(&run(), &prototypes(50), &yield_model()).unwrap();
        // asic-c (0.81 cm²) pays more than asic-b (0.25 cm²).
        let b = costs.iter().find(|c| c.name == "asic-b").unwrap();
        let c = costs.iter().find(|c| c.name == "asic-c").unwrap();
        assert!(c.shuttle_cost.value() > b.shuttle_cost.value());
        // Shares sum to the full bill.
        let total: f64 = costs.iter().map(|x| x.shuttle_cost.value()).sum();
        assert!(total > 80_000.0, "total {total} must cover the mask set");
    }

    #[test]
    fn degenerate_inputs_rejected() {
        let ym = yield_model();
        assert!(matches!(
            price_shuttle(&run(), &[], &ym),
            Err(CostError::MissingField { .. })
        ));
        let monster = vec![MpwProject::new("huge", die(12.0), 10)];
        assert!(matches!(
            price_shuttle(&run(), &monster, &ym),
            Err(CostError::NoDiesFit { .. })
        ));
    }

    #[test]
    fn works_with_any_yield_model() {
        let poisson = PoissonYield::new(DefectDensity::new(0.8).unwrap());
        let costs = price_shuttle(&run(), &prototypes(100), &poisson).unwrap();
        assert_eq!(costs.len(), 3);
        assert!(costs.iter().all(|c| c.good_dies_per_wafer > 0.0));
    }
}
