//! Adaptive coarse-to-fine evaluation of the Fig 8 cost surface.
//!
//! The dense engine in [`crate::surface`] evaluates eq. (1) at every grid
//! point — `56 × 48 = 2688` evaluations for the default Fig 8 window —
//! even though most of that window needs far less work. This module
//! exploits the factored structure of eq. (1),
//!
//! ```text
//!   ln C_tr = ln C_w(λ) − ln N_ch − ln N_tr − ln Y(λ, N_tr)
//! ```
//!
//! in which every term is smooth in `(λ, log N_tr)` *except*
//! `ln N_ch` — an integer staircase whose relative jumps are `≈ 1/N_ch`.
//! That one observation splits the grid into two regimes:
//!
//! * **Exact zone** (few dies per wafer, `N_ch` small or zero): the
//!   staircase jumps exceed any useful tolerance, so interpolation is
//!   hopeless — but dies are big, so the whole eq. (1) stack per point is
//!   cheap (the eq. (4) row-sum kernel touches a handful of rows). Cells
//!   whose corner die counts stay at or below [`EXACT_ZONE_MAX_DIES`] and
//!   that touch the staircase regime (a corner below
//!   [`SMOOTH_MIN_DIES`], or an infeasible corner) are evaluated exactly
//!   at *every* grid point through the batched row-hoisted kernel — no
//!   probing, no refinement, and every unit cell is contour-exact.
//! * **Smooth zone** (`N_ch ≥` [`SMOOTH_MIN_DIES`] at every corner):
//!   staircase jumps are below `1/64 ≈ 1.6 %`, so `ln C_tr` is
//!   interpolable. A quadtree starts from coarse cells, evaluates
//!   corners, probes each candidate cell (center plus edge midpoints for
//!   wide cells) and accepts the cell when every probe matches the
//!   bilinear-in-`ln` prediction within a safety-scaled tolerance;
//!   otherwise it splits and recurses. Accepted cells are filled with
//!   `exp(bilerp(ln C))`, one `exp` per cell row and a running multiply
//!   along the row (the bilerp is linear along a row in index space, so
//!   the fills form a geometric sequence).
//!
//! Cells straddling both regimes refine until they fall into one.
//! Interpolation happens in grid-*index* space: λ is linear in index and
//! `N_tr` is log-spaced, so index-space interpolation is interpolation in
//! `(λ, log N_tr)` — the natural coordinates of the paper's axes.
//!
//! At `tol = 0` the engine degenerates to the dense scan: every grid
//! point is evaluated through the shared lane-batched eq. (1) kernel
//! ([`crate::surface`]'s `Eq1Kernel`) — the same kernel the dense scan
//! dispatches through — so the result is **bit-identical** to
//! [`CostSurface::compute`] (pinned by golden tests). At the default tolerance the quadtree mesh needs
//! ~5–10× fewer full eq. (1) evaluations than the dense scan on the
//! Fig 8 window (see [`AdaptiveStats::savings`]) while every value stays
//! within `tol` relative error of the dense surface and the feasibility
//! mask matches exactly.

use maly_par::Executor;
use maly_units::{Microns, TransistorCount};

use crate::surface::{
    linear_axis, log_axis, CostSurface, Eq1Kernel, PointEval, SurfaceParameters, CELL_EVAL_HINT_NS,
};

/// Process totals of the per-computation [`AdaptiveStats`] fields,
/// mirrored onto `maly-obs` work counters at the end of every
/// computation. Work kind: the stats are thread-count-invariant (the
/// golden tests assert it), so these totals golden-compare across
/// thread counts and land in bench snapshots and exported traces.
static ADAPTIVE_MESH_EVALS: maly_obs::Counter = maly_obs::Counter::work("adaptive.mesh_evals");
/// Totals of [`AdaptiveStats::analytic_exact`].
static ADAPTIVE_EXACT_ZONE_EVALS: maly_obs::Counter =
    maly_obs::Counter::work("adaptive.exact_zone_evals");
/// Totals of [`AdaptiveStats::interpolated`].
static ADAPTIVE_INTERPOLATED: maly_obs::Counter = maly_obs::Counter::work("adaptive.interpolated");
/// Totals of [`AdaptiveStats::infeasible_deduced`].
static ADAPTIVE_INFEASIBLE: maly_obs::Counter =
    maly_obs::Counter::work("adaptive.infeasible_deduced");
/// Totals of [`AdaptiveStats::grid_points`].
static ADAPTIVE_GRID_POINTS: maly_obs::Counter = maly_obs::Counter::work("adaptive.grid_points");

/// Default relative tolerance for interpolated values.
///
/// 10 % is far finer than the reading precision of Fig 8 (a log-scale
/// contour plot spanning two decades); empirically the engine stays
/// within ~7 % worst-case of the dense scan at this setting while doing
/// ~5× less mesh work.
pub const DEFAULT_TOL: f64 = 0.1;

/// Safety factor applied to the tolerance when judging probes: a cell is
/// accepted only when every probe error is below `tol × 0.7`, leaving
/// headroom for interior points farther from the probes and for the
/// sub-tolerance staircase jumps of `N_ch` inside the smooth zone
/// (worst observed total: ~0.09 relative at `tol = 0.1` across the
/// randomized property windows).
const PROBE_SAFETY: f64 = 0.7;

/// Corner die count below which `1/N_ch` staircase jumps are too coarse
/// to interpolate: cells touching this regime are evaluated exactly.
const SMOOTH_MIN_DIES: u32 = 64;

/// Largest corner die count the exact zone may extend to. Beyond it the
/// staircase jumps shrink below `1/128` — comfortably interpolation
/// territory — so wholesale evaluation would waste work the probed
/// quadtree can skip.
const EXACT_ZONE_MAX_DIES: u32 = 128;

/// Cells at least this wide (in grid steps, either axis) get the 5-point
/// probe (center + edge midpoints); narrower candidates use the center
/// probe only.
const WIDE_PROBE_SPAN: usize = 8;

/// Smooth cells covering at most this many unit cells refine without
/// probing: a skinny 1×2 cell has a single interior point, so a probe
/// there saves nothing, while a 2×2 cell's center probe still vouches
/// for its four edge midpoints.
const PROBE_FREE_CELL_AREA: usize = 2;

/// Configuration of the adaptive engine.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveConfig {
    /// Relative tolerance for accepting interpolated cells. `0` (or any
    /// non-positive value) forces the dense scan.
    pub tol: f64,
    /// Contour levels that must be marchable losslessly: the engine
    /// refines any smooth cell whose corner range straddles one of
    /// these, so [`AdaptiveSurface::cell_is_exact`] marks every unit
    /// cell that can carry a segment of these levels.
    pub levels: Vec<f64>,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        Self {
            tol: DEFAULT_TOL,
            levels: Vec::new(),
        }
    }
}

impl AdaptiveConfig {
    /// Config with the given tolerance and no protected contour levels.
    #[must_use]
    pub fn new(tol: f64) -> Self {
        Self {
            tol,
            levels: Vec::new(),
        }
    }

    /// The degenerate config: full evaluation, bit-identical to the
    /// dense scan.
    #[must_use]
    pub fn exact() -> Self {
        Self::new(0.0)
    }

    /// Protects contour levels (see [`AdaptiveConfig::levels`]).
    #[must_use]
    pub fn with_levels(mut self, levels: &[f64]) -> Self {
        self.levels = levels.to_vec();
        self
    }
}

/// Work accounting for one adaptive computation.
///
/// Every grid point is produced exactly one way, so `evaluated +
/// analytic_exact + interpolated + infeasible_deduced == grid_points`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdaptiveStats {
    /// Grid points the quadtree had to sample through the full eq. (1)
    /// kernel: cell corners and acceptance probes. This is the adaptive
    /// mesh — the number the dense scan spends `grid_points` on.
    pub evaluated: usize,
    /// Grid points of exact-zone cells evaluated wholesale through the
    /// batched row-hoisted closed form (cheap big-die evaluations; exact,
    /// but never probed or refined).
    pub analytic_exact: usize,
    /// Grid points filled by bilinear-in-`ln` interpolation.
    pub interpolated: usize,
    /// Grid points deduced infeasible without evaluation: die area grows
    /// monotonically along both axes, so a cell whose four corners all
    /// count zero dies is infeasible throughout.
    pub infeasible_deduced: usize,
    /// Total grid points (`lambda_steps × n_tr_steps`).
    pub grid_points: usize,
    /// Smooth cells accepted as bilinear (not refined further).
    pub accepted_cells: usize,
    /// Cells split into children.
    pub refined_cells: usize,
    /// Exact-zone cells evaluated wholesale.
    pub analytic_cells: usize,
}

impl AdaptiveStats {
    /// Ratio of dense mesh evaluations to adaptive mesh evaluations:
    /// `grid_points / evaluated`. This counts only the full-kernel
    /// quadtree samples; exact-zone points ([`Self::analytic_exact`])
    /// are still computed, through the cheaper closed-form batch, and
    /// are reported separately.
    #[must_use]
    pub fn savings(&self) -> f64 {
        if self.evaluated == 0 {
            1.0
        } else {
            self.grid_points as f64 / self.evaluated as f64
        }
    }

    /// Grid points holding exact eq. (1) values (mesh + exact zone).
    #[must_use]
    pub fn exact_points(&self) -> usize {
        self.evaluated + self.analytic_exact
    }
}

/// An adaptively computed cost surface: the full-resolution grid, the
/// work accounting, and the unit-cell march mask that contour extraction
/// uses to skip cells that cannot carry segments.
#[derive(Debug, Clone)]
pub struct AdaptiveSurface {
    surface: CostSurface,
    stats: AdaptiveStats,
    /// `exact[i * cell_cols + j]`: unit cell `(i, j)` must be marched
    /// when extracting the protected levels.
    exact: Vec<bool>,
    cell_cols: usize,
    levels: Vec<f64>,
}

impl AdaptiveSurface {
    /// Computes the surface adaptively on the same grid
    /// [`CostSurface::compute`] would use (λ linear, `N_tr` log-spaced).
    ///
    /// # Panics
    ///
    /// Panics if either range is not ascending-positive or a step count
    /// is below 2 (same contract as the dense engine).
    #[must_use]
    pub fn compute(
        params: &SurfaceParameters,
        lambda_range: (f64, f64, usize),
        n_tr_range: (f64, f64, usize),
        config: &AdaptiveConfig,
    ) -> Self {
        Self::compute_with(
            &Executor::from_env(),
            params,
            lambda_range,
            n_tr_range,
            config,
        )
    }

    /// [`AdaptiveSurface::compute`] on an explicit executor. Each
    /// refinement wave batches its new points through the SoA kernels
    /// and tiles them across the tuned executor; results are
    /// bit-identical at every thread count.
    ///
    /// # Panics
    ///
    /// Panics if either range is not ascending-positive or a step count
    /// is below 2.
    #[must_use]
    pub fn compute_with(
        exec: &Executor,
        params: &SurfaceParameters,
        (lambda_min, lambda_max, lambda_steps): (f64, f64, usize),
        (n_tr_min, n_tr_max, n_tr_steps): (f64, f64, usize),
        config: &AdaptiveConfig,
    ) -> Self {
        assert!(lambda_steps >= 2 && n_tr_steps >= 2, "grids need ≥ 2 steps");
        assert!(
            0.0 < lambda_min && lambda_min < lambda_max,
            "bad λ range {lambda_min}..{lambda_max}"
        );
        assert!(
            0.0 < n_tr_min && n_tr_min < n_tr_max,
            "bad N_tr range {n_tr_min}..{n_tr_max}"
        );
        let _span = maly_obs::span("adaptive.surface");
        let lambda_axis = linear_axis(lambda_min, lambda_max, lambda_steps);
        let n_tr_axis = log_axis(n_tr_min, n_tr_max, n_tr_steps);
        let engine = Engine::new(params, exec, config, &lambda_axis, &n_tr_axis);
        let (values, stats, exact) = if config.tol <= 0.0 {
            engine.dense()
        } else {
            engine.refine()
        };
        ADAPTIVE_MESH_EVALS.add(stats.evaluated as u64);
        ADAPTIVE_EXACT_ZONE_EVALS.add(stats.analytic_exact as u64);
        ADAPTIVE_INTERPOLATED.add(stats.interpolated as u64);
        ADAPTIVE_INFEASIBLE.add(stats.infeasible_deduced as u64);
        ADAPTIVE_GRID_POINTS.add(stats.grid_points as u64);
        Self {
            surface: CostSurface::from_parts(lambda_axis, n_tr_axis, values),
            stats,
            exact,
            cell_cols: n_tr_steps - 1,
            levels: config.levels.clone(),
        }
    }

    /// The full-resolution surface (exact + interpolated values).
    #[must_use]
    pub fn surface(&self) -> &CostSurface {
        &self.surface
    }

    /// Consumes the wrapper, yielding the surface.
    #[must_use]
    pub fn into_surface(self) -> CostSurface {
        self.surface
    }

    /// The work accounting.
    #[must_use]
    pub fn stats(&self) -> &AdaptiveStats {
        &self.stats
    }

    /// The contour levels this surface was refined against
    /// ([`AdaptiveConfig::levels`]).
    #[must_use]
    pub fn protected_levels(&self) -> &[f64] {
        &self.levels
    }

    /// Whether unit cell `(i, j)` (lower corner at `lambda_axis[i]`,
    /// `n_tr_axis[j]`) must be marched when extracting the protected
    /// levels. With protected levels the mask holds exactly the cells
    /// that can carry a segment of those levels: four feasible corners
    /// straddling a level (a cell with an infeasible corner or entirely
    /// on one side of every level marches to nothing, so skipping it is
    /// lossless). Without protected levels the mask instead means
    /// "corners hold computed — hence dense-exact — values":
    /// refined-to-unit, exact-zone, and deduced-infeasible cells.
    #[must_use]
    pub fn cell_is_exact(&self, i: usize, j: usize) -> bool {
        i < self.surface.lambda_axis().len() - 1
            && j < self.cell_cols
            && self.exact[i * self.cell_cols + j]
    }

    /// Number of marchable unit cells (out of
    /// `(lambda_steps − 1) × (n_tr_steps − 1)`).
    #[must_use]
    pub fn exact_cell_count(&self) -> usize {
        self.exact.iter().filter(|e| **e).count()
    }
}

/// A quadtree cell over grid indices: the rectangle
/// `[i0, i1] × [j0, j1]` (inclusive corners). Unit cells have both spans
/// equal to 1; skinny cells (span 1 on one axis) split only on the
/// other.
#[derive(Debug, Clone, Copy)]
struct Cell {
    i0: usize,
    i1: usize,
    j0: usize,
    j1: usize,
}

impl Cell {
    fn is_unit(self) -> bool {
        self.i1 - self.i0 <= 1 && self.j1 - self.j0 <= 1
    }

    fn unit_cells(self) -> usize {
        (self.i1 - self.i0) * (self.j1 - self.j0)
    }

    /// Corner indices in bilerp order:
    /// `(i0,j0), (i1,j0), (i0,j1), (i1,j1)`.
    fn corners(self) -> [(usize, usize); 4] {
        [
            (self.i0, self.j0),
            (self.i1, self.j0),
            (self.i0, self.j1),
            (self.i1, self.j1),
        ]
    }

    /// Probe points: the center, plus the four edge midpoints for wide
    /// cells. Degenerate probes (coinciding with corners on skinny
    /// cells) are dropped.
    fn probe_points(self, out: &mut Vec<(usize, usize)>) {
        let im = (self.i0 + self.i1) / 2;
        let jm = (self.j0 + self.j1) / 2;
        out.clear();
        out.push((im, jm));
        if (self.i1 - self.i0).max(self.j1 - self.j0) >= WIDE_PROBE_SPAN {
            out.extend([(self.i0, jm), (self.i1, jm), (im, self.j0), (im, self.j1)]);
        }
        out.retain(|&(i, j)| !((i == self.i0 || i == self.i1) && (j == self.j0 || j == self.j1)));
        out.sort_unstable();
        out.dedup();
    }

    /// Splits at the integer midpoints, only along axes with span > 1.
    fn children(self, out: &mut Vec<Cell>) {
        let im = (self.i0 + self.i1) / 2;
        let jm = (self.j0 + self.j1) / 2;
        let i_cuts: &[(usize, usize)] = if self.i1 - self.i0 > 1 {
            &[(self.i0, im), (im, self.i1)]
        } else {
            &[(self.i0, self.i1)]
        };
        let j_cuts: &[(usize, usize)] = if self.j1 - self.j0 > 1 {
            &[(self.j0, jm), (jm, self.j1)]
        } else {
            &[(self.j0, self.j1)]
        };
        for &(i0, i1) in i_cuts {
            for &(j0, j1) in j_cuts {
                out.push(Cell { i0, i1, j0, j1 });
            }
        }
    }
}

/// The refinement engine: borrowed inputs plus the hoisted lane kernel
/// for one computation.
struct Engine<'a> {
    params: &'a SurfaceParameters,
    exec: &'a Executor,
    config: &'a AdaptiveConfig,
    lambda_axis: &'a [f64],
    n_tr_axis: &'a [f64],
    /// The shared lane-batched eq. (1) kernel ([`Eq1Kernel`]) — the
    /// same one the dense scan dispatches through, so adaptive mesh
    /// and exact-zone values are bit-identical to the dense surface by
    /// construction. `None` unless the batched eq. (4) kernel and a
    /// valid eq. (7) calibration are both available.
    kernel: Option<Eq1Kernel>,
}

type Computed = (Vec<Vec<Option<f64>>>, AdaptiveStats, Vec<bool>);

impl<'a> Engine<'a> {
    fn new(
        params: &'a SurfaceParameters,
        exec: &'a Executor,
        config: &'a AdaptiveConfig,
        lambda_axis: &'a [f64],
        n_tr_axis: &'a [f64],
    ) -> Self {
        let kernel = Eq1Kernel::new(params, lambda_axis, n_tr_axis);
        Self {
            params,
            exec,
            config,
            lambda_axis,
            n_tr_axis,
            kernel,
        }
    }

    fn rows(&self) -> usize {
        self.lambda_axis.len()
    }

    fn cols(&self) -> usize {
        self.n_tr_axis.len()
    }

    /// The point the dense scan evaluates at grid index `(i, j)` — same
    /// clamped-newtype construction, so values are bit-identical.
    fn point_at(&self, i: usize, j: usize) -> (Microns, TransistorCount) {
        (
            Microns::clamped(self.lambda_axis[i]),
            TransistorCount::clamped(self.n_tr_axis[j]),
        )
    }

    /// Batch-evaluates eq. (1) at grid points, tiling chunks across the
    /// tuned executor. Chunks map back in index order, so the output is
    /// independent of the thread count.
    fn eval_points(&self, indices: &[(usize, usize)]) -> Vec<PointEval> {
        let exec = self.exec.tuned_for(indices.len(), CELL_EVAL_HINT_NS);
        if exec.threads() <= 1 {
            return self.eval_slice(indices);
        }
        let chunk = indices.len().div_ceil(exec.threads());
        let chunks: Vec<&[(usize, usize)]> = indices.chunks(chunk).collect();
        exec.map(&chunks, |c| self.eval_slice(c))
            .into_iter()
            .flatten()
            .collect()
    }

    /// The serial kernel under [`Engine::eval_points`]: one
    /// [`Eq1Kernel::eq1_for_slice`] dispatch for the whole node set —
    /// the same kernel the dense scan runs, so every evaluated point is
    /// bit-identical to the dense surface by construction.
    fn eval_slice(&self, indices: &[(usize, usize)]) -> Vec<PointEval> {
        match &self.kernel {
            Some(kernel) => kernel.eq1_for_slice(indices),
            None => {
                // No batched eq. (4) kernel (or an invalid calibration,
                // where every point is infeasible anyway): fall back to
                // the scalar path and report no die count, which
                // disables the exact zone.
                let points: Vec<(Microns, TransistorCount)> =
                    indices.iter().map(|&(i, j)| self.point_at(i, j)).collect();
                self.params
                    .costs_for_points(&points)
                    .into_iter()
                    .map(|c| (c, u32::MAX))
                    .collect()
            }
        }
    }

    /// The degenerate `tol ≤ 0` path: every grid point evaluated through
    /// the batched kernels, every unit cell exact. Bit-identical to
    /// [`CostSurface::compute`].
    fn dense(&self) -> Computed {
        let (rows, cols) = (self.rows(), self.cols());
        let indices: Vec<(usize, usize)> = (0..rows)
            .flat_map(|i| (0..cols).map(move |j| (i, j)))
            .collect();
        let values: Vec<Vec<Option<f64>>> = self
            .eval_points(&indices)
            .chunks(cols)
            .map(|row| row.iter().map(|&(c, _)| c).collect())
            .collect();
        let stats = AdaptiveStats {
            evaluated: rows * cols,
            grid_points: rows * cols,
            ..AdaptiveStats::default()
        };
        (values, stats, vec![true; (rows - 1) * (cols - 1)])
    }

    /// The coarse-to-fine path: wave-ordered refinement with batched
    /// evaluation rounds.
    fn refine(&self) -> Computed {
        let (rows, cols) = (self.rows(), self.cols());
        let np = rows * cols;
        let cell_cols = cols - 1;
        let mut have = vec![false; np];
        let mut val: Vec<Option<f64>> = vec![None; np];
        let mut nch = vec![0u32; np];
        let mut exact = vec![false; (rows - 1) * cell_cols];
        let mut stats = AdaptiveStats {
            grid_points: np,
            ..AdaptiveStats::default()
        };

        // Root tiling: the largest power-of-two stride at or below half
        // the smaller axis, so the coarse pass is a small fraction of
        // the dense scan while midpoint splits stay integer-aligned.
        let target = ((rows.min(cols) - 1) / 2).max(1);
        let mut stride = 1usize;
        while stride * 2 <= target {
            stride *= 2;
        }
        let mut wave: Vec<Cell> = Vec::new();
        let mut i0 = 0;
        while i0 < rows - 1 {
            let i1 = (i0 + stride).min(rows - 1);
            let mut j0 = 0;
            while j0 < cols - 1 {
                let j1 = (j0 + stride).min(cols - 1);
                wave.push(Cell { i0, i1, j0, j1 });
                j0 = j1;
            }
            i0 = i1;
        }

        // Accepted smooth cells, with their corner ln-costs for the
        // final fill pass.
        let mut accepted: Vec<(Cell, [f64; 4])> = Vec::new();
        let mut need: Vec<(usize, usize)> = Vec::new();
        let mut scratch: Vec<(usize, usize)> = Vec::new();
        while !wave.is_empty() {
            // Round A: evaluate every missing corner of this wave.
            need.clear();
            need.extend(
                wave.iter()
                    .flat_map(|c| c.corners())
                    .filter(|&(i, j)| !have[i * cols + j]),
            );
            need.sort_unstable();
            need.dedup();
            stats.evaluated += need.len();
            for (&(i, j), (c, n)) in need.iter().zip(self.eval_points(&need)) {
                let k = i * cols + j;
                have[k] = true;
                val[k] = c;
                nch[k] = n;
            }

            // Classify: exact zone, smooth probe candidate, or refine.
            let mut probing: Vec<(Cell, [f64; 4])> = Vec::new();
            let mut analytic: Vec<Cell> = Vec::new();
            let mut next: Vec<Cell> = Vec::new();
            for cell in wave.drain(..) {
                if cell.is_unit() {
                    self.mark_marchable_units(cell, &val, &mut exact);
                    continue;
                }
                let keys = cell.corners().map(|(i, j)| i * cols + j);
                let n_min = keys.iter().fold(u32::MAX, |a, &k| a.min(nch[k]));
                let n_max = keys.iter().fold(0u32, |a, &k| a.max(nch[k]));
                let any_infeasible = keys.iter().any(|&k| val[k].is_none());
                if n_max == 0 {
                    // Die area grows monotonically along both axes, so
                    // the eq. (4) count is extremal at the corners: four
                    // zero-die corners mean every interior point is
                    // infeasible too — no evaluation needed.
                    for i in cell.i0..=cell.i1 {
                        for j in cell.j0..=cell.j1 {
                            let k = i * cols + j;
                            if !have[k] {
                                have[k] = true;
                                stats.infeasible_deduced += 1;
                            }
                        }
                    }
                    self.mark_marchable_units(cell, &val, &mut exact);
                    continue;
                }
                if n_max <= EXACT_ZONE_MAX_DIES
                    && n_min > 0
                    && (n_min < SMOOTH_MIN_DIES || any_infeasible)
                {
                    // Staircase regime with every corner placing dies:
                    // evaluate wholesale. Cells with a zero-die corner
                    // refine instead (the fall-through below), so their
                    // all-zero children are deduced for free rather than
                    // evaluated point by point.
                    stats.analytic_cells += 1;
                    analytic.push(cell);
                    continue;
                }
                if any_infeasible || n_min < SMOOTH_MIN_DIES {
                    // Straddles the zone boundary (or the feasibility
                    // frontier at large die counts): split until the
                    // pieces classify cleanly.
                    stats.refined_cells += 1;
                    cell.children(&mut next);
                    continue;
                }
                // Smooth cell: all corners feasible, N_ch comfortably
                // large. Gather the corner values.
                let mut quad = [0.0f64; 4];
                for (q, &k) in quad.iter_mut().zip(&keys) {
                    // Feasible by the any_infeasible check above.
                    *q = val[k].unwrap_or(f64::NAN);
                }
                let (lo, hi) = quad
                    .iter()
                    .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| {
                        (lo.min(v), hi.max(v))
                    });
                if self.config.levels.iter().any(|&l| hi >= l && lo < l) {
                    // A protected contour runs through: resolve to unit
                    // cells so marching the exact mask is lossless.
                    stats.refined_cells += 1;
                    cell.children(&mut next);
                    continue;
                }
                if cell.unit_cells() <= PROBE_FREE_CELL_AREA {
                    // Probing would cost as much as the points it saves.
                    stats.refined_cells += 1;
                    cell.children(&mut next);
                    continue;
                }
                probing.push((cell, quad.map(f64::ln)));
            }

            // Round B1: evaluate this wave's probe points.
            need.clear();
            for (cell, _) in &probing {
                cell.probe_points(&mut scratch);
                need.extend(
                    scratch
                        .iter()
                        .copied()
                        .filter(|&(i, j)| !have[i * cols + j]),
                );
            }
            need.sort_unstable();
            need.dedup();
            stats.evaluated += need.len();
            for (&(i, j), (c, n)) in need.iter().zip(self.eval_points(&need)) {
                let k = i * cols + j;
                have[k] = true;
                val[k] = c;
                nch[k] = n;
            }

            // Round B2: evaluate exact-zone cells wholesale.
            need.clear();
            for cell in &analytic {
                for i in cell.i0..=cell.i1 {
                    for j in cell.j0..=cell.j1 {
                        if !have[i * cols + j] {
                            need.push((i, j));
                        }
                    }
                }
            }
            need.sort_unstable();
            need.dedup();
            stats.analytic_exact += need.len();
            for (&(i, j), (c, n)) in need.iter().zip(self.eval_points(&need)) {
                let k = i * cols + j;
                have[k] = true;
                val[k] = c;
                nch[k] = n;
            }
            // With every exact-zone value now known, mark the marchable
            // unit cells (all of them without protected levels, only the
            // level-straddling ones otherwise).
            for &cell in &analytic {
                self.mark_marchable_units(cell, &val, &mut exact);
            }

            // Probe verdicts: accept when every probe tracks the
            // bilinear-in-ln prediction, else split.
            for (cell, ln_quad) in probing {
                cell.probe_points(&mut scratch);
                let mut ok = true;
                for &(i, j) in scratch.iter() {
                    let Some(actual) = val[i * cols + j] else {
                        ok = false;
                        break;
                    };
                    let predicted = bilerp(cell, (i, j), ln_quad);
                    if (actual.ln() - predicted).abs() > self.config.tol * PROBE_SAFETY {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    stats.accepted_cells += 1;
                    accepted.push((cell, ln_quad));
                } else {
                    stats.refined_cells += 1;
                    cell.children(&mut next);
                }
            }
            wave = next;
        }

        // Fill accepted cells with exp(bilerp(ln C)) via geometric
        // recurrences: the ln-bilerp is affine along each axis plus one
        // cross term, so the whole cell unrolls from four exps — the
        // value at the low corner, the per-row and per-column ratios,
        // and the cross-term ratio update. Multiplicative drift over a
        // cell is a few hundred ulps, far below any useful tolerance.
        // Evaluated points — cell corners, kept probes, and exact
        // neighbors on shared edges — always win over fills.
        for &(cell, ln_quad) in &accepted {
            let di = (cell.i1 - cell.i0) as f64;
            let dj = (cell.j1 - cell.j0) as f64;
            let cross = ln_quad[3] - ln_quad[1] - ln_quad[2] + ln_quad[0];
            let mut row_start = ln_quad[0].exp();
            let row_mult = ((ln_quad[1] - ln_quad[0]) / di).exp();
            let mut col_ratio = ((ln_quad[2] - ln_quad[0]) / dj).exp();
            let ratio_mult = (cross / (di * dj)).exp();
            for i in cell.i0..=cell.i1 {
                let mut v = row_start;
                for j in cell.j0..=cell.j1 {
                    let k = i * cols + j;
                    if !have[k] {
                        have[k] = true;
                        val[k] = Some(v);
                        stats.interpolated += 1;
                    }
                    v *= col_ratio;
                }
                row_start *= row_mult;
                col_ratio *= ratio_mult;
            }
            if !self.config.levels.is_empty() {
                // Fills are convex in ln and cannot straddle a level the
                // corners do not straddle — but kept probe/edge values
                // can exceed the corner range by up to the probe
                // tolerance. Mark exactly the unit cells whose (now
                // final) corner values straddle a protected level, so
                // masked marching over this surface stays lossless.
                self.mark_marchable_units(cell, &val, &mut exact);
            }
        }

        debug_assert!(have.iter().all(|f| *f), "quadtree cells must tile the grid");
        debug_assert_eq!(
            stats.evaluated + stats.analytic_exact + stats.interpolated + stats.infeasible_deduced,
            stats.grid_points,
            "every grid point is produced exactly once"
        );
        let values: Vec<Vec<Option<f64>>> = val.chunks(cols).map(<[Option<f64>]>::to_vec).collect();
        (values, stats, exact)
    }

    /// Marks the unit cells of `cell` that contour extraction must
    /// march. Without protected levels the mask means "corners hold
    /// computed values" and every unit cell of `cell` is marked. With
    /// protected levels only cells that can actually carry a segment
    /// are marked: four feasible corners whose range straddles some
    /// level. A cell with an infeasible corner yields no marching
    /// segments, and a cell entirely on one side of every level yields
    /// none either, so skipping both loses nothing relative to marching
    /// every cell of this surface.
    fn mark_marchable_units(&self, cell: Cell, val: &[Option<f64>], exact: &mut [bool]) {
        let cols = self.cols();
        let cell_cols = cols - 1;
        if self.config.levels.is_empty() {
            for ci in cell.i0..cell.i1 {
                for cj in cell.j0..cell.j1 {
                    exact[ci * cell_cols + cj] = true;
                }
            }
            return;
        }
        for ci in cell.i0..cell.i1 {
            for cj in cell.j0..cell.j1 {
                let quad = [
                    val[ci * cols + cj],
                    val[(ci + 1) * cols + cj],
                    val[ci * cols + cj + 1],
                    val[(ci + 1) * cols + cj + 1],
                ];
                let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
                let mut feasible = true;
                for v in quad {
                    match v {
                        Some(v) => {
                            lo = lo.min(v);
                            hi = hi.max(v);
                        }
                        None => feasible = false,
                    }
                }
                if feasible && self.config.levels.iter().any(|&l| hi >= l && lo < l) {
                    exact[ci * cell_cols + cj] = true;
                }
            }
        }
    }
}

/// Bilinear interpolation at grid index `(i, j)` inside `cell`, from the
/// corner values in [`Cell::corners`] order
/// (`(i0,j0), (i1,j0), (i0,j1), (i1,j1)`), with fractions taken in
/// index space.
fn bilerp(cell: Cell, (i, j): (usize, usize), quad: [f64; 4]) -> f64 {
    let tx = (i - cell.i0) as f64 / (cell.i1 - cell.i0) as f64;
    let ty = (j - cell.j0) as f64 / (cell.j1 - cell.j0) as f64;
    quad[0] * (1.0 - tx) * (1.0 - ty)
        + quad[1] * tx * (1.0 - ty)
        + quad[2] * (1.0 - tx) * ty
        + quad[3] * tx * ty
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIG8_WINDOW: ((f64, f64, usize), (f64, f64, usize)) =
        ((0.4, 1.5, 56), (2.0e4, 4.0e6, 48));

    fn dense_reference() -> CostSurface {
        CostSurface::compute(&SurfaceParameters::fig8(), FIG8_WINDOW.0, FIG8_WINDOW.1)
    }

    #[test]
    fn tol_zero_is_bit_identical_to_dense() {
        let adaptive = AdaptiveSurface::compute(
            &SurfaceParameters::fig8(),
            FIG8_WINDOW.0,
            FIG8_WINDOW.1,
            &AdaptiveConfig::exact(),
        );
        assert_eq!(adaptive.surface(), &dense_reference());
        assert_eq!(adaptive.stats().evaluated, 56 * 48);
        assert_eq!(adaptive.stats().interpolated, 0);
        assert_eq!(adaptive.exact_cell_count(), 55 * 47);
    }

    #[test]
    fn default_tol_cuts_evaluations_substantially() {
        let adaptive = AdaptiveSurface::compute(
            &SurfaceParameters::fig8(),
            FIG8_WINDOW.0,
            FIG8_WINDOW.1,
            &AdaptiveConfig::default(),
        );
        let stats = adaptive.stats();
        assert_eq!(stats.grid_points, 56 * 48);
        assert!(
            stats.savings() >= 3.0,
            "expected ≥3× fewer mesh evaluations, got {:.2}× ({} of {})",
            stats.savings(),
            stats.evaluated,
            stats.grid_points
        );
        assert!(stats.interpolated > 0);
        assert!(stats.analytic_exact > 0, "fig8 has a big-die exact zone");
        // Every grid point is produced exactly one way.
        assert_eq!(
            stats.evaluated + stats.analytic_exact + stats.interpolated + stats.infeasible_deduced,
            stats.grid_points
        );
    }

    #[test]
    fn default_tol_matches_dense_within_tolerance() {
        let dense = dense_reference();
        let adaptive = AdaptiveSurface::compute(
            &SurfaceParameters::fig8(),
            FIG8_WINDOW.0,
            FIG8_WINDOW.1,
            &AdaptiveConfig::default(),
        );
        let mut worst = 0.0f64;
        for (da, aa) in dense.values().iter().zip(adaptive.surface().values()) {
            for (dv, av) in da.iter().zip(aa) {
                match (dv, av) {
                    (Some(d), Some(a)) => {
                        worst = worst.max((d - a).abs() / d.abs().max(f64::MIN_POSITIVE));
                    }
                    (None, None) => {}
                    (d, a) => panic!("feasibility mismatch: dense {d:?} vs adaptive {a:?}"),
                }
            }
        }
        assert!(
            worst <= DEFAULT_TOL,
            "worst relative error {worst:.4} exceeds tol {DEFAULT_TOL}"
        );
    }

    #[test]
    fn exact_cells_hold_dense_values() {
        // Without protected levels the march mask covers exactly the
        // cells whose corners were computed — and computed points are
        // bit-identical to the dense scan (the row-hoisted kernel runs
        // the same operations on the same values).
        let dense = dense_reference();
        let adaptive = AdaptiveSurface::compute(
            &SurfaceParameters::fig8(),
            FIG8_WINDOW.0,
            FIG8_WINDOW.1,
            &AdaptiveConfig::default(),
        );
        let dv = dense.values();
        let av = adaptive.surface().values();
        let mut checked = 0usize;
        for i in 0..dv.len() - 1 {
            for j in 0..dv[0].len() - 1 {
                if adaptive.cell_is_exact(i, j) {
                    for (ci, cj) in [(i, j), (i + 1, j), (i, j + 1), (i + 1, j + 1)] {
                        assert_eq!(
                            av[ci][cj], dv[ci][cj],
                            "exact-cell corner ({ci},{cj}) must hold the dense value"
                        );
                        checked += 1;
                    }
                }
            }
        }
        assert!(checked > 0, "fig8 must produce exact cells");
    }

    #[test]
    fn protected_levels_make_marching_lossless() {
        let levels = [10.0e-6, 30.0e-6];
        let adaptive = AdaptiveSurface::compute(
            &SurfaceParameters::fig8(),
            FIG8_WINDOW.0,
            FIG8_WINDOW.1,
            &AdaptiveConfig::default().with_levels(&levels),
        );
        // Every unit cell of the *adaptive* surface whose corner values
        // straddle a protected level must be in the march mask: marching
        // only flagged cells then reproduces full marching over this
        // surface.
        let vals = adaptive.surface().values();
        for i in 0..vals.len() - 1 {
            for j in 0..vals[0].len() - 1 {
                let quad = [
                    vals[i][j],
                    vals[i + 1][j],
                    vals[i][j + 1],
                    vals[i + 1][j + 1],
                ];
                let Some(quad) = quad.into_iter().collect::<Option<Vec<f64>>>() else {
                    // A cell with an infeasible corner: the exact zone
                    // resolves these, so they are always marchable.
                    continue;
                };
                let lo = quad.iter().fold(f64::INFINITY, |a, b| a.min(*b));
                let hi = quad.iter().fold(f64::NEG_INFINITY, |a, b| a.max(*b));
                for level in levels {
                    if hi >= level && lo < level {
                        assert!(
                            adaptive.cell_is_exact(i, j),
                            "cell ({i},{j}) straddles {level} but is not marchable"
                        );
                    }
                }
            }
        }
        assert!(adaptive.protected_levels() == levels);
    }

    #[test]
    fn infeasible_cells_are_marchable() {
        // Cells on the feasibility frontier (die too large) land in the
        // exact zone, so the frontier is resolved point-exactly.
        let dense = dense_reference();
        let adaptive = AdaptiveSurface::compute(
            &SurfaceParameters::fig8(),
            FIG8_WINDOW.0,
            FIG8_WINDOW.1,
            &AdaptiveConfig::default(),
        );
        let dv = dense.values();
        let av = adaptive.surface().values();
        for i in 0..dv.len() {
            for j in 0..dv[0].len() {
                assert_eq!(
                    dv[i][j].is_none(),
                    av[i][j].is_none(),
                    "feasibility must agree at ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn all_zero_cells_are_deduced_without_evaluation() {
        // A window reaching deep into the infeasible corner (large λ,
        // huge N_tr): cells whose four corners all count zero dies are
        // filled by monotonicity, not evaluation — and the deduced
        // feasibility mask must still match the dense scan exactly.
        let window = ((1.0, 3.0, 33), (1.0e6, 1.0e8, 33));
        let adaptive = AdaptiveSurface::compute(
            &SurfaceParameters::fig8(),
            window.0,
            window.1,
            &AdaptiveConfig::default(),
        );
        let stats = adaptive.stats();
        assert!(
            stats.infeasible_deduced > 0,
            "expected deduced infeasible points, got {stats:?}"
        );
        assert_eq!(
            stats.evaluated + stats.analytic_exact + stats.interpolated + stats.infeasible_deduced,
            stats.grid_points
        );
        let dense = CostSurface::compute(&SurfaceParameters::fig8(), window.0, window.1);
        for (da, aa) in dense.values().iter().zip(adaptive.surface().values()) {
            for (dv, av) in da.iter().zip(aa) {
                assert_eq!(dv.is_none(), av.is_none(), "feasibility must agree");
            }
        }
    }

    #[test]
    fn thread_count_does_not_change_the_result() {
        let config = AdaptiveConfig::default().with_levels(&[20.0e-6]);
        let serial = AdaptiveSurface::compute_with(
            &Executor::with_threads(1),
            &SurfaceParameters::fig8(),
            FIG8_WINDOW.0,
            FIG8_WINDOW.1,
            &config,
        );
        let parallel = AdaptiveSurface::compute_with(
            &Executor::with_threads(8),
            &SurfaceParameters::fig8(),
            FIG8_WINDOW.0,
            FIG8_WINDOW.1,
            &config,
        );
        assert_eq!(serial.surface(), parallel.surface());
        assert_eq!(serial.stats(), parallel.stats());
    }

    #[test]
    fn skinny_grids_are_handled() {
        // 3 × 40: the λ axis refines to unit immediately; cells stay
        // skinny throughout.
        let adaptive = AdaptiveSurface::compute(
            &SurfaceParameters::fig8(),
            (0.5, 1.2, 3),
            (1.0e5, 2.0e6, 40),
            &AdaptiveConfig::exact(),
        );
        let dense = CostSurface::compute(
            &SurfaceParameters::fig8(),
            (0.5, 1.2, 3),
            (1.0e5, 2.0e6, 40),
        );
        assert_eq!(adaptive.surface(), &dense);
    }

    #[test]
    #[should_panic(expected = "grids need")]
    fn degenerate_grid_is_rejected() {
        let _ = AdaptiveSurface::compute(
            &SurfaceParameters::fig8(),
            (0.4, 1.5, 1),
            (2.0e4, 4.0e6, 8),
            &AdaptiveConfig::default(),
        );
    }
}
