//! The paper's two manufacturing scenarios (Sec. IV.A, Figs 6–7).
//!
//! * **Scenario #1** — the industry's optimistic premise: high-volume
//!   memory production, mature yields of 100% (redundancy and mature
//!   contamination control), `X ∈ [1.1, 1.3]`, zero overhead. Eq. (8)
//!   then says the transistor cost *falls* as λ shrinks (Fig 6), because
//!   the wafer's transistor capacity grows faster than its cost.
//!
//! * **Scenario #2** — the realistic counterpoint for custom logic:
//!   `X ∈ [1.8, 2.4]`, redundancy-free dies of 70% reference yield whose
//!   area *grows* along the Fig 3 trend. Eq. (9) then says the transistor
//!   cost *rises* as λ shrinks (Fig 7) — the paper's headline warning.

use maly_tech_trend::diesize::DieSizeTrend;
use maly_units::{ensure_finite, DesignDensity, Dollars, Microns, Probability, UnitError};
use maly_wafer_geom::Wafer;

use crate::{CostError, WaferCostModel};

/// The figures' shared reference wafer cost `C₀ = $500` (compile-time
/// validated constants cannot panic at run time).
const FIG_C0: Dollars = Dollars::const_new(500.0);
/// Fig 6 design density `d_d = 30 λ²/tr` (memory-style layout).
const FIG6_DENSITY: DesignDensity = DesignDensity::const_new(30.0);
/// Fig 7 design density `d_d = 200 λ²/tr` (custom-logic layout).
const FIG7_DENSITY: DesignDensity = DesignDensity::const_new(200.0);
/// Fig 7 reference yield `Y₀ = 70%`.
const FIG7_Y0: Probability = Probability::const_new(0.7);

/// Scenario #1 (eq. 8): `C_tr = C'_w(λ) · d_d · λ² / A_w`.
///
/// Yield is 100% and every square micron of the wafer counts (gross
/// capacity) — memory-style accounting.
///
/// # Examples
///
/// ```
/// use maly_units::{DesignDensity, Dollars, Microns};
/// use maly_wafer_geom::Wafer;
/// use maly_cost_model::{scenario::Scenario1, WaferCostModel};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // Fig 6 parameters: C0 = $500, d_d = 30, R_w = 7.5 cm.
/// let s1 = Scenario1::new(
///     WaferCostModel::new(Dollars::new(500.0)?, 1.2)?,
///     DesignDensity::new(30.0)?,
///     Wafer::six_inch(),
/// );
/// // Cost per transistor falls monotonically with λ.
/// let at_1um = s1.cost_per_transistor(Microns::new(1.0)?);
/// let at_quarter = s1.cost_per_transistor(Microns::new(0.25)?);
/// assert!(at_quarter < at_1um);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scenario1 {
    wafer_cost: WaferCostModel,
    density: DesignDensity,
    wafer: Wafer,
}

impl Scenario1 {
    /// Creates the scenario.
    #[must_use]
    pub fn new(wafer_cost: WaferCostModel, density: DesignDensity, wafer: Wafer) -> Self {
        Self {
            wafer_cost,
            density,
            wafer,
        }
    }

    /// The Fig 6 configuration for a given `X`: `C₀ = $500`, `d_d = 30`,
    /// 6-inch wafer.
    ///
    /// # Errors
    ///
    /// Propagates `X` validation from [`WaferCostModel::new`].
    pub fn fig6(x: f64) -> Result<Self, UnitError> {
        Ok(Self::new(
            WaferCostModel::new(FIG_C0, x)?,
            FIG6_DENSITY,
            Wafer::six_inch(),
        ))
    }

    /// Eq. (8): cost per transistor at feature size λ.
    #[must_use]
    pub fn cost_per_transistor(&self, lambda: Microns) -> Dollars {
        let c_w = self.wafer_cost.wafer_cost(lambda);
        let per_tr_cm2 = self
            .density
            .transistor_footprint(lambda)
            .to_square_centimeters();
        c_w * (per_tr_cm2.value() / self.wafer.area().value())
    }

    /// Sweeps the cost over a λ range (inclusive ends, `steps ≥ 2`
    /// points), producing a Fig 6 series.
    ///
    /// # Errors
    ///
    /// Returns [`CostError::InvalidSweep`] if `steps < 2` or the range
    /// is not ascending.
    pub fn sweep(
        &self,
        lambda_min: Microns,
        lambda_max: Microns,
        steps: usize,
    ) -> Result<Vec<(f64, Dollars)>, CostError> {
        sweep_lambda(lambda_min, lambda_max, steps, |l| {
            self.cost_per_transistor(l)
        })
    }
}

/// Scenario #2 (eq. 9):
/// `C_tr = C'_w(λ) · d_d · λ² / (A_w · Y₀^{A_ch(λ)/A₀})`.
///
/// Identical to Scenario #1 except every wafer transistor is discounted
/// by the yield of the *growing* die the Fig 3 trend prescribes.
///
/// # Examples
///
/// ```
/// use maly_units::Microns;
/// use maly_cost_model::scenario::Scenario2;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // Fig 7: X = 2.4 — shrinking now RAISES the transistor cost.
/// let s2 = Scenario2::fig7(2.4)?;
/// let at_08 = s2.cost_per_transistor(Microns::new(0.8)?);
/// let at_quarter = s2.cost_per_transistor(Microns::new(0.25)?);
/// assert!(at_quarter > at_08 * 3.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scenario2 {
    base: Scenario1,
    reference_yield: Probability,
    die_trend: DieSizeTrend,
}

impl Scenario2 {
    /// Creates the scenario from a Scenario #1 base, a reference yield
    /// `Y₀` (for a 1 cm² die) and a die-size trend.
    #[must_use]
    pub fn new(base: Scenario1, reference_yield: Probability, die_trend: DieSizeTrend) -> Self {
        Self {
            base,
            reference_yield,
            die_trend,
        }
    }

    /// The Fig 7 configuration for a given `X`: `C₀ = $500`, `d_d = 200`,
    /// 6-inch wafer, `Y₀ = 70%`, paper die-size fit.
    ///
    /// # Errors
    ///
    /// Propagates `X` validation.
    pub fn fig7(x: f64) -> Result<Self, UnitError> {
        let base = Scenario1::new(
            WaferCostModel::new(FIG_C0, x)?,
            FIG7_DENSITY,
            Wafer::six_inch(),
        );
        Ok(Self::new(base, FIG7_Y0, DieSizeTrend::paper_fit()))
    }

    /// Die yield at feature size λ: `Y₀^{A_ch(λ)/A₀}` with `A₀ = 1 cm²`.
    #[must_use]
    pub fn die_yield(&self, lambda: Microns) -> Probability {
        let area = self.die_trend.area_at(lambda);
        self.reference_yield.powf(area.value())
    }

    /// Eq. (9): cost per transistor at feature size λ.
    #[must_use]
    pub fn cost_per_transistor(&self, lambda: Microns) -> Dollars {
        let y = self.die_yield(lambda).value();
        // Y is in (0, 1]; dividing by it scales the Scenario #1 cost up.
        self.base.cost_per_transistor(lambda) / y
    }

    /// Sweeps the cost over a λ range, producing a Fig 7 series.
    ///
    /// # Errors
    ///
    /// Returns [`CostError::InvalidSweep`] if `steps < 2` or the range
    /// is not ascending.
    pub fn sweep(
        &self,
        lambda_min: Microns,
        lambda_max: Microns,
        steps: usize,
    ) -> Result<Vec<(f64, Dollars)>, CostError> {
        sweep_lambda(lambda_min, lambda_max, steps, |l| {
            self.cost_per_transistor(l)
        })
    }

    /// The feature size at which eq. (9) is minimized within a range —
    /// the "optimal shrink depth" for a Scenario #2 product line.
    ///
    /// # Errors
    ///
    /// Returns [`CostError::InvalidSweep`] if `steps < 2` or the range
    /// is not ascending.
    pub fn optimal_lambda(
        &self,
        lambda_min: Microns,
        lambda_max: Microns,
        steps: usize,
    ) -> Result<Microns, CostError> {
        let series = self.sweep(lambda_min, lambda_max, steps)?;
        // A validated sweep holds ≥ 2 points, so a minimum always exists.
        let Some(best) = series
            .iter()
            .min_by(|a, b| a.1.value().total_cmp(&b.1.value()))
        else {
            return Err(CostError::InvalidSweep {
                lambda_min_um: lambda_min.value(),
                lambda_max_um: lambda_max.value(),
                steps,
            });
        };
        Ok(Microns::clamped(best.0))
    }
}

fn sweep_lambda(
    lambda_min: Microns,
    lambda_max: Microns,
    steps: usize,
    f: impl Fn(Microns) -> Dollars + Sync,
) -> Result<Vec<(f64, Dollars)>, CostError> {
    let lo = lambda_min.value();
    let hi = lambda_max.value();
    if steps < 2 || lo >= hi {
        return Err(CostError::InvalidSweep {
            lambda_min_um: lo,
            lambda_max_um: hi,
            steps,
        });
    }
    // Sweep points are independent; the executor returns them in index
    // order, so the series is identical to the serial loop.
    Ok(maly_par::Executor::from_env().map_indexed(steps, |i| {
        let l = lo + (hi - lo) * i as f64 / (steps - 1) as f64;
        ensure_finite!(l, "λ sweep interpolant");
        // Interpolants of validated positive bounds stay positive.
        (l, f(Microns::clamped(l)))
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn um(v: f64) -> Microns {
        Microns::new(v).unwrap()
    }

    #[test]
    fn fig6_cost_decreases_for_all_printed_x() {
        // Fig 6 plots X = 1.1, 1.2, 1.3: cost falls monotonically.
        for x in [1.1, 1.2, 1.3] {
            let s1 = Scenario1::fig6(x).unwrap();
            let series = s1.sweep(um(0.25), um(1.0), 16).unwrap();
            for w in series.windows(2) {
                assert!(
                    w[0].1.value() < w[1].1.value(),
                    "X={x}: cost must fall with λ"
                );
            }
        }
    }

    #[test]
    fn fig6_reference_point_value() {
        // At λ = 1 µm the cost is C0·d_d·λ²/A_w = 500·30 µm²/176.71 cm²
        // ≈ 0.849 µ$ regardless of X.
        for x in [1.1, 1.3] {
            let s1 = Scenario1::fig6(x).unwrap();
            let c = s1.cost_per_transistor(um(1.0)).to_micro_dollars().value();
            assert!((c - 0.849).abs() < 0.002, "X={x}: {c}");
        }
    }

    #[test]
    fn fig6_higher_x_flattens_the_decrease() {
        let low = Scenario1::fig6(1.1).unwrap();
        let high = Scenario1::fig6(1.3).unwrap();
        let ratio_low = low.cost_per_transistor(um(0.25)) / low.cost_per_transistor(um(1.0));
        let ratio_high = high.cost_per_transistor(um(0.25)) / high.cost_per_transistor(um(1.0));
        assert!(ratio_high > ratio_low);
        assert!(ratio_low < 1.0 && ratio_high < 1.0);
    }

    #[test]
    fn fig7_cost_increases_for_all_printed_x() {
        // Fig 7 plots X in 1.8–2.4: shrinking raises the cost across the
        // sub-micron sweep.
        for x in [1.8, 2.0, 2.2, 2.4] {
            let s2 = Scenario2::fig7(x).unwrap();
            let c_08 = s2.cost_per_transistor(um(0.8)).value();
            let c_05 = s2.cost_per_transistor(um(0.5)).value();
            let c_025 = s2.cost_per_transistor(um(0.25)).value();
            assert!(c_05 > c_08, "X={x}");
            assert!(c_025 > c_05, "X={x}");
        }
    }

    #[test]
    fn fig7_hand_computed_anchor() {
        // Hand-validated during calibration: X = 2.4 at λ = 0.8 gives
        // ≈ 9.5 µ$ and at λ = 0.25 ≈ 45 µ$ (see DESIGN.md §1).
        let s2 = Scenario2::fig7(2.4).unwrap();
        let c_08 = s2.cost_per_transistor(um(0.8)).to_micro_dollars().value();
        let c_025 = s2.cost_per_transistor(um(0.25)).to_micro_dollars().value();
        assert!((c_08 - 9.46).abs() < 0.1, "got {c_08}");
        assert!((c_025 - 45.1).abs() < 1.0, "got {c_025}");
    }

    #[test]
    fn fig7_yield_collapses_with_shrink() {
        let s2 = Scenario2::fig7(1.8).unwrap();
        let y_08 = s2.die_yield(um(0.8)).value();
        let y_025 = s2.die_yield(um(0.25)).value();
        assert!(y_08 > 0.9);
        assert!(y_025 < 0.25);
    }

    #[test]
    fn scenario2_reduces_to_scenario1_at_perfect_yield() {
        let base = Scenario1::fig6(1.2).unwrap();
        let s2 = Scenario2::new(base, Probability::ONE, DieSizeTrend::paper_fit());
        for l in [1.0, 0.5, 0.25] {
            let c1 = base.cost_per_transistor(um(l)).value();
            let c2 = s2.cost_per_transistor(um(l)).value();
            assert!((c1 - c2).abs() < 1e-15);
        }
    }

    #[test]
    fn scenario2_never_rewards_shrinking() {
        // Under Scenario #2 assumptions (X ≥ 1.8, growing dies, fixed Y0),
        // the cheapest transistor is always at the *largest* feature size
        // in the window: shrinking never pays. (The interior optima of
        // Fig 8 appear only at fixed N_tr — see `surface`.)
        let s2 = Scenario2::fig7(1.8).unwrap();
        let opt = s2.optimal_lambda(um(0.2), um(1.5), 200).unwrap();
        assert!(
            (opt.value() - 1.5).abs() < 1e-9,
            "optimum {opt} should sit at the window's upper edge"
        );
    }

    #[test]
    fn sweep_covers_endpoints() {
        let s1 = Scenario1::fig6(1.2).unwrap();
        let series = s1.sweep(um(0.25), um(1.0), 4).unwrap();
        assert_eq!(series.len(), 4);
        assert!((series[0].0 - 0.25).abs() < 1e-12);
        assert!((series[3].0 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sweep_rejects_degenerate_requests() {
        let s1 = Scenario1::fig6(1.2).unwrap();
        assert!(matches!(
            s1.sweep(um(0.25), um(1.0), 1),
            Err(CostError::InvalidSweep { steps: 1, .. })
        ));
        assert!(matches!(
            s1.sweep(um(1.0), um(0.25), 8),
            Err(CostError::InvalidSweep { .. })
        ));
    }
}
