//! The transistor cost model of Maly, *"Cost of Silicon Viewed from VLSI
//! Design Perspective"*, DAC 1994 — the paper's core contribution.
//!
//! The cost of a transistor in a functioning IC is (eq. 1):
//!
//! ```text
//!   C_tr = C_w / (N_ch · N_tr · Y)
//! ```
//!
//! with `C_w` the wafer cost, `N_ch` the dies per wafer, `N_tr` the
//! transistors per die and `Y` the manufacturing yield. This crate wires
//! the substrates together:
//!
//! * [`WaferCostModel`] — eq. (3), the feature-size cost escalation
//!   `C'_w = C₀·X^{k(1−λ)}` (see the calibration note below), and
//!   [`VolumeCostModel`] — eq. (2), overhead amortization over volume;
//! * [`density`] — eq. (5), design density `d_d` mapping transistor
//!   counts to die areas;
//! * [`TransistorCostModel`] — eq. (1) with pluggable dies-per-wafer
//!   method and yield model;
//! * [`scenario`] — the paper's Scenario #1 (eq. 8, Fig 6) and
//!   Scenario #2 (eq. 9, Fig 7) trend studies;
//! * [`product`] — [`product::ProductScenario`], one row of Table 3;
//! * [`surface`] — the `C_tr(λ, N_tr)` cost surface of Fig 8, and
//!   [`adaptive`] — its coarse-to-fine quadtree engine;
//! * [`system`] — multi-partition system cost (Sec. IV.B).
//!
//! # Calibration note (eq. 3 exponent)
//!
//! The DAC-94 scan prints eq. (3) as `C'_w = C₀·X^{0.5(1−λ)}`. That
//! exponent reproduces *none* of the paper's own numbers; with
//! `k = 5 /µm` instead, every fully specified Table 3 row reproduces to
//! three significant figures and Figs 6–7 take their printed shapes. We
//! therefore default to `k = 5` and keep `k` configurable
//! ([`WaferCostModel::with_generation_rate`]) including the as-printed
//! `0.5` for comparison. See DESIGN.md §1 for the full derivation.
//!
//! # Examples
//!
//! Reproduce Table 3 row 1 (3.1 M-transistor BiCMOS µP at 0.8 µm):
//!
//! ```
//! use maly_cost_model::product::ProductScenario;
//! use maly_units::{
//!     Centimeters, DesignDensity, Dollars, Microns, Probability, TransistorCount,
//! };
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let row1 = ProductScenario::builder("BiCMOS µP")
//!     .transistors(TransistorCount::new(3.1e6)?)
//!     .feature_size(Microns::new(0.8)?)
//!     .design_density(DesignDensity::new(150.0)?)
//!     .wafer_radius(Centimeters::new(7.5)?)
//!     .reference_yield(Probability::new(0.9)?)
//!     .reference_wafer_cost(Dollars::new(700.0)?)
//!     .cost_escalation(1.4)?
//!     .build()?;
//! let cost = row1.evaluate()?;
//! let micro = cost.cost_per_transistor.to_micro_dollars().value();
//! assert!((micro - 9.40).abs() < 0.05); // paper prints 9.40 µ$
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adaptive;
pub mod density;
mod error;
pub mod mpw;
pub mod product;
pub mod roadmap;
pub mod scenario;
pub mod sensitivity;
pub mod surface;
pub mod system;
mod transistor;
mod wafer;

pub use error::CostError;
pub use transistor::{CostBreakdown, DiesPerWaferMethod, TransistorCostModel};
pub use wafer::{VolumeCostModel, WaferCostModel};
