//! Error type for cost-model evaluation.

use std::fmt;

/// Error produced when a cost cannot be evaluated.
#[derive(Debug, Clone, PartialEq)]
pub enum CostError {
    /// The die is too large for the wafer: no complete site fits, so the
    /// per-die cost is undefined (eq. 1 divides by `N_ch`).
    NoDiesFit {
        /// Die area that failed to place (cm²).
        die_area_cm2: f64,
        /// Wafer radius (cm).
        wafer_radius_cm: f64,
    },
    /// The yield model returned exactly zero: every die is dead and the
    /// cost per good transistor diverges.
    ZeroYield {
        /// Die area at which the yield vanished (cm²).
        die_area_cm2: f64,
    },
    /// An input quantity was rejected by its unit type.
    InvalidInput(maly_units::UnitError),
    /// A λ-sweep was requested over a degenerate range or step count.
    InvalidSweep {
        /// Lower bound of the requested range (µm).
        lambda_min_um: f64,
        /// Upper bound of the requested range (µm).
        lambda_max_um: f64,
        /// Number of points requested.
        steps: usize,
    },
    /// A required builder field was never supplied.
    MissingField {
        /// Name of the missing field.
        field: &'static str,
    },
}

impl fmt::Display for CostError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CostError::NoDiesFit {
                die_area_cm2,
                wafer_radius_cm,
            } => write!(
                f,
                "no {die_area_cm2} cm² die fits on a {wafer_radius_cm} cm-radius wafer"
            ),
            CostError::ZeroYield { die_area_cm2 } => {
                write!(f, "yield is zero for a {die_area_cm2} cm² die")
            }
            CostError::InvalidInput(e) => write!(f, "invalid input: {e}"),
            CostError::InvalidSweep {
                lambda_min_um,
                lambda_max_um,
                steps,
            } => write!(
                f,
                "invalid λ sweep: {steps} points over [{lambda_min_um}, {lambda_max_um}] µm \
                 (need at least 2 points and an ascending range)"
            ),
            CostError::MissingField { field } => {
                write!(f, "scenario builder field `{field}` was not set")
            }
        }
    }
}

impl std::error::Error for CostError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CostError::InvalidInput(e) => Some(e),
            _ => None,
        }
    }
}

impl From<maly_units::UnitError> for CostError {
    fn from(e: maly_units::UnitError) -> Self {
        CostError::InvalidInput(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = CostError::NoDiesFit {
            die_area_cm2: 300.0,
            wafer_radius_cm: 7.5,
        };
        assert!(e.to_string().contains("300"));
        let e = CostError::MissingField {
            field: "transistors",
        };
        assert!(e.to_string().contains("transistors"));
    }

    #[test]
    fn unit_errors_convert_and_chain() {
        let unit_err = maly_units::Microns::new(-1.0).unwrap_err();
        let e: CostError = unit_err.clone().into();
        assert_eq!(e, CostError::InvalidInput(unit_err));
        assert!(std::error::Error::source(&e).is_some());
    }
}
