//! Wafer cost models: eqs (2) and (3).

use maly_units::{Dollars, Microns, UnitError};

/// Eq. (3): the feature-size escalation of the "pure" wafer cost,
/// `C'_w(λ) = C₀ · X^{k·(1−λ)}` with λ in µm.
///
/// `C₀` is the cost of the reference wafer (1 µm, 6-inch in the paper);
/// `X` is "the rate of the cost increase measured per single technology
/// generation" — reported as 1.6 (Intel), 1.6–2.4 (Mitsubishi), 1.5–2.0
/// (Hitachi), 1.79 (\[12\]), and 1.2–1.4 extracted from Fig 2. The
/// generation rate `k` converts a λ-gap into generation counts; see the
/// crate-level calibration note for why `k = 5 /µm` (not the printed 0.5).
///
/// # Examples
///
/// ```
/// use maly_units::{Dollars, Microns};
/// use maly_cost_model::WaferCostModel;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let model = WaferCostModel::new(Dollars::new(700.0)?, 1.4)?;
/// // One λ-unit below the reference: one full factor of X... at 0.8 µm
/// // the exponent is 5·0.2 = 1, so C_w = 700 · 1.4 = 980 $.
/// let c = model.wafer_cost(Microns::new(0.8)?);
/// assert!((c.value() - 980.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WaferCostModel {
    c0: Dollars,
    x: f64,
    generation_rate: f64,
    reference_lambda_um: f64,
}

impl WaferCostModel {
    /// The calibrated generation rate `k = 5 /µm` (DESIGN.md §1).
    pub const CALIBRATED_GENERATION_RATE: f64 = 5.0;
    /// The exponent coefficient exactly as printed in the DAC-94 scan,
    /// kept for comparison studies; it does not reproduce the paper's
    /// own numbers.
    pub const AS_PRINTED_GENERATION_RATE: f64 = 0.5;

    /// Creates the model with reference cost `C₀` (for a 1 µm wafer) and
    /// escalation factor `X`, using the calibrated generation rate.
    ///
    /// # Errors
    ///
    /// Returns an error unless `X ≥ 1` and finite (the paper's premise is
    /// that wafer costs never fall with shrinking λ).
    pub fn new(c0: Dollars, x: f64) -> Result<Self, UnitError> {
        Self::with_generation_rate(c0, x, Self::CALIBRATED_GENERATION_RATE)
    }

    /// Creates the model from literal constants, validated at compile
    /// time when evaluated in a `const` context — the panic-free way to
    /// declare calibrations like the Fig 6/7/8 parameter sets.
    ///
    /// # Panics
    ///
    /// Panics unless `X ≥ 1` and finite — at compile time when
    /// const-evaluated.
    #[must_use]
    pub const fn const_new(c0: Dollars, x: f64) -> Self {
        assert!(
            x >= 1.0 && x <= f64::MAX,
            "cost escalation factor X must be finite and at least 1"
        );
        Self {
            c0,
            x,
            generation_rate: Self::CALIBRATED_GENERATION_RATE,
            reference_lambda_um: 1.0,
        }
    }

    /// Creates the model with an explicit generation rate `k`
    /// (exponent `k·(1−λ)`).
    ///
    /// # Errors
    ///
    /// Returns an error unless `X ≥ 1` and `k > 0`, both finite.
    pub fn with_generation_rate(c0: Dollars, x: f64, k: f64) -> Result<Self, UnitError> {
        if !x.is_finite() || x < 1.0 {
            return Err(UnitError::OutOfRange {
                quantity: "cost escalation factor X",
                value: x,
                min: 1.0,
                max: f64::INFINITY,
            });
        }
        if !k.is_finite() || k <= 0.0 {
            return Err(UnitError::NotPositive {
                quantity: "generation rate",
                value: k,
            });
        }
        Ok(Self {
            c0,
            x,
            generation_rate: k,
            reference_lambda_um: 1.0,
        })
    }

    /// Reference wafer cost `C₀`.
    #[must_use]
    pub fn reference_cost(&self) -> Dollars {
        self.c0
    }

    /// Escalation factor `X`.
    #[must_use]
    pub fn escalation_factor(&self) -> f64 {
        self.x
    }

    /// Generation rate `k` in the exponent `k·(1−λ)`.
    #[must_use]
    pub fn generation_rate(&self) -> f64 {
        self.generation_rate
    }

    /// Pure manufacturing wafer cost `C'_w(λ)`.
    #[must_use]
    pub fn wafer_cost(&self, lambda: Microns) -> Dollars {
        let exponent = self.generation_rate * (self.reference_lambda_um - lambda.value());
        self.c0 * self.x.powf(exponent)
    }

    /// Ratio of wafer costs between two nodes — handy for shrink studies.
    #[must_use]
    pub fn cost_ratio(&self, from: Microns, to: Microns) -> f64 {
        self.wafer_cost(to) / self.wafer_cost(from)
    }
}

/// Eq. (2): total per-wafer cost under a production volume,
/// `C_w(V) = C'_w + C_over / V`.
///
/// `C_over` is the fixed overhead (R&D, masks, management) amortized over
/// `V` wafers. Scenario assumptions S1.4/S2.4 use `C_over = 0` (high
/// volume, low overhead); ASIC-style products carry \$100 k – \$100 M.
///
/// # Examples
///
/// ```
/// use maly_units::Dollars;
/// use maly_cost_model::VolumeCostModel;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let model = VolumeCostModel::new(Dollars::new(900.0)?, Dollars::new(1.0e6)?);
/// // 10k wafers amortize $1M to $100/wafer.
/// assert!((model.cost_at_volume(10_000)?.value() - 1000.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VolumeCostModel {
    true_cost: Dollars,
    overhead: Dollars,
}

impl VolumeCostModel {
    /// Creates the model from the true per-wafer cost `C'_w` and the
    /// fixed overhead `C_over`.
    #[must_use]
    pub fn new(true_cost: Dollars, overhead: Dollars) -> Self {
        Self {
            true_cost,
            overhead,
        }
    }

    /// True (variable) per-wafer cost `C'_w`.
    #[must_use]
    pub fn true_cost(&self) -> Dollars {
        self.true_cost
    }

    /// Fixed overhead `C_over`.
    #[must_use]
    pub fn overhead(&self) -> Dollars {
        self.overhead
    }

    /// Per-wafer cost at a production volume of `wafers` wafers.
    ///
    /// # Errors
    ///
    /// Returns an error when `wafers` is zero (the overhead cannot be
    /// amortized over nothing).
    pub fn cost_at_volume(&self, wafers: u64) -> Result<Dollars, UnitError> {
        if wafers == 0 {
            return Err(UnitError::NotPositive {
                quantity: "production volume",
                value: 0.0,
            });
        }
        Ok(self.true_cost + self.overhead / wafers as f64)
    }

    /// The volume at which overhead inflates the wafer cost by no more
    /// than `fraction` (e.g. 0.05 for "within 5% of the true cost").
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is not positive and finite.
    #[must_use]
    pub fn volume_for_overhead_fraction(&self, fraction: f64) -> u64 {
        assert!(
            fraction.is_finite() && fraction > 0.0,
            "fraction must be positive, got {fraction}"
        );
        // audit:allow(float-cmp): exact zero is the "no volume yet" sentinel.
        if self.true_cost.value() == 0.0 {
            return u64::MAX;
        }
        (self.overhead.value() / (self.true_cost.value() * fraction)).ceil() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn um(v: f64) -> Microns {
        Microns::new(v).unwrap()
    }

    fn dollars(v: f64) -> Dollars {
        Dollars::new(v).unwrap()
    }

    #[test]
    fn reference_node_costs_c0() {
        let m = WaferCostModel::new(dollars(500.0), 1.8).unwrap();
        assert!((m.wafer_cost(um(1.0)).value() - 500.0).abs() < 1e-9);
    }

    #[test]
    fn table3_wafer_costs() {
        // Row 1: C0=700, X=1.4, λ=0.8 → 980 $.
        let m = WaferCostModel::new(dollars(700.0), 1.4).unwrap();
        assert!((m.wafer_cost(um(0.8)).value() - 980.0).abs() < 1e-9);
        // Row 13: C0=600, X=1.8, λ=0.25 → 600·1.8^3.75 ≈ 5436 $.
        let m = WaferCostModel::new(dollars(600.0), 1.8).unwrap();
        assert!((m.wafer_cost(um(0.25)).value() - 600.0 * 1.8f64.powf(3.75)).abs() < 1e-6);
    }

    #[test]
    fn cost_grows_as_lambda_shrinks() {
        let m = WaferCostModel::new(dollars(500.0), 1.4).unwrap();
        let mut last = 0.0;
        for l in [2.0, 1.5, 1.0, 0.8, 0.5, 0.35, 0.25] {
            let c = m.wafer_cost(um(l)).value();
            assert!(c > last, "cost must grow down the ladder");
            last = c;
        }
    }

    #[test]
    fn larger_x_costs_more_below_reference() {
        let cheap = WaferCostModel::new(dollars(500.0), 1.1).unwrap();
        let dear = WaferCostModel::new(dollars(500.0), 2.4).unwrap();
        assert!(dear.wafer_cost(um(0.5)) > cheap.wafer_cost(um(0.5)));
        // Above the reference node the ordering flips (negative exponent).
        assert!(dear.wafer_cost(um(1.5)) < cheap.wafer_cost(um(1.5)));
    }

    #[test]
    fn as_printed_rate_is_much_flatter() {
        let calibrated = WaferCostModel::new(dollars(500.0), 1.8).unwrap();
        let printed = WaferCostModel::with_generation_rate(
            dollars(500.0),
            1.8,
            WaferCostModel::AS_PRINTED_GENERATION_RATE,
        )
        .unwrap();
        let ratio_cal = calibrated.cost_ratio(um(1.0), um(0.25));
        let ratio_prt = printed.cost_ratio(um(1.0), um(0.25));
        // Calibrated: 1.8^3.75 ≈ 9.06; printed: 1.8^0.375 ≈ 1.25.
        assert!(ratio_cal > 9.0);
        assert!(ratio_prt < 1.3);
    }

    #[test]
    fn x_below_one_is_rejected() {
        assert!(WaferCostModel::new(dollars(500.0), 0.9).is_err());
        assert!(WaferCostModel::new(dollars(500.0), f64::NAN).is_err());
        assert!(WaferCostModel::with_generation_rate(dollars(500.0), 1.4, 0.0).is_err());
    }

    #[test]
    fn volume_amortization() {
        let m = VolumeCostModel::new(dollars(900.0), dollars(1.0e6));
        assert!((m.cost_at_volume(1).unwrap().value() - 1_000_900.0).abs() < 1e-6);
        assert!((m.cost_at_volume(1_000_000).unwrap().value() - 901.0).abs() < 1e-9);
        assert!(m.cost_at_volume(0).is_err());
    }

    #[test]
    fn volume_for_overhead_fraction_is_consistent() {
        let m = VolumeCostModel::new(dollars(900.0), dollars(1.0e6));
        let v = m.volume_for_overhead_fraction(0.05);
        let at_v = m.cost_at_volume(v).unwrap().value();
        assert!(at_v <= 900.0 * 1.05 + 1e-9);
        // One wafer fewer violates the bound.
        let before = m.cost_at_volume(v - 1).unwrap().value();
        assert!(before > 900.0 * 1.05 - 1.0);
    }

    #[test]
    fn zero_overhead_is_volume_independent() {
        let m = VolumeCostModel::new(dollars(900.0), Dollars::zero());
        assert_eq!(
            m.cost_at_volume(1).unwrap(),
            m.cost_at_volume(1_000_000).unwrap()
        );
    }
}
