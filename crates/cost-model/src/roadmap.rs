//! Calendar roadmaps: cost per transistor as a function of *time*.
//!
//! The paper's figures plot cost against feature size; its argument is
//! about time ("will the cost per transistor keep falling?"). This
//! module composes the Fig 1 node cadence λ(year) with Scenarios #1 and
//! #2 to answer directly: under which assumptions does the historical
//! cost decline continue, and under which does it *reverse* — and when.

use maly_tech_trend::fit::{fit_exponential, ExponentialFit};
use maly_units::{Dollars, Microns, UnitError};

use crate::scenario::{Scenario1, Scenario2};

/// One projected year.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoadmapPoint {
    /// Calendar year.
    pub year: f64,
    /// Feature size the cadence predicts for that year.
    pub lambda: Microns,
    /// Scenario #1 (optimistic) cost per transistor.
    pub optimistic: Dollars,
    /// Scenario #2 (realistic) cost per transistor.
    pub realistic: Dollars,
}

/// A cost-vs-calendar projection.
#[derive(Debug, Clone, PartialEq)]
pub struct CostRoadmap {
    cadence: ExponentialFit,
    optimistic: Scenario1,
    realistic: Scenario2,
}

impl CostRoadmap {
    /// Builds a roadmap from a `(year, λ)` node-cadence dataset (e.g.
    /// [`maly_tech_trend::datasets::FEATURE_SIZE_BY_YEAR`]) and the two
    /// scenarios to project.
    ///
    /// # Errors
    ///
    /// Propagates cadence-fit failures (too few points, non-positive λ).
    pub fn new(
        cadence_data: &[(f64, f64)],
        optimistic: Scenario1,
        realistic: Scenario2,
    ) -> Result<Self, UnitError> {
        Ok(Self {
            cadence: fit_exponential(cadence_data)?,
            optimistic,
            realistic,
        })
    }

    /// The paper's default projection: Fig 6's Scenario #1 at X = 1.2 vs
    /// Fig 7's Scenario #2 at X = 2.0, on the historical node cadence.
    ///
    /// # Errors
    ///
    /// Never fails for the built-in constants; kept fallible for parity
    /// with [`Self::new`].
    pub fn paper_default() -> Result<Self, UnitError> {
        Self::new(
            maly_tech_trend::datasets::FEATURE_SIZE_BY_YEAR,
            Scenario1::fig6(1.2)?,
            Scenario2::fig7(2.0)?,
        )
    }

    /// The feature size the cadence predicts for a year.
    ///
    /// # Errors
    ///
    /// Returns an error if the extrapolated λ is no longer a positive
    /// finite number (absurdly far future).
    pub fn lambda_at(&self, year: f64) -> Result<Microns, UnitError> {
        Microns::new(self.cadence.predict(year))
    }

    /// Projects a span of years (inclusive, yearly steps).
    ///
    /// # Errors
    ///
    /// Propagates λ extrapolation failures.
    ///
    /// # Panics
    ///
    /// Panics if `from > to`.
    pub fn project(&self, from: u32, to: u32) -> Result<Vec<RoadmapPoint>, UnitError> {
        assert!(from <= to, "year range reversed: {from}..{to}");
        (from..=to)
            .map(|y| {
                let year = f64::from(y);
                let lambda = self.lambda_at(year)?;
                Ok(RoadmapPoint {
                    year,
                    lambda,
                    optimistic: self.optimistic.cost_per_transistor(lambda),
                    realistic: self.realistic.cost_per_transistor(lambda),
                })
            })
            .collect()
    }

    /// The year Scenario #2's cost bottoms out — after it, continuing to
    /// ride the cadence *raises* the realistic transistor cost. Returns
    /// `None` when the cost is still falling at the end of the window.
    ///
    /// # Errors
    ///
    /// Propagates projection failures.
    pub fn realistic_turning_year(&self, from: u32, to: u32) -> Result<Option<u32>, UnitError> {
        let points = self.project(from, to)?;
        let min = points
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.realistic.value().total_cmp(&b.1.realistic.value()))
            .map(|(i, p)| (i, p.year as u32));
        Ok(min.and_then(|(i, year)| (i + 1 < points.len()).then_some(year)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roadmap() -> CostRoadmap {
        CostRoadmap::paper_default().unwrap()
    }

    #[test]
    fn cadence_interpolates_history() {
        let r = roadmap();
        // Mid-80s: around the 1.2–1.5 µm nodes.
        let lambda = r.lambda_at(1984.0).unwrap();
        assert!((1.0..2.2).contains(&lambda.value()), "{lambda}");
        // Mid-90s: sub-half-micron territory.
        let lambda = r.lambda_at(1995.0).unwrap();
        assert!((0.2..0.6).contains(&lambda.value()), "{lambda}");
    }

    #[test]
    fn optimistic_cost_falls_every_year() {
        let points = roadmap().project(1986, 2000).unwrap();
        for w in points.windows(2) {
            assert!(
                w[1].optimistic.value() < w[0].optimistic.value(),
                "Scenario #1 must keep falling: {} → {}",
                w[0].year,
                w[1].year
            );
        }
    }

    #[test]
    fn realistic_cost_turns_upward_in_the_projection() {
        // The paper's warning, in calendar form: somewhere in the
        // projection the realistic cost stops falling and reverses.
        let r = roadmap();
        let turning = r.realistic_turning_year(1986, 2005).unwrap();
        let year = turning.expect("a turning year must exist in the window");
        assert!(
            (1986..2000).contains(&year),
            "turning year {year} out of band"
        );
        // And after the turn it really rises.
        let points = r.project(year, 2005).unwrap();
        assert!(points.last().unwrap().realistic.value() > points[0].realistic.value());
    }

    #[test]
    fn no_turning_year_when_still_falling() {
        // Scenario #2 with Scenario-#1-grade assumptions keeps falling
        // through the window → None.
        let gentle = CostRoadmap::new(
            maly_tech_trend::datasets::FEATURE_SIZE_BY_YEAR,
            Scenario1::fig6(1.1).unwrap(),
            Scenario2::new(
                Scenario1::fig6(1.1).unwrap(),
                maly_units::Probability::ONE,
                maly_tech_trend::diesize::DieSizeTrend::paper_fit(),
            ),
        )
        .unwrap();
        assert!(gentle.realistic_turning_year(1986, 1999).unwrap().is_none());
    }

    #[test]
    #[should_panic(expected = "range reversed")]
    fn reversed_range_panics() {
        let _ = roadmap().project(2000, 1990);
    }
}
