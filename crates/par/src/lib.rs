//! Deterministic data-parallel execution for the workspace's sweeps.
//!
//! Every design-space exploration in the paper — the Fig 8 cost surface
//! over `(λ × N_tr)`, the Scenario #1/#2 trend sweeps, the set-partition
//! search, and the fab-line Monte Carlo — is embarrassingly parallel:
//! grid cells and candidates are independent. This crate provides the
//! one sanctioned way to exploit that (a workspace lint forbids raw
//! `std::thread::spawn` elsewhere):
//!
//! * [`Executor`] — a scoped-thread pool-of-the-moment with chunked
//!   work distribution ([`Executor::map`], [`Executor::map_indexed`],
//!   [`Executor::grid`], [`Executor::map_reduce`]);
//! * [`par_map`], [`par_grid`], [`par_fold`] — free-function shorthands
//!   using the environment-configured executor.
//!
//! # Determinism contract
//!
//! Results are **bit-identical** to the serial path at every thread
//! count: work items are pure functions of their index, outputs are
//! collected in index order, and reductions fold sequentially over that
//! order. The only thing threads change is wall-clock time. The
//! workspace's golden tests (`cost-optim/tests/determinism.rs`) enforce
//! this for the Fig 8 surface, contour extraction, and the partition
//! search.
//!
//! # Configuration
//!
//! `MALY_PAR_THREADS` sets the thread count (default: the machine's
//! available parallelism; `1` forces the serial fallback, which runs the
//! closures inline on the caller's stack with no thread machinery at
//! all). Code that needs a specific count regardless of the environment
//! — tests, benchmarks — uses [`Executor::with_threads`].
//!
//! # Overhead awareness
//!
//! Spawning a scoped thread costs real time (tens of microseconds), so
//! a parallel sweep over a small grid can be *slower* than the serial
//! loop — the PR-2 baseline recorded 0.42–0.77× "speedups" on a 1-core
//! container. Sweep call sites therefore pass a per-item cost hint
//! through [`Executor::tuned_for`], which applies a calibrated
//! sequential cutoff ([`SEQUENTIAL_CUTOFF_NS`]) and a minimum per-thread
//! grain ([`MIN_PARALLEL_GRAIN_NS`]), and never oversubscribes the
//! machine's cores. Workloads below the cutoff run serial by
//! construction, so the tuned path is never slower than the serial loop
//! beyond measurement noise. Tuning only changes scheduling: results
//! stay bit-identical at every thread count.
//!
//! # Observability
//!
//! The executor reports its scheduling decisions through `maly-obs`
//! diagnostic counters (`par.serial_maps`, `par.parallel_maps`,
//! `par.chunks`, `par.tuned_serial`, `par.tuned_parallel`) and, when
//! `MALY_OBS=1`, a `par.map` span per parallel map with one `par.chunk`
//! child span per worker (fed into the `par.chunk_ns` histogram). Chunk
//! spans carry the submitting thread's span as an explicit parent, so a
//! trace nests worker time under the sweep that submitted it. These are
//! diagnostics — they vary with thread count by design — and when obs
//! is disabled the whole layer costs a handful of relaxed atomics per
//! *map call* (never per item).
//!
//! # Examples
//!
//! ```
//! use maly_par::Executor;
//!
//! let exec = Executor::with_threads(4);
//! let squares = exec.map_indexed(8, |i| i * i);
//! assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
//!
//! // Ordered reduce: fold runs sequentially over index order, so the
//! // result matches the serial loop exactly (first minimum wins).
//! let min = exec.map_reduce(8, |i| (7 - i) % 4, None, |best: Option<usize>, v| {
//!     match best {
//!         Some(b) if b <= v => Some(b),
//!         _ => Some(v),
//!     }
//! });
//! assert_eq!(min, Some(0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::num::NonZeroUsize;

/// Environment variable selecting the executor's thread count.
pub const THREADS_ENV_VAR: &str = "MALY_PAR_THREADS";

/// Maps that ran on the inline serial path (diagnostic: varies with
/// thread count and tuning by design).
static PAR_SERIAL_MAPS: maly_obs::Counter = maly_obs::Counter::diag("par.serial_maps");
/// Maps that took the scoped-thread parallel path.
static PAR_PARALLEL_MAPS: maly_obs::Counter = maly_obs::Counter::diag("par.parallel_maps");
/// Chunks spawned across all parallel maps.
static PAR_CHUNKS: maly_obs::Counter = maly_obs::Counter::diag("par.chunks");
/// [`Executor::tuned_for`] decisions that fell back to serial.
static PAR_TUNED_SERIAL: maly_obs::Counter = maly_obs::Counter::diag("par.tuned_serial");
/// [`Executor::tuned_for`] decisions that kept a parallel executor.
static PAR_TUNED_PARALLEL: maly_obs::Counter = maly_obs::Counter::diag("par.tuned_parallel");
/// Per-chunk wall-clock durations (recorded only when obs is enabled).
static PAR_CHUNK_NS: maly_obs::Histogram = maly_obs::Histogram::new("par.chunk_ns");

/// Workloads estimated below this total serial cost always run serial:
/// a scoped-thread spawn+join round trip costs tens of microseconds, so
/// a sub-200 µs sweep cannot recoup even one extra thread.
pub const SEQUENTIAL_CUTOFF_NS: f64 = 200_000.0;

/// Minimum estimated work per extra thread. Adding a thread that owns
/// less than ~100 µs of work loses more to spawn/join overhead and
/// cache cooling than it gains in concurrency.
pub const MIN_PARALLEL_GRAIN_NS: f64 = 100_000.0;

/// Resolves the thread count from [`THREADS_ENV_VAR`], falling back to
/// the machine's available parallelism. Unparsable or zero values fall
/// back too, so a broken environment can never disable the sweeps.
#[must_use]
pub fn threads_from_env() -> usize {
    match std::env::var(THREADS_ENV_VAR) {
        Ok(raw) => match raw.trim().parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => default_parallelism(),
        },
        Err(_) => default_parallelism(),
    }
}

/// The machine's available parallelism (1 when it cannot be queried).
///
/// Queried once per process and cached: on Linux,
/// `std::thread::available_parallelism` re-reads cgroup quota files on
/// every call — about 10 µs here, enough to make the [`Executor::tuned_for`]
/// cap visibly slow down sub-millisecond sweeps that resolve to the
/// serial path anyway.
#[must_use]
pub fn default_parallelism() -> usize {
    static CACHED: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *CACHED.get_or_init(|| {
        std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
    })
}

/// A deterministic data-parallel executor over scoped threads.
///
/// Work is split into contiguous index chunks, one per thread; each
/// chunk writes into its own disjoint slice of the output, so results
/// come back in index order without any synchronization beyond the
/// scope join. With one thread (or one item) everything runs inline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Executor {
    threads: usize,
}

impl Default for Executor {
    fn default() -> Self {
        Self::from_env()
    }
}

impl Executor {
    /// An executor sized by `MALY_PAR_THREADS` (default: available
    /// parallelism).
    #[must_use]
    pub fn from_env() -> Self {
        Self::with_threads(threads_from_env())
    }

    /// An executor with an explicit thread count (`0` is treated as 1).
    /// Thread counts above the machine's core count are legal — the
    /// determinism tests use them to exercise chunk boundaries.
    #[must_use]
    pub fn with_threads(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
        }
    }

    /// The serial executor: every closure runs inline on the caller's
    /// stack.
    #[must_use]
    pub fn serial() -> Self {
        Self::with_threads(1)
    }

    /// The configured thread count.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Derives an executor tuned for a workload of `n` items whose
    /// estimated serial cost is `ns_per_item` nanoseconds each.
    ///
    /// Three caps apply, in order:
    ///
    /// 1. workloads under [`SEQUENTIAL_CUTOFF_NS`] total run serial;
    /// 2. each extra thread must own at least [`MIN_PARALLEL_GRAIN_NS`]
    ///    of estimated work;
    /// 3. the thread count never exceeds the machine's available
    ///    parallelism — oversubscribing cores never helps a pure-CPU
    ///    sweep and is exactly how a 1-core machine ends up running a
    ///    "parallel" path slower than the serial loop.
    ///
    /// The tuned executor can only have *fewer* threads than `self`;
    /// results are bit-identical either way (see the determinism
    /// contract), so tuning is always safe to apply.
    #[must_use]
    pub fn tuned_for(&self, n: usize, ns_per_item: f64) -> Executor {
        if self.threads <= 1 {
            PAR_TUNED_SERIAL.incr();
            return Executor::serial();
        }
        let total_ns = ns_per_item.max(0.0) * n as f64;
        if !total_ns.is_finite() || total_ns < SEQUENTIAL_CUTOFF_NS {
            PAR_TUNED_SERIAL.incr();
            return Executor::serial();
        }
        // At most one thread per MIN_PARALLEL_GRAIN_NS of work; the
        // cutoff above guarantees by_grain >= 2 is possible only when
        // the workload is worth at least two grains.
        let by_grain = (total_ns / MIN_PARALLEL_GRAIN_NS) as usize;
        let capped = self.threads.min(default_parallelism()).min(by_grain.max(1));
        let tuned = Executor::with_threads(capped);
        if tuned.threads <= 1 {
            PAR_TUNED_SERIAL.incr();
        } else {
            PAR_TUNED_PARALLEL.incr();
        }
        tuned
    }

    /// Applies `f` to every index in `0..n`, returning results in index
    /// order. The parallel and serial paths produce identical vectors.
    pub fn map_indexed<R, F>(&self, n: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        if self.threads <= 1 || n <= 1 {
            PAR_SERIAL_MAPS.incr();
            return (0..n).map(f).collect();
        }
        PAR_PARALLEL_MAPS.incr();
        let chunk = n.div_ceil(self.threads);
        PAR_CHUNKS.add(n.div_ceil(chunk) as u64);
        // The map span lives on the submitting thread; each worker
        // chunk opens a child span with it as an explicit parent, so
        // the trace tree nests cross-thread work under the sweep that
        // submitted it.
        let map_span = maly_obs::span("par.map");
        let parent = map_span.id();
        let mut slots: Vec<Option<R>> = Vec::with_capacity(n);
        slots.resize_with(n, || None);
        std::thread::scope(|scope| {
            let f = &f;
            for (c, out_chunk) in slots.chunks_mut(chunk).enumerate() {
                let base = c * chunk;
                scope.spawn(move || {
                    let _chunk_span =
                        maly_obs::span_child("par.chunk", parent).with_histogram(&PAR_CHUNK_NS);
                    for (k, slot) in out_chunk.iter_mut().enumerate() {
                        *slot = Some(f(base + k));
                    }
                });
            }
        });
        let out: Vec<R> = slots.into_iter().flatten().collect();
        assert_eq!(out.len(), n, "executor lost results");
        out
    }

    /// Applies `f` to every element of `items`, preserving order.
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        self.map_indexed(items.len(), |i| f(&items[i]))
    }

    /// Evaluates `f(row, col)` over a `rows × cols` grid, returning
    /// `out[row][col]`. The grid is flattened into row-major tiles and
    /// chunked across threads, so long and skinny grids still balance.
    pub fn grid<R, F>(&self, rows: usize, cols: usize, f: F) -> Vec<Vec<R>>
    where
        R: Send,
        F: Fn(usize, usize) -> R + Sync,
    {
        if rows == 0 || cols == 0 {
            return (0..rows).map(|_| Vec::new()).collect();
        }
        let flat = self.map_indexed(rows * cols, |id| f(id / cols, id % cols));
        let mut out: Vec<Vec<R>> = Vec::with_capacity(rows);
        let mut it = flat.into_iter();
        for _ in 0..rows {
            out.push(it.by_ref().take(cols).collect());
        }
        out
    }

    /// Runs `f(worker_index)` on `threads()` long-lived workers and
    /// blocks until every worker returns. Worker 0 runs inline on the
    /// caller's stack; workers `1..threads()` run on scoped threads.
    ///
    /// This is the sanctioned way for long-running services (the serve
    /// layer's connection workers) to hold threads: the workspace lint
    /// forbids raw `std::thread::spawn` outside this crate, and scoped
    /// workers cannot leak past their caller. Unlike the map family
    /// this makes no determinism promise — workers coordinate through
    /// whatever shared state the caller gives them — but it also does
    /// no scheduling of its own, so it cannot introduce divergence
    /// either.
    pub fn run_workers<F>(&self, f: F)
    where
        F: Fn(usize) + Sync,
    {
        if self.threads <= 1 {
            f(0);
            return;
        }
        std::thread::scope(|scope| {
            let f = &f;
            for worker in 1..self.threads {
                scope.spawn(move || f(worker));
            }
            f(0);
        });
    }

    /// Ordered reduce: maps `0..n` in parallel, then folds the results
    /// *sequentially in index order*. Because the fold order matches the
    /// serial loop, `fold` with a strict `<` keeps the earliest minimum —
    /// exactly the serial tie-break.
    pub fn map_reduce<T, A, F, G>(&self, n: usize, map: F, init: A, mut fold: G) -> A
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
        G: FnMut(A, T) -> A,
    {
        self.map_indexed(n, map)
            .into_iter()
            .fold(init, |acc, v| fold(acc, v))
    }
}

/// [`Executor::map`] on the environment-configured executor.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    Executor::from_env().map(items, f)
}

/// [`Executor::grid`] on the environment-configured executor.
pub fn par_grid<R, F>(rows: usize, cols: usize, f: F) -> Vec<Vec<R>>
where
    R: Send,
    F: Fn(usize, usize) -> R + Sync,
{
    Executor::from_env().grid(rows, cols, f)
}

/// [`Executor::map_reduce`] on the environment-configured executor.
pub fn par_fold<T, A, F, G>(n: usize, map: F, init: A, fold: G) -> A
where
    T: Send,
    F: Fn(usize) -> T + Sync,
    G: FnMut(A, T) -> A,
{
    Executor::from_env().map_reduce(n, map, init, fold)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn map_indexed_matches_serial_at_every_thread_count() {
        let reference: Vec<u64> = (0..97)
            .map(|i| (i as u64).wrapping_mul(2654435761))
            .collect();
        for threads in [1, 2, 3, 4, 8, 16, 97, 200] {
            let exec = Executor::with_threads(threads);
            let got = exec.map_indexed(97, |i| (i as u64).wrapping_mul(2654435761));
            assert_eq!(got, reference, "threads = {threads}");
        }
    }

    #[test]
    fn map_preserves_element_order() {
        let items: Vec<i32> = (0..50).map(|i| i * 3).collect();
        let exec = Executor::with_threads(7);
        assert_eq!(
            exec.map(&items, |&v| v + 1),
            (0..50).map(|i| i * 3 + 1).collect::<Vec<_>>()
        );
    }

    #[test]
    fn grid_is_row_major_and_exact() {
        for threads in [1, 3, 8] {
            let exec = Executor::with_threads(threads);
            let g = exec.grid(5, 7, |r, c| (r, c));
            assert_eq!(g.len(), 5);
            for (r, row) in g.iter().enumerate() {
                assert_eq!(row.len(), 7);
                for (c, cell) in row.iter().enumerate() {
                    assert_eq!(*cell, (r, c));
                }
            }
        }
    }

    #[test]
    fn grid_handles_empty_dimensions() {
        let exec = Executor::with_threads(4);
        assert_eq!(exec.grid(0, 5, |_, _| 0), Vec::<Vec<i32>>::new());
        let empty_rows = exec.grid(3, 0, |_, _| 0);
        assert_eq!(empty_rows.len(), 3);
        assert!(empty_rows.iter().all(Vec::is_empty));
    }

    #[test]
    fn map_reduce_keeps_the_earliest_minimum() {
        // Values with duplicates: index 2 and 5 both hold the minimum 1;
        // a serial strict-< scan keeps index 2. The ordered reduce must
        // agree at every thread count.
        let values = [4usize, 3, 1, 3, 2, 1, 4];
        for threads in [1, 2, 8] {
            let exec = Executor::with_threads(threads);
            let best = exec.map_reduce(
                values.len(),
                |i| (i, values[i]),
                None,
                |best: Option<(usize, usize)>, (i, v)| match best {
                    Some((_, bv)) if bv <= v => best,
                    _ => Some((i, v)),
                },
            );
            assert_eq!(best, Some((2, 1)), "threads = {threads}");
        }
    }

    #[test]
    fn zero_items_and_single_item_work() {
        let exec = Executor::with_threads(8);
        assert_eq!(exec.map_indexed(0, |i| i), Vec::<usize>::new());
        assert_eq!(exec.map_indexed(1, |i| i + 10), vec![10]);
    }

    #[test]
    fn threads_are_actually_used_when_requested() {
        // Count distinct threads observed by the closures. With 4 threads
        // and 64 items, at least 2 distinct threads must participate.
        let exec = Executor::with_threads(4);
        let ids = exec.map_indexed(64, |_| {
            std::thread::sleep(std::time::Duration::from_micros(200));
            format!("{:?}", std::thread::current().id())
        });
        let mut distinct: Vec<&String> = ids.iter().collect();
        distinct.sort();
        distinct.dedup();
        assert!(
            distinct.len() >= 2,
            "saw {} distinct threads",
            distinct.len()
        );
    }

    #[test]
    fn serial_executor_runs_inline() {
        // The serial path must not spawn: the closure sees the caller's
        // thread id.
        let caller = format!("{:?}", std::thread::current().id());
        let exec = Executor::serial();
        let seen = exec.map_indexed(4, |_| format!("{:?}", std::thread::current().id()));
        assert!(seen.iter().all(|id| *id == caller));
    }

    #[test]
    fn closure_runs_exactly_once_per_index() {
        let calls = AtomicUsize::new(0);
        let exec = Executor::with_threads(6);
        let out = exec.map_indexed(100, |i| {
            calls.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(out.len(), 100);
        assert_eq!(calls.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn env_var_controls_from_env() {
        // Single test owning the env var (other tests use with_threads
        // to avoid process-global races).
        std::env::set_var(THREADS_ENV_VAR, "3");
        assert_eq!(Executor::from_env().threads(), 3);
        std::env::set_var(THREADS_ENV_VAR, "0");
        assert_eq!(Executor::from_env().threads(), default_parallelism());
        std::env::set_var(THREADS_ENV_VAR, "not-a-number");
        assert_eq!(Executor::from_env().threads(), default_parallelism());
        std::env::remove_var(THREADS_ENV_VAR);
        assert_eq!(Executor::from_env().threads(), default_parallelism());
    }

    #[test]
    fn tuned_for_small_workloads_is_serial() {
        let exec = Executor::with_threads(8);
        // 100 items at 100 ns = 10 µs: far below the cutoff.
        assert_eq!(exec.tuned_for(100, 100.0).threads(), 1);
        // Zero-cost hints and empty workloads are serial too.
        assert_eq!(exec.tuned_for(0, 1_000_000.0).threads(), 1);
        assert_eq!(exec.tuned_for(1_000_000, 0.0).threads(), 1);
        // Pathological hints must not panic or go parallel.
        assert_eq!(exec.tuned_for(10, f64::NAN).threads(), 1);
        assert_eq!(exec.tuned_for(10, -5.0).threads(), 1);
    }

    #[test]
    fn tuned_for_never_adds_threads() {
        let serial = Executor::serial();
        assert_eq!(serial.tuned_for(1_000_000, 10_000.0).threads(), 1);
        let four = Executor::with_threads(4);
        assert!(four.tuned_for(1_000_000, 10_000.0).threads() <= 4);
    }

    #[test]
    fn tuned_for_never_oversubscribes_cores() {
        let exec = Executor::with_threads(512);
        let tuned = exec.tuned_for(1_000_000, 100_000.0);
        assert!(
            tuned.threads() <= default_parallelism(),
            "{} threads on {} cores",
            tuned.threads(),
            default_parallelism()
        );
    }

    #[test]
    fn tuned_for_respects_the_grain() {
        // 3 grains of work: at most 3 threads even on a wide machine.
        let exec = Executor::with_threads(64);
        let n = 3_000;
        let tuned = exec.tuned_for(n, MIN_PARALLEL_GRAIN_NS / 1_000.0);
        assert!(tuned.threads() <= 3, "{} threads", tuned.threads());
    }

    #[test]
    fn tuned_for_results_match_untuned() {
        let exec = Executor::with_threads(8);
        let tuned = exec.tuned_for(977, 50.0);
        let want: Vec<u64> = (0..977u64).map(|i| i.wrapping_mul(0x9e3779b9)).collect();
        assert_eq!(
            tuned.map_indexed(977, |i| (i as u64).wrapping_mul(0x9e3779b9)),
            want
        );
    }

    #[test]
    fn run_workers_runs_every_index_and_worker_zero_inline() {
        let caller = format!("{:?}", std::thread::current().id());
        let seen: Vec<std::sync::Mutex<Option<String>>> =
            (0..4).map(|_| std::sync::Mutex::new(None)).collect();
        Executor::with_threads(4).run_workers(|w| {
            *seen[w].lock().unwrap() = Some(format!("{:?}", std::thread::current().id()));
        });
        let ids: Vec<String> = seen
            .iter()
            .map(|m| m.lock().unwrap().clone().expect("every worker ran"))
            .collect();
        assert_eq!(ids[0], caller, "worker 0 runs on the caller");
        assert!(ids[1..].iter().all(|id| *id != caller));
    }

    #[test]
    fn free_functions_match_methods() {
        let items = [1.0f64, 2.0, 3.0];
        assert_eq!(par_map(&items, |v| v * 2.0), vec![2.0, 4.0, 6.0]);
        let g = par_grid(2, 2, |r, c| r * 10 + c);
        assert_eq!(g, vec![vec![0, 1], vec![10, 11]]);
        let sum = par_fold(5, |i| i, 0usize, |a, v| a + v);
        assert_eq!(sum, 10);
    }
}
