//! `xtask bench-check` — diffs a freshly measured bench baseline
//! against the committed `BENCH_sweeps.json` and fails on per-group
//! median regressions.
//!
//! The comparison is throttle-aware: shared CI boxes (and laptops) can
//! run uniformly slower than the machine that recorded the baseline,
//! which says nothing about the code. Each benchmark's
//! `candidate / baseline` ratio is therefore normalized by the
//! workspace-wide **median** ratio (the machine-speed factor) before
//! the per-group verdict; a genuine regression moves a group away from
//! the rest of the workspace, a throttled run moves everything
//! together. Absolute work counters and the serial-vs-parallel
//! speedups recorded next to the medians stay un-normalized guards.
//!
//! Work counters (`"counters"` records) are compared **exactly**: they
//! count model evaluations, not nanoseconds, so they are deterministic
//! for a given configuration and any drift is an algorithmic change
//! that must be acknowledged by refreshing the baseline.
//!
//! Baselines that carry `p99_ns` next to their medians (the serve-side
//! `BENCH_serve.json` recorded by `maly-loadgen`) additionally gate
//! tail latency: the p99 ratio is normalized by the same machine-speed
//! factor as the medians but allowed a far looser drift bound
//! ([`MAX_P99_REGRESSION`]), because tail percentiles at loadgen
//! sample counts are scheduler noise several-× wide — the tail gate
//! catches catastrophic stalls, the median gate catches regressions.
//!
//! The parallel and fusion speedup gates apply only to gated groups the
//! **baseline** actually covers: a serve-latency baseline knows nothing
//! about the sweep benchmarks, so checking a candidate against it must
//! not demand sweep speedup records.
//!
//! The parser is deliberately narrow: it reads the line-per-record JSON
//! that `maly-bench`'s harness writes (see `render_json` there), not
//! arbitrary JSON — the workspace builds offline with no external
//! crates.

use std::fmt::Write as _;

/// A benchmark group's median may drift up to this fraction above the
/// baseline (after machine-speed normalization) before `bench-check`
/// fails.
pub const MAX_MEDIAN_REGRESSION: f64 = 0.15;

/// A benchmark group's p99 tail latency may drift up to this fraction
/// above the baseline (after machine-speed normalization) before
/// `bench-check` fails. Deliberately a catastrophe detector, not a
/// fine-grained ratchet: at loadgen sample counts on a small CI box the
/// p99 is scheduler jitter several-× wide run to run (identical-config
/// reruns were measured drifting past 4×), while the bug class this
/// gate exists for — delayed-ACK stalls, lock convoys, queueing
/// collapse — lands tails 15×+ above baseline. Medians, which are
/// stable, carry the fine-grained 15 % duty.
pub const MAX_P99_REGRESSION: f64 = 7.0;

/// Minimum serial→parallel speedup each parallel-gated group must
/// demonstrate when the candidate run's machine has more than one
/// core. On a single-core machine (`available_parallelism == 1`) the
/// gate is inactive — a speedup of ≈1 there is physics, not a
/// regression.
pub const MIN_PARALLEL_SPEEDUP: f64 = 1.1;

/// Groups whose parallel path must actually pay off on multi-core
/// machines. The gate keys on the **best** eligible speedup record per
/// group (names containing `_vs_` compare engines, not thread counts,
/// and are excluded): small workloads may legitimately stay on the
/// tuned executor's serial path, but each of these groups carries at
/// least one workload big enough to scale.
pub const PARALLEL_GATED_GROUPS: &[&str] = &["sweeps/fig8_surface", "sweeps/contours", "sweeps/mc"];

/// Minimum fused-over-unfused batch speedup the evaluation planner must
/// demonstrate on its acceptance batch. Unlike the parallel gate this
/// is active on every machine: the comparison runs both engines at one
/// thread, so the ratio measures eliminated work, not scheduling.
pub const MIN_FUSION_SPEEDUP: f64 = 1.5;

/// Groups whose `_vs_` engine-comparison records feed the fusion gate.
/// The gate keys on the **best** `_vs_` record per group (the inverse
/// of the parallel gate's eligibility: here engines are exactly what is
/// compared); a candidate run missing the records fails, so fusion
/// coverage cannot silently disappear.
pub const FUSION_GATED_GROUPS: &[&str] = &["sweeps/fused_batch"];

/// One `benches` record from a harness baseline file.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// Benchmark group (e.g. `sweeps/fig8_surface`).
    pub group: String,
    /// Benchmark name within the group.
    pub name: String,
    /// Median per-iteration latency in nanoseconds.
    pub median_ns: f64,
    /// 99th-percentile latency in nanoseconds, when the record carries
    /// one (loadgen latency records do; harness iteration records
    /// don't).
    pub p99_ns: Option<f64>,
}

/// One `counters` record from a harness baseline file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterRecord {
    /// Benchmark group the counter was recorded under.
    pub group: String,
    /// Counter name (e.g. `surface_56x48/eq1_mesh_evals`).
    pub name: String,
    /// Absolute count.
    pub value: u64,
}

/// A work counter whose candidate value differs from the baseline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterDiff {
    /// Benchmark group.
    pub group: String,
    /// Counter name.
    pub name: String,
    /// Committed baseline value.
    pub baseline: u64,
    /// Candidate value, or `None` when the candidate run dropped the
    /// counter entirely.
    pub candidate: Option<u64>,
}

/// One `speedups` record from a harness baseline file.
#[derive(Debug, Clone, PartialEq)]
pub struct SpeedupRecord {
    /// Benchmark group the speedup was recorded under.
    pub group: String,
    /// Comparison name (e.g. `surface_112x96`).
    pub name: String,
    /// `serial_ns / parallel_ns` as recorded by the harness.
    pub speedup: f64,
}

/// Parallel-speedup verdict for one gated group.
#[derive(Debug, Clone, PartialEq)]
pub struct SpeedupVerdict {
    /// The gated group.
    pub group: String,
    /// Best eligible `(name, speedup)` in the candidate run, or `None`
    /// when the group recorded no eligible speedup at all.
    pub best: Option<(String, f64)>,
}

/// Per-group comparison outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupVerdict {
    /// Benchmark group.
    pub group: String,
    /// Median normalized `candidate / baseline` ratio over the group's
    /// benchmarks (1.0 = exactly the baseline, adjusted for machine
    /// speed).
    pub normalized_ratio: f64,
    /// Median normalized p99 `candidate / baseline` ratio over the
    /// group's records that carry `p99_ns`, or `None` when none do.
    pub p99_ratio: Option<f64>,
    /// Number of benchmarks compared in this group.
    pub benches: usize,
}

/// The full bench-check result.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Workspace-wide median `candidate / baseline` ratio attributed to
    /// machine speed.
    pub machine_factor: f64,
    /// Per-group verdicts, sorted by group name.
    pub groups: Vec<GroupVerdict>,
    /// Work counters compared exactly against the baseline.
    pub counters: usize,
    /// Counters whose values drifted (or vanished) in the candidate.
    pub counter_diffs: Vec<CounterDiff>,
    /// `available_parallelism` reported by the candidate run (1 when
    /// the file predates the field).
    pub cores: u64,
    /// Parallel-speedup verdicts for [`PARALLEL_GATED_GROUPS`], from
    /// the candidate run.
    pub speedup_gate: Vec<SpeedupVerdict>,
    /// Fusion-speedup verdicts for [`FUSION_GATED_GROUPS`], from the
    /// candidate run (active on every core count).
    pub fusion_gate: Vec<SpeedupVerdict>,
}

impl BenchReport {
    /// True when every group stays within [`MAX_MEDIAN_REGRESSION`],
    /// every baseline work counter matches exactly, and (on a
    /// multi-core candidate machine) every gated group demonstrates at
    /// least [`MIN_PARALLEL_SPEEDUP`].
    #[must_use]
    pub fn is_ok(&self) -> bool {
        self.counter_diffs.is_empty()
            && self.speedup_failures().is_empty()
            && self.fusion_failures().is_empty()
            && self.groups.iter().all(|g| {
                g.normalized_ratio <= 1.0 + MAX_MEDIAN_REGRESSION
                    && g.p99_ratio.map_or(true, |r| r <= 1.0 + MAX_P99_REGRESSION)
            })
    }

    /// Gated groups whose best eligible speedup falls short of
    /// [`MIN_PARALLEL_SPEEDUP`] (or that recorded none). Empty on a
    /// single-core candidate, where the gate is inactive.
    #[must_use]
    pub fn speedup_failures(&self) -> Vec<&SpeedupVerdict> {
        if self.cores <= 1 {
            return Vec::new();
        }
        self.speedup_gate
            .iter()
            .filter(|v| {
                !v.best
                    .as_ref()
                    .is_some_and(|&(_, s)| s >= MIN_PARALLEL_SPEEDUP)
            })
            .collect()
    }

    /// Fusion-gated groups whose best `_vs_` speedup falls short of
    /// [`MIN_FUSION_SPEEDUP`] (or that recorded none). Active on every
    /// machine: both engines run at one thread.
    #[must_use]
    pub fn fusion_failures(&self) -> Vec<&SpeedupVerdict> {
        self.fusion_gate
            .iter()
            .filter(|v| {
                !v.best
                    .as_ref()
                    .is_some_and(|&(_, s)| s >= MIN_FUSION_SPEEDUP)
            })
            .collect()
    }

    /// Renders the human-readable verdict table.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "bench-check: machine-speed factor {:.3}× (workspace median)",
            self.machine_factor
        );
        for g in &self.groups {
            let marker = if g.normalized_ratio > 1.0 + MAX_MEDIAN_REGRESSION {
                "  REGRESSED"
            } else {
                ""
            };
            let _ = writeln!(
                out,
                "  {:<28} {:>7.3}x over {} bench(es){marker}",
                g.group, g.normalized_ratio, g.benches
            );
            if let Some(p99) = g.p99_ratio {
                let marker = if p99 > 1.0 + MAX_P99_REGRESSION {
                    "  TAIL REGRESSED"
                } else {
                    ""
                };
                let _ = writeln!(out, "  {:<28} {p99:>7.3}x p99 tail{marker}", g.group);
            }
        }
        if self.counter_diffs.is_empty() {
            let _ = writeln!(
                out,
                "  {} work counter(s) match the baseline",
                self.counters
            );
        } else {
            for d in &self.counter_diffs {
                let cand = d
                    .candidate
                    .map_or_else(|| "missing".to_string(), |v| v.to_string());
                let _ = writeln!(
                    out,
                    "  counter {} / {}: baseline {} != candidate {cand}  DRIFTED",
                    d.group, d.name, d.baseline
                );
            }
        }
        if self.cores <= 1 {
            let _ = writeln!(
                out,
                "  parallel gate inactive (candidate ran on {} core)",
                self.cores.max(1)
            );
        } else {
            for v in &self.speedup_gate {
                match &v.best {
                    Some((name, s)) => {
                        let marker = if *s >= MIN_PARALLEL_SPEEDUP {
                            ""
                        } else {
                            "  TOO SLOW"
                        };
                        let _ = writeln!(
                            out,
                            "  parallel {:<21} {s:>7.2}x best ({name}){marker}",
                            v.group
                        );
                    }
                    None => {
                        let _ = writeln!(
                            out,
                            "  parallel {:<21} no eligible speedup record  MISSING",
                            v.group
                        );
                    }
                }
            }
        }
        for v in &self.fusion_gate {
            match &v.best {
                Some((name, s)) => {
                    let marker = if *s >= MIN_FUSION_SPEEDUP {
                        ""
                    } else {
                        "  TOO SLOW"
                    };
                    let _ = writeln!(
                        out,
                        "  fusion   {:<21} {s:>7.2}x best ({name}){marker}",
                        v.group
                    );
                }
                None => {
                    let _ = writeln!(
                        out,
                        "  fusion   {:<21} no _vs_ speedup record  MISSING",
                        v.group
                    );
                }
            }
        }
        if self.is_ok() {
            let _ = writeln!(
                out,
                "bench-check: OK — no group regressed beyond {:.0}%",
                MAX_MEDIAN_REGRESSION * 100.0
            );
        } else {
            let _ = writeln!(
                out,
                "bench-check: FAIL — group median beyond {:.0}% of baseline, \
                 p99 tail beyond {:.0}%, work counters drifted, a parallel \
                 speedup fell below {MIN_PARALLEL_SPEEDUP}x, or a fusion \
                 speedup fell below {MIN_FUSION_SPEEDUP}x",
                MAX_MEDIAN_REGRESSION * 100.0,
                MAX_P99_REGRESSION * 100.0
            );
        }
        out
    }
}

/// Extracts a string field (`"key": "value"`) from one record line.
fn str_field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let tag = format!("\"{key}\": \"");
    let start = line.find(&tag)? + tag.len();
    let end = line[start..].find('"')?;
    Some(&line[start..start + end])
}

/// Extracts a numeric field (`"key": 123.4`) from one record line.
fn num_field(line: &str, key: &str) -> Option<f64> {
    let tag = format!("\"{key}\": ");
    let start = line.find(&tag)? + tag.len();
    let digits: String = line[start..]
        .chars()
        .take_while(|c| c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E'))
        .collect();
    digits.parse().ok()
}

/// Parses the `benches` records out of a harness baseline file.
///
/// # Errors
///
/// Returns a message when the text holds no parsable bench records —
/// an empty baseline would make every comparison vacuously pass.
pub fn parse_baseline(text: &str) -> Result<Vec<BenchRecord>, String> {
    let mut out = Vec::new();
    for line in text.lines() {
        let (Some(group), Some(name), Some(median_ns)) = (
            str_field(line, "group"),
            str_field(line, "name"),
            num_field(line, "median_ns"),
        ) else {
            continue;
        };
        out.push(BenchRecord {
            group: group.to_string(),
            name: name.to_string(),
            median_ns,
            p99_ns: num_field(line, "p99_ns"),
        });
    }
    if out.is_empty() {
        return Err("no bench records found (is this a harness --json baseline?)".to_string());
    }
    Ok(out)
}

/// Parses the `counters` records out of a harness baseline file. An
/// empty list is fine — counters are an optional layer over the
/// timings.
#[must_use]
pub fn parse_counters(text: &str) -> Vec<CounterRecord> {
    let mut out = Vec::new();
    for line in text.lines() {
        let (Some(group), Some(name), Some(value)) = (
            str_field(line, "group"),
            str_field(line, "name"),
            num_field(line, "value"),
        ) else {
            continue;
        };
        out.push(CounterRecord {
            group: group.to_string(),
            name: name.to_string(),
            value: value as u64,
        });
    }
    out
}

/// Parses the `speedups` records out of a harness baseline file. An
/// empty list is fine for pre-gate baselines; the gate then reports the
/// gated groups as missing on multi-core machines.
#[must_use]
pub fn parse_speedups(text: &str) -> Vec<SpeedupRecord> {
    let mut out = Vec::new();
    for line in text.lines() {
        let (Some(group), Some(name), Some(speedup)) = (
            str_field(line, "group"),
            str_field(line, "name"),
            num_field(line, "speedup"),
        ) else {
            continue;
        };
        out.push(SpeedupRecord {
            group: group.to_string(),
            name: name.to_string(),
            speedup,
        });
    }
    out
}

/// Reads the top-level `available_parallelism` field of a harness
/// baseline file; `None` when the file predates it.
#[must_use]
pub fn parse_parallelism(text: &str) -> Option<u64> {
    text.lines()
        .find(|l| l.contains("\"available_parallelism\""))
        .and_then(|l| num_field(l, "available_parallelism"))
        .map(|v| v as u64)
}

/// The per-group parallel-gate verdicts over a candidate run's speedup
/// records: for each of [`PARALLEL_GATED_GROUPS`], the best recorded
/// serial→parallel ratio, excluding `_vs_` comparisons (which compare
/// engines, not thread counts).
#[must_use]
pub fn speedup_verdicts(candidate: &[SpeedupRecord]) -> Vec<SpeedupVerdict> {
    PARALLEL_GATED_GROUPS
        .iter()
        .map(|&group| {
            let best = candidate
                .iter()
                .filter(|s| s.group == group && !s.name.contains("_vs_"))
                .max_by(|a, b| a.speedup.total_cmp(&b.speedup))
                .map(|s| (s.name.clone(), s.speedup));
            SpeedupVerdict {
                group: group.to_string(),
                best,
            }
        })
        .collect()
}

/// The per-group fusion-gate verdicts over a candidate run's speedup
/// records: for each of [`FUSION_GATED_GROUPS`], the best recorded
/// `_vs_` engine comparison (the fused path against its unfused
/// reference).
#[must_use]
pub fn fusion_verdicts(candidate: &[SpeedupRecord]) -> Vec<SpeedupVerdict> {
    FUSION_GATED_GROUPS
        .iter()
        .map(|&group| {
            let best = candidate
                .iter()
                .filter(|s| s.group == group && s.name.contains("_vs_"))
                .max_by(|a, b| a.speedup.total_cmp(&b.speedup))
                .map(|s| (s.name.clone(), s.speedup));
            SpeedupVerdict {
                group: group.to_string(),
                best,
            }
        })
        .collect()
}

/// Exact comparison of baseline work counters against the candidate.
/// Counters the candidate adds are ignored (they enter the contract at
/// the next baseline refresh); counters it drops or changes are diffs.
#[must_use]
pub fn diff_counters(baseline: &[CounterRecord], candidate: &[CounterRecord]) -> Vec<CounterDiff> {
    baseline
        .iter()
        .filter_map(|b| {
            let cand = candidate
                .iter()
                .find(|c| c.group == b.group && c.name == b.name)
                .map(|c| c.value);
            if cand == Some(b.value) {
                None
            } else {
                Some(CounterDiff {
                    group: b.group.clone(),
                    name: b.name.clone(),
                    baseline: b.value,
                    candidate: cand,
                })
            }
        })
        .collect()
}

/// Median of a non-empty slice (sorted in place, NaN-total order).
/// Even-length slices average the middle pair: serve-latency groups
/// carry exactly two records each, and taking the upper element there
/// would bias every group verdict toward its noisier record.
fn median(values: &mut [f64]) -> f64 {
    values.sort_by(f64::total_cmp);
    let mid = values.len() / 2;
    if values.len() % 2 == 0 {
        (values[mid - 1] + values[mid]) / 2.0
    } else {
        values[mid]
    }
}

/// Compares a candidate run against the committed baseline.
///
/// # Errors
///
/// Returns a message when a baseline benchmark is missing from the
/// candidate (coverage must never silently shrink) or a baseline
/// median is non-positive.
pub fn compare(baseline: &[BenchRecord], candidate: &[BenchRecord]) -> Result<BenchReport, String> {
    let mut ratios: Vec<(String, f64)> = Vec::with_capacity(baseline.len());
    let mut p99_ratios: Vec<(String, f64)> = Vec::new();
    for b in baseline {
        let Some(c) = candidate
            .iter()
            .find(|c| c.group == b.group && c.name == b.name)
        else {
            return Err(format!(
                "candidate run is missing `{}` / `{}` — bench coverage must not shrink",
                b.group, b.name
            ));
        };
        if b.median_ns <= 0.0 {
            return Err(format!(
                "baseline median for `{}` / `{}` is not positive",
                b.group, b.name
            ));
        }
        ratios.push((b.group.clone(), c.median_ns / b.median_ns));
        if let Some(bp) = b.p99_ns {
            if bp <= 0.0 {
                return Err(format!(
                    "baseline p99 for `{}` / `{}` is not positive",
                    b.group, b.name
                ));
            }
            let Some(cp) = c.p99_ns else {
                return Err(format!(
                    "candidate run dropped `p99_ns` for `{}` / `{}` — tail \
                     coverage must not shrink",
                    b.group, b.name
                ));
            };
            p99_ratios.push((b.group.clone(), cp / bp));
        }
    }
    let mut all: Vec<f64> = ratios.iter().map(|(_, r)| *r).collect();
    let machine_factor = median(&mut all).max(f64::MIN_POSITIVE);

    let mut groups: Vec<String> = ratios.iter().map(|(g, _)| g.clone()).collect();
    groups.sort();
    groups.dedup();
    let verdicts = groups
        .into_iter()
        .map(|group| {
            let mut rs: Vec<f64> = ratios
                .iter()
                .filter(|(g, _)| *g == group)
                .map(|(_, r)| r / machine_factor)
                .collect();
            let benches = rs.len();
            let mut tails: Vec<f64> = p99_ratios
                .iter()
                .filter(|(g, _)| *g == group)
                .map(|(_, r)| r / machine_factor)
                .collect();
            GroupVerdict {
                group,
                normalized_ratio: median(&mut rs),
                p99_ratio: if tails.is_empty() {
                    None
                } else {
                    Some(median(&mut tails))
                },
                benches,
            }
        })
        .collect();
    Ok(BenchReport {
        machine_factor,
        groups: verdicts,
        counters: 0,
        counter_diffs: Vec::new(),
        cores: 1,
        speedup_gate: Vec::new(),
        fusion_gate: Vec::new(),
    })
}

/// File-level entry point: reads both baselines and compares them.
///
/// # Errors
///
/// Returns a message on unreadable files, unparsable baselines, or
/// shrunk coverage; the caller turns the message into a non-zero exit.
pub fn run_bench_check(baseline_path: &str, candidate_path: &str) -> Result<BenchReport, String> {
    let baseline = std::fs::read_to_string(baseline_path)
        .map_err(|e| format!("reading {baseline_path}: {e}"))?;
    let candidate = std::fs::read_to_string(candidate_path)
        .map_err(|e| format!("reading {candidate_path}: {e}"))?;
    let base_records = parse_baseline(&baseline)?;
    let mut report = compare(&base_records, &parse_baseline(&candidate)?)?;
    let base_counters = parse_counters(&baseline);
    report.counters = base_counters.len();
    report.counter_diffs = diff_counters(&base_counters, &parse_counters(&candidate));
    report.cores = parse_parallelism(&candidate).unwrap_or(1);
    // Speedup gates only bind where the baseline has coverage: checking
    // a serve-latency baseline must not demand sweep speedup records.
    let covered = |group: &str| base_records.iter().any(|b| b.group == group);
    let cand_speedups = parse_speedups(&candidate);
    report.speedup_gate = speedup_verdicts(&cand_speedups)
        .into_iter()
        .filter(|v| covered(&v.group))
        .collect();
    report.fusion_gate = fusion_verdicts(&cand_speedups)
        .into_iter()
        .filter(|v| covered(&v.group))
        .collect();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(group: &str, name: &str, median_ns: f64) -> BenchRecord {
        BenchRecord {
            group: group.to_string(),
            name: name.to_string(),
            median_ns,
            p99_ns: None,
        }
    }

    fn tail_record(group: &str, name: &str, median_ns: f64, p99_ns: f64) -> BenchRecord {
        BenchRecord {
            p99_ns: Some(p99_ns),
            ..record(group, name, median_ns)
        }
    }

    #[test]
    fn parses_harness_json_lines() {
        let text = concat!(
            "{\n  \"benches\": [\n",
            "    {\"group\": \"sweeps/a\", \"name\": \"x/serial\", \"median_ns\": 1200.5, \"iters\": 64},\n",
            "    {\"group\": \"sweeps/a\", \"name\": \"x/parallel\", \"median_ns\": 800.0, \"iters\": 64}\n",
            "  ],\n  \"speedups\": []\n}\n",
        );
        let records = parse_baseline(text).expect("parses");
        assert_eq!(records.len(), 2);
        assert_eq!(records[0], record("sweeps/a", "x/serial", 1200.5));
    }

    #[test]
    fn uniform_slowdown_is_attributed_to_the_machine() {
        let base = vec![record("g1", "a", 100.0), record("g2", "b", 200.0)];
        let cand = vec![record("g1", "a", 180.0), record("g2", "b", 360.0)];
        let report = compare(&base, &cand).expect("compares");
        assert!(report.is_ok(), "{}", report.render());
        assert!((report.machine_factor - 1.8).abs() < 1e-12);
    }

    #[test]
    fn single_group_regression_fails() {
        let base = vec![
            record("g1", "a", 100.0),
            record("g2", "b", 100.0),
            record("g3", "c", 100.0),
        ];
        // g3 runs 2× slower while the rest of the workspace holds, so
        // the machine factor stays ~1 and g3 is a real regression.
        let cand = vec![
            record("g1", "a", 101.0),
            record("g2", "b", 99.0),
            record("g3", "c", 200.0),
        ];
        let report = compare(&base, &cand).expect("compares");
        assert!(!report.is_ok(), "{}", report.render());
    }

    #[test]
    fn parses_p99_when_the_record_carries_one() {
        let text = concat!(
            "    {\"group\": \"serve/single\", \"name\": \"product\", \"median_ns\": 1200.5, ",
            "\"p90_ns\": 2000.0, \"p99_ns\": 3500.2, \"p999_ns\": 4000.0, \"samples\": 93}\n",
        );
        let records = parse_baseline(text).expect("parses");
        assert_eq!(records[0].p99_ns, Some(3500.2));
        assert_eq!(records[0].median_ns, 1200.5);
    }

    #[test]
    fn p99_tail_regression_fails_while_medians_hold() {
        let base = vec![
            tail_record("g1", "a", 100.0, 200.0),
            record("g2", "b", 100.0),
            record("g3", "c", 100.0),
        ];
        // Medians all hold, so the machine factor is 1; only the tail
        // of g1 blows past the catastrophe allowance (a delayed-ACK
        // style stall: tail an order of magnitude out, median intact).
        let cand = vec![
            tail_record("g1", "a", 100.0, 1800.0),
            record("g2", "b", 100.0),
            record("g3", "c", 100.0),
        ];
        let report = compare(&base, &cand).expect("compares");
        assert_eq!(report.groups[0].p99_ratio, Some(9.0));
        assert!(!report.is_ok(), "{}", report.render());
        assert!(report.render().contains("TAIL REGRESSED"));
        // Scheduler-jitter-scale tail drift passes.
        let cand = vec![
            tail_record("g1", "a", 100.0, 400.0),
            record("g2", "b", 100.0),
            record("g3", "c", 100.0),
        ];
        let report = compare(&base, &cand).expect("compares");
        assert!(report.is_ok(), "{}", report.render());
    }

    #[test]
    fn p99_tail_is_machine_speed_normalized() {
        // Everything — medians and tails — runs 2× slower: a throttled
        // machine, not a regression.
        let base = vec![
            tail_record("g1", "a", 100.0, 200.0),
            tail_record("g2", "b", 100.0, 300.0),
        ];
        let cand = vec![
            tail_record("g1", "a", 200.0, 400.0),
            tail_record("g2", "b", 200.0, 600.0),
        ];
        let report = compare(&base, &cand).expect("compares");
        assert!(report.is_ok(), "{}", report.render());
        assert_eq!(report.groups[0].p99_ratio, Some(1.0));
    }

    #[test]
    fn dropping_p99_coverage_is_an_error() {
        let base = vec![tail_record("g1", "a", 100.0, 200.0)];
        let cand = vec![record("g1", "a", 100.0)];
        let err = compare(&base, &cand).expect_err("must refuse");
        assert!(err.contains("p99_ns"), "{err}");
    }

    #[test]
    fn missing_candidate_bench_is_an_error() {
        let base = vec![record("g1", "a", 100.0)];
        assert!(compare(&base, &[]).is_err());
    }

    #[test]
    fn empty_baseline_is_an_error() {
        assert!(parse_baseline("{}\n").is_err());
    }

    fn counter(group: &str, name: &str, value: u64) -> CounterRecord {
        CounterRecord {
            group: group.to_string(),
            name: name.to_string(),
            value,
        }
    }

    #[test]
    fn parses_counter_records() {
        let text = concat!(
            "  \"counters\": [\n",
            "    {\"group\": \"obs/work\", \"name\": \"obs/adaptive.mesh_evals\", \"value\": 518}\n",
            "  ]\n",
        );
        assert_eq!(
            parse_counters(text),
            vec![counter("obs/work", "obs/adaptive.mesh_evals", 518)]
        );
        // Bench lines (median_ns, no value) are not counters.
        assert!(parse_counters(
            "{\"group\": \"g\", \"name\": \"n\", \"median_ns\": 10.0, \"iters\": 4}\n"
        )
        .is_empty());
    }

    #[test]
    fn counter_drift_and_disappearance_are_diffs() {
        let base = vec![counter("g", "a", 10), counter("g", "b", 20)];
        let same = diff_counters(&base, &base);
        assert!(same.is_empty());
        let drifted = diff_counters(&base, &[counter("g", "a", 11)]);
        assert_eq!(drifted.len(), 2);
        assert_eq!(drifted[0].candidate, Some(11));
        assert_eq!(drifted[1].candidate, None);
        // Extra candidate counters are not diffs.
        let extra = diff_counters(
            &base,
            &[
                counter("g", "a", 10),
                counter("g", "b", 20),
                counter("g", "c", 1),
            ],
        );
        assert!(extra.is_empty());
    }

    fn speedup(group: &str, name: &str, ratio: f64) -> SpeedupRecord {
        SpeedupRecord {
            group: group.to_string(),
            name: name.to_string(),
            speedup: ratio,
        }
    }

    /// All three gated groups with the given ratio on their eligible
    /// record, plus a `_vs_` decoy that must be ignored.
    fn gated_speedups(ratio: f64) -> Vec<SpeedupRecord> {
        vec![
            speedup("sweeps/fig8_surface", "surface_112x96", ratio),
            speedup(
                "sweeps/fig8_surface",
                "surface_56x48_dense_vs_adaptive",
                9.0,
            ),
            speedup("sweeps/contours", "contours_5_levels", ratio),
            speedup("sweeps/mc", "mc_yield_64", ratio),
        ]
    }

    #[test]
    fn parses_speedup_records_and_parallelism() {
        let text = concat!(
            "{\n  \"available_parallelism\": 8,\n",
            "  \"speedups\": [\n",
            "    {\"group\": \"sweeps/mc\", \"name\": \"mc_yield_64\", \"serial_ns\": 200.0, ",
            "\"parallel_ns\": 100.0, \"speedup\": 2.000}\n",
            "  ]\n}\n",
        );
        assert_eq!(parse_parallelism(text), Some(8));
        assert_eq!(
            parse_speedups(text),
            vec![speedup("sweeps/mc", "mc_yield_64", 2.0)]
        );
    }

    #[test]
    fn multi_core_candidate_below_gate_fails() {
        let base = vec![record("g1", "a", 100.0)];
        let mut report = compare(&base, &base).expect("compares");
        report.cores = 8;
        report.speedup_gate = speedup_verdicts(&gated_speedups(1.05));
        assert_eq!(report.speedup_failures().len(), 3);
        assert!(!report.is_ok(), "{}", report.render());
        assert!(report.render().contains("TOO SLOW"));
    }

    #[test]
    fn multi_core_candidate_above_gate_passes() {
        let base = vec![record("g1", "a", 100.0)];
        let mut report = compare(&base, &base).expect("compares");
        report.cores = 8;
        report.speedup_gate = speedup_verdicts(&gated_speedups(1.5));
        assert!(report.speedup_failures().is_empty());
        assert!(report.is_ok(), "{}", report.render());
    }

    #[test]
    fn vs_comparisons_do_not_satisfy_the_gate() {
        // Only the `_vs_` decoy scores well: the gate must not count it.
        let mut records = gated_speedups(1.02);
        records.retain(|s| s.name.contains("_vs_"));
        let verdicts = speedup_verdicts(&records);
        assert!(verdicts.iter().all(|v| v.best.is_none()));
        let base = vec![record("g1", "a", 100.0)];
        let mut report = compare(&base, &base).expect("compares");
        report.cores = 4;
        report.speedup_gate = verdicts;
        assert!(!report.is_ok());
        assert!(report.render().contains("MISSING"));
    }

    #[test]
    fn single_core_candidate_disables_the_gate() {
        let base = vec![record("g1", "a", 100.0)];
        let mut report = compare(&base, &base).expect("compares");
        report.cores = 1;
        report.speedup_gate = speedup_verdicts(&gated_speedups(0.9));
        assert!(report.speedup_failures().is_empty());
        assert!(report.is_ok(), "{}", report.render());
        assert!(report.render().contains("parallel gate inactive"));
    }

    #[test]
    fn fusion_gate_is_active_on_one_core() {
        let base = vec![record("g1", "a", 100.0)];
        let mut report = compare(&base, &base).expect("compares");
        report.cores = 1;
        report.fusion_gate = fusion_verdicts(&[speedup(
            "sweeps/fused_batch",
            "batch_4tiles_unfused_vs_fused",
            1.2,
        )]);
        assert_eq!(report.fusion_failures().len(), 1);
        assert!(!report.is_ok(), "{}", report.render());
        assert!(report.render().contains("TOO SLOW"));
    }

    #[test]
    fn fusion_gate_passes_above_threshold_and_fails_when_missing() {
        let base = vec![record("g1", "a", 100.0)];
        let mut report = compare(&base, &base).expect("compares");
        report.fusion_gate = fusion_verdicts(&[speedup(
            "sweeps/fused_batch",
            "batch_4tiles_unfused_vs_fused",
            2.1,
        )]);
        assert!(report.fusion_failures().is_empty());
        assert!(report.is_ok(), "{}", report.render());
        // Non-_vs_ records do not satisfy the gate, and a candidate
        // with no fused_batch records at all fails it.
        let verdicts = fusion_verdicts(&[speedup("sweeps/fused_batch", "batch_4tiles/fused", 9.0)]);
        assert!(verdicts.iter().all(|v| v.best.is_none()));
        report.fusion_gate = verdicts;
        assert!(!report.is_ok());
        assert!(report.render().contains("MISSING"));
    }

    #[test]
    fn speedup_gates_bind_only_to_baseline_covered_groups() {
        // A serve-only baseline: no sweeps groups, so neither the
        // parallel nor the fusion gate may demand their records.
        let dir = std::env::temp_dir();
        let base_path = dir.join(format!("bench_gate_base_{}.json", std::process::id()));
        let cand_path = dir.join(format!("bench_gate_cand_{}.json", std::process::id()));
        let serve_record = concat!(
            "{\"group\": \"serve/single\", \"name\": \"product\", ",
            "\"median_ns\": 1000.0, \"p99_ns\": 2000.0, \"samples\": 10}\n"
        );
        std::fs::write(&base_path, serve_record).expect("write baseline");
        std::fs::write(
            &cand_path,
            format!("\"available_parallelism\": 8\n{serve_record}"),
        )
        .expect("write candidate");
        let report = run_bench_check(
            base_path.to_str().expect("utf8 path"),
            cand_path.to_str().expect("utf8 path"),
        )
        .expect("checks");
        assert!(report.speedup_gate.is_empty());
        assert!(report.fusion_gate.is_empty());
        assert!(report.is_ok(), "{}", report.render());
        drop(std::fs::remove_file(&base_path));
        drop(std::fs::remove_file(&cand_path));
    }

    #[test]
    fn counter_diffs_fail_the_report() {
        let base = vec![record("g1", "a", 100.0)];
        let mut report = compare(&base, &base).expect("compares");
        assert!(report.is_ok());
        report.counter_diffs = diff_counters(&[counter("g", "n", 5)], &[counter("g", "n", 6)]);
        assert!(!report.is_ok(), "{}", report.render());
        assert!(report.render().contains("DRIFTED"));
    }
}
