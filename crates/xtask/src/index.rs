//! The per-file symbol index: a token-level scan that records modules,
//! functions (with return types and body spans), structs and their
//! fields, impl blocks, and statics.
//!
//! The index is what lets the v2 rule families reason about *values*
//! instead of lines: the determinism rule resolves which bindings are
//! `HashMap`s (declared type, constructor, or the return type of a
//! same-file function) and which statics are `maly-obs` counters; the
//! lock-order rule resolves which fields and statics are `Mutex`es or
//! `RwLock`s so guard bindings can be traced back to a lock identity.
//!
//! This is a linter's index, not a compiler's: resolution is per-file
//! and name-based. That bias is deliberate — a miss means a quieter
//! lint, never a spurious one.

use crate::lexer::{self, TokenKind};

/// What kind of item an [`Item`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ItemKind {
    /// A `mod name { … }` block.
    Mod,
    /// A free or associated `fn`.
    Fn,
    /// A `struct` definition.
    Struct,
    /// An `enum` definition.
    Enum,
    /// An `impl` block (`name` holds the rendered target).
    Impl,
    /// A `static` item (`ty` holds the declared type).
    Static,
    /// A named struct field (`owner` holds the struct, `ty` the type).
    Field,
}

/// One indexed item.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Item {
    /// Item kind.
    pub kind: ItemKind,
    /// Item name (for impls: the rendered target type text).
    pub name: String,
    /// `::`-joined module path within the file (empty at file root).
    pub module: String,
    /// Whether the item is `pub` (any visibility qualifier counts).
    pub is_pub: bool,
    /// 1-based line the item starts on.
    pub line: usize,
    /// 1-based line the item's body ends on (declaration line for
    /// braceless items).
    pub end_line: usize,
    /// Declared type text: the return type for fns (empty when the fn
    /// returns `()`), the value type for statics and fields.
    pub ty: String,
    /// Enclosing type: the struct for fields, the impl target for
    /// associated fns; empty for free items.
    pub owner: String,
    /// Whether the item sits inside `#[cfg(test)]`-gated code.
    pub in_test: bool,
}

/// The index for a single source file.
#[derive(Debug, Default)]
pub struct FileIndex {
    /// All recorded items, in source order.
    pub items: Vec<Item>,
}

impl FileIndex {
    /// Return-type text of the first non-test `fn` named `name`, if the
    /// file defines one.
    #[must_use]
    pub fn fn_return(&self, name: &str) -> Option<&str> {
        self.items
            .iter()
            .find(|it| it.kind == ItemKind::Fn && !it.in_test && it.name == name)
            .map(|it| it.ty.as_str())
    }

    /// Names of fields and statics whose type satisfies `pred`.
    #[must_use]
    pub fn storage_names(&self, pred: impl Fn(&str) -> bool) -> Vec<&Item> {
        self.items
            .iter()
            .filter(|it| {
                matches!(it.kind, ItemKind::Field | ItemKind::Static) && !it.in_test && pred(&it.ty)
            })
            .collect()
    }

    /// Non-test statics whose type mentions `maly_obs` `Counter` — the
    /// "counters are Diag, results are Work" exemption set for the
    /// determinism rule.
    #[must_use]
    pub fn counter_statics(&self) -> Vec<&str> {
        self.items
            .iter()
            .filter(|it| it.kind == ItemKind::Static && !it.in_test && it.ty.contains("Counter"))
            .map(|it| it.name.as_str())
            .collect()
    }
}

/// A significant (non-trivia) token with its index-relevant fields.
struct Sig<'a> {
    text: &'a str,
    line: usize,
    is_ident: bool,
}

/// What opened the brace at each nesting level. Struct bodies never
/// appear here: `scan_struct` consumes them (fields and all) in one
/// step, so only modules and impl blocks stay open on the stack.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Ctx {
    /// `mod name {`
    Mod(String),
    /// `impl Target {`
    Impl(String),
    /// Anything else (`fn` bodies, expression blocks, match arms…).
    Other,
}

/// Builds the index for one file.
#[must_use]
pub fn index_file(source: &str) -> FileIndex {
    let tokens = lexer::lex(source);
    let flags = crate::scan::test_flags(&tokens);
    let sig: Vec<(Sig<'_>, bool)> = tokens
        .iter()
        .zip(&flags)
        .filter(|(t, _)| !matches!(t.kind, TokenKind::Whitespace) && !t.is_comment())
        .map(|(t, &f)| {
            (
                Sig {
                    text: t.text,
                    line: t.line,
                    is_ident: matches!(t.kind, TokenKind::Ident),
                },
                f,
            )
        })
        .collect();

    let mut index = FileIndex::default();
    let mut stack: Vec<Ctx> = Vec::new();
    let mut i = 0;
    while i < sig.len() {
        let (tok, in_test) = (&sig[i].0, sig[i].1);
        match tok.text {
            "{" => {
                stack.push(Ctx::Other);
                i += 1;
            }
            "}" => {
                stack.pop();
                i += 1;
            }
            "mod" if tok.is_ident => {
                i = scan_mod(&sig, i, &mut stack, &mut index, in_test);
            }
            "struct" | "enum" if tok.is_ident => {
                i = scan_struct(&sig, i, &mut stack, &mut index, in_test);
            }
            "impl" if tok.is_ident => {
                i = scan_impl(&sig, i, &mut stack, &mut index, in_test);
            }
            "fn" if tok.is_ident => {
                i = scan_fn(&sig, i, &stack, &mut index, in_test);
            }
            "static" if tok.is_ident => {
                i = scan_static(&sig, i, &stack, &mut index, in_test);
            }
            _ => i += 1,
        }
    }
    index
}

/// The `::`-joined module path of the current context stack.
fn module_path(stack: &[Ctx]) -> String {
    let parts: Vec<&str> = stack
        .iter()
        .filter_map(|c| match c {
            Ctx::Mod(name) => Some(name.as_str()),
            _ => None,
        })
        .collect();
    parts.join("::")
}

/// The nearest enclosing type (struct or impl target), if any.
fn owner_of(stack: &[Ctx]) -> String {
    stack
        .iter()
        .rev()
        .find_map(|c| match c {
            Ctx::Impl(name) => Some(name.clone()),
            _ => None,
        })
        .unwrap_or_default()
}

/// Whether the token directly before `i` marks the item `pub` (looks
/// back past `pub(crate)`-style qualifiers and other modifiers).
fn is_pub_before(sig: &[(Sig<'_>, bool)], i: usize) -> bool {
    let mut k = i;
    let modifiers = ["const", "unsafe", "extern", "async", "fn", "mut"];
    while k > 0 {
        let prev = &sig[k - 1].0;
        if prev.text == ")" || prev.text == "(" || prev.text == "crate" || prev.text == "super" {
            k -= 1;
            continue;
        }
        if modifiers.contains(&prev.text) {
            k -= 1;
            continue;
        }
        return prev.text == "pub";
    }
    false
}

/// Finds the matching `}` for a `{` at significant index `open`,
/// returning the index *after* it, and the line of the `}`.
fn skip_braced(sig: &[(Sig<'_>, bool)], open: usize) -> (usize, usize) {
    let mut depth = 0i64;
    let mut k = open;
    while k < sig.len() {
        match sig[k].0.text {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth == 0 {
                    return (k + 1, sig[k].0.line);
                }
            }
            _ => {}
        }
        k += 1;
    }
    (sig.len(), sig.last().map_or(1, |s| s.0.line))
}

/// Renders tokens `sig[from..to]` as type text with single spaces
/// between identifier-adjacent tokens.
fn render_type(sig: &[(Sig<'_>, bool)], from: usize, to: usize) -> String {
    let mut out = String::new();
    for k in from..to {
        let t = sig[k].0.text;
        if !out.is_empty()
            && out.ends_with(|c: char| c.is_alphanumeric() || c == '_')
            && t.starts_with(|c: char| c.is_alphanumeric() || c == '_')
        {
            out.push(' ');
        }
        out.push_str(t);
    }
    out
}

/// Scans `mod name { … }` / `mod name;` from the `mod` keyword at `i`.
fn scan_mod(
    sig: &[(Sig<'_>, bool)],
    i: usize,
    stack: &mut Vec<Ctx>,
    index: &mut FileIndex,
    in_test: bool,
) -> usize {
    let Some((name_tok, _)) = sig.get(i + 1) else {
        return i + 1;
    };
    if !name_tok.is_ident {
        return i + 1;
    }
    let name = name_tok.text.to_string();
    match sig.get(i + 2).map(|s| s.0.text) {
        Some("{") => {
            let (_, end_line) = skip_braced(sig, i + 2);
            index.items.push(Item {
                kind: ItemKind::Mod,
                name: name.clone(),
                module: module_path(stack),
                is_pub: is_pub_before(sig, i),
                line: sig[i].0.line,
                end_line,
                ty: String::new(),
                owner: String::new(),
                in_test,
            });
            stack.push(Ctx::Mod(name));
            i + 3
        }
        _ => i + 2,
    }
}

/// Scans a struct or enum from the keyword at `i`; named struct fields
/// are recorded individually.
fn scan_struct(
    sig: &[(Sig<'_>, bool)],
    i: usize,
    stack: &mut Vec<Ctx>,
    index: &mut FileIndex,
    in_test: bool,
) -> usize {
    let is_enum = sig[i].0.text == "enum";
    let Some((name_tok, _)) = sig.get(i + 1) else {
        return i + 1;
    };
    if !name_tok.is_ident {
        return i + 1;
    }
    let name = name_tok.text.to_string();
    // Skip generics between the name and the body/semicolon.
    let mut k = i + 2;
    let mut angle = 0i64;
    while k < sig.len() {
        match sig[k].0.text {
            "<" => angle += 1,
            ">" if angle > 0 => angle -= 1,
            "{" | ";" | "(" if angle == 0 => break,
            _ => {}
        }
        k += 1;
    }
    let (next, end_line) = match sig.get(k).map(|s| s.0.text) {
        Some("{") => {
            let (after, end) = skip_braced(sig, k);
            if !is_enum {
                scan_fields(
                    sig,
                    k + 1,
                    after.saturating_sub(1),
                    &name,
                    stack,
                    index,
                    in_test,
                );
            }
            (after, end)
        }
        _ => (k.saturating_add(1), sig[i].0.line),
    };
    index.items.push(Item {
        kind: if is_enum {
            ItemKind::Enum
        } else {
            ItemKind::Struct
        },
        name,
        module: module_path(stack),
        is_pub: is_pub_before(sig, i),
        line: sig[i].0.line,
        end_line,
        ty: String::new(),
        owner: String::new(),
        in_test,
    });
    next
}

/// Records named fields `[pub] name: Type` between `from` (just after
/// the struct `{`) and `to` (the matching `}`), depth-aware so nested
/// braces (default expressions don't exist in struct bodies, but
/// attribute args do) don't desynchronize the walk.
fn scan_fields(
    sig: &[(Sig<'_>, bool)],
    from: usize,
    to: usize,
    owner: &str,
    stack: &[Ctx],
    index: &mut FileIndex,
    in_test: bool,
) {
    let mut k = from;
    while k < to {
        // Skip attributes `#[…]`.
        if sig[k].0.text == "#" && sig.get(k + 1).map(|s| s.0.text) == Some("[") {
            let mut depth = 0i64;
            while k < to {
                match sig[k].0.text {
                    "[" => depth += 1,
                    "]" => {
                        depth -= 1;
                        if depth == 0 {
                            k += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                k += 1;
            }
            continue;
        }
        // A field starts at `name :` (with optional leading `pub`).
        if sig[k].0.is_ident
            && sig[k].0.text != "pub"
            && sig.get(k + 1).map(|s| s.0.text) == Some(":")
        {
            let name = sig[k].0.text.to_string();
            let line = sig[k].0.line;
            // Type runs to the next comma at angle/paren/bracket depth 0.
            let ty_start = k + 2;
            let mut depth = 0i64;
            let mut end = ty_start;
            while end < to {
                match sig[end].0.text {
                    "<" | "(" | "[" => depth += 1,
                    ">" | ")" | "]" if depth > 0 => depth -= 1,
                    "," if depth == 0 => break,
                    _ => {}
                }
                end += 1;
            }
            index.items.push(Item {
                kind: ItemKind::Field,
                name,
                module: module_path(stack),
                is_pub: sig
                    .get(k.wrapping_sub(1))
                    .is_some_and(|s| s.0.text == "pub")
                    || sig.get(k.wrapping_sub(1)).is_some_and(|s| s.0.text == ")"),
                line,
                end_line: line,
                ty: render_type(sig, ty_start, end),
                owner: owner.to_string(),
                in_test,
            });
            k = end + 1;
            continue;
        }
        k += 1;
    }
}

/// Scans `impl [Trait for] Target { … }` from the `impl` keyword.
fn scan_impl(
    sig: &[(Sig<'_>, bool)],
    i: usize,
    stack: &mut Vec<Ctx>,
    index: &mut FileIndex,
    in_test: bool,
) -> usize {
    // Target text: tokens up to the `{`, taking the part after `for`
    // when present, skipping a leading generics list.
    let mut k = i + 1;
    if sig.get(k).map(|s| s.0.text) == Some("<") {
        let mut angle = 1i64;
        k += 1;
        while k < sig.len() && angle > 0 {
            match sig[k].0.text {
                "<" => angle += 1,
                ">" => angle -= 1,
                _ => {}
            }
            k += 1;
        }
    }
    let mut target_start = k;
    let mut brace = None;
    while k < sig.len() {
        match sig[k].0.text {
            "for" if sig[k].0.is_ident => target_start = k + 1,
            "{" => {
                brace = Some(k);
                break;
            }
            ";" => break,
            _ => {}
        }
        k += 1;
    }
    let Some(brace) = brace else {
        return k + 1;
    };
    // Strip `where` clauses and generics from the rendered target: keep
    // tokens up to the first `where`.
    let mut target_end = brace;
    for j in target_start..brace {
        if sig[j].0.text == "where" && sig[j].0.is_ident {
            target_end = j;
            break;
        }
    }
    let target = render_type(sig, target_start, target_end);
    let (_, end_line) = skip_braced(sig, brace);
    index.items.push(Item {
        kind: ItemKind::Impl,
        name: target.clone(),
        module: module_path(stack),
        is_pub: false,
        line: sig[i].0.line,
        end_line,
        ty: String::new(),
        owner: String::new(),
        in_test,
    });
    stack.push(Ctx::Impl(target));
    brace + 1
}

/// Scans a `fn` item from the `fn` keyword: name, return type, body
/// span.
fn scan_fn(
    sig: &[(Sig<'_>, bool)],
    i: usize,
    stack: &[Ctx],
    index: &mut FileIndex,
    in_test: bool,
) -> usize {
    let Some((name_tok, _)) = sig.get(i + 1) else {
        return i + 1;
    };
    if !name_tok.is_ident {
        return i + 1;
    }
    let name = name_tok.text.to_string();
    // Skip generics (`->` inside bounds must not close the list: a `>`
    // preceded by `-` is part of an arrow, not a bracket).
    let mut k = i + 2;
    if sig.get(k).map(|s| s.0.text) == Some("<") {
        let mut angle = 1i64;
        k += 1;
        while k < sig.len() && angle > 0 {
            match sig[k].0.text {
                "<" => angle += 1,
                ">" if sig.get(k.wrapping_sub(1)).map(|s| s.0.text) != Some("-") => angle -= 1,
                _ => {}
            }
            k += 1;
        }
    }
    // Parameter list.
    if sig.get(k).map(|s| s.0.text) != Some("(") {
        return i + 2;
    }
    let mut depth = 0i64;
    while k < sig.len() {
        match sig[k].0.text {
            "(" => depth += 1,
            ")" => {
                depth -= 1;
                if depth == 0 {
                    k += 1;
                    break;
                }
            }
            _ => {}
        }
        k += 1;
    }
    // Optional `-> ReturnType`, running to `{`, `;`, or `where`.
    let mut ret = String::new();
    if sig.get(k).map(|s| s.0.text) == Some("-") && sig.get(k + 1).map(|s| s.0.text) == Some(">") {
        let ret_start = k + 2;
        let mut end = ret_start;
        let mut angle = 0i64;
        while end < sig.len() {
            match sig[end].0.text {
                "<" => angle += 1,
                ">" if angle > 0 => angle -= 1,
                "{" | ";" if angle == 0 => break,
                "where" if angle == 0 && sig[end].0.is_ident => break,
                _ => {}
            }
            end += 1;
        }
        ret = render_type(sig, ret_start, end);
        k = end;
    }
    // Body span.
    while k < sig.len() && sig[k].0.text != "{" && sig[k].0.text != ";" {
        k += 1;
    }
    let (next, end_line) = if sig.get(k).map(|s| s.0.text) == Some("{") {
        skip_braced(sig, k)
    } else {
        (k + 1, sig[i].0.line)
    };
    index.items.push(Item {
        kind: ItemKind::Fn,
        name,
        module: module_path(stack),
        is_pub: is_pub_before(sig, i),
        line: sig[i].0.line,
        end_line,
        ty: ret,
        owner: owner_of(stack),
        in_test,
    });
    next
}

/// Scans `static NAME: Type = …;` from the `static` keyword.
fn scan_static(
    sig: &[(Sig<'_>, bool)],
    i: usize,
    stack: &[Ctx],
    index: &mut FileIndex,
    in_test: bool,
) -> usize {
    let mut k = i + 1;
    if sig.get(k).map(|s| s.0.text) == Some("mut") {
        k += 1;
    }
    let Some((name_tok, _)) = sig.get(k) else {
        return i + 1;
    };
    if !name_tok.is_ident {
        return i + 1;
    }
    let name = name_tok.text.to_string();
    let line = name_tok.line;
    if sig.get(k + 1).map(|s| s.0.text) != Some(":") {
        return k + 1;
    }
    let ty_start = k + 2;
    let mut end = ty_start;
    let mut angle = 0i64;
    while end < sig.len() {
        match sig[end].0.text {
            "<" | "(" | "[" => angle += 1,
            ">" | ")" | "]" if angle > 0 => angle -= 1,
            "=" | ";" if angle == 0 => break,
            _ => {}
        }
        end += 1;
    }
    index.items.push(Item {
        kind: ItemKind::Static,
        name,
        module: module_path(stack),
        is_pub: is_pub_before(sig, i),
        line,
        end_line: line,
        ty: render_type(sig, ty_start, end),
        owner: owner_of(stack),
        in_test,
    });
    end
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = r#"
pub mod inner {
    use std::collections::HashMap;
    use std::sync::{Mutex, RwLock};

    pub struct Cache {
        pub map: RwLock<HashMap<u64, f64>>,
        hits: u64,
    }

    static TOTALS: Mutex<Vec<f64>> = Mutex::new(Vec::new());

    impl Cache {
        pub fn snapshot(&self) -> HashMap<u64, f64> {
            HashMap::new()
        }
    }

    pub fn build_lookup(n: usize) -> HashMap<u64, f64> {
        let mut m = HashMap::new();
        m.insert(n as u64, 0.0);
        m
    }
}

#[cfg(test)]
mod tests {
    fn helper() -> std::collections::HashMap<u8, u8> {
        std::collections::HashMap::new()
    }
}
"#;

    #[test]
    fn records_modules_structs_fields_and_fns() {
        let idx = index_file(SRC);
        let cache = idx
            .items
            .iter()
            .find(|it| it.kind == ItemKind::Struct && it.name == "Cache")
            .expect("struct indexed");
        assert_eq!(cache.module, "inner");
        assert!(cache.is_pub);

        let map = idx
            .items
            .iter()
            .find(|it| it.kind == ItemKind::Field && it.name == "map")
            .expect("field indexed");
        assert_eq!(map.owner, "Cache");
        assert!(map.ty.contains("RwLock<HashMap<u64,f64>>") || map.ty.contains("RwLock<"));

        let hits = idx
            .items
            .iter()
            .find(|it| it.kind == ItemKind::Field && it.name == "hits")
            .expect("private field indexed");
        assert_eq!(hits.ty, "u64");
        assert!(!hits.is_pub);
    }

    #[test]
    fn records_fn_return_types_and_owners() {
        let idx = index_file(SRC);
        assert!(idx
            .fn_return("build_lookup")
            .unwrap_or("")
            .contains("HashMap<"));
        let snap = idx
            .items
            .iter()
            .find(|it| it.kind == ItemKind::Fn && it.name == "snapshot")
            .expect("method indexed");
        assert_eq!(snap.owner, "Cache");
        assert!(snap.ty.contains("HashMap<"));
        assert!(snap.end_line > snap.line);
    }

    #[test]
    fn records_statics_with_types() {
        let idx = index_file(SRC);
        let locks = idx.storage_names(|ty| ty.contains("Mutex<"));
        assert!(locks.iter().any(|it| it.name == "TOTALS"));
    }

    #[test]
    fn test_gated_fns_are_marked_and_skipped_by_fn_return() {
        let idx = index_file(SRC);
        let helper = idx
            .items
            .iter()
            .find(|it| it.kind == ItemKind::Fn && it.name == "helper")
            .expect("test fn indexed");
        assert!(helper.in_test);
        assert!(idx.fn_return("helper").is_none());
    }

    #[test]
    fn counter_statics_match_by_type() {
        let src = "static HITS: maly_obs::Counter = maly_obs::Counter::diag(\"h\");\n";
        let idx = index_file(src);
        assert_eq!(idx.counter_statics(), vec!["HITS"]);
    }
}
