//! The lint rule families: panic-freedom, unit-safety, NaN-safety,
//! crate hygiene, raw-thread containment, tracked-artifact hygiene,
//! raw-timing containment — plus the v2 families that live in their own
//! modules: determinism ([`crate::determinism`]), lock-order
//! ([`crate::locks`]), and escape hygiene ([`crate::escapes`]).
//!
//! Every rule honors inline escape comments of the form
//! `// audit:allow(<rule>): <justification>` placed on the offending
//! line or the comment block directly above it; suppression routes
//! through [`Escapes`], so a tag that stops suppressing anything is
//! itself reported stale. Since v2 the scanner is lexer-based
//! ([`crate::scan`]): string literal contents are masked and comments
//! are split off before any needle matching, so the rules cannot fire
//! on text inside strings and the linter's own sources stay self-clean
//! without `concat!` tricks (kept in a few needles anyway, for the
//! benefit of plain `grep`).

use crate::escapes::Escapes;
use crate::scan::{classify, Line};

/// A single lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Workspace-relative path of the offending file.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Which rule family fired.
    pub rule: Rule,
    /// Human-readable description of the problem.
    pub message: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file,
            self.line,
            self.rule.as_str(),
            self.message
        )
    }
}

/// The rule families maly-audit enforces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rule {
    /// Panicking call in non-test library code.
    Panic,
    /// A crate exceeded its panic ratchet budget.
    PanicBudget,
    /// Bare `f64` crossing a public API where a newtype exists.
    UnitSafety,
    /// NaN-hazardous float comparison or ordering.
    NanSafety,
    /// Manifest or crate-root hygiene problem.
    Hygiene,
    /// Raw `std::thread::spawn` outside the sanctioned executor crate.
    RawThread,
    /// A build artifact tracked by version control.
    Artifact,
    /// Ad-hoc `Instant::now()` / `eprintln!` timing outside the
    /// sanctioned observability and harness crates.
    RawTiming,
    /// Nondeterministic value (map iteration order, wall clock, thread
    /// identity, relaxed atomic read) on a result path.
    Determinism,
    /// Inconsistent lock-acquisition order or a lock held across
    /// blocking I/O.
    LockOrder,
    /// An `audit:allow(...)` escape that no longer suppresses anything.
    StaleEscape,
    /// Per-element transcendental math inside a batch/lane kernel body.
    LanePurity,
}

impl Rule {
    /// Short identifier used in rendered reports.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Rule::Panic => "panic",
            Rule::PanicBudget => "panic-budget",
            Rule::UnitSafety => "bare-f64",
            Rule::NanSafety => "nan",
            Rule::Hygiene => "hygiene",
            Rule::RawThread => "raw-thread",
            Rule::Artifact => "artifact",
            Rule::RawTiming => "raw-timing",
            Rule::Determinism => "determinism",
            Rule::LockOrder => "lock-order",
            Rule::StaleEscape => "stale-escape",
            Rule::LanePurity => "lane-purity",
        }
    }
}

// ---------------------------------------------------------------------
// Rule 1: panic-freedom
// ---------------------------------------------------------------------

/// Finds panicking calls (`unwrap`, `expect`, `panic!`, `unreachable!`,
/// `todo!`, `unimplemented!`) in non-test code, skipping sites tagged
/// `audit:allow(panic)`.
#[must_use]
pub fn panic_freedom(file: &str, source: &str) -> Vec<Violation> {
    let lines = classify(source);
    let mut escapes = Escapes::collect(&lines);
    panic_freedom_in(file, &lines, &mut escapes)
}

/// [`panic_freedom`] over pre-classified lines with a shared escape
/// registry (so staleness accounting spans all rule families).
#[must_use]
pub fn panic_freedom_in(file: &str, lines: &[Line], escapes: &mut Escapes) -> Vec<Violation> {
    let needles: [(&str, &str); 6] = [
        (concat!(".un", "wrap()"), "unwrap"),
        (concat!(".ex", "pect("), "expect"),
        (concat!("pa", "nic!("), "panic!"),
        (concat!("unre", "achable!("), "unreachable!"),
        (concat!("to", "do!("), "todo!"),
        (concat!("unimpl", "emented!("), "unimplemented!"),
    ];
    let mut out = Vec::new();
    for (i, line) in lines.iter().enumerate() {
        if line.in_test || line.code.trim().is_empty() {
            continue;
        }
        for (needle, label) in needles {
            if line.code.contains(needle) {
                if escapes.allowed(lines, i, "panic") {
                    continue;
                }
                out.push(Violation {
                    file: file.to_string(),
                    line: line.number,
                    rule: Rule::Panic,
                    message: format!(
                        "`{label}` in library code; return a Result or tag audit:allow(panic)"
                    ),
                });
            }
        }
    }
    out
}

// ---------------------------------------------------------------------
// Rule 2: unit-safety
// ---------------------------------------------------------------------

/// Parameter names that legitimately stay `f64`: exponents, fractions,
/// coordinates, and other dimensionless model knobs.
pub const DIMENSIONLESS_NAMES: &[&str] = &[
    "x",
    "y",
    "z",
    "p",
    "q",
    "k",
    "c",
    "t",
    "alpha",
    "beta",
    "step",
    "steps",
    "tol",
    "fraction",
    "ratio",
    "aspect_ratio",
    "coverage",
    "months",
    "year",
    "years",
    "mean",
    "shape",
    "scale",
    "level",
    "levels",
    "exponent",
    "kill_fraction",
    "support_fraction",
    "vectors_per_second",
    "samples",
    "tau_months",
    "sigma",
    "spec_low",
    "spec_high",
    "area_overhead",
    "tester_time_factor",
    "smart_rework_discount",
];

/// Function-name suffixes that promise a unit; returning bare `f64`
/// from these is a violation (the newtype should carry the unit).
const UNIT_RETURN_SUFFIXES: &[&str] = &["_cm", "_cm2", "_mm", "_um", "_dollars", "_micro_dollars"];

/// Flags `pub fn` signatures that take or return bare `f64` where a
/// maly-units newtype exists, honoring `audit:allow(bare-f64)` and the
/// [`DIMENSIONLESS_NAMES`] parameter allowlist. String literals and
/// comments inside the signature are pre-masked by the lexer, so an
/// `f64` mentioned in a doc string or commented-out parameter cannot
/// fire.
#[must_use]
pub fn unit_safety(file: &str, source: &str) -> Vec<Violation> {
    let lines = classify(source);
    let mut escapes = Escapes::collect(&lines);
    unit_safety_in(file, &lines, &mut escapes)
}

/// [`unit_safety`] over pre-classified lines with a shared escape
/// registry.
#[must_use]
pub fn unit_safety_in(file: &str, lines: &[Line], escapes: &mut Escapes) -> Vec<Violation> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < lines.len() {
        let line = &lines[i];
        let trimmed = line.code.trim_start();
        let is_pub_fn = !line.in_test
            && (trimmed.starts_with("pub fn ") || trimmed.starts_with("pub const fn "));
        if !is_pub_fn {
            i += 1;
            continue;
        }
        // Accumulate the signature until the body `{` or a trailing `;`.
        let mut sig = String::new();
        let mut j = i;
        while let Some(l) = lines.get(j) {
            if j >= i + 16 {
                break;
            }
            if let Some(pos) = l.code.find('{') {
                sig.push_str(&l.code[..pos]);
                break;
            }
            sig.push_str(&l.code);
            sig.push(' ');
            if l.code.trim_end().ends_with(';') {
                break;
            }
            j += 1;
        }
        let mut found = Vec::new();
        analyze_signature(file, line.number, &sig, &mut found);
        if !found.is_empty() && !escapes.allowed_span(lines, i, j, "bare-f64") {
            out.extend(found);
        }
        i = j + 1;
    }
    out
}

/// Counts `audit:allow(bare-f64)` escape tags in non-test code — the
/// input to the per-crate unit-escape ratchet, which forbids *new*
/// escapes the same way the panic ratchet forbids new panic sites.
#[must_use]
pub fn count_unit_escapes(source: &str) -> usize {
    Escapes::collect(&classify(source)).count("bare-f64")
}

/// Splits a parameter list on top-level commas (parens, brackets, and
/// angle brackets protect nested commas).
fn split_top_level(params: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut angle = 0i32;
    let mut start = 0;
    for (idx, ch) in params.char_indices() {
        match ch {
            '(' | '[' => depth += 1,
            ')' | ']' => depth -= 1,
            '<' => angle += 1,
            '>' => angle = (angle - 1).max(0),
            ',' if depth == 0 && angle == 0 => {
                out.push(&params[start..idx]);
                start = idx + 1;
            }
            _ => {}
        }
    }
    out.push(&params[start..]);
    out
}

/// Checks one accumulated `pub fn` signature for bare-`f64` crossings.
fn analyze_signature(file: &str, line: usize, sig: &str, out: &mut Vec<Violation>) {
    let Some(fn_pos) = sig.find("fn ") else {
        return;
    };
    let rest = &sig[fn_pos + 3..];
    let Some(paren) = rest.find('(') else {
        return;
    };
    let raw_name = rest[..paren].trim();
    let fn_name = raw_name.split('<').next().unwrap_or(raw_name).trim();
    let params_src = &rest[paren + 1..];
    let mut depth = 1i32;
    let mut close = None;
    for (idx, ch) in params_src.char_indices() {
        match ch {
            '(' => depth += 1,
            ')' => {
                depth -= 1;
                if depth == 0 {
                    close = Some(idx);
                    break;
                }
            }
            _ => {}
        }
    }
    let Some(close) = close else {
        return;
    };
    for param in split_top_level(&params_src[..close]) {
        let p = param.trim();
        if p.is_empty() || p.ends_with("self") || p.starts_with('(') {
            continue;
        }
        let Some((pat, ty)) = p.split_once(':') else {
            continue;
        };
        let name = pat.trim().trim_start_matches("mut ").trim();
        if ty.trim() == "f64" && !DIMENSIONLESS_NAMES.contains(&name) {
            out.push(Violation {
                file: file.to_string(),
                line,
                rule: Rule::UnitSafety,
                message: format!(
                    "`{fn_name}` takes bare `f64` parameter `{name}`; use a maly-units \
                     newtype, add it to DIMENSIONLESS_NAMES, or tag audit:allow(bare-f64)"
                ),
            });
        }
    }
    let after = params_src[close + 1..].trim_start();
    if let Some(ret) = after.strip_prefix("->") {
        let ret = ret.trim();
        if ret == "f64"
            && UNIT_RETURN_SUFFIXES
                .iter()
                .any(|suffix| fn_name.ends_with(suffix))
        {
            out.push(Violation {
                file: file.to_string(),
                line,
                rule: Rule::UnitSafety,
                message: format!(
                    "`{fn_name}` promises a unit in its name but returns bare `f64`; \
                     return the maly-units newtype or tag audit:allow(bare-f64)"
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------
// Rule 3: NaN-safety
// ---------------------------------------------------------------------

/// Flags NaN-hazardous float handling: `partial_cmp(..).unwrap()`,
/// `sort_by`/`min_by`/`max_by` closures built on `partial_cmp`, and
/// `==` against float literals. `total_cmp` is the sanctioned fix; the
/// escape tags are `audit:allow(nan)` and `audit:allow(float-cmp)`.
#[must_use]
pub fn nan_safety(file: &str, source: &str) -> Vec<Violation> {
    let lines = classify(source);
    let mut escapes = Escapes::collect(&lines);
    nan_safety_in(file, &lines, &mut escapes)
}

/// [`nan_safety`] over pre-classified lines with a shared escape
/// registry.
#[must_use]
pub fn nan_safety_in(file: &str, lines: &[Line], escapes: &mut Escapes) -> Vec<Violation> {
    let partial = concat!(".partial_", "cmp(");
    let unwrap = concat!(".un", "wrap()");
    let order_by = [
        concat!("sort_", "by("),
        concat!("min_", "by("),
        concat!("max_", "by("),
    ];
    let mut out = Vec::new();
    for (i, line) in lines.iter().enumerate() {
        if line.in_test || line.code.trim().is_empty() {
            continue;
        }
        if line.code.contains(partial) && line.code.contains(unwrap) {
            if !escapes.allowed(lines, i, "nan") {
                out.push(Violation {
                    file: file.to_string(),
                    line: line.number,
                    rule: Rule::NanSafety,
                    message: "unwrapped partial_cmp panics on NaN; use f64::total_cmp".to_string(),
                });
            }
        }
        if order_by.iter().any(|needle| line.code.contains(needle)) {
            let window: String = lines[i..lines.len().min(i + 4)]
                .iter()
                .map(|l| l.code.as_str())
                .collect();
            if window.contains(partial) && !escapes.allowed(lines, i, "nan") {
                out.push(Violation {
                    file: file.to_string(),
                    line: line.number,
                    rule: Rule::NanSafety,
                    message: "ordering floats via partial_cmp is NaN-unstable; \
                              use f64::total_cmp"
                        .to_string(),
                });
            }
        }
        for pair in float_eq_sites(&line.code) {
            if escapes.allowed(lines, i, "float-cmp") {
                continue;
            }
            out.push(Violation {
                file: file.to_string(),
                line: line.number,
                rule: Rule::NanSafety,
                message: format!(
                    "float literal equality `{pair}` is exact-comparison fragile; \
                     compare with a tolerance or tag audit:allow(float-cmp)"
                ),
            });
        }
    }
    out
}

/// True for tokens that look like float literals (`0.0`, `1.5e3`).
fn is_float_literal(token: &str) -> bool {
    let t = token.trim_end_matches("f64").trim_end_matches("f32");
    !t.is_empty()
        && t.starts_with(|c: char| c.is_ascii_digit())
        && t.contains('.')
        && t.chars()
            .all(|c| c.is_ascii_digit() || matches!(c, '.' | '_' | 'e' | 'E' | '+' | '-'))
}

/// Extracts `lhs == rhs` token pairs where either side is a float
/// literal.
fn float_eq_sites(code: &str) -> Vec<String> {
    let token_char = |c: char| c.is_ascii_alphanumeric() || matches!(c, '.' | '_');
    let mut found = Vec::new();
    let mut from = 0;
    while let Some(pos) = code[from..].find("==") {
        let abs = from + pos;
        let left: String = code[..abs]
            .trim_end()
            .chars()
            .rev()
            .take_while(|&c| token_char(c))
            .collect::<Vec<_>>()
            .into_iter()
            .rev()
            .collect();
        let right: String = code[abs + 2..]
            .trim_start()
            .chars()
            .take_while(|&c| token_char(c))
            .collect();
        if is_float_literal(&left) || is_float_literal(&right) {
            found.push(format!("{left} == {right}"));
        }
        from = abs + 2;
    }
    found
}

// ---------------------------------------------------------------------
// Rule 4: crate hygiene
// ---------------------------------------------------------------------

/// Substrings that mark a placeholder `repository` URL.
const REPOSITORY_PLACEHOLDERS: &[&str] = &["example.com", "TODO", "CHANGEME", "your-org"];

/// Checks one `Cargo.toml` for workspace-inheritance hygiene: inherited
/// version/edition/license, a non-empty description, `[lints]`
/// inheritance, no wildcard dependency versions, and no placeholder
/// repository URL.
#[must_use]
pub fn check_manifest(file: &str, text: &str) -> Vec<Violation> {
    let mut out = Vec::new();
    let mut push = |line: usize, message: String| {
        out.push(Violation {
            file: file.to_string(),
            line,
            rule: Rule::Hygiene,
            message,
        });
    };

    for key in ["version", "edition", "license"] {
        let inherited = text.contains(&format!("{key}.workspace = true"))
            || text.contains(&format!("{key} = {{ workspace = true }}"));
        if !inherited {
            push(1, format!("manifest does not inherit workspace `{key}`"));
        }
    }

    let has_description = text.lines().any(|l| {
        let t = l.trim();
        t.strip_prefix("description = \"")
            .is_some_and(|rest| rest.trim_end_matches('"').len() > 1)
    });
    if !has_description {
        push(1, "manifest has no `description`".to_string());
    }

    let mut lints_ok = false;
    let mut in_lints = false;
    for l in text.lines() {
        let t = l.trim();
        if t.starts_with('[') {
            in_lints = t == "[lints]";
        } else if in_lints && t == "workspace = true" {
            lints_ok = true;
        }
    }
    if !lints_ok {
        push(
            1,
            "manifest does not inherit `[lints] workspace = true`".to_string(),
        );
    }

    for (idx, l) in text.lines().enumerate() {
        let t = l.trim();
        if t.contains("= \"*\"") || t.contains("version = \"*\"") {
            push(idx + 1, "wildcard dependency version".to_string());
        }
        if t.starts_with("repository = \"") && REPOSITORY_PLACEHOLDERS.iter().any(|p| t.contains(p))
        {
            push(idx + 1, "placeholder `repository` URL".to_string());
        }
    }
    out
}

/// Checks a crate-root source file for the mandatory lint headers.
#[must_use]
pub fn check_crate_root_source(file: &str, text: &str) -> Vec<Violation> {
    let mut out = Vec::new();
    for attr in ["#![forbid(unsafe_code)]", "#![warn(missing_docs)]"] {
        if !text.contains(attr) {
            out.push(Violation {
                file: file.to_string(),
                line: 1,
                rule: Rule::Hygiene,
                message: format!("crate root is missing `{attr}`"),
            });
        }
    }
    out
}

// ---------------------------------------------------------------------
// Rule 6: tracked-artifact hygiene
// ---------------------------------------------------------------------

/// Flags version-controlled paths that are build artifacts and should
/// never be committed: anything under a `target/` directory, cargo
/// `.fingerprint` data, and option-shaped file names (a stray `--bench`
/// file is what a mistyped `cargo bench -- --bench` leaves behind).
/// `paths` is the tracked-file list (one workspace-relative path per
/// entry, as `git ls-files` prints it).
#[must_use]
pub fn tracked_artifacts(paths: &[String]) -> Vec<Violation> {
    let mut out = Vec::new();
    for path in paths {
        let components: Vec<&str> = path.split('/').collect();
        let reason = if components.first().copied() == Some("target")
            || components.iter().any(|c| *c == ".fingerprint")
        {
            Some("cargo build output")
        } else if components.last().is_some_and(|name| name.starts_with("--")) {
            Some("option-shaped file name (stray CLI flag)")
        } else {
            None
        };
        if let Some(reason) = reason {
            out.push(Violation {
                file: path.clone(),
                line: 1,
                rule: Rule::Artifact,
                message: format!("tracked build artifact ({reason}); git rm --cached it"),
            });
        }
    }
    out
}

// ---------------------------------------------------------------------
// Rule 5: raw-thread containment
// ---------------------------------------------------------------------

/// Flags raw `thread::spawn` calls in non-test code. All workspace
/// parallelism flows through `maly_par::Executor` so determinism (and
/// the `MALY_PAR_THREADS` knob) stay centralized; `maly-par` itself is
/// exempted by the caller, and one-off cases can tag
/// `audit:allow(raw-thread)`.
#[must_use]
pub fn raw_thread(file: &str, source: &str) -> Vec<Violation> {
    let lines = classify(source);
    let mut escapes = Escapes::collect(&lines);
    raw_thread_in(file, &lines, &mut escapes)
}

/// [`raw_thread`] over pre-classified lines with a shared escape
/// registry.
#[must_use]
pub fn raw_thread_in(file: &str, lines: &[Line], escapes: &mut Escapes) -> Vec<Violation> {
    let needle = concat!("thread::", "spawn(");
    let mut out = Vec::new();
    for (i, line) in lines.iter().enumerate() {
        if line.in_test || line.code.trim().is_empty() {
            continue;
        }
        if line.code.contains(needle) && !escapes.allowed(lines, i, "raw-thread") {
            out.push(Violation {
                file: file.to_string(),
                line: line.number,
                rule: Rule::RawThread,
                message: "raw thread spawn; route work through maly_par::Executor \
                          or tag audit:allow(raw-thread)"
                    .to_string(),
            });
        }
    }
    out
}

// ---------------------------------------------------------------------
// Rule 8: lane purity
// ---------------------------------------------------------------------

/// Function-name suffixes that mark a batch/lane kernel: the function
/// promises to amortize math over the whole slice, so per-element
/// transcendentals inside it silently undo the batching.
pub const LANE_KERNEL_SUFFIXES: &[&str] = &["_batch", "_for_slice", "_for_points"];

/// The kernel name when `code` begins a lane-kernel `fn` definition
/// (any visibility), `None` otherwise.
fn lane_kernel_name(code: &str) -> Option<&str> {
    let trimmed = code.trim_start();
    let rest = trimmed
        .strip_prefix("pub(crate) fn ")
        .or_else(|| trimmed.strip_prefix("pub(super) fn "))
        .or_else(|| trimmed.strip_prefix("pub fn "))
        .or_else(|| trimmed.strip_prefix("fn "))?;
    let name = rest.split(['(', '<']).next()?.trim();
    LANE_KERNEL_SUFFIXES
        .iter()
        .any(|suffix| name.ends_with(suffix))
        .then_some(name)
}

/// Flags per-element `exp`/`ln`/`powf`/`sqrt` calls inside the body of
/// a batch kernel (a `fn` whose name ends in one of
/// [`LANE_KERNEL_SUFFIXES`]). Those functions exist so the hot loops
/// pay transcendental math per lane, not per element — the math should
/// route through `maly_lanes` slice ops. Sites that are genuinely
/// scalar (setup work hoisted out of the per-element loop, reference
/// paths) tag `audit:allow(lane-purity)`.
#[must_use]
pub fn lane_purity(file: &str, source: &str) -> Vec<Violation> {
    let lines = classify(source);
    let mut escapes = Escapes::collect(&lines);
    lane_purity_in(file, &lines, &mut escapes)
}

/// [`lane_purity`] over pre-classified lines with a shared escape
/// registry.
#[must_use]
pub fn lane_purity_in(file: &str, lines: &[Line], escapes: &mut Escapes) -> Vec<Violation> {
    let needles: [(&str, &str); 4] = [
        (".exp()", "exp"),
        (".ln()", "ln"),
        (".powf(", "powf"),
        (".sqrt()", "sqrt"),
    ];
    let mut out = Vec::new();
    let mut i = 0;
    while i < lines.len() {
        let Some(name) = lane_kernel_name(&lines[i].code) else {
            i += 1;
            continue;
        };
        if lines[i].in_test {
            i += 1;
            continue;
        }
        let kernel = name.to_string();
        // Walk the kernel body by brace depth over masked code; stop
        // early on a `;`-terminated signature (bodyless trait method).
        let mut depth = 0i32;
        let mut opened = false;
        let mut j = i;
        while let Some(line) = lines.get(j) {
            if !opened && !line.code.contains('{') && line.code.trim_end().ends_with(';') {
                break;
            }
            for (needle, label) in needles {
                if line.code.contains(needle)
                    && !line.in_test
                    && !escapes.allowed(lines, j, "lane-purity")
                {
                    out.push(Violation {
                        file: file.to_string(),
                        line: line.number,
                        rule: Rule::LanePurity,
                        message: format!(
                            "per-element `{label}` inside lane kernel `{kernel}`; \
                             batch it through maly_lanes slice ops or tag \
                             audit:allow(lane-purity)"
                        ),
                    });
                }
            }
            for ch in line.code.chars() {
                match ch {
                    '{' => {
                        depth += 1;
                        opened = true;
                    }
                    '}' => depth -= 1,
                    _ => {}
                }
            }
            if opened && depth <= 0 {
                break;
            }
            j += 1;
        }
        i = j + 1;
    }
    out
}

// ---------------------------------------------------------------------
// Rule 7: raw-timing containment
// ---------------------------------------------------------------------

/// Flags ad-hoc timing and stderr diagnostics — `Instant::now()` and
/// `eprintln!` — in non-test code. Timing belongs to `maly-obs` spans
/// and histograms (so it lands in exported traces and respects the
/// disabled-cost contract) and to the measurement harnesses; the
/// caller exempts `maly-obs`, `maly-bench`, and `xtask`, and genuine
/// user-facing stderr output can tag `audit:allow(raw-timing)`.
#[must_use]
pub fn raw_timing(file: &str, source: &str) -> Vec<Violation> {
    let lines = classify(source);
    let mut escapes = Escapes::collect(&lines);
    raw_timing_in(file, &lines, &mut escapes)
}

/// [`raw_timing`] over pre-classified lines with a shared escape
/// registry.
#[must_use]
pub fn raw_timing_in(file: &str, lines: &[Line], escapes: &mut Escapes) -> Vec<Violation> {
    let needles: [(&str, &str); 2] = [
        (concat!("Instant::", "now("), "Instant::now()"),
        (concat!("eprint", "ln!("), "eprintln!"),
    ];
    let mut out = Vec::new();
    for (i, line) in lines.iter().enumerate() {
        if line.in_test || line.code.trim().is_empty() {
            continue;
        }
        for (needle, label) in needles {
            if line.code.contains(needle) {
                if escapes.allowed(lines, i, "raw-timing") {
                    continue;
                }
                out.push(Violation {
                    file: file.to_string(),
                    line: line.number,
                    rule: Rule::RawTiming,
                    message: format!(
                        "`{label}` outside the obs/bench/xtask crates; time through \
                         maly-obs spans/histograms or tag audit:allow(raw-timing)"
                    ),
                });
            }
        }
    }
    out
}
