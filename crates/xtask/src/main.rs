//! Entry point: `cargo run -p xtask -- lint` runs the maly-audit
//! static analysis pass over the whole workspace and exits non-zero on
//! any violation (`lint --json <path>` additionally writes the
//! machine-readable report, `lint --explain <rule>` prints a rule's
//! rationale); `cargo run -p xtask -- bench-check <candidate.json>`
//! diffs a fresh bench baseline against the committed
//! `BENCH_sweeps.json` and exits non-zero on a per-group median
//! regression beyond 15%; `cargo run -p xtask -- trace-check
//! <trace.ndjson>` validates an exported `maly-obs` trace (every line
//! parses, span ids nest).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::path::Path;
use std::process::ExitCode;

/// Resolves the workspace root from this crate's manifest directory
/// (`crates/xtask` → two levels up).
fn workspace_root() -> &'static Path {
    let manifest = Path::new(env!("CARGO_MANIFEST_DIR"));
    manifest.ancestors().nth(2).unwrap_or(Path::new("."))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => {
            let mut json_path: Option<String> = None;
            let mut explain_rule: Option<String> = None;
            let mut rest = args[1..].iter();
            while let Some(arg) = rest.next() {
                match arg.as_str() {
                    "--json" => json_path = rest.next().cloned(),
                    "--explain" => explain_rule = rest.next().cloned(),
                    other => {
                        eprintln!("lint: unknown argument `{other}`");
                        eprintln!(
                            "usage: cargo run -p xtask -- lint [--json <path>] [--explain <rule>]"
                        );
                        return ExitCode::FAILURE;
                    }
                }
            }
            if let Some(rule) = explain_rule {
                return match xtask::explain(&rule) {
                    Some(text) => {
                        println!("{text}");
                        ExitCode::SUCCESS
                    }
                    None => {
                        eprintln!("lint: unknown rule `{rule}`; try one of: panic, panic-budget, bare-f64, nan, hygiene, raw-thread, artifact, raw-timing, determinism, lock-order, stale-escape, lane-purity");
                        ExitCode::FAILURE
                    }
                };
            }
            match xtask::run_lint(workspace_root()) {
                Ok(report) => {
                    print!("{}", report.render());
                    if let Some(path) = json_path {
                        if let Some(parent) = Path::new(&path).parent() {
                            let _ = std::fs::create_dir_all(parent);
                        }
                        if let Err(err) = std::fs::write(&path, report.to_json()) {
                            eprintln!("lint: cannot write {path}: {err}");
                            return ExitCode::FAILURE;
                        }
                    }
                    if report.is_clean() {
                        ExitCode::SUCCESS
                    } else {
                        ExitCode::FAILURE
                    }
                }
                Err(err) => {
                    eprintln!("maly-audit: I/O error: {err}");
                    ExitCode::FAILURE
                }
            }
        }
        Some("bench-check") => {
            let Some(candidate) = args.get(1) else {
                eprintln!("usage: cargo run -p xtask -- bench-check <candidate.json> [baseline]");
                return ExitCode::FAILURE;
            };
            let default_baseline = workspace_root().join("BENCH_sweeps.json");
            let baseline = args
                .get(2)
                .cloned()
                .unwrap_or_else(|| default_baseline.display().to_string());
            match xtask::bench::run_bench_check(&baseline, candidate) {
                Ok(report) => {
                    print!("{}", report.render());
                    if report.is_ok() {
                        ExitCode::SUCCESS
                    } else {
                        ExitCode::FAILURE
                    }
                }
                Err(err) => {
                    eprintln!("bench-check: {err}");
                    ExitCode::FAILURE
                }
            }
        }
        Some("trace-check") => {
            let Some(path) = args.get(1) else {
                eprintln!("usage: cargo run -p xtask -- trace-check <trace.ndjson>");
                return ExitCode::FAILURE;
            };
            match xtask::trace::run_trace_check(path) {
                Ok(summary) => {
                    print!("{}", summary.render());
                    ExitCode::SUCCESS
                }
                Err(err) => {
                    eprintln!("trace-check: {err}");
                    ExitCode::FAILURE
                }
            }
        }
        _ => {
            eprintln!(
                "usage: cargo run -p xtask -- \
                 lint [--json <path>] [--explain <rule>] | \
                 bench-check <candidate.json> | trace-check <trace.ndjson>"
            );
            ExitCode::FAILURE
        }
    }
}
