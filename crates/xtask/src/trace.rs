//! `xtask trace-check` — validates an ndjson trace exported by
//! `maly-obs` (`MALY_OBS_OUT` / the CLI's `--trace-out`).
//!
//! The checks mirror what a trace consumer relies on:
//!
//! * every non-empty line is a braced JSON object with a known
//!   `"type"` (`span`, `counter`, `gauge`, `hist`, `stats`) and the
//!   fields that type promises;
//! * span ids are unique and positive, every `parent` reference names a
//!   span present in the file, and a child's `[start_ns, end_ns]`
//!   interval nests inside its parent's (the exporter writes spans at
//!   guard drop, so a well-formed program cannot violate this);
//! * the counter, gauge, and histogram sections are each sorted by
//!   name, and a `stats` record's metric maps have sorted keys — the
//!   shape the exporter and the `server_stats` query both promise;
//! * at least one span is present — a spanless "trace" means the
//!   producer never enabled collection, which is the usual wiring bug
//!   this command exists to catch.
//!
//! Like `bench-check`, the parser is deliberately narrow: it reads the
//! line-per-record JSON `maly-obs` writes, not arbitrary JSON.

use std::collections::HashMap;
use std::fmt::Write as _;

/// What one trace file contained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceSummary {
    /// Number of span records.
    pub spans: usize,
    /// Number of counter records.
    pub counters: usize,
    /// Number of gauge records.
    pub gauges: usize,
    /// Number of histogram records.
    pub hists: usize,
    /// Number of `stats` snapshot records (the `server_stats` response
    /// body retagged for the trace stream).
    pub stats: usize,
    /// Number of root spans (no parent).
    pub roots: usize,
}

impl TraceSummary {
    /// Renders the one-line human summary.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "trace-check: OK — {} span(s) ({} root(s)), {} counter(s), {} gauge(s), \
             {} histogram(s), {} stats record(s)",
            self.spans, self.roots, self.counters, self.gauges, self.hists, self.stats
        );
        out
    }
}

/// Extracts a string field; tolerates optional whitespace after the
/// colon (the obs exporter writes compact `"key":"value"` records).
fn str_field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let tag = format!("\"{key}\":");
    let start = line.find(&tag)? + tag.len();
    let rest = line[start..].trim_start();
    let rest = rest.strip_prefix('"')?;
    let end = rest.find('"')?;
    Some(&rest[..end])
}

/// Extracts a numeric field (`"key":123`), or `None` when missing or
/// explicitly `null`.
fn num_field(line: &str, key: &str) -> Option<f64> {
    let tag = format!("\"{key}\":");
    let start = line.find(&tag)? + tag.len();
    let rest = line[start..].trim_start();
    if rest.starts_with("null") {
        return None;
    }
    let digits: String = rest
        .chars()
        .take_while(|c| c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E'))
        .collect();
    digits.parse().ok()
}

/// Keys of the depth-1 JSON object named `section` on this line, in
/// source order; `None` when the section is absent or not an object.
fn object_keys(line: &str, section: &str) -> Option<Vec<String>> {
    let tag = format!("\"{section}\":");
    let start = line.find(&tag)? + tag.len();
    let rest = line[start..].trim_start().strip_prefix('{')?;
    let mut keys = Vec::new();
    let mut depth = 1usize;
    let mut chars = rest.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '}' | ']' => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    break;
                }
            }
            '{' | '[' => depth += 1,
            '"' => {
                let mut s = String::new();
                let mut escaped = false;
                for c2 in chars.by_ref() {
                    if escaped {
                        s.push(c2);
                        escaped = false;
                    } else if c2 == '\\' {
                        escaped = true;
                    } else if c2 == '"' {
                        break;
                    } else {
                        s.push(c2);
                    }
                }
                // A depth-1 string immediately followed by ':' is a key
                // (value strings are followed by ',' or '}').
                if depth == 1 {
                    let mut ahead = chars.clone();
                    let is_key = loop {
                        match ahead.next() {
                            Some(' ') => continue,
                            Some(':') => break true,
                            _ => break false,
                        }
                    };
                    if is_key {
                        keys.push(s);
                    }
                }
            }
            _ => {}
        }
    }
    Some(keys)
}

/// Errors when a metric section's records are not sorted by name; the
/// exporter writes each section name-sorted, so an unsorted section
/// means a hand-edited or corrupted trace.
fn check_section_order(
    line: &str,
    n: usize,
    section: &str,
    last: &mut Option<String>,
) -> Result<(), String> {
    let name = str_field(line, "name").unwrap_or_default().to_string();
    if let Some(prev) = last {
        if prev.as_str() > name.as_str() {
            return Err(format!(
                "line {n}: {section} records are not sorted by name (`{name}` follows `{prev}`)"
            ));
        }
    }
    *last = Some(name);
    Ok(())
}

/// Errors when the named sub-object's keys are present but unsorted.
fn check_sorted_keys(line: &str, n: usize, section: &str) -> Result<(), String> {
    let Some(keys) = object_keys(line, section) else {
        return Ok(());
    };
    for pair in keys.windows(2) {
        if pair[0] > pair[1] {
            return Err(format!(
                "line {n}: stats `{section}` keys are not sorted (`{}` follows `{}`)",
                pair[1], pair[0]
            ));
        }
    }
    Ok(())
}

#[derive(Debug, Clone, Copy)]
struct SpanLine {
    line: usize,
    parent: Option<u64>,
    start_ns: u64,
    end_ns: u64,
}

/// Validates a trace's text.
///
/// # Errors
///
/// Returns a message naming the first offending line (or structural
/// problem) when the trace is malformed.
pub fn check_trace(text: &str) -> Result<TraceSummary, String> {
    let mut spans: HashMap<u64, SpanLine> = HashMap::new();
    let mut summary = TraceSummary {
        spans: 0,
        counters: 0,
        gauges: 0,
        hists: 0,
        stats: 0,
        roots: 0,
    };
    // Per-section previous name, for the sorted-by-name shape check.
    let mut last_counter: Option<String> = None;
    let mut last_gauge: Option<String> = None;
    let mut last_hist: Option<String> = None;
    for (idx, line) in text.lines().enumerate() {
        let n = idx + 1;
        if line.trim().is_empty() {
            continue;
        }
        if !(line.starts_with('{') && line.ends_with('}')) {
            return Err(format!("line {n}: not a braced JSON object"));
        }
        match str_field(line, "type") {
            Some("span") => {
                let id = num_field(line, "id")
                    .ok_or_else(|| format!("line {n}: span without numeric `id`"))?;
                if id < 1.0 || id.fract() != 0.0 {
                    return Err(format!("line {n}: span id {id} is not a positive integer"));
                }
                let id = id as u64;
                if str_field(line, "name").is_none_or(str::is_empty) {
                    return Err(format!("line {n}: span without a `name`"));
                }
                let start_ns = num_field(line, "start_ns")
                    .ok_or_else(|| format!("line {n}: span without `start_ns`"))?
                    as u64;
                let end_ns = num_field(line, "end_ns")
                    .ok_or_else(|| format!("line {n}: span without `end_ns`"))?
                    as u64;
                if end_ns < start_ns {
                    return Err(format!("line {n}: span {id} ends before it starts"));
                }
                if !line.contains("\"parent\":") {
                    return Err(format!("line {n}: span without a `parent` field"));
                }
                let parent = num_field(line, "parent").map(|p| p as u64);
                if parent.is_none() {
                    summary.roots += 1;
                }
                let record = SpanLine {
                    line: n,
                    parent,
                    start_ns,
                    end_ns,
                };
                if spans.insert(id, record).is_some() {
                    return Err(format!("line {n}: duplicate span id {id}"));
                }
                summary.spans += 1;
            }
            Some("counter") => {
                if str_field(line, "name").is_none_or(str::is_empty)
                    || num_field(line, "value").is_none()
                    || !matches!(str_field(line, "kind"), Some("work" | "diag"))
                {
                    return Err(format!(
                        "line {n}: counter record needs `name`, numeric `value`, \
                         and `kind` of work|diag"
                    ));
                }
                check_section_order(line, n, "counter", &mut last_counter)?;
                summary.counters += 1;
            }
            Some("gauge") => {
                if str_field(line, "name").is_none_or(str::is_empty)
                    || num_field(line, "value").is_none()
                {
                    return Err(format!(
                        "line {n}: gauge record needs `name` and numeric `value`"
                    ));
                }
                check_section_order(line, n, "gauge", &mut last_gauge)?;
                summary.gauges += 1;
            }
            Some("hist") => {
                if str_field(line, "name").is_none_or(str::is_empty)
                    || num_field(line, "count").is_none()
                    || !line.contains("\"buckets\":[")
                {
                    return Err(format!(
                        "line {n}: hist record needs `name`, numeric `count`, and `buckets`"
                    ));
                }
                // The resolution tag is optional (pre-gauge traces omit
                // it) but must be a known value when present.
                if let Some(res) = str_field(line, "resolution") {
                    if !matches!(res, "log2" | "hires") {
                        return Err(format!(
                            "line {n}: hist record has unknown resolution `{res}`"
                        ));
                    }
                }
                check_section_order(line, n, "hist", &mut last_hist)?;
                summary.hists += 1;
            }
            Some("stats") => {
                if !line.contains("\"work\":") {
                    return Err(format!("line {n}: stats record needs a `work` object"));
                }
                for section in ["work", "diag", "gauges", "latency"] {
                    check_sorted_keys(line, n, section)?;
                }
                summary.stats += 1;
            }
            Some(other) => return Err(format!("line {n}: unknown record type `{other}`")),
            None => return Err(format!("line {n}: record without a `type` field")),
        }
    }
    if summary.spans == 0 {
        return Err("trace holds no span records — was obs enabled in the producer?".to_string());
    }
    for (id, span) in &spans {
        let Some(parent_id) = span.parent else {
            continue;
        };
        let Some(parent) = spans.get(&parent_id) else {
            return Err(format!(
                "line {}: span {id} names parent {parent_id}, which is not in the trace",
                span.line
            ));
        };
        if span.start_ns < parent.start_ns || span.end_ns > parent.end_ns {
            return Err(format!(
                "line {}: span {id} [{}, {}] does not nest inside parent {parent_id} [{}, {}]",
                span.line, span.start_ns, span.end_ns, parent.start_ns, parent.end_ns
            ));
        }
    }
    Ok(summary)
}

/// File-level entry point.
///
/// # Errors
///
/// Returns a message on unreadable files or malformed traces; the
/// caller turns the message into a non-zero exit.
pub fn run_trace_check(path: &str) -> Result<TraceSummary, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    check_trace(&text)
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = concat!(
        "{\"type\":\"span\",\"id\":2,\"parent\":1,\"name\":\"par.chunk\",",
        "\"thread\":1,\"start_ns\":120,\"end_ns\":300}\n",
        "{\"type\":\"span\",\"id\":1,\"parent\":null,\"name\":\"cli.sweep\",",
        "\"thread\":0,\"start_ns\":100,\"end_ns\":400}\n",
        "{\"type\":\"counter\",\"kind\":\"work\",\"name\":\"adaptive.mesh_evals\",\"value\":518}\n",
        "{\"type\":\"counter\",\"kind\":\"diag\",\"name\":\"serve.refused\",\"value\":0}\n",
        "{\"type\":\"gauge\",\"name\":\"serve.inflight\",\"value\":0}\n",
        "{\"type\":\"gauge\",\"name\":\"serve.queue_depth\",\"value\":-1}\n",
        "{\"type\":\"hist\",\"name\":\"par.chunk_ns\",\"resolution\":\"log2\",\"count\":1,",
        "\"total_ns\":180,\"buckets\":[0,0,1]}\n",
        "{\"type\":\"hist\",\"name\":\"serve.request_ns\",\"resolution\":\"hires\",\"count\":2,",
        "\"total_ns\":2400,\"buckets\":[0,0,2]}\n",
        "{\"type\":\"stats\",\"work\":{\"model.queries\":3,\"serve.request_lines\":3},",
        "\"diag\":{\"serve.refused\":0},",
        "\"gauges\":{\"serve.inflight\":0,\"serve.queue_depth\":0},",
        "\"latency\":{\"model.eval_ns\":{\"count\":3,\"p50_ns\":900.0},",
        "\"serve.request_ns\":{\"count\":3,\"p50_ns\":1200.0,\"p999_ns\":1530.0}}}\n",
    );

    #[test]
    fn good_trace_passes() {
        let summary = check_trace(GOOD).expect("valid trace");
        assert_eq!(
            summary,
            TraceSummary {
                spans: 2,
                counters: 2,
                gauges: 2,
                hists: 2,
                stats: 1,
                roots: 1
            }
        );
    }

    #[test]
    fn unparsable_line_fails() {
        let bad = format!("{GOOD}not json\n");
        assert!(check_trace(&bad).expect_err("fails").contains("line 10"));
    }

    #[test]
    fn dangling_parent_fails() {
        let bad = concat!(
            "{\"type\":\"span\",\"id\":7,\"parent\":99,\"name\":\"x\",",
            "\"thread\":0,\"start_ns\":0,\"end_ns\":1}\n",
        );
        assert!(check_trace(bad)
            .expect_err("fails")
            .contains("parent 99, which is not in the trace"));
    }

    #[test]
    fn non_nesting_child_fails() {
        let bad = concat!(
            "{\"type\":\"span\",\"id\":1,\"parent\":null,\"name\":\"outer\",",
            "\"thread\":0,\"start_ns\":100,\"end_ns\":200}\n",
            "{\"type\":\"span\",\"id\":2,\"parent\":1,\"name\":\"inner\",",
            "\"thread\":0,\"start_ns\":150,\"end_ns\":250}\n",
        );
        assert!(check_trace(bad)
            .expect_err("fails")
            .contains("does not nest"));
    }

    #[test]
    fn duplicate_span_id_fails() {
        let bad = concat!(
            "{\"type\":\"span\",\"id\":1,\"parent\":null,\"name\":\"a\",",
            "\"thread\":0,\"start_ns\":0,\"end_ns\":1}\n",
            "{\"type\":\"span\",\"id\":1,\"parent\":null,\"name\":\"b\",",
            "\"thread\":0,\"start_ns\":0,\"end_ns\":1}\n",
        );
        assert!(check_trace(bad)
            .expect_err("fails")
            .contains("duplicate span id"));
    }

    #[test]
    fn spanless_trace_fails() {
        let bad = "{\"type\":\"counter\",\"kind\":\"work\",\"name\":\"n\",\"value\":1}\n";
        assert!(check_trace(bad)
            .expect_err("fails")
            .contains("no span records"));
    }

    #[test]
    fn unknown_type_fails() {
        let bad = format!("{GOOD}{{\"type\":\"mystery\"}}\n");
        assert!(check_trace(&bad)
            .expect_err("fails")
            .contains("unknown record type"));
    }

    /// Stale pre-gauge traces carry hist records without a
    /// `resolution` tag; they must keep validating.
    #[test]
    fn stale_hist_without_resolution_passes() {
        let stale = concat!(
            "{\"type\":\"span\",\"id\":1,\"parent\":null,\"name\":\"cli.sweep\",",
            "\"thread\":0,\"start_ns\":0,\"end_ns\":9}\n",
            "{\"type\":\"hist\",\"name\":\"par.chunk_ns\",\"count\":1,\"total_ns\":180,",
            "\"buckets\":[0,0,1]}\n",
        );
        let summary = check_trace(stale).expect("stale trace still valid");
        assert_eq!(summary.hists, 1);
    }

    #[test]
    fn unknown_hist_resolution_fails() {
        let bad = format!(
            "{GOOD}{}",
            "{\"type\":\"hist\",\"name\":\"z.last_ns\",\"resolution\":\"base10\",\
             \"count\":1,\"total_ns\":1,\"buckets\":[1]}\n"
        );
        assert!(check_trace(&bad)
            .expect_err("fails")
            .contains("unknown resolution `base10`"));
    }

    #[test]
    fn gauge_without_value_fails() {
        let bad = format!("{GOOD}{}", "{\"type\":\"gauge\",\"name\":\"z.depth\"}\n");
        assert!(check_trace(&bad)
            .expect_err("fails")
            .contains("gauge record needs"));
    }

    #[test]
    fn unsorted_gauge_section_fails() {
        let bad = format!(
            "{GOOD}{}",
            "{\"type\":\"gauge\",\"name\":\"a.depth\",\"value\":1}\n"
        );
        assert!(check_trace(&bad)
            .expect_err("fails")
            .contains("not sorted by name"));
    }

    #[test]
    fn stats_without_work_fails() {
        let bad = format!(
            "{GOOD}{}",
            "{\"type\":\"stats\",\"diag\":{\"serve.refused\":0}}\n"
        );
        assert!(check_trace(&bad)
            .expect_err("fails")
            .contains("needs a `work` object"));
    }

    #[test]
    fn stats_with_unsorted_keys_fails() {
        let bad = format!(
            "{GOOD}{}",
            "{\"type\":\"stats\",\"work\":{\"serve.request_lines\":3,\"model.queries\":3}}\n"
        );
        assert!(check_trace(&bad)
            .expect_err("fails")
            .contains("`work` keys are not sorted"));
    }
}
