//! `xtask trace-check` — validates an ndjson trace exported by
//! `maly-obs` (`MALY_OBS_OUT` / the CLI's `--trace-out`).
//!
//! The checks mirror what a trace consumer relies on:
//!
//! * every non-empty line is a braced JSON object with a known
//!   `"type"` (`span`, `counter`, `hist`) and the fields that type
//!   promises;
//! * span ids are unique and positive, every `parent` reference names a
//!   span present in the file, and a child's `[start_ns, end_ns]`
//!   interval nests inside its parent's (the exporter writes spans at
//!   guard drop, so a well-formed program cannot violate this);
//! * at least one span is present — a spanless "trace" means the
//!   producer never enabled collection, which is the usual wiring bug
//!   this command exists to catch.
//!
//! Like `bench-check`, the parser is deliberately narrow: it reads the
//! line-per-record JSON `maly-obs` writes, not arbitrary JSON.

use std::collections::HashMap;
use std::fmt::Write as _;

/// What one trace file contained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceSummary {
    /// Number of span records.
    pub spans: usize,
    /// Number of counter records.
    pub counters: usize,
    /// Number of histogram records.
    pub hists: usize,
    /// Number of root spans (no parent).
    pub roots: usize,
}

impl TraceSummary {
    /// Renders the one-line human summary.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "trace-check: OK — {} span(s) ({} root(s)), {} counter(s), {} histogram(s)",
            self.spans, self.roots, self.counters, self.hists
        );
        out
    }
}

/// Extracts a string field; tolerates optional whitespace after the
/// colon (the obs exporter writes compact `"key":"value"` records).
fn str_field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let tag = format!("\"{key}\":");
    let start = line.find(&tag)? + tag.len();
    let rest = line[start..].trim_start();
    let rest = rest.strip_prefix('"')?;
    let end = rest.find('"')?;
    Some(&rest[..end])
}

/// Extracts a numeric field (`"key":123`), or `None` when missing or
/// explicitly `null`.
fn num_field(line: &str, key: &str) -> Option<f64> {
    let tag = format!("\"{key}\":");
    let start = line.find(&tag)? + tag.len();
    let rest = line[start..].trim_start();
    if rest.starts_with("null") {
        return None;
    }
    let digits: String = rest
        .chars()
        .take_while(|c| c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E'))
        .collect();
    digits.parse().ok()
}

#[derive(Debug, Clone, Copy)]
struct SpanLine {
    line: usize,
    parent: Option<u64>,
    start_ns: u64,
    end_ns: u64,
}

/// Validates a trace's text.
///
/// # Errors
///
/// Returns a message naming the first offending line (or structural
/// problem) when the trace is malformed.
pub fn check_trace(text: &str) -> Result<TraceSummary, String> {
    let mut spans: HashMap<u64, SpanLine> = HashMap::new();
    let mut summary = TraceSummary {
        spans: 0,
        counters: 0,
        hists: 0,
        roots: 0,
    };
    for (idx, line) in text.lines().enumerate() {
        let n = idx + 1;
        if line.trim().is_empty() {
            continue;
        }
        if !(line.starts_with('{') && line.ends_with('}')) {
            return Err(format!("line {n}: not a braced JSON object"));
        }
        match str_field(line, "type") {
            Some("span") => {
                let id = num_field(line, "id")
                    .ok_or_else(|| format!("line {n}: span without numeric `id`"))?;
                if id < 1.0 || id.fract() != 0.0 {
                    return Err(format!("line {n}: span id {id} is not a positive integer"));
                }
                let id = id as u64;
                if str_field(line, "name").is_none_or(str::is_empty) {
                    return Err(format!("line {n}: span without a `name`"));
                }
                let start_ns = num_field(line, "start_ns")
                    .ok_or_else(|| format!("line {n}: span without `start_ns`"))?
                    as u64;
                let end_ns = num_field(line, "end_ns")
                    .ok_or_else(|| format!("line {n}: span without `end_ns`"))?
                    as u64;
                if end_ns < start_ns {
                    return Err(format!("line {n}: span {id} ends before it starts"));
                }
                if !line.contains("\"parent\":") {
                    return Err(format!("line {n}: span without a `parent` field"));
                }
                let parent = num_field(line, "parent").map(|p| p as u64);
                if parent.is_none() {
                    summary.roots += 1;
                }
                let record = SpanLine {
                    line: n,
                    parent,
                    start_ns,
                    end_ns,
                };
                if spans.insert(id, record).is_some() {
                    return Err(format!("line {n}: duplicate span id {id}"));
                }
                summary.spans += 1;
            }
            Some("counter") => {
                if str_field(line, "name").is_none_or(str::is_empty)
                    || num_field(line, "value").is_none()
                    || !matches!(str_field(line, "kind"), Some("work" | "diag"))
                {
                    return Err(format!(
                        "line {n}: counter record needs `name`, numeric `value`, \
                         and `kind` of work|diag"
                    ));
                }
                summary.counters += 1;
            }
            Some("hist") => {
                if str_field(line, "name").is_none_or(str::is_empty)
                    || num_field(line, "count").is_none()
                    || !line.contains("\"buckets\":[")
                {
                    return Err(format!(
                        "line {n}: hist record needs `name`, numeric `count`, and `buckets`"
                    ));
                }
                summary.hists += 1;
            }
            Some(other) => return Err(format!("line {n}: unknown record type `{other}`")),
            None => return Err(format!("line {n}: record without a `type` field")),
        }
    }
    if summary.spans == 0 {
        return Err("trace holds no span records — was obs enabled in the producer?".to_string());
    }
    for (id, span) in &spans {
        let Some(parent_id) = span.parent else {
            continue;
        };
        let Some(parent) = spans.get(&parent_id) else {
            return Err(format!(
                "line {}: span {id} names parent {parent_id}, which is not in the trace",
                span.line
            ));
        };
        if span.start_ns < parent.start_ns || span.end_ns > parent.end_ns {
            return Err(format!(
                "line {}: span {id} [{}, {}] does not nest inside parent {parent_id} [{}, {}]",
                span.line, span.start_ns, span.end_ns, parent.start_ns, parent.end_ns
            ));
        }
    }
    Ok(summary)
}

/// File-level entry point.
///
/// # Errors
///
/// Returns a message on unreadable files or malformed traces; the
/// caller turns the message into a non-zero exit.
pub fn run_trace_check(path: &str) -> Result<TraceSummary, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    check_trace(&text)
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = concat!(
        "{\"type\":\"span\",\"id\":2,\"parent\":1,\"name\":\"par.chunk\",",
        "\"thread\":1,\"start_ns\":120,\"end_ns\":300}\n",
        "{\"type\":\"span\",\"id\":1,\"parent\":null,\"name\":\"cli.sweep\",",
        "\"thread\":0,\"start_ns\":100,\"end_ns\":400}\n",
        "{\"type\":\"counter\",\"kind\":\"work\",\"name\":\"adaptive.mesh_evals\",\"value\":518}\n",
        "{\"type\":\"hist\",\"name\":\"par.chunk_ns\",\"count\":1,\"total_ns\":180,",
        "\"buckets\":[0,0,1]}\n",
    );

    #[test]
    fn good_trace_passes() {
        let summary = check_trace(GOOD).expect("valid trace");
        assert_eq!(
            summary,
            TraceSummary {
                spans: 2,
                counters: 1,
                hists: 1,
                roots: 1
            }
        );
    }

    #[test]
    fn unparsable_line_fails() {
        let bad = format!("{GOOD}not json\n");
        assert!(check_trace(&bad).expect_err("fails").contains("line 5"));
    }

    #[test]
    fn dangling_parent_fails() {
        let bad = concat!(
            "{\"type\":\"span\",\"id\":7,\"parent\":99,\"name\":\"x\",",
            "\"thread\":0,\"start_ns\":0,\"end_ns\":1}\n",
        );
        assert!(check_trace(bad)
            .expect_err("fails")
            .contains("parent 99, which is not in the trace"));
    }

    #[test]
    fn non_nesting_child_fails() {
        let bad = concat!(
            "{\"type\":\"span\",\"id\":1,\"parent\":null,\"name\":\"outer\",",
            "\"thread\":0,\"start_ns\":100,\"end_ns\":200}\n",
            "{\"type\":\"span\",\"id\":2,\"parent\":1,\"name\":\"inner\",",
            "\"thread\":0,\"start_ns\":150,\"end_ns\":250}\n",
        );
        assert!(check_trace(bad)
            .expect_err("fails")
            .contains("does not nest"));
    }

    #[test]
    fn duplicate_span_id_fails() {
        let bad = concat!(
            "{\"type\":\"span\",\"id\":1,\"parent\":null,\"name\":\"a\",",
            "\"thread\":0,\"start_ns\":0,\"end_ns\":1}\n",
            "{\"type\":\"span\",\"id\":1,\"parent\":null,\"name\":\"b\",",
            "\"thread\":0,\"start_ns\":0,\"end_ns\":1}\n",
        );
        assert!(check_trace(bad)
            .expect_err("fails")
            .contains("duplicate span id"));
    }

    #[test]
    fn spanless_trace_fails() {
        let bad = "{\"type\":\"counter\",\"kind\":\"work\",\"name\":\"n\",\"value\":1}\n";
        assert!(check_trace(bad)
            .expect_err("fails")
            .contains("no span records"));
    }

    #[test]
    fn unknown_type_fails() {
        let bad = format!("{GOOD}{{\"type\":\"mystery\"}}\n");
        assert!(check_trace(&bad)
            .expect_err("fails")
            .contains("unknown record type"));
    }
}
