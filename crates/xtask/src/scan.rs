//! Source preprocessing: splits Rust sources into classified lines so
//! the rule passes can reason about code, comments, and `#[cfg(test)]`
//! regions without a full parser.
//!
//! The classifier is deliberately line-oriented and heuristic — it
//! tracks string literals well enough to find trailing `//` comments
//! and counts braces well enough to skip test modules. That covers the
//! idioms this workspace actually uses; it is not a general Rust lexer.

/// One physical source line, classified for the rule passes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Line<'a> {
    /// 1-based line number in the file.
    pub number: usize,
    /// The code portion: everything before a trailing `//` comment.
    /// Empty for pure comment lines (`//`, `///`, `//!`).
    pub code: &'a str,
    /// The trailing comment including its `//` marker, or `""`.
    pub comment: &'a str,
    /// True when the line sits inside a `#[cfg(test)]`-gated block.
    pub in_test: bool,
}

/// Splits a line into its code and trailing-comment portions, honoring
/// string literals (a `//` inside a `"…"` does not start a comment).
fn split_comment(line: &str) -> (&str, &str) {
    let bytes = line.as_bytes();
    let mut in_string = false;
    let mut escaped = false;
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        if in_string {
            if escaped {
                escaped = false;
            } else if b == b'\\' {
                escaped = true;
            } else if b == b'"' {
                in_string = false;
            }
        } else if b == b'"' {
            in_string = true;
        } else if b == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
            return (&line[..i], &line[i..]);
        }
        i += 1;
    }
    (line, "")
}

/// Net brace balance of a code fragment (`{` minus `}`), ignoring
/// braces inside string literals.
fn brace_delta(code: &str) -> i64 {
    let mut delta = 0i64;
    let mut in_string = false;
    let mut escaped = false;
    for b in code.bytes() {
        if in_string {
            if escaped {
                escaped = false;
            } else if b == b'\\' {
                escaped = true;
            } else if b == b'"' {
                in_string = false;
            }
        } else {
            match b {
                b'"' => in_string = true,
                b'{' => delta += 1,
                b'}' => delta -= 1,
                _ => {}
            }
        }
    }
    delta
}

/// Tracks whether the scanner currently sits inside a test-gated item.
enum TestState {
    /// Regular library code.
    Out,
    /// Saw `#[cfg(test)]`; waiting for the gated item's opening brace.
    Pending,
    /// Inside the gated block, with the current brace depth.
    In(i64),
}

/// Classifies every line of `source`. Lines belonging to a
/// `#[cfg(test)]` item (attribute line included) carry `in_test: true`.
#[must_use]
pub fn classify(source: &str) -> Vec<Line<'_>> {
    let mut out = Vec::new();
    let mut state = TestState::Out;
    for (idx, raw) in source.lines().enumerate() {
        let (code, comment) = split_comment(raw);
        let trimmed = code.trim();
        let mut in_test = !matches!(state, TestState::Out);

        match state {
            TestState::Out => {
                if trimmed.starts_with("#[cfg(test)]") {
                    in_test = true;
                    state = TestState::Pending;
                }
            }
            TestState::Pending => {
                let delta = brace_delta(code);
                if delta > 0 {
                    state = TestState::In(delta);
                } else if trimmed.ends_with(';') {
                    // The attribute gated a single braceless item
                    // (e.g. `#[cfg(test)] use …;`): this line ends it.
                    state = TestState::Out;
                }
            }
            TestState::In(depth) => {
                let depth = depth + brace_delta(code);
                state = if depth <= 0 {
                    TestState::Out
                } else {
                    TestState::In(depth)
                };
            }
        }

        out.push(Line {
            number: idx + 1,
            code,
            comment,
            in_test,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_are_split_off() {
        let lines = classify("let a = 1; // trailing\n/// doc\ncode();\n");
        assert_eq!(lines[0].code, "let a = 1; ");
        assert_eq!(lines[0].comment, "// trailing");
        assert_eq!(lines[1].code, "");
        assert!(lines[1].comment.starts_with("///"));
        assert_eq!(lines[2].code, "code();");
    }

    #[test]
    fn slashes_inside_strings_are_not_comments() {
        let lines = classify(r#"let url = "http://x"; // real"#);
        assert_eq!(lines[0].code, r#"let url = "http://x"; "#);
        assert_eq!(lines[0].comment, "// real");
    }

    #[test]
    fn cfg_test_blocks_are_marked() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn after() {}\n";
        let lines = classify(src);
        assert!(!lines[0].in_test);
        assert!(lines[1].in_test);
        assert!(lines[2].in_test);
        assert!(lines[3].in_test);
        assert!(lines[4].in_test);
        assert!(!lines[5].in_test);
    }

    #[test]
    fn braceless_cfg_test_item_ends_at_semicolon() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn lib() {}\n";
        let lines = classify(src);
        assert!(lines[0].in_test);
        assert!(lines[1].in_test);
        assert!(!lines[2].in_test);
    }
}
