//! Source preprocessing: lexes Rust sources (see [`crate::lexer`]) and
//! folds the token stream back into classified lines for the rule
//! passes.
//!
//! Compared to the original per-line heuristics this pass is exact
//! where it matters:
//!
//! - **string literals are masked** in the `code` field (delimiters
//!   kept, contents blanked), so a needle like a panic call or an `f64`
//!   inside a string can never fire a rule, and a `{` inside a string
//!   can never confuse brace tracking or signature accumulation;
//! - **block comments** (including multi-line ones) are removed from
//!   `code` and surfaced through `comment`, so a commented-out
//!   parameter list cannot leak into a signature;
//! - **doc comments** (`///`, `//!`, `/** */`) belong to neither field:
//!   they document items, so an escape tag mentioned in prose never
//!   acts as a directive;
//! - `#[cfg(test)]` regions are tracked with real token-level brace
//!   depth, immune to braces in strings and comments.

use crate::lexer::{self, Token, TokenKind};

/// One physical source line, classified for the rule passes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Line {
    /// 1-based line number in the file.
    pub number: usize,
    /// The code portion: comments removed, string/char literal contents
    /// masked with spaces (delimiters kept).
    pub code: String,
    /// Every non-doc comment fragment on the line, `//` / `/* */`
    /// markers included. Escape tags (`audit:allow(…)`) live here.
    pub comment: String,
    /// True when the line sits inside a `#[cfg(test)]`-gated block.
    pub in_test: bool,
}

/// Masks a literal token's text: first and last character kept (the
/// delimiters), everything else blanked — except newlines, which are
/// preserved so multi-line literals still split into the right lines.
fn mask_literal(text: &str) -> String {
    let last = text.chars().count().saturating_sub(1);
    text.chars()
        .enumerate()
        .map(|(i, c)| {
            if c == '\n' || i == 0 || i == last {
                c
            } else {
                ' '
            }
        })
        .collect()
}

/// Tracks whether the scanner currently sits inside a test-gated item.
#[derive(Clone, Copy)]
enum TestState {
    /// Regular library code.
    Out,
    /// Saw `#[cfg(test)]`; waiting for the gated item's opening brace
    /// (or a terminating `;` for braceless items).
    Pending,
    /// Inside the gated block, with the current brace depth.
    In(i64),
}

/// Marks each token as test-gated or not: `#[cfg(test)]` flips the
/// state to pending, the gated item's braces (tracked at token level,
/// so strings and comments cannot confuse the count) bound the region.
pub(crate) fn test_flags(tokens: &[Token<'_>]) -> Vec<bool> {
    let mut flags = vec![false; tokens.len()];
    let mut state = TestState::Out;
    let mut i = 0;
    while i < tokens.len() {
        match state {
            TestState::Out => {
                if let Some(end) = match_cfg_test(tokens, i) {
                    for flag in &mut flags[i..=end] {
                        *flag = true;
                    }
                    state = TestState::Pending;
                    i = end + 1;
                    continue;
                }
            }
            TestState::Pending => {
                flags[i] = true;
                match tokens[i].text {
                    "{" => state = TestState::In(1),
                    ";" => state = TestState::Out,
                    _ => {}
                }
            }
            TestState::In(depth) => {
                flags[i] = true;
                let depth = match tokens[i].text {
                    "{" => depth + 1,
                    "}" => depth - 1,
                    _ => depth,
                };
                state = if depth <= 0 {
                    TestState::Out
                } else {
                    TestState::In(depth)
                };
            }
        }
        i += 1;
    }
    flags
}

/// Matches `#[cfg(test)]` (and `#[cfg(test, …)]` variants) starting at
/// token `i`, skipping trivia; returns the index of the closing `]`.
fn match_cfg_test(tokens: &[Token<'_>], i: usize) -> Option<usize> {
    // The `#` must be the token at `i` itself.
    if tokens[i].text != "#" {
        return None;
    }
    let significant: Vec<(usize, &str)> = tokens[i..]
        .iter()
        .enumerate()
        .filter(|(_, t)| !matches!(t.kind, TokenKind::Whitespace) && !t.is_comment())
        .map(|(j, t)| (i + j, t.text))
        .collect();
    let head: Vec<&str> = significant.iter().take(5).map(|&(_, t)| t).collect();
    if head != ["#", "[", "cfg", "(", "test"] {
        return None;
    }
    // Skip to the closing `]` at bracket depth zero (depth 1 after the
    // `(` already consumed above).
    let mut depth = 1i64;
    for &(abs, text) in &significant[5..] {
        match text {
            "(" | "[" => depth += 1,
            ")" => depth -= 1,
            "]" if depth == 0 => return Some(abs),
            _ => {}
        }
    }
    None
}

/// Classifies every line of `source`. Lines belonging to a
/// `#[cfg(test)]` item (attribute line included) carry `in_test: true`.
#[must_use]
pub fn classify(source: &str) -> Vec<Line> {
    let tokens = lexer::lex(source);
    let flags = test_flags(&tokens);
    let mut out: Vec<Line> = Vec::new();
    let mut number = 1usize;
    let mut code = String::new();
    let mut comment = String::new();
    let mut in_test = false;
    let mut flush =
        |number: &mut usize, code: &mut String, comment: &mut String, in_test: &mut bool| {
            out.push(Line {
                number: *number,
                code: std::mem::take(code),
                comment: std::mem::take(comment),
                in_test: *in_test,
            });
            *number += 1;
            *in_test = false;
        };

    for (token, &test) in tokens.iter().zip(&flags) {
        let rendered: std::borrow::Cow<'_, str> = match token.kind {
            TokenKind::Str | TokenKind::RawStr | TokenKind::CharLit => {
                std::borrow::Cow::Owned(mask_literal(token.text))
            }
            _ => std::borrow::Cow::Borrowed(token.text),
        };
        let mut fragments = rendered.split('\n').peekable();
        while let Some(fragment) = fragments.next() {
            if !fragment.is_empty() {
                in_test |= test;
                match token.kind {
                    TokenKind::LineComment | TokenKind::BlockComment => {
                        if !token.is_doc() {
                            comment.push_str(fragment);
                        }
                        // Keep code tokens separated where a comment sat.
                        if matches!(token.kind, TokenKind::BlockComment) {
                            code.push(' ');
                        }
                    }
                    _ => code.push_str(fragment),
                }
            }
            if fragments.peek().is_some() {
                flush(&mut number, &mut code, &mut comment, &mut in_test);
            }
        }
    }
    if !code.is_empty() || !comment.is_empty() {
        flush(&mut number, &mut code, &mut comment, &mut in_test);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_are_split_off() {
        let lines = classify("let a = 1; // trailing\n/// doc\ncode();\n");
        assert_eq!(lines[0].code, "let a = 1; ");
        assert_eq!(lines[0].comment, "// trailing");
        // Doc comments belong to neither field.
        assert_eq!(lines[1].code, "");
        assert_eq!(lines[1].comment, "");
        assert_eq!(lines[2].code, "code();");
    }

    #[test]
    fn slashes_inside_strings_are_not_comments() {
        let lines = classify(r#"let url = "http://x"; // real"#);
        assert_eq!(lines[0].code, r#"let url = "        "; "#);
        assert_eq!(lines[0].comment, "// real");
    }

    #[test]
    fn string_contents_are_masked() {
        let lines = classify("let msg = \"call .unwrap() on { f64 }\";\n");
        assert!(!lines[0].code.contains("unwrap"));
        assert!(!lines[0].code.contains('{'));
        assert!(lines[0].code.starts_with("let msg = \""));
    }

    #[test]
    fn multiline_strings_stay_masked_on_every_line() {
        let src = "const DOC: &str = \"\npub fn area(width_cm: f64) -> f64 {\n\";\n";
        let lines = classify(src);
        assert_eq!(lines.len(), 3);
        assert!(
            !lines[1].code.contains("f64"),
            "string interior must be masked: {:?}",
            lines[1].code
        );
        assert!(lines[2].code.contains(';'));
    }

    #[test]
    fn block_comments_route_to_comment_not_code() {
        let lines = classify("let a /* name: f64, */ = 1;\n/* spanning\n   lines */\nb();\n");
        assert!(!lines[0].code.contains("f64"));
        assert!(lines[0].comment.contains("f64"));
        assert!(lines[1].comment.contains("spanning"));
        assert!(lines[2].comment.contains("lines"));
        assert_eq!(lines[3].code, "b();");
    }

    #[test]
    fn cfg_test_blocks_are_marked() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn after() {}\n";
        let lines = classify(src);
        assert!(!lines[0].in_test);
        assert!(lines[1].in_test);
        assert!(lines[2].in_test);
        assert!(lines[3].in_test);
        assert!(lines[4].in_test);
        assert!(!lines[5].in_test);
    }

    #[test]
    fn braceless_cfg_test_item_ends_at_semicolon() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn lib() {}\n";
        let lines = classify(src);
        assert!(lines[0].in_test);
        assert!(lines[1].in_test);
        assert!(!lines[2].in_test);
    }

    #[test]
    fn braces_in_strings_do_not_confuse_test_tracking() {
        let src = "#[cfg(test)]\nmod tests {\n    const S: &str = \"}\";\n    fn t() {}\n}\nfn lib() {}\n";
        let lines = classify(src);
        assert!(lines[3].in_test, "the stray brace is inside a string");
        assert!(!lines[5].in_test);
    }

    #[test]
    fn line_numbers_are_continuous() {
        let lines = classify("a\n\nb\n");
        let numbers: Vec<usize> = lines.iter().map(|l| l.number).collect();
        assert_eq!(numbers, vec![1, 2, 3]);
    }
}
