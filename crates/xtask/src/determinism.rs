//! The determinism rule family: flags values that differ run-to-run —
//! hash-map iteration order, randomized hasher state, wall-clock
//! reads, thread identity, relaxed atomic reads — on result paths.
//!
//! The workspace's load-bearing contract is that parallel==serial and
//! served==direct outputs are bit-identical (DESIGN.md §7/§10); the
//! cost model itself is pure arithmetic, so any nondeterminism is an
//! engineering artifact this rule can catch before the golden tests
//! do.
//!
//! Exemptions follow the "counters are Diag, results are Work" model:
//! the observability and harness crates ([`EXEMPT_CRATES`]) may read
//! clocks and thread ids because their output is diagnostic, and a
//! relaxed atomic load is exempt when the symbol index shows its
//! receiver is a `maly_obs` `Counter` static — a per-value exemption,
//! not a per-line escape. Everything else needs an explicit
//! `audit:allow(determinism)` tag with a justification.

use crate::escapes::Escapes;
use crate::index::FileIndex;
use crate::rules::{Rule, Violation};
use crate::scan::{classify, Line};

/// Crates whose entire output is diagnostic, not result data: the
/// observability layer, the timing harness, the load generator, and
/// this linter.
pub const EXEMPT_CRATES: &[&str] = &["maly-bench", "maly-loadgen", "maly-obs", "xtask"];

/// Map-typed storage: `HashMap` or `HashSet` (std's randomized-hasher
/// collections; `BTreeMap`/`BTreeSet` iterate sorted and are fine).
fn is_map_type(ty: &str) -> bool {
    ty.contains("HashMap<") || ty.contains("HashSet<")
}

/// True when `code[..pos]` ends at an identifier boundary (so `NAME`
/// matched at `pos` is not the tail of a longer identifier).
fn boundary_before(code: &str, pos: usize) -> bool {
    code[..pos]
        .chars()
        .next_back()
        .is_none_or(|c| !c.is_alphanumeric() && c != '_')
}

/// True when the identifier `name` occurs in `code` followed directly
/// by `suffix`, at an identifier boundary.
fn ident_followed_by(code: &str, name: &str, suffix: &str) -> bool {
    let pattern = format!("{name}{suffix}");
    let mut from = 0;
    while let Some(pos) = code[from..].find(&pattern) {
        let abs = from + pos;
        if boundary_before(code, abs) {
            return true;
        }
        from = abs + 1;
    }
    false
}

/// The binding name ascribed a map type at the `:` found at byte `pos`
/// of `code`, if the ascription is `name: [&[mut] ['a]] [path::]HashMap<…>`
/// (or `HashSet`). Covers function parameters, which the symbol index
/// does not record as storage.
fn map_ascription(code: &str, pos: usize) -> Option<String> {
    // A `::` path separator is not a type ascription.
    if code[..pos].ends_with(':') || code[pos + 1..].starts_with(':') {
        return None;
    }
    let mut ty = code[pos + 1..].trim_start();
    ty = ty.strip_prefix('&').unwrap_or(ty).trim_start();
    if let Some(rest) = ty.strip_prefix("mut ") {
        ty = rest.trim_start();
    }
    if let Some(rest) = ty.strip_prefix('\'') {
        // Skip a lifetime: `&'a HashMap<…>`.
        ty = rest
            .trim_start_matches(|c: char| c.is_alphanumeric() || c == '_')
            .trim_start();
    }
    let head: String = ty
        .chars()
        .take_while(|&c| c.is_alphanumeric() || c == ':' || c == '_')
        .collect();
    let generic = ty[head.len()..].starts_with('<');
    if !generic || !(head.ends_with("HashMap") || head.ends_with("HashSet")) {
        return None;
    }
    let name: String = code[..pos]
        .trim_end()
        .chars()
        .rev()
        .take_while(|&c| c.is_alphanumeric() || c == '_')
        .collect::<Vec<_>>()
        .into_iter()
        .rev()
        .collect();
    if name.is_empty() || name.chars().next().is_some_and(char::is_numeric) {
        None
    } else {
        Some(name)
    }
}

/// Collects the names of map-typed bindings visible in this file:
/// struct fields, statics, `let` locals whose declared type,
/// constructor, or same-file-function initializer is a
/// `HashMap`/`HashSet`, and map-typed fn parameters.
fn map_names(lines: &[Line], index: &FileIndex) -> Vec<String> {
    let mut names: Vec<String> = index
        .storage_names(is_map_type)
        .iter()
        .map(|it| it.name.clone())
        .collect();
    let map_fns: Vec<String> = index
        .items
        .iter()
        .filter(|it| it.kind == crate::index::ItemKind::Fn && !it.in_test && is_map_type(&it.ty))
        .map(|it| it.name.clone())
        .collect();
    for line in lines {
        if line.in_test {
            continue;
        }
        let mut from = 0;
        while let Some(pos) = line.code[from..].find(':') {
            let abs = from + pos;
            from = abs + 1;
            if let Some(name) = map_ascription(&line.code, abs) {
                names.push(name);
            }
        }
        let code = line.code.trim_start();
        let Some(rest) = code.strip_prefix("let ") else {
            continue;
        };
        let rest = rest.strip_prefix("mut ").unwrap_or(rest);
        let name: String = rest
            .chars()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect();
        if name.is_empty() {
            continue;
        }
        let declared_map = rest[name.len()..]
            .trim_start()
            .strip_prefix(':')
            .is_some_and(|ty| is_map_type(ty.split('=').next().unwrap_or(ty)));
        let constructed_map = ["HashMap::", "HashSet::"]
            .iter()
            .any(|c| line.code.contains(c));
        let from_map_fn = map_fns
            .iter()
            .any(|f| ident_followed_by(&line.code, f, "("));
        if declared_map || constructed_map || from_map_fn {
            names.push(name);
        }
    }
    names.sort();
    names.dedup();
    names
}

/// True when `code` iterates the binding `name` in hash order:
/// `.iter()`, `.keys()`, `.values()`, `.drain()`, `.into_iter()`, or a
/// `for … in [&[mut]] name` loop.
fn iterates(code: &str, name: &str) -> bool {
    const ITER_SUFFIXES: &[&str] = &[
        ".iter()",
        ".iter_mut()",
        ".keys()",
        ".values()",
        ".values_mut()",
        ".into_iter()",
        ".drain(",
        ".retain(",
    ];
    if ITER_SUFFIXES
        .iter()
        .any(|s| ident_followed_by(code, name, s))
    {
        return true;
    }
    if let Some(for_pos) = code.find("for ") {
        let tail = &code[for_pos..];
        for prefix in [" in &mut ", " in &", " in "] {
            if let Some(pos) = tail.find(prefix) {
                let after = tail[pos + prefix.len()..].trim_start();
                if after.starts_with(name)
                    && after[name.len()..]
                        .chars()
                        .next()
                        .is_none_or(|c| !c.is_alphanumeric() && c != '_')
                {
                    return true;
                }
            }
        }
    }
    false
}

/// The identifier directly before `pattern` in `code` (the receiver of
/// a method call), if any.
fn receiver_before(code: &str, pattern: &str) -> Option<String> {
    let pos = code.find(pattern)?;
    let head = &code[..pos];
    let name: String = head
        .chars()
        .rev()
        .take_while(|&c| c.is_alphanumeric() || c == '_')
        .collect::<Vec<_>>()
        .into_iter()
        .rev()
        .collect();
    if name.is_empty() {
        None
    } else {
        Some(name)
    }
}

/// Runs the determinism family over one file.
#[must_use]
pub fn determinism_in(
    file: &str,
    lines: &[Line],
    index: &FileIndex,
    escapes: &mut Escapes,
) -> Vec<Violation> {
    let maps = map_names(lines, index);
    let counters = index.counter_statics();
    let mut out = Vec::new();
    let push = |line: usize, message: String, out: &mut Vec<Violation>| {
        out.push(Violation {
            file: file.to_string(),
            line,
            rule: Rule::Determinism,
            message,
        });
    };
    for (i, line) in lines.iter().enumerate() {
        if line.in_test || line.code.trim().is_empty() {
            continue;
        }
        let code = &line.code;

        if code.contains("RandomState") && !escapes.allowed(lines, i, "determinism") {
            push(
                line.number,
                "RandomState seeds a per-process hasher; use a fixed-seed hasher or a \
                 BTreeMap so results are reproducible"
                    .to_string(),
                &mut out,
            );
        }
        if (code.contains("SystemTime::now(") || code.contains("UNIX_EPOCH"))
            && !escapes.allowed(lines, i, "determinism")
        {
            push(
                line.number,
                "wall-clock read on a result path; thread timestamps in as data or move \
                 them to maly-obs"
                    .to_string(),
                &mut out,
            );
        }
        if (ident_followed_by(code, "thread", "::current()") || code.contains("ThreadId"))
            && !escapes.allowed(lines, i, "determinism")
        {
            push(
                line.number,
                "thread identity is scheduling-dependent; key work by task index, not \
                 thread id"
                    .to_string(),
                &mut out,
            );
        }
        if code.contains("Ordering::Relaxed")
            && (code.contains(".load(") || code.contains(".fetch_"))
        {
            let receiver = receiver_before(code, ".load(")
                .or_else(|| receiver_before(code, ".fetch_"))
                .unwrap_or_default();
            let is_counter = counters.iter().any(|c| *c == receiver);
            if !is_counter && !escapes.allowed(lines, i, "determinism") {
                push(
                    line.number,
                    format!(
                        "relaxed atomic read of `{receiver}` can observe different values \
                         run-to-run; use SeqCst on result paths (maly-obs Counter statics \
                         are exempt)"
                    ),
                    &mut out,
                );
            }
        }
        for name in &maps {
            if iterates(code, name) && !escapes.allowed(lines, i, "determinism") {
                push(
                    line.number,
                    format!(
                        "iterating `{name}` (HashMap/HashSet) yields hash order, which \
                         varies per process; iterate a fixed key order or collect-and-sort \
                         first"
                    ),
                    &mut out,
                );
                break;
            }
        }
    }
    out
}

/// Convenience wrapper over raw source (fixtures and tests).
#[must_use]
pub fn determinism(file: &str, source: &str) -> Vec<Violation> {
    let lines = classify(source);
    let index = crate::index::index_file(source);
    let mut escapes = Escapes::collect(&lines);
    determinism_in(file, &lines, &index, &mut escapes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_map_iteration_via_declared_type() {
        let src = "use std::collections::HashMap;\n\
                   pub fn run(m: &HashMap<u8, f64>) {\n\
                   \x20   let totals: HashMap<u8, f64> = HashMap::new();\n\
                   \x20   for (k, v) in &totals {\n\
                   \x20       let _ = (k, v);\n\
                   \x20   }\n\
                   }\n";
        let v = determinism("f.rs", src);
        assert!(v.iter().any(|v| v.message.contains("totals")), "got: {v:?}");
    }

    #[test]
    fn flags_iteration_of_map_returned_by_same_file_fn() {
        let src = "use std::collections::HashMap;\n\
                   fn demanded() -> HashMap<u8, f64> { HashMap::new() }\n\
                   pub fn run() {\n\
                   \x20   let steps = demanded();\n\
                   \x20   for (k, v) in &steps { let _ = (k, v); }\n\
                   }\n";
        let v = determinism("f.rs", src);
        assert!(v.iter().any(|v| v.message.contains("steps")), "got: {v:?}");
    }

    #[test]
    fn flags_iteration_of_map_typed_fn_parameter() {
        let src = "pub fn run(m: &std::collections::HashMap<u32, u32>) -> Vec<u32> {\n\
                   \x20   let mut v = Vec::new();\n\
                   \x20   for (k, _) in m.iter() {\n\
                   \x20       v.push(*k);\n\
                   \x20   }\n\
                   \x20   v\n\
                   }\n";
        let v = determinism("f.rs", src);
        assert!(v.iter().any(|v| v.message.contains("`m`")), "got: {v:?}");
    }

    #[test]
    fn path_separators_are_not_ascriptions() {
        let src = "pub fn run() {\n\
                   \x20   let v = std::collections::HashMap::<u8, u8>::new();\n\
                   \x20   let _ = v.get(&1);\n\
                   \x20   for x in items.iter() { let _ = x; }\n\
                   }\n";
        assert!(determinism("f.rs", src).is_empty());
    }

    #[test]
    fn get_lookups_are_fine() {
        let src = "use std::collections::HashMap;\n\
                   pub fn run() {\n\
                   \x20   let m: HashMap<u8, f64> = HashMap::new();\n\
                   \x20   let _ = m.get(&1);\n\
                   }\n";
        assert!(determinism("f.rs", src).is_empty());
    }

    #[test]
    fn counter_relaxed_loads_are_exempt_others_flagged() {
        let src = "use std::sync::atomic::{AtomicU64, Ordering};\n\
                   static HITS: maly_obs::Counter = maly_obs::Counter::diag(\"h\");\n\
                   static RAW: AtomicU64 = AtomicU64::new(0);\n\
                   pub fn read() -> u64 {\n\
                   \x20   let _ = HITS.load(Ordering::Relaxed);\n\
                   \x20   RAW.load(Ordering::Relaxed)\n\
                   }\n";
        let v = determinism("f.rs", src);
        assert_eq!(v.len(), 1, "got: {v:?}");
        assert!(v[0].message.contains("RAW"));
    }

    #[test]
    fn escape_tag_suppresses() {
        let src = "pub fn stamp() -> u64 {\n\
                   \x20   // audit:allow(determinism): log filename only, not result data.\n\
                   \x20   let t = std::time::SystemTime::now();\n\
                   \x20   let _ = t; 0\n\
                   }\n";
        assert!(determinism("f.rs", src).is_empty());
    }

    #[test]
    fn needle_in_string_or_test_code_is_ignored() {
        let src = "pub fn doc() -> &'static str { \"SystemTime::now() is banned\" }\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                   \x20   #[test]\n\
                   \x20   fn t() { let _ = std::time::SystemTime::now(); }\n\
                   }\n";
        assert!(determinism("f.rs", src).is_empty());
    }
}
