//! Escape-tag bookkeeping: `audit:allow(<tag>)` collection, matching,
//! and staleness detection.
//!
//! Every rule family routes suppression through [`Escapes::allowed`],
//! which both answers "is this finding escaped?" and records that the
//! escape earned its keep. After all families have run over a file,
//! [`Escapes::stale`] reports every tag that suppressed nothing — so
//! the escape ratchet can only tighten: an escape whose violation was
//! fixed (or that never matched, e.g. one sitting in `#[cfg(test)]`
//! code the rules skip) must be deleted, not left to silently cover a
//! future regression.
//!
//! Doc comments are prose, not directives: the lexer-based classifier
//! keeps them out of [`Line::comment`], so a rule's documentation can
//! mention the tag syntax without creating a live escape site.

use crate::rules::{Rule, Violation};
use crate::scan::Line;

/// Every escape tag a rule family honors. An `audit:allow(...)` with
/// any other tag is itself a violation.
pub const KNOWN_TAGS: &[&str] = &[
    "panic",
    "bare-f64",
    "nan",
    "float-cmp",
    "raw-thread",
    "raw-timing",
    "determinism",
    "lock-order",
    "lane-purity",
];

/// One `audit:allow(<tag>)` occurrence in a file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EscapeSite {
    /// 1-based line the tag sits on.
    pub line: usize,
    /// The tag text inside the parentheses.
    pub tag: String,
    /// Whether any rule finding was suppressed by this site.
    pub used: bool,
    /// Whether the site sits in `#[cfg(test)]`-gated code (rules skip
    /// test code, so such a site can never be used).
    pub in_test: bool,
}

/// The per-file escape registry.
#[derive(Debug, Default)]
pub struct Escapes {
    sites: Vec<EscapeSite>,
}

/// Extracts every `audit:allow(<tag>)` occurrence from a comment.
fn tags_in(comment: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut rest = comment;
    let marker = concat!("audit:", "allow(");
    while let Some(pos) = rest.find(marker) {
        let after = &rest[pos + marker.len()..];
        if let Some(end) = after.find(')') {
            out.push(after[..end].to_string());
            rest = &after[end..];
        } else {
            break;
        }
    }
    out
}

impl Escapes {
    /// Scans the classified lines for escape sites (test code included —
    /// rules skip test code, so a test-side escape is stale by
    /// construction and will be reported as such).
    #[must_use]
    pub fn collect(lines: &[Line]) -> Self {
        let mut sites = Vec::new();
        for line in lines {
            for tag in tags_in(&line.comment) {
                sites.push(EscapeSite {
                    line: line.number,
                    tag,
                    used: false,
                    in_test: line.in_test,
                });
            }
        }
        Self { sites }
    }

    /// All collected sites.
    #[must_use]
    pub fn sites(&self) -> &[EscapeSite] {
        &self.sites
    }

    /// Number of non-test sites carrying `tag` (the input to the
    /// per-crate escape ratchets).
    #[must_use]
    pub fn count(&self, tag: &str) -> usize {
        self.sites
            .iter()
            .filter(|s| !s.in_test && s.tag == tag)
            .count()
    }

    /// Looks up the escape site covering the code line at `lines[idx]`
    /// for `tag` *without* marking it used: the tag may sit inline on
    /// the line itself or on the contiguous comment/blank block
    /// directly above it. Returns the site index.
    #[must_use]
    pub fn check(&self, lines: &[Line], idx: usize, tag: &str) -> Option<usize> {
        let mut covered = vec![lines[idx].number];
        let mut k = idx;
        while k > 0 {
            let prev = &lines[k - 1];
            if !prev.code.trim().is_empty() {
                break;
            }
            covered.push(prev.number);
            k -= 1;
        }
        self.sites
            .iter()
            .position(|s| s.tag == tag && covered.contains(&s.line))
    }

    /// Marks the site at `site_idx` as having suppressed a finding.
    pub fn mark_used(&mut self, site_idx: usize) {
        if let Some(site) = self.sites.get_mut(site_idx) {
            site.used = true;
        }
    }

    /// True when the finding on `lines[idx]` is escaped for `tag`;
    /// marks the covering site used.
    pub fn allowed(&mut self, lines: &[Line], idx: usize, tag: &str) -> bool {
        match self.check(lines, idx, tag) {
            Some(site) => {
                self.mark_used(site);
                true
            }
            None => false,
        }
    }

    /// Like [`Escapes::allowed`] but for a multi-line construct (a
    /// signature): the tag may sit inline on any line of
    /// `lines[start..=end]` or above the first line.
    pub fn allowed_span(&mut self, lines: &[Line], start: usize, end: usize, tag: &str) -> bool {
        if self.allowed(lines, start, tag) {
            return true;
        }
        let last = end.min(lines.len().saturating_sub(1));
        for idx in start + 1..=last {
            if let Some(site) = self
                .sites
                .iter()
                .position(|s| s.tag == tag && s.line == lines[idx].number)
            {
                self.mark_used(site);
                return true;
            }
        }
        false
    }

    /// Violations for every site that suppressed nothing, plus every
    /// unknown tag. Stale escapes are found *after* all rule families
    /// have run over the file.
    #[must_use]
    pub fn stale(&self, file: &str) -> Vec<Violation> {
        let mut out = Vec::new();
        for site in &self.sites {
            if !KNOWN_TAGS.contains(&site.tag.as_str()) {
                out.push(Violation {
                    file: file.to_string(),
                    line: site.line,
                    rule: Rule::StaleEscape,
                    message: format!(
                        "unknown escape tag `{}`; known tags: {}",
                        site.tag,
                        KNOWN_TAGS.join(", ")
                    ),
                });
            } else if !site.used {
                let hint = if site.in_test {
                    " (the rules skip #[cfg(test)] code, so a test-side escape never fires)"
                } else {
                    ""
                };
                out.push(Violation {
                    file: file.to_string(),
                    line: site.line,
                    rule: Rule::StaleEscape,
                    message: format!(
                        "stale escape `audit:allow({})`: it suppresses no violation{hint}; \
                         delete it so the ratchet stays tight",
                        site.tag
                    ),
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::classify;

    #[test]
    fn collects_tags_and_counts_non_test_sites() {
        let src = concat!(
            "// audit:allow(panic): reason\n",
            "fn f() {}\n",
            "#[cfg(test)]\n",
            "mod tests {\n",
            "    // audit:allow(panic): test-side\n",
            "    fn t() {}\n",
            "}\n",
        );
        let esc = Escapes::collect(&classify(src));
        assert_eq!(esc.sites().len(), 2);
        assert_eq!(esc.count("panic"), 1);
        assert!(esc.sites()[1].in_test);
    }

    #[test]
    fn doc_comment_mentions_are_not_sites() {
        let src = "//! Escape with `audit:allow(panic)` comments.\nfn f() {}\n";
        let esc = Escapes::collect(&classify(src));
        assert!(esc.sites().is_empty());
    }

    #[test]
    fn allowed_walks_the_comment_block_above() {
        let src = "// audit:allow(nan): the index\n// is provably fine.\n\nlet x = 1;\n";
        let lines = classify(src);
        let mut esc = Escapes::collect(&lines);
        assert!(esc.allowed(&lines, 3, "nan"));
        assert!(esc.stale("f.rs").is_empty());
    }

    #[test]
    fn unused_and_unknown_tags_are_stale() {
        let src = "// audit:allow(panic): nothing here\nfn clean() {}\n// audit:allow(bogus): typo\nfn also_clean() {}\n";
        let lines = classify(src);
        let esc = Escapes::collect(&lines);
        let stale = esc.stale("f.rs");
        assert_eq!(stale.len(), 2);
        assert!(stale[0].message.contains("stale escape"));
        assert!(stale[1].message.contains("unknown escape tag"));
    }
}
