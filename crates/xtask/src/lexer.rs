//! A std-only Rust token lexer for the maly-audit analyzer.
//!
//! The lexer replaces the original per-line heuristics: it understands
//! line and (nested) block comments, regular / raw / byte string
//! literals, char literals vs. lifetimes, identifiers, numbers, and
//! punctuation. It is *lossless*: concatenating the `text` of every
//! token reproduces the source byte-for-byte (enforced by the
//! `lexer_roundtrip` test over every `.rs` file in the workspace), so
//! downstream passes can reason in tokens while still reporting exact
//! line numbers.
//!
//! It is deliberately **not** a full Rust lexer: it does not validate
//! numeric literal grammar or reject malformed escapes — on anything
//! it does not recognize it falls back to a one-character [`TokenKind::Punct`]
//! token, which keeps the round-trip guarantee on arbitrary input.

/// The token classes the analyzer distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// A run of whitespace (may span newlines).
    Whitespace,
    /// A `//`-to-end-of-line comment (newline not included). Doc
    /// comments (`///`, `//!`) are the same kind; see [`Token::is_doc`].
    LineComment,
    /// A `/* … */` comment, nesting handled; may span lines.
    BlockComment,
    /// A `"…"`, `b"…"`, or `c"…"` string literal (escapes handled).
    Str,
    /// A raw string literal `r"…"`, `r#"…"#`, `br#"…"#` (any hash depth).
    RawStr,
    /// A char or byte literal `'x'`, `b'\n'`.
    CharLit,
    /// A lifetime such as `'a` or `'static`.
    Lifetime,
    /// An identifier or keyword.
    Ident,
    /// A numeric literal (integer or float, suffixes included).
    Number,
    /// A single character of punctuation (also the malformed-input
    /// fallback).
    Punct,
}

/// One lexed token: a classified slice of the source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token<'a> {
    /// Which class the token belongs to.
    pub kind: TokenKind,
    /// The exact source text, byte-for-byte.
    pub text: &'a str,
    /// 1-based line number of the token's first character.
    pub line: usize,
}

impl Token<'_> {
    /// True for doc comments (`///`, `//!`, `/**`, `/*!`), which
    /// document items rather than annotate code — escape tags inside
    /// them are treated as prose, not directives. A `////…` ruler line
    /// is a regular comment, per rustdoc's own rules.
    #[must_use]
    pub fn is_doc(&self) -> bool {
        match self.kind {
            TokenKind::LineComment => {
                (self.text.starts_with("///") && !self.text.starts_with("////"))
                    || self.text.starts_with("//!")
            }
            TokenKind::BlockComment => {
                (self.text.starts_with("/**") && !self.text.starts_with("/***"))
                    || self.text.starts_with("/*!")
            }
            _ => false,
        }
    }

    /// True for comments of either flavor.
    #[must_use]
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }
}

/// True for characters that may continue an identifier.
fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// True for characters that may start an identifier.
fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

/// The cursor state shared by the scanning helpers: a byte offset into
/// the source, always on a char boundary.
struct Cursor<'a> {
    src: &'a str,
    /// Byte offset of the next unconsumed character.
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(src: &'a str) -> Self {
        Self { src, pos: 0 }
    }

    /// The next character without consuming it.
    fn peek(&self) -> Option<char> {
        self.src[self.pos..].chars().next()
    }

    /// The character after the next one.
    fn peek2(&self) -> Option<char> {
        let mut it = self.src[self.pos..].chars();
        it.next();
        it.next()
    }

    /// Consumes one character, returning it.
    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += c.len_utf8();
        Some(c)
    }

    /// Consumes characters while `pred` holds.
    fn eat_while(&mut self, pred: impl Fn(char) -> bool) {
        while let Some(c) = self.peek() {
            if !pred(c) {
                break;
            }
            self.bump();
        }
    }

    /// Consumes a quoted run terminated by `quote`, honoring `\`
    /// escapes; stops at end of input (unterminated literals lex to the
    /// end of the file — still a valid round-trip).
    fn eat_string_body(&mut self, quote: char) {
        while let Some(c) = self.bump() {
            if c == '\\' {
                self.bump();
            } else if c == quote {
                break;
            }
        }
    }

    /// Consumes a raw-string body after its opening `"` given the hash
    /// depth: scans to `"` followed by `hashes` `#` characters.
    fn eat_raw_string_body(&mut self, hashes: usize) {
        while let Some(c) = self.bump() {
            if c != '"' {
                continue;
            }
            let rest = &self.src[self.pos..];
            if rest.chars().take(hashes).filter(|&h| h == '#').count() == hashes {
                for _ in 0..hashes {
                    self.bump();
                }
                break;
            }
        }
    }

    /// Consumes a block comment body after the opening `/*`, handling
    /// nesting.
    fn eat_block_comment_body(&mut self) {
        let mut depth = 1usize;
        while let Some(c) = self.bump() {
            if c == '/' && self.peek() == Some('*') {
                self.bump();
                depth += 1;
            } else if c == '*' && self.peek() == Some('/') {
                self.bump();
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
        }
    }

    /// Consumes a numeric literal after its first digit: digits,
    /// underscores, alphanumeric suffixes, at most one fractional dot
    /// (only when followed by a digit), and signed exponents.
    fn eat_number_body(&mut self) {
        let mut saw_dot = false;
        let mut prev_was_exp = false;
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == '_' {
                prev_was_exp = matches!(c, 'e' | 'E');
                self.bump();
            } else if c == '.' && !saw_dot && self.peek2().is_some_and(|d| d.is_ascii_digit()) {
                saw_dot = true;
                prev_was_exp = false;
                self.bump();
            } else if (c == '+' || c == '-') && prev_was_exp {
                prev_was_exp = false;
                self.bump();
            } else {
                break;
            }
        }
    }
}

/// True when the source at `cursor` starts a raw-string opener
/// (`"` or `#…#"`); used after an `r`/`br` prefix.
fn raw_string_hashes(rest: &str) -> Option<usize> {
    let hashes = rest.chars().take_while(|&c| c == '#').count();
    let mut it = rest.chars().skip(hashes);
    (it.next() == Some('"')).then_some(hashes)
}

/// Lexes `source` into a lossless token stream: the concatenation of
/// every token's `text` equals `source`.
#[must_use]
pub fn lex(source: &str) -> Vec<Token<'_>> {
    let mut cursor = Cursor::new(source);
    let mut tokens = Vec::new();
    let mut line = 1usize;
    while let Some(first) = cursor.peek() {
        let start = cursor.pos;
        let start_line = line;
        let kind = scan_token(&mut cursor, first);
        let text = &source[start..cursor.pos];
        line += text.bytes().filter(|&b| b == b'\n').count();
        tokens.push(Token {
            kind,
            text,
            line: start_line,
        });
    }
    tokens
}

/// Scans one token starting at `first`, advancing the cursor past it.
fn scan_token(cursor: &mut Cursor<'_>, first: char) -> TokenKind {
    if first.is_whitespace() {
        cursor.eat_while(char::is_whitespace);
        return TokenKind::Whitespace;
    }
    if first == '/' {
        match cursor.peek2() {
            Some('/') => {
                cursor.eat_while(|c| c != '\n');
                return TokenKind::LineComment;
            }
            Some('*') => {
                cursor.bump();
                cursor.bump();
                cursor.eat_block_comment_body();
                return TokenKind::BlockComment;
            }
            _ => {
                cursor.bump();
                return TokenKind::Punct;
            }
        }
    }
    if first == '"' {
        cursor.bump();
        cursor.eat_string_body('"');
        return TokenKind::Str;
    }
    if first == '\'' {
        return scan_quote(cursor);
    }
    if first.is_ascii_digit() {
        cursor.bump();
        cursor.eat_number_body();
        return TokenKind::Number;
    }
    if is_ident_start(first) {
        return scan_ident_or_prefixed(cursor, first);
    }
    cursor.bump();
    TokenKind::Punct
}

/// Scans an identifier, or a string/char literal behind an `r`, `b`,
/// `br`, `c`, or `b'` prefix.
fn scan_ident_or_prefixed(cursor: &mut Cursor<'_>, first: char) -> TokenKind {
    // Raw / byte / C-string prefixes are identifiers glued to a quote.
    if matches!(first, 'r' | 'b' | 'c') {
        let rest = &cursor.src[cursor.pos + first.len_utf8()..];
        match first {
            'r' => {
                if let Some(hashes) = raw_string_hashes(rest) {
                    cursor.bump(); // r
                    for _ in 0..hashes {
                        cursor.bump();
                    }
                    cursor.bump(); // opening "
                    cursor.eat_raw_string_body(hashes);
                    return TokenKind::RawStr;
                }
            }
            'b' => {
                if rest.starts_with('"') {
                    cursor.bump();
                    cursor.bump();
                    cursor.eat_string_body('"');
                    return TokenKind::Str;
                }
                if rest.starts_with('\'') {
                    cursor.bump();
                    cursor.bump();
                    cursor.eat_string_body('\'');
                    return TokenKind::CharLit;
                }
                if let Some(stripped) = rest.strip_prefix('r') {
                    if let Some(hashes) = raw_string_hashes(stripped) {
                        cursor.bump(); // b
                        cursor.bump(); // r
                        for _ in 0..hashes {
                            cursor.bump();
                        }
                        cursor.bump(); // opening "
                        cursor.eat_raw_string_body(hashes);
                        return TokenKind::RawStr;
                    }
                }
            }
            'c' => {
                if rest.starts_with('"') {
                    cursor.bump();
                    cursor.bump();
                    cursor.eat_string_body('"');
                    return TokenKind::Str;
                }
            }
            _ => {}
        }
    }
    cursor.bump();
    cursor.eat_while(is_ident_continue);
    TokenKind::Ident
}

/// Disambiguates `'a'` (char literal) from `'a` (lifetime) after a
/// leading `'`.
fn scan_quote(cursor: &mut Cursor<'_>) -> TokenKind {
    cursor.bump(); // the opening '
    match cursor.peek() {
        // `'\n'`, `'\u{1F600}'`: escapes are always char literals.
        Some('\\') => {
            cursor.eat_string_body('\'');
            TokenKind::CharLit
        }
        Some(c) if is_ident_continue(c) => {
            // `'a'` is a char; `'a` / `'static` are lifetimes. Scan the
            // ident run and check for a closing quote right after a
            // single-character run.
            let run_start = cursor.pos;
            cursor.eat_while(is_ident_continue);
            let run = &cursor.src[run_start..cursor.pos];
            if cursor.peek() == Some('\'') && run.chars().count() == 1 {
                cursor.bump();
                TokenKind::CharLit
            } else {
                TokenKind::Lifetime
            }
        }
        // `'('`, `' '`: a non-ident char then (hopefully) a quote.
        Some(_) => {
            cursor.bump();
            if cursor.peek() == Some('\'') {
                cursor.bump();
            }
            TokenKind::CharLit
        }
        None => TokenKind::Punct,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(src: &str) -> Vec<Token<'_>> {
        let tokens = lex(src);
        let rebuilt: String = tokens.iter().map(|t| t.text).collect();
        assert_eq!(rebuilt, src, "tokens must reassemble the source");
        tokens
    }

    fn kinds(src: &str) -> Vec<TokenKind> {
        roundtrip(src)
            .iter()
            .filter(|t| t.kind != TokenKind::Whitespace)
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn comments_and_code() {
        let toks = roundtrip("let a = 1; // trailing\n/* block */ b();\n");
        assert!(toks
            .iter()
            .any(|t| t.kind == TokenKind::LineComment && t.text == "// trailing"));
        assert!(toks
            .iter()
            .any(|t| t.kind == TokenKind::BlockComment && t.text == "/* block */"));
    }

    #[test]
    fn nested_block_comments() {
        let toks = roundtrip("/* outer /* inner */ still */ x");
        assert_eq!(toks[0].kind, TokenKind::BlockComment);
        assert_eq!(toks[0].text, "/* outer /* inner */ still */");
    }

    #[test]
    fn strings_hide_comment_markers() {
        let toks = roundtrip(r#"let url = "http://x"; // real"#);
        let strs: Vec<_> = toks.iter().filter(|t| t.kind == TokenKind::Str).collect();
        assert_eq!(strs.len(), 1);
        assert_eq!(strs[0].text, r#""http://x""#);
        assert!(toks.iter().any(|t| t.kind == TokenKind::LineComment));
    }

    #[test]
    fn multiline_and_raw_strings() {
        let toks = roundtrip("let a = \"line1\nline2\";\nlet b = r#\"raw \" quote\"#;");
        let strs: Vec<_> = toks.iter().filter(|t| t.kind == TokenKind::Str).collect();
        assert_eq!(strs[0].text, "\"line1\nline2\"");
        let raws: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::RawStr)
            .collect();
        assert_eq!(raws[0].text, "r#\"raw \" quote\"#");
    }

    #[test]
    fn byte_literals() {
        assert!(kinds("b\"bytes\"").contains(&TokenKind::Str));
        assert!(kinds("b'\\n'").contains(&TokenKind::CharLit));
        assert!(kinds("br#\"raw bytes\"#").contains(&TokenKind::RawStr));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        assert_eq!(kinds("'a'"), vec![TokenKind::CharLit]);
        assert_eq!(
            kinds("&'a str"),
            vec![TokenKind::Punct, TokenKind::Lifetime, TokenKind::Ident]
        );
        assert_eq!(kinds("'static"), vec![TokenKind::Lifetime]);
        assert_eq!(kinds("'\\u{1F600}'"), vec![TokenKind::CharLit]);
        assert_eq!(kinds("'{'"), vec![TokenKind::CharLit]);
    }

    #[test]
    fn numbers_do_not_swallow_ranges() {
        assert_eq!(
            kinds("1..3"),
            vec![
                TokenKind::Number,
                TokenKind::Punct,
                TokenKind::Punct,
                TokenKind::Number
            ]
        );
        assert_eq!(kinds("1.5e-3"), vec![TokenKind::Number]);
        assert_eq!(kinds("0x1f_u32"), vec![TokenKind::Number]);
        assert_eq!(kinds("1.0f64"), vec![TokenKind::Number]);
    }

    #[test]
    fn line_numbers_track_newlines() {
        let toks = lex("a\nb\n\"s1\ns2\"\nc");
        let find = |text: &str| toks.iter().find(|t| t.text == text).map(|t| t.line);
        assert_eq!(find("a"), Some(1));
        assert_eq!(find("b"), Some(2));
        assert_eq!(find("\"s1\ns2\""), Some(3));
        assert_eq!(find("c"), Some(5));
    }

    #[test]
    fn doc_comment_detection() {
        let toks = lex("/// doc\n//! inner\n// plain\n//// ruler\n/** block doc */\n/* plain */");
        let doc_flags: Vec<bool> = toks
            .iter()
            .filter(|t| t.is_comment())
            .map(Token::is_doc)
            .collect();
        assert_eq!(doc_flags, vec![true, true, false, false, true, false]);
    }

    #[test]
    fn unterminated_literals_still_roundtrip() {
        roundtrip("let a = \"never closed");
        roundtrip("let b = r#\"still open");
        roundtrip("/* dangling");
    }
}
