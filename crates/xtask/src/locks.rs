//! The lock-order rule family: builds the lock-acquisition graph over
//! every `Mutex`/`RwLock` field and static the symbol index knows
//! about, then fails on cycles (two code paths acquiring the same pair
//! of locks in opposite orders can deadlock) and on locks held across
//! blocking I/O (a guard held over a socket write stalls every other
//! thread queued on that lock behind a slow client).
//!
//! Lock identity is `Owner.field` (or the static's name), resolved
//! per file. Guard liveness is tracked by brace depth: a plain `let`
//! guard dies when its block closes, `if let`/`while let`/`match`
//! guards die with the arm they scope, and `drop(guard)` kills one
//! early. Acquiring the *same* lock identity twice while the first
//! guard lives is deliberately not an edge: the sharded caches
//! legitimately hold all shard read-guards of one field at once, and
//! same-identity ordering is a self-loop the graph cannot orient
//! anyway.
//!
//! Escapes: an acquisition line tagged `audit:allow(lock-order)`
//! suppresses the cycle its edge participates in (the tag is counted
//! used only when such a cycle exists, so vetting comments go stale
//! the moment the ordering risk disappears); the same tag on a
//! blocking-I/O line suppresses the held-across-I/O finding.

use crate::escapes::Escapes;
use crate::index::{FileIndex, ItemKind};
use crate::rules::{Rule, Violation};
use crate::scan::{classify, Line};

/// One directed edge in the global lock-acquisition graph: `to` was
/// acquired while `from` was held.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockEdge {
    /// Lock already held.
    pub from: String,
    /// Lock acquired under it.
    pub to: String,
    /// File the acquisition sits in.
    pub file: String,
    /// 1-based acquisition line.
    pub line: usize,
    /// Escape site index in the file's [`Escapes`] registry, when the
    /// acquisition line carries `audit:allow(lock-order)`.
    pub escape: Option<usize>,
}

/// Per-file lock analysis output.
#[derive(Debug, Default)]
pub struct LockAnalysis {
    /// Locks-held-across-I/O findings (cycles are found globally).
    pub violations: Vec<Violation>,
    /// This file's contribution to the acquisition graph.
    pub edges: Vec<LockEdge>,
}

/// A live lock guard.
struct Guard {
    binding: String,
    lock: String,
    /// The guard dies when brace depth drops below this.
    alive_depth: i64,
}

/// Blocking-call needles: a lock held across any of these stalls other
/// acquirers behind external I/O.
const BLOCKING_NEEDLES: &[&str] = &[
    ".write_all(",
    ".flush(",
    ".send(",
    ".recv(",
    ".read_until(",
    ".read_line(",
    ".accept(",
    ".connect(",
    "write_line(",
];

/// Extracts the binding name from a `let` line, looking inside
/// `Ok(…)`/`Some(…)` patterns and skipping `mut`.
fn let_binding(code: &str) -> Option<String> {
    let pos = code.find("let ")?;
    let mut rest = code[pos + 4..].trim_start();
    for wrapper in ["Ok(", "Some(", "Err("] {
        if let Some(inner) = rest.strip_prefix(wrapper) {
            rest = inner;
            break;
        }
    }
    rest = rest.strip_prefix("mut ").unwrap_or(rest).trim_start();
    let name: String = rest
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    if name.is_empty() || name == "_" {
        None
    } else {
        Some(name)
    }
}

/// One positional event on a code line, processed in byte order so
/// same-line braces scope guards correctly (a one-line
/// `fn f() { let g = x.lock(); }` must not leak its guard).
enum Event {
    /// `NAME.lock()` / `NAME.read()` / `NAME.write()` of a known lock.
    Acquire(String),
    /// A blocking-I/O call.
    Blocking,
    /// `drop(name)`.
    Drop(String),
}

/// Finds lock acquisitions on a code line: occurrences of
/// `NAME.lock()`, `NAME.read()`, or `NAME.write()` where `NAME` is a
/// known lock (field or static). Returns `(byte_pos, identity)` pairs.
fn acquisitions(code: &str, locks: &[(String, String)]) -> Vec<(usize, String)> {
    let mut out: Vec<(usize, String)> = Vec::new();
    for (name, identity) in locks {
        for method in [".lock()", ".read()", ".write()"] {
            let pattern = format!("{name}{method}");
            let mut from = 0;
            while let Some(pos) = code[from..].find(&pattern) {
                let abs = from + pos;
                let boundary = code[..abs]
                    .chars()
                    .next_back()
                    .is_none_or(|c| !c.is_alphanumeric() && c != '_');
                if boundary {
                    out.push((abs, identity.clone()));
                }
                from = abs + pattern.len();
            }
        }
    }
    out
}

/// Builds the positional event list for one code line.
fn line_events(code: &str, locks: &[(String, String)]) -> Vec<(usize, Event)> {
    let mut events: Vec<(usize, Event)> = acquisitions(code, locks)
        .into_iter()
        .map(|(pos, id)| (pos, Event::Acquire(id)))
        .collect();
    for needle in BLOCKING_NEEDLES {
        let mut from = 0;
        while let Some(pos) = code[from..].find(needle) {
            events.push((from + pos, Event::Blocking));
            from += pos + needle.len();
        }
    }
    let mut from = 0;
    while let Some(pos) = code[from..].find("drop(") {
        let abs = from + pos;
        let arg: String = code[abs + 5..]
            .chars()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect();
        events.push((abs, Event::Drop(arg)));
        from = abs + 5;
    }
    events.sort_by_key(|(pos, _)| *pos);
    events
}

/// Runs the per-file half of the family: collects acquisition edges
/// and flags locks held across blocking I/O.
#[must_use]
pub fn analyze_file(
    file: &str,
    lines: &[Line],
    index: &FileIndex,
    escapes: &mut Escapes,
) -> LockAnalysis {
    // Lock identities known in this file: `Owner.field` for fields,
    // the bare name for statics.
    let locks: Vec<(String, String)> = index
        .items
        .iter()
        .filter(|it| {
            matches!(it.kind, ItemKind::Field | ItemKind::Static)
                && !it.in_test
                && (it.ty.contains("Mutex<") || it.ty.contains("RwLock<"))
        })
        .map(|it| {
            let identity = if it.kind == ItemKind::Field {
                format!("{}.{}", it.owner, it.name)
            } else {
                it.name.clone()
            };
            (it.name.clone(), identity)
        })
        .collect();

    let mut analysis = LockAnalysis::default();
    if locks.is_empty() {
        return analysis;
    }

    let mut guards: Vec<Guard> = Vec::new();
    let mut depth = 0i64;
    for (i, line) in lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        let code = &line.code;
        let mut events = line_events(code, &locks).into_iter().peekable();

        // Walk the line positionally: braces (strings are masked,
        // comments removed, so every brace is structural) interleave
        // with acquisitions, blocking calls, and drops in byte order.
        for (pos, ch) in code.char_indices() {
            while events.peek().is_some_and(|(p, _)| *p <= pos) {
                let Some((_, event)) = events.next() else {
                    break;
                };
                match event {
                    Event::Acquire(lock) => {
                        let escape = escapes.check(lines, i, "lock-order");
                        for g in &guards {
                            if g.lock != lock {
                                analysis.edges.push(LockEdge {
                                    from: g.lock.clone(),
                                    to: lock.clone(),
                                    file: file.to_string(),
                                    line: line.number,
                                    escape,
                                });
                            }
                        }
                        if let Some(binding) = let_binding(code) {
                            let trimmed = code.trim_start();
                            let scoped = trimmed.starts_with("if let")
                                || trimmed.starts_with("while let")
                                || trimmed.starts_with("} else if let");
                            guards.push(Guard {
                                binding,
                                lock,
                                alive_depth: depth + i64::from(scoped),
                            });
                        }
                    }
                    Event::Blocking => {
                        if !guards.is_empty() && !escapes.allowed(lines, i, "lock-order") {
                            let held: Vec<&str> = guards.iter().map(|g| g.lock.as_str()).collect();
                            analysis.violations.push(Violation {
                                file: file.to_string(),
                                line: line.number,
                                rule: Rule::LockOrder,
                                message: format!(
                                    "blocking I/O while holding lock(s) {}; drop the guard \
                                     (or scope it in a block) before the call",
                                    held.join(", ")
                                ),
                            });
                        }
                    }
                    Event::Drop(arg) => {
                        guards.retain(|g| g.binding != arg);
                    }
                }
            }
            match ch {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    guards.retain(|g| depth >= g.alive_depth);
                }
                _ => {}
            }
        }
        // Events past the last character (none in practice: every
        // needle ends before the line does, but stay total).
        for (_, event) in events {
            if let Event::Drop(arg) = event {
                guards.retain(|g| g.binding != arg);
            }
        }
        if depth <= 0 {
            depth = 0;
            guards.clear();
        }
    }
    analysis
}

/// Global cycle detection over the merged acquisition graph. Returns
/// the cycle findings plus the escape sites (file, site index) that
/// suppressed one and must be marked used.
#[must_use]
pub fn cycle_violations(edges: &[LockEdge]) -> (Vec<Violation>, Vec<(String, usize)>) {
    let mut out = Vec::new();
    let mut used = Vec::new();
    let mut seen_cycles: Vec<Vec<String>> = Vec::new();
    for edge in edges {
        // A cycle through `edge` exists iff `edge.to` reaches
        // `edge.from`.
        let Some(path) = reach(edges, &edge.to, &edge.from) else {
            continue;
        };
        let mut cycle: Vec<String> = vec![edge.from.clone()];
        cycle.extend(path);
        let mut key = cycle.clone();
        key.sort();
        key.dedup();
        if seen_cycles.contains(&key) {
            continue;
        }
        seen_cycles.push(key);
        // An escape on any participating edge vets the whole cycle.
        let escaped = std::iter::once(edge)
            .chain(
                edges
                    .iter()
                    .filter(|e| cycle.windows(2).any(|w| e.from == w[0] && e.to == w[1])),
            )
            .find_map(|e| e.escape.map(|site| (e.file.clone(), site)));
        if let Some(site) = escaped {
            used.push(site);
            continue;
        }
        out.push(Violation {
            file: edge.file.clone(),
            line: edge.line,
            rule: Rule::LockOrder,
            message: format!(
                "lock-order cycle: {} — acquire these locks in one global order",
                cycle.join(" -> ")
            ),
        });
    }
    (out, used)
}

/// BFS from `from` to `to` over the edge list; returns the node path
/// (excluding `from`, including `to`) when reachable.
fn reach(edges: &[LockEdge], from: &str, to: &str) -> Option<Vec<String>> {
    let mut queue: Vec<(String, Vec<String>)> = vec![(from.to_string(), vec![from.to_string()])];
    let mut visited: Vec<String> = vec![from.to_string()];
    while let Some((node, path)) = queue.pop() {
        if node == to {
            return Some(path);
        }
        for e in edges.iter().filter(|e| e.from == node) {
            if !visited.contains(&e.to) {
                visited.push(e.to.clone());
                let mut next = path.clone();
                next.push(e.to.clone());
                queue.insert(0, (e.to.clone(), next));
            }
        }
    }
    None
}

/// Convenience wrapper over raw source: per-file analysis plus cycle
/// detection on this file's own edges (fixtures and tests).
#[must_use]
pub fn lock_order(file: &str, source: &str) -> Vec<Violation> {
    let lines = classify(source);
    let index = crate::index::index_file(source);
    let mut escapes = Escapes::collect(&lines);
    let mut analysis = analyze_file(file, &lines, &index, &mut escapes);
    let (cycles, _) = cycle_violations(&analysis.edges);
    analysis.violations.extend(cycles);
    analysis.violations
}

#[cfg(test)]
mod tests {
    use super::*;

    const CYCLIC: &str = r#"
use std::sync::Mutex;
pub struct S {
    a: Mutex<u64>,
    b: Mutex<u64>,
}
impl S {
    pub fn ab(&self) {
        let ga = self.a.lock();
        let gb = self.b.lock();
        let _ = (ga, gb);
    }
    pub fn ba(&self) {
        let gb = self.b.lock();
        let ga = self.a.lock();
        let _ = (ga, gb);
    }
}
"#;

    #[test]
    fn opposite_order_acquisitions_cycle() {
        let v = lock_order("f.rs", CYCLIC);
        assert!(
            v.iter().any(|v| v.message.contains("lock-order cycle")),
            "got: {v:?}"
        );
    }

    #[test]
    fn consistent_order_is_clean() {
        let src = CYCLIC.replace(
            "let gb = self.b.lock();\n        let ga = self.a.lock();",
            "let ga = self.a.lock();\n        let gb = self.b.lock();",
        );
        assert!(lock_order("f.rs", &src).is_empty());
    }

    #[test]
    fn same_lock_shards_do_not_self_edge() {
        let src = r#"
use std::sync::RwLock;
pub struct Shards {
    map: RwLock<u64>,
}
pub fn batch(shards: &[Shards]) {
    let mut guards = Vec::new();
    for s in shards {
        guards.push(s.map.read());
    }
    let _ = guards;
}
"#;
        assert!(lock_order("f.rs", src).is_empty());
    }

    #[test]
    fn blocking_io_under_guard_fires_and_scoped_guard_is_clean() {
        let src = r#"
use std::sync::Mutex;
pub struct Q {
    queue: Mutex<Vec<u8>>,
}
impl Q {
    pub fn bad(&self, out: &mut impl std::io::Write) {
        let g = self.queue.lock();
        let _ = out.write_all(b"x");
        let _ = g;
    }
    pub fn good(&self, out: &mut impl std::io::Write) {
        {
            let g = self.queue.lock();
            let _ = g;
        }
        let _ = out.write_all(b"x");
    }
}
"#;
        let v = lock_order("f.rs", src);
        assert_eq!(v.len(), 1, "got: {v:?}");
        assert!(v[0].message.contains("blocking I/O"));
    }

    #[test]
    fn drop_releases_the_guard() {
        let src = r#"
use std::sync::Mutex;
pub struct Q {
    queue: Mutex<Vec<u8>>,
}
impl Q {
    pub fn ok(&self, out: &mut impl std::io::Write) {
        let g = self.queue.lock();
        drop(g);
        let _ = out.write_all(b"x");
    }
}
"#;
        assert!(lock_order("f.rs", src).is_empty());
    }

    #[test]
    fn escape_vets_a_cycle_and_is_marked_used() {
        let src = CYCLIC.replace(
            "let gb = self.b.lock();\n        let ga = self.a.lock();",
            "let gb = self.b.lock();\n        // audit:allow(lock-order): b-then-a is \
             startup-only, pre-thread.\n        let ga = self.a.lock();",
        );
        let lines = classify(&src);
        let index = crate::index::index_file(&src);
        let mut escapes = Escapes::collect(&lines);
        let analysis = analyze_file("f.rs", &lines, &index, &mut escapes);
        let (cycles, used) = cycle_violations(&analysis.edges);
        assert!(cycles.is_empty(), "got: {cycles:?}");
        assert_eq!(used.len(), 1);
        escapes.mark_used(used[0].1);
        assert!(escapes.stale("f.rs").is_empty());
    }
}
