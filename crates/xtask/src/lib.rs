//! maly-audit — the workspace's self-contained static analysis pass.
//!
//! Run as `cargo run -p xtask -- lint`. Five rule families keep the
//! numeric core honest:
//!
//! 1. **panic-freedom** — no `unwrap`/`expect`/`panic!` family calls in
//!    non-test library code, ratcheted by per-crate budgets so legacy
//!    sites cannot grow;
//! 2. **unit-safety** — public signatures in the dimensioned crates
//!    must not pass bare `f64` where a `maly-units` newtype exists;
//! 3. **NaN-safety** — no `partial_cmp().unwrap()`, no float ordering
//!    via `partial_cmp`, no float-literal `==`;
//! 4. **crate hygiene** — workspace-inherited metadata, `[lints]`
//!    inheritance, `#![forbid(unsafe_code)]` + `#![warn(missing_docs)]`
//!    crate roots, no wildcard versions or placeholder URLs;
//! 5. **raw-thread containment** — no raw `std::thread::spawn` outside
//!    `crates/par`, so every parallel path stays deterministic and
//!    honors `MALY_PAR_THREADS`;
//! 6. **tracked-artifact hygiene** — no build artifacts in version
//!    control (`target/` trees, cargo fingerprints, stray `--flag`
//!    files); checked against `git ls-files` when git is available;
//! 7. **raw-timing containment** — no ad-hoc `Instant::now()` /
//!    `eprintln!` timing outside `crates/obs`, `crates/bench`, and
//!    `crates/xtask`; instrumentation flows through `maly-obs` so it
//!    shows up in exported traces instead of scattered stderr noise.
//!
//! `cargo run -p xtask -- bench-check <candidate.json>` separately
//! diffs a fresh bench baseline against the committed
//! `BENCH_sweeps.json` (see [`bench`]), and
//! `cargo run -p xtask -- trace-check <trace.ndjson>` validates an
//! exported `maly-obs` trace (see [`trace`]).
//!
//! Escape hatches are inline comments: `audit:allow(panic)`,
//! `audit:allow(bare-f64)`, `audit:allow(nan)`,
//! `audit:allow(float-cmp)`, `audit:allow(raw-thread)`,
//! `audit:allow(raw-timing)` — each expected to carry a justification.
//! The linter is std-only: it works in fully offline builds.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench;
pub mod rules;
pub mod scan;
pub mod trace;

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

pub use rules::{Rule, Violation};

/// Panic ratchet budgets: the number of tolerated panic sites per
/// crate. These only go DOWN — new code must be panic-free, and paying
/// down a crate's legacy sites lowers its line here.
pub const PANIC_BUDGETS: &[(&str, usize)] = &[
    ("maly-bench", 8),
    ("maly-cli", 0),
    ("maly-cost-model", 0),
    ("maly-cost-optim", 0),
    ("maly-fabline-sim", 11),
    ("maly-model", 0),
    ("maly-obs", 0),
    ("maly-paper-data", 0),
    ("maly-par", 0),
    ("maly-repro", 55),
    ("maly-serve", 0),
    ("maly-tech-trend", 3),
    ("maly-test-economics", 4),
    ("maly-units", 3),
    ("maly-viz", 1),
    ("maly-wafer-geom", 10),
    ("maly-yield-model", 0),
    ("silicon-cost", 0),
    ("xtask", 0),
];

/// Crates whose public APIs are dimension-checked by the unit-safety
/// rule (they sit on the Eq. (1)–(9) numeric path).
pub const UNIT_SAFETY_CRATES: &[&str] = &[
    "maly-cost-model",
    "maly-yield-model",
    "maly-wafer-geom",
    "maly-test-economics",
];

/// Unit-safety escape ratchet: tolerated `audit:allow(bare-f64)` tags
/// per dimension-checked crate. Like [`PANIC_BUDGETS`] these only go
/// DOWN — new public API takes newtypes instead of new escape tags.
/// The one surviving site is wafer-geom's saw-street boundary, where
/// zero is a legitimate sentinel no positive newtype can carry.
pub const UNIT_ESCAPE_BUDGETS: &[(&str, usize)] = &[
    ("maly-cost-model", 0),
    ("maly-test-economics", 0),
    ("maly-wafer-geom", 1),
    ("maly-yield-model", 0),
];

/// Crates sanctioned to read the clock and write to stderr directly:
/// the observability layer itself, the timing harness, and this linter.
/// Everywhere else the raw-timing rule applies.
pub const RAW_TIMING_CRATES: &[&str] = &["maly-obs", "maly-bench", "xtask"];

/// Per-crate panic accounting for the rendered report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrateStats {
    /// Crate name from its manifest.
    pub name: String,
    /// Non-allowed panic sites found in non-test library code.
    pub panic_sites: usize,
    /// The ratchet budget for this crate.
    pub budget: usize,
}

/// The full lint result: findings plus the panic-budget table.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Report {
    /// All rule findings, in deterministic (crate, file) order.
    pub violations: Vec<Violation>,
    /// Per-crate panic accounting, sorted by crate name.
    pub stats: Vec<CrateStats>,
}

impl Report {
    /// True when the tree passes: no findings and every crate within
    /// its panic budget.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Renders the human-readable report.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "maly-audit: panic sites per crate (sites / budget)");
        for s in &self.stats {
            let marker = if s.panic_sites > s.budget {
                "  OVER"
            } else {
                ""
            };
            let _ = writeln!(
                out,
                "  {:<22} {:>3} / {:<3}{marker}",
                s.name, s.panic_sites, s.budget
            );
        }
        if self.violations.is_empty() {
            let _ = writeln!(out, "maly-audit: OK — no violations");
        } else {
            let _ = writeln!(out, "maly-audit: {} violation(s)", self.violations.len());
            for v in &self.violations {
                let _ = writeln!(out, "  {v}");
            }
        }
        out
    }
}

/// Recursively collects `.rs` files under `dir`, sorted for
/// deterministic reports.
fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    paths.sort();
    for path in paths {
        if path.is_dir() {
            rust_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Extracts the `name = "…"` value from a manifest.
fn package_name(manifest: &str) -> Option<String> {
    manifest.lines().find_map(|l| {
        l.trim()
            .strip_prefix("name = \"")
            .and_then(|rest| rest.strip_suffix('"'))
            .map(str::to_string)
    })
}

/// Workspace-relative display path.
fn rel(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .display()
        .to_string()
}

/// The tracked-file list from `git ls-files`, or `None` when git (or a
/// repository) is unavailable — the artifact rule then has nothing to
/// check, which keeps the lint usable on exported source trees.
fn tracked_files(root: &Path) -> Option<Vec<String>> {
    let output = std::process::Command::new("git")
        .arg("-C")
        .arg(root)
        .arg("ls-files")
        .output()
        .ok()?;
    if !output.status.success() {
        return None;
    }
    let text = String::from_utf8(output.stdout).ok()?;
    Some(text.lines().map(str::to_string).collect())
}

/// Runs the full lint over the workspace rooted at `root`: the root
/// package plus every crate under `crates/`.
///
/// # Errors
///
/// Propagates I/O failures reading the workspace layout; unreadable
/// individual files are reported as hygiene violations instead.
pub fn run_lint(root: &Path) -> io::Result<Report> {
    let mut crate_dirs = vec![root.to_path_buf()];
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut members: Vec<PathBuf> = fs::read_dir(&crates_dir)?
            .flatten()
            .map(|e| e.path())
            .filter(|p| p.join("Cargo.toml").is_file())
            .collect();
        members.sort();
        crate_dirs.extend(members);
    }

    let mut report = Report::default();
    for dir in &crate_dirs {
        let manifest_path = dir.join("Cargo.toml");
        let manifest_rel = rel(root, &manifest_path);
        let Ok(manifest) = fs::read_to_string(&manifest_path) else {
            report.violations.push(Violation {
                file: manifest_rel,
                line: 1,
                rule: Rule::Hygiene,
                message: "unreadable manifest".to_string(),
            });
            continue;
        };
        let name = package_name(&manifest).unwrap_or_else(|| manifest_rel.clone());
        report
            .violations
            .extend(rules::check_manifest(&manifest_rel, &manifest));

        // Crate-root source: lib.rs when present, else main.rs.
        let lib = dir.join("src/lib.rs");
        let main = dir.join("src/main.rs");
        let crate_root = if lib.is_file() {
            Some(lib)
        } else if main.is_file() {
            Some(main)
        } else {
            None
        };
        if let Some(crate_root) = crate_root {
            if let Ok(text) = fs::read_to_string(&crate_root) {
                report.violations.extend(rules::check_crate_root_source(
                    &rel(root, &crate_root),
                    &text,
                ));
            }
        }

        let mut files = Vec::new();
        rust_files(&dir.join("src"), &mut files);
        let mut panic_sites = Vec::new();
        let mut unit_escapes = 0usize;
        for file in &files {
            let file_rel = rel(root, file);
            let Ok(source) = fs::read_to_string(file) else {
                continue;
            };
            panic_sites.extend(rules::panic_freedom(&file_rel, &source));
            if UNIT_SAFETY_CRATES.contains(&name.as_str()) {
                report
                    .violations
                    .extend(rules::unit_safety(&file_rel, &source));
                unit_escapes += rules::count_unit_escapes(&source);
            }
            report
                .violations
                .extend(rules::nan_safety(&file_rel, &source));
            // `maly-par` is the one crate sanctioned to touch raw
            // threads; everything else must go through its Executor.
            if name != "maly-par" {
                report
                    .violations
                    .extend(rules::raw_thread(&file_rel, &source));
            }
            // Timing lives in the obs layer and the measurement
            // harnesses; everywhere else must instrument, not clock.
            if !RAW_TIMING_CRATES.contains(&name.as_str()) {
                report
                    .violations
                    .extend(rules::raw_timing(&file_rel, &source));
            }
        }

        let budget = PANIC_BUDGETS
            .iter()
            .find(|(n, _)| *n == name)
            .map_or(0, |(_, b)| *b);
        if panic_sites.len() > budget {
            let sites: Vec<String> = panic_sites
                .iter()
                .map(|v| format!("{}:{}", v.file, v.line))
                .collect();
            report.violations.push(Violation {
                file: rel(root, dir),
                line: 1,
                rule: Rule::PanicBudget,
                message: format!(
                    "crate `{name}` has {} panic site(s), budget {budget}: {}",
                    sites.len(),
                    sites.join(", ")
                ),
            });
        }
        if UNIT_SAFETY_CRATES.contains(&name.as_str()) {
            let escape_budget = UNIT_ESCAPE_BUDGETS
                .iter()
                .find(|(n, _)| *n == name)
                .map_or(0, |(_, b)| *b);
            if unit_escapes > escape_budget {
                report.violations.push(Violation {
                    file: rel(root, dir),
                    line: 1,
                    rule: Rule::UnitSafety,
                    message: format!(
                        "crate `{name}` has {unit_escapes} audit:allow(bare-f64) escape(s), \
                         budget {escape_budget}; migrate the API to maly-units newtypes"
                    ),
                });
            }
        }
        report.stats.push(CrateStats {
            name,
            panic_sites: panic_sites.len(),
            budget,
        });
    }
    if let Some(tracked) = tracked_files(root) {
        report.violations.extend(rules::tracked_artifacts(&tracked));
    }
    report.stats.sort_by(|a, b| a.name.cmp(&b.name));
    Ok(report)
}
