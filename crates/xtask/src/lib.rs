//! maly-audit — the workspace's self-contained static analysis pass.
//!
//! Run as `cargo run -p xtask -- lint`. Since v2 the analyzer is built
//! on a lossless Rust token lexer ([`lexer`]) and a per-file symbol
//! index ([`index`]) instead of per-line heuristics: string contents
//! are masked, comments are routed out of code, and rules can reason
//! about declared types. The rule families keep the numeric core
//! honest:
//!
//! 1. **panic-freedom** — no `unwrap`/`expect`/`panic!` family calls in
//!    non-test library code, ratcheted by per-crate budgets so legacy
//!    sites cannot grow;
//! 2. **unit-safety** — public signatures in the dimensioned crates
//!    must not pass bare `f64` where a `maly-units` newtype exists;
//! 3. **NaN-safety** — no `partial_cmp().unwrap()`, no float ordering
//!    via `partial_cmp`, no float-literal `==`;
//! 4. **crate hygiene** — workspace-inherited metadata, `[lints]`
//!    inheritance, `#![forbid(unsafe_code)]` + `#![warn(missing_docs)]`
//!    crate roots, no wildcard versions or placeholder URLs;
//! 5. **raw-thread containment** — no raw `std::thread::spawn` outside
//!    `crates/par`, so every parallel path stays deterministic and
//!    honors `MALY_PAR_THREADS`;
//! 6. **tracked-artifact hygiene** — no build artifacts in version
//!    control (`target/` trees, cargo fingerprints, stray `--flag`
//!    files); checked against `git ls-files` when git is available;
//! 7. **raw-timing containment** — no ad-hoc `Instant::now()` /
//!    `eprintln!` timing outside `crates/obs`, `crates/bench`, and
//!    `crates/xtask`; instrumentation flows through `maly-obs`;
//! 8. **determinism** ([`determinism`]) — no hash-order iteration,
//!    randomized hasher state, wall-clock reads, thread identity, or
//!    relaxed atomic reads on result paths; `maly-obs` counter statics
//!    are exempt through the symbol index ("counters are Diag, results
//!    are Work"), not through per-line escapes;
//! 9. **lock-order** ([`locks`]) — the acquisition graph over every
//!    indexed `Mutex`/`RwLock` must be cycle-free, and no lock may be
//!    held across blocking I/O;
//! 10. **escape hygiene** ([`escapes`]) — every `audit:allow(...)` tag
//!     must suppress a live violation; stale or unknown tags are
//!     themselves violations, so the escape ratchet only tightens;
//! 11. **lane purity** — no per-element `exp`/`ln`/`powf`/`sqrt` inside
//!     batch-kernel bodies (`*_batch`, `*_for_slice`, `*_for_points`);
//!     transcendental math in those functions routes through
//!     `maly_lanes` slice ops so batching stays real.
//!
//! `cargo run -p xtask -- lint --json <path>` additionally writes the
//! machine-readable report (schema `maly-audit/v2`) for CI archiving
//! and diffing; `lint --explain <rule>` prints a rule's rationale and
//! escape syntax. `bench-check` and `trace-check` are separate
//! subcommands (see [`bench`], [`trace`]).
//!
//! Escape hatches are inline comments: `audit:allow(<tag>): <why>` on
//! the offending line or the comment block above it. The linter is
//! std-only: it works in fully offline builds.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench;
pub mod determinism;
pub mod escapes;
pub mod index;
pub mod lexer;
pub mod locks;
pub mod rules;
pub mod scan;
pub mod trace;

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

pub use rules::{Rule, Violation};

/// Panic ratchet budgets: the number of tolerated panic sites per
/// crate. These only go DOWN — new code must be panic-free, and paying
/// down a crate's legacy sites lowers its line here.
pub const PANIC_BUDGETS: &[(&str, usize)] = &[
    ("maly-bench", 8),
    ("maly-chiplet", 0),
    ("maly-cli", 0),
    ("maly-cost-model", 0),
    ("maly-cost-optim", 0),
    ("maly-fabline-sim", 11),
    ("maly-lanes", 0),
    ("maly-loadgen", 0),
    ("maly-model", 0),
    ("maly-obs", 0),
    ("maly-paper-data", 0),
    ("maly-par", 0),
    ("maly-repro", 55),
    ("maly-serve", 0),
    ("maly-tech-trend", 3),
    ("maly-test-economics", 4),
    ("maly-units", 3),
    ("maly-viz", 1),
    ("maly-wafer-geom", 10),
    ("maly-yield-model", 0),
    ("silicon-cost", 0),
    ("xtask", 0),
];

/// Crates whose public APIs are dimension-checked by the unit-safety
/// rule (they sit on the Eq. (1)–(9) numeric path).
pub const UNIT_SAFETY_CRATES: &[&str] = &[
    "maly-chiplet",
    "maly-cost-model",
    "maly-yield-model",
    "maly-wafer-geom",
    "maly-test-economics",
];

/// Unit-safety escape ratchet: tolerated `audit:allow(bare-f64)` tags
/// per dimension-checked crate. Like [`PANIC_BUDGETS`] these only go
/// DOWN — new public API takes newtypes instead of new escape tags.
/// The one surviving site is wafer-geom's saw-street boundary, where
/// zero is a legitimate sentinel no positive newtype can carry.
pub const UNIT_ESCAPE_BUDGETS: &[(&str, usize)] = &[
    ("maly-chiplet", 0),
    ("maly-cost-model", 0),
    ("maly-test-economics", 0),
    ("maly-wafer-geom", 1),
    ("maly-yield-model", 0),
];

/// Crates sanctioned to read the clock and write to stderr directly:
/// the observability layer itself, the timing harness, the load
/// generator (whose product *is* client-side timing), and this linter.
/// Everywhere else the raw-timing rule applies. The determinism family
/// exempts the same set (see [`determinism::EXEMPT_CRATES`]): their
/// output is diagnostic, not result data.
pub const RAW_TIMING_CRATES: &[&str] = &["maly-bench", "maly-loadgen", "maly-obs", "xtask"];

/// Per-crate panic accounting for the rendered report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrateStats {
    /// Crate name from its manifest.
    pub name: String,
    /// Non-allowed panic sites found in non-test library code.
    pub panic_sites: usize,
    /// The ratchet budget for this crate.
    pub budget: usize,
}

/// The full lint result: findings plus the panic-budget table.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Report {
    /// All rule findings, in deterministic (crate, file) order; global
    /// findings (lock cycles, stale escapes, artifacts) follow.
    pub violations: Vec<Violation>,
    /// Per-crate panic accounting, sorted by crate name.
    pub stats: Vec<CrateStats>,
}

impl Report {
    /// True when the tree passes: no findings and every crate within
    /// its panic budget.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Renders the human-readable report.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "maly-audit: panic sites per crate (sites / budget)");
        for s in &self.stats {
            let marker = if s.panic_sites > s.budget {
                "  OVER"
            } else {
                ""
            };
            let _ = writeln!(
                out,
                "  {:<22} {:>3} / {:<3}{marker}",
                s.name, s.panic_sites, s.budget
            );
        }
        if self.violations.is_empty() {
            let _ = writeln!(out, "maly-audit: OK — no violations");
        } else {
            let _ = writeln!(out, "maly-audit: {} violation(s)", self.violations.len());
            for v in &self.violations {
                let _ = writeln!(out, "  {v}");
            }
        }
        out
    }

    /// Renders the machine-readable report (schema `maly-audit/v2`):
    /// one JSON object with the schema tag, the clean flag, every
    /// violation, and the per-crate panic stats. CI archives this and
    /// diffs it like `bench-check` baselines.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n  \"schema\": \"maly-audit/v2\",\n");
        let _ = writeln!(out, "  \"clean\": {},", self.is_clean());
        out.push_str("  \"violations\": [\n");
        for (i, v) in self.violations.iter().enumerate() {
            let comma = if i + 1 < self.violations.len() {
                ","
            } else {
                ""
            };
            let _ = writeln!(
                out,
                "    {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"message\": \"{}\"}}{comma}",
                json_escape(&v.file),
                v.line,
                v.rule.as_str(),
                json_escape(&v.message)
            );
        }
        out.push_str("  ],\n  \"stats\": [\n");
        for (i, s) in self.stats.iter().enumerate() {
            let comma = if i + 1 < self.stats.len() { "," } else { "" };
            let _ = writeln!(
                out,
                "    {{\"crate\": \"{}\", \"panic_sites\": {}, \"budget\": {}}}{comma}",
                json_escape(&s.name),
                s.panic_sites,
                s.budget
            );
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Escapes a string for embedding in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// The rationale and escape syntax for a rule family, for
/// `lint --explain <rule>`. `None` for unknown rule names.
#[must_use]
pub fn explain(rule: &str) -> Option<&'static str> {
    Some(match rule {
        "panic" | "panic-budget" => {
            "panic / panic-budget\n\
             Library code must not unwrap/expect/panic!: the cost model is a library\n\
             first, and a panic in a worker thread poisons locks and kills batch\n\
             sweeps. Return Result instead. Per-crate budgets (PANIC_BUDGETS) hold\n\
             legacy sites frozen and only ratchet down.\n\
             Escape: `// audit:allow(panic): <why this site cannot fail>`."
        }
        "bare-f64" => {
            "bare-f64 (unit-safety)\n\
             Public APIs in the dimensioned crates must carry maly-units newtypes\n\
             (Cm, Cm2, Dollars, …) instead of bare f64, so unit errors are type\n\
             errors. Dimensionless knobs can be allowlisted in DIMENSIONLESS_NAMES.\n\
             Escape: `// audit:allow(bare-f64): <why no newtype fits>` (ratcheted\n\
             per crate by UNIT_ESCAPE_BUDGETS)."
        }
        "nan" | "float-cmp" => {
            "nan / float-cmp (NaN-safety)\n\
             partial_cmp().unwrap() panics on NaN and partial_cmp-based ordering is\n\
             NaN-unstable; use f64::total_cmp. Float-literal `==` is\n\
             exact-comparison fragile; compare with a tolerance.\n\
             Escapes: `// audit:allow(nan): …` / `// audit:allow(float-cmp): …`."
        }
        "hygiene" => {
            "hygiene\n\
             Manifests inherit workspace version/edition/license and [lints], carry\n\
             a description, and pin dependency versions; crate roots carry\n\
             #![forbid(unsafe_code)] and #![warn(missing_docs)]. No escape."
        }
        "raw-thread" => {
            "raw-thread\n\
             All parallelism flows through maly_par::Executor so determinism and\n\
             the MALY_PAR_THREADS knob stay centralized; raw thread::spawn is\n\
             confined to crates/par.\n\
             Escape: `// audit:allow(raw-thread): <why the executor cannot serve>`."
        }
        "artifact" => {
            "artifact\n\
             Build artifacts (target/ trees, cargo fingerprints, stray --flag\n\
             files) must not be tracked by git. Fix with `git rm --cached`. No\n\
             escape."
        }
        "raw-timing" => {
            "raw-timing\n\
             Instant::now() and eprintln! outside obs/bench/xtask scatter timing\n\
             and diagnostics that never reach exported traces; instrument through\n\
             maly-obs spans and histograms instead.\n\
             Escape: `// audit:allow(raw-timing): <why this must print/time raw>`."
        }
        "determinism" => {
            "determinism\n\
             The workspace contract is bit-identical output across thread counts\n\
             and transports (DESIGN.md §7/§10). HashMap/HashSet iteration order,\n\
             RandomState, SystemTime/UNIX_EPOCH reads, thread identity, and\n\
             Ordering::Relaxed loads all vary run-to-run, so none may feed a\n\
             result path. maly-obs Counter statics are exempt via the symbol\n\
             index: counters are Diag, results are Work. obs/bench/xtask are\n\
             exempt wholesale (diagnostic output).\n\
             Escape: `// audit:allow(determinism): <why this value never reaches\n\
             a result>`."
        }
        "lock-order" => {
            "lock-order\n\
             Every Mutex/RwLock field and static joins a global acquisition graph;\n\
             a cycle means two paths can deadlock by acquiring the same locks in\n\
             opposite orders, and a guard held across blocking I/O stalls every\n\
             thread queued on that lock behind a slow peer. Acquire locks in one\n\
             global order and drop guards before I/O.\n\
             Escape: `// audit:allow(lock-order): <why this ordering is safe>` on\n\
             the acquisition or I/O line."
        }
        "lane-purity" => {
            "lane-purity\n\
             Batch kernels (`*_batch`, `*_for_slice`, `*_for_points`) exist so the\n\
             hot loops pay transcendental math once per lane, not once per\n\
             element; a per-element .exp()/.ln()/.powf()/.sqrt() inside one\n\
             silently undoes the batching. Route the math through maly_lanes\n\
             slice ops (exp_slice, ln_slice, pow_s).\n\
             Escape: `// audit:allow(lane-purity): <why this site is genuinely\n\
             scalar — per-row setup, reference path, …>`."
        }
        "stale-escape" => {
            "stale-escape\n\
             An audit:allow(...) tag that no longer suppresses any violation is\n\
             dead weight that could silently cover a future regression; delete it.\n\
             Tags in #[cfg(test)] code are always stale (rules skip test code).\n\
             There is deliberately no escape for this rule."
        }
        _ => return None,
    })
}

/// Recursively collects `.rs` files under `dir`, sorted for
/// deterministic reports.
fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    paths.sort();
    for path in paths {
        if path.is_dir() {
            rust_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Extracts the `name = "…"` value from a manifest.
fn package_name(manifest: &str) -> Option<String> {
    manifest.lines().find_map(|l| {
        l.trim()
            .strip_prefix("name = \"")
            .and_then(|rest| rest.strip_suffix('"'))
            .map(str::to_string)
    })
}

/// Workspace-relative display path.
fn rel(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .display()
        .to_string()
}

/// The tracked-file list from `git ls-files`, or `None` when git (or a
/// repository) is unavailable — the artifact rule then has nothing to
/// check, which keeps the lint usable on exported source trees.
fn tracked_files(root: &Path) -> Option<Vec<String>> {
    let output = std::process::Command::new("git")
        .arg("-C")
        .arg(root)
        .arg("ls-files")
        .output()
        .ok()?;
    if !output.status.success() {
        return None;
    }
    let text = String::from_utf8(output.stdout).ok()?;
    Some(text.lines().map(str::to_string).collect())
}

/// Runs the full lint over the workspace rooted at `root`: the root
/// package plus every crate under `crates/`. Per-file rules share one
/// [`escapes::Escapes`] registry per file so escape-staleness
/// accounting spans all families; lock-cycle detection runs globally
/// over the merged acquisition graph after every file is scanned.
///
/// # Errors
///
/// Propagates I/O failures reading the workspace layout; unreadable
/// individual files are reported as hygiene violations instead.
pub fn run_lint(root: &Path) -> io::Result<Report> {
    let mut crate_dirs = vec![root.to_path_buf()];
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut members: Vec<PathBuf> = fs::read_dir(&crates_dir)?
            .flatten()
            .map(|e| e.path())
            .filter(|p| p.join("Cargo.toml").is_file())
            .collect();
        members.sort();
        crate_dirs.extend(members);
    }

    let mut report = Report::default();
    let mut all_edges: Vec<locks::LockEdge> = Vec::new();
    let mut file_escapes: Vec<(String, escapes::Escapes)> = Vec::new();
    for dir in &crate_dirs {
        let manifest_path = dir.join("Cargo.toml");
        let manifest_rel = rel(root, &manifest_path);
        let Ok(manifest) = fs::read_to_string(&manifest_path) else {
            report.violations.push(Violation {
                file: manifest_rel,
                line: 1,
                rule: Rule::Hygiene,
                message: "unreadable manifest".to_string(),
            });
            continue;
        };
        let name = package_name(&manifest).unwrap_or_else(|| manifest_rel.clone());
        report
            .violations
            .extend(rules::check_manifest(&manifest_rel, &manifest));

        // Crate-root source: lib.rs when present, else main.rs.
        let lib = dir.join("src/lib.rs");
        let main = dir.join("src/main.rs");
        let crate_root = if lib.is_file() {
            Some(lib)
        } else if main.is_file() {
            Some(main)
        } else {
            None
        };
        if let Some(crate_root) = crate_root {
            if let Ok(text) = fs::read_to_string(&crate_root) {
                report.violations.extend(rules::check_crate_root_source(
                    &rel(root, &crate_root),
                    &text,
                ));
            }
        }

        let mut files = Vec::new();
        rust_files(&dir.join("src"), &mut files);
        let mut panic_sites = Vec::new();
        let mut unit_escapes = 0usize;
        for file in &files {
            let file_rel = rel(root, file);
            let Ok(source) = fs::read_to_string(file) else {
                continue;
            };
            let lines = scan::classify(&source);
            let file_index = index::index_file(&source);
            let mut esc = escapes::Escapes::collect(&lines);

            panic_sites.extend(rules::panic_freedom_in(&file_rel, &lines, &mut esc));
            if UNIT_SAFETY_CRATES.contains(&name.as_str()) {
                report
                    .violations
                    .extend(rules::unit_safety_in(&file_rel, &lines, &mut esc));
                unit_escapes += esc.count("bare-f64");
            }
            report
                .violations
                .extend(rules::nan_safety_in(&file_rel, &lines, &mut esc));
            // `maly-par` is the one crate sanctioned to touch raw
            // threads; everything else must go through its Executor.
            if name != "maly-par" {
                report
                    .violations
                    .extend(rules::raw_thread_in(&file_rel, &lines, &mut esc));
            }
            // The lane crate implements the batch primitives, so its
            // own internals are the one place per-element math inside
            // batch-named functions is the point, not a regression.
            if name != "maly-lanes" {
                report
                    .violations
                    .extend(rules::lane_purity_in(&file_rel, &lines, &mut esc));
            }
            // Timing lives in the obs layer and the measurement
            // harnesses; everywhere else must instrument, not clock.
            if !RAW_TIMING_CRATES.contains(&name.as_str()) {
                report
                    .violations
                    .extend(rules::raw_timing_in(&file_rel, &lines, &mut esc));
            }
            // Diagnostic crates are exempt from the determinism family
            // wholesale; everywhere else nondeterministic values must
            // stay off result paths.
            if !determinism::EXEMPT_CRATES.contains(&name.as_str()) {
                report.violations.extend(determinism::determinism_in(
                    &file_rel,
                    &lines,
                    &file_index,
                    &mut esc,
                ));
            }
            let lock = locks::analyze_file(&file_rel, &lines, &file_index, &mut esc);
            report.violations.extend(lock.violations);
            all_edges.extend(lock.edges);
            file_escapes.push((file_rel, esc));
        }

        let budget = PANIC_BUDGETS
            .iter()
            .find(|(n, _)| *n == name)
            .map_or(0, |(_, b)| *b);
        if panic_sites.len() > budget {
            let sites: Vec<String> = panic_sites
                .iter()
                .map(|v| format!("{}:{}", v.file, v.line))
                .collect();
            report.violations.push(Violation {
                file: rel(root, dir),
                line: 1,
                rule: Rule::PanicBudget,
                message: format!(
                    "crate `{name}` has {} panic site(s), budget {budget}: {}",
                    sites.len(),
                    sites.join(", ")
                ),
            });
        }
        if UNIT_SAFETY_CRATES.contains(&name.as_str()) {
            let escape_budget = UNIT_ESCAPE_BUDGETS
                .iter()
                .find(|(n, _)| *n == name)
                .map_or(0, |(_, b)| *b);
            if unit_escapes > escape_budget {
                report.violations.push(Violation {
                    file: rel(root, dir),
                    line: 1,
                    rule: Rule::UnitSafety,
                    message: format!(
                        "crate `{name}` has {unit_escapes} audit:allow(bare-f64) escape(s), \
                         budget {escape_budget}; migrate the API to maly-units newtypes"
                    ),
                });
            }
        }
        report.stats.push(CrateStats {
            name,
            panic_sites: panic_sites.len(),
            budget,
        });
    }

    // Lock-order cycles are a whole-workspace property: merge every
    // file's acquisition edges, then detect.
    let (cycles, vetted) = locks::cycle_violations(&all_edges);
    report.violations.extend(cycles);
    for (file, site) in vetted {
        if let Some((_, esc)) = file_escapes.iter_mut().find(|(f, _)| *f == file) {
            esc.mark_used(site);
        }
    }
    // Escape hygiene runs last: only now is "suppresses nothing" known.
    for (file, esc) in &file_escapes {
        report.violations.extend(esc.stale(file));
    }

    if let Some(tracked) = tracked_files(root) {
        report.violations.extend(rules::tracked_artifacts(&tracked));
    }
    report.stats.sort_by(|a, b| a.name.cmp(&b.name));
    Ok(report)
}
