//! Fixture tests for the maly-audit rule families: each rule must fire
//! on a crafted violation and stay silent on the matching clean (or
//! escape-tagged) variant.

use xtask::rules;
use xtask::Rule;

// ---------------------------------------------------------------------
// Rule 1: panic-freedom
// ---------------------------------------------------------------------

#[test]
fn panic_rule_flags_unwrap_in_library_code() {
    let src = "pub fn f(v: Option<u8>) -> u8 {\n    v.unwrap()\n}\n";
    let found = rules::panic_freedom("fixture.rs", src);
    assert_eq!(found.len(), 1);
    assert_eq!(found[0].rule, Rule::Panic);
    assert_eq!(found[0].line, 2);
}

#[test]
fn panic_rule_flags_every_family_member() {
    let src = concat!(
        "fn a() { x.unwrap() }\n",
        "fn b() { x.expect(\"msg\") }\n",
        "fn c() { panic!(\"boom\") }\n",
        "fn d() { unreachable!() }\n",
    );
    // `unreachable!()` without arguments lacks the `(`-suffixed needle
    // only when written bare; the fixture uses the call form.
    let src = src.replace("unreachable!()", "unreachable!(\"no\")");
    let found = rules::panic_freedom("fixture.rs", &src);
    assert_eq!(found.len(), 4);
}

#[test]
fn panic_rule_honors_allow_comment_above_and_inline() {
    let above = "// audit:allow(panic): fixture justification\nfn f() { x.unwrap() }\n";
    assert!(rules::panic_freedom("fixture.rs", above).is_empty());
    let inline = "fn f() { x.unwrap() } // audit:allow(panic): fixture\n";
    assert!(rules::panic_freedom("fixture.rs", inline).is_empty());
}

#[test]
fn panic_rule_allow_comment_spans_a_comment_block() {
    let src =
        "// audit:allow(panic): the index is\n// provably in range here.\nfn f() { x.unwrap() }\n";
    assert!(rules::panic_freedom("fixture.rs", src).is_empty());
}

#[test]
fn panic_rule_skips_cfg_test_blocks_and_doc_comments() {
    let src = concat!(
        "/// Example: `x.unwrap()` is fine in docs.\n",
        "pub fn lib() {}\n",
        "#[cfg(test)]\n",
        "mod tests {\n",
        "    #[test]\n",
        "    fn t() { Some(1).unwrap(); }\n",
        "}\n",
    );
    assert!(rules::panic_freedom("fixture.rs", src).is_empty());
}

// ---------------------------------------------------------------------
// Rule 2: unit-safety
// ---------------------------------------------------------------------

#[test]
fn unit_rule_flags_bare_f64_parameter() {
    let src = "pub fn wafer_cost(lambda_um: f64) -> Dollars {\n";
    let found = rules::unit_safety("fixture.rs", src);
    assert_eq!(found.len(), 1);
    assert_eq!(found[0].rule, Rule::UnitSafety);
    assert!(found[0].message.contains("lambda_um"));
}

#[test]
fn unit_rule_handles_multiline_signatures() {
    let src =
        "pub fn evaluate(\n    &self,\n    die_area: f64,\n    steps: usize,\n) -> Dollars {\n";
    let found = rules::unit_safety("fixture.rs", src);
    assert_eq!(found.len(), 1);
    assert!(found[0].message.contains("die_area"));
}

#[test]
fn unit_rule_allows_dimensionless_names_and_newtypes() {
    let src = concat!(
        "pub fn escalate(x: f64, alpha: f64) -> Dollars {\n",
        "pub fn priced(cost: Dollars, lambda: Microns) -> Dollars {\n",
    );
    assert!(rules::unit_safety("fixture.rs", src).is_empty());
}

#[test]
fn unit_rule_honors_allow_tag() {
    let src =
        "// audit:allow(bare-f64): fixture boundary\npub fn parse(raw_cost: f64) -> Dollars {\n";
    assert!(rules::unit_safety("fixture.rs", src).is_empty());
}

#[test]
fn unit_escape_counter_skips_tests_and_other_tags() {
    let src = concat!(
        "// audit:allow(bare-f64): fixture boundary\n",
        "pub fn parse(raw_cost: f64) -> Dollars {}\n",
        "// audit:allow(panic): different tag\n",
        "#[cfg(test)]\n",
        "mod tests {\n",
        "    // audit:allow(bare-f64): test-only, not counted\n",
        "    fn helper(raw: f64) {}\n",
        "}\n",
    );
    assert_eq!(rules::count_unit_escapes(src), 1);
    assert_eq!(rules::count_unit_escapes("pub fn clean() {}\n"), 0);
}

#[test]
fn unit_rule_flags_unit_suffixed_f64_returns() {
    let src = "pub fn width_cm(&self) -> f64 {\n";
    let found = rules::unit_safety("fixture.rs", src);
    assert_eq!(found.len(), 1);
    assert!(found[0].message.contains("width_cm"));
    // A dimensionless-named accessor returning f64 is fine.
    assert!(rules::unit_safety("fixture.rs", "pub fn ratio(&self) -> f64 {\n").is_empty());
}

// ---------------------------------------------------------------------
// Rule 3: NaN-safety
// ---------------------------------------------------------------------

#[test]
fn nan_rule_flags_unwrapped_partial_cmp() {
    let src = "fn f() { let o = a.partial_cmp(&b).unwrap(); }\n";
    let found = rules::nan_safety("fixture.rs", src);
    assert!(found.iter().any(|v| v.rule == Rule::NanSafety));
}

#[test]
fn nan_rule_flags_float_ordering_via_partial_cmp() {
    let src = "fn f(v: &mut [f64]) {\n    v.sort_by(|a, b| {\n        a.partial_cmp(b).into()\n    });\n}\n";
    let found = rules::nan_safety("fixture.rs", src);
    assert_eq!(found.len(), 1);
}

#[test]
fn nan_rule_accepts_total_cmp_ordering() {
    let src = "fn f(v: &mut [f64]) { v.sort_by(f64::total_cmp); }\n";
    assert!(rules::nan_safety("fixture.rs", src).is_empty());
}

#[test]
fn nan_rule_flags_float_literal_equality() {
    let src = "fn f(x: f64) -> bool { x == 1.5 }\n";
    let found = rules::nan_safety("fixture.rs", src);
    assert_eq!(found.len(), 1);
    assert!(found[0].message.contains("1.5"));
}

#[test]
fn nan_rule_float_equality_honors_allow_tag() {
    let src = "// audit:allow(float-cmp): exact sentinel\nfn f(x: f64) -> bool { x == 0.0 }\n";
    assert!(rules::nan_safety("fixture.rs", src).is_empty());
}

#[test]
fn nan_rule_ignores_integer_equality() {
    let src = "fn f(n: usize) -> bool { n == 15 }\n";
    assert!(rules::nan_safety("fixture.rs", src).is_empty());
}

// ---------------------------------------------------------------------
// Rule 4: crate hygiene
// ---------------------------------------------------------------------

const CLEAN_MANIFEST: &str = concat!(
    "[package]\n",
    "name = \"fixture\"\n",
    "version.workspace = true\n",
    "edition.workspace = true\n",
    "license.workspace = true\n",
    "description = \"a fixture crate\"\n",
    "\n",
    "[lints]\n",
    "workspace = true\n",
);

#[test]
fn hygiene_accepts_clean_manifest() {
    assert!(rules::check_manifest("Cargo.toml", CLEAN_MANIFEST).is_empty());
}

#[test]
fn hygiene_flags_missing_inheritance_and_description() {
    let manifest = "[package]\nname = \"fixture\"\nversion = \"0.1.0\"\n";
    let found = rules::check_manifest("Cargo.toml", manifest);
    // version/edition/license not inherited, no description, no [lints].
    assert_eq!(found.len(), 5);
    assert!(found.iter().all(|v| v.rule == Rule::Hygiene));
}

#[test]
fn hygiene_flags_wildcard_versions_and_placeholder_repository() {
    let manifest = format!(
        "{CLEAN_MANIFEST}repository = \"https://example.com/TODO\"\n\n[dependencies]\nserde = \"*\"\n"
    );
    let found = rules::check_manifest("Cargo.toml", &manifest);
    assert_eq!(found.len(), 2);
}

#[test]
fn hygiene_requires_crate_root_headers() {
    let clean = "//! Docs.\n#![forbid(unsafe_code)]\n#![warn(missing_docs)]\n";
    assert!(rules::check_crate_root_source("src/lib.rs", clean).is_empty());
    let bare = "//! Docs.\npub fn f() {}\n";
    assert_eq!(rules::check_crate_root_source("src/lib.rs", bare).len(), 2);
}

// ---------------------------------------------------------------------
// Rule 5: raw-thread containment
// ---------------------------------------------------------------------

#[test]
fn raw_thread_rule_flags_spawn_in_library_code() {
    let src = "fn f() {\n    let h = std::thread::spawn(|| 1);\n    h.join();\n}\n";
    let found = rules::raw_thread("fixture.rs", src);
    assert_eq!(found.len(), 1);
    assert_eq!(found[0].rule, Rule::RawThread);
    assert_eq!(found[0].line, 2);
    assert!(found[0].message.contains("maly_par::Executor"));
    // The `use`-imported form is the same needle.
    let short = "fn f() { thread::spawn(|| 1); }\n";
    assert_eq!(rules::raw_thread("fixture.rs", short).len(), 1);
}

#[test]
fn raw_thread_rule_accepts_scoped_executor_idiom() {
    // `std::thread::scope` + `scope.spawn` is what maly-par uses; the
    // rule only targets the free-threaded spawn entry point.
    let src = "fn f() {\n    std::thread::scope(|s| {\n        s.spawn(|| 1);\n    });\n}\n";
    assert!(rules::raw_thread("fixture.rs", src).is_empty());
}

#[test]
fn raw_thread_rule_honors_allow_tag_and_test_code() {
    let above = "// audit:allow(raw-thread): fixture justification\n\
                 fn f() { std::thread::spawn(|| 1); }\n";
    assert!(rules::raw_thread("fixture.rs", above).is_empty());
    let inline = "fn f() { std::thread::spawn(|| 1); } // audit:allow(raw-thread): fixture\n";
    assert!(rules::raw_thread("fixture.rs", inline).is_empty());
    let test_only = concat!(
        "#[cfg(test)]\n",
        "mod tests {\n",
        "    #[test]\n",
        "    fn t() { std::thread::spawn(|| 1).join().unwrap(); }\n",
        "}\n",
    );
    assert!(rules::raw_thread("fixture.rs", test_only).is_empty());
}

// ---------------------------------------------------------------------
// Rule 7: raw-timing containment
// ---------------------------------------------------------------------

#[test]
fn raw_timing_rule_flags_instant_and_eprintln() {
    let src = concat!(
        "fn f() {\n",
        "    let t0 = std::time::Instant::now();\n",
        "    work();\n",
        "    eprintln!(\"took {:?}\", t0.elapsed());\n",
        "}\n",
    );
    let found = rules::raw_timing("fixture.rs", src);
    assert_eq!(found.len(), 2);
    assert!(found.iter().all(|v| v.rule == Rule::RawTiming));
    assert_eq!(found[0].line, 2);
    assert_eq!(found[1].line, 4);
    assert!(found[0].message.contains("maly-obs"));
}

#[test]
fn raw_timing_rule_honors_allow_tag_and_test_code() {
    let above = "// audit:allow(raw-timing): fixture justification\n\
                 fn f() { let t = Instant::now(); }\n";
    assert!(rules::raw_timing("fixture.rs", above).is_empty());
    let inline = "fn f() { eprintln!(\"x\"); } // audit:allow(raw-timing): fixture\n";
    assert!(rules::raw_timing("fixture.rs", inline).is_empty());
    let test_only = concat!(
        "#[cfg(test)]\n",
        "mod tests {\n",
        "    #[test]\n",
        "    fn t() { let t = std::time::Instant::now(); }\n",
        "}\n",
    );
    assert!(rules::raw_timing("fixture.rs", test_only).is_empty());
}

#[test]
fn raw_timing_rule_accepts_obs_instrumentation() {
    // Spans and histograms are the sanctioned way to time things.
    let src = "fn f() {\n    let _span = maly_obs::span(\"sweep\");\n    work();\n}\n";
    assert!(rules::raw_timing("fixture.rs", src).is_empty());
    // Plain println! output is not the rule's business.
    assert!(rules::raw_timing("fixture.rs", "fn f() { println!(\"ok\"); }\n").is_empty());
}

// ---------------------------------------------------------------------
// Rule 6: tracked-artifact hygiene
// ---------------------------------------------------------------------

#[test]
fn artifact_rule_flags_target_trees_fingerprints_and_flag_files() {
    let tracked: Vec<String> = [
        "target/debug/deps/libmaly.rlib",
        "target/.rustc_info.json",
        "crates/bench/--bench",
        "some/nested/.fingerprint/dep-lib",
    ]
    .iter()
    .map(|s| (*s).to_string())
    .collect();
    let found = rules::tracked_artifacts(&tracked);
    assert_eq!(found.len(), 4);
    assert!(found.iter().all(|v| v.rule == Rule::Artifact));
}

#[test]
fn artifact_rule_accepts_sources_and_target_like_names() {
    let tracked: Vec<String> = [
        "crates/par/src/lib.rs",
        "BENCH_sweeps.json",
        "docs/target_market.md",
        "crates/viz/src/target.rs",
    ]
    .iter()
    .map(|s| (*s).to_string())
    .collect();
    assert!(rules::tracked_artifacts(&tracked).is_empty());
}

// ---------------------------------------------------------------------
// Rule 2 regressions: lexer-masked strings and comments in signatures
// ---------------------------------------------------------------------

#[test]
fn unit_rule_ignores_f64_inside_multiline_string_literals() {
    // The old line-based scanner treated the interior of a multi-line
    // string as code, so the `pub fn … f64` text inside this constant
    // used to fire a bare-f64 violation.
    let src = concat!(
        "pub const USAGE: &str = \"\n",
        "pub fn area(width_cm: f64,\n",
        "            height_cm: f64) -> f64 {\n",
        "\";\n",
    );
    assert!(rules::unit_safety("fixture.rs", src).is_empty());
}

#[test]
fn unit_rule_ignores_f64_inside_signature_comments() {
    // A commented-out parameter inside a multi-line signature used to
    // parse as a real `name: f64` parameter.
    let src = concat!(
        "pub fn scale(\n",
        "    /* legacy_gain: f64, */\n",
        "    // retired_knob: f64,\n",
        "    factor: Dollars,\n",
        ") -> Dollars {\n",
    );
    assert!(rules::unit_safety("fixture.rs", src).is_empty());
}

#[test]
fn unit_rule_still_fires_on_real_params_next_to_string_literals() {
    let src = concat!(
        "pub fn label(\n",
        "    width_raw: f64,\n",
        ") -> String {\n",
        "    format!(\"w={width_raw}\")\n",
        "}\n",
    );
    let found = rules::unit_safety("fixture.rs", src);
    assert_eq!(found.len(), 1);
    assert!(found[0].message.contains("width_raw"));
}

// ---------------------------------------------------------------------
// Rule 8: determinism
// ---------------------------------------------------------------------

#[test]
fn determinism_rule_flags_hashmap_iteration_on_result_paths() {
    let src = concat!(
        "use std::collections::HashMap;\n",
        "pub fn report() -> Vec<(u8, f64)> {\n",
        "    let totals: HashMap<u8, f64> = HashMap::new();\n",
        "    let mut out = Vec::new();\n",
        "    for (k, v) in &totals {\n",
        "        out.push((*k, *v));\n",
        "    }\n",
        "    out\n",
        "}\n",
    );
    let found = xtask::determinism::determinism("fixture.rs", src);
    assert_eq!(found.len(), 1, "got: {found:?}");
    assert_eq!(found[0].rule, Rule::Determinism);
    assert_eq!(found[0].line, 5);
}

#[test]
fn determinism_rule_flags_wall_clock_and_thread_identity() {
    let src = concat!(
        "pub fn stamp() -> u64 {\n",
        "    let t = std::time::SystemTime::now();\n",
        "    let id = std::thread::current().id();\n",
        "    0\n",
        "}\n",
    );
    let found = xtask::determinism::determinism("fixture.rs", src);
    assert_eq!(found.len(), 2, "got: {found:?}");
}

#[test]
fn determinism_rule_accepts_btreemap_and_keyed_lookups() {
    let src = concat!(
        "use std::collections::{BTreeMap, HashMap};\n",
        "pub fn run() -> f64 {\n",
        "    let sorted: BTreeMap<u8, f64> = BTreeMap::new();\n",
        "    for (_k, v) in &sorted { let _ = v; }\n",
        "    let m: HashMap<u8, f64> = HashMap::new();\n",
        "    m.get(&1).copied().unwrap_or(0.0)\n",
        "}\n",
    );
    assert!(xtask::determinism::determinism("fixture.rs", src).is_empty());
}

#[test]
fn determinism_rule_honors_escape_tag() {
    let src = concat!(
        "use std::collections::HashMap;\n",
        "pub fn debug_dump(m: &HashMap<u8, f64>) {\n",
        "    let snapshot: HashMap<u8, f64> = m.clone();\n",
        "    // audit:allow(determinism): stderr debug dump, not result data.\n",
        "    for (k, v) in &snapshot { let _ = (k, v); }\n",
        "}\n",
    );
    assert!(xtask::determinism::determinism("fixture.rs", src).is_empty());
}

#[test]
fn determinism_rule_exempts_counter_statics_via_index() {
    let src = concat!(
        "use std::sync::atomic::Ordering;\n",
        "static HITS: maly_obs::Counter = maly_obs::Counter::diag(\"hits\");\n",
        "pub fn snapshot() -> u64 {\n",
        "    HITS.load(Ordering::Relaxed)\n",
        "}\n",
    );
    assert!(xtask::determinism::determinism("fixture.rs", src).is_empty());
}

// ---------------------------------------------------------------------
// Rule 9: lock-order
// ---------------------------------------------------------------------

#[test]
fn lock_rule_flags_opposite_order_acquisition() {
    let src = concat!(
        "use std::sync::Mutex;\n",
        "pub struct S { a: Mutex<u8>, b: Mutex<u8> }\n",
        "impl S {\n",
        "    pub fn ab(&self) {\n",
        "        let ga = self.a.lock();\n",
        "        let gb = self.b.lock();\n",
        "        let _ = (ga, gb);\n",
        "    }\n",
        "    pub fn ba(&self) {\n",
        "        let gb = self.b.lock();\n",
        "        let ga = self.a.lock();\n",
        "        let _ = (ga, gb);\n",
        "    }\n",
        "}\n",
    );
    let found = xtask::locks::lock_order("fixture.rs", src);
    assert_eq!(found.len(), 1, "got: {found:?}");
    assert_eq!(found[0].rule, Rule::LockOrder);
    assert!(found[0].message.contains("cycle"));
}

#[test]
fn lock_rule_flags_blocking_io_under_guard() {
    let src = concat!(
        "use std::sync::Mutex;\n",
        "pub struct Q { queue: Mutex<Vec<u8>> }\n",
        "impl Q {\n",
        "    pub fn drain(&self, out: &mut impl std::io::Write) {\n",
        "        let g = self.queue.lock();\n",
        "        let _ = out.write_all(b\"x\");\n",
        "        let _ = g;\n",
        "    }\n",
        "}\n",
    );
    let found = xtask::locks::lock_order("fixture.rs", src);
    assert_eq!(found.len(), 1, "got: {found:?}");
    assert!(found[0].message.contains("blocking I/O"));
}

#[test]
fn lock_rule_accepts_consistent_order_and_scoped_guards() {
    let src = concat!(
        "use std::sync::Mutex;\n",
        "pub struct S { a: Mutex<u8>, b: Mutex<u8> }\n",
        "impl S {\n",
        "    pub fn one(&self) { let g = self.a.lock(); let h = self.b.lock(); let _ = (g, h); }\n",
        "    pub fn two(&self, out: &mut impl std::io::Write) {\n",
        "        {\n",
        "            let g = self.a.lock();\n",
        "            let h = self.b.lock();\n",
        "            let _ = (g, h);\n",
        "        }\n",
        "        let _ = out.write_all(b\"x\");\n",
        "    }\n",
        "}\n",
    );
    assert!(xtask::locks::lock_order("fixture.rs", src).is_empty());
}

#[test]
fn lock_rule_honors_escape_tag_on_io_line() {
    let src = concat!(
        "use std::sync::Mutex;\n",
        "pub struct Q { queue: Mutex<Vec<u8>> }\n",
        "impl Q {\n",
        "    pub fn drain(&self, out: &mut impl std::io::Write) {\n",
        "        let g = self.queue.lock();\n",
        "        // audit:allow(lock-order): out is an in-memory Vec in this build.\n",
        "        let _ = out.write_all(b\"x\");\n",
        "        let _ = g;\n",
        "    }\n",
        "}\n",
    );
    assert!(xtask::locks::lock_order("fixture.rs", src).is_empty());
}

// ---------------------------------------------------------------------
// Rule 10: escape hygiene
// ---------------------------------------------------------------------

#[test]
fn stale_escape_rule_flags_unused_and_unknown_tags() {
    let src = concat!(
        "// audit:allow(panic): nothing panics below anymore.\n",
        "pub fn safe() -> u8 { 0 }\n",
        "// audit:allow(pancake): typo of a tag.\n",
        "pub fn also_safe() -> u8 { 1 }\n",
    );
    let lines = xtask::scan::classify(src);
    let mut escapes = xtask::escapes::Escapes::collect(&lines);
    let fired = rules::panic_freedom_in("fixture.rs", &lines, &mut escapes);
    assert!(fired.is_empty());
    let stale = escapes.stale("fixture.rs");
    assert_eq!(stale.len(), 2, "got: {stale:?}");
    assert!(stale.iter().all(|v| v.rule == Rule::StaleEscape));
    assert!(stale[1].message.contains("unknown escape tag"));
}

#[test]
fn used_escape_is_not_stale() {
    let src = "// audit:allow(panic): fixture.\npub fn f() { x.unwrap() }\n";
    let lines = xtask::scan::classify(src);
    let mut escapes = xtask::escapes::Escapes::collect(&lines);
    let fired = rules::panic_freedom_in("fixture.rs", &lines, &mut escapes);
    assert!(fired.is_empty());
    assert!(escapes.stale("fixture.rs").is_empty());
}

#[test]
fn test_side_escape_is_always_stale() {
    let src = concat!(
        "pub fn lib() {}\n",
        "#[cfg(test)]\n",
        "mod tests {\n",
        "    // audit:allow(panic): tests may panic freely anyway.\n",
        "    fn t() { Some(1).unwrap(); }\n",
        "}\n",
    );
    let lines = xtask::scan::classify(src);
    let mut escapes = xtask::escapes::Escapes::collect(&lines);
    let fired = rules::panic_freedom_in("fixture.rs", &lines, &mut escapes);
    assert!(fired.is_empty());
    let stale = escapes.stale("fixture.rs");
    assert_eq!(stale.len(), 1);
    assert!(stale[0].message.contains("#[cfg(test)]"));
}

// ---------------------------------------------------------------------
// The tree itself must lint clean — this is the enforcement test.
// ---------------------------------------------------------------------

#[test]
fn workspace_tree_lints_clean() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("xtask sits two levels below the workspace root");
    let report = xtask::run_lint(root).expect("workspace is readable");
    assert!(
        report.is_clean(),
        "maly-audit found violations:\n{}",
        report.render()
    );
    // Every crate the budgets table names was actually scanned.
    assert_eq!(report.stats.len(), xtask::PANIC_BUDGETS.len());
    // Budgets are ratcheted to actuals: every crate sits exactly at
    // its budget, so any new panic site fails and any paydown forces a
    // budget cut in the same change.
    for s in &report.stats {
        assert_eq!(
            s.panic_sites, s.budget,
            "crate `{}` is below its panic budget ({} sites, budget {}); \
             ratchet PANIC_BUDGETS down",
            s.name, s.panic_sites, s.budget
        );
    }
    // The machine-readable report carries the v2 schema tag and the
    // clean flag CI keys on.
    let json = report.to_json();
    assert!(json.contains("\"schema\": \"maly-audit/v2\""));
    assert!(json.contains("\"clean\": true"));
}

// ---------------------------------------------------------------------
// Rule 11: lane purity
// ---------------------------------------------------------------------

#[test]
fn lane_purity_flags_per_element_transcendentals_in_kernels() {
    let src = concat!(
        "pub fn yields_for_slice(d: f64, p: f64, out: &mut [f64]) {\n",
        "    for y in out.iter_mut() {\n",
        "        *y = (-d / y.powf(p)).exp();\n",
        "    }\n",
        "}\n",
    );
    let found = rules::lane_purity("fixture.rs", src);
    assert_eq!(found.len(), 2, "{found:?}");
    assert!(found.iter().all(|v| v.rule == Rule::LanePurity));
    assert!(found[0].message.contains("yields_for_slice"));
}

#[test]
fn lane_purity_covers_every_kernel_suffix_and_needle() {
    let src = concat!(
        "pub(crate) fn dies_per_wafer_batch(xs: &mut [f64]) {\n",
        "    for x in xs.iter_mut() { *x = x.sqrt(); }\n",
        "}\n",
        "fn costs_for_points(xs: &mut [f64]) {\n",
        "    for x in xs.iter_mut() { *x = x.ln(); }\n",
        "}\n",
    );
    let found = rules::lane_purity("fixture.rs", src);
    assert_eq!(found.len(), 2, "{found:?}");
}

#[test]
fn lane_purity_ignores_non_kernel_functions_and_lane_routed_kernels() {
    let src = concat!(
        "pub fn cost_at(d: f64) -> f64 {\n",
        "    d.exp()\n",
        "}\n",
        "pub fn exp_for_slice(xs: &mut [f64]) {\n",
        "    maly_lanes::exp_slice(xs);\n",
        "}\n",
    );
    assert!(rules::lane_purity("fixture.rs", src).is_empty());
}

#[test]
fn lane_purity_honors_allow_tag_above_and_inline() {
    let above = concat!(
        "pub fn setup_for_slice(d: f64, out: &mut [f64]) {\n",
        "    // audit:allow(lane-purity): per-row setup, paid once per row.\n",
        "    let hoisted = d.powf(2.0);\n",
        "    out[0] = hoisted;\n",
        "}\n",
    );
    assert!(rules::lane_purity("fixture.rs", above).is_empty());
    let inline = concat!(
        "pub fn setup_for_slice(d: f64, out: &mut [f64]) {\n",
        "    out[0] = d.sqrt(); // audit:allow(lane-purity): scalar setup\n",
        "}\n",
    );
    assert!(rules::lane_purity("fixture.rs", inline).is_empty());
}

#[test]
fn lane_purity_skips_test_code_and_bodyless_declarations() {
    let src = concat!(
        "pub trait Kernel {\n",
        "    fn eval_for_slice(&self, xs: &mut [f64]);\n",
        "}\n",
        "#[cfg(test)]\n",
        "mod tests {\n",
        "    #[test]\n",
        "    fn t() {\n",
        "        fn ref_for_slice(xs: &mut [f64]) {\n",
        "            for x in xs.iter_mut() { *x = x.exp(); }\n",
        "        }\n",
        "        ref_for_slice(&mut [0.0]);\n",
        "    }\n",
        "}\n",
    );
    assert!(rules::lane_purity("fixture.rs", src).is_empty());
}

#[test]
fn lane_purity_stops_at_the_kernel_body_end() {
    // The transcendental sits *after* the kernel body closes.
    let src = concat!(
        "pub fn scale_for_slice(xs: &mut [f64]) {\n",
        "    for x in xs.iter_mut() { *x *= 2.0; }\n",
        "}\n",
        "pub fn scalar(d: f64) -> f64 { d.exp() }\n",
    );
    assert!(rules::lane_purity("fixture.rs", src).is_empty());
}
