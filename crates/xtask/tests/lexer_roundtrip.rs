//! Lexer round-trip property test: concatenating the token texts of
//! any workspace source file must reproduce the file byte-for-byte.
//! This is the losslessness guarantee every downstream pass (line
//! classification, the symbol index, all rule families) builds on — a
//! lexer that drops or rewrites a single byte would silently shift
//! line attribution or hide code from the rules.

use std::path::{Path, PathBuf};

/// Recursively collects `.rs` files under `dir`.
fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    paths.sort();
    for path in paths {
        if path.is_dir() {
            if path
                .file_name()
                .is_some_and(|n| n == "target" || n == ".git")
            {
                continue;
            }
            rust_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

#[test]
fn every_workspace_source_reassembles_byte_for_byte() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("xtask sits two levels below the workspace root");
    let mut files = Vec::new();
    rust_files(root, &mut files);
    assert!(
        files.len() > 50,
        "expected a full workspace scan, found only {} files",
        files.len()
    );
    for file in &files {
        let Ok(source) = std::fs::read_to_string(file) else {
            continue;
        };
        let tokens = xtask::lexer::lex(&source);
        let rebuilt: String = tokens.iter().map(|t| t.text).collect();
        assert_eq!(
            rebuilt,
            source,
            "lexer round-trip failed for {}",
            file.display()
        );
    }
}

#[test]
fn token_line_numbers_are_monotonic_and_match_newlines() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root");
    let mut files = Vec::new();
    rust_files(&root.join("crates"), &mut files);
    for file in files.iter().take(200) {
        let Ok(source) = std::fs::read_to_string(file) else {
            continue;
        };
        let tokens = xtask::lexer::lex(&source);
        let mut expected_line = 1usize;
        for t in &tokens {
            assert_eq!(
                t.line,
                expected_line,
                "token `{}` line drifted in {}",
                t.text.escape_debug(),
                file.display()
            );
            expected_line += t.text.matches('\n').count();
        }
    }
}

#[test]
fn adversarial_snippets_roundtrip() {
    let cases = [
        "let s = \"brace { quote \\\" slash // end\";\n",
        "let r = r#\"raw \"quoted\" {}\"#;\n",
        "let b = b\"bytes\\x00\"; let c = 'x'; let nl = '\\n';\n",
        "fn f<'a>(x: &'a str) -> &'a str { x }\n",
        "/* outer /* nested */ still comment */ fn g() {}\n",
        "let range = 1..3; let f = 1.5e-3_f64;\n",
        "let ch = '{'; let close = '}';\n",
        "// line comment without trailing newline",
        "let unterminated = \"oops\n",
        "macro_rules! m { ($x:expr) => { $x } }\n",
    ];
    for src in cases {
        let rebuilt: String = xtask::lexer::lex(src).iter().map(|t| t.text).collect();
        assert_eq!(rebuilt, src, "round-trip failed for {src:?}");
    }
}
