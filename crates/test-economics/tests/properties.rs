//! Property-based tests for the test-economics models.

use maly_test_economics::escapes::{defect_level, required_coverage};
use maly_test_economics::mcm::{price_module, DieSupply, ModuleParameters};
use maly_test_economics::test_time::TesterEconomics;
use maly_units::{Dollars, Probability, TransistorCount};
use proptest::prelude::*;

fn prob(range: std::ops::Range<f64>) -> impl Strategy<Value = Probability> {
    range.prop_map(|v| Probability::new(v).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Williams–Brown: DL ∈ [0, 1−Y], monotone in both arguments.
    #[test]
    fn defect_level_bounds_and_monotonicity(y in 0.05f64..0.99, t in 0.0f64..0.999,
                                            dy in 0.001f64..0.01, dt in 0.0001f64..0.001) {
        let yield_ = Probability::new(y).unwrap();
        let coverage = Probability::new(t).unwrap();
        let dl = defect_level(yield_, coverage).value();
        prop_assert!(dl >= 0.0);
        prop_assert!(dl <= 1.0 - y + 1e-12);
        // Better yield → cleaner shipments.
        let better_y = defect_level(Probability::new(y + dy).unwrap(), coverage).value();
        prop_assert!(better_y <= dl + 1e-12);
        // Better coverage → cleaner shipments.
        let better_t = defect_level(yield_, Probability::new(t + dt).unwrap()).value();
        prop_assert!(better_t <= dl + 1e-12);
    }

    /// required_coverage really achieves its target.
    #[test]
    fn required_coverage_achieves_target(y in 0.2f64..0.95, target in 0.001f64..0.05) {
        let yield_ = Probability::new(y).unwrap();
        let target_dl = Probability::new(target).unwrap();
        if let Some(t) = required_coverage(yield_, target_dl) {
            let achieved = defect_level(yield_, t).value();
            prop_assert!(achieved <= target + 1e-9, "achieved {achieved} > target {target}");
        }
    }

    /// Test time grows with design size and coverage; cost is linear in
    /// the hourly rate.
    #[test]
    fn test_time_monotonicity(n in 1.0e5f64..5.0e7, grow in 1.5f64..8.0,
                              t in prob(0.5..0.95)) {
        let tester = TesterEconomics::typical_1994();
        let small = TransistorCount::new(n).unwrap();
        let large = TransistorCount::new(n * grow).unwrap();
        prop_assert!(tester.test_seconds(large, t) > tester.test_seconds(small, t));
        let tighter = Probability::new((t.value() + 0.04).min(0.999)).unwrap();
        prop_assert!(tester.test_seconds(small, tighter) > tester.test_seconds(small, t));
        // Cost linearity in rate.
        let double_rate = TesterEconomics::new(1.0e6, Dollars::new(720.0).unwrap()).unwrap();
        let ratio = double_rate.cost_per_die(small, t).value()
            / tester.cost_per_die(small, t).value();
        prop_assert!((ratio - 2.0).abs() < 1e-9);
    }

    /// Module pricing: first-pass yield falls with die count; cleaner
    /// dies never cost more per good module.
    #[test]
    fn module_pricing_monotonicity(n in 2u32..12, dl in prob(0.01..0.15),
                                   cleaner in 0.1f64..0.9) {
        let module = ModuleParameters {
            dies_per_module: n,
            substrate_cost: Dollars::new(120.0).unwrap(),
            rework_cost: Dollars::new(80.0).unwrap(),
            assembly_fallout: Probability::new(0.005).unwrap(),
            scrap_fraction: Probability::new(0.4).unwrap(),
        };
        let bigger = ModuleParameters {
            dies_per_module: n + 1,
            ..module
        };
        let supply = DieSupply::probe_only(Dollars::new(25.0).unwrap(), dl);
        let base = price_module(&supply, &module).unwrap();
        let more_dies = price_module(&supply, &bigger).unwrap();
        prop_assert!(more_dies.first_pass_yield <= base.first_pass_yield);
        prop_assert!(
            more_dies.cost_per_good_module.value() > base.cost_per_good_module.value()
        );
        // Same cost dies with lower DL: cheaper good modules.
        let clean = DieSupply::probe_only(
            Dollars::new(25.0).unwrap(),
            Probability::new(dl.value() * cleaner).unwrap(),
        );
        let clean_cost = price_module(&clean, &module).unwrap();
        prop_assert!(
            clean_cost.cost_per_good_module.value()
                <= base.cost_per_good_module.value() + 1e-9
        );
    }

    /// Scrap fraction only ever hurts.
    #[test]
    fn scrap_fraction_is_monotone(n in 2u32..12, scrap in 0.0f64..0.9, extra in 0.01f64..0.1) {
        let supply = DieSupply::probe_only(
            Dollars::new(25.0).unwrap(),
            Probability::new(0.06).unwrap(),
        );
        let base = ModuleParameters {
            dies_per_module: n,
            substrate_cost: Dollars::new(120.0).unwrap(),
            rework_cost: Dollars::new(80.0).unwrap(),
            assembly_fallout: Probability::new(0.005).unwrap(),
            scrap_fraction: Probability::new(scrap).unwrap(),
        };
        let worse = ModuleParameters {
            scrap_fraction: Probability::new(scrap + extra).unwrap(),
            ..base
        };
        let a = price_module(&supply, &base).unwrap().cost_per_good_module;
        let b = price_module(&supply, &worse).unwrap().cost_per_good_module;
        prop_assert!(b.value() >= a.value());
    }
}
