//! Property-style tests for the test-economics models.
//!
//! The workspace builds offline with no external crates, so instead of
//! proptest strategies these properties are checked over deterministic
//! pseudo-random samples drawn from a tiny SplitMix64 generator.

use maly_test_economics::escapes::{defect_level, required_coverage};
use maly_test_economics::mcm::{price_module, DieSupply, ModuleParameters};
use maly_test_economics::test_time::TesterEconomics;
use maly_units::{Dollars, Probability, TransistorCount};

/// Deterministic uniform sampler (SplitMix64).
struct Sampler(u64);

impl Sampler {
    fn new(seed: u64) -> Self {
        Self(seed)
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + (hi - lo) * u
    }

    fn count(&mut self, lo: u32, hi: u32) -> u32 {
        lo + (self.next_u64() % u64::from(hi - lo)) as u32
    }
}

const CASES: usize = 64;

/// Williams–Brown: DL ∈ [0, 1−Y], monotone in both arguments.
#[test]
fn defect_level_bounds_and_monotonicity() {
    let mut s = Sampler::new(401);
    for _ in 0..CASES {
        let y = s.uniform(0.05, 0.99);
        let t = s.uniform(0.0, 0.999);
        let dy = s.uniform(0.001, 0.01);
        let dt = s.uniform(0.0001, 0.001);
        let yield_ = Probability::new(y).unwrap();
        let coverage = Probability::new(t).unwrap();
        let dl = defect_level(yield_, coverage).value();
        assert!(dl >= 0.0);
        assert!(dl <= 1.0 - y + 1e-12);
        // Better yield → cleaner shipments.
        let better_y = defect_level(Probability::new(y + dy).unwrap(), coverage).value();
        assert!(better_y <= dl + 1e-12);
        // Better coverage → cleaner shipments.
        let better_t = defect_level(yield_, Probability::new(t + dt).unwrap()).value();
        assert!(better_t <= dl + 1e-12);
    }
}

/// required_coverage really achieves its target.
#[test]
fn required_coverage_achieves_target() {
    let mut s = Sampler::new(402);
    for _ in 0..CASES {
        let y = s.uniform(0.2, 0.95);
        let target = s.uniform(0.001, 0.05);
        let yield_ = Probability::new(y).unwrap();
        let target_dl = Probability::new(target).unwrap();
        if let Some(t) = required_coverage(yield_, target_dl) {
            let achieved = defect_level(yield_, t).value();
            assert!(
                achieved <= target + 1e-9,
                "achieved {achieved} > target {target}"
            );
        }
    }
}

/// Test time grows with design size and coverage; cost is linear in
/// the hourly rate.
#[test]
fn test_time_monotonicity() {
    let mut s = Sampler::new(403);
    for _ in 0..CASES {
        let n = s.uniform(1.0e5, 5.0e7);
        let grow = s.uniform(1.5, 8.0);
        let t = Probability::new(s.uniform(0.5, 0.95)).unwrap();
        let tester = TesterEconomics::typical_1994();
        let small = TransistorCount::new(n).unwrap();
        let large = TransistorCount::new(n * grow).unwrap();
        assert!(tester.test_seconds(large, t) > tester.test_seconds(small, t));
        let tighter = Probability::new((t.value() + 0.04).min(0.999)).unwrap();
        assert!(tester.test_seconds(small, tighter) > tester.test_seconds(small, t));
        // Cost linearity in rate.
        let double_rate = TesterEconomics::new(1.0e6, Dollars::new(720.0).unwrap()).unwrap();
        let ratio =
            double_rate.cost_per_die(small, t).value() / tester.cost_per_die(small, t).value();
        assert!((ratio - 2.0).abs() < 1e-9);
    }
}

/// Module pricing: first-pass yield falls with die count; cleaner
/// dies never cost more per good module.
#[test]
fn module_pricing_monotonicity() {
    let mut s = Sampler::new(404);
    for _ in 0..CASES {
        let n = s.count(2, 12);
        let dl = Probability::new(s.uniform(0.01, 0.15)).unwrap();
        let cleaner = s.uniform(0.1, 0.9);
        let module = ModuleParameters {
            dies_per_module: n,
            substrate_cost: Dollars::new(120.0).unwrap(),
            rework_cost: Dollars::new(80.0).unwrap(),
            assembly_fallout: Probability::new(0.005).unwrap(),
            scrap_fraction: Probability::new(0.4).unwrap(),
        };
        let bigger = ModuleParameters {
            dies_per_module: n + 1,
            ..module
        };
        let supply = DieSupply::probe_only(Dollars::new(25.0).unwrap(), dl);
        let base = price_module(&supply, &module).unwrap();
        let more_dies = price_module(&supply, &bigger).unwrap();
        assert!(more_dies.first_pass_yield <= base.first_pass_yield);
        assert!(more_dies.cost_per_good_module.value() > base.cost_per_good_module.value());
        // Same cost dies with lower DL: cheaper good modules.
        let clean = DieSupply::probe_only(
            Dollars::new(25.0).unwrap(),
            Probability::new(dl.value() * cleaner).unwrap(),
        );
        let clean_cost = price_module(&clean, &module).unwrap();
        assert!(
            clean_cost.cost_per_good_module.value() <= base.cost_per_good_module.value() + 1e-9
        );
    }
}

/// Scrap fraction only ever hurts.
#[test]
fn scrap_fraction_is_monotone() {
    let mut s = Sampler::new(405);
    for _ in 0..CASES {
        let n = s.count(2, 12);
        let scrap = s.uniform(0.0, 0.9);
        let extra = s.uniform(0.01, 0.1);
        let supply =
            DieSupply::probe_only(Dollars::new(25.0).unwrap(), Probability::new(0.06).unwrap());
        let base = ModuleParameters {
            dies_per_module: n,
            substrate_cost: Dollars::new(120.0).unwrap(),
            rework_cost: Dollars::new(80.0).unwrap(),
            assembly_fallout: Probability::new(0.005).unwrap(),
            scrap_fraction: Probability::new(scrap).unwrap(),
        };
        let worse = ModuleParameters {
            scrap_fraction: Probability::new(scrap + extra).unwrap(),
            ..base
        };
        let a = price_module(&supply, &base).unwrap().cost_per_good_module;
        let b = price_module(&supply, &worse).unwrap().cost_per_good_module;
        assert!(b.value() >= a.value());
    }
}
