//! Fault escapes: the Williams–Brown defect-level model.
//!
//! A die that passes test may still be defective if the test's fault
//! coverage `T < 1`. Williams and Brown (1981) showed that under the
//! standard independence assumptions the *defect level* — the fraction
//! of shipped (test-passing) dies that are actually bad — is
//!
//! ```text
//!   DL = 1 − Y^{(1−T)}
//! ```
//!
//! where `Y` is the true process yield. This single formula is the
//! quantitative bridge between yield, test quality and the cost of field
//! returns that Sec. VI asks for ("cost of testing as a function of the
//! probability of fault escapes \[32\]").

use maly_units::{Dollars, Probability};

/// Williams–Brown defect level `DL = 1 − Y^{1−T}`.
///
/// # Examples
///
/// ```
/// use maly_units::Probability;
/// use maly_test_economics::escapes::defect_level;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let y = Probability::new(0.5)?;
/// // Perfect coverage ships no escapes.
/// assert_eq!(defect_level(y, Probability::ONE).value(), 0.0);
/// // Zero coverage ships the raw fallout: DL = 1 − Y.
/// assert!((defect_level(y, Probability::ZERO).value() - 0.5).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn defect_level(yield_: Probability, coverage: Probability) -> Probability {
    let exponent = 1.0 - coverage.value();
    yield_.powf(exponent).complement()
}

/// Defect level expressed in defective parts per million shipped.
#[must_use]
pub fn defects_per_million(yield_: Probability, coverage: Probability) -> f64 {
    defect_level(yield_, coverage).value() * 1.0e6
}

/// The fault coverage required to ship no worse than `target_dl`:
/// `T = 1 − ln(1−DL)/ln(Y)`.
///
/// Returns `None` when the target is unreachable (`Y = 0`), or trivially
/// reachable without testing (`1 − Y ≤ DL`, where `T = 0` suffices —
/// returned as zero coverage).
#[must_use]
pub fn required_coverage(yield_: Probability, target_dl: Probability) -> Option<Probability> {
    let y = yield_.value();
    if y <= 0.0 {
        return None;
    }
    if y >= 1.0 {
        // Perfect yield ships perfect parts with no testing at all.
        return Some(Probability::ZERO);
    }
    let dl = target_dl.value();
    if 1.0 - y <= dl {
        return Some(Probability::ZERO);
    }
    let t = 1.0 - (1.0 - dl).ln() / y.ln();
    Probability::new(t.clamp(0.0, 1.0)).ok()
}

/// Expected field-return cost per shipped die: `DL · cost_per_escape`.
///
/// `cost_per_escape` is the fully loaded cost of one escaped defect
/// (replacement, RMA handling, reputation) — typically orders of
/// magnitude above the die cost, which is why coverage pays.
#[must_use]
pub fn escape_cost_per_shipped_die(
    yield_: Probability,
    coverage: Probability,
    cost_per_escape: Dollars,
) -> Dollars {
    cost_per_escape * defect_level(yield_, coverage).value()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(v: f64) -> Probability {
        Probability::new(v).unwrap()
    }

    #[test]
    fn williams_brown_reference_point() {
        // The classic textbook point: Y = 50%, T = 90% → DL ≈ 6.7%.
        let dl = defect_level(p(0.5), p(0.9));
        assert!((dl.value() - 0.067).abs() < 1e-3, "{}", dl.value());
    }

    #[test]
    fn coverage_monotonically_cleans_shipments() {
        let y = p(0.6);
        let mut last = 1.0;
        for t in [0.0, 0.5, 0.9, 0.99, 1.0] {
            let dl = defect_level(y, p(t)).value();
            assert!(dl <= last);
            last = dl;
        }
    }

    #[test]
    fn better_yield_ships_cleaner_at_fixed_coverage() {
        let t = p(0.9);
        assert!(defect_level(p(0.9), t) < defect_level(p(0.5), t));
    }

    #[test]
    fn dpm_scale() {
        // High-yield, high-coverage: DPM in the hundreds.
        let dpm = defects_per_million(p(0.9), p(0.999));
        assert!(dpm > 10.0 && dpm < 1000.0, "{dpm}");
    }

    #[test]
    fn required_coverage_inverts_defect_level() {
        let y = p(0.6);
        let target = p(0.01);
        let t = required_coverage(y, target).unwrap();
        let achieved = defect_level(y, t);
        assert!((achieved.value() - 0.01).abs() < 1e-9);
    }

    #[test]
    fn required_coverage_edge_cases() {
        // Already clean enough without test.
        assert_eq!(
            required_coverage(p(0.995), p(0.01)).unwrap(),
            Probability::ZERO
        );
        // Perfect yield needs no test.
        assert_eq!(
            required_coverage(Probability::ONE, p(0.0001)).unwrap(),
            Probability::ZERO
        );
        // Zero yield can never ship clean parts.
        assert!(required_coverage(Probability::ZERO, p(0.01)).is_none());
    }

    #[test]
    fn escape_cost_scales_with_defect_level() {
        let cost = Dollars::new(500.0).unwrap();
        let loose = escape_cost_per_shipped_die(p(0.5), p(0.8), cost);
        let tight = escape_cost_per_shipped_die(p(0.5), p(0.99), cost);
        assert!(loose.value() > 10.0 * tight.value());
    }
}
