//! IC test economics: test time, fault escapes, DFT/BIST tradeoffs and
//! MCM known-good-die analysis.
//!
//! Sections V–VI of the paper argue that test cost is the neglected half
//! of the silicon cost problem: "in the extreme case the cost of testing
//! a wafer may be comparable with the cost of manufacturing", yet
//! "adequate analytical relationships expressing cost of testing ... do
//! not exist". This crate supplies the standard first-principles models
//! the paper calls for:
//!
//! * [`test_time`] — tester-time and cost per die as a function of
//!   transistor count and coverage;
//! * [`escapes`] — the Williams–Brown defect-level model
//!   `DL = 1 − Y^{1−T}` connecting yield, coverage and shipped quality;
//! * [`dft`] — the BIST/DFT decision: area overhead (silicon cost, yield)
//!   against test-time and escape savings;
//! * [`mcm`] — known-good-die economics for multi-chip modules
//!   (refs \[30, 31\]): bare-die test level vs module yield vs
//!   smart-substrate self-test.
//!
//! # Examples
//!
//! ```
//! use maly_units::Probability;
//! use maly_test_economics::escapes::defect_level;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // 60% yield, 95% fault coverage → ~2.5% of shipped parts are bad.
//! let dl = defect_level(Probability::new(0.6)?, Probability::new(0.95)?);
//! assert!((dl.value() - 0.0252).abs() < 1e-3);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coverage_opt;
pub mod dft;
pub mod escapes;
pub mod mcm;
pub mod test_time;
